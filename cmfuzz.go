// Package cmfuzz is the public facade of the CMFuzz reproduction — a
// parallel fuzzing framework for IoT protocols built on configuration
// model identification and scheduling (Xu et al., DAC 2025).
//
// The pipeline (paper Figure 1):
//
//  1. Configuration Model Identification — configuration items are
//     extracted from CLI options and configuration files (Algorithm 1)
//     and normalized into 4-tuple entities (Name, Type, Flag, Values).
//  2. Configuration Model Scheduling — pairwise relation weights are
//     quantified from startup coverage (Figure 3) and the entities are
//     divided into cohesive groups (Algorithm 2), one per parallel
//     fuzzing instance.
//  3. Parallel fuzzing — each instance runs a Peach-style
//     generation-based fuzzer under its scheduled configuration in an
//     isolated network namespace, adaptively mutating MUTABLE
//     configuration values when coverage saturates.
//
// Quick start:
//
//	sub, _ := cmfuzz.Subject("MQTT")
//	res, _ := cmfuzz.Fuzz(sub, cmfuzz.Options{Mode: cmfuzz.ModeCMFuzz, VirtualHours: 24, Seed: 1})
//	fmt.Println(res.FinalBranches, "branches,", res.Bugs.Len(), "bugs")
//
// The package re-exports the stable surface of the internal packages;
// see cmd/cmfuzz for the CLI and cmd/cmbench for the evaluation harness
// that regenerates the paper's tables and figures.
package cmfuzz

import (
	"cmfuzz/internal/campaign"
	"cmfuzz/internal/core"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/core/relation"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
	"context"
)

// Re-exported types: the campaign surface.
type (
	// Options parameterizes one parallel fuzzing campaign.
	Options = parallel.Options
	// Result is a campaign outcome.
	Result = parallel.Result
	// Mode selects the fuzzer (CMFuzz, Peach parallel, SPFuzz).
	Mode = parallel.Mode
	// EvalConfig scales a full evaluation (hours × repetitions).
	EvalConfig = campaign.Config
	// Pipeline is the identification → scheduling flow.
	Pipeline = core.Pipeline
	// Plan is a pipeline output.
	Plan = core.Plan
	// Input carries configuration sources for extraction.
	Input = configspec.Input
	// Assignment is one concrete configuration.
	Assignment = configmodel.Assignment
	// TargetSubject is a protocol implementation under test.
	TargetSubject = subject.Subject
)

// The fuzzer modes of the paper's comparison.
const (
	ModeCMFuzz = parallel.ModeCMFuzz
	ModePeach  = parallel.ModePeach
	ModeSPFuzz = parallel.ModeSPFuzz
)

// Subjects returns the six evaluation subjects in Table I order.
func Subjects() []subject.Subject { return protocols.All() }

// Subject returns one subject by protocol or implementation name
// ("MQTT" or "Mosquitto").
func Subject(name string) (subject.Subject, error) { return protocols.ByName(name) }

// Fuzz runs one parallel fuzzing campaign.
func Fuzz(sub subject.Subject, opts Options) (*Result, error) {
	return parallel.Run(context.Background(), sub, opts)
}

// Identify runs configuration model identification and scheduling for a
// subject and returns the per-instance configuration plan without
// fuzzing.
func Identify(sub subject.Subject, instances int) *Plan {
	p := &core.Pipeline{
		Probe: func(cfg configmodel.Assignment) int {
			return subject.Probe(sub, map[string]string(cfg))
		},
		Instances: instances,
		MaxValues: 4,
		Weighting: relation.WeightInteraction,
	}
	return p.Run(sub.ConfigInput())
}
