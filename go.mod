module cmfuzz

go 1.22
