package cmfuzz_test

import (
	"fmt"

	"cmfuzz"
)

// ExampleIdentify shows configuration model identification and
// scheduling without fuzzing: the CoAP subject's dependency pairs are
// discovered from startup coverage and divided into cohesive groups.
func ExampleIdentify() {
	sub, _ := cmfuzz.Subject("CoAP")
	plan := cmfuzz.Identify(sub, 4)
	for _, e := range plan.Relation.Graph.SortedEdges() {
		fmt.Printf("%s <-> %s\n", e.A, e.B)
	}
	// Output:
	// dtls <-> psk-key
	// observe <-> q-block
	// multicast <-> proxy-uri
}

// ExampleFuzz runs a short deterministic campaign through the public API.
func ExampleFuzz() {
	sub, _ := cmfuzz.Subject("DNS")
	res, _ := cmfuzz.Fuzz(sub, cmfuzz.Options{
		Mode:         cmfuzz.ModeCMFuzz,
		VirtualHours: 0.1,
		Seed:         1,
	})
	fmt.Println(res.FinalBranches > 0, res.TotalExecs > 0)
	// Output: true true
}
