package cmfuzz

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per artifact) at the paper's 24-virtual-hour
// scale with one repetition per iteration. Each benchmark prints its
// reproduced rows/series once, so `go test -bench=.` output doubles as
// the experiment log. `cmd/cmbench -all -reps 5` runs the full
// 5-repetition setting.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"cmfuzz/internal/campaign"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
)

// benchCfg is the paper's per-campaign scale with a single repetition.
var benchCfg = campaign.Config{Hours: 24, Repetitions: 1, Instances: 4}

var printOnce sync.Map

func printFirst(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Print(text)
	}
}

func benchSubject(b *testing.B, name string) subject.Subject {
	b.Helper()
	sub, err := protocols.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return sub
}

// benchmarkTable1 reproduces one Table I row.
func benchmarkTable1(b *testing.B, name string) {
	sub := benchSubject(b, name)
	for i := 0; i < b.N; i++ {
		cfg := benchCfg
		cfg.BaseSeed = int64(i)
		rows, err := campaign.Table1(context.Background(), []subject.Subject{sub}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		if r.CMFuzz <= r.Peach {
			b.Fatalf("Table I shape violated: CMFuzz %d <= Peach %d", r.CMFuzz, r.Peach)
		}
		printFirst("table1/"+name, campaign.RenderTable1(rows))
		b.ReportMetric(float64(r.CMFuzz), "cmfuzz-branches")
		b.ReportMetric(r.ImprovPeach, "improv-vs-peach-%")
		b.ReportMetric(r.SpeedupPeach, "speedup-vs-peach-x")
	}
}

func BenchmarkTable1_Mosquitto(b *testing.B)  { benchmarkTable1(b, "MQTT") }
func BenchmarkTable1_Libcoap(b *testing.B)    { benchmarkTable1(b, "CoAP") }
func BenchmarkTable1_CycloneDDS(b *testing.B) { benchmarkTable1(b, "DDS") }
func BenchmarkTable1_OpenSSL(b *testing.B)    { benchmarkTable1(b, "DTLS") }
func BenchmarkTable1_Qpid(b *testing.B)       { benchmarkTable1(b, "AMQP") }
func BenchmarkTable1_Dnsmasq(b *testing.B)    { benchmarkTable1(b, "DNS") }

// benchmarkFigure4 reproduces one Figure 4 panel.
func benchmarkFigure4(b *testing.B, name string) {
	sub := benchSubject(b, name)
	for i := 0; i < b.N; i++ {
		cfg := benchCfg
		cfg.BaseSeed = int64(i)
		f, err := campaign.Figure4(context.Background(), sub, cfg, 64)
		if err != nil {
			b.Fatal(err)
		}
		final := map[string]int{}
		for fuzzer, pts := range f.Points {
			final[fuzzer] = pts[len(pts)-1].Count
		}
		if final["CMFuzz"] <= final["Peach"] {
			b.Fatalf("Figure 4 shape violated: %v", final)
		}
		printFirst("fig4/"+name, campaign.RenderFigure4(f, 64, 14))
		b.ReportMetric(float64(final["CMFuzz"]), "cmfuzz-final")
		b.ReportMetric(float64(final["Peach"]), "peach-final")
	}
}

func BenchmarkFigure4_Mosquitto(b *testing.B)  { benchmarkFigure4(b, "MQTT") }
func BenchmarkFigure4_Libcoap(b *testing.B)    { benchmarkFigure4(b, "CoAP") }
func BenchmarkFigure4_CycloneDDS(b *testing.B) { benchmarkFigure4(b, "DDS") }
func BenchmarkFigure4_OpenSSL(b *testing.B)    { benchmarkFigure4(b, "DTLS") }
func BenchmarkFigure4_Qpid(b *testing.B)       { benchmarkFigure4(b, "AMQP") }
func BenchmarkFigure4_Dnsmasq(b *testing.B)    { benchmarkFigure4(b, "DNS") }

// BenchmarkTable2_Bugs reproduces Table II across all six subjects: the
// union of previously-unknown bugs found by CMFuzz (and, as a check, by
// the baselines) over the repetitions.
func BenchmarkTable2_Bugs(b *testing.B) {
	subs := protocols.All()
	for i := 0; i < b.N; i++ {
		cfg := benchCfg
		cfg.Repetitions = 2 // bug discovery benefits from seed variety
		cfg.BaseSeed = int64(i)
		rows, err := campaign.Table2(context.Background(), subs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		found := 0
		for _, r := range rows {
			for _, f := range r.FoundBy {
				if f == "CMFuzz" {
					found++
					break
				}
			}
		}
		printFirst("table2", campaign.RenderTable2(rows))
		b.ReportMetric(float64(found), "bugs-found")
		if found < 10 {
			b.Fatalf("Table II shape violated: only %d/14 bugs rediscovered", found)
		}
	}
}

// BenchmarkAblation_Allocation compares Algorithm 2's cohesive grouping
// against random and round-robin allocation (plus the other design
// toggles) on the two most configuration-sensitive subjects.
func BenchmarkAblation_Allocation(b *testing.B) {
	var subs []subject.Subject
	for _, name := range []string{"MQTT", "DNS"} {
		subs = append(subs, benchSubject(b, name))
	}
	for i := 0; i < b.N; i++ {
		cfg := benchCfg
		cfg.BaseSeed = int64(i)
		rows, err := campaign.Ablations(context.Background(), subs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("ablation", campaign.RenderAblations(rows))
		byKey := map[string]int{}
		for _, r := range rows {
			byKey[r.Subject+"/"+r.Variant] = r.Branches
		}
		b.ReportMetric(float64(byKey["Dnsmasq/cmfuzz (full)"]), "dns-cohesive")
		b.ReportMetric(float64(byKey["Dnsmasq/alloc=random"]), "dns-random")
	}
}

// BenchmarkCampaign_CMFuzz24h measures one full CMFuzz campaign
// (engine + instrumentation throughput) on the MQTT subject.
func BenchmarkCampaign_CMFuzz24h(b *testing.B) {
	sub := benchSubject(b, "MQTT")
	for i := 0; i < b.N; i++ {
		res, err := parallel.Run(context.Background(), sub, parallel.Options{
			Mode:         parallel.ModeCMFuzz,
			VirtualHours: 24,
			Seed:         int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalExecs), "execs")
	}
}
