package cmfuzz

import (
	"testing"
)

func TestSubjectsList(t *testing.T) {
	subs := Subjects()
	if len(subs) != 6 {
		t.Fatalf("Subjects() = %d, want 6", len(subs))
	}
	wantOrder := []string{"MQTT", "CoAP", "DDS", "DTLS", "AMQP", "DNS"}
	for i, sub := range subs {
		if sub.Info().Protocol != wantOrder[i] {
			t.Errorf("subject %d = %s, want %s (Table I order)", i, sub.Info().Protocol, wantOrder[i])
		}
	}
}

func TestSubjectLookup(t *testing.T) {
	if _, err := Subject("Mosquitto"); err != nil {
		t.Fatal(err)
	}
	if _, err := Subject("nope"); err == nil {
		t.Fatal("unknown subject accepted")
	}
}

func TestIdentifyProducesRunnablePlan(t *testing.T) {
	sub, err := Subject("DNS")
	if err != nil {
		t.Fatal(err)
	}
	plan := Identify(sub, 4)
	if plan.Model.Len() < 10 {
		t.Fatalf("model too small: %d entities", plan.Model.Len())
	}
	if len(plan.Groups) == 0 || len(plan.Groups) > 4 {
		t.Fatalf("groups = %d", len(plan.Groups))
	}
	if len(plan.Assignments) != len(plan.Groups) {
		t.Fatal("assignments/groups mismatch")
	}
	// The strongest DNS dependency must be captured and scheduled.
	if _, ok := plan.Relation.Graph.Weight("dnssec", "trust-anchor"); !ok {
		t.Fatal("dnssec/trust-anchor dependency edge missing")
	}
}

func TestFuzzPublicAPI(t *testing.T) {
	sub, err := Subject("CoAP")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fuzz(sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalBranches == 0 || res.TotalExecs == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

// TestHeadlineClaim verifies the paper's core result end-to-end through
// the public API: on a configuration-rich subject, CMFuzz covers more
// branches than both baselines and finds configuration-gated bugs that
// neither baseline reaches.
func TestHeadlineClaim(t *testing.T) {
	sub, err := Subject("DNS")
	if err != nil {
		t.Fatal(err)
	}
	branches := map[Mode]int{}
	bugsFound := map[Mode]int{}
	for _, mode := range []Mode{ModeCMFuzz, ModePeach, ModeSPFuzz} {
		res, err := Fuzz(sub, Options{Mode: mode, VirtualHours: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		branches[mode] = res.FinalBranches
		bugsFound[mode] = res.Bugs.Len()
	}
	if branches[ModeCMFuzz] <= branches[ModePeach] || branches[ModeCMFuzz] <= branches[ModeSPFuzz] {
		t.Fatalf("CMFuzz does not lead: %v", branches)
	}
	if bugsFound[ModeCMFuzz] == 0 {
		t.Fatal("CMFuzz found no bugs")
	}
	if bugsFound[ModePeach] != 0 || bugsFound[ModeSPFuzz] != 0 {
		t.Fatalf("baselines found config-gated bugs: %v", bugsFound)
	}
}
