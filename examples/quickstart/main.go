// Quickstart: identify a protocol's configuration model, schedule it
// across parallel instances, and run a short CMFuzz campaign — the whole
// pipeline of the paper's Figure 1 in ~30 lines.
package main

import (
	"fmt"
	"log"
	"strings"

	"cmfuzz"
)

func main() {
	sub, err := cmfuzz.Subject("CoAP")
	if err != nil {
		log.Fatal(err)
	}

	// 1-2. Configuration model identification + scheduling.
	plan := cmfuzz.Identify(sub, 4)
	fmt.Printf("extracted %d configuration items -> %d entities, %d relation edges\n",
		len(plan.Items), plan.Model.Len(), plan.Relation.Graph.EdgeCount())
	for i, g := range plan.Groups {
		fmt.Printf("instance %d group: %s\n", i, strings.Join(g.Members, ", "))
	}

	// 3. Parallel fuzzing under the scheduled configurations (virtual
	// clock: "2 hours" completes in about a second).
	res, err := cmfuzz.Fuzz(sub, cmfuzz.Options{
		Mode:         cmfuzz.ModeCMFuzz,
		VirtualHours: 2,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCMFuzz on %s: %d branches, %d execs, %d unique bugs\n",
		res.Subject.Implementation, res.FinalBranches, res.TotalExecs, res.Bugs.Len())
	for _, r := range res.Bugs.Unique() {
		fmt.Printf("  bug: %s\n", r.Crash.Error())
	}
}
