// mqtt-campaign reproduces one cell of the paper's evaluation on the
// Mosquitto-like MQTT broker: CMFuzz vs Peach parallel mode vs SPFuzz,
// four instances each, over a 24-virtual-hour campaign. It prints the
// per-fuzzer coverage, the improvement percentages, each CMFuzz
// instance's scheduled configuration, and the configuration-gated bugs
// only CMFuzz reaches.
package main

import (
	"fmt"
	"log"

	"cmfuzz"
)

func main() {
	sub, err := cmfuzz.Subject("MQTT")
	if err != nil {
		log.Fatal(err)
	}

	results := map[string]*cmfuzz.Result{}
	for _, mode := range []cmfuzz.Mode{cmfuzz.ModePeach, cmfuzz.ModeSPFuzz, cmfuzz.ModeCMFuzz} {
		res, err := cmfuzz.Fuzz(sub, cmfuzz.Options{
			Mode:         mode,
			Instances:    4,
			VirtualHours: 24,
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		results[mode.String()] = res
		fmt.Printf("%-7s %6d branches  %7d execs  %d bugs\n",
			mode, res.FinalBranches, res.TotalExecs, res.Bugs.Len())
	}

	peach := float64(results["Peach"].FinalBranches)
	fmt.Printf("\nCMFuzz improvement: %+.1f%% over Peach, %+.1f%% over SPFuzz\n",
		100*(float64(results["CMFuzz"].FinalBranches)/peach-1),
		100*(float64(results["CMFuzz"].FinalBranches)/float64(results["SPFuzz"].FinalBranches)-1))

	fmt.Println("\nCMFuzz instance configurations (one cohesive group each):")
	for _, in := range results["CMFuzz"].Instances {
		fmt.Printf("  instance %d (%d branches, %d config mutations):\n    %s\n",
			in.Index, in.FinalBranches, in.ConfigMutations, in.Config)
	}

	fmt.Println("\nconfiguration-gated bugs (missed by both baselines):")
	for _, r := range results["CMFuzz"].Bugs.Unique() {
		fmt.Printf("  [%5.1fh, instance %d] %s\n", r.Time/3600, r.Instance, r.Crash.Error())
	}
	if results["Peach"].Bugs.Len() == 0 && results["SPFuzz"].Bugs.Len() == 0 {
		fmt.Println("  (Peach and SPFuzz found none, as expected under default configuration)")
	}
}
