// config-extraction demonstrates Algorithm 1 across all four
// configuration formats the paper's extraction handles — CLI help text,
// INI-style key-value files, hierarchical JSON/XML, and unstandardized
// custom formats — and the generalized 4-tuple model built from them
// (Figure 2).
package main

import (
	"fmt"
	"strings"

	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/configspec"
)

const cliHelp = `Usage: gateway [options]
  -p, --port PORT        listen port (default: 8883)
  --transport MODE       link transport, one of: tcp, udp, quic
  --tls                  enable TLS on the listener
  --ca-file FILE         trust anchor bundle (default: /etc/gw/ca.pem)
`

const iniFile = `# gateway.conf
max_clients = 256
queue_depth = 1024
[bridge]
enable = false
# remote = backbone.example:8883
`

const jsonFile = `{
  "telemetry": {"interval": 30, "compress": true},
  "limits": {"max_payload": 65536}
}`

const xmlFile = `<Gateway>
  <Routing>
    <!-- one of: direct, mesh, star -->
    <Topology>direct</Topology>
    <HopLimit>15</HopLimit>
  </Routing>
</Gateway>`

const customFile = `# gateway feature flags
fast-retransmit
low-power-mode
beacon-interval 120
# diagnostics-port=7070
`

func main() {
	input := configspec.Input{
		CLIHelp: []string{cliHelp},
		Files: []configspec.File{
			{Name: "gateway.conf", Content: iniFile},
			{Name: "telemetry.json", Content: jsonFile},
			{Name: "routing.xml", Content: xmlFile},
			{Name: "features.conf", Content: customFile},
		},
	}

	// Format detection (Algorithm 1's dispatch).
	for _, f := range input.Files {
		fmt.Printf("%-16s detected as %s\n", f.Name, configspec.DetectFormat(f.Content))
	}

	// Consolidated item set.
	items := configspec.Extract(input)
	fmt.Printf("\n%d configuration items extracted:\n", len(items))
	for _, it := range items {
		line := fmt.Sprintf("  %-28s [%s]", it.Name, it.Source)
		if it.Default != "" {
			line += " default=" + it.Default
		}
		if len(it.Values) > 0 {
			line += " candidates=" + strings.Join(it.Values, ",")
		}
		fmt.Println(line)
	}

	// Generalized model: the 4-tuple entities of Figure 2.
	model := configmodel.Build(items)
	fmt.Printf("\ngeneralized configuration model (%d entities):\n", model.Len())
	fmt.Printf("  %-28s %-8s %-10s %s\n", "Name", "Type", "Flag", "Typical values")
	for _, e := range model.Entities() {
		fmt.Printf("  %-28s %-8s %-10s %s\n", e.Name, e.Type, e.Flag, strings.Join(e.Values, ", "))
	}

	// Reassembly back to runtime-ready forms (paper §III-B2).
	defaults := model.Defaults()
	fmt.Println("\nreassembled CLI:", strings.Join(configmodel.RenderCLI(defaults), " "))
}
