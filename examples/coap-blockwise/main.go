// coap-blockwise walks through the paper's Figure 5 case study: bug #8 in
// the libcoap-like CoAP server, a NULL body_data dereference in
// coap_handle_request_put_block that only exists when the non-default
// Q-Block1 configuration enables blockwise transfers.
//
// The example shows all three stages of the story:
//  1. under the default configuration the triggering packet is harmless
//     (the server answers 4.02 Bad Option);
//  2. CMFuzz's relation quantification discovers that q-block interacts
//     with block-size and observe, so some scheduled instance enables it;
//  3. under that instance's configuration, the fuzzer finds the crash.
package main

import (
	"fmt"
	"log"

	"cmfuzz"
)

func main() {
	sub, err := cmfuzz.Subject("CoAP")
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1+2: identification and scheduling. Find which instance got
	// the q-block feature.
	plan := cmfuzz.Identify(sub, 4)
	qblockInstance := -1
	for i, a := range plan.Assignments {
		if a["q-block"] == "true" {
			qblockInstance = i
		}
	}
	fmt.Println("relation edges discovered by startup-coverage probing:")
	for _, e := range plan.Relation.Graph.SortedEdges() {
		fmt.Printf("  %.2f  %s <-> %s\n", e.Weight, e.A, e.B)
	}
	if qblockInstance < 0 {
		fmt.Println("\nno scheduled instance enables q-block at startup; it is")
		fmt.Println("reachable through adaptive configuration-value mutation instead")
	} else {
		fmt.Printf("\ninstance %d is scheduled with q-block enabled:\n  %s\n",
			qblockInstance, plan.Assignments[qblockInstance].String())
	}

	// Stage 3: fuzz. The campaign's CMFuzz instances include the
	// Q-Block1 configuration, so the Figure 5 crash is reachable.
	res, err := cmfuzz.Fuzz(sub, cmfuzz.Options{
		Mode:         cmfuzz.ModeCMFuzz,
		VirtualHours: 6,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCMFuzz (6 virtual hours): %d branches, %d unique bugs\n",
		res.FinalBranches, res.Bugs.Len())
	for _, r := range res.Bugs.Unique() {
		marker := " "
		if r.Crash.Function == "coap_handle_request_put_block" {
			marker = "*" // the Figure 5 case study
		}
		fmt.Printf(" %s [%4.1fh] %s\n     config: %s\n", marker, r.Time/3600, r.Crash.Error(), r.Config)
	}

	// Control: the same budget under the default configuration (Peach
	// parallel mode) cannot reach the bug.
	peach, err := cmfuzz.Fuzz(sub, cmfuzz.Options{
		Mode:         cmfuzz.ModePeach,
		VirtualHours: 6,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPeach under default configuration: %d branches, %d bugs — ", peach.FinalBranches, peach.Bugs.Len())
	fmt.Println("\"it cannot be triggered under the default configuration\" (paper §IV-C)")
}
