// Command echoserver is the sample external target for live-socket
// fuzzing: a tiny UDP/TCP echo server configured through a key=value
// file, the way a real IoT daemon would be. It exists so the README
// quickstart, the live driver's tests, and the CI smoke job all have a
// genuinely external process to point `cmfuzz fuzz -target-cmd` at.
//
// The configuration surface is deliberately behavior-bearing so the
// identification/relation machinery has something to find:
//
//	mode        = plain | upper | reverse   response transform
//	verbose     = true | false              extra banner features + logging
//	max_payload = N                         payloads above N are rejected
//	wedge_after = N                         stop responding after N messages (0 = never)
//	crash_on    = TOKEN                     abort when a payload contains TOKEN ("" = never)
//	delay_ms    = N                         sleep before each reply
//
// On startup the server prints a READY banner listing its enabled
// features as tokens; the live driver folds those tokens into startup
// coverage, so configurations that flip features apart are visibly
// different to the relation-quantification probe.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"
)

type config struct {
	mode       string
	verbose    bool
	maxPayload int
	wedgeAfter int
	crashOn    string
	delay      time.Duration
}

func loadConfig(path string) (config, error) {
	cfg := config{mode: "plain", maxPayload: 1 << 16}
	if path == "" {
		return cfg, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.IndexByte(line, '=')
		if i < 0 {
			continue
		}
		k := strings.TrimSpace(line[:i])
		v := strings.TrimSpace(line[i+1:])
		switch k {
		case "mode":
			switch v {
			case "plain", "upper", "reverse":
				cfg.mode = v
			default:
				return cfg, fmt.Errorf("bad mode %q", v)
			}
		case "verbose":
			cfg.verbose = v == "true" || v == "1" || v == "yes"
		case "max_payload":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("bad max_payload %q", v)
			}
			cfg.maxPayload = n
		case "wedge_after":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("bad wedge_after %q", v)
			}
			cfg.wedgeAfter = n
		case "crash_on":
			cfg.crashOn = v
		case "delay_ms":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("bad delay_ms %q", v)
			}
			cfg.delay = time.Duration(n) * time.Millisecond
		}
	}
	return cfg, nil
}

// banner lists the enabled feature set as tokens. Feature interactions
// get their own token (turbo) so pairwise configuration probes see a
// non-additive signal, the thing relation quantification measures.
func banner(cfg config, port int) string {
	toks := []string{"READY", "echoserver", fmt.Sprintf("port=%d", port), "mode=" + cfg.mode}
	if cfg.mode != "plain" {
		toks = append(toks, "xform")
	}
	if cfg.mode == "reverse" {
		toks = append(toks, "rev")
	}
	if cfg.verbose {
		toks = append(toks, "verbose", "log")
	}
	if cfg.verbose && cfg.mode == "upper" {
		toks = append(toks, "turbo")
	}
	if cfg.maxPayload > 512 {
		toks = append(toks, "bigbuf")
	}
	if cfg.wedgeAfter > 0 {
		toks = append(toks, "wedge")
	}
	if cfg.crashOn != "" {
		toks = append(toks, "tripwire")
	}
	return strings.Join(toks, " ")
}

func transform(cfg config, payload []byte) []byte {
	switch cfg.mode {
	case "upper":
		return []byte(strings.ToUpper(string(payload)))
	case "reverse":
		out := make([]byte, len(payload))
		for i, b := range payload {
			out[len(payload)-1-i] = b
		}
		return out
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out
}

// handle implements the per-message behavior shared by both transports.
// A nil return means "no reply" (rejected or wedged); crash aborts the
// whole process the way a real memory-safety bug would.
func handle(cfg config, served *int, payload []byte) []byte {
	if cfg.crashOn != "" && strings.Contains(string(payload), cfg.crashOn) {
		fmt.Fprintf(os.Stderr, "fatal: payload contained crash token %q\n", cfg.crashOn)
		os.Exit(134)
	}
	if cfg.wedgeAfter > 0 && *served >= cfg.wedgeAfter {
		return nil
	}
	*served++
	if len(payload) > cfg.maxPayload {
		return []byte("ERR too-big")
	}
	if cfg.delay > 0 {
		time.Sleep(cfg.delay)
	}
	return transform(cfg, payload)
}

func main() {
	port := flag.Int("port", 0, "listen port (required)")
	configPath := flag.String("config", "", "key=value config file")
	transport := flag.String("transport", "udp", "udp or tcp")
	flag.Parse()
	if *port == 0 {
		fmt.Fprintln(os.Stderr, "echoserver: -port is required")
		os.Exit(2)
	}
	cfg, err := loadConfig(*configPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "echoserver: config: %v\n", err)
		os.Exit(2)
	}

	served := 0
	switch *transport {
	case "udp":
		pc, err := net.ListenPacket("udp", fmt.Sprintf("127.0.0.1:%d", *port))
		if err != nil {
			fmt.Fprintf(os.Stderr, "echoserver: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(banner(cfg, *port))
		buf := make([]byte, 64<<10)
		for {
			n, src, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			if cfg.verbose {
				fmt.Fprintf(os.Stderr, "recv %d bytes from %s\n", n, src)
			}
			if resp := handle(cfg, &served, buf[:n]); resp != nil {
				pc.WriteTo(resp, src)
			}
		}
	case "tcp":
		l, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", *port))
		if err != nil {
			fmt.Fprintf(os.Stderr, "echoserver: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(banner(cfg, *port))
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				r := bufio.NewReader(c)
				buf := make([]byte, 64<<10)
				for {
					n, err := r.Read(buf)
					if n > 0 {
						if resp := handle(cfg, &served, buf[:n]); resp != nil {
							c.Write(resp)
						}
					}
					if err != nil {
						return
					}
				}
			}(conn)
		}
	default:
		fmt.Fprintf(os.Stderr, "echoserver: unknown transport %q\n", *transport)
		os.Exit(2)
	}
}
