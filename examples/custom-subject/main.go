// custom-subject shows how to put your own protocol implementation under
// CMFuzz: implement the Subject/Instance contract for a tiny TFTP-like
// file transfer server, hand the framework its configuration sources and
// Pit models, and run the full identification → scheduling → fuzzing
// pipeline against it.
package main

import (
	"fmt"
	"log"

	"cmfuzz"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/protocols/probes"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/wire"
)

// --- the protocol implementation under test -------------------------------

// tftpServer is a miniature TFTP-like server: RRQ/WRQ/DATA/ACK/ERROR
// packets, an optional "windowsize" extension, and an optional read-only
// mode. Its configuration surface is a small key-value file.
type tftpServer struct {
	tr        *coverage.Trace
	readOnly  bool
	window    int
	timeout   int
	blockSize int
	files     map[string][]byte
}

const (
	opRRQ   = 1
	opWRQ   = 2
	opDATA  = 3
	opACK   = 4
	opERROR = 5
)

func (s *tftpServer) Start(cfg map[string]string, tr *coverage.Trace) error {
	s.tr = tr
	s.readOnly = probes.Bool(cfg, "read-only", false)
	s.window = probes.Int(cfg, "windowsize", 1)
	s.timeout = probes.Int(cfg, "timeout", 5)
	s.blockSize = probes.Int(cfg, "blocksize", 512)
	if s.blockSize < 8 || s.blockSize > 65464 {
		return fmt.Errorf("tftp: blocksize out of range")
	}
	if s.window < 1 {
		return fmt.Errorf("tftp: windowsize must be positive")
	}
	s.files = map[string][]byte{"motd": []byte("hello from tftp")}
	// Startup coverage: base + per-feature regions.
	for i := uint64(0); i < 6; i++ {
		tr.Edge(1, i)
	}
	tr.Edge(2, probes.Bucket(s.blockSize))
	tr.Edge(2, 32+probes.Bucket(s.timeout))
	if s.readOnly {
		tr.Edge(3, 0)
		tr.Edge(3, 1)
	}
	if s.window > 1 {
		tr.Edge(4, uint64(s.window%16))
		if s.blockSize > 512 {
			tr.Edge(5, 0) // large-transfer synergy
		}
	}
	return nil
}

func (s *tftpServer) SetTrace(tr *coverage.Trace) { s.tr = tr }
func (s *tftpServer) NewSession()                 {}
func (s *tftpServer) Close()                      {}

func (s *tftpServer) Message(data []byte) [][]byte {
	r := wire.NewReader(data)
	op := r.U16()
	if r.Err() != nil {
		s.tr.Edge(10, 0)
		return nil
	}
	s.tr.Edge(10, uint64(op%8))
	switch op {
	case opRRQ:
		name := readCString(r)
		s.tr.Edge(11, probes.Hash(name)%128)
		if body, ok := s.files[name]; ok {
			w := wire.NewWriter(4 + len(body))
			w.U16(opDATA)
			w.U16(1)
			w.Raw(body)
			return [][]byte{w.Bytes()}
		}
		return [][]byte{tftpError(1, "file not found")}
	case opWRQ:
		name := readCString(r)
		s.tr.Edge(12, probes.Hash(name)%128)
		if s.readOnly {
			s.tr.Edge(12, 200)
			return [][]byte{tftpError(2, "read-only server")}
		}
		if len(s.files) < 128 {
			s.files[name] = nil
		}
		w := wire.NewWriter(4)
		w.U16(opACK)
		w.U16(0)
		return [][]byte{w.Bytes()}
	case opDATA:
		block := r.U16()
		payload := r.Rest()
		s.tr.Edge(13, probes.Bucket(int(block)))
		s.tr.Edge(13, 32+probes.HashBytes(payload)%256)
		if len(payload) > s.blockSize {
			s.tr.Edge(13, 300)
			return [][]byte{tftpError(4, "block too large")}
		}
		w := wire.NewWriter(4)
		w.U16(opACK)
		w.U16(block)
		return [][]byte{w.Bytes()}
	case opACK:
		s.tr.Edge(14, probes.Bucket(int(r.U16())))
		return nil
	case opERROR:
		s.tr.Edge(15, uint64(r.U16()%16))
		return nil
	default:
		s.tr.Edge(10, 100+uint64(op%64))
		return nil
	}
}

func readCString(r *wire.Reader) string {
	var out []byte
	for !r.Empty() {
		b := r.U8()
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

func tftpError(code uint16, msg string) []byte {
	w := wire.NewWriter(5 + len(msg))
	w.U16(opERROR)
	w.U16(code)
	w.Raw([]byte(msg))
	w.U8(0)
	return w.Bytes()
}

// --- the Subject wrapper ---------------------------------------------------

type tftpSubject struct{}

func (tftpSubject) Info() subject.Info {
	return subject.Info{Protocol: "TFTP", Implementation: "tinytftp", Transport: subject.Datagram, Port: 69}
}

func (tftpSubject) ConfigInput() configspec.Input {
	return configspec.Input{Files: []configspec.File{{Name: "tftp.conf", Content: `# tinytftp configuration
blocksize=512
timeout=5
windowsize=1
# read-only=true
`}}}
}

func (tftpSubject) PitXML() string {
	return `<?xml version="1.0"?>
<Peach>
  <DataModel name="Read">
    <Number name="op" bits="16" value="1" token="true"/>
    <String name="file" value="motd"/>
    <Number name="z1" bits="8" value="0" token="true"/>
    <String name="mode" value="octet"/>
    <Number name="z2" bits="8" value="0" token="true"/>
  </DataModel>
  <DataModel name="Write">
    <Number name="op" bits="16" value="2" token="true"/>
    <String name="file" value="upload.bin"/>
    <Number name="z1" bits="8" value="0" token="true"/>
    <String name="mode" value="octet"/>
    <Number name="z2" bits="8" value="0" token="true"/>
  </DataModel>
  <DataModel name="Data">
    <Number name="op" bits="16" value="3" token="true"/>
    <Number name="block" bits="16" value="1"/>
    <Blob name="payload" valueHex="00112233"/>
  </DataModel>
  <StateModel name="Transfer" initialState="request">
    <State name="request">
      <Action type="output" dataModel="Read"/>
      <Action type="changeState" to="uploading"/>
    </State>
    <State name="uploading">
      <Action type="output" dataModel="Write"/>
      <Action type="output" dataModel="Data"/>
    </State>
  </StateModel>
</Peach>`
}

func (tftpSubject) NewInstance() subject.Instance { return &tftpServer{} }

// --- drive the pipeline ------------------------------------------------------

func main() {
	sub := tftpSubject{}

	plan := cmfuzz.Identify(sub, 2)
	fmt.Printf("custom subject %q: %d entities, %d relation edges\n",
		sub.Info().Implementation, plan.Model.Len(), plan.Relation.Graph.EdgeCount())
	for i, a := range plan.Assignments {
		fmt.Printf("  instance %d config: %s\n", i, a.String())
	}

	res, err := cmfuzz.Fuzz(sub, cmfuzz.Options{
		Mode:         cmfuzz.ModeCMFuzz,
		Instances:    2,
		VirtualHours: 1,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fuzzed: %d branches over %d execs\n", res.FinalBranches, res.TotalExecs)
}
