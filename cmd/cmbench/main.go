// Command cmbench regenerates every table and figure of the paper's
// evaluation section:
//
//	cmbench -table1              Table I  (branches, improvement, speedup)
//	cmbench -fig4                Figure 4 (coverage-over-time curves)
//	cmbench -table2              Table II (previously-unknown bugs)
//	cmbench -ablation            design-choice ablations
//	cmbench -all                 everything
//
// The paper's full setting is -hours 24 -reps 5; the defaults are scaled
// down so a laptop run finishes in a couple of minutes. Campaigns run on
// the virtual clock, so hours are simulated, not wall time.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cmfuzz/internal/campaign"
	"cmfuzz/internal/monitor"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
)

func main() {
	table1 := flag.Bool("table1", false, "regenerate Table I")
	fig4 := flag.Bool("fig4", false, "regenerate Figure 4")
	table2 := flag.Bool("table2", false, "regenerate Table II")
	ablation := flag.Bool("ablation", false, "run the design-choice ablations")
	all := flag.Bool("all", false, "regenerate everything")
	hours := flag.Float64("hours", 24, "virtual hours per campaign (paper: 24)")
	reps := flag.Int("reps", 5, "repetitions per configuration (paper: 5)")
	instances := flag.Int("n", 4, "parallel instances (paper: 4)")
	concurrency := flag.Int("j", 0, "concurrent campaigns and probe workers (0 = GOMAXPROCS); output is identical for any value")
	subjectName := flag.String("subject", "", "restrict to one subject")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	svgDir := flag.String("svg", "", "also write Figure 4 panels as SVG files into this directory")
	eventsPath := flag.String("events", "", "write every campaign's structured event stream as JSONL to this file")
	tracePath := flag.String("trace", "", "write a wall-clock Chrome trace (chrome://tracing / Perfetto) to this file")
	monitorAddr := flag.String("monitor", "", "serve /status, /metrics, /healthz and /debug/pprof on this host:port while campaigns run")
	flag.Parse()

	if !*table1 && !*fig4 && !*table2 && !*ablation && !*all {
		flag.Usage()
		os.Exit(2)
	}
	sess, err := monitor.StartSession(monitor.SessionConfig{
		EventsPath:  *eventsPath,
		TracePath:   *tracePath,
		MonitorAddr: *monitorAddr,
		RootSpan:    "cmbench",
	})
	exitOn(err)
	if sess.Server != nil && !*jsonOut {
		fmt.Printf("monitor listening on %s\n", sess.Server.URL())
	}
	rec := sess.Recorder
	cfg := campaign.Config{Hours: *hours, Repetitions: *reps, Instances: *instances, Concurrency: *concurrency,
		Telemetry: rec, Trace: sess.Root, Progress: sess.Progress}

	subs := protocols.All()
	if *subjectName != "" {
		sub, err := protocols.ByName(*subjectName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmbench:", err)
			os.Exit(1)
		}
		subs = []subject.Subject{sub}
	}

	start := time.Now()
	export := &campaign.Export{Config: cfg}
	if *table1 || *all {
		rows, err := campaign.Table1(context.Background(), subs, cfg)
		exitOn(err)
		if *jsonOut {
			export.Table1 = rows
		} else {
			fmt.Printf("== Table I: branches covered (4 instances, %gh x %d reps) ==\n", *hours, *reps)
			fmt.Print(campaign.RenderTable1(rows))
			fmt.Println()
		}
	}
	if *fig4 || *all {
		if !*jsonOut {
			fmt.Println("== Figure 4: branch coverage over time ==")
		}
		for _, sub := range subs {
			f, err := campaign.Figure4(context.Background(), sub, cfg, 64)
			exitOn(err)
			if *svgDir != "" {
				path := filepath.Join(*svgDir, "figure4-"+strings.ToLower(f.Subject)+".svg")
				exitOn(os.WriteFile(path, []byte(f.SVG(campaign.SVGOptions{})), 0o644))
				if !*jsonOut {
					fmt.Println("wrote", path)
				}
			}
			if *jsonOut {
				export.Figure4 = append(export.Figure4, *f)
			} else {
				fmt.Print(campaign.RenderFigure4(f, 64, 14))
				fmt.Println()
			}
		}
	}
	if *table2 || *all {
		rows, err := campaign.Table2(context.Background(), subs, cfg)
		exitOn(err)
		if *jsonOut {
			export.Table2 = campaign.NewTable2Export(rows)
		} else {
			fmt.Println("== Table II: previously-unknown bugs ==")
			fmt.Print(campaign.RenderTable2(rows))
			fmt.Println()
		}
	}
	if *ablation || *all {
		fmt.Println("== Ablations: CMFuzz design choices ==")
		rows, err := campaign.Ablations(context.Background(), subs, cfg)
		exitOn(err)
		fmt.Print(campaign.RenderAblations(rows))
		fmt.Println()
	}
	if *jsonOut {
		// Keep stdout pure JSON: export announcements go to stderr.
		exitOn(sess.Finish(os.Stderr))
		raw, err := export.JSON()
		exitOn(err)
		fmt.Println(string(raw))
		return
	}
	exitOn(sess.Finish(os.Stdout))
	fmt.Printf("(completed in %v wall time)\n", time.Since(start).Round(time.Second))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmbench:", err)
		os.Exit(1)
	}
}
