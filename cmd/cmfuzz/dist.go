package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"cmfuzz/internal/campaign"
	"cmfuzz/internal/dist"
	"cmfuzz/internal/monitor"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
)

// signalContext returns a context cancelled on SIGINT/SIGTERM, so a
// campaign interrupted at the terminal still finalizes partial
// artifacts (parallel.Run and dist return a well-formed Result with
// ctx.Err()).
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func parseMode(name string) (parallel.Mode, error) {
	switch strings.ToLower(name) {
	case "cmfuzz":
		return parallel.ModeCMFuzz, nil
	case "peach":
		return parallel.ModePeach, nil
	case "spfuzz":
		return parallel.ModeSPFuzz, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

// cmdCoordinator runs the distributed campaign's coordinator: listen,
// wait for the expected number of workers to attach, run the campaign,
// and print the same summary `cmfuzz fuzz` prints — plus the
// distribution bookkeeping (lease traffic, worker failures).
func cmdCoordinator(args []string) error {
	fs := flag.NewFlagSet("coordinator", flag.ExitOnError)
	name := subjectFlag(fs)
	listen := fs.String("listen", "127.0.0.1:7070", "address to accept worker connections on")
	workers := fs.Int("workers", 2, "number of workers to wait for before starting")
	modeName := fs.String("mode", "cmfuzz", "fuzzer: cmfuzz, peach or spfuzz")
	hours := fs.Float64("hours", 24, "virtual campaign hours")
	seed := fs.Int64("seed", 1, "campaign seed")
	instances := fs.Int("n", 4, "parallel instances")
	concurrency := fs.Int("j", 0, "relation-probe worker pool size (0 = GOMAXPROCS)")
	outDir := fs.String("out", "", "write artifacts (result.json, coverage.csv, crashes/) to this directory")
	telemetryOn := fs.Bool("telemetry", false, "collect structured events; print the timeline and counters")
	eventsPath := fs.String("events", "", "write the structured event stream as JSONL to this file (implies -telemetry)")
	tracePath := fs.String("trace", "", "write a wall-clock Chrome trace (chrome://tracing / Perfetto) to this file, with worker spans stitched in as extra process lanes")
	monitorAddr := fs.String("monitor", "", "serve /status, /metrics, /healthz and /debug/pprof on this host:port (implies -telemetry)")
	fs.Parse(args)
	sub, err := getSubject(*name)
	if err != nil {
		return err
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}
	sess, err := monitor.StartSession(monitor.SessionConfig{
		Telemetry:   *telemetryOn,
		EventsPath:  *eventsPath,
		TracePath:   *tracePath,
		MonitorAddr: *monitorAddr,
		RootSpan:    "coordinator",
	})
	if err != nil {
		return err
	}
	if sess.Server != nil {
		fmt.Printf("monitor listening on %s\n", sess.Server.URL())
	}

	coord := dist.NewCoordinator(sub, parallel.Options{
		Mode:         mode,
		Instances:    *instances,
		VirtualHours: *hours,
		Seed:         *seed,
		Concurrency:  *concurrency,
		Telemetry:    sess.Recorder,
		Trace:        sess.Root,
		Progress:     sess.Progress,
	}, dist.Config{})
	leaseLat := sess.Registry.Histogram("cmfuzz_lease_latency_seconds",
		"Round-trip time of one worker lease RPC, request encode to reply decode.", nil)
	coord.SetObserver(dist.Observer{
		Lease: func(_, _, _, _ int, seconds float64, _ bool) { leaseLat.Observe(seconds) },
		Death: func(worker string) { fmt.Fprintf(os.Stderr, "cmfuzz: worker %s died; reassigning its instances\n", worker) },
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("coordinator listening on %s, waiting for %d workers\n", ln.Addr(), *workers)
	monitor.RegisterWorkers(sess.Registry, coord.Workers, nil)
	for i := 0; i < *workers; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if err := coord.AddConn(conn); err != nil {
			fmt.Fprintln(os.Stderr, "cmfuzz:", err)
			i--
			continue
		}
		fmt.Printf("worker %d/%d attached from %s\n", i+1, *workers, conn.RemoteAddr())
	}

	ctx, cancel := signalContext()
	defer cancel()
	res, err := coord.Run(ctx)
	if err != nil && res == nil {
		sess.Finish(nil)
		return err
	}
	if err != nil {
		fmt.Printf("campaign interrupted (%v); writing partial results\n", err)
	}
	fmt.Printf("%s on %s: %d branches, %d execs over %g virtual hours (distributed, %d workers)\n",
		mode, sub.Info().Implementation, res.FinalBranches, res.TotalExecs, *hours, *workers)
	for _, in := range res.Instances {
		fmt.Printf("  instance %d: %6d branches, %7d execs, %d crashes, %d config mutations\n",
			in.Index, in.FinalBranches, in.Execs, in.Crashes, in.ConfigMutations)
	}
	st := coord.Stats()
	fmt.Printf("  lease traffic: %d bytes; worker deaths: %d; reassignments: %d\n",
		st.SyncBytes, st.WorkerDeaths, st.Reassignments)
	for _, ws := range coord.Workers() {
		state := "alive"
		if !ws.Alive {
			state = "dead"
		}
		fmt.Printf("  worker %-12s %-5s %9d execs %8d lease bytes\n", ws.Name, state, ws.Execs, ws.SyncBytes)
	}
	if *outDir != "" {
		if werr := campaign.WriteArtifacts(*outDir, res); werr != nil {
			return werr
		}
		fmt.Println("artifacts written to", *outDir)
	}
	if ferr := finishSession(sess, *telemetryOn); ferr != nil {
		return ferr
	}
	return err
}

// cmdWorker runs one worker node: dial the coordinator (with jittered
// exponential backoff, so a fleet restarted together does not
// stampede), then serve campaign RPCs until the coordinator shuts the
// campaign down.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	connect := fs.String("connect", "127.0.0.1:7070", "coordinator address")
	name := fs.String("name", "", "worker name reported to the coordinator (default host:pid)")
	attempts := fs.Int("attempts", 10, "connection attempts before giving up")
	fs.Parse(args)
	wname := *name
	if wname == "" {
		host, _ := os.Hostname()
		wname = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	conn, err := dist.Dial(*connect, *attempts, int64(os.Getpid()))
	if err != nil {
		return err
	}
	fmt.Printf("worker %s connected to %s\n", wname, *connect)
	ctx, cancel := signalContext()
	defer cancel()
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	w := dist.NewWorker(dist.WorkerConfig{Name: wname, Resolve: protocols.ByName})
	if err := w.Serve(conn); err != nil && ctx.Err() == nil {
		return err
	}
	fmt.Println("worker done")
	return nil
}
