package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// TestFuzzEventsImpliesTelemetry is the flag-interplay regression test:
// -events alone (no -telemetry) must still stand up the recorder and
// write the JSONL file, rather than silently exporting nothing.
func TestFuzzEventsImpliesTelemetry(t *testing.T) {
	events := filepath.Join(t.TempDir(), "events.jsonl")
	out, err := captureStdout(t, func() error {
		return cmdFuzz([]string{"-subject", "DNS", "-mode", "peach", "-hours", "0.05", "-events", events})
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatalf("-events without -telemetry wrote no file: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("events file empty")
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("events line not JSON: %v: %q", err, line)
		}
	}
	if !strings.Contains(out, events) {
		t.Fatalf("output does not announce the events file:\n%s", out)
	}
	// Without -telemetry the timeline must NOT print.
	if strings.Contains(out, "timeline") {
		t.Fatalf("-events alone printed the timeline:\n%s", out)
	}
}

// TestFuzzTraceExportsChromeJSON pins the -trace flag end to end: the
// exported file must be trace_event JSON with the campaign's spans.
func TestFuzzTraceExportsChromeJSON(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	out, err := captureStdout(t, func() error {
		return cmdFuzz([]string{"-subject", "DNS", "-hours", "0.05", "-trace", tracePath})
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"fuzz", "relation.quantify", "probe.execute", "schedule.allocate", "instance"} {
		if !names[want] {
			t.Fatalf("trace missing span %q; have %v", want, names)
		}
	}
	if !strings.Contains(out, "Perfetto") && !strings.Contains(out, "perfetto") {
		t.Fatalf("output does not mention the trace viewer:\n%s", out)
	}
}

// TestFuzzMonitorFlag starts the fuzz subcommand with -monitor on an
// ephemeral port and asserts it announces the listener and shuts down
// cleanly (the CI smoke job exercises live scrapes).
func TestFuzzMonitorFlag(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdFuzz([]string{"-subject", "DNS", "-mode", "peach", "-hours", "0.05", "-monitor", "127.0.0.1:0"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "monitor listening on http://127.0.0.1:") {
		t.Fatalf("monitor address not announced:\n%s", out)
	}
}

// TestFuzzMonitorBadAddrErrors pins the clear-error half of the flag
// interplay: an unbindable -monitor address must fail up front, not
// silently fuzz unmonitored.
func TestFuzzMonitorBadAddrErrors(t *testing.T) {
	_, err := captureStdout(t, func() error {
		return cmdFuzz([]string{"-subject", "DNS", "-hours", "0.05", "-monitor", "256.256.256.256:99999"})
	})
	if err == nil || !strings.Contains(err.Error(), "monitor") {
		t.Fatalf("bad -monitor addr did not error clearly: %v", err)
	}
}

// TestPromlint covers the promlint subcommand both ways.
func TestPromlint(t *testing.T) {
	good := filepath.Join(t.TempDir(), "good.prom")
	os.WriteFile(good, []byte("# TYPE up gauge\nup 1\n"), 0o644)
	out, err := captureStdout(t, func() error { return cmdPromlint([]string{good}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OK") || !strings.Contains(out, "1 families, 1 samples") {
		t.Fatalf("promlint output = %q", out)
	}
	bad := filepath.Join(t.TempDir(), "bad.prom")
	os.WriteFile(bad, []byte("not a metric line at all {{{\n"), 0o644)
	if _, err := captureStdout(t, func() error { return cmdPromlint([]string{bad}) }); err == nil {
		t.Fatal("promlint accepted garbage")
	}
}

// TestCampaignOutImpliesTelemetry pins the campaign-side implication:
// -out alone must produce events.jsonl and timeline.txt.
func TestCampaignOutImpliesTelemetry(t *testing.T) {
	dir := t.TempDir()
	_, err := captureStdout(t, func() error {
		return cmdCampaign([]string{"-subject", "DNS", "-hours", "0.05", "-reps", "1", "-n", "2", "-out", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"events.jsonl", "timeline.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("-out did not produce %s: %v", f, err)
		}
	}
}
