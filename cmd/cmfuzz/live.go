package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cmfuzz/internal/live"
	"cmfuzz/internal/subject"
)

// liveFlags groups the `fuzz` flags that point a campaign at a live
// external target instead of a built-in simulation subject.
type liveFlags struct {
	cmd           *string
	addr          *string
	template      *string
	transport     *string
	specPath      *string
	rate          *float64
	maxRestarts   *int
	restartWindow *float64
	maxHangs      *int
}

func addLiveFlags(fs *flag.FlagSet) *liveFlags {
	return &liveFlags{
		cmd:           fs.String("target-cmd", "", "live target: server command line ({port} and {config} are substituted); overrides -subject"),
		addr:          fs.String("target-addr", "", "live target: attach to an already-running server at host:port (no lifecycle management)"),
		template:      fs.String("target-config-template", "", "live target: path to the server's key=value config file template (identification input + render template)"),
		transport:     fs.String("target-transport", "udp", "live target transport: udp or tcp"),
		specPath:      fs.String("target-spec", "", "live target: path to a full JSON spec (overrides the individual -target-* flags)"),
		rate:          fs.Float64("target-rate", 0, "live target: max messages per wall-clock second (0 = unlimited)"),
		maxRestarts:   fs.Int("target-max-restarts", 0, "live target: kill switch fires above this many restarts per window (0 = off)"),
		restartWindow: fs.Float64("target-restart-window", 30, "live target: restart-storm window in seconds"),
		maxHangs:      fs.Int("target-max-hangs", 0, "live target: kill switch fires after this many hangs (0 = off)"),
	}
}

// enabled reports whether any live-target surface was requested.
func (lf *liveFlags) enabled() bool {
	return *lf.cmd != "" || *lf.addr != "" || *lf.specPath != ""
}

// subject builds the live subject from the flags (or the JSON spec
// file). The config template travels inline in the spec, so everything
// downstream — fleet workers included — is machine-independent.
func (lf *liveFlags) subject() (*live.Subject, error) {
	if *lf.specPath != "" {
		raw, err := os.ReadFile(*lf.specPath)
		if err != nil {
			return nil, err
		}
		return live.SubjectFromJSON(string(raw))
	}
	spec := live.Spec{
		Cmd:       strings.Fields(*lf.cmd),
		Addr:      *lf.addr,
		Transport: *lf.transport,
		Rails: live.Rails{
			Rate:          *lf.rate,
			MaxRestarts:   *lf.maxRestarts,
			RestartWindow: *lf.restartWindow,
			MaxHangs:      *lf.maxHangs,
		},
	}
	if *lf.template != "" {
		raw, err := os.ReadFile(*lf.template)
		if err != nil {
			return nil, err
		}
		spec.ConfigTemplate = string(raw)
	}
	return live.NewSubject(spec)
}

// liveKillSwitch returns the subject's kill switch when sub is a live
// subject, nil otherwise.
func liveKillSwitch(sub subject.Subject) *live.KillSwitch {
	if ls, ok := sub.(*live.Subject); ok {
		return ls.KillSwitch()
	}
	return nil
}

// printKillReason reports a kill-switch shutdown on stdout so the CI
// smoke (and an operator's eyeball) can confirm the stop was the rails
// acting, not a crash of the fuzzer itself.
func printKillReason(ks *live.KillSwitch) {
	if ks.Tripped() {
		fmt.Printf("kill switch tripped: %s — campaign stopped, partial results kept\n", ks.Reason())
	}
}
