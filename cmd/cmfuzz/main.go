// Command cmfuzz is the CMFuzz CLI. It exposes each stage of the pipeline
// and the full parallel fuzzing campaign:
//
//	cmfuzz subjects                         list the evaluation subjects
//	cmfuzz extract  -subject MQTT           run Algorithm 1 (items)
//	cmfuzz model    -subject MQTT           build the generalized model
//	cmfuzz relate   -subject MQTT           quantify relation weights
//	cmfuzz schedule -subject MQTT -n 4      allocate cohesive groups
//	cmfuzz fuzz     -subject MQTT -mode cmfuzz -hours 24 -seed 1
//	cmfuzz campaign -subject MQTT -reps 1 -events ev.jsonl
//
// All campaigns run on the virtual clock, so "-hours 24" completes in
// seconds of wall time. The fuzz and campaign subcommands take
// -telemetry (print the event timeline and counters), -events PATH
// (export the structured event stream as JSONL), -trace PATH (export a
// wall-clock Chrome trace for chrome://tracing / Perfetto) and
// -monitor ADDR (serve /status, /metrics, /healthz and /debug/pprof
// over HTTP while the campaign runs).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/campaign"
	"cmfuzz/internal/core"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/monitor"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/metrics"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "subjects":
		err = cmdSubjects()
	case "extract":
		err = cmdExtract(args)
	case "model":
		err = cmdModel(args)
	case "relate":
		err = cmdRelate(args)
	case "schedule":
		err = cmdSchedule(args)
	case "fuzz":
		err = cmdFuzz(args)
	case "campaign":
		err = cmdCampaign(args)
	case "coordinator":
		err = cmdCoordinator(args)
	case "worker":
		err = cmdWorker(args)
	case "serve":
		err = cmdServe(args)
	case "bugs":
		err = cmdBugs()
	case "promlint":
		err = cmdPromlint(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cmfuzz: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmfuzz:", err)
		os.Exit(1)
	}
}

func cmdBugs() error {
	fmt.Printf("%-4s %-9s %-24s %s\n", "No.", "Protocol", "Vulnerability Type", "Affected Function")
	for _, k := range bugs.Table2 {
		fmt.Printf("%-4d %-9s %-24s %s\n", k.No, k.Protocol, k.Kind, k.Function)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cmfuzz <command> [flags]

commands:
  subjects   list the six evaluation subjects
  extract    extract configuration items (Algorithm 1)
  model      build the generalized configuration model (Figure 2)
  relate     quantify pairwise relation weights (Figure 3)
  schedule   allocate cohesive configuration groups (Algorithm 2)
  fuzz       run a parallel fuzzing campaign
  campaign   run the three-fuzzer comparison on one subject
  coordinator  run a distributed campaign's coordinator (workers attach over TCP)
  worker       run a worker node serving campaign instances for a coordinator
  serve        run the fleet service: many campaigns over one worker pool,
               submitted and observed via HTTP, resumable across restarts
  bugs       list the Table II vulnerability registry
  promlint   validate Prometheus text exposition read from a file or stdin

common flags:  -subject NAME (protocol or implementation name)
telemetry:     -telemetry (print timeline + counters), -events PATH (JSONL export)
observability: -trace PATH (Chrome trace JSON for chrome://tracing / Perfetto),
               -monitor ADDR (HTTP /status, /metrics, /healthz, /debug/pprof)`)
}

func subjectFlag(fs *flag.FlagSet) *string {
	return fs.String("subject", "MQTT", "subject protocol or implementation name")
}

func getSubject(name string) (subject.Subject, error) {
	return protocols.ByName(name)
}

func cmdSubjects() error {
	fmt.Printf("%-10s %-12s %-9s %s\n", "Protocol", "Implement.", "Transport", "Port")
	for _, s := range protocols.All() {
		info := s.Info()
		fmt.Printf("%-10s %-12s %-9s %d\n", info.Protocol, info.Implementation, info.Transport, info.Port)
	}
	return nil
}

func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	name := subjectFlag(fs)
	fs.Parse(args)
	sub, err := getSubject(*name)
	if err != nil {
		return err
	}
	items := configspec.Extract(sub.ConfigInput())
	fmt.Printf("%d configuration items extracted from %s sources:\n", len(items), sub.Info().Implementation)
	for _, it := range items {
		vals := ""
		if len(it.Values) > 0 {
			vals = " candidates=" + strings.Join(it.Values, ",")
		}
		fmt.Printf("  %-55s source=%-12s default=%q%s\n", it.Name, it.Source, it.Default, vals)
	}
	return nil
}

func cmdModel(args []string) error {
	fs := flag.NewFlagSet("model", flag.ExitOnError)
	name := subjectFlag(fs)
	fs.Parse(args)
	sub, err := getSubject(*name)
	if err != nil {
		return err
	}
	model := configmodel.Build(configspec.Extract(sub.ConfigInput()))
	fmt.Printf("generalized configuration model for %s (%d entities):\n", sub.Info().Implementation, model.Len())
	fmt.Printf("  %-55s %-8s %-10s %s\n", "Name", "Type", "Flag", "Values")
	for _, e := range model.Entities() {
		fmt.Printf("  %-55s %-8s %-10s %s\n", e.Name, e.Type, e.Flag, strings.Join(e.Values, ","))
	}
	return nil
}

func pipelineFor(sub subject.Subject, instances int) *core.Pipeline {
	return &core.Pipeline{
		Probe: func(cfg configmodel.Assignment) int {
			return subject.Probe(sub, map[string]string(cfg))
		},
		Instances: instances,
		MaxValues: 4,
	}
}

func cmdRelate(args []string) error {
	fs := flag.NewFlagSet("relate", flag.ExitOnError)
	name := subjectFlag(fs)
	fs.Parse(args)
	sub, err := getSubject(*name)
	if err != nil {
		return err
	}
	plan := pipelineFor(sub, 4).Run(sub.ConfigInput())
	rel := plan.Relation
	fmt.Printf("relation-aware configuration model for %s:\n", sub.Info().Implementation)
	fmt.Printf("  baseline startup coverage: %d branches (%d startups for %d probe requests, %d values capped)\n",
		rel.Baseline, rel.Probes, rel.ProbeRequests, rel.DroppedValues)
	fmt.Printf("  %d relation edges:\n", rel.Graph.EdgeCount())
	for _, e := range rel.Graph.SortedEdges() {
		best := rel.Best[relationKey(e.A, e.B)]
		fmt.Printf("    %.2f  %s=%s <-> %s=%s (coverage %d)\n",
			e.Weight, best.A, best.ValueA, best.B, best.ValueB, best.Cover)
	}
	return nil
}

// relationKey mirrors relation.PairKey without importing it here twice.
func relationKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b
}

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	name := subjectFlag(fs)
	n := fs.Int("n", 4, "number of parallel instances")
	fs.Parse(args)
	sub, err := getSubject(*name)
	if err != nil {
		return err
	}
	plan := pipelineFor(sub, *n).Run(sub.ConfigInput())
	fmt.Printf("cohesive groups for %s across %d instances:\n", sub.Info().Implementation, *n)
	for i, g := range plan.Groups {
		fmt.Printf("  instance %d: %s\n", i, strings.Join(g.Members, ", "))
		fmt.Printf("    config: %s\n", plan.Assignments[i].String())
	}
	return nil
}

func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	name := subjectFlag(fs)
	modeName := fs.String("mode", "cmfuzz", "fuzzer: cmfuzz, peach or spfuzz")
	hours := fs.Float64("hours", 24, "virtual campaign hours")
	seed := fs.Int64("seed", 1, "campaign seed")
	instances := fs.Int("n", 4, "parallel instances")
	alloc := fs.String("alloc", "cohesive", "CMFuzz allocator: cohesive, random or round-robin (ablation)")
	noMut := fs.Bool("no-config-mutation", false, "disable adaptive configuration mutation (ablation)")
	rawWeights := fs.Bool("raw-weights", false, "use raw-coverage relation weights (ablation)")
	concurrency := fs.Int("j", 0, "relation-probe worker pool size (0 = GOMAXPROCS); results are identical for any value")
	outDir := fs.String("out", "", "write artifacts (result.json, coverage.csv, crashes/) to this directory")
	telemetryOn := fs.Bool("telemetry", false, "collect structured events; print the timeline and counters")
	eventsPath := fs.String("events", "", "write the structured event stream as JSONL to this file (implies -telemetry)")
	tracePath := fs.String("trace", "", "write a wall-clock Chrome trace (chrome://tracing / Perfetto) to this file")
	monitorAddr := fs.String("monitor", "", "serve /status, /metrics, /healthz and /debug/pprof on this host:port (implies -telemetry)")
	satWindow := fs.Float64("sat-window", 0, "saturation window in virtual seconds (0 = default 1800)")
	satMinGain := fs.Int("sat-min-gain", 0, "per-window coverage gain below which an instance saturates (0 = default 8)")
	linkLoss := fs.Float64("link-loss", 0, "drop each fuzzer-to-target datagram with this probability")
	linkLatency := fs.Float64("link-latency", 0, "base virtual link latency per delivered message, seconds")
	linkJitter := fs.Float64("link-jitter", 0, "uniform virtual latency jitter on top of -link-latency, seconds")
	lf := addLiveFlags(fs)
	fs.Parse(args)
	var sub subject.Subject
	if lf.enabled() {
		ls, lerr := lf.subject()
		if lerr != nil {
			return lerr
		}
		sub = ls
		// A live campaign's safety-rail counters must land in result.json,
		// so the recorder is always on.
		*telemetryOn = true
	} else {
		var serr error
		sub, serr = getSubject(*name)
		if serr != nil {
			return serr
		}
	}
	sess, err := monitor.StartSession(monitor.SessionConfig{
		Telemetry:   *telemetryOn,
		EventsPath:  *eventsPath,
		TracePath:   *tracePath,
		MonitorAddr: *monitorAddr,
		RootSpan:    "fuzz",
	})
	if err != nil {
		return err
	}
	if sess.Server != nil {
		fmt.Printf("monitor listening on %s\n", sess.Server.URL())
	}
	rec := sess.Recorder
	var mode parallel.Mode
	switch strings.ToLower(*modeName) {
	case "cmfuzz":
		mode = parallel.ModeCMFuzz
	case "peach":
		mode = parallel.ModePeach
	case "spfuzz":
		mode = parallel.ModeSPFuzz
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}
	var allocator parallel.Allocator
	switch *alloc {
	case "cohesive":
		allocator = parallel.AllocCohesive
	case "random":
		allocator = parallel.AllocRandom
	case "round-robin":
		allocator = parallel.AllocRoundRobin
	default:
		return fmt.Errorf("unknown allocator %q", *alloc)
	}
	ctx, cancel := signalContext()
	defer cancel()
	ks := liveKillSwitch(sub)
	if ks != nil {
		if ls, ok := sub.(interface{ SetRecorder(*telemetry.Recorder) }); ok {
			ls.SetRecorder(rec)
		}
		// The kill switch hard-stops the campaign through context
		// cancellation; Run finalizes a partial result we still report.
		kctx, kcancel := context.WithCancel(ctx)
		defer kcancel()
		ks.SetOnTrip(func(string) { kcancel() })
		ctx = kctx
	}
	res, err := parallel.Run(ctx, sub, parallel.Options{
		Mode:                  mode,
		Instances:             *instances,
		VirtualHours:          *hours,
		Seed:                  *seed,
		Allocator:             allocator,
		DisableConfigMutation: *noMut,
		RawRelationWeighting:  *rawWeights,
		SaturationWindow:      *satWindow,
		SaturationMinGain:     *satMinGain,
		LinkLoss:              *linkLoss,
		LinkLatencyBase:       *linkLatency,
		LinkLatencyJitter:     *linkJitter,
		Concurrency:           *concurrency,
		Telemetry:             rec,
		Trace:                 sess.Root,
		Progress:              sess.Progress,
	})
	if err != nil && !(res != nil && ks.Tripped() && errors.Is(err, context.Canceled)) {
		sess.Finish(nil)
		return err
	}
	fmt.Printf("%s on %s: %d branches, %d execs over %g virtual hours\n",
		mode, sub.Info().Implementation, res.FinalBranches, res.TotalExecs, *hours)
	for _, in := range res.Instances {
		fmt.Printf("  instance %d: %6d branches, %7d execs, %d crashes, %d config mutations\n",
			in.Index, in.FinalBranches, in.Execs, in.Crashes, in.ConfigMutations)
		if mode == parallel.ModeCMFuzz {
			fmt.Printf("    config: %s\n", in.Config)
		}
	}
	if *outDir != "" {
		if err := campaign.WriteArtifacts(*outDir, res); err != nil {
			return err
		}
		fmt.Println("artifacts written to", *outDir)
	}
	reports := res.Bugs.Unique()
	sort.Slice(reports, func(i, j int) bool { return reports[i].Time < reports[j].Time })
	if len(reports) > 0 {
		fmt.Printf("unique bugs (%d):\n", len(reports))
		for _, r := range reports {
			fmt.Printf("  [%6.1fh] %s\n", r.Time/3600, r.Crash.Error())
		}
	}
	if ks != nil {
		printKillReason(ks)
	}
	return finishSession(sess, *telemetryOn)
}

// finishSession prints the timeline (under -telemetry), then lets the
// session export the event stream and trace file and stop the monitor.
func finishSession(sess *monitor.Session, show bool) error {
	if show && sess.Recorder.Enabled() {
		fmt.Print(sess.Recorder.Timeline(72))
	}
	return sess.Finish(os.Stdout)
}

// cmdPromlint validates a Prometheus text exposition (a /metrics scrape)
// from the given file or stdin — the CI monitor smoke pipes curl output
// through it. -strict adds the repo's naming conventions (counters end
// _total, lowercase snake names, HELP+TYPE on every family).
func cmdPromlint(args []string) error {
	fs := flag.NewFlagSet("promlint", flag.ExitOnError)
	strict := fs.Bool("strict", false, "also enforce naming conventions (counter _total suffix, lowercase names, HELP required)")
	fs.Parse(args)
	in, src := os.Stdin, "stdin"
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in, src = f, fs.Arg(0)
	}
	lint := metrics.Lint
	if *strict {
		lint = metrics.LintStrict
	}
	stats, err := lint(in)
	if err != nil {
		return fmt.Errorf("promlint: %s: %w", src, err)
	}
	fmt.Printf("promlint: %s OK — %d families, %d samples\n", src, stats.Families, stats.Samples)
	return nil
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	name := subjectFlag(fs)
	hours := fs.Float64("hours", 24, "virtual campaign hours")
	reps := fs.Int("reps", 1, "repetitions per fuzzer (paper: 5)")
	instances := fs.Int("n", 4, "parallel instances")
	seed := fs.Int64("seed", 0, "base seed (repetition r runs seed+r+1)")
	concurrency := fs.Int("j", 0, "concurrent campaigns and probe workers (0 = GOMAXPROCS)")
	distWorkers := fs.Int("dist", 0, "run each campaign through N in-process loopback workers (0 = in-process; results are identical)")
	telemetryOn := fs.Bool("telemetry", false, "collect structured events; print the timeline and counters")
	eventsPath := fs.String("events", "", "write the structured event stream as JSONL to this file (implies -telemetry)")
	tracePath := fs.String("trace", "", "write a wall-clock Chrome trace (chrome://tracing / Perfetto) to this file")
	monitorAddr := fs.String("monitor", "", "serve /status, /metrics, /healthz and /debug/pprof on this host:port (implies -telemetry)")
	outDir := fs.String("out", "", "also write events.jsonl and timeline.txt into this directory")
	fs.Parse(args)
	sub, err := getSubject(*name)
	if err != nil {
		return err
	}
	sess, err := monitor.StartSession(monitor.SessionConfig{
		Telemetry:   *telemetryOn || *outDir != "",
		EventsPath:  *eventsPath,
		TracePath:   *tracePath,
		MonitorAddr: *monitorAddr,
		RootSpan:    "campaign",
	})
	if err != nil {
		return err
	}
	if sess.Server != nil {
		fmt.Printf("monitor listening on %s\n", sess.Server.URL())
	}
	rec := sess.Recorder
	cfg := campaign.Config{
		Hours:       *hours,
		Repetitions: *reps,
		Instances:   *instances,
		BaseSeed:    *seed,
		Concurrency: *concurrency,
		Dist:        *distWorkers,
		Telemetry:   rec,
		Trace:       sess.Root,
		Progress:    sess.Progress,
	}
	ctx, cancel := signalContext()
	defer cancel()
	res, err := campaign.RunSubject(ctx, sub, cfg)
	if err != nil {
		sess.Finish(nil)
		return err
	}
	fmt.Printf("campaign on %s: %g virtual hours x %d repetitions, %d instances\n",
		res.Subject.Implementation, *hours, *reps, *instances)
	fmt.Printf("  %-8s %8s %8s %8s %9s\n", "Fuzzer", "Branches", "Bugs", "Improv", "Speedup")
	for _, st := range []campaign.FuzzerStats{res.CMFuzz, res.Peach, res.SPFuzz} {
		improv, speedup := "", ""
		if st.Mode != parallel.ModeCMFuzz {
			improv = fmt.Sprintf("%+7.1f%%", res.Improv(st))
			speedup = fmt.Sprintf("%8.0fx", res.Speedup(st))
		}
		fmt.Printf("  %-8s %8d %8d %8s %9s\n", st.Mode, st.Branches, st.Bugs.Len(), improv, speedup)
	}
	if *outDir != "" {
		if err := campaign.WriteTelemetry(*outDir, rec); err != nil {
			return err
		}
		fmt.Println("telemetry artifacts written to", *outDir)
	}
	return finishSession(sess, *telemetryOn)
}
