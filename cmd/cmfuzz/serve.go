package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"

	"cmfuzz/internal/dist"
	"cmfuzz/internal/fleet"
	"cmfuzz/internal/monitor"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/telemetry/metrics"
)

// cmdServe runs the long-lived fleet service: one shared worker pool,
// many campaigns submitted over HTTP, a bandit scheduler slicing worker
// time between them, and crash-safe state under -state. Stopping the
// process (SIGINT/SIGTERM) parks every running campaign at a
// checkpoint; restarting with the same -state resumes them with
// byte-identical final artifacts.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "address to accept worker connections on")
	workers := fs.Int("workers", 2, "number of workers to wait for before serving")
	stateDir := fs.String("state", "cmfuzz-state", "directory for campaign specs, checkpoints and artifacts")
	slice := fs.Float64("slice", 900, "scheduler quantum in virtual seconds")
	monitorAddr := fs.String("monitor", "127.0.0.1:8080", "HTTP address serving the monitor and the /api endpoints")
	fs.Parse(args)

	// The worker fleet is fixed at startup: campaigns capture the pool
	// snapshot when they start or resume, so late joiners would only
	// serve campaigns submitted after they attach. Keeping attachment a
	// startup phase makes the capacity of the service explicit.
	pool := dist.NewPool(dist.Config{})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("serve listening on %s, waiting for %d workers\n", ln.Addr(), *workers)
	for i := 0; i < *workers; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if err := pool.AddConn(conn); err != nil {
			fmt.Fprintln(os.Stderr, "cmfuzz:", err)
			i--
			continue
		}
		fmt.Printf("worker %d/%d attached from %s\n", i+1, *workers, conn.RemoteAddr())
	}
	pool.StartHeartbeats()
	defer pool.Close()

	m, err := fleet.NewManager(fleet.Config{StateDir: *stateDir, Slice: *slice}, pool, protocols.ByName)
	if err != nil {
		return err
	}
	if recovered := m.Status(); len(recovered) > 0 {
		for _, cs := range recovered {
			fmt.Printf("recovered campaign %s (%s, %s)\n", cs.ID, cs.Subject, cs.State)
		}
	}

	reg := metrics.NewRegistry()
	monitor.RegisterWorkers(reg, pool.Workers, nil)
	monitor.RegisterFleet(reg, m.Status)
	m.Instrument(reg)
	srv, err := monitor.Start(*monitorAddr, monitor.Options{
		Registry: reg,
		Status: func() any {
			return map[string]any{"campaigns": m.Status(), "workers": pool.Workers()}
		},
		API: m.APIHandler(),
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("fleet API on %s/api/ (submit, status, results); monitor on %s\n", srv.URL(), srv.URL())

	ctx, cancel := signalContext()
	defer cancel()
	err = m.Run(ctx)
	if errors.Is(err, context.Canceled) {
		fmt.Println("serve: interrupted; running campaigns parked at checkpoints")
		return nil
	}
	return err
}
