package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"

	"cmfuzz/internal/dist"
	"cmfuzz/internal/fleet"
	"cmfuzz/internal/monitor"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/telemetry/metrics"
)

// cmdServe runs the long-lived fleet service: one shared worker pool,
// many campaigns submitted over HTTP, a bandit scheduler partitioning
// the workers between them every round, and crash-safe state under
// -state. Stopping the process (SIGINT/SIGTERM) parks every running
// campaign at a checkpoint; restarting with the same -state resumes
// them with byte-identical final artifacts.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "address to accept worker connections on")
	workers := fs.Int("workers", 2, "number of workers to wait for before serving")
	stateDir := fs.String("state", "cmfuzz-state", "directory for campaign specs, checkpoints and artifacts")
	slice := fs.Float64("slice", 900, "scheduler quantum in virtual seconds")
	concurrency := fs.Int("concurrency", 0, "max campaigns slicing per round (0 = all runnable, 1 = legacy serial scheduler)")
	monitorAddr := fs.String("monitor", "127.0.0.1:8080", "HTTP address serving the monitor and the /api endpoints")
	fs.Parse(args)

	// -workers is the startup barrier: the scheduler does not start
	// until that many workers attach. After that the accept loop keeps
	// running in the background — late joiners land in the pool's free
	// set and the next scheduling round hands them to a campaign.
	pool := dist.NewPool(dist.Config{})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("serve listening on %s, waiting for %d workers\n", ln.Addr(), *workers)
	for i := 0; i < *workers; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if err := pool.AddConn(conn); err != nil {
			fmt.Fprintln(os.Stderr, "cmfuzz:", err)
			i--
			continue
		}
		fmt.Printf("worker %d/%d attached from %s\n", i+1, *workers, conn.RemoteAddr())
	}
	pool.StartHeartbeats()
	defer pool.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed on shutdown
			}
			if err := pool.AddConn(conn); err != nil {
				fmt.Fprintln(os.Stderr, "cmfuzz:", err)
				continue
			}
			fmt.Printf("late worker attached from %s\n", conn.RemoteAddr())
		}
	}()

	m, err := fleet.NewManager(fleet.Config{StateDir: *stateDir, Slice: *slice, Concurrency: *concurrency},
		pool, protocols.ByName)
	if err != nil {
		return err
	}
	if recovered := m.Status(); len(recovered) > 0 {
		for _, cs := range recovered {
			fmt.Printf("recovered campaign %s (%s, %s)\n", cs.ID, cs.Subject, cs.State)
		}
	}

	reg := metrics.NewRegistry()
	monitor.RegisterWorkers(reg, pool.Workers, nil)
	monitor.RegisterFleet(reg, m.Status)
	m.Instrument(reg)
	srv, err := monitor.Start(*monitorAddr, monitor.Options{
		Registry: reg,
		Status: func() any {
			return map[string]any{"campaigns": m.Status(), "workers": pool.Workers()}
		},
		API: m.APIHandler(),
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("fleet API on %s/api/ (submit, status, results); monitor on %s\n", srv.URL(), srv.URL())

	ctx, cancel := signalContext()
	defer cancel()
	err = m.Run(ctx)
	if errors.Is(err, context.Canceled) {
		fmt.Println("serve: interrupted; running campaigns parked at checkpoints")
		return nil
	}
	return err
}
