// Package subjecttest is a reusable conformance suite for protocol
// subjects: every Subject implementation must satisfy the contract the
// fuzzing stack relies on — deterministic startup coverage, total
// robustness against arbitrary input bytes (the only permitted panic is
// a seeded *bugs.Crash), session isolation, and a Pit document whose
// models actually drive the implementation.
package subjecttest

import (
	"math/rand"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/subject"
)

// Run executes the full conformance suite against sub.
func Run(t *testing.T, sub subject.Subject) {
	t.Helper()
	t.Run("Info", func(t *testing.T) { testInfo(t, sub) })
	t.Run("DefaultsBoot", func(t *testing.T) { testDefaultsBoot(t, sub) })
	t.Run("StartupDeterministic", func(t *testing.T) { testStartupDeterministic(t, sub) })
	t.Run("ExtractionYieldsModel", func(t *testing.T) { testExtraction(t, sub) })
	t.Run("PitDrivesSubject", func(t *testing.T) { testPit(t, sub) })
	t.Run("RobustAgainstGarbage", func(t *testing.T) { testGarbage(t, sub) })
	t.Run("MutatedPitTraffic", func(t *testing.T) { testMutatedTraffic(t, sub) })
	t.Run("SessionReset", func(t *testing.T) { testSessionReset(t, sub) })
	t.Run("DefaultConfigFindsNoSeededBugs", func(t *testing.T) { testNoDefaultBugs(t, sub) })
}

func testInfo(t *testing.T, sub subject.Subject) {
	info := sub.Info()
	if info.Protocol == "" || info.Implementation == "" || info.Port == 0 {
		t.Fatalf("incomplete info: %+v", info)
	}
}

// defaults builds the default assignment from the subject's own extracted
// model — the configuration every baseline instance runs.
func defaults(sub subject.Subject) map[string]string {
	model := configmodel.Build(configspec.Extract(sub.ConfigInput()))
	return map[string]string(model.Defaults())
}

func testDefaultsBoot(t *testing.T, sub subject.Subject) {
	inst := sub.NewInstance()
	defer inst.Close()
	tr := coverage.NewTrace()
	if err := inst.Start(defaults(sub), tr); err != nil {
		t.Fatalf("default configuration fails startup: %v", err)
	}
	if tr.Count() == 0 {
		t.Fatal("startup produced no coverage")
	}
}

func testStartupDeterministic(t *testing.T, sub subject.Subject) {
	cov := func() int { return subject.Probe(sub, defaults(sub)) }
	a, b := cov(), cov()
	if a != b || a == 0 {
		t.Fatalf("startup coverage nondeterministic or empty: %d vs %d", a, b)
	}
}

func testExtraction(t *testing.T, sub subject.Subject) {
	items := configspec.Extract(sub.ConfigInput())
	if len(items) < 10 {
		t.Fatalf("only %d configuration items extracted", len(items))
	}
	model := configmodel.Build(items)
	mutable := 0
	for _, e := range model.Entities() {
		if e.Flag == configmodel.Mutable && len(e.Values) > 1 {
			mutable++
		}
	}
	if mutable < 5 {
		t.Fatalf("only %d mutable multi-valued entities — nothing to schedule", mutable)
	}
}

func testPit(t *testing.T, sub subject.Subject) {
	pit, err := fuzz.ParsePit(sub.PitXML())
	if err != nil {
		t.Fatalf("pit does not parse: %v", err)
	}
	if len(pit.DataModels) < 3 {
		t.Fatalf("only %d data models", len(pit.DataModels))
	}
	if len(pit.StateModels) != 1 {
		t.Fatalf("%d state models, want exactly 1", len(pit.StateModels))
	}
	var sm *fuzz.StateModel
	for _, m := range pit.StateModels {
		sm = m
	}
	if len(sm.Paths(12, 64)) < 2 {
		t.Fatal("state model has fewer than 2 distinct paths — SPFuzz cannot partition it")
	}

	// Unmutated pit traffic must reach real handling code: coverage from
	// one clean walk must clearly exceed startup-only coverage.
	inst := sub.NewInstance()
	defer inst.Close()
	startTr := coverage.NewTrace()
	if err := inst.Start(defaults(sub), startTr); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	runTr := coverage.NewTrace()
	inst.SetTrace(runTr)
	inst.NewSession()
	for _, name := range sm.Walk(r, 8) {
		dm := pit.DataModels[name]
		if dm == nil {
			t.Fatalf("state model outputs unknown data model %q", name)
		}
		if crash := bugs.Capture(func() { inst.Message(dm.NewMessage(r).Serialize()) }); crash != nil {
			t.Fatalf("clean pit traffic crashed: %v", crash)
		}
	}
	if runTr.Count() < 10 {
		t.Fatalf("clean pit walk produced only %d edges — models do not reach the implementation", runTr.Count())
	}
}

// testGarbage feeds random bytes; any panic that is not a typed crash is
// a harness bug in the subject's parser.
func testGarbage(t *testing.T, sub subject.Subject) {
	inst := sub.NewInstance()
	defer inst.Close()
	if err := inst.Start(defaults(sub), coverage.NewTrace()); err != nil {
		t.Fatal(err)
	}
	inst.SetTrace(coverage.NewTrace())
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		n := r.Intn(200)
		data := make([]byte, n)
		r.Read(data)
		if i%7 == 0 {
			inst.NewSession()
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(*bugs.Crash); !ok {
						t.Fatalf("untyped panic on input %x: %v", data, rec)
					}
				}
			}()
			inst.Message(data)
		}()
	}
}

// testMutatedTraffic runs structured-but-mutated pit messages — the shape
// the real fuzzing loop produces — and checks robustness plus coverage
// growth beyond the clean walk.
func testMutatedTraffic(t *testing.T, sub subject.Subject) {
	pit, err := fuzz.ParsePit(sub.PitXML())
	if err != nil {
		t.Fatal(err)
	}
	var sm *fuzz.StateModel
	for _, m := range pit.StateModels {
		sm = m
	}
	inst := sub.NewInstance()
	defer inst.Close()
	if err := inst.Start(defaults(sub), coverage.NewTrace()); err != nil {
		t.Fatal(err)
	}
	tr := coverage.NewTrace()
	inst.SetTrace(tr)
	r := rand.New(rand.NewSource(99))
	mutators := fuzz.DefaultMutators()
	for i := 0; i < 400; i++ {
		inst.NewSession()
		for _, name := range sm.Walk(r, 8) {
			dm := pit.DataModels[name]
			if dm == nil {
				continue
			}
			msg := dm.NewMessage(r)
			fuzz.MutateMessage(msg, mutators, r, 3)
			data := msg.Serialize()
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						if _, ok := rec.(*bugs.Crash); !ok {
							t.Fatalf("untyped panic on mutated input %x: %v", data, rec)
						}
					}
				}()
				inst.Message(data)
			}()
		}
	}
	if tr.Count() < 50 {
		t.Fatalf("mutated traffic produced only %d edges", tr.Count())
	}
}

func testSessionReset(t *testing.T, sub subject.Subject) {
	// NewSession must never panic and must allow immediate reuse.
	inst := sub.NewInstance()
	defer inst.Close()
	if err := inst.Start(defaults(sub), coverage.NewTrace()); err != nil {
		t.Fatal(err)
	}
	inst.SetTrace(coverage.NewTrace())
	for i := 0; i < 10; i++ {
		inst.NewSession()
		bugs.Capture(func() { inst.Message([]byte{1, 2, 3}) })
	}
}

// testNoDefaultBugs hammers the default configuration with heavy mutated
// traffic and asserts no seeded Table II defect fires: the paper's bugs
// are configuration-gated by construction.
func testNoDefaultBugs(t *testing.T, sub subject.Subject) {
	pit, err := fuzz.ParsePit(sub.PitXML())
	if err != nil {
		t.Fatal(err)
	}
	var sm *fuzz.StateModel
	for _, m := range pit.StateModels {
		sm = m
	}
	inst := sub.NewInstance()
	defer inst.Close()
	if err := inst.Start(defaults(sub), coverage.NewTrace()); err != nil {
		t.Fatal(err)
	}
	inst.SetTrace(coverage.NewTrace())
	r := rand.New(rand.NewSource(7))
	mutators := fuzz.DefaultMutators()
	for i := 0; i < 600; i++ {
		inst.NewSession()
		for _, name := range sm.Walk(r, 8) {
			dm := pit.DataModels[name]
			if dm == nil {
				continue
			}
			msg := dm.NewMessage(r)
			fuzz.MutateMessage(msg, mutators, r, 4)
			if crash := bugs.Capture(func() { inst.Message(msg.Serialize()) }); crash != nil {
				t.Fatalf("seeded bug fired under DEFAULT configuration: %v", crash)
			}
		}
	}
}
