package subject

import (
	"errors"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
)

// fakeInstance is a minimal scripted Instance.
type fakeInstance struct {
	failStart  bool
	startCov   int
	crashOnMsg []byte
	sessions   int
	messages   int
	tr         *coverage.Trace
	closed     bool
}

func (f *fakeInstance) Start(cfg map[string]string, tr *coverage.Trace) error {
	if f.failStart || cfg["conflict"] == "true" {
		return errors.New("conflicting configuration")
	}
	for i := 0; i < f.startCov; i++ {
		tr.Hit(uint32(i))
	}
	f.tr = tr
	return nil
}
func (f *fakeInstance) SetTrace(tr *coverage.Trace) { f.tr = tr }
func (f *fakeInstance) NewSession()                 { f.sessions++ }
func (f *fakeInstance) Message(payload []byte) [][]byte {
	f.messages++
	f.tr.Edge(100, uint64(f.messages))
	if f.crashOnMsg != nil && len(payload) > 0 && payload[0] == f.crashOnMsg[0] {
		bugs.Trigger("FAKE", bugs.SEGV, "handler", "scripted")
	}
	return nil
}
func (f *fakeInstance) Close() { f.closed = true }

type fakeSubject struct{ inst *fakeInstance }

func (s fakeSubject) Info() Info {
	return Info{Protocol: "FAKE", Implementation: "fake", Transport: Datagram, Port: 9}
}
func (s fakeSubject) ConfigInput() configspec.Input { return configspec.Input{} }
func (s fakeSubject) PitXML() string                { return "<Peach></Peach>" }
func (s fakeSubject) NewInstance() Instance         { return s.inst }

func TestProbeCountsStartupCoverage(t *testing.T) {
	sub := fakeSubject{inst: &fakeInstance{startCov: 7}}
	if got := Probe(sub, nil); got != 7 {
		t.Fatalf("Probe = %d, want 7", got)
	}
	if !sub.inst.closed {
		t.Fatal("Probe did not close the instance")
	}
}

func TestProbeConflictIsZero(t *testing.T) {
	sub := fakeSubject{inst: &fakeInstance{startCov: 7}}
	if got := Probe(sub, map[string]string{"conflict": "true"}); got != 0 {
		t.Fatalf("conflicting Probe = %d, want 0", got)
	}
}

func TestTargetRunsSequenceWithFreshSession(t *testing.T) {
	inst := &fakeInstance{}
	tgt := NewTarget(inst)
	tr := coverage.NewTrace()
	inst.SetTrace(tr)
	crash := tgt.Run([][]byte{{1}, {2}, {3}}, tr)
	if crash != nil {
		t.Fatalf("unexpected crash: %v", crash)
	}
	if inst.sessions != 1 {
		t.Fatalf("sessions = %d, want 1 per run", inst.sessions)
	}
	if inst.messages != 3 {
		t.Fatalf("messages = %d", inst.messages)
	}
	if tr.Count() == 0 {
		t.Fatal("no coverage recorded through target")
	}
}

func TestTargetCapturesCrashAndStops(t *testing.T) {
	inst := &fakeInstance{crashOnMsg: []byte{0xbad % 256}}
	tgt := NewTarget(inst)
	tr := coverage.NewTrace()
	crash := tgt.Run([][]byte{{1}, {0xbad % 256}, {3}}, tr)
	if crash == nil || crash.Protocol != "FAKE" {
		t.Fatalf("crash = %v", crash)
	}
	if inst.messages != 2 {
		t.Fatalf("messages after crash = %d, want sequence aborted at 2", inst.messages)
	}
}

func TestTransportString(t *testing.T) {
	if Stream.String() != "stream" || Datagram.String() != "datagram" {
		t.Fatal("transport names wrong")
	}
}
