// Package subject defines the contract between CMFuzz and the protocol
// implementations under test. A Subject describes one IoT protocol
// implementation: where its configuration lives (CLI help, config files),
// its Pit data/state models, and how to boot instrumented instances.
//
// An Instance is one booted server. Start parses and applies a concrete
// configuration while reporting startup coverage — the lightweight proxy
// CMFuzz uses to quantify configuration relations (paper §III-B1) — and
// fails for conflicting configurations. Message feeds one client packet
// through the implementation, which reports branch coverage through the
// trace installed with SetTrace and panics with *bugs.Crash when a seeded
// defect fires.
package subject

import (
	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
)

// Transport is how clients reach the protocol.
type Transport int

// The transports used by the six subjects.
const (
	Stream   Transport = iota // TCP-like (MQTT, AMQP)
	Datagram                  // UDP-like (CoAP, DTLS, DNS, DDS/RTPS)
)

// String names the transport.
func (t Transport) String() string {
	if t == Datagram {
		return "datagram"
	}
	return "stream"
}

// Info identifies a subject the way the paper's tables do.
type Info struct {
	// Protocol is the protocol name ("MQTT", "CoAP", ...), matching the
	// bugs.Table2 Protocol column.
	Protocol string
	// Implementation is the modeled implementation ("Mosquitto", ...).
	Implementation string
	// Transport is the client-facing transport.
	Transport Transport
	// Port is the conventional server port.
	Port uint16
}

// An Instance is one booted, instrumented protocol server.
type Instance interface {
	// Start applies cfg, reporting startup coverage into tr. It returns
	// an error (with no residual coverage guarantees) for conflicting or
	// invalid configurations.
	Start(cfg map[string]string, tr *coverage.Trace) error
	// SetTrace redirects subsequent message-handling coverage into tr.
	// The fuzzing loop installs a fresh trace per execution.
	SetTrace(tr *coverage.Trace)
	// NewSession begins a fresh client session (new connection/exchange
	// context), discarding per-session state.
	NewSession()
	// Message handles one inbound packet and returns response packets.
	// Seeded defects panic with *bugs.Crash.
	Message(payload []byte) [][]byte
	// Close releases the instance.
	Close()
}

// A Subject is one protocol implementation under test.
type Subject interface {
	// Info identifies the subject.
	Info() Info
	// ConfigInput returns the configuration sources (CLI help text and
	// configuration files) that Algorithm 1 extracts items from.
	ConfigInput() configspec.Input
	// PitXML returns the Pit document with the subject's data and state
	// models (the same Pit is shared by all fuzzers, as in the paper).
	PitXML() string
	// NewInstance returns an unstarted instance.
	NewInstance() Instance
}

// Probe boots a throwaway instance under cfg and returns its startup
// branch coverage — the relation-quantification oracle. Conflicting
// configurations report 0.
func Probe(s Subject, cfg map[string]string) int {
	inst := s.NewInstance()
	defer inst.Close()
	tr := coverage.NewTrace()
	if err := inst.Start(cfg, tr); err != nil {
		return 0
	}
	return tr.Count()
}

// Target adapts an instance to the fuzzing engine: each Run installs the
// per-execution trace, opens a fresh session, and converts seeded-defect
// panics into crash values.
type Target struct {
	inst Instance
}

// NewTarget wraps a started instance.
func NewTarget(inst Instance) *Target { return &Target{inst: inst} }

// Run implements fuzz.Target.
func (t *Target) Run(seq [][]byte, tr *coverage.Trace) (crash *bugs.Crash) {
	t.inst.SetTrace(tr)
	t.inst.NewSession()
	for _, msg := range seq {
		crash = bugs.Capture(func() { t.inst.Message(msg) })
		if crash != nil {
			return crash
		}
	}
	return nil
}
