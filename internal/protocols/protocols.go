// Package protocols registers the six IoT protocol subjects of the
// paper's evaluation (Table I): Mosquitto/MQTT, libcoap/CoAP,
// CycloneDDS/DDS, OpenSSL/DTLS, Qpid/AMQP and Dnsmasq/DNS.
package protocols

import (
	"fmt"
	"strings"

	"cmfuzz/internal/protocols/amqp"
	"cmfuzz/internal/protocols/coap"
	"cmfuzz/internal/protocols/dds"
	"cmfuzz/internal/protocols/dns"
	"cmfuzz/internal/protocols/dtls"
	"cmfuzz/internal/protocols/mqtt"
	"cmfuzz/internal/subject"
)

// All returns the six evaluation subjects in the paper's Table I order.
func All() []subject.Subject {
	return []subject.Subject{
		mqtt.Subject(),
		coap.Subject(),
		dds.Subject(),
		dtls.Subject(),
		amqp.Subject(),
		dns.Subject(),
	}
}

// ByName returns the subject whose protocol or implementation name
// matches (case-insensitive), e.g. "MQTT", "mqtt" or "Mosquitto".
func ByName(name string) (subject.Subject, error) {
	for _, s := range All() {
		if strings.EqualFold(s.Info().Protocol, name) || strings.EqualFold(s.Info().Implementation, name) {
			return s, nil
		}
	}
	return nil, fmt.Errorf("protocols: unknown subject %q", name)
}
