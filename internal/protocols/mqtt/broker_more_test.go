package mqtt

import (
	"testing"
	"testing/quick"

	"cmfuzz/internal/coverage"
	"cmfuzz/internal/wire"
)

func TestWillRegistrationAndCleanDisconnect(t *testing.T) {
	b, _ := startBroker(t, nil)
	// Connect with a will (flags: will=0x04, qos1=0x08, retain=0x20, clean=0x02).
	w := wire.NewWriter(64)
	w.String16("MQTT")
	w.U8(4)
	w.U8(0x2E)
	w.U16(30)
	w.String16("willful")
	w.String16("state/offline")
	w.Bytes16([]byte("gone"))
	resp := b.Message(encode(typeConnect, 0, w.Bytes()))
	if len(resp) != 1 || resp[0][3] != 0 {
		t.Fatalf("will connect refused: %x", resp)
	}
	if b.cur.will == nil || b.cur.will.topic != "state/offline" || b.cur.will.qos != 1 || !b.cur.will.retain {
		t.Fatalf("will = %+v", b.cur.will)
	}
	// Clean DISCONNECT discards the will.
	b.Message(encode(typeDisconnect, 0, nil))
	if b.cur.will != nil {
		t.Fatal("will survived clean disconnect")
	}
}

func TestMaxQoSDowngrade(t *testing.T) {
	b, _ := startBroker(t, map[string]string{"max-qos": "1"})
	connect(t, b)
	// A QoS2 publish is downgraded to QoS1: PUBACK, not PUBREC.
	resp := b.Message(publishBytes("a/b", 2, false, false, 5, []byte("x")))
	if len(resp) != 1 || resp[0][0]>>4 != typePuback {
		t.Fatalf("downgraded publish ack = %x", resp)
	}
	// Subscription grants are capped too.
	resp = b.Message(subscribeBytes(6, "a/#", 2))
	if resp[0][4] != 1 {
		t.Fatalf("granted qos = %d, want capped 1", resp[0][4])
	}
}

func TestMessageSizeLimitRejects(t *testing.T) {
	b, _ := startBroker(t, map[string]string{"message-size-limit": "4"})
	connect(t, b)
	if resp := b.Message(publishBytes("t", 0, false, false, 0, []byte("too large"))); resp != nil {
		t.Fatalf("oversized payload accepted: %x", resp)
	}
	// Within the limit passes.
	b2, _ := startBroker(t, map[string]string{"message-size-limit": "100"})
	connect(t, b2)
	b2.Message(subscribeBytes(1, "t", 0))
	if resp := b2.Message(publishBytes("t", 0, false, false, 0, []byte("ok"))); len(resp) != 1 {
		t.Fatal("in-limit payload dropped")
	}
}

func TestSubscriptionQuota(t *testing.T) {
	b, _ := startBroker(t, nil)
	connect(t, b)
	refused := false
	for i := 0; i < 200; i++ {
		resp := b.Message(subscribeBytes(uint16(i+1), "topic/"+string(rune('a'+i%26))+string(rune('0'+i/26)), 0))
		if len(resp) > 0 && resp[0][0]>>4 == typeSuback && resp[0][4] == 0x80 {
			refused = true
			break
		}
	}
	if !refused {
		t.Fatal("per-session subscription quota never enforced")
	}
}

func TestOutboundAckFlow(t *testing.T) {
	b, _ := startBroker(t, nil)
	connect(t, b)
	// PUBREC for an unknown outbound id is tolerated without a PUBREL.
	if resp := b.Message(encodeAck(typePubrec, 77)); resp != nil {
		t.Fatalf("unknown pubrec answered: %x", resp)
	}
	// Track an outbound message, then complete the flow.
	b.cur.inflightOut[77] = 1
	resp := b.Message(encodeAck(typePubrec, 77))
	if len(resp) != 1 || resp[0][0]>>4 != typePubrel {
		t.Fatalf("pubrec ack = %x", resp)
	}
	b.cur.inflightOut[78] = 1
	b.Message(encodeAck(typePubcomp, 78))
	if _, ok := b.cur.inflightOut[78]; ok {
		t.Fatal("pubcomp did not clear inflight")
	}
}

func TestRetainDisabled(t *testing.T) {
	b, _ := startBroker(t, map[string]string{"retain-available": "false"})
	connect(t, b)
	b.Message(publishBytes("state/x", 0, true, false, 0, []byte("v")))
	if len(b.retained) != 0 {
		t.Fatal("retained message stored despite retain-available=false")
	}
}

func TestEmptyRetainedPayloadDeletes(t *testing.T) {
	b, _ := startBroker(t, nil)
	connect(t, b)
	b.Message(publishBytes("state/x", 0, true, false, 0, []byte("v")))
	if len(b.retained) != 1 {
		t.Fatal("retained not stored")
	}
	b.Message(publishBytes("state/x", 0, true, false, 0, nil))
	if len(b.retained) != 0 {
		t.Fatal("empty retained publish did not delete")
	}
}

func TestConnectionLimitConnack(t *testing.T) {
	b, _ := startBroker(t, map[string]string{"max-connections": "2"})
	for i, id := range []string{"c1", "c2"} {
		b.NewSession()
		resp := b.Message(connectPacketBytes(id, 0x02))
		if resp[0][3] != 0 {
			t.Fatalf("client %d refused early", i)
		}
	}
	b.NewSession()
	resp := b.Message(connectPacketBytes("c3", 0x02))
	if resp[0][3] != 3 {
		t.Fatalf("over-limit connack code = %d, want 3 (server unavailable)", resp[0][3])
	}
}

func TestUnsubscribeStopsRouting(t *testing.T) {
	b, _ := startBroker(t, nil)
	connect(t, b)
	b.Message(subscribeBytes(1, "a/#", 0))
	w := wire.NewWriter(16)
	w.U16(2)
	w.String16("a/#")
	b.Message(encode(typeUnsubscribe, 2, w.Bytes()))
	if resp := b.Message(publishBytes("a/b", 0, false, false, 0, []byte("x"))); resp != nil {
		t.Fatalf("unsubscribed filter still routed: %x", resp)
	}
}

// Property: any CONNECT the encoder can produce round-trips through the
// broker without untyped panics, and the broker always answers with a
// single CONNACK or nothing.
func TestQuickConnectTotal(t *testing.T) {
	f := func(proto string, level, flags byte, keepalive uint16, cid string) bool {
		if len(proto) > 100 || len(cid) > 100 {
			return true
		}
		b := NewBroker()
		if err := b.Start(nil, newTrace()); err != nil {
			return false
		}
		b.NewSession()
		w := wire.NewWriter(64)
		w.String16(proto)
		w.U8(level)
		w.U8(flags &^ 0xC4) // avoid will/user/pass so the body stays valid
		w.U16(keepalive)
		w.String16(cid)
		resp := b.Message(encode(typeConnect, 0, w.Bytes()))
		if resp == nil {
			return true
		}
		return len(resp) == 1 && resp[0][0]>>4 == typeConnack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func newTrace() *coverage.Trace { return coverage.NewTrace() }
