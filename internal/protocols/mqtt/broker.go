package mqtt

import (
	"strings"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/protocols/probes"
)

// Message-handling coverage sites.
const (
	mFixedHdr   = 200
	mRemLen     = 201
	mBadPacket  = 202
	mNotConn    = 203
	mOversize   = 204
	mConnect    = 300
	mConnAuth   = 310
	mConnWill   = 320
	mPublish    = 400
	mTopicHash  = 410
	mPayload    = 415
	mPubErr     = 420
	mRoute      = 430
	mRetain     = 440
	mQoSFlow    = 450
	mSubscribe  = 500
	mSubFilter  = 510
	mSubShare   = 520
	mSubRetain  = 525
	mUnsub      = 530
	mPing       = 540
	mDisconnect = 550
	mBridgeFwd  = 600
	mPersistOp  = 620
	mWSFrame    = 640
	mTLSRecord  = 660
	mACLCheck   = 680
)

// hashSpace bounds the content-hash coverage families; it calibrates the
// subject's reachable branch scale against Table I.
const hashSpace = 1536

// routeSpace bounds the subscription-routing coverage family.
const routeSpace = 1024

// willInfo is a session's last-will registration.
type willInfo struct {
	topic   string
	payload []byte
	qos     byte
	retain  bool
}

// session is one client's broker-side state.
type session struct {
	clientID    string
	connected   bool
	clean       bool
	authed      bool
	subs        map[string]byte
	inflightIn  map[uint16]byte // QoS2 inbound: PUBREC sent, awaiting PUBREL
	inflightOut map[uint16]byte
	will        *willInfo
}

func newSession() *session {
	return &session{
		subs:        make(map[string]byte),
		inflightIn:  make(map[uint16]byte),
		inflightOut: make(map[uint16]byte),
	}
}

// Broker is the Mosquitto-like MQTT subject instance.
type Broker struct {
	cfg      settings
	tr       *coverage.Trace
	cur      *session
	sessions map[string]*session
	retained map[string]publishPacket
	connects int
}

// NewBroker returns an unstarted broker instance.
func NewBroker() *Broker {
	return &Broker{
		sessions: make(map[string]*session),
		retained: make(map[string]publishPacket),
	}
}

// Start implements subject.Instance.
func (b *Broker) Start(cfg map[string]string, tr *coverage.Trace) error {
	s := parseSettings(cfg)
	if err := s.validate(); err != nil {
		return err
	}
	b.cfg = s
	b.tr = tr
	s.startupCoverage(tr)
	return nil
}

// SetTrace implements subject.Instance.
func (b *Broker) SetTrace(tr *coverage.Trace) { b.tr = tr }

// NewSession implements subject.Instance: a fresh client connection.
func (b *Broker) NewSession() { b.cur = newSession() }

// Close implements subject.Instance.
func (b *Broker) Close() {}

// Message handles one client packet and returns broker responses.
func (b *Broker) Message(payload []byte) [][]byte {
	if b.cur == nil {
		b.cur = newSession()
	}
	if b.cfg.maxPacketSize != 0 && len(payload) > b.cfg.maxPacketSize {
		// Oversized packet destruction path. Bug #3: with a small
		// non-default max_packet_size the teardown path frees the packet
		// and then touches it again.
		b.tr.Edge(mOversize, probes.Bucket(len(payload)))
		if b.cfg.maxPacketSize <= 2048 {
			bugs.Trigger("MQTT", bugs.HeapUseAfterFree, "mqtt_packet_destroy",
				"oversized packet freed twice during reject path")
		}
		return nil
	}
	if b.cfg.websockets {
		// Websocket framing wraps every packet: extra decode region.
		b.tr.Edge(mWSFrame, probes.HashBytes(payload)%640)
		b.tr.Edge(mWSFrame, 1024+probes.Bucket(len(payload)))
	}
	if b.cfg.tls {
		// Record-layer processing region.
		b.tr.Edge(mTLSRecord, probes.HashBytes(payload)%512)
	}
	pkt, err := decodePacket(payload)
	if err != nil {
		b.tr.Edge(mBadPacket, probes.Bucket(len(payload)))
		return nil
	}
	b.tr.Edge(mFixedHdr, uint64(pkt.Type)<<4|uint64(pkt.Flags))
	b.tr.Edge(mRemLen, probes.Bucket(len(pkt.Body)))

	if !b.cur.connected && pkt.Type != typeConnect {
		b.tr.Edge(mNotConn, uint64(pkt.Type))
		return nil
	}

	switch pkt.Type {
	case typeConnect:
		return b.handleConnect(pkt.Body)
	case typePublish:
		return b.handlePublish(pkt.Flags, pkt.Body)
	case typePuback, typePubrec, typePubcomp:
		return b.handleOutboundAck(pkt.Type, pkt.Body)
	case typePubrel:
		return b.handlePubrel(pkt.Body)
	case typeSubscribe:
		return b.handleSubscribe(pkt.Body)
	case typeUnsubscribe:
		return b.handleUnsubscribe(pkt.Body)
	case typePingreq:
		b.tr.Hit(mPing)
		return [][]byte{encode(typePingresp, 0, nil)}
	case typeDisconnect:
		return b.handleDisconnect()
	default:
		b.tr.Edge(mBadPacket, 64+uint64(pkt.Type))
		return nil
	}
}

func (b *Broker) handleConnect(body []byte) [][]byte {
	c, err := decodeConnect(body)
	if err != nil {
		b.tr.Edge(mConnect, 0)
		return nil
	}
	b.tr.Edge(mConnect, 1+probes.Hash(c.ProtoName)%8)
	b.tr.Edge(mConnect, 16+uint64(c.ProtoLevel))
	b.tr.Edge(mConnect, 300+uint64(c.Flags))
	b.tr.Edge(mConnect, 600+probes.Bucket(int(c.KeepAlive)))
	b.tr.Edge(mConnect, 650+probes.Bucket(len(c.ClientID)))
	b.tr.Edge(mConnect, 700+probes.Hash(c.ClientID)%128)

	if c.ProtoName != "MQTT" && c.ProtoName != "MQIsdp" {
		b.tr.Edge(mConnect, 2000)
		return [][]byte{encodeConnack(false, 1)}
	}
	if c.ProtoLevel != 4 && c.ProtoLevel != 3 {
		b.tr.Edge(mConnect, 2001)
		return [][]byte{encodeConnack(false, 1)}
	}

	// Authentication.
	if b.cfg.passwordFile != "" {
		b.tr.Edge(mConnAuth, probes.Hash(c.Username)%256)
		b.tr.Edge(mConnAuth, 600+probes.HashBytes(c.Password)%128)
		if c.Username == "" && !b.cfg.allowAnonymous {
			b.tr.Edge(mConnAuth, 300)
			return [][]byte{encodeConnack(false, 5)}
		}
		if c.Username != "" {
			b.tr.Edge(mConnAuth, 301+probes.Bucket(len(c.Password)))
			if len(c.Password) == 0 {
				b.tr.Edge(mConnAuth, 330)
				return [][]byte{encodeConnack(false, 4)}
			}
		}
	} else if !b.cfg.allowAnonymous {
		b.tr.Edge(mConnAuth, 340)
		return [][]byte{encodeConnack(false, 5)}
	}

	b.connects++
	// Bug #4: with max_connections at the 0/1 boundary the accept loop
	// dereferences the freed listener slot on the second connection.
	if b.cfg.maxConnections <= 1 && b.connects >= 2 && !c.CleanSession {
		bugs.Trigger("MQTT", bugs.SEGV, "loop_accepted",
			"second connection with max_connections<=1 dereferences freed slot")
	}
	if len(b.sessions) >= b.cfg.maxConnections && b.sessions[c.ClientID] == nil {
		b.tr.Edge(mConnect, 2002)
		return [][]byte{encodeConnack(false, 3)}
	}

	sessionPresent := false
	if old, ok := b.sessions[c.ClientID]; ok && !c.CleanSession {
		b.tr.Edge(mConnect, 2010)
		b.cur = old
		sessionPresent = true
	} else {
		b.cur.clientID = c.ClientID
		b.sessions[c.ClientID] = b.cur
	}
	b.cur.connected = true
	b.cur.clean = c.CleanSession
	b.cur.authed = c.Username != ""

	if c.Flags&0x04 != 0 {
		b.tr.Edge(mConnWill, uint64(c.WillQoS)<<1|probes.B(c.WillRetain))
		b.tr.Edge(mConnWill, 8+probes.Hash(c.WillTopic)%32)
		b.cur.will = &willInfo{topic: c.WillTopic, payload: c.WillMessage, qos: c.WillQoS, retain: c.WillRetain}
	}
	return [][]byte{encodeConnack(sessionPresent, 0)}
}

func (b *Broker) handlePublish(flags byte, body []byte) [][]byte {
	p, err := decodePublish(flags, body)
	if err != nil {
		b.tr.Edge(mPubErr, 0)
		return nil
	}
	b.tr.Edge(mPublish, uint64(p.QoS)<<2|probes.B(p.Retain)<<1|probes.B(p.Dup))
	b.tr.Edge(mTopicHash, probes.Hash(p.Topic)%hashSpace)
	b.tr.Edge(mPayload, probes.HashBytes(p.Payload)%hashSpace)
	b.tr.Edge(mPublish, 16+probes.Bucket(len(p.Payload)))
	levels := strings.Count(p.Topic, "/")
	b.tr.Edge(mPublish, 64+uint64(levels%32))

	switch {
	case p.Topic == "":
		b.tr.Edge(mPubErr, 1)
		return nil
	case strings.ContainsAny(p.Topic, "#+"):
		b.tr.Edge(mPubErr, 2)
		return nil
	case b.cfg.msgSizeLimit > 0 && len(p.Payload) > b.cfg.msgSizeLimit:
		b.tr.Edge(mPubErr, 3+probes.Bucket(len(p.Payload)))
		return nil
	}

	qos := p.QoS
	if int(qos) > b.cfg.maxQoS {
		b.tr.Edge(mQoSFlow, 100+uint64(qos))
		qos = byte(b.cfg.maxQoS)
	}
	if b.cfg.upgradeQoS && int(qos) < b.cfg.maxQoS {
		b.tr.Edge(mQoSFlow, 110+uint64(qos))
		qos = byte(b.cfg.maxQoS)
	}

	var out [][]byte
	// Retained message handling.
	if p.Retain {
		if !b.cfg.retainOK {
			b.tr.Edge(mRetain, 0)
		} else {
			_, overwrite := b.retained[p.Topic]
			b.tr.Edge(mRetain, 1+probes.B(overwrite))
			b.tr.Edge(mRetain, 4+probes.Hash(p.Topic)%128)
			// Bug #5: with persistence and QoS0 queueing enabled, the
			// overwritten retained message's persistence record is never
			// released.
			if overwrite && b.cfg.persistence && b.cfg.queueQoS0 && len(p.Payload) > 0 {
				bugs.Trigger("MQTT", bugs.MemoryLeak, "multiple functions",
					"retained message overwrite leaks persisted copy")
			}
			if len(p.Payload) == 0 {
				b.tr.Edge(mRetain, 200)
				delete(b.retained, p.Topic)
			} else if len(b.retained) < 512 {
				b.retained[p.Topic] = p
			}
		}
	}

	// QoS acknowledgement flows.
	switch qos {
	case 1:
		b.tr.Edge(mQoSFlow, probes.Bucket(int(p.PacketID)))
		out = append(out, encodeAck(typePuback, p.PacketID))
	case 2:
		_, dupInflight := b.cur.inflightIn[p.PacketID]
		b.tr.Edge(mQoSFlow, 16+probes.B(dupInflight)<<1|probes.B(p.Dup))
		// Bug #1: in bridge mode, a duplicate QoS2 PUBLISH re-enqueues the
		// freed message object.
		if b.cfg.bridge && p.Dup && dupInflight {
			bugs.Trigger("MQTT", bugs.HeapUseAfterFree, "Connection::newMessage",
				"duplicate QoS2 publish re-enqueues freed bridge message")
		}
		if len(b.cur.inflightIn) < b.cfg.maxInflight {
			b.cur.inflightIn[p.PacketID] = 1
			b.tr.Edge(mQoSFlow, 32+probes.Bucket(len(b.cur.inflightIn)))
		} else {
			b.tr.Edge(mQoSFlow, 48)
		}
		out = append(out, encodeAck(typePubrec, p.PacketID))
	}

	// Routing to subscribers.
	matched := 0
	for filter, subQoS := range b.cur.subs {
		if topicMatches(filter, p.Topic) {
			matched++
			b.tr.Edge(mRoute, probes.Hash(filter+"\x00"+p.Topic)%routeSpace)
			fwd := p
			fwd.QoS = minQoS(qos, subQoS)
			fwd.Retain = false
			if fwd.QoS == 0 && !b.cfg.queueQoS0 {
				b.tr.Edge(mRoute, routeSpace+1)
			}
			out = append(out, encodePublish(fwd))
		}
	}
	b.tr.Edge(mRoute, routeSpace+8+uint64(matched%16))

	// ACL enforcement region.
	if b.cfg.aclFile != "" {
		b.tr.Edge(mACLCheck, probes.Hash(p.Topic)%384)
		if strings.HasPrefix(p.Topic, "$SYS") {
			b.tr.Edge(mACLCheck, 400)
			return out
		}
	}

	// Bridge forwarding region.
	if b.cfg.bridge && topicMatches(b.cfg.bridgeTopic, p.Topic) {
		b.tr.Edge(mBridgeFwd, probes.Hash(p.Topic)%512)
		b.tr.Edge(mBridgeFwd, 768+uint64(qos))
		b.tr.Edge(mBridgeFwd, 780+probes.HashBytes(p.Payload)%256)
		if b.cfg.bridgeProto == "mqttv50" {
			b.tr.Edge(mBridgeFwd, 1040+probes.Bucket(len(p.Payload)))
		}
		if b.cfg.persistence {
			b.tr.Edge(mBridgeFwd, 1072+probes.Hash(p.Topic)%128)
		}
	}

	// Persistence region.
	if b.cfg.persistence && qos > 0 {
		b.tr.Edge(mPersistOp, probes.Hash(p.Topic)%512)
		b.tr.Edge(mPersistOp, 512+probes.Bucket(len(p.Payload)))
		b.tr.Edge(mPersistOp, 544+probes.HashBytes(p.Payload)%192)
	}
	return out
}

func (b *Broker) handleOutboundAck(ptype byte, body []byte) [][]byte {
	id, err := decodePacketID(body)
	if err != nil {
		b.tr.Edge(mQoSFlow, 200)
		return nil
	}
	_, known := b.cur.inflightOut[id]
	b.tr.Edge(mQoSFlow, 210+uint64(ptype)<<1|probes.B(known))
	if known {
		if ptype == typePubrec {
			return [][]byte{encodeAck(typePubrel, id)}
		}
		delete(b.cur.inflightOut, id)
	}
	return nil
}

func (b *Broker) handlePubrel(body []byte) [][]byte {
	id, err := decodePacketID(body)
	if err != nil {
		b.tr.Edge(mQoSFlow, 300)
		return nil
	}
	_, pending := b.cur.inflightIn[id]
	b.tr.Edge(mQoSFlow, 310+probes.B(pending))
	if pending {
		// Deep QoS2 completion: requires the full PUBLISH/PUBREL sequence.
		b.tr.Edge(mQoSFlow, 320+probes.Bucket(int(id)))
		delete(b.cur.inflightIn, id)
	}
	return [][]byte{encodeAck(typePubcomp, id)}
}

func (b *Broker) handleSubscribe(body []byte) [][]byte {
	id, subs, err := decodeSubscribe(body)
	if err != nil {
		b.tr.Edge(mSubscribe, 0)
		return nil
	}
	b.tr.Edge(mSubscribe, 1+uint64(len(subs)%16))
	codes := make([]byte, 0, len(subs))
	var out [][]byte
	for _, sub := range subs {
		b.tr.Edge(mSubFilter, probes.Hash(sub.Filter)%hashSpace)
		b.tr.Edge(mSubFilter, hashSpace+uint64(strings.Count(sub.Filter, "/")%32))
		if !validFilter(sub.Filter) {
			b.tr.Edge(mSubFilter, hashSpace+64)
			codes = append(codes, 0x80)
			continue
		}
		if strings.HasPrefix(sub.Filter, "$share/") {
			b.tr.Edge(mSubShare, probes.Hash(sub.Filter)%64)
			// Bug #2: the websocket listener's shared-subscription node
			// manager walks a freed address list.
			if b.cfg.websockets {
				bugs.Trigger("MQTT", bugs.HeapUseAfterFree, "neu_node_manager_get_addrs_all",
					"shared subscription over websockets walks freed node list")
			}
		}
		if strings.HasPrefix(sub.Filter, "$SYS") {
			b.tr.Edge(mSubShare, 128+probes.Hash(sub.Filter)%32)
		}
		granted := sub.QoS
		if granted > 2 {
			b.tr.Edge(mSubFilter, hashSpace+65)
			codes = append(codes, 0x80)
			continue
		}
		if int(granted) > b.cfg.maxQoS {
			granted = byte(b.cfg.maxQoS)
			b.tr.Edge(mSubFilter, hashSpace+70+uint64(sub.QoS))
		}
		if len(b.cur.subs) >= 128 {
			// Per-session subscription quota (resource management).
			b.tr.Edge(mSubFilter, hashSpace+80)
			codes = append(codes, 0x80)
			continue
		}
		b.cur.subs[sub.Filter] = granted
		codes = append(codes, granted)

		// Retained delivery on subscribe (scan bounded like a topic-trie
		// lookup would be).
		scanned := 0
		for topic, ret := range b.retained {
			if scanned++; scanned > 256 {
				break
			}
			if topicMatches(sub.Filter, topic) {
				b.tr.Edge(mSubRetain, probes.Hash(topic)%256)
				fwd := ret
				fwd.QoS = minQoS(ret.QoS, granted)
				fwd.Retain = true
				out = append(out, encodePublish(fwd))
			}
		}
	}
	out = append([][]byte{encodeSuback(id, codes)}, out...)
	return out
}

func (b *Broker) handleUnsubscribe(body []byte) [][]byte {
	id, filters, err := decodeUnsubscribe(body)
	if err != nil {
		b.tr.Edge(mUnsub, 0)
		return nil
	}
	for _, f := range filters {
		_, had := b.cur.subs[f]
		b.tr.Edge(mUnsub, 1+probes.B(had))
		b.tr.Edge(mUnsub, 4+probes.Hash(f)%64)
		delete(b.cur.subs, f)
	}
	return [][]byte{encodeAck(typeUnsuback, id)}
}

func (b *Broker) handleDisconnect() [][]byte {
	b.tr.Edge(mDisconnect, probes.B(b.cur.will != nil))
	b.cur.will = nil // clean disconnect discards the will
	b.cur.connected = false
	if b.cur.clean {
		b.tr.Edge(mDisconnect, 2)
		delete(b.sessions, b.cur.clientID)
	}
	return nil
}

// topicMatches implements MQTT filter matching with + and # wildcards,
// allocation-free (it runs on the broker's hottest path).
func topicMatches(filter, topic string) bool {
	fi, ti := 0, 0
	for {
		fEnd := strings.IndexByte(filter[fi:], '/')
		var fLevel string
		if fEnd < 0 {
			fLevel = filter[fi:]
		} else {
			fLevel = filter[fi : fi+fEnd]
		}
		if fLevel == "#" {
			return true
		}
		tEnd := strings.IndexByte(topic[ti:], '/')
		var tLevel string
		if tEnd < 0 {
			tLevel = topic[ti:]
		} else {
			tLevel = topic[ti : ti+tEnd]
		}
		if fLevel != "+" && fLevel != tLevel {
			return false
		}
		if fEnd < 0 || tEnd < 0 {
			// "sport/#" matches "sport": a trailing "/#" includes the
			// parent level (MQTT spec).
			if tEnd < 0 && fEnd >= 0 {
				return filter[fi+fEnd:] == "/#"
			}
			return fEnd < 0 && tEnd < 0
		}
		fi += fEnd + 1
		ti += tEnd + 1
	}
}

// validFilter enforces MQTT wildcard placement: '#' only as the final
// level, '+' only as a whole level.
func validFilter(f string) bool {
	if f == "" {
		return false
	}
	levels := strings.Split(f, "/")
	for i, l := range levels {
		if strings.Contains(l, "#") && (l != "#" || i != len(levels)-1) {
			return false
		}
		if strings.Contains(l, "+") && l != "+" {
			return false
		}
	}
	return true
}

func minQoS(a, b byte) byte {
	if a < b {
		return a
	}
	return b
}
