package mqtt

import (
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/wire"
)

// startBroker boots a broker with cfg overlaid on an empty assignment.
func startBroker(t *testing.T, cfg map[string]string) (*Broker, *coverage.Trace) {
	t.Helper()
	b := NewBroker()
	tr := coverage.NewTrace()
	if err := b.Start(cfg, tr); err != nil {
		t.Fatalf("Start: %v", err)
	}
	b.NewSession()
	return b, tr
}

// connectPacketBytes builds a valid CONNECT for client id.
func connectPacketBytes(clientID string, flags byte) []byte {
	w := wire.NewWriter(32)
	w.String16("MQTT")
	w.U8(4)
	w.U8(flags)
	w.U16(60)
	w.String16(clientID)
	return encode(typeConnect, 0, w.Bytes())
}

func publishBytes(topic string, qos byte, retain, dup bool, id uint16, payload []byte) []byte {
	return encodePublish(publishPacket{Topic: topic, QoS: qos, Retain: retain, Dup: dup, PacketID: id, Payload: payload})
}

func subscribeBytes(id uint16, filter string, qos byte) []byte {
	w := wire.NewWriter(16)
	w.U16(id)
	w.String16(filter)
	w.U8(qos)
	return encode(typeSubscribe, 2, w.Bytes())
}

func connect(t *testing.T, b *Broker) {
	t.Helper()
	resp := b.Message(connectPacketBytes("tester", 0x02))
	if len(resp) != 1 || resp[0][0]>>4 != typeConnack || resp[0][3] != 0 {
		t.Fatalf("connect response = %x", resp)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p := publishPacket{Topic: "a/b", QoS: 2, Retain: true, Dup: true, PacketID: 99, Payload: []byte("hi")}
	raw := encodePublish(p)
	pkt, err := decodePacket(raw)
	if err != nil || pkt.Type != typePublish {
		t.Fatalf("decodePacket: %v %+v", err, pkt)
	}
	got, err := decodePublish(pkt.Flags, pkt.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Topic != p.Topic || got.QoS != 2 || !got.Retain || !got.Dup || got.PacketID != 99 || string(got.Payload) != "hi" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestDecodeConnectVariants(t *testing.T) {
	w := wire.NewWriter(64)
	w.String16("MQTT")
	w.U8(4)
	w.U8(0xC2 | 0x04 | 0x08 | 0x20) // clean, will qos1 retain, user+pass
	w.U16(30)
	w.String16("cid")
	w.String16("will/t")
	w.Bytes16([]byte("bye"))
	w.String16("user")
	w.Bytes16([]byte("pw"))
	c, err := decodeConnect(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c.ClientID != "cid" || c.WillTopic != "will/t" || c.Username != "user" ||
		string(c.Password) != "pw" || c.WillQoS != 1 || !c.WillRetain || !c.CleanSession {
		t.Fatalf("connect = %+v", c)
	}
}

func TestDecodeMalformed(t *testing.T) {
	if _, err := decodePacket([]byte{0x30}); err == nil {
		t.Error("truncated packet accepted")
	}
	if _, err := decodePacket([]byte{0x30, 0x05, 0x01}); err == nil {
		t.Error("short body accepted")
	}
	if _, err := decodeConnect([]byte{0x00}); err == nil {
		t.Error("truncated connect accepted")
	}
	if _, err := decodePublish(0x06, []byte{0x00}); err == nil {
		t.Error("qos3 publish accepted")
	}
	if _, _, err := decodeSubscribe([]byte{0x00, 0x01}); err == nil {
		t.Error("empty subscribe accepted")
	}
}

func TestTopicMatches(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/c", false},
		{"a/+", "a/b", true},
		{"a/+", "a/b/c", false},
		{"a/#", "a/b/c", true},
		{"#", "anything/at/all", true},
		{"+/b", "a/b", true},
		{"a/b/#", "a/b", true}, // '#' includes the parent level (MQTT spec)
		{"a/b/#", "a/c", false},
	}
	for _, c := range cases {
		if got := topicMatches(c.filter, c.topic); got != c.want {
			t.Errorf("topicMatches(%q,%q) = %v", c.filter, c.topic, got)
		}
	}
}

func TestValidFilter(t *testing.T) {
	valid := []string{"a/b", "a/+/c", "a/#", "#", "+"}
	invalid := []string{"", "a/#/b", "a#", "a/b+", "+a/b"}
	for _, f := range valid {
		if !validFilter(f) {
			t.Errorf("validFilter(%q) = false", f)
		}
	}
	for _, f := range invalid {
		if validFilter(f) {
			t.Errorf("validFilter(%q) = true", f)
		}
	}
}

func TestConfigConflicts(t *testing.T) {
	conflicts := []map[string]string{
		{"allow-anonymous": "false"},
		{"bridge": "true"},
		{"tls": "true"},
		{"require-certificate": "true"},
		{"websockets": "true", "tls": "true", "certfile": "/c", "keyfile": "/k"},
		{"max-packet-size": "100", "message-size-limit": "200"},
		{"max-qos": "7"},
	}
	for i, cfg := range conflicts {
		b := NewBroker()
		if err := b.Start(cfg, coverage.NewTrace()); err == nil {
			t.Errorf("conflict %d accepted: %v", i, cfg)
		}
	}
	// And the resolutions start fine.
	oks := []map[string]string{
		{"allow-anonymous": "false", "password-file": "/etc/pw"},
		{"bridge": "true", "bridge-address": "10.0.0.2:1883"},
		{"tls": "true", "certfile": "/c.crt"}, // keyfile derived from certfile
	}
	for i, cfg := range oks {
		b := NewBroker()
		if err := b.Start(cfg, coverage.NewTrace()); err != nil {
			t.Errorf("valid config %d rejected: %v", i, err)
		}
	}
}

func TestStartupCoverageGrowsWithFeatures(t *testing.T) {
	base := coverage.NewTrace()
	b := NewBroker()
	if err := b.Start(nil, base); err != nil {
		t.Fatal(err)
	}
	rich := coverage.NewTrace()
	b2 := NewBroker()
	err := b2.Start(map[string]string{
		"persistence":    "true",
		"bridge":         "true",
		"bridge-address": "10.0.0.2:1883",
		"websockets":     "true",
		"password-file":  "/etc/pw",
		"acl-file":       "/etc/acl",
	}, rich)
	if err != nil {
		t.Fatal(err)
	}
	if rich.Count() <= base.Count() {
		t.Fatalf("feature-rich startup coverage %d <= base %d", rich.Count(), base.Count())
	}
}

func TestStartupSynergyEdges(t *testing.T) {
	count := func(cfg map[string]string) int {
		tr := coverage.NewTrace()
		b := NewBroker()
		if err := b.Start(cfg, tr); err != nil {
			t.Fatalf("Start(%v): %v", cfg, err)
		}
		return tr.Count()
	}
	bridgeOnly := count(map[string]string{"bridge": "true", "bridge-address": "x:1"})
	persistOnly := count(map[string]string{"persistence": "true", "autosave-interval": "0"})
	both := count(map[string]string{
		"bridge": "true", "bridge-address": "x:1",
		"persistence": "true", "autosave-interval": "0",
	})
	base := count(nil)
	// Synergy: both together exceed the sum of individual gains.
	if both-base <= (bridgeOnly-base)+(persistOnly-base) {
		t.Fatalf("no synergy edges: base=%d bridge=%d persist=%d both=%d",
			base, bridgeOnly, persistOnly, both)
	}
}

func TestConnectPublishSubscribeFlow(t *testing.T) {
	b, tr := startBroker(t, nil)
	connect(t, b)

	// Subscribe, then a matching publish must be routed back.
	resp := b.Message(subscribeBytes(5, "sensors/#", 1))
	if len(resp) != 1 || resp[0][0]>>4 != typeSuback {
		t.Fatalf("suback = %x", resp)
	}
	resp = b.Message(publishBytes("sensors/temp", 0, false, false, 0, []byte("21C")))
	if len(resp) != 1 || resp[0][0]>>4 != typePublish {
		t.Fatalf("routed publish = %x", resp)
	}
	if tr.Count() == 0 {
		t.Fatal("no coverage recorded")
	}
}

func TestQoS2Flow(t *testing.T) {
	b, _ := startBroker(t, nil)
	connect(t, b)
	resp := b.Message(publishBytes("a/b", 2, false, false, 42, []byte("x")))
	if len(resp) != 1 || resp[0][0]>>4 != typePubrec {
		t.Fatalf("pubrec = %x", resp)
	}
	resp = b.Message(encodeAck(typePubrel, 42))
	if len(resp) != 1 || resp[0][0]>>4 != typePubcomp {
		t.Fatalf("pubcomp = %x", resp)
	}
}

func TestRetainedDeliveryOnSubscribe(t *testing.T) {
	b, _ := startBroker(t, nil)
	connect(t, b)
	b.Message(publishBytes("state/x", 0, true, false, 0, []byte("on")))
	resp := b.Message(subscribeBytes(6, "state/#", 0))
	if len(resp) != 2 {
		t.Fatalf("expected suback + retained publish, got %d packets", len(resp))
	}
	if resp[1][0]>>4 != typePublish || resp[1][0]&0x01 != 1 {
		t.Fatalf("retained publish = %x", resp[1])
	}
}

func TestUnconnectedPacketsDropped(t *testing.T) {
	b, _ := startBroker(t, nil)
	if resp := b.Message(publishBytes("a", 0, false, false, 0, nil)); resp != nil {
		t.Fatalf("unconnected publish answered: %x", resp)
	}
}

func TestAuthRequired(t *testing.T) {
	b, _ := startBroker(t, map[string]string{
		"allow-anonymous": "false",
		"password-file":   "/etc/pw",
	})
	resp := b.Message(connectPacketBytes("anon", 0x02))
	if len(resp) != 1 || resp[0][3] != 5 {
		t.Fatalf("anonymous connect not refused: %x", resp)
	}
}

func TestBug1BridgeDupQoS2(t *testing.T) {
	b, _ := startBroker(t, map[string]string{
		"bridge": "true", "bridge-address": "peer:1883",
	})
	connect(t, b)
	b.Message(publishBytes("sensors/t", 2, false, false, 9, []byte("v")))
	crash := bugs.Capture(func() {
		b.Message(publishBytes("sensors/t", 2, false, true, 9, []byte("v")))
	})
	if crash == nil || crash.Function != "Connection::newMessage" {
		t.Fatalf("crash = %+v, want bug #1", crash)
	}
	if k, ok := bugs.LookupKnown(crash); !ok || k.No != 1 {
		t.Fatalf("not Table II row 1: %+v", k)
	}
}

func TestBug1NotWithoutBridge(t *testing.T) {
	b, _ := startBroker(t, nil)
	connect(t, b)
	b.Message(publishBytes("sensors/t", 2, false, false, 9, []byte("v")))
	crash := bugs.Capture(func() {
		b.Message(publishBytes("sensors/t", 2, false, true, 9, []byte("v")))
	})
	if crash != nil {
		t.Fatalf("bug #1 fired under default config: %v", crash)
	}
}

func TestBug2SharedSubOverWebsockets(t *testing.T) {
	b, _ := startBroker(t, map[string]string{"websockets": "true"})
	connect(t, b)
	crash := bugs.Capture(func() {
		b.Message(subscribeBytes(3, "$share/grp/sensors/#", 1))
	})
	if crash == nil || crash.Function != "neu_node_manager_get_addrs_all" {
		t.Fatalf("crash = %+v, want bug #2", crash)
	}
	// Default config: same input, no crash.
	b2, _ := startBroker(t, nil)
	connect(t, b2)
	if c := bugs.Capture(func() { b2.Message(subscribeBytes(3, "$share/grp/sensors/#", 1)) }); c != nil {
		t.Fatalf("bug #2 fired under default config: %v", c)
	}
}

func TestBug3SmallMaxPacketSize(t *testing.T) {
	b, _ := startBroker(t, map[string]string{"max-packet-size": "16"})
	connect0 := connectPacketBytes("tester", 0x02) // 16 < len
	if len(connect0) <= 16 {
		t.Fatal("test packet too small")
	}
	crash := bugs.Capture(func() { b.Message(connect0) })
	if crash == nil || crash.Function != "mqtt_packet_destroy" {
		t.Fatalf("crash = %+v, want bug #3", crash)
	}
}

func TestBug4ConnectionBoundary(t *testing.T) {
	b, _ := startBroker(t, map[string]string{"max-connections": "1"})
	b.NewSession()
	b.Message(connectPacketBytes("c1", 0x00))
	b.NewSession()
	crash := bugs.Capture(func() { b.Message(connectPacketBytes("c2", 0x00)) })
	if crash == nil || crash.Function != "loop_accepted" {
		t.Fatalf("crash = %+v, want bug #4", crash)
	}
}

func TestBug5RetainedOverwriteLeak(t *testing.T) {
	b, _ := startBroker(t, map[string]string{
		"persistence": "true", "queue-qos0-messages": "true",
	})
	connect(t, b)
	b.Message(publishBytes("state/x", 0, true, false, 0, []byte("a")))
	crash := bugs.Capture(func() {
		b.Message(publishBytes("state/x", 0, true, false, 0, []byte("b")))
	})
	if crash == nil || crash.Kind != bugs.MemoryLeak {
		t.Fatalf("crash = %+v, want bug #5", crash)
	}
}

func TestNoBugsUnderDefaultConfig(t *testing.T) {
	b, _ := startBroker(t, nil)
	connect(t, b)
	inputs := [][]byte{
		publishBytes("state/x", 0, true, false, 0, []byte("a")),
		publishBytes("state/x", 0, true, false, 0, []byte("b")),
		publishBytes("t", 2, false, true, 9, []byte("v")),
		publishBytes("t", 2, false, true, 9, []byte("v")),
		subscribeBytes(3, "$share/grp/x", 1),
		connectPacketBytes("big-client-name-here", 0x02),
	}
	for _, in := range inputs {
		if c := bugs.Capture(func() { b.Message(in) }); c != nil {
			t.Fatalf("default config crashed on %x: %v", in, c)
		}
	}
}

func TestPitParsesAndDrivesBroker(t *testing.T) {
	sub := Subject()
	if sub.Info().Protocol != "MQTT" {
		t.Fatal("wrong info")
	}
	if sub.PitXML() == "" {
		t.Fatal("empty pit")
	}
}

func TestMessageCoverageDiversity(t *testing.T) {
	b, tr := startBroker(t, nil)
	connect(t, b)
	before := tr.Count()
	topics := []string{"a/b", "a/c", "x/y/z", "sensors/1", "sensors/2"}
	for _, tp := range topics {
		b.Message(publishBytes(tp, 1, false, false, 3, []byte(tp)))
	}
	if tr.Count()-before < len(topics) {
		t.Fatalf("topic diversity added only %d edges", tr.Count()-before)
	}
}

func TestSessionResumption(t *testing.T) {
	b, _ := startBroker(t, nil)
	b.NewSession()
	b.Message(connectPacketBytes("sticky", 0x00)) // persistent session
	b.Message(subscribeBytes(4, "a/#", 1))
	b.NewSession()
	resp := b.Message(connectPacketBytes("sticky", 0x00))
	if len(resp) != 1 || resp[0][2] != 1 {
		t.Fatalf("session-present flag not set: %x", resp)
	}
	// Old subscription still routes.
	resp = b.Message(publishBytes("a/x", 0, false, false, 0, []byte("1")))
	if len(resp) != 1 || resp[0][0]>>4 != typePublish {
		t.Fatalf("resumed session lost subscription: %x", resp)
	}
}
