// Package mqtt implements a Mosquitto-like MQTT 3.1.1 broker used as the
// MQTT subject in the CMFuzz evaluation. The broker parses the real MQTT
// wire format, maintains sessions, subscriptions, retained messages, QoS
// 1/2 flows and optional bridge/persistence/websocket/TLS/auth features,
// all gated by a Mosquitto-style configuration surface. Five seeded,
// configuration-gated defects reproduce Table II rows 1–5.
package mqtt

import (
	"errors"

	"cmfuzz/internal/wire"
)

// Control packet types (MQTT 3.1.1 §2.2.1).
const (
	typeConnect     = 1
	typeConnack     = 2
	typePublish     = 3
	typePuback      = 4
	typePubrec      = 5
	typePubrel      = 6
	typePubcomp     = 7
	typeSubscribe   = 8
	typeSuback      = 9
	typeUnsubscribe = 10
	typeUnsuback    = 11
	typePingreq     = 12
	typePingresp    = 13
	typeDisconnect  = 14
)

var errMalformed = errors.New("mqtt: malformed packet")

// packet is one decoded control packet.
type packet struct {
	Type  byte
	Flags byte // lower nibble of the fixed header
	Body  []byte
}

// decodePacket splits the fixed header from the body.
func decodePacket(data []byte) (packet, error) {
	r := wire.NewReader(data)
	first := r.U8()
	remlen := r.Varint()
	body := r.Bytes(int(remlen))
	if r.Err() != nil {
		return packet{}, errMalformed
	}
	return packet{Type: first >> 4, Flags: first & 0x0f, Body: body}, nil
}

// connectPacket is a decoded CONNECT.
type connectPacket struct {
	ProtoName    string
	ProtoLevel   byte
	Flags        byte
	KeepAlive    uint16
	ClientID     string
	WillTopic    string
	WillMessage  []byte
	Username     string
	Password     []byte
	CleanSession bool
	WillQoS      byte
	WillRetain   bool
}

func decodeConnect(body []byte) (connectPacket, error) {
	r := wire.NewReader(body)
	var c connectPacket
	c.ProtoName = r.String16()
	c.ProtoLevel = r.U8()
	c.Flags = r.U8()
	c.KeepAlive = r.U16()
	c.ClientID = r.String16()
	c.CleanSession = c.Flags&0x02 != 0
	c.WillQoS = (c.Flags >> 3) & 0x03
	c.WillRetain = c.Flags&0x20 != 0
	if c.Flags&0x04 != 0 { // will flag
		c.WillTopic = r.String16()
		c.WillMessage = r.Bytes16()
	}
	if c.Flags&0x80 != 0 { // username
		c.Username = r.String16()
	}
	if c.Flags&0x40 != 0 { // password
		c.Password = r.Bytes16()
	}
	if r.Err() != nil {
		return c, errMalformed
	}
	return c, nil
}

// publishPacket is a decoded PUBLISH.
type publishPacket struct {
	Topic    string
	PacketID uint16
	Payload  []byte
	QoS      byte
	Retain   bool
	Dup      bool
}

func decodePublish(flags byte, body []byte) (publishPacket, error) {
	r := wire.NewReader(body)
	var p publishPacket
	p.QoS = (flags >> 1) & 0x03
	p.Retain = flags&0x01 != 0
	p.Dup = flags&0x08 != 0
	p.Topic = r.String16()
	if p.QoS > 0 {
		p.PacketID = r.U16()
	}
	p.Payload = r.Rest()
	if r.Err() != nil || p.QoS == 3 {
		return p, errMalformed
	}
	return p, nil
}

// subscription is one topic filter request inside SUBSCRIBE.
type subscription struct {
	Filter string
	QoS    byte
}

func decodeSubscribe(body []byte) (uint16, []subscription, error) {
	r := wire.NewReader(body)
	id := r.U16()
	var subs []subscription
	for !r.Empty() {
		f := r.String16()
		q := r.U8()
		if r.Err() != nil {
			return id, subs, errMalformed
		}
		subs = append(subs, subscription{Filter: f, QoS: q})
	}
	if r.Err() != nil || len(subs) == 0 {
		return id, subs, errMalformed
	}
	return id, subs, nil
}

func decodeUnsubscribe(body []byte) (uint16, []string, error) {
	r := wire.NewReader(body)
	id := r.U16()
	var filters []string
	for !r.Empty() {
		filters = append(filters, r.String16())
	}
	if r.Err() != nil || len(filters) == 0 {
		return id, filters, errMalformed
	}
	return id, filters, nil
}

func decodePacketID(body []byte) (uint16, error) {
	r := wire.NewReader(body)
	id := r.U16()
	if r.Err() != nil {
		return 0, errMalformed
	}
	return id, nil
}

// encode builds a packet with the given type, flags and body.
func encode(ptype, flags byte, body []byte) []byte {
	w := wire.NewWriter(2 + len(body))
	w.U8(ptype<<4 | flags&0x0f)
	w.Varint(uint32(len(body)))
	w.Raw(body)
	return w.Bytes()
}

func encodeConnack(sessionPresent bool, code byte) []byte {
	sp := byte(0)
	if sessionPresent {
		sp = 1
	}
	return encode(typeConnack, 0, []byte{sp, code})
}

func encodeAck(ptype byte, id uint16) []byte {
	flags := byte(0)
	if ptype == typePubrel {
		flags = 0x02
	}
	return encode(ptype, flags, []byte{byte(id >> 8), byte(id)})
}

func encodeSuback(id uint16, codes []byte) []byte {
	body := append([]byte{byte(id >> 8), byte(id)}, codes...)
	return encode(typeSuback, 0, body)
}

func encodePublish(p publishPacket) []byte {
	w := wire.NewWriter(4 + len(p.Topic) + len(p.Payload))
	w.String16(p.Topic)
	if p.QoS > 0 {
		w.U16(p.PacketID)
	}
	w.Raw(p.Payload)
	flags := p.QoS << 1
	if p.Retain {
		flags |= 0x01
	}
	if p.Dup {
		flags |= 0x08
	}
	return encode(typePublish, flags, w.Bytes())
}
