package mqtt

import (
	"fmt"

	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/protocols/probes"
)

// confFile is the shipped mosquitto.conf-style configuration, the file
// CMFuzz's extraction mines. Commented-out options are disabled features
// whose candidate values the extractor records.
const confFile = `# Mosquitto-style broker configuration
port 1883
max_connections 100
max_inflight_messages 20
max_queued_messages 1000
allow_anonymous true
retain_available true
max_qos 2
max_packet_size 268435455
message_size_limit 0
keepalive_interval 60
autosave_interval 1800
# persistence true
# persistence_location /var/lib/mosquitto
# password_file /etc/mosquitto/passwd
# acl_file /etc/mosquitto/acl
# bridge true
# bridge_address 10.0.0.2:1883
# bridge_protocol_version mqttv311
# bridge_topic sensors/#
# websockets true
# tls true
# certfile /etc/mosquitto/certs/server.crt
# keyfile /etc/mosquitto/certs/server.key
# require_certificate true
# queue_qos0_messages true
# upgrade_outgoing_qos true
`

// cliHelp is the broker's --help output, the CLI source of Algorithm 1.
const cliHelp = `Usage: broker [options]
  -c, --config-file FILE    configuration file
  -p, --port PORT           listen port (default: 1883)
  --verbose                 verbose logging
  --log-type TYPE           log categories, one of: none, error, warning, all
`

// ConfigInput returns the configuration sources Algorithm 1 extracts.
func ConfigInput() configspec.Input {
	return configspec.Input{
		CLIHelp: []string{cliHelp},
		Files:   []configspec.File{{Name: "mosquitto.conf", Content: confFile}},
	}
}

// settings is the broker's typed configuration.
type settings struct {
	port           int
	maxConnections int
	maxInflight    int
	maxQueued      int
	allowAnonymous bool
	retainOK       bool
	maxQoS         int
	maxPacketSize  int
	msgSizeLimit   int
	keepalive      int
	autosave       int

	persistence    bool
	persistenceLoc string
	passwordFile   string
	aclFile        string

	bridge        bool
	bridgeAddress string
	bridgeProto   string
	bridgeTopic   string

	websockets  bool
	tls         bool
	certFile    string
	keyFile     string
	requireCert bool

	queueQoS0  bool
	upgradeQoS bool
}

// parseSettings maps the normalized configuration assignment into typed
// settings. A missing keyfile is derived from the certfile, as brokers
// commonly allow.
func parseSettings(cfg map[string]string) settings {
	s := settings{
		port:           probes.Int(cfg, "port", 1883),
		maxConnections: probes.Int(cfg, "max-connections", 100),
		maxInflight:    probes.Int(cfg, "max-inflight-messages", 20),
		maxQueued:      probes.Int(cfg, "max-queued-messages", 1000),
		allowAnonymous: probes.Bool(cfg, "allow-anonymous", true),
		retainOK:       probes.Bool(cfg, "retain-available", true),
		maxQoS:         probes.Int(cfg, "max-qos", 2),
		maxPacketSize:  probes.Int(cfg, "max-packet-size", 268435455),
		msgSizeLimit:   probes.Int(cfg, "message-size-limit", 0),
		keepalive:      probes.Int(cfg, "keepalive-interval", 60),
		autosave:       probes.Int(cfg, "autosave-interval", 1800),
		persistence:    probes.Bool(cfg, "persistence", false),
		persistenceLoc: probes.Str(cfg, "persistence-location", ""),
		passwordFile:   probes.Str(cfg, "password-file", ""),
		aclFile:        probes.Str(cfg, "acl-file", ""),
		bridge:         probes.Bool(cfg, "bridge", false),
		bridgeAddress:  probes.Str(cfg, "bridge-address", ""),
		bridgeProto:    probes.Str(cfg, "bridge-protocol-version", "mqttv311"),
		bridgeTopic:    probes.Str(cfg, "bridge-topic", "sensors/#"),
		websockets:     probes.Bool(cfg, "websockets", false),
		tls:            probes.Bool(cfg, "tls", false),
		certFile:       probes.Str(cfg, "certfile", ""),
		keyFile:        probes.Str(cfg, "keyfile", ""),
		requireCert:    probes.Bool(cfg, "require-certificate", false),
		queueQoS0:      probes.Bool(cfg, "queue-qos0-messages", false),
		upgradeQoS:     probes.Bool(cfg, "upgrade-outgoing-qos", false),
	}
	if s.keyFile == "" && s.certFile != "" {
		s.keyFile = s.certFile + ".key"
	}
	return s
}

// validate rejects conflicting configurations — the zero-startup-coverage
// cases the relation model prunes.
func (s settings) validate() error {
	if !s.allowAnonymous && s.passwordFile == "" {
		return fmt.Errorf("mqtt: allow_anonymous false requires a password_file")
	}
	if s.bridge && s.bridgeAddress == "" {
		return fmt.Errorf("mqtt: bridge mode requires bridge_address")
	}
	if s.tls && s.certFile == "" {
		return fmt.Errorf("mqtt: tls requires a certfile")
	}
	if s.requireCert && !s.tls {
		return fmt.Errorf("mqtt: require_certificate without tls listener")
	}
	if s.websockets && s.tls {
		return fmt.Errorf("mqtt: websockets listener does not support tls")
	}
	if s.maxPacketSize != 0 && s.msgSizeLimit > s.maxPacketSize {
		return fmt.Errorf("mqtt: message_size_limit exceeds max_packet_size")
	}
	if s.maxQoS < 0 || s.maxQoS > 2 {
		return fmt.Errorf("mqtt: max_qos must be 0..2")
	}
	return nil
}

// Startup coverage sites.
const (
	sBoot         = 100
	sListener     = 101
	sLimits       = 102
	sPersistence  = 110
	sAuth         = 112
	sACL          = 113
	sBridgeInit   = 114
	sWebsockets   = 115
	sTLSInit      = 116
	sQoSPolicy    = 117
	sQueuePolicy  = 118
	sSynPersist   = 120
	sSynBridgeTLS = 121
	sSynAuthACL   = 122
	sSynBridgePer = 123
	sSynQueueQoS  = 124
	sSynWSLimits  = 125
)

// startupCoverage reports the initialization branches the configuration
// exercises. Feature regions unlock only when enabled; synergistic pairs
// add further edges, which is what the relation quantification measures.
func (s settings) startupCoverage(tr *coverage.Trace) {
	// Base boot path, sensitive to core numeric limits.
	for i := uint64(0); i < 12; i++ {
		tr.Edge(sBoot, i)
	}
	tr.Edge(sListener, probes.Bucket(s.port))
	tr.Edge(sLimits, probes.Bucket(s.maxConnections))
	tr.Edge(sLimits, 64+probes.Bucket(s.maxInflight))
	tr.Edge(sLimits, 128+probes.Bucket(s.maxQueued))
	tr.Edge(sLimits, 192+probes.Bucket(s.keepalive))
	tr.Edge(sQoSPolicy, uint64(s.maxQoS))
	tr.Edge(sQoSPolicy, 8+probes.B(s.retainOK))
	tr.Edge(sLimits, 256+probes.Bucket(s.maxPacketSize))
	tr.Edge(sLimits, 320+probes.Bucket(s.msgSizeLimit))

	if s.persistence {
		for i := uint64(0); i < 10; i++ {
			tr.Edge(sPersistence, i)
		}
		tr.Edge(sPersistence, 16+probes.Hash(s.persistenceLoc)%8)
		if s.autosave > 0 {
			tr.Edge(sSynPersist, probes.Bucket(s.autosave)) // autosave scheduler
			for i := uint64(0); i < 5; i++ {
				tr.Edge(sSynPersist, 64+i)
			}
		}
	}
	if s.passwordFile != "" {
		for i := uint64(0); i < 8; i++ {
			tr.Edge(sAuth, i)
		}
		tr.Edge(sAuth, 16+probes.B(!s.allowAnonymous))
	}
	if s.aclFile != "" {
		for i := uint64(0); i < 6; i++ {
			tr.Edge(sACL, i)
		}
		if s.passwordFile != "" {
			for i := uint64(0); i < 5; i++ {
				tr.Edge(sSynAuthACL, i) // per-user ACL resolution
			}
		}
	}
	if s.bridge {
		for i := uint64(0); i < 12; i++ {
			tr.Edge(sBridgeInit, i)
		}
		tr.Edge(sBridgeInit, 16+probes.Hash(s.bridgeProto)%4)
		tr.Edge(sBridgeInit, 24+probes.Hash(s.bridgeTopic)%8)
		if s.tls {
			for i := uint64(0); i < 6; i++ {
				tr.Edge(sSynBridgeTLS, i) // bridge over TLS
			}
		}
		if s.persistence {
			for i := uint64(0); i < 5; i++ {
				tr.Edge(sSynBridgePer, i) // bridge state persistence
			}
		}
	}
	if s.websockets {
		for i := uint64(0); i < 7; i++ {
			tr.Edge(sWebsockets, i)
		}
		if s.maxConnections > 100 {
			tr.Edge(sSynWSLimits, probes.Bucket(s.maxConnections))
		}
	}
	if s.tls {
		for i := uint64(0); i < 9; i++ {
			tr.Edge(sTLSInit, i)
		}
		tr.Edge(sTLSInit, 16+probes.B(s.requireCert))
	}
	if s.queueQoS0 {
		for i := uint64(0); i < 4; i++ {
			tr.Edge(sQueuePolicy, i)
		}
		if s.maxQueued > 0 {
			for i := uint64(0); i < 4; i++ {
				tr.Edge(sSynQueueQoS, i) // QoS0 queue bounded by max_queued
			}
		}
		if s.persistence {
			for i := uint64(0); i < 5; i++ {
				tr.Edge(sSynQueueQoS, 16+i) // QoS0 queue spills to the store
			}
		}
	}
	if s.upgradeQoS {
		tr.Edge(sQueuePolicy, 8+uint64(s.maxQoS))
	}
}
