package mqtt

import (
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/subject"
)

// pitXML is the MQTT Pit document: data models for the broker-bound
// control packets and a state model covering connect, publish, QoS 2
// completion, subscribe and teardown flows. All fuzzers share it, as in
// the paper's setup.
const pitXML = `<?xml version="1.0"?>
<Peach>
  <DataModel name="Connect">
    <Number name="type" bits="8" value="16" token="true"/>
    <Number name="remlen" varint="true" sizeOf="body"/>
    <Block name="body">
      <Number name="protolen" bits="16" sizeOf="proto"/>
      <String name="proto" value="MQTT"/>
      <Number name="level" bits="8" value="4"/>
      <Choice name="variant">
        <Block name="anon">
          <Number name="flags" bits="8" value="2"/>
          <Number name="keepalive" bits="16" value="60"/>
          <Number name="cidlen" bits="16" sizeOf="cid"/>
          <String name="cid" value="client-a"/>
        </Block>
        <Block name="persistent">
          <Number name="flags" bits="8" value="0"/>
          <Number name="keepalive" bits="16" value="30"/>
          <Number name="cidlen" bits="16" sizeOf="cid"/>
          <String name="cid" value="client-b"/>
        </Block>
        <Block name="willful">
          <Number name="flags" bits="8" value="46"/>
          <Number name="keepalive" bits="16" value="10"/>
          <Number name="cidlen" bits="16" sizeOf="cid"/>
          <String name="cid" value="client-w"/>
          <Number name="wtlen" bits="16" sizeOf="wtopic"/>
          <String name="wtopic" value="state/offline"/>
          <Number name="wmlen" bits="16" sizeOf="wmsg"/>
          <String name="wmsg" value="gone"/>
        </Block>
        <Block name="credentials">
          <Number name="flags" bits="8" value="194"/>
          <Number name="keepalive" bits="16" value="60"/>
          <Number name="cidlen" bits="16" sizeOf="cid"/>
          <String name="cid" value="client-c"/>
          <Number name="userlen" bits="16" sizeOf="user"/>
          <String name="user" value="alice"/>
          <Number name="passlen" bits="16" sizeOf="pass"/>
          <String name="pass" value="wonder"/>
        </Block>
      </Choice>
    </Block>
  </DataModel>
  <DataModel name="Publish">
    <Choice name="first">
      <Number name="q0" bits="8" value="48"/>
      <Number name="q1" bits="8" value="50"/>
      <Number name="q2" bits="8" value="52"/>
      <Number name="q2dup" bits="8" value="60"/>
      <Number name="q0retain" bits="8" value="49"/>
      <Number name="q2retain" bits="8" value="53"/>
    </Choice>
    <Number name="remlen" varint="true" sizeOf="body"/>
    <Block name="body">
      <Number name="topiclen" bits="16" sizeOf="topic"/>
      <Choice name="topic">
        <String name="t1" value="sensors/temp"/>
        <String name="t2" value="home/kitchen/light"/>
        <String name="t3" value="sensors/hum/1"/>
        <String name="t4" value="$SYS/broker/load"/>
        <String name="t5" value="a"/>
      </Choice>
      <Number name="pktid" bits="16" value="7"/>
      <Blob name="payload" valueHex="48692c20627261766f21"/>
    </Block>
  </DataModel>
  <DataModel name="Subscribe">
    <Number name="type" bits="8" value="130" token="true"/>
    <Number name="remlen" varint="true" sizeOf="body"/>
    <Block name="body">
      <Number name="pktid" bits="16" value="11"/>
      <Number name="flen" bits="16" sizeOf="filter"/>
      <Choice name="filter">
        <String name="f1" value="sensors/#"/>
        <String name="f2" value="+/kitchen/light"/>
        <String name="f3" value="$share/grp/sensors/#"/>
        <String name="f4" value="$SYS/#"/>
        <String name="f5" value="home/kitchen/light"/>
      </Choice>
      <Number name="qos" bits="8" value="1"/>
    </Block>
  </DataModel>
  <DataModel name="Unsubscribe">
    <Number name="type" bits="8" value="162" token="true"/>
    <Number name="remlen" varint="true" sizeOf="body"/>
    <Block name="body">
      <Number name="pktid" bits="16" value="12"/>
      <Number name="flen" bits="16" sizeOf="filter"/>
      <String name="filter" value="sensors/#"/>
    </Block>
  </DataModel>
  <DataModel name="Pubrel">
    <Number name="type" bits="8" value="98" token="true"/>
    <Number name="remlen" varint="true" sizeOf="body"/>
    <Block name="body">
      <Number name="pktid" bits="16" value="7"/>
    </Block>
  </DataModel>
  <DataModel name="Ack">
    <Choice name="first">
      <Number name="puback" bits="8" value="64"/>
      <Number name="pubrec" bits="8" value="80"/>
      <Number name="pubcomp" bits="8" value="112"/>
    </Choice>
    <Number name="remlen" varint="true" sizeOf="body"/>
    <Block name="body">
      <Number name="pktid" bits="16" value="7"/>
    </Block>
  </DataModel>
  <DataModel name="Ping">
    <Number name="type" bits="8" value="192" token="true"/>
    <Number name="remlen" bits="8" value="0"/>
  </DataModel>
  <DataModel name="Disconnect">
    <Number name="type" bits="8" value="224" token="true"/>
    <Number name="remlen" bits="8" value="0"/>
  </DataModel>
  <StateModel name="MQTTSession" initialState="init">
    <State name="init">
      <Action type="output" dataModel="Connect"/>
      <Action type="input"/>
      <Action type="changeState" to="connected"/>
    </State>
    <State name="connected">
      <Action type="output" dataModel="Publish"/>
      <Action type="changeState" to="qos2flow"/>
      <Action type="changeState" to="subscribing"/>
      <Action type="changeState" to="connected"/>
      <Action type="changeState" to="closing"/>
    </State>
    <State name="qos2flow">
      <Action type="output" dataModel="Publish"/>
      <Action type="output" dataModel="Pubrel"/>
      <Action type="output" dataModel="Ack"/>
      <Action type="changeState" to="connected"/>
      <Action type="changeState" to="closing"/>
    </State>
    <State name="subscribing">
      <Action type="output" dataModel="Subscribe"/>
      <Action type="output" dataModel="Publish"/>
      <Action type="changeState" to="unsubscribing"/>
      <Action type="changeState" to="connected"/>
    </State>
    <State name="unsubscribing">
      <Action type="output" dataModel="Unsubscribe"/>
      <Action type="changeState" to="closing"/>
    </State>
    <State name="closing">
      <Action type="output" dataModel="Ping"/>
      <Action type="output" dataModel="Disconnect"/>
    </State>
  </StateModel>
</Peach>`

// mqttSubject implements subject.Subject for the Mosquitto-like broker.
type mqttSubject struct{}

// Subject returns the MQTT evaluation subject.
func Subject() subject.Subject { return mqttSubject{} }

func (mqttSubject) Info() subject.Info {
	return subject.Info{
		Protocol:       "MQTT",
		Implementation: "Mosquitto",
		Transport:      subject.Stream,
		Port:           1883,
	}
}

func (mqttSubject) ConfigInput() configspec.Input { return ConfigInput() }

func (mqttSubject) PitXML() string { return pitXML }

func (mqttSubject) NewInstance() subject.Instance { return NewBroker() }
