package amqp

import (
	"testing"
	"testing/quick"

	"cmfuzz/internal/coverage"
)

func TestMaxSessionsLimit(t *testing.T) {
	b := startBroker(t, map[string]string{"max-sessions": "2"})
	greet(t, b)
	for ch := uint16(1); ch <= 2; ch++ {
		if resp := b.Message(encodeFrame(ch, perfBegin, []value{{Kind: 0x40}}, nil)); len(resp) != 1 {
			t.Fatalf("begin %d refused early", ch)
		}
	}
	if resp := b.Message(encodeFrame(3, perfBegin, []value{{Kind: 0x40}}, nil)); resp != nil {
		t.Fatal("over-limit begin accepted")
	}
}

func TestList32Decoding(t *testing.T) {
	// Hand-build a frame with a list32 field list.
	body := []byte{
		0x00, 0x53, perfOpen, // descriptor
		0xd0,                   // list32
		0x00, 0x00, 0x00, 0x09, // size
		0x00, 0x00, 0x00, 0x02, // count
		0x41,       // true
		0x52, 0x07, // smalluint 7
	}
	raw := append([]byte{0, 0, 0, byte(8 + len(body)), 2, 0, 0, 0}, body...)
	f, err := decodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Fields) != 2 || f.Fields[0].U != 1 || f.Fields[1].U != 7 {
		t.Fatalf("fields = %+v", f.Fields)
	}
}

func TestList0Performative(t *testing.T) {
	body := []byte{0x00, 0x53, perfClose, 0x45} // list0
	raw := append([]byte{0, 0, 0, byte(8 + len(body)), 2, 0, 0, 0}, body...)
	f, err := decodeFrame(raw)
	if err != nil || f.Code != perfClose || len(f.Fields) != 0 {
		t.Fatalf("frame = %+v (%v)", f, err)
	}
}

func TestCloseThenReopen(t *testing.T) {
	b := startBroker(t, nil)
	greet(t, b)
	resp := b.Message(encodeFrame(0, perfClose, nil, nil))
	if cf, _ := decodeFrame(resp[0]); cf.Code != perfClose {
		t.Fatal("no close echo")
	}
	// Begin after close is refused (connection not open).
	if resp := b.Message(encodeFrame(1, perfBegin, []value{{Kind: 0x40}}, nil)); resp != nil {
		t.Fatal("begin after close accepted")
	}
	// A new open works.
	if resp := b.Message(encodeFrame(0, perfOpen, []value{{Kind: 0xa1, S: "c", B: []byte("c")}}, nil)); len(resp) != 1 {
		t.Fatal("reopen refused")
	}
}

func TestQueueLimitResets(t *testing.T) {
	b := startBroker(t, map[string]string{"queue-limit": "32"})
	greet(t, b)
	b.Message(encodeFrame(1, perfBegin, []value{{Kind: 0x40}}, nil))
	for i := 0; i < 5; i++ {
		b.Message(encodeFrame(1, perfTransfer, []value{{Kind: 0x52, U: 0}, {Kind: 0x52, U: uint64(i)}}, make([]byte, 16)))
	}
	if b.queues["default"] > 32 {
		t.Fatalf("queue depth %d exceeds limit", b.queues["default"])
	}
}

func TestSkippedProtoHeaderTolerated(t *testing.T) {
	b := startBroker(t, nil)
	// First segment is a frame, not the AMQP header: tolerated.
	resp := b.Message(encodeFrame(0, perfOpen, []value{{Kind: 0xa1, S: "c", B: []byte("c")}}, nil))
	if len(resp) != 1 {
		t.Fatal("headerless open refused")
	}
}

func TestDetachEchoed(t *testing.T) {
	b := startBroker(t, nil)
	greet(t, b)
	b.Message(encodeFrame(1, perfBegin, []value{{Kind: 0x40}}, nil))
	b.Message(attachFrame(1, "q"))
	resp := b.Message(encodeFrame(1, perfDetach, []value{{Kind: 0x52, U: 0}}, nil))
	if df, _ := decodeFrame(resp[0]); df.Code != perfDetach {
		t.Fatalf("detach echo = %+v", df)
	}
}

// Property: decodeFrame never panics and respects the field-count guard.
func TestQuickDecodeFrameRobust(t *testing.T) {
	f := func(data []byte) bool {
		fr, err := decodeFrame(data)
		if err != nil {
			return true
		}
		return len(fr.Fields) <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: encodeFrame/decodeFrame round trip for arbitrary small uints
// and strings.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(ch uint16, a uint8, s string) bool {
		if len(s) > 200 {
			s = s[:200]
		}
		fields := []value{
			{Kind: 0x52, U: uint64(a)},
			{Kind: 0xa1, S: s, B: []byte(s)},
		}
		fr, err := decodeFrame(encodeFrame(ch, perfFlow, fields, nil))
		if err != nil {
			return false
		}
		return fr.Channel == ch && fr.Code == perfFlow &&
			fr.Fields[0].U == uint64(a) && fr.Fields[1].S == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStartupWorkersZeroDistinct(t *testing.T) {
	cov := func(workers string) int {
		tr := coverage.NewTrace()
		b := NewBroker()
		if err := b.Start(map[string]string{"worker-threads": workers}, tr); err != nil {
			t.Fatal(err)
		}
		return tr.Count()
	}
	if cov("0") <= cov("4") {
		t.Fatal("inline-worker mode has no distinct init region")
	}
}
