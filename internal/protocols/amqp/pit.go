package amqp

// pitXML is the AMQP Pit document: the protocol header, then the
// performative ladder (open, begin, attach, flow, transfer, disposition,
// detach/end/close). Frames are modeled with size relations over the
// frame body, and attach's link name is a mutable string (the field that
// matters for Table II bug #9).
const pitXML = `<?xml version="1.0"?>
<Peach>
  <DataModel name="ProtoHeader">
    <String name="magic" value="AMQP" token="true"/>
    <Choice name="variant">
      <Blob name="amqp" valueHex="00010000"/>
      <Blob name="sasl" valueHex="03010000"/>
    </Choice>
  </DataModel>
  <DataModel name="Open">
    <Number name="size" bits="32" sizeOf="Open"/>
    <Number name="doff" bits="8" value="2" token="true"/>
    <Number name="type" bits="8" value="0" token="true"/>
    <Number name="channel" bits="16" value="0"/>
    <Number name="descmark" bits="8" value="0" token="true"/>
    <Number name="desctype" bits="8" value="83" token="true"/>
    <Number name="desccode" bits="8" value="16" token="true"/>
    <Number name="listc" bits="8" value="192" token="true"/>
    <Number name="listsize" bits="8" sizeOf="fields"/>
    <Block name="fields">
      <Number name="count" bits="8" value="2"/>
      <Number name="cidc" bits="8" value="161" token="true"/>
      <Number name="cidlen" bits="8" sizeOf="cid"/>
      <String name="cid" value="client-0"/>
      <Number name="mfc" bits="8" value="112" token="true"/>
      <Number name="maxframe" bits="32" value="65536"/>
    </Block>
  </DataModel>
  <DataModel name="Begin">
    <Number name="size" bits="32" sizeOf="Begin"/>
    <Number name="doff" bits="8" value="2" token="true"/>
    <Number name="type" bits="8" value="0" token="true"/>
    <Number name="channel" bits="16" value="1"/>
    <Number name="descmark" bits="8" value="0" token="true"/>
    <Number name="desctype" bits="8" value="83" token="true"/>
    <Number name="desccode" bits="8" value="17" token="true"/>
    <Number name="listc" bits="8" value="192" token="true"/>
    <Number name="listsize" bits="8" sizeOf="fields"/>
    <Block name="fields">
      <Number name="count" bits="8" value="2"/>
      <Number name="rc" bits="8" value="64" token="true"/>
      <Number name="wc" bits="8" value="82" token="true"/>
      <Number name="window" bits="8" value="100"/>
    </Block>
  </DataModel>
  <DataModel name="Attach">
    <Number name="size" bits="32" sizeOf="Attach"/>
    <Number name="doff" bits="8" value="2" token="true"/>
    <Number name="type" bits="8" value="0" token="true"/>
    <Number name="channel" bits="16" value="1"/>
    <Number name="descmark" bits="8" value="0" token="true"/>
    <Number name="desctype" bits="8" value="83" token="true"/>
    <Number name="desccode" bits="8" value="18" token="true"/>
    <Number name="listc" bits="8" value="192" token="true"/>
    <Number name="listsize" bits="8" sizeOf="fields"/>
    <Block name="fields">
      <Number name="count" bits="8" value="3"/>
      <Number name="namec" bits="8" value="161" token="true"/>
      <Number name="namelen" bits="8" sizeOf="name"/>
      <Choice name="name">
        <String name="telemetry" value="telemetry-link"/>
        <String name="mgmt" value="$management"/>
        <String name="fed" value="@site-b-events"/>
        <String name="plain" value="orders"/>
      </Choice>
      <Number name="handlec" bits="8" value="82" token="true"/>
      <Number name="handle" bits="8" value="0"/>
      <Number name="rolec" bits="8" value="82" token="true"/>
      <Number name="role" bits="8" value="0"/>
    </Block>
  </DataModel>
  <DataModel name="Flow">
    <Number name="size" bits="32" sizeOf="Flow"/>
    <Number name="doff" bits="8" value="2" token="true"/>
    <Number name="type" bits="8" value="0" token="true"/>
    <Number name="channel" bits="16" value="1"/>
    <Number name="descmark" bits="8" value="0" token="true"/>
    <Number name="desctype" bits="8" value="83" token="true"/>
    <Number name="desccode" bits="8" value="19" token="true"/>
    <Number name="listc" bits="8" value="192" token="true"/>
    <Number name="listsize" bits="8" sizeOf="fields"/>
    <Block name="fields">
      <Number name="count" bits="8" value="3"/>
      <Number name="inc" bits="8" value="82" token="true"/>
      <Number name="incoming" bits="8" value="0"/>
      <Number name="nextc" bits="8" value="82" token="true"/>
      <Number name="next" bits="8" value="1"/>
      <Number name="credc" bits="8" value="82" token="true"/>
      <Number name="credit" bits="8" value="50"/>
    </Block>
  </DataModel>
  <DataModel name="Transfer">
    <Number name="size" bits="32" sizeOf="Transfer"/>
    <Number name="doff" bits="8" value="2" token="true"/>
    <Number name="type" bits="8" value="0" token="true"/>
    <Number name="channel" bits="16" value="1"/>
    <Number name="descmark" bits="8" value="0" token="true"/>
    <Number name="desctype" bits="8" value="83" token="true"/>
    <Number name="desccode" bits="8" value="20" token="true"/>
    <Number name="listc" bits="8" value="192" token="true"/>
    <Number name="listsize" bits="8" sizeOf="fields"/>
    <Block name="fields">
      <Number name="count" bits="8" value="2"/>
      <Number name="hc" bits="8" value="82" token="true"/>
      <Number name="handle" bits="8" value="0"/>
      <Number name="dc" bits="8" value="82" token="true"/>
      <Number name="did" bits="8" value="1"/>
    </Block>
    <Blob name="body" valueHex="005377a10b68656c6c6f20776f726c64"/>
  </DataModel>
  <DataModel name="Disposition">
    <Number name="size" bits="32" sizeOf="Disposition"/>
    <Number name="doff" bits="8" value="2" token="true"/>
    <Number name="type" bits="8" value="0" token="true"/>
    <Number name="channel" bits="16" value="1"/>
    <Number name="descmark" bits="8" value="0" token="true"/>
    <Number name="desctype" bits="8" value="83" token="true"/>
    <Number name="desccode" bits="8" value="21" token="true"/>
    <Number name="listc" bits="8" value="192" token="true"/>
    <Number name="listsize" bits="8" sizeOf="fields"/>
    <Block name="fields">
      <Number name="count" bits="8" value="2"/>
      <Number name="rc" bits="8" value="65" token="true"/>
      <Number name="fc" bits="8" value="82" token="true"/>
      <Number name="first" bits="8" value="1"/>
    </Block>
  </DataModel>
  <DataModel name="Teardown">
    <Number name="size" bits="32" sizeOf="Teardown"/>
    <Number name="doff" bits="8" value="2" token="true"/>
    <Number name="type" bits="8" value="0" token="true"/>
    <Number name="channel" bits="16" value="1"/>
    <Number name="descmark" bits="8" value="0" token="true"/>
    <Number name="desctype" bits="8" value="83" token="true"/>
    <Choice name="kind">
      <Number name="detach" bits="8" value="22"/>
      <Number name="end" bits="8" value="23"/>
      <Number name="close" bits="8" value="24"/>
    </Choice>
    <Number name="listc" bits="8" value="69" token="true"/>
  </DataModel>
  <StateModel name="AMQPConnection" initialState="greet">
    <State name="greet">
      <Action type="output" dataModel="ProtoHeader"/>
      <Action type="output" dataModel="Open"/>
      <Action type="changeState" to="session"/>
    </State>
    <State name="session">
      <Action type="output" dataModel="Begin"/>
      <Action type="output" dataModel="Attach"/>
      <Action type="changeState" to="flowing"/>
      <Action type="changeState" to="transferring"/>
    </State>
    <State name="flowing">
      <Action type="output" dataModel="Flow"/>
      <Action type="changeState" to="transferring"/>
    </State>
    <State name="transferring">
      <Action type="output" dataModel="Transfer"/>
      <Action type="output" dataModel="Disposition"/>
      <Action type="changeState" to="transferring"/>
      <Action type="changeState" to="closing"/>
    </State>
    <State name="closing">
      <Action type="output" dataModel="Teardown"/>
    </State>
  </StateModel>
</Peach>`
