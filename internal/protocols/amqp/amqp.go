// Package amqp implements a Qpid-like AMQP 1.0 broker used as the AMQP
// subject: frame parsing, a compact AMQP type decoder, performative
// handling (open/begin/attach/flow/transfer/disposition/detach/end/close),
// and the qpidd configuration surface. One seeded configuration-gated
// defect reproduces Table II row 9. The paper reports modest gains here
// ("AMQP's predefined structure limits exploration"), so the
// configuration-gated region is comparatively small.
package amqp

import (
	"errors"
	"fmt"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/protocols/probes"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/wire"
)

// Performative descriptor codes (AMQP 1.0 §2.7).
const (
	perfOpen        = 0x10
	perfBegin       = 0x11
	perfAttach      = 0x12
	perfFlow        = 0x13
	perfTransfer    = 0x14
	perfDisposition = 0x15
	perfDetach      = 0x16
	perfEnd         = 0x17
	perfClose       = 0x18
)

var errMalformed = errors.New("amqp: malformed frame")

// protoHeader is the AMQP 1.0 protocol handshake header.
var protoHeader = []byte{'A', 'M', 'Q', 'P', 0, 1, 0, 0}

// value is one decoded AMQP primitive.
type value struct {
	Kind byte // constructor byte
	U    uint64
	S    string
	B    []byte
}

// frame is one decoded AMQP frame.
type frame struct {
	Type    byte
	Channel uint16
	Code    byte // performative code
	Fields  []value
	Payload []byte
}

// decodeFrame parses one AMQP frame (after the protocol header phase).
func decodeFrame(data []byte) (frame, error) {
	r := wire.NewReader(data)
	var f frame
	size := r.U32()
	doff := r.U8()
	f.Type = r.U8()
	f.Channel = r.U16()
	if r.Err() != nil || int(size) != len(data) || doff < 2 {
		return f, errMalformed
	}
	r.Skip(int(doff)*4 - 8)
	if r.Err() != nil {
		return f, errMalformed
	}
	// Described performative: 0x00 descriptor-constructor code.
	if r.U8() != 0x00 {
		return f, errMalformed
	}
	desc, err := decodeValue(r)
	if err != nil {
		return f, err
	}
	f.Code = byte(desc.U)
	// Field list.
	fields, err := decodeList(r)
	if err != nil {
		return f, err
	}
	f.Fields = fields
	f.Payload = r.Rest()
	return f, nil
}

// decodeValue parses one primitive.
func decodeValue(r *wire.Reader) (value, error) {
	c := r.U8()
	if r.Err() != nil {
		return value{}, errMalformed
	}
	v := value{Kind: c}
	switch c {
	case 0x40, 0x41, 0x42, 0x43, 0x44: // null, true, false, uint0, ulong0
		if c == 0x41 {
			v.U = 1
		}
	case 0x50, 0x52, 0x53: // ubyte, smalluint, smallulong
		v.U = uint64(r.U8())
	case 0x60: // ushort
		v.U = uint64(r.U16())
	case 0x70: // uint
		v.U = uint64(r.U32())
	case 0x80: // ulong
		v.U = r.U64()
	case 0xa0, 0xa1: // vbin8, str8
		n := int(r.U8())
		b := r.Bytes(n)
		v.B = b
		v.S = string(b)
	case 0xb0, 0xb1: // vbin32, str32
		n := int(r.U32())
		if n > 1<<20 {
			return v, errMalformed
		}
		b := r.Bytes(n)
		v.B = b
		v.S = string(b)
	default:
		return v, fmt.Errorf("amqp: unsupported constructor %#x: %w", c, errMalformed)
	}
	if r.Err() != nil {
		return v, errMalformed
	}
	return v, nil
}

// decodeList parses a list8/list32/list0 of primitives.
func decodeList(r *wire.Reader) ([]value, error) {
	c := r.U8()
	if r.Err() != nil {
		return nil, errMalformed
	}
	var count int
	switch c {
	case 0x45: // list0
		return nil, nil
	case 0xc0: // list8
		r.U8() // size
		count = int(r.U8())
	case 0xd0: // list32
		r.U32()
		count = int(r.U32())
	default:
		return nil, errMalformed
	}
	if r.Err() != nil || count > 64 {
		return nil, errMalformed
	}
	out := make([]value, 0, count)
	for i := 0; i < count; i++ {
		v, err := decodeValue(r)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// encodeFrame builds a performative frame.
func encodeFrame(channel uint16, code byte, fields []value, payload []byte) []byte {
	body := wire.NewWriter(32)
	body.U8(0x00)
	body.U8(0x53) // smallulong descriptor
	body.U8(code)
	// list8
	inner := wire.NewWriter(16)
	for _, v := range fields {
		encodeValue(inner, v)
	}
	body.U8(0xc0)
	body.U8(byte(inner.Len() + 1))
	body.U8(byte(len(fields)))
	body.Raw(inner.Bytes())
	body.Raw(payload)

	w := wire.NewWriter(8 + body.Len())
	w.U32(uint32(8 + body.Len()))
	w.U8(2) // doff
	w.U8(0) // type AMQP
	w.U16(channel)
	w.Raw(body.Bytes())
	return w.Bytes()
}

func encodeValue(w *wire.Writer, v value) {
	switch v.Kind {
	case 0x40, 0x41, 0x42, 0x43, 0x44:
		w.U8(v.Kind)
	case 0x50, 0x52, 0x53:
		w.U8(v.Kind)
		w.U8(byte(v.U))
	case 0x60:
		w.U8(v.Kind)
		w.U16(uint16(v.U))
	case 0x70:
		w.U8(v.Kind)
		w.U32(uint32(v.U))
	case 0xa1, 0xa0:
		w.U8(v.Kind)
		b := v.B
		if v.Kind == 0xa1 && b == nil {
			b = []byte(v.S)
		}
		if len(b) > 255 {
			b = b[:255]
		}
		w.U8(byte(len(b)))
		w.Raw(b)
	default:
		w.U8(0x40)
	}
}

// qpidd.conf-style configuration file.
const confFile = `# Qpid-style broker configuration
port=5672
max-connections=500
worker-threads=4
max-frame-size=65536
max-sessions=256
queue-limit=104857600
link-maintenance-interval=2
auth=no
# sasl-mechanisms=PLAIN
# acl-file=/etc/qpid/acl
# durable=true
# store-dir=/var/lib/qpidd
# mgmt-enable=yes
# federation-tag=site-a
`

type settings struct {
	port         int
	maxConns     int
	workers      int
	maxFrame     int
	maxSessions  int
	queueLimit   int
	linkInterval int
	auth         bool
	sasl         string
	aclFile      string
	durable      bool
	storeDir     string
	mgmt         bool
	federation   string
}

func parseSettings(cfg map[string]string) settings {
	return settings{
		port:         probes.Int(cfg, "port", 5672),
		maxConns:     probes.Int(cfg, "max-connections", 500),
		workers:      probes.Int(cfg, "worker-threads", 4),
		maxFrame:     probes.Int(cfg, "max-frame-size", 65536),
		maxSessions:  probes.Int(cfg, "max-sessions", 256),
		queueLimit:   probes.Int(cfg, "queue-limit", 104857600),
		linkInterval: probes.Int(cfg, "link-maintenance-interval", 2),
		auth:         probes.Bool(cfg, "auth", false),
		sasl:         probes.Str(cfg, "sasl-mechanisms", ""),
		aclFile:      probes.Str(cfg, "acl-file", ""),
		durable:      probes.Bool(cfg, "durable", false),
		storeDir:     probes.Str(cfg, "store-dir", ""),
		mgmt:         probes.Bool(cfg, "mgmt-enable", false),
		federation:   probes.Str(cfg, "federation-tag", ""),
	}
}

func (s settings) validate() error {
	if s.auth && s.sasl == "" {
		return fmt.Errorf("amqp: auth=yes requires sasl-mechanisms")
	}
	if s.durable && s.storeDir == "" {
		return fmt.Errorf("amqp: durable requires store-dir")
	}
	if s.maxFrame != 0 && s.maxFrame < 512 {
		return fmt.Errorf("amqp: max-frame-size below the AMQP minimum of 512")
	}
	if s.workers < 0 {
		return fmt.Errorf("amqp: worker-threads must be non-negative")
	}
	if s.maxSessions < 1 {
		return fmt.Errorf("amqp: max-sessions must be positive")
	}
	return nil
}

// Startup sites.
const (
	sBoot      = 100
	sWorkers   = 101
	sAuthInit  = 102
	sACL       = 103
	sStore     = 104
	sMgmt      = 105
	sFed       = 106
	sSynAuthA  = 110
	sSynStoreQ = 111
	sSynFedMg  = 112
)

func (s settings) startupCoverage(tr *coverage.Trace) {
	for i := uint64(0); i < 10; i++ {
		tr.Edge(sBoot, i)
	}
	tr.Edge(sBoot, 16+probes.Bucket(s.port))
	tr.Edge(sBoot, 32+probes.Bucket(s.maxConns))
	tr.Edge(sBoot, 48+probes.Bucket(s.maxFrame))
	tr.Edge(sBoot, 64+probes.Bucket(s.maxSessions))
	tr.Edge(sBoot, 80+probes.Bucket(s.queueLimit))
	tr.Edge(sBoot, 96+uint64(s.linkInterval%16))
	tr.Edge(sWorkers, probes.Bucket(s.workers))
	if s.workers == 0 {
		// Synchronous mode: connections are served by inline workers, a
		// distinct initialization path.
		for i := uint64(0); i < 4; i++ {
			tr.Edge(sWorkers, 16+i)
		}
	}

	if s.auth {
		for i := uint64(0); i < 7; i++ {
			tr.Edge(sAuthInit, i)
		}
		tr.Edge(sAuthInit, 16+probes.Hash(s.sasl)%8)
		if s.aclFile != "" {
			for i := uint64(0); i < 4; i++ {
				tr.Edge(sSynAuthA, i)
			}
		}
	}
	if s.aclFile != "" {
		for i := uint64(0); i < 5; i++ {
			tr.Edge(sACL, i)
		}
	}
	if s.durable {
		for i := uint64(0); i < 8; i++ {
			tr.Edge(sStore, i)
		}
		tr.Edge(sSynStoreQ, probes.Bucket(s.queueLimit))
	}
	if s.mgmt {
		for i := uint64(0); i < 6; i++ {
			tr.Edge(sMgmt, i)
		}
		if s.federation != "" {
			for i := uint64(0); i < 4; i++ {
				tr.Edge(sSynFedMg, i)
			}
		}
	}
	if s.federation != "" {
		for i := uint64(0); i < 6; i++ {
			tr.Edge(sFed, i)
		}
	}
}

// Message sites.
const (
	mProto    = 200
	mFrameErr = 201
	mFrame    = 202
	mPerf     = 210
	mOpen     = 220
	mBegin    = 230
	mAttach   = 240
	mFlow     = 250
	mTransfer = 260
	mDispo    = 270
	mDetach   = 280
	mSASL     = 290
	mMgmtOp   = 300
	mStoreOp  = 310
	mFedOp    = 320
)

const hashSpace = 2048

// transferSpace bounds the transfer-payload content family, the broker's
// widest region (Qpid's message-handling core).
const transferSpace = 1536

// Broker is the Qpid-like AMQP subject instance.
type Broker struct {
	cfg        settings
	tr         *coverage.Trace
	headerSeen bool
	opened     bool
	sessions   map[uint16]bool
	links      map[string]bool
	queues     map[string]int
}

// NewBroker returns an unstarted AMQP broker.
func NewBroker() *Broker {
	return &Broker{
		sessions: make(map[uint16]bool),
		links:    make(map[string]bool),
		queues:   make(map[string]int),
	}
}

// Start implements subject.Instance.
func (b *Broker) Start(cfg map[string]string, tr *coverage.Trace) error {
	st := parseSettings(cfg)
	if err := st.validate(); err != nil {
		return err
	}
	b.cfg = st
	b.tr = tr
	st.startupCoverage(tr)
	return nil
}

// SetTrace implements subject.Instance.
func (b *Broker) SetTrace(tr *coverage.Trace) { b.tr = tr }

// NewSession implements subject.Instance: a fresh TCP connection.
func (b *Broker) NewSession() {
	b.headerSeen = false
	b.opened = false
	b.sessions = make(map[uint16]bool)
	b.links = make(map[string]bool)
}

// Close implements subject.Instance.
func (b *Broker) Close() {}

// Message handles one client segment.
func (b *Broker) Message(data []byte) [][]byte {
	// Protocol header exchange.
	if !b.headerSeen {
		if len(data) >= 8 && string(data[:4]) == "AMQP" {
			b.tr.Edge(mProto, uint64(data[4])<<8|uint64(data[5]))
			b.headerSeen = true
			if data[4] == 3 { // SASL header
				b.tr.Edge(mSASL, probes.B(b.cfg.auth))
				if b.cfg.auth {
					b.tr.Edge(mSASL, 2+probes.Hash(b.cfg.sasl)%16)
				}
			}
			return [][]byte{append([]byte(nil), protoHeader...)}
		}
		b.tr.Edge(mProto, 0xffff)
		// Fall through: tolerate clients that skip the header.
		b.headerSeen = true
	}

	if b.cfg.maxFrame != 0 && len(data) > b.cfg.maxFrame {
		b.tr.Edge(mFrameErr, probes.Bucket(len(data)))
		return nil
	}
	f, err := decodeFrame(data)
	if err != nil {
		b.tr.Edge(mFrameErr, 64+probes.Bucket(len(data)))
		return nil
	}
	b.tr.Edge(mFrame, uint64(f.Type)<<8|uint64(f.Channel%64))
	b.tr.Edge(mPerf, uint64(f.Code))
	b.tr.Edge(mPerf, 256+uint64(len(f.Fields)%16))
	for i, v := range f.Fields {
		if i >= 16 {
			break
		}
		b.tr.Edge(mPerf, 1024+uint64(i)<<8|uint64(v.Kind))
		if len(v.B) > 0 {
			b.tr.Edge(mPerf, 8192+probes.HashBytes(v.B)%192)
		}
	}

	switch f.Code {
	case perfOpen:
		return b.handleOpen(f)
	case perfBegin:
		return b.handleBegin(f)
	case perfAttach:
		return b.handleAttach(f)
	case perfFlow:
		b.tr.Edge(mFlow, probes.B(b.sessions[f.Channel]))
		if len(f.Fields) > 2 {
			b.tr.Edge(mFlow, 2+uint64(f.Fields[2].U%32))
			b.tr.Edge(mFlow, 64+(f.Fields[0].U%8)<<6|(f.Fields[1].U%8)<<3|(f.Fields[2].U%8))
		}
		return nil
	case perfTransfer:
		return b.handleTransfer(f)
	case perfDisposition:
		b.tr.Edge(mDispo, probes.B(b.sessions[f.Channel]))
		if len(f.Fields) > 1 {
			b.tr.Edge(mDispo, 2+probes.Bucket(int(f.Fields[1].U)))
			b.tr.Edge(mDispo, 64+(f.Fields[0].U%16)<<5|(f.Fields[1].U%32))
		}
		return nil
	case perfDetach:
		b.tr.Edge(mDetach, probes.B(len(b.links) > 0))
		return [][]byte{encodeFrame(f.Channel, perfDetach, []value{{Kind: 0x43}}, nil)}
	case perfEnd:
		_, had := b.sessions[f.Channel]
		b.tr.Edge(mDetach, 16+probes.B(had))
		delete(b.sessions, f.Channel)
		return [][]byte{encodeFrame(f.Channel, perfEnd, nil, nil)}
	case perfClose:
		b.tr.Edge(mDetach, 32+probes.B(b.opened))
		b.opened = false
		return [][]byte{encodeFrame(0, perfClose, nil, nil)}
	default:
		b.tr.Edge(mPerf, 512+uint64(f.Code))
		return nil
	}
}

func (b *Broker) handleOpen(f frame) [][]byte {
	b.tr.Edge(mOpen, probes.B(b.opened))
	b.opened = true
	if len(f.Fields) > 0 {
		b.tr.Edge(mOpen, 2+probes.Hash(f.Fields[0].S)%256) // container-id
		if b.cfg.auth {
			b.tr.Edge(mSASL, 32+probes.Hash(f.Fields[0].S)%256) // identity check
		}
	}
	if len(f.Fields) > 2 {
		b.tr.Edge(mOpen, 128+probes.Bucket(int(f.Fields[2].U))) // max-frame-size
	}
	fields := []value{{Kind: 0xa1, S: "qpid-broker", B: []byte("qpid-broker")}}
	return [][]byte{encodeFrame(0, perfOpen, fields, nil)}
}

func (b *Broker) handleBegin(f frame) [][]byte {
	b.tr.Edge(mBegin, probes.B(b.opened)<<1|probes.B(b.sessions[f.Channel]))
	if !b.opened {
		return nil
	}
	if len(b.sessions) >= b.cfg.maxSessions {
		b.tr.Edge(mBegin, 16)
		return nil
	}
	b.sessions[f.Channel] = true
	if len(f.Fields) > 1 {
		b.tr.Edge(mBegin, 32+probes.Bucket(int(f.Fields[1].U)))
	}
	return [][]byte{encodeFrame(f.Channel, perfBegin, []value{{Kind: 0x60, U: uint64(f.Channel)}}, nil)}
}

func (b *Broker) handleAttach(f frame) [][]byte {
	b.tr.Edge(mAttach, probes.B(b.sessions[f.Channel]))
	if !b.sessions[f.Channel] {
		return nil
	}
	name := ""
	if len(f.Fields) > 0 {
		name = f.Fields[0].S
	}
	b.tr.Edge(mAttach, 2+probes.Hash(name)%hashSpace)
	b.tr.Edge(mAttach, hashSpace+8+probes.Bucket(len(name)))
	// Bug #9: with worker-threads=0 the broker spawns an inline worker
	// per link; the thread attributes are built in a fixed stack buffer
	// that an overlong link name overflows.
	if b.cfg.workers == 0 && len(name) > 128 {
		bugs.Trigger("AMQP", bugs.StackBufferOverflow, "pthread_create",
			"overlong link name overflows inline worker thread attributes")
	}
	role := uint64(0)
	if len(f.Fields) > 2 {
		role = f.Fields[2].U
		b.tr.Edge(mAttach, hashSpace+64+role%4)
	}
	b.links[name] = true
	if b.cfg.mgmt && name == "$management" {
		b.tr.Edge(mMgmtOp, probes.Hash(name)%32)
		b.tr.Edge(mMgmtOp, 1024+probes.Hash(name)%64)
	}
	if b.cfg.federation != "" && len(name) > 0 && name[0] == '@' {
		b.tr.Edge(mFedOp, probes.Hash(name)%64)
	}
	return [][]byte{encodeFrame(f.Channel, perfAttach, []value{
		{Kind: 0xa1, S: name, B: []byte(name)},
		{Kind: 0x52, U: role ^ 1},
	}, nil)}
}

func (b *Broker) handleTransfer(f frame) [][]byte {
	b.tr.Edge(mTransfer, probes.B(b.sessions[f.Channel])<<1|probes.B(len(b.links) > 0))
	if !b.sessions[f.Channel] {
		return nil
	}
	b.tr.Edge(mTransfer, 4+probes.HashBytes(f.Payload)%transferSpace)
	b.tr.Edge(mTransfer, transferSpace+16+probes.Bucket(len(f.Payload)))
	if len(f.Fields) > 1 {
		b.tr.Edge(mTransfer, transferSpace+64+probes.Bucket(int(f.Fields[1].U))) // delivery-id
	}
	if len(f.Payload) >= 4 {
		// Message-section sniffing (header/properties/body descriptors).
		b.tr.Edge(mTransfer, transferSpace+128+uint64(f.Payload[0])<<2|uint64(f.Payload[2]%4))
	}
	queue := "default"
	b.queues[queue] += len(f.Payload)
	if b.cfg.queueLimit > 0 && b.queues[queue] > b.cfg.queueLimit {
		b.tr.Edge(mTransfer, transferSpace+8000)
		b.queues[queue] = 0
	}
	if b.cfg.durable {
		b.tr.Edge(mStoreOp, probes.HashBytes(f.Payload)%2048)
		b.tr.Edge(mStoreOp, 1536+probes.Bucket(len(f.Payload)))
	}
	if b.cfg.mgmt {
		b.tr.Edge(mMgmtOp, 64+probes.HashBytes(f.Payload)%960) // stats accounting
	}
	if b.cfg.federation != "" {
		b.tr.Edge(mFedOp, 128+probes.HashBytes(f.Payload)%896) // route tagging
	}
	// Settled transfers get a disposition.
	return [][]byte{encodeFrame(f.Channel, perfDisposition, []value{{Kind: 0x41, U: 1}}, nil)}
}

// amqpSubject implements subject.Subject.
type amqpSubject struct{}

// Subject returns the AMQP evaluation subject.
func Subject() subject.Subject { return amqpSubject{} }

func (amqpSubject) Info() subject.Info {
	return subject.Info{
		Protocol:       "AMQP",
		Implementation: "Qpid",
		Transport:      subject.Stream,
		Port:           5672,
	}
}

func (amqpSubject) ConfigInput() configspec.Input {
	return configspec.Input{
		Files: []configspec.File{{Name: "qpidd.conf", Content: confFile}},
	}
}

func (amqpSubject) PitXML() string { return pitXML }

func (amqpSubject) NewInstance() subject.Instance { return NewBroker() }
