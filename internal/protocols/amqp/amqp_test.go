package amqp

import (
	"math/rand"
	"strings"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
)

func startBroker(t *testing.T, cfg map[string]string) *Broker {
	t.Helper()
	b := NewBroker()
	if err := b.Start(cfg, coverage.NewTrace()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	b.SetTrace(coverage.NewTrace())
	b.NewSession()
	return b
}

func greet(t *testing.T, b *Broker) {
	t.Helper()
	if resp := b.Message(protoHeader); len(resp) != 1 {
		t.Fatal("no protocol header response")
	}
	open := encodeFrame(0, perfOpen, []value{{Kind: 0xa1, S: "c1", B: []byte("c1")}}, nil)
	if resp := b.Message(open); len(resp) != 1 {
		t.Fatal("no open response")
	}
}

func attachFrame(channel uint16, name string) []byte {
	return encodeFrame(channel, perfAttach, []value{
		{Kind: 0xa1, S: name, B: []byte(name)},
		{Kind: 0x52, U: 0},
		{Kind: 0x52, U: 0},
	}, nil)
}

func TestFrameRoundTrip(t *testing.T) {
	raw := encodeFrame(3, perfBegin, []value{
		{Kind: 0x40},
		{Kind: 0x52, U: 100},
		{Kind: 0xa1, S: "sess", B: []byte("sess")},
	}, []byte("extra"))
	f, err := decodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Channel != 3 || f.Code != perfBegin || len(f.Fields) != 3 {
		t.Fatalf("frame = %+v", f)
	}
	if f.Fields[1].U != 100 || f.Fields[2].S != "sess" {
		t.Fatalf("fields = %+v", f.Fields)
	}
	if string(f.Payload) != "extra" {
		t.Fatalf("payload = %q", f.Payload)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0, 0, 0, 4},
		// size mismatch
		append([]byte{0, 0, 0, 99, 2, 0, 0, 0}, 0x00, 0x53, 0x10, 0x45),
		// doff < 2
		{0, 0, 0, 12, 1, 0, 0, 0, 0x00, 0x53, 0x10, 0x45},
		// missing descriptor marker
		{0, 0, 0, 12, 2, 0, 0, 0, 0x53, 0x10, 0x45, 0x00},
	}
	for i, c := range cases {
		if _, err := decodeFrame(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestValueDecoding(t *testing.T) {
	raw := encodeFrame(0, perfOpen, []value{
		{Kind: 0x41},         // true
		{Kind: 0x43},         // uint0
		{Kind: 0x60, U: 515}, // ushort
		{Kind: 0x70, U: 1 << 20},
		{Kind: 0xa0, B: []byte{1, 2}},
	}, nil)
	f, err := decodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Fields[0].U != 1 || f.Fields[2].U != 515 || f.Fields[3].U != 1<<20 {
		t.Fatalf("fields = %+v", f.Fields)
	}
	if string(f.Fields[4].B) != "\x01\x02" {
		t.Fatalf("vbin = %x", f.Fields[4].B)
	}
}

func TestConfigConflicts(t *testing.T) {
	bad := []map[string]string{
		{"auth": "yes"},
		{"durable": "true"},
		{"max-frame-size": "100"},
		{"worker-threads": "-1"},
		{"max-sessions": "0"},
	}
	for i, cfg := range bad {
		if err := NewBroker().Start(cfg, coverage.NewTrace()); err == nil {
			t.Errorf("conflict %d accepted: %v", i, cfg)
		}
	}
	good := []map[string]string{
		nil,
		{"auth": "yes", "sasl-mechanisms": "PLAIN"},
		{"durable": "true", "store-dir": "/var/lib/qpidd"},
		{"worker-threads": "0"},
	}
	for i, cfg := range good {
		if err := NewBroker().Start(cfg, coverage.NewTrace()); err != nil {
			t.Errorf("valid config %d rejected: %v", i, err)
		}
	}
}

func TestConnectionLadder(t *testing.T) {
	b := startBroker(t, nil)
	greet(t, b)

	if resp := b.Message(encodeFrame(1, perfBegin, []value{{Kind: 0x40}, {Kind: 0x52, U: 10}}, nil)); len(resp) != 1 {
		t.Fatal("no begin response")
	}
	resp := b.Message(attachFrame(1, "orders"))
	if len(resp) != 1 {
		t.Fatal("no attach response")
	}
	af, err := decodeFrame(resp[0])
	if err != nil || af.Code != perfAttach || af.Fields[0].S != "orders" {
		t.Fatalf("attach echo = %+v (%v)", af, err)
	}
	resp = b.Message(encodeFrame(1, perfTransfer, []value{{Kind: 0x52, U: 0}, {Kind: 0x52, U: 1}}, []byte("payload")))
	df, err := decodeFrame(resp[0])
	if err != nil || df.Code != perfDisposition {
		t.Fatalf("transfer response = %+v (%v)", df, err)
	}
	resp = b.Message(encodeFrame(1, perfEnd, nil, nil))
	if ef, _ := decodeFrame(resp[0]); ef.Code != perfEnd {
		t.Fatal("no end echo")
	}
}

func TestBeginRequiresOpen(t *testing.T) {
	b := startBroker(t, nil)
	b.Message(protoHeader)
	if resp := b.Message(encodeFrame(1, perfBegin, nil, nil)); resp != nil {
		t.Fatal("begin without open answered")
	}
}

func TestAttachRequiresSession(t *testing.T) {
	b := startBroker(t, nil)
	greet(t, b)
	if resp := b.Message(attachFrame(9, "x")); resp != nil {
		t.Fatal("attach without begin answered")
	}
}

func TestBug9WorkerThreadsZero(t *testing.T) {
	b := startBroker(t, map[string]string{"worker-threads": "0"})
	greet(t, b)
	b.Message(encodeFrame(1, perfBegin, []value{{Kind: 0x40}}, nil))
	long := strings.Repeat("L", 200)
	crash := bugs.Capture(func() { b.Message(attachFrame(1, long)) })
	if crash == nil || crash.Function != "pthread_create" {
		t.Fatalf("crash = %+v, want bug #9", crash)
	}
	if k, ok := bugs.LookupKnown(crash); !ok || k.No != 9 {
		t.Fatalf("not Table II row 9: %+v", k)
	}
	// Default worker pool: same input, no crash.
	b2 := startBroker(t, nil)
	greet(t, b2)
	b2.Message(encodeFrame(1, perfBegin, []value{{Kind: 0x40}}, nil))
	if c := bugs.Capture(func() { b2.Message(attachFrame(1, long)) }); c != nil {
		t.Fatalf("bug #9 fired under default config: %v", c)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	b := startBroker(t, map[string]string{"max-frame-size": "512"})
	greet(t, b)
	big := encodeFrame(1, perfTransfer, nil, make([]byte, 600))
	if resp := b.Message(big); resp != nil {
		t.Fatal("oversized frame processed")
	}
}

func TestSASLHeaderUnderAuth(t *testing.T) {
	b := startBroker(t, map[string]string{"auth": "yes", "sasl-mechanisms": "PLAIN"})
	sasl := []byte{'A', 'M', 'Q', 'P', 3, 1, 0, 0}
	if resp := b.Message(sasl); len(resp) != 1 {
		t.Fatal("no SASL header response")
	}
}

func TestDurableGatesStoreRegion(t *testing.T) {
	run := func(cfg map[string]string) int {
		b := startBroker(t, cfg)
		tr := coverage.NewTrace()
		b.SetTrace(tr)
		greet(t, b)
		b.Message(encodeFrame(1, perfBegin, []value{{Kind: 0x40}}, nil))
		b.Message(attachFrame(1, "q"))
		b.Message(encodeFrame(1, perfTransfer, []value{{Kind: 0x52, U: 0}, {Kind: 0x52, U: 1}}, []byte("data")))
		return tr.Count()
	}
	plain := run(nil)
	durable := run(map[string]string{"durable": "true", "store-dir": "/var/lib/q"})
	if durable <= plain {
		t.Fatalf("durable region not gated: plain=%d durable=%d", plain, durable)
	}
}

func TestPitParsesAndDrivesBroker(t *testing.T) {
	pit, err := fuzz.ParsePit(Subject().PitXML())
	if err != nil {
		t.Fatal(err)
	}
	b := startBroker(t, nil)
	r := rand.New(rand.NewSource(2))
	sm := pit.StateModels["AMQPConnection"]
	answered := 0
	for _, name := range sm.Walk(r, 10) {
		dm := pit.DataModels[name]
		if dm == nil {
			t.Fatalf("walk names unknown model %q", name)
		}
		if resp := b.Message(dm.NewMessage(r).Serialize()); resp != nil {
			answered++
		}
	}
	if answered < 3 {
		t.Fatalf("pit walk produced only %d answered frames", answered)
	}
}
