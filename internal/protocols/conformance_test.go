package protocols

import (
	"testing"

	"cmfuzz/internal/subject/subjecttest"
)

// TestSubjectConformance runs the full subject conformance suite against
// every evaluation subject: contract checks, parser robustness against
// garbage and mutated pit traffic, and the configuration-gating property
// of the seeded Table II bugs.
func TestSubjectConformance(t *testing.T) {
	for _, sub := range All() {
		sub := sub
		t.Run(sub.Info().Protocol, func(t *testing.T) {
			subjecttest.Run(t, sub)
		})
	}
}

func TestByName(t *testing.T) {
	for _, query := range []string{"MQTT", "Mosquitto", "DNS", "Dnsmasq", "CycloneDDS"} {
		if _, err := ByName(query); err != nil {
			t.Errorf("ByName(%q): %v", query, err)
		}
	}
	if _, err := ByName("HTTP"); err == nil {
		t.Error("ByName(HTTP) should fail")
	}
	if len(All()) != 6 {
		t.Errorf("All() = %d subjects, want 6", len(All()))
	}
}
