package coap

import (
	"errors"
	"fmt"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/protocols/probes"
)

// cliHelp is the coap-server --help output Algorithm 1 extracts from.
const cliHelp = `Usage: coap-server [options]
  -p, --port PORT          listen port (default: 5683)
  -v, --verbose LEVEL      log verbosity (default: 0)
  --block-size BYTES       preferred block size (default: 1024)
  --max-sessions N         concurrent session limit (default: 64)
  --ack-timeout SECONDS    CON retransmission timeout (default: 2)
  --max-retransmit N       CON retransmission count (default: 4)
  --observe                enable resource observation (RFC 7641)
  --q-block                enable Q-Block transfers (RFC 9177)
  --dtls                   enable DTLS transport
  --psk-key KEY            DTLS pre-shared key, one of: sesame42, fieldkey7
  --multicast              join the all-CoAP-nodes multicast group
  --proxy-uri URI          upstream proxy, one of: coap://upstream:5683, coap://cache:5683
  --max-payload BYTES      reject larger representations (default: 65535)
  --resource-dir DIR       resource directory, one of: /srv/coap, /var/coap
`

// settings is the server's typed configuration.
type settings struct {
	port          int
	verbose       int
	blockSize     int
	maxSessions   int
	ackTimeout    int
	maxRetransmit int
	observe       bool
	qBlock        bool
	dtls          bool
	pskKey        string
	multicast     bool
	proxyURI      string
	maxPayload    int
	resourceDir   string
}

func parseSettings(cfg map[string]string) settings {
	return settings{
		port:          probes.Int(cfg, "port", 5683),
		verbose:       probes.Int(cfg, "verbose", 0),
		blockSize:     probes.Int(cfg, "block-size", 1024),
		maxSessions:   probes.Int(cfg, "max-sessions", 64),
		ackTimeout:    probes.Int(cfg, "ack-timeout", 2),
		maxRetransmit: probes.Int(cfg, "max-retransmit", 4),
		observe:       probes.Bool(cfg, "observe", false),
		qBlock:        probes.Bool(cfg, "q-block", false),
		dtls:          probes.Bool(cfg, "dtls", false),
		pskKey:        probes.Str(cfg, "psk-key", ""),
		multicast:     probes.Bool(cfg, "multicast", false),
		proxyURI:      probes.Str(cfg, "proxy-uri", ""),
		maxPayload:    probes.Int(cfg, "max-payload", 65535),
		resourceDir:   probes.Str(cfg, "resource-dir", ""),
	}
}

func (s settings) validate() error {
	if s.dtls && s.pskKey == "" {
		return fmt.Errorf("coap: dtls requires a psk-key")
	}
	if s.multicast && s.dtls {
		return fmt.Errorf("coap: dtls cannot join multicast groups")
	}
	if s.blockSize != 0 && (s.blockSize < 16 || s.blockSize > 2048) {
		return fmt.Errorf("coap: block-size must be 16..2048")
	}
	if s.qBlock && s.blockSize < 32 {
		return fmt.Errorf("coap: q-block requires block-size >= 32")
	}
	if s.ackTimeout < 1 {
		return fmt.Errorf("coap: ack-timeout must be positive")
	}
	return nil
}

// Startup coverage sites.
const (
	sBoot       = 100
	sEndpoint   = 101
	sBlockInit  = 102
	sObserve    = 103
	sQBlockInit = 104
	sDTLSInit   = 105
	sMulticast  = 106
	sProxy      = 107
	sResources  = 108
	sSynQBObs   = 110
	sSynDTLSPSK = 111
	sSynQBSize  = 112
	sSynProxyMC = 113
)

func (s settings) startupCoverage(tr *coverage.Trace) {
	for i := uint64(0); i < 10; i++ {
		tr.Edge(sBoot, i)
	}
	tr.Edge(sEndpoint, probes.Bucket(s.port))
	tr.Edge(sEndpoint, 64+uint64(s.verbose%8))
	tr.Edge(sBlockInit, probes.Bucket(s.blockSize))
	tr.Edge(sEndpoint, 80+probes.Bucket(s.maxSessions))
	tr.Edge(sEndpoint, 96+probes.Bucket(s.ackTimeout))
	tr.Edge(sEndpoint, 112+uint64(s.maxRetransmit%16))
	tr.Edge(sEndpoint, 128+probes.Bucket(s.maxPayload))

	if s.observe {
		for i := uint64(0); i < 8; i++ {
			tr.Edge(sObserve, i)
		}
	}
	if s.qBlock {
		for i := uint64(0); i < 9; i++ {
			tr.Edge(sQBlockInit, i)
		}
		tr.Edge(sSynQBSize, probes.Bucket(s.blockSize))
		if s.observe {
			for i := uint64(0); i < 6; i++ {
				tr.Edge(sSynQBObs, i) // blockwise notifications
			}
		}
	}
	if s.dtls {
		for i := uint64(0); i < 10; i++ {
			tr.Edge(sDTLSInit, i)
		}
		tr.Edge(sSynDTLSPSK, probes.Hash(s.pskKey)%16)
	}
	if s.multicast {
		for i := uint64(0); i < 6; i++ {
			tr.Edge(sMulticast, i)
		}
		if s.proxyURI != "" {
			for i := uint64(0); i < 4; i++ {
				tr.Edge(sSynProxyMC, i) // multicast-to-proxy fan-in
			}
		}
	}
	if s.proxyURI != "" {
		for i := uint64(0); i < 7; i++ {
			tr.Edge(sProxy, i)
		}
	}
	if s.resourceDir != "" {
		for i := uint64(0); i < 5; i++ {
			tr.Edge(sResources, i)
		}
	}
}

// Message-handling coverage sites.
const (
	mParseErr  = 200
	mHeader    = 201
	mToken     = 202
	mOption    = 210
	mOptionVal = 211
	mOptionDat = 212
	mMcastOp   = 350
	mPath      = 220
	mMethod    = 230
	mGet       = 240
	mPut       = 250
	mPost      = 260
	mDelete    = 265
	mBlock1    = 270
	mBlock2    = 280
	mQBlock    = 290
	mObserveOp = 300
	mProxyFwd  = 310
	mDTLSRec   = 320
	mPayload   = 330
	mEmptyMsg  = 340
)

// hashSpace bounds content-hash coverage families.
const hashSpace = 1024

// blockState tracks one in-progress blockwise upload (the lg_srcv of the
// Figure 5 case study).
type blockState struct {
	received map[int]bool
	bodyData []byte // nil until the first block arrives intact
}

// Server is the libcoap-like CoAP subject instance.
type Server struct {
	cfg       settings
	tr        *coverage.Trace
	resources map[string][]byte
	observers map[string]int
	uploads   map[string]*blockState // keyed by token+path, per session
}

// NewServer returns an unstarted CoAP server.
func NewServer() *Server {
	return &Server{
		resources: map[string][]byte{
			"sensors/temp": []byte("21.5"),
			"core":         []byte(`</sensors/temp>;rt="temperature"`),
		},
		observers: make(map[string]int),
		uploads:   make(map[string]*blockState),
	}
}

// Start implements subject.Instance.
func (s *Server) Start(cfg map[string]string, tr *coverage.Trace) error {
	st := parseSettings(cfg)
	if err := st.validate(); err != nil {
		return err
	}
	s.cfg = st
	s.tr = tr
	st.startupCoverage(tr)
	return nil
}

// SetTrace implements subject.Instance.
func (s *Server) SetTrace(tr *coverage.Trace) { s.tr = tr }

// NewSession implements subject.Instance: blockwise upload state is per
// session (a fresh client exchange context).
func (s *Server) NewSession() { s.uploads = make(map[string]*blockState) }

// Close implements subject.Instance.
func (s *Server) Close() {}

// Message handles one CoAP datagram.
func (s *Server) Message(data []byte) [][]byte {
	if s.cfg.dtls {
		s.tr.Edge(mDTLSRec, probes.HashBytes(data)%768)
	}
	m, err := decode(data)
	if err != nil {
		s.tr.Edge(mParseErr, probes.Bucket(len(data)))
		// Bug #7: the DTLS-decrypted datagram is re-parsed into a
		// stack-allocated PDU; a truncated extended option field makes
		// getOptionDelta read past the buffer.
		if s.cfg.dtls && errors.Is(err, errTruncatedExt) {
			bugs.Trigger("CoAP", bugs.StackBufferOverflow, "CoapPDU::getOptionDelta",
				"truncated extended option delta overreads stack PDU")
		}
		if errors.Is(err, errBadOption) {
			s.tr.Edge(mParseErr, 64)
		}
		return nil
	}
	s.tr.Edge(mHeader, uint64(m.Type)<<8|uint64(m.Code))
	s.tr.Edge(mToken, probes.Bucket(len(m.Token)))
	s.tr.Edge(mHeader, 1024+probes.Bucket(int(m.MessageID)))

	if m.Code == codeEmpty {
		s.tr.Edge(mEmptyMsg, uint64(m.Type))
		if m.Type == typeCON { // CoAP ping
			return [][]byte{encodeMessage(message{Type: typeRST, MessageID: m.MessageID})}
		}
		return nil
	}

	// Option walk with duplicate tracking.
	observeCount := 0
	for _, o := range m.Options {
		s.tr.Edge(mOption, uint64(o.Number%64))
		s.tr.Edge(mOptionVal, uint64(o.Number%64)<<8|probes.Bucket(len(o.Value)))
		s.tr.Edge(mOptionDat, probes.HashBytes(o.Value)%512)
		if o.Number == optObserve {
			observeCount++
		}
	}
	s.tr.Edge(mOption, 4096+uint64(len(m.Options)))
	// Bug #6: with observation enabled, a duplicated Observe option makes
	// the cleanup path free the deduplicated node twice and then walk it.
	if s.cfg.observe && observeCount >= 2 {
		bugs.Trigger("CoAP", bugs.SEGV, "coap_clean_options",
			"duplicate Observe option double-freed during option cleanup")
	}

	path := m.uriPath()
	s.tr.Edge(mPath, probes.Hash(path)%hashSpace)
	s.tr.Edge(mMethod, uint64(m.Code))
	s.tr.Edge(mPayload, probes.HashBytes(m.Payload)%hashSpace)
	s.tr.Edge(mPayload, hashSpace+probes.Bucket(len(m.Payload)))

	if s.cfg.maxPayload > 0 && len(m.Payload) > s.cfg.maxPayload {
		s.tr.Edge(mPayload, 2*hashSpace+1)
		return s.reply(m, codeTooLarge, nil, nil)
	}
	if s.cfg.proxyURI != "" {
		if _, ok := m.findOption(optUriQuery); ok {
			s.tr.Edge(mProxyFwd, probes.Hash(path)%384)
		}
	}
	if s.cfg.multicast && m.Type == typeNON {
		// Multicast group handling of non-confirmable requests.
		s.tr.Edge(mMcastOp, probes.Hash(path)%384)
	}

	switch m.Code {
	case codeGET, codeFETCH:
		return s.handleGet(m, path)
	case codePUT:
		return s.handlePut(m, path)
	case codePOST:
		return s.handlePost(m, path)
	case codeDELETE:
		return s.handleDelete(m, path)
	default:
		s.tr.Edge(mMethod, 256+uint64(m.Code))
		return s.reply(m, codeBadRequest, nil, nil)
	}
}

func (s *Server) handleGet(m message, path string) [][]byte {
	body, ok := s.resources[path]
	s.tr.Edge(mGet, probes.B(ok))
	if !ok {
		return s.reply(m, codeNotFound, nil, nil)
	}
	var opts []option

	// Observation registration/cancellation.
	if obsVal, has := m.findOption(optObserve); has && s.cfg.observe {
		reg := len(obsVal) == 0 || obsVal[0] == 0
		s.tr.Edge(mObserveOp, probes.B(reg)<<6|probes.Hash(path)%64)
		if reg {
			s.observers[path]++
			opts = append(opts, option{Number: optObserve, Value: []byte{1}})
		} else {
			delete(s.observers, path)
		}
		s.tr.Edge(mObserveOp, 128+uint64(s.observers[path]%16))
		s.tr.Edge(mObserveOp, 256+probes.Hash(path)%512)
	}

	// Block2 download chunking.
	if b2, has := m.findOption(optBlock2); has {
		blk, ok := decodeBlockOpt(b2)
		s.tr.Edge(mBlock2, probes.B(ok)<<8|uint64(blk.SZX))
		if !ok {
			return s.reply(m, codeBadOption, nil, nil)
		}
		size := 16 << blk.SZX
		if size > s.cfg.blockSize {
			size = s.cfg.blockSize
			s.tr.Edge(mBlock2, 512)
		}
		off := blk.Num * size
		s.tr.Edge(mBlock2, 600+probes.Bucket(off))
		if off >= len(body) {
			s.tr.Edge(mBlock2, 700)
			return s.reply(m, codeBadOption, nil, nil)
		}
		s.tr.Edge(mBlock2, 800+uint64(blk.Num%16)<<5|probes.Hash(path)%32)
		end := off + size
		more := end < len(body)
		if !more {
			end = len(body)
		}
		opts = append(opts, option{Number: optBlock2, Value: encodeBlockOpt(blockOpt{Num: blk.Num, More: more, SZX: blk.SZX})})
		return s.reply(m, codeContent, opts, body[off:end])
	}
	return s.reply(m, codeContent, opts, body)
}

// handlePut is the coap_handle_request_put_block of the Figure 5 case
// study: it reassembles blockwise uploads.
func (s *Server) handlePut(m message, path string) [][]byte {
	s.tr.Edge(mPut, probes.Hash(path)%128)

	// Q-Block1 path (RFC 9177) — only active under the non-default
	// q-block configuration, exactly as in the paper's case study.
	if qb, has := m.findOption(optQBlock1); has {
		if !s.cfg.qBlock {
			s.tr.Edge(mQBlock, 0)
			return s.reply(m, codeBadOption, nil, nil)
		}
		blk, ok := decodeBlockOpt(qb)
		s.tr.Edge(mQBlock, 1+probes.B(ok))
		s.tr.Edge(mQBlock, 128+probes.HashBytes(m.Payload)%768)
		if !ok {
			return s.reply(m, codeBadOption, nil, nil)
		}
		key := string(m.Token) + "\x00" + path
		lgSrcv, found := s.uploads[key]
		s.tr.Edge(mQBlock, 4+probes.B(found)<<1|probes.B(blk.More))
		if !found {
			// Figure 5 lines 3-7: new lg_srcv with body_data = NULL.
			lgSrcv = &blockState{received: make(map[int]bool)}
			s.uploads[key] = lgSrcv
		}
		lgSrcv.received[blk.Num] = true
		if blk.Num == 0 && len(m.Payload) > 0 {
			lgSrcv.bodyData = append([]byte(nil), m.Payload...)
			s.tr.Edge(mQBlock, 16)
		} else if len(m.Payload) > 0 && lgSrcv.bodyData != nil {
			lgSrcv.bodyData = append(lgSrcv.bodyData, m.Payload...)
			s.tr.Edge(mQBlock, 17+uint64(blk.Num%8))
		}
		if blk.More {
			s.tr.Edge(mQBlock, 32+uint64(blk.Num%16))
			return s.reply(m, codeContinue, nil, nil)
		}
		// Last block: Figure 5 lines 12-13 — all blocks received, go
		// reassemble at give_app_data.
		s.tr.Edge(mQBlock, 64+uint64(len(lgSrcv.received)%16))
		if lgSrcv.bodyData == nil {
			// Figure 5 line 20: pdu->body_data = lg_srcv->body_data->s
			// with body_data still NULL — Table II bug #8.
			bugs.Trigger("CoAP", bugs.SEGV, "coap_handle_request_put_block",
				"give_app_data dereferences NULL lg_srcv->body_data")
		}
		s.resources[path] = lgSrcv.bodyData
		delete(s.uploads, key)
		return s.reply(m, codeCreated, nil, nil)
	}

	// Classic Block1 path (RFC 7959).
	if b1, has := m.findOption(optBlock1); has {
		blk, ok := decodeBlockOpt(b1)
		s.tr.Edge(mBlock1, probes.B(ok)<<8|uint64(blk.SZX))
		if !ok {
			return s.reply(m, codeBadOption, nil, nil)
		}
		key := string(m.Token) + "\x01" + path
		st, found := s.uploads[key]
		if !found {
			st = &blockState{received: make(map[int]bool)}
			s.uploads[key] = st
		}
		s.tr.Edge(mBlock1, 512+probes.B(found)<<4|uint64(blk.Num%16))
		st.received[blk.Num] = true
		st.bodyData = append(st.bodyData, m.Payload...)
		s.tr.Edge(mBlock1, 1024+uint64(len(st.received)%16)<<5|probes.HashBytes(m.Token)%32)
		if blk.More {
			opts := []option{{Number: optBlock1, Value: encodeBlockOpt(blk)}}
			return s.reply(m, codeContinue, opts, nil)
		}
		s.tr.Edge(mBlock1, 600+uint64(len(st.received)%16))
		s.storeResource(path, st.bodyData)
		delete(s.uploads, key)
		return s.reply(m, codeCreated, nil, nil)
	}

	// Plain PUT.
	_, existed := s.resources[path]
	s.tr.Edge(mPut, 256+probes.B(existed))
	s.storeResource(path, m.Payload)
	if existed {
		return s.reply(m, codeContent, nil, nil)
	}
	return s.reply(m, codeCreated, nil, nil)
}

func (s *Server) handlePost(m message, path string) [][]byte {
	s.tr.Edge(mPost, probes.Hash(path)%64)
	if cf, has := m.findOption(optContentFormat); has {
		v := 0
		for _, b := range cf {
			v = v<<8 | int(b)
		}
		s.tr.Edge(mPost, 128+uint64(v%64))
	}
	s.storeResource(path+"/new", m.Payload)
	return s.reply(m, codeCreated, nil, nil)
}

func (s *Server) handleDelete(m message, path string) [][]byte {
	_, existed := s.resources[path]
	s.tr.Edge(mDelete, probes.B(existed))
	delete(s.resources, path)
	delete(s.observers, path)
	return s.reply(m, codeDeleted, nil, nil)
}

func (s *Server) storeResource(path string, body []byte) {
	if len(s.resources) < 2048 {
		s.resources[path] = body
	}
}

// reply builds the response, honoring the CON/NON exchange type.
func (s *Server) reply(req message, code byte, opts []option, payload []byte) [][]byte {
	resp := message{
		Code:      code,
		MessageID: req.MessageID,
		Token:     req.Token,
		Options:   opts,
		Payload:   payload,
	}
	if req.Type == typeCON {
		resp.Type = typeACK
	} else {
		resp.Type = typeNON
	}
	return [][]byte{encodeMessage(resp)}
}
