package coap

import (
	"errors"
	"math/rand"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
)

func startServer(t *testing.T, cfg map[string]string) *Server {
	t.Helper()
	s := NewServer()
	if err := s.Start(cfg, coverage.NewTrace()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	s.NewSession()
	return s
}

// request builds a CoAP request datagram.
func request(typ, code byte, mid uint16, token []byte, opts []option, payload []byte) []byte {
	return encodeMessage(message{Type: typ, Code: code, MessageID: mid, Token: token, Options: opts, Payload: payload})
}

func pathOpts(segments ...string) []option {
	var opts []option
	for _, s := range segments {
		opts = append(opts, option{Number: optUriPath, Value: []byte(s)})
	}
	return opts
}

func TestCodecRoundTrip(t *testing.T) {
	m := message{
		Type:      typeCON,
		Code:      codeGET,
		MessageID: 0x1234,
		Token:     []byte{1, 2, 3},
		Options: []option{
			{Number: optObserve, Value: nil},
			{Number: optUriPath, Value: []byte("sensors")},
			{Number: optUriPath, Value: []byte("temp")},
			{Number: optBlock2, Value: []byte{0x12}},
			{Number: optSize1, Value: []byte{0x01, 0x00}},
		},
		Payload: []byte("data"),
	}
	got, err := decode(encodeMessage(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Code != m.Code || got.MessageID != m.MessageID {
		t.Fatalf("header mismatch: %+v", got)
	}
	if string(got.Token) != string(m.Token) {
		t.Fatalf("token = %x", got.Token)
	}
	if len(got.Options) != len(m.Options) {
		t.Fatalf("options = %d", len(got.Options))
	}
	for i := range m.Options {
		if got.Options[i].Number != m.Options[i].Number ||
			string(got.Options[i].Value) != string(m.Options[i].Value) {
			t.Fatalf("option %d = %+v, want %+v", i, got.Options[i], m.Options[i])
		}
	}
	if string(got.Payload) != "data" {
		t.Fatalf("payload = %q", got.Payload)
	}
	if got.uriPath() != "sensors/temp" {
		t.Fatalf("uriPath = %q", got.uriPath())
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"wrong version", []byte{0x00, 0x01, 0x00, 0x01}},
		{"tkl too large", []byte{0x49, 0x01, 0x00, 0x01, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
		{"truncated token", []byte{0x44, 0x01, 0x00, 0x01, 1, 2}},
		{"reserved delta 15", []byte{0x40, 0x01, 0x00, 0x01, 0xf1, 0x00}},
		{"marker no payload", []byte{0x40, 0x01, 0x00, 0x01, 0xff}},
		{"option past end", []byte{0x40, 0x01, 0x00, 0x01, 0xb7, 0x41}},
	}
	for _, c := range cases {
		if _, err := decode(c.data); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDecodeTruncatedExtendedDelta(t *testing.T) {
	// delta nibble 14 requires two extension bytes; give one.
	data := []byte{0x40, 0x01, 0x00, 0x01, 0xe1, 0x02}
	_, err := decode(data)
	if !errors.Is(err, errTruncatedExt) {
		t.Fatalf("err = %v, want errTruncatedExt", err)
	}
}

func TestBlockOptRoundTrip(t *testing.T) {
	for _, b := range []blockOpt{
		{Num: 0, More: false, SZX: 2},
		{Num: 1, More: true, SZX: 6},
		{Num: 300, More: false, SZX: 0},
		{Num: 70000, More: true, SZX: 7},
	} {
		got, ok := decodeBlockOpt(encodeBlockOpt(b))
		if !ok || got != b {
			t.Errorf("block round trip %+v -> %+v (%v)", b, got, ok)
		}
	}
	if _, ok := decodeBlockOpt([]byte{1, 2, 3, 4}); ok {
		t.Error("4-byte block option accepted")
	}
}

func TestConfigConflicts(t *testing.T) {
	bad := []map[string]string{
		{"dtls": "true"},
		{"dtls": "true", "psk-key": "k", "multicast": "true"},
		{"block-size": "4"},
		{"block-size": "9999"},
		{"q-block": "true", "block-size": "16"},
		{"ack-timeout": "0"},
	}
	for i, cfg := range bad {
		if err := NewServer().Start(cfg, coverage.NewTrace()); err == nil {
			t.Errorf("conflict %d accepted: %v", i, cfg)
		}
	}
	good := []map[string]string{
		nil,
		{"dtls": "true", "psk-key": "hunter2"},
		{"q-block": "true"},
		{"observe": "true", "q-block": "true"},
	}
	for i, cfg := range good {
		if err := NewServer().Start(cfg, coverage.NewTrace()); err != nil {
			t.Errorf("valid config %d rejected: %v", i, err)
		}
	}
}

func TestGetAndPut(t *testing.T) {
	s := startServer(t, nil)
	resp := s.Message(request(typeCON, codeGET, 1, []byte{9}, pathOpts("sensors", "temp"), nil))
	if len(resp) != 1 {
		t.Fatal("no response")
	}
	rm, err := decode(resp[0])
	if err != nil || rm.Code != codeContent || rm.Type != typeACK {
		t.Fatalf("GET response = %+v (%v)", rm, err)
	}
	if string(rm.Payload) != "21.5" {
		t.Fatalf("payload = %q", rm.Payload)
	}

	resp = s.Message(request(typeNON, codePUT, 2, []byte{9}, pathOpts("new", "thing"), []byte("v")))
	rm, _ = decode(resp[0])
	if rm.Code != codeCreated || rm.Type != typeNON {
		t.Fatalf("PUT response = %+v", rm)
	}
	resp = s.Message(request(typeCON, codeGET, 3, []byte{9}, pathOpts("new", "thing"), nil))
	rm, _ = decode(resp[0])
	if string(rm.Payload) != "v" {
		t.Fatalf("stored payload = %q", rm.Payload)
	}
}

func TestGetNotFound(t *testing.T) {
	s := startServer(t, nil)
	resp := s.Message(request(typeCON, codeGET, 1, nil, pathOpts("ghost"), nil))
	rm, _ := decode(resp[0])
	if rm.Code != codeNotFound {
		t.Fatalf("code = %d", rm.Code)
	}
}

func TestBlock2Download(t *testing.T) {
	s := startServer(t, nil)
	long := make([]byte, 200)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	s.Message(request(typeCON, codePUT, 1, []byte{1}, pathOpts("big"), long))

	// SZX 2 = 64-byte blocks.
	get := func(num int) message {
		opts := append(pathOpts("big"), option{Number: optBlock2, Value: encodeBlockOpt(blockOpt{Num: num, SZX: 2})})
		resp := s.Message(request(typeCON, codeGET, uint16(10+num), []byte{1}, opts, nil))
		rm, err := decode(resp[0])
		if err != nil {
			t.Fatal(err)
		}
		return rm
	}
	b0 := get(0)
	if len(b0.Payload) != 64 {
		t.Fatalf("block 0 len = %d", len(b0.Payload))
	}
	bv, _ := b0.findOption(optBlock2)
	blk, _ := decodeBlockOpt(bv)
	if !blk.More || blk.Num != 0 {
		t.Fatalf("block 0 opt = %+v", blk)
	}
	b3 := get(3)
	if len(b3.Payload) != 200-192 {
		t.Fatalf("last block len = %d", len(b3.Payload))
	}
	bv, _ = b3.findOption(optBlock2)
	blk, _ = decodeBlockOpt(bv)
	if blk.More {
		t.Fatal("last block claims more")
	}
	// Past the end.
	past := get(9)
	if past.Code != codeBadOption {
		t.Fatalf("past-end code = %d", past.Code)
	}
}

func TestBlock1Upload(t *testing.T) {
	s := startServer(t, nil)
	put := func(num int, more bool, payload string) message {
		opts := append(pathOpts("fw"), option{Number: optBlock1, Value: encodeBlockOpt(blockOpt{Num: num, More: more, SZX: 2})})
		resp := s.Message(request(typeCON, codePUT, uint16(20+num), []byte{2}, opts, []byte(payload)))
		rm, _ := decode(resp[0])
		return rm
	}
	if rm := put(0, true, "AAAA"); rm.Code != codeContinue {
		t.Fatalf("block 0 code = %d", rm.Code)
	}
	if rm := put(1, false, "BBBB"); rm.Code != codeCreated {
		t.Fatalf("final block code = %d", rm.Code)
	}
	resp := s.Message(request(typeCON, codeGET, 30, []byte{2}, pathOpts("fw"), nil))
	rm, _ := decode(resp[0])
	if string(rm.Payload) != "AAAABBBB" {
		t.Fatalf("reassembled = %q", rm.Payload)
	}
}

func TestBug6DuplicateObserve(t *testing.T) {
	s := startServer(t, map[string]string{"observe": "true"})
	opts := []option{
		{Number: optObserve, Value: []byte{0}},
		{Number: optObserve, Value: []byte{0}},
		{Number: optUriPath, Value: []byte("sensors")},
	}
	crash := bugs.Capture(func() {
		s.Message(request(typeCON, codeGET, 1, []byte{3}, opts, nil))
	})
	if crash == nil || crash.Function != "coap_clean_options" {
		t.Fatalf("crash = %+v, want bug #6", crash)
	}
	// Without observe enabled, the same input is harmless.
	s2 := startServer(t, nil)
	if c := bugs.Capture(func() { s2.Message(request(typeCON, codeGET, 1, []byte{3}, opts, nil)) }); c != nil {
		t.Fatalf("bug #6 fired under default config: %v", c)
	}
}

func TestBug7TruncatedExtUnderDTLS(t *testing.T) {
	data := []byte{0x40, 0x01, 0x00, 0x01, 0xe1, 0x02} // truncated ext delta
	s := startServer(t, map[string]string{"dtls": "true", "psk-key": "k"})
	crash := bugs.Capture(func() { s.Message(data) })
	if crash == nil || crash.Function != "CoapPDU::getOptionDelta" {
		t.Fatalf("crash = %+v, want bug #7", crash)
	}
	s2 := startServer(t, nil)
	if c := bugs.Capture(func() { s2.Message(data) }); c != nil {
		t.Fatalf("bug #7 fired without dtls: %v", c)
	}
}

// TestBug8QBlockCaseStudy reproduces the paper's Figure 5 case study: a
// PUT whose final Q-Block1 block arrives with no block 0 leaves
// lg_srcv->body_data NULL, and the give_app_data reassembly dereferences
// it. Only reachable with the non-default q-block configuration.
func TestBug8QBlockCaseStudy(t *testing.T) {
	s := startServer(t, map[string]string{"q-block": "true"})
	opts := append(pathOpts("firmware"),
		option{Number: optQBlock1, Value: encodeBlockOpt(blockOpt{Num: 1, More: false, SZX: 2})})
	crash := bugs.Capture(func() {
		s.Message(request(typeCON, codePUT, 5, []byte{7}, opts, []byte("tail")))
	})
	if crash == nil || crash.Function != "coap_handle_request_put_block" {
		t.Fatalf("crash = %+v, want bug #8", crash)
	}
	if k, ok := bugs.LookupKnown(crash); !ok || k.No != 8 {
		t.Fatalf("not Table II row 8: %+v", k)
	}

	// Default configuration rejects the option instead (Bad Option) —
	// "it cannot be triggered under the default configuration".
	s2 := startServer(t, nil)
	var resp [][]byte
	if c := bugs.Capture(func() {
		resp = s2.Message(request(typeCON, codePUT, 5, []byte{7}, opts, []byte("tail")))
	}); c != nil {
		t.Fatalf("bug #8 fired under default config: %v", c)
	}
	rm, _ := decode(resp[0])
	if rm.Code != codeBadOption {
		t.Fatalf("default config response = %d, want Bad Option", rm.Code)
	}
}

func TestQBlockHappyPath(t *testing.T) {
	s := startServer(t, map[string]string{"q-block": "true"})
	put := func(num int, more bool, payload string) message {
		opts := append(pathOpts("fw"),
			option{Number: optQBlock1, Value: encodeBlockOpt(blockOpt{Num: num, More: more, SZX: 2})})
		resp := s.Message(request(typeCON, codePUT, uint16(40+num), []byte{8}, opts, []byte(payload)))
		rm, _ := decode(resp[0])
		return rm
	}
	if rm := put(0, true, "XX"); rm.Code != codeContinue {
		t.Fatalf("q-block 0 = %d", rm.Code)
	}
	if rm := put(1, false, "YY"); rm.Code != codeCreated {
		t.Fatalf("q-block final = %d", rm.Code)
	}
}

func TestStartupSynergies(t *testing.T) {
	count := func(cfg map[string]string) int {
		tr := coverage.NewTrace()
		if err := NewServer().Start(cfg, tr); err != nil {
			t.Fatalf("Start(%v): %v", cfg, err)
		}
		return tr.Count()
	}
	base := count(nil)
	obs := count(map[string]string{"observe": "true"})
	qb := count(map[string]string{"q-block": "true"})
	both := count(map[string]string{"observe": "true", "q-block": "true"})
	if both-base <= (obs-base)+(qb-base) {
		t.Fatalf("no q-block/observe synergy: base=%d obs=%d qb=%d both=%d", base, obs, qb, both)
	}
}

func TestPingAndEmpty(t *testing.T) {
	s := startServer(t, nil)
	resp := s.Message(request(typeCON, codeEmpty, 7, nil, nil, nil))
	rm, _ := decode(resp[0])
	if rm.Type != typeRST {
		t.Fatalf("ping response = %+v", rm)
	}
	if resp := s.Message(request(typeNON, codeEmpty, 8, nil, nil, nil)); resp != nil {
		t.Fatal("NON empty answered")
	}
}

func TestPitParsesAndReachesServer(t *testing.T) {
	pit, err := fuzz.ParsePit(Subject().PitXML())
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, map[string]string{"q-block": "true", "observe": "true"})
	tr := coverage.NewTrace()
	s.SetTrace(tr)
	r := rand.New(rand.NewSource(1))
	okResponses, total := 0, 0
	for range [4]int{} { // several instantiations to exercise choices
		for _, dm := range pit.DataModels {
			total++
			msg := dm.NewMessage(r)
			var resp [][]byte
			crash := bugs.Capture(func() { resp = s.Message(msg.Serialize()) })
			if crash != nil || resp != nil {
				okResponses++
			}
		}
	}
	if okResponses < total*3/4 {
		t.Fatalf("only %d/%d pit messages reached the server", okResponses, total)
	}
}
