// Package coap implements a libcoap-like CoAP server (RFC 7252 with
// RFC 7959 Block1/Block2 and RFC 9177 Q-Block1 blockwise transfers) used
// as the CoAP subject. Three seeded configuration-gated defects reproduce
// Table II rows 6–8; row 8 is the paper's Figure 5 case study — a NULL
// body_data dereference in the Q-Block1 reassembly path that is
// unreachable under the default configuration.
package coap

import (
	"errors"

	"cmfuzz/internal/wire"
)

// Message types (RFC 7252 §3).
const (
	typeCON = 0
	typeNON = 1
	typeACK = 2
	typeRST = 3
)

// Request method codes.
const (
	codeEmpty  = 0
	codeGET    = 1
	codePOST   = 2
	codePUT    = 3
	codeDELETE = 4
	codeFETCH  = 5
)

// Response codes (class<<5 | detail).
const (
	codeCreated    = 2<<5 | 1
	codeDeleted    = 2<<5 | 2
	codeContent    = 2<<5 | 5
	codeContinue   = 2<<5 | 31
	codeBadRequest = 4 << 5
	codeNotFound   = 4<<5 | 4
	codeBadOption  = 4<<5 | 2
	codeTooLarge   = 4<<5 | 13
	codeServerErr  = 5 << 5
)

// Option numbers.
const (
	optObserve       = 6
	optUriPath       = 11
	optContentFormat = 12
	optUriQuery      = 15
	optAccept        = 17
	optQBlock1       = 19
	optBlock2        = 23
	optBlock1        = 27
	optQBlock2       = 31
	optSize1         = 60
)

var errMalformed = errors.New("coap: malformed message")
var errBadOption = errors.New("coap: bad option encoding")

// errTruncatedExt marks an extended option nibble whose extension bytes
// run past the end of the datagram — the shape that overreads the stack
// buffer in CoapPDU::getOptionDelta (Table II bug #7).
var errTruncatedExt = errors.New("coap: truncated extended option field")

// option is one decoded CoAP option.
type option struct {
	Number int
	Value  []byte
}

// message is one decoded CoAP message.
type message struct {
	Type      byte
	Code      byte
	MessageID uint16
	Token     []byte
	Options   []option
	Payload   []byte
}

// decode parses a CoAP datagram.
func decode(data []byte) (message, error) {
	r := wire.NewReader(data)
	var m message
	first := r.U8()
	if r.Err() != nil {
		return m, errMalformed
	}
	if first>>6 != 1 { // version must be 1
		return m, errMalformed
	}
	m.Type = (first >> 4) & 0x03
	tkl := int(first & 0x0f)
	m.Code = r.U8()
	m.MessageID = r.U16()
	if tkl > 8 {
		return m, errMalformed
	}
	m.Token = r.Bytes(tkl)
	if r.Err() != nil {
		return m, errMalformed
	}

	// Option parsing (delta encoding).
	number := 0
	for !r.Empty() {
		b := r.U8()
		if b == 0xff { // payload marker
			m.Payload = r.Rest()
			if len(m.Payload) == 0 {
				return m, errMalformed // marker with empty payload is invalid
			}
			break
		}
		delta := int(b >> 4)
		length := int(b & 0x0f)
		var err error
		delta, err = extendField(r, delta)
		if err != nil {
			return m, err
		}
		length, err = extendField(r, length)
		if err != nil {
			return m, err
		}
		number += delta
		val := r.Bytes(length)
		if r.Err() != nil {
			return m, errBadOption
		}
		m.Options = append(m.Options, option{Number: number, Value: val})
		if len(m.Options) > 32 {
			return m, errBadOption
		}
	}
	if r.Err() != nil {
		return m, errMalformed
	}
	return m, nil
}

// extendField resolves the 13/14/15 extended nibble encodings
// (RFC 7252 §3.1).
func extendField(r *wire.Reader, v int) (int, error) {
	switch v {
	case 13:
		if r.Remaining() < 1 {
			return 0, errTruncatedExt
		}
		return 13 + int(r.U8()), nil
	case 14:
		if r.Remaining() < 2 {
			return 0, errTruncatedExt
		}
		return 269 + int(r.U16()), nil
	case 15:
		return 0, errBadOption // reserved
	default:
		return v, nil
	}
}

// encode renders a CoAP message.
func encodeMessage(m message) []byte {
	w := wire.NewWriter(8 + len(m.Payload))
	w.U8(1<<6 | m.Type<<4 | byte(len(m.Token)&0x0f))
	w.U8(m.Code)
	w.U16(m.MessageID)
	w.Raw(m.Token)
	prev := 0
	for _, o := range m.Options {
		writeOption(w, o.Number-prev, o.Value)
		prev = o.Number
	}
	if len(m.Payload) > 0 {
		w.U8(0xff)
		w.Raw(m.Payload)
	}
	return w.Bytes()
}

func writeOption(w *wire.Writer, delta int, val []byte) {
	dn, de := nibble(delta)
	ln, le := nibble(len(val))
	w.U8(byte(dn)<<4 | byte(ln))
	w.Raw(de)
	w.Raw(le)
	w.Raw(val)
}

func nibble(v int) (int, []byte) {
	switch {
	case v < 13:
		return v, nil
	case v < 269:
		return 13, []byte{byte(v - 13)}
	default:
		return 14, []byte{byte((v - 269) >> 8), byte(v - 269)}
	}
}

// blockOpt decodes a Block1/Block2/Q-Block option value (RFC 7959 §2.2):
// NUM (4..20 bits), M flag, SZX exponent.
type blockOpt struct {
	Num  int
	More bool
	SZX  int
}

func decodeBlockOpt(val []byte) (blockOpt, bool) {
	if len(val) > 3 {
		return blockOpt{}, false
	}
	v := 0
	for _, b := range val {
		v = v<<8 | int(b)
	}
	return blockOpt{Num: v >> 4, More: v&0x08 != 0, SZX: v & 0x07}, true
}

func encodeBlockOpt(b blockOpt) []byte {
	v := b.Num<<4 | b.SZX
	if b.More {
		v |= 0x08
	}
	switch {
	case v < 1<<8:
		return []byte{byte(v)}
	case v < 1<<16:
		return []byte{byte(v >> 8), byte(v)}
	default:
		return []byte{byte(v >> 16), byte(v >> 8), byte(v)}
	}
}

// findOption returns the first option with the given number.
func (m *message) findOption(number int) ([]byte, bool) {
	for _, o := range m.Options {
		if o.Number == number {
			return o.Value, true
		}
	}
	return nil, false
}

// uriPath joins Uri-Path options into a path string.
func (m *message) uriPath() string {
	path := ""
	for _, o := range m.Options {
		if o.Number == optUriPath {
			if path != "" {
				path += "/"
			}
			path += string(o.Value)
		}
	}
	return path
}
