package coap

import (
	"testing"
	"testing/quick"

	"cmfuzz/internal/coverage"
)

func TestPostCreatesResource(t *testing.T) {
	s := startServer(t, nil)
	opts := append(pathOpts("queue"), option{Number: optContentFormat, Value: []byte{50}})
	resp := s.Message(request(typeCON, codePOST, 1, []byte{1}, opts, []byte(`{}`)))
	rm, _ := decode(resp[0])
	if rm.Code != codeCreated {
		t.Fatalf("POST code = %d", rm.Code)
	}
	if _, ok := s.resources["queue/new"]; !ok {
		t.Fatal("POST did not create the resource")
	}
}

func TestDeleteRemovesResourceAndObservers(t *testing.T) {
	s := startServer(t, map[string]string{"observe": "true"})
	// Register an observer, then delete the resource.
	s.Message(request(typeCON, codeGET, 1, []byte{1},
		append([]option{{Number: optObserve, Value: nil}}, pathOpts("sensors", "temp")...), nil))
	if s.observers["sensors/temp"] != 1 {
		t.Fatalf("observers = %v", s.observers)
	}
	resp := s.Message(request(typeCON, codeDELETE, 2, []byte{1}, pathOpts("sensors", "temp"), nil))
	rm, _ := decode(resp[0])
	if rm.Code != codeDeleted {
		t.Fatalf("DELETE code = %d", rm.Code)
	}
	if _, ok := s.resources["sensors/temp"]; ok {
		t.Fatal("resource survived DELETE")
	}
	if len(s.observers) != 0 {
		t.Fatal("observers survived DELETE")
	}
}

func TestObserveDeregistration(t *testing.T) {
	s := startServer(t, map[string]string{"observe": "true"})
	reg := append([]option{{Number: optObserve, Value: []byte{0}}}, pathOpts("sensors", "temp")...)
	s.Message(request(typeCON, codeGET, 1, []byte{1}, reg, nil))
	dereg := append([]option{{Number: optObserve, Value: []byte{1}}}, pathOpts("sensors", "temp")...)
	s.Message(request(typeCON, codeGET, 2, []byte{1}, dereg, nil))
	if len(s.observers) != 0 {
		t.Fatalf("observer not deregistered: %v", s.observers)
	}
}

func TestMaxPayloadRejects(t *testing.T) {
	s := startServer(t, map[string]string{"max-payload": "8"})
	resp := s.Message(request(typeCON, codePUT, 1, []byte{1}, pathOpts("x"), make([]byte, 64)))
	rm, _ := decode(resp[0])
	if rm.Code != codeTooLarge {
		t.Fatalf("code = %d, want 4.13", rm.Code)
	}
}

func TestFetchBehavesLikeGet(t *testing.T) {
	s := startServer(t, nil)
	resp := s.Message(request(typeCON, codeFETCH, 1, []byte{1}, pathOpts("sensors", "temp"), nil))
	rm, _ := decode(resp[0])
	if rm.Code != codeContent {
		t.Fatalf("FETCH code = %d", rm.Code)
	}
}

func TestSessionResetDropsUploads(t *testing.T) {
	s := startServer(t, nil)
	opts := append(pathOpts("fw"), option{Number: optBlock1, Value: encodeBlockOpt(blockOpt{Num: 0, More: true, SZX: 2})})
	s.Message(request(typeCON, codePUT, 1, []byte{2}, opts, []byte("AAAA")))
	if len(s.uploads) != 1 {
		t.Fatal("upload state missing")
	}
	s.NewSession()
	if len(s.uploads) != 0 {
		t.Fatal("upload state survived session reset")
	}
}

func TestUnknownMethodBadRequest(t *testing.T) {
	s := startServer(t, nil)
	resp := s.Message(request(typeCON, 31, 1, []byte{1}, pathOpts("x"), nil))
	rm, _ := decode(resp[0])
	if rm.Code != codeBadRequest {
		t.Fatalf("code = %d", rm.Code)
	}
}

// Property: every message the encoder can produce decodes back to the
// same header fields (codec round-trip on structured inputs).
func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(mtype, code byte, mid uint16, tok []byte, payload []byte) bool {
		if len(tok) > 8 {
			tok = tok[:8]
		}
		if len(payload) > 512 {
			payload = payload[:512]
		}
		m := message{
			Type:      mtype & 0x03,
			Code:      code,
			MessageID: mid,
			Token:     tok,
			Options:   []option{{Number: optUriPath, Value: []byte("x")}},
			Payload:   payload,
		}
		if m.Code == 0 {
			m.Code = 1
		}
		got, err := decode(encodeMessage(m))
		if err != nil {
			// The only legal failure: empty payload after a marker never
			// happens because encode omits the marker for empty payloads.
			return false
		}
		return got.Type == m.Type && got.Code == m.Code && got.MessageID == mid &&
			string(got.Token) == string(tok) && string(got.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceStoreCap(t *testing.T) {
	s := startServer(t, nil)
	s.SetTrace(coverage.NewTrace())
	for i := 0; i < 3000; i++ {
		path := "r/" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
		s.storeResource(path, []byte("v"))
	}
	if len(s.resources) > 2048 {
		t.Fatalf("resource store unbounded: %d", len(s.resources))
	}
}
