package coap

import (
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/subject"
)

// pitXML is the CoAP Pit document: GET (plain, observe, Block2), PUT
// (plain, Block1, Q-Block1), POST and DELETE requests plus a ping, with a
// state model exercising upload and download sequences.
const pitXML = `<?xml version="1.0"?>
<Peach>
  <DataModel name="Get">
    <Number name="verhdr" bits="8" value="68" token="true"/>
    <Number name="code" bits="8" value="1"/>
    <Number name="mid" bits="16" value="256"/>
    <Blob name="tok" valueHex="c0ffee01"/>
    <Block name="opts">
      <Number name="uripath1" bits="8" value="183" token="true"/>
      <String name="seg1" value="sensors"/>
      <Number name="uripath2" bits="8" value="4" token="true"/>
      <String name="seg2" value="temp"/>
    </Block>
  </DataModel>
  <DataModel name="GetObserve">
    <Number name="verhdr" bits="8" value="68" token="true"/>
    <Number name="code" bits="8" value="1"/>
    <Number name="mid" bits="16" value="257"/>
    <Blob name="tok" valueHex="c0ffee02"/>
    <Block name="opts">
      <Number name="obs" bits="8" value="96" token="true"/>
      <Number name="uripath1" bits="8" value="87" token="true"/>
      <String name="seg1" value="sensors"/>
      <Number name="uripath2" bits="8" value="4" token="true"/>
      <String name="seg2" value="temp"/>
    </Block>
  </DataModel>
  <DataModel name="GetBlock2">
    <Number name="verhdr" bits="8" value="68" token="true"/>
    <Number name="code" bits="8" value="1"/>
    <Number name="mid" bits="16" value="258"/>
    <Blob name="tok" valueHex="c0ffee03"/>
    <Block name="opts">
      <Number name="uripath1" bits="8" value="183" token="true"/>
      <String name="seg1" value="sensors"/>
      <Number name="uripath2" bits="8" value="4" token="true"/>
      <String name="seg2" value="temp"/>
      <Number name="block2hdr" bits="8" value="193" token="true"/>
      <Number name="block2val" bits="8" value="2"/>
    </Block>
  </DataModel>
  <DataModel name="PutPlain">
    <Number name="verhdr" bits="8" value="68" token="true"/>
    <Number name="code" bits="8" value="3"/>
    <Number name="mid" bits="16" value="300"/>
    <Blob name="tok" valueHex="ba5eba11"/>
    <Block name="opts">
      <Number name="uripath1" bits="8" value="184" token="true"/>
      <String name="seg1" value="actuator"/>
      <Number name="uripath2" bits="8" value="4" token="true"/>
      <String name="seg2" value="mode"/>
    </Block>
    <Number name="marker" bits="8" value="255" token="true"/>
    <Blob name="payload" valueHex="6f6e"/>
  </DataModel>
  <DataModel name="PutBlock1">
    <Number name="verhdr" bits="8" value="68" token="true"/>
    <Number name="code" bits="8" value="3"/>
    <Number name="mid" bits="16" value="301"/>
    <Blob name="tok" valueHex="ba5eba12"/>
    <Block name="opts">
      <Number name="uripath1" bits="8" value="184" token="true"/>
      <String name="seg1" value="firmware"/>
      <Number name="block1hdr" bits="8" value="209" token="true"/>
      <Number name="block1ext" bits="8" value="3" token="true"/>
      <Choice name="blockval">
        <Number name="first-more" bits="8" value="10"/>
        <Number name="first-last" bits="8" value="2"/>
        <Number name="mid-block" bits="8" value="26"/>
        <Number name="tail-block" bits="8" value="18"/>
      </Choice>
    </Block>
    <Number name="marker" bits="8" value="255" token="true"/>
    <Blob name="payload" valueHex="deadbeefdeadbeef"/>
  </DataModel>
  <DataModel name="PutQBlock1">
    <Number name="verhdr" bits="8" value="68" token="true"/>
    <Number name="code" bits="8" value="3"/>
    <Number name="mid" bits="16" value="302"/>
    <Blob name="tok" valueHex="ba5eba13"/>
    <Block name="opts">
      <Number name="uripath1" bits="8" value="184" token="true"/>
      <String name="seg1" value="firmware"/>
      <Number name="qblockhdr" bits="8" value="129" token="true"/>
      <Choice name="blockval">
        <Number name="first-more" bits="8" value="10"/>
        <Number name="first-last" bits="8" value="2"/>
        <Number name="tail-only" bits="8" value="18"/>
        <Number name="tail-far" bits="8" value="50"/>
      </Choice>
    </Block>
    <Number name="marker" bits="8" value="255" token="true"/>
    <Blob name="payload" valueHex="cafebabecafebabe"/>
  </DataModel>
  <DataModel name="Post">
    <Number name="verhdr" bits="8" value="68" token="true"/>
    <Number name="code" bits="8" value="2"/>
    <Number name="mid" bits="16" value="400"/>
    <Blob name="tok" valueHex="0b5e55ed"/>
    <Block name="opts">
      <Number name="uripath1" bits="8" value="181" token="true"/>
      <String name="seg1" value="queue"/>
      <Number name="cfhdr" bits="8" value="17" token="true"/>
      <Number name="cf" bits="8" value="50"/>
    </Block>
    <Number name="marker" bits="8" value="255" token="true"/>
    <Blob name="payload" valueHex="7b7d"/>
  </DataModel>
  <DataModel name="Delete">
    <Number name="verhdr" bits="8" value="68" token="true"/>
    <Number name="code" bits="8" value="4"/>
    <Number name="mid" bits="16" value="500"/>
    <Blob name="tok" valueHex="de1e7e00"/>
    <Block name="opts">
      <Number name="uripath1" bits="8" value="184" token="true"/>
      <String name="seg1" value="actuator"/>
      <Number name="uripath2" bits="8" value="4" token="true"/>
      <String name="seg2" value="mode"/>
    </Block>
  </DataModel>
  <DataModel name="Ping">
    <Number name="verhdr" bits="8" value="64" token="true"/>
    <Number name="code" bits="8" value="0" token="true"/>
    <Number name="mid" bits="16" value="999"/>
  </DataModel>
  <StateModel name="CoAPExchange" initialState="start">
    <State name="start">
      <Action type="output" dataModel="Get"/>
      <Action type="changeState" to="reading"/>
      <Action type="changeState" to="writing"/>
      <Action type="changeState" to="observing"/>
    </State>
    <State name="reading">
      <Action type="output" dataModel="GetBlock2"/>
      <Action type="output" dataModel="GetBlock2"/>
      <Action type="changeState" to="writing"/>
      <Action type="changeState" to="done"/>
    </State>
    <State name="writing">
      <Action type="output" dataModel="PutPlain"/>
      <Action type="output" dataModel="PutBlock1"/>
      <Action type="output" dataModel="PutQBlock1"/>
      <Action type="changeState" to="mutating"/>
      <Action type="changeState" to="done"/>
    </State>
    <State name="observing">
      <Action type="output" dataModel="GetObserve"/>
      <Action type="output" dataModel="GetObserve"/>
      <Action type="changeState" to="done"/>
    </State>
    <State name="mutating">
      <Action type="output" dataModel="Post"/>
      <Action type="output" dataModel="Delete"/>
      <Action type="changeState" to="done"/>
    </State>
    <State name="done">
      <Action type="output" dataModel="Ping"/>
    </State>
  </StateModel>
</Peach>`

// coapSubject implements subject.Subject for the libcoap-like server.
type coapSubject struct{}

// Subject returns the CoAP evaluation subject.
func Subject() subject.Subject { return coapSubject{} }

func (coapSubject) Info() subject.Info {
	return subject.Info{
		Protocol:       "CoAP",
		Implementation: "libcoap",
		Transport:      subject.Datagram,
		Port:           5683,
	}
}

func (coapSubject) ConfigInput() configspec.Input {
	return configspec.Input{CLIHelp: []string{cliHelp}}
}

func (coapSubject) PitXML() string { return pitXML }

func (coapSubject) NewInstance() subject.Instance { return NewServer() }
