package dns

import (
	"errors"
	"fmt"
	"strings"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/protocols/probes"
)

// confFile is the shipped dnsmasq.conf-style configuration: a custom
// format mixing bare feature toggles with key=value options, which
// exercises Algorithm 1's heuristic extraction arm.
const confFile = `# Dnsmasq-style configuration
port=53
cache-size=150
neg-ttl=60
edns-packet-max=4096
server=8.8.8.8
# domain-needed
# bogus-priv
# expand-hosts
# filterwin2k
# stop-dns-rebind
# log-queries
# no-resolv
# dnssec
# trust-anchor=.,20326,8,2,E06D44B8
# domain=lan
# local=/lan/
# address=/blocked.example/127.0.0.1
# addn-hosts=/etc/hosts.extra
# dhcp-range=192.168.0.50,192.168.0.150,12h
# tftp-root=/srv/tftp
# auth-zone=example.org
`

// settings is the forwarder's typed configuration.
type settings struct {
	port       int
	cacheSize  int
	negTTL     int
	ednsMax    int
	upstream   string
	domainNeed bool
	bogusPriv  bool
	expandHost bool
	filterW2K  bool
	rebindStop bool
	logQueries bool
	noResolv   bool
	dnssec     bool
	anchor     string
	domain     string
	localZone  string
	address    string
	addnHosts  string
	dhcpRange  string
	tftpRoot   string
	authZone   string
}

func parseSettings(cfg map[string]string) settings {
	return settings{
		port:       probes.Int(cfg, "port", 53),
		cacheSize:  probes.Int(cfg, "cache-size", 150),
		negTTL:     probes.Int(cfg, "neg-ttl", 60),
		ednsMax:    probes.Int(cfg, "edns-packet-max", 4096),
		upstream:   probes.Str(cfg, "server", ""),
		domainNeed: probes.Bool(cfg, "domain-needed", false),
		bogusPriv:  probes.Bool(cfg, "bogus-priv", false),
		expandHost: probes.Bool(cfg, "expand-hosts", false),
		filterW2K:  probes.Bool(cfg, "filterwin2k", false),
		rebindStop: probes.Bool(cfg, "stop-dns-rebind", false),
		logQueries: probes.Bool(cfg, "log-queries", false),
		noResolv:   probes.Bool(cfg, "no-resolv", false),
		dnssec:     probes.Bool(cfg, "dnssec", false),
		anchor:     probes.Str(cfg, "trust-anchor", ""),
		domain:     probes.Str(cfg, "domain", ""),
		localZone:  probes.Str(cfg, "local", ""),
		address:    probes.Str(cfg, "address", ""),
		addnHosts:  probes.Str(cfg, "addn-hosts", ""),
		dhcpRange:  probes.Str(cfg, "dhcp-range", ""),
		tftpRoot:   probes.Str(cfg, "tftp-root", ""),
		authZone:   probes.Str(cfg, "auth-zone", ""),
	}
}

func (s settings) validate() error {
	if s.dnssec && s.anchor == "" {
		return fmt.Errorf("dns: dnssec requires a trust-anchor")
	}
	if s.noResolv && s.upstream == "" {
		return fmt.Errorf("dns: no-resolv with no server leaves nowhere to forward")
	}
	if s.authZone != "" && s.rebindStop {
		return fmt.Errorf("dns: auth-zone conflicts with stop-dns-rebind")
	}
	if s.expandHost && s.domain == "" {
		return fmt.Errorf("dns: expand-hosts requires a domain")
	}
	if s.cacheSize < 0 {
		return fmt.Errorf("dns: cache-size must be non-negative")
	}
	return nil
}

// Startup coverage sites.
const (
	sBoot      = 100
	sCacheInit = 101
	sUpstream  = 102
	sDNSSEC    = 103
	sDHCP      = 104
	sTFTP      = 105
	sAuth      = 106
	sHosts     = 107
	sFilters   = 108
	sSynDHCPd  = 110
	sSynSECca  = 111
	sSynTFTPdh = 112
	sSynHostEx = 113
)

func (s settings) startupCoverage(tr *coverage.Trace) {
	for i := uint64(0); i < 9; i++ {
		tr.Edge(sBoot, i)
	}
	tr.Edge(sBoot, 16+probes.Bucket(s.port))
	tr.Edge(sCacheInit, probes.Bucket(s.cacheSize))
	tr.Edge(sCacheInit, 64+probes.Bucket(s.negTTL))
	tr.Edge(sUpstream, probes.Hash(s.upstream)%16)
	tr.Edge(sBoot, 32+probes.Bucket(s.ednsMax))

	for _, f := range []struct {
		on  bool
		bit uint64
	}{
		{s.domainNeed, 0}, {s.bogusPriv, 1}, {s.filterW2K, 2},
		{s.rebindStop, 3}, {s.logQueries, 4}, {s.noResolv, 5},
	} {
		if f.on {
			tr.Edge(sFilters, f.bit)
			tr.Edge(sFilters, 8+f.bit*2)
		}
	}
	if s.dnssec {
		for i := uint64(0); i < 9; i++ {
			tr.Edge(sDNSSEC, i)
		}
		tr.Edge(sSynSECca, probes.Bucket(s.cacheSize)) // validation cache
	}
	if s.dhcpRange != "" {
		for i := uint64(0); i < 11; i++ {
			tr.Edge(sDHCP, i)
		}
		if s.domain != "" {
			for i := uint64(0); i < 5; i++ {
				tr.Edge(sSynDHCPd, i) // lease hostname qualification
			}
		}
	}
	if s.tftpRoot != "" {
		for i := uint64(0); i < 6; i++ {
			tr.Edge(sTFTP, i)
		}
		if s.dhcpRange != "" {
			for i := uint64(0); i < 5; i++ {
				tr.Edge(sSynTFTPdh, i) // PXE boot chaining
			}
		}
	}
	if s.authZone != "" {
		for i := uint64(0); i < 7; i++ {
			tr.Edge(sAuth, i)
		}
	}
	if s.addnHosts != "" {
		for i := uint64(0); i < 5; i++ {
			tr.Edge(sHosts, i)
		}
		if s.expandHost {
			for i := uint64(0); i < 4; i++ {
				tr.Edge(sSynHostEx, i)
			}
		}
	}
	if s.localZone != "" {
		tr.Edge(sUpstream, 32+probes.Hash(s.localZone)%8)
	}
	if s.address != "" {
		tr.Edge(sUpstream, 64+probes.Hash(s.address)%8)
	}
	if s.domain != "" {
		tr.Edge(sBoot, 64+probes.Hash(s.domain)%8)
	}
}

// Message-handling coverage sites.
const (
	mParseErr = 200
	mHeader   = 201
	mQuestion = 210
	mNameHash = 215
	mQType    = 220
	mCache    = 230
	mLocal    = 240
	mForward  = 250
	mEDNS     = 260
	mSECValid = 270
	mDHCPLk   = 280
	mAuthZone = 290
	mFilter   = 300
	mLog      = 310
	mHostsLk  = 320
)

const hashSpace = 640

// Server is the Dnsmasq-like DNS subject instance.
type Server struct {
	cfg   settings
	tr    *coverage.Trace
	cache map[string]record
	hosts map[string][4]byte
}

// NewServer returns an unstarted DNS forwarder.
func NewServer() *Server {
	return &Server{
		cache: make(map[string]record),
		hosts: map[string][4]byte{
			"router.lan":  {192, 168, 0, 1},
			"printer.lan": {192, 168, 0, 9},
		},
	}
}

// Start implements subject.Instance.
func (s *Server) Start(cfg map[string]string, tr *coverage.Trace) error {
	st := parseSettings(cfg)
	if err := st.validate(); err != nil {
		return err
	}
	s.cfg = st
	s.tr = tr
	st.startupCoverage(tr)
	return nil
}

// SetTrace implements subject.Instance.
func (s *Server) SetTrace(tr *coverage.Trace) { s.tr = tr }

// NewSession implements subject.Instance (DNS is stateless per query).
func (s *Server) NewSession() {}

// Close implements subject.Instance.
func (s *Server) Close() {}

// Message handles one DNS query datagram.
func (s *Server) Message(data []byte) [][]byte {
	q, err := decodeQuery(data)
	if err != nil {
		s.tr.Edge(mParseErr, probes.Bucket(len(data)))
		switch {
		case errors.Is(err, errTruncated16):
			s.tr.Edge(mParseErr, 64)
			// Bug #10: the DNSSEC validation path re-reads the truncated
			// additional section with raw get16bits and walks off the
			// stack buffer.
			if s.cfg.dnssec && len(data) >= 12 {
				ar := int(data[10])<<8 | int(data[11])
				if ar > 0 {
					bugs.Trigger("DNS", bugs.StackBufferOverflow, "get16bits",
						"truncated additional section overreads under dnssec validation")
				}
			}
		case errors.Is(err, errPointerOut):
			s.tr.Edge(mParseErr, 65)
			// Bug #11: with rebind protection on, the answer-sanitizing
			// pass re-parses the question through the out-of-range
			// compression pointer.
			if s.cfg.rebindStop {
				bugs.Trigger("DNS", bugs.HeapBufferOverflow, "dns_question_parse, dns_request_parse",
					"compression pointer past packet end re-read during rebind check")
			}
		case errors.Is(err, errPointerLoop):
			s.tr.Edge(mParseErr, 66)
		}
		if len(data) >= 12 {
			// FORMERR response for parseable headers.
			id := uint16(data[0])<<8 | uint16(data[1])
			return [][]byte{encodeResponse(id, rcodeFormErr, nil, nil)}
		}
		return nil
	}

	h := q.Header
	s.tr.Edge(mHeader, uint64(h.Flags>>11&0x0f)) // opcode
	s.tr.Edge(mHeader, 16+probes.B(h.Flags&flagRD != 0)<<1|probes.B(h.Flags&flagCD != 0))
	s.tr.Edge(mHeader, 32+uint64(h.QDCount%16))
	if h.Flags&flagQR != 0 {
		s.tr.Edge(mHeader, 64) // unsolicited response
		return nil
	}

	// EDNS OPT processing.
	for _, rec := range q.Additional {
		if rec.Type != typeOPT {
			s.tr.Edge(mEDNS, 128+uint64(rec.Type%64))
			continue
		}
		s.tr.Edge(mEDNS, probes.Bucket(int(rec.Class)))
		// Bug #12: with edns-packet-max=0 (unlimited) the advertised
		// payload size is used verbatim to size the response buffer.
		if s.cfg.ednsMax == 0 && rec.Class > 0x4000 {
			bugs.Trigger("DNS", bugs.AllocationSizeTooBig, "dns_request_parse",
				fmt.Sprintf("attacker-advertised EDNS size %d allocated verbatim", rec.Class))
		}
		if s.cfg.ednsMax > 0 && int(rec.Class) > s.cfg.ednsMax {
			s.tr.Edge(mEDNS, 64)
		}
	}

	var answers []record
	rcode := uint16(rcodeOK)
	for _, qu := range q.Questions {
		answers = append(answers, s.answer(qu, &rcode)...)
	}
	flags := rcode | flagRA | (h.Flags & flagRD)
	return [][]byte{encodeResponse(h.ID, flags, q.Questions, answers)}
}

// answer resolves one question through the dnsmasq pipeline: logging,
// filters, local data, hosts, cache, auth zone, DHCP leases, upstream.
func (s *Server) answer(qu question, rcode *uint16) []record {
	name := strings.ToLower(qu.Name)
	s.tr.Edge(mQuestion, probes.Bucket(len(name)))
	s.tr.Edge(mQuestion, 64+uint64(strings.Count(name, ".")%32))
	s.tr.Edge(mNameHash, probes.Hash(name)%hashSpace)
	s.tr.Edge(mQType, uint64(qu.Type%256))
	s.tr.Edge(mQType, 256+uint64(qu.Class%8))

	if s.cfg.logQueries {
		s.tr.Edge(mLog, probes.Hash(name)%128)
		// Bug #13: the query log formats the name with printf-style
		// expansion; '%' directives in a label overflow the log buffer.
		if strings.Contains(name, "%") {
			bugs.Trigger("DNS", bugs.HeapBufferOverflow, "printf_common",
				"format directives in logged query name")
		}
	}

	// Filters.
	if s.cfg.domainNeed && !strings.Contains(name, ".") {
		s.tr.Edge(mFilter, 0)
		*rcode = rcodeRefused
		return nil
	}
	if s.cfg.filterW2K && (qu.Type == typeSRV || qu.Type == typeSOA) && strings.Contains(name, "_") {
		s.tr.Edge(mFilter, 1+uint64(qu.Type%8))
		*rcode = rcodeNXDomain
		return nil
	}
	if s.cfg.bogusPriv && qu.Type == typePTR && strings.HasSuffix(name, ".in-addr.arpa") {
		s.tr.Edge(mFilter, 16+probes.Hash(name)%16)
		*rcode = rcodeNXDomain
		return nil
	}

	// address=/domain/IP interception.
	if s.cfg.address != "" {
		parts := strings.Split(s.cfg.address, "/")
		if len(parts) >= 2 && parts[1] != "" && strings.HasSuffix(name, parts[1]) {
			s.tr.Edge(mLocal, probes.Hash(name)%64)
			return []record{{Name: qu.Name, Type: typeA, Class: 1, TTL: 0, Data: []byte{127, 0, 0, 1}}}
		}
	}

	// addn-hosts lazy load: qualification through config_parse.
	if s.cfg.addnHosts != "" {
		s.tr.Edge(mHostsLk, probes.Hash(name)%128)
		// Bug #14: re-qualifying an overlong name against the additional
		// hosts file overruns the config parser's line buffer.
		if len(name) > 64 {
			bugs.Trigger("DNS", bugs.HeapBufferOverflow, "config_parse",
				"overlong name overflows hosts-file line buffer during lazy reload")
		}
	}

	// Local hosts answers.
	if ip, ok := s.hosts[name]; ok && (qu.Type == typeA || qu.Type == typeANY) {
		s.tr.Edge(mLocal, 128+probes.Hash(name)%32)
		return []record{{Name: qu.Name, Type: typeA, Class: 1, TTL: 60, Data: ip[:]}}
	}
	if s.cfg.expandHost && s.cfg.domain != "" && !strings.Contains(name, ".") {
		fq := name + "." + s.cfg.domain
		if ip, ok := s.hosts[fq]; ok {
			s.tr.Edge(mLocal, 192+probes.Hash(fq)%16)
			return []record{{Name: qu.Name, Type: typeA, Class: 1, TTL: 60, Data: ip[:]}}
		}
	}

	// local=/zone/ answers authoritatively (NXDOMAIN when unknown).
	if s.cfg.localZone != "" {
		zone := strings.Trim(s.cfg.localZone, "/")
		if zone != "" && strings.HasSuffix(name, zone) {
			s.tr.Edge(mLocal, 256+probes.Hash(name)%32)
			*rcode = rcodeNXDomain
			return nil
		}
	}

	// Authoritative zone.
	if s.cfg.authZone != "" && strings.HasSuffix(name, s.cfg.authZone) {
		s.tr.Edge(mAuthZone, probes.Hash(name)%128)
		s.tr.Edge(mAuthZone, 128+uint64(qu.Type%16))
		return []record{{Name: qu.Name, Type: typeSOA, Class: 1, TTL: 3600,
			Data: []byte("primary.example.org")}}
	}

	// DHCP lease lookups for the local domain.
	if s.cfg.dhcpRange != "" {
		if qu.Type == typePTR || (s.cfg.domain != "" && strings.HasSuffix(name, s.cfg.domain)) {
			s.tr.Edge(mDHCPLk, probes.Hash(name)%192)
			s.tr.Edge(mDHCPLk, 192+uint64(qu.Type%8))
		}
	}

	// Cache.
	if s.cfg.cacheSize > 0 {
		key := fmt.Sprintf("%s/%d", name, qu.Type)
		if rec, ok := s.cache[key]; ok {
			s.tr.Edge(mCache, probes.Hash(key)%128)
			return []record{rec}
		}
		s.tr.Edge(mCache, 128+probes.Hash(key)%64)
	}

	// Upstream forward (simulated: deterministic synthetic answer).
	if s.cfg.upstream == "" {
		s.tr.Edge(mForward, 0)
		*rcode = rcodeServFail
		return nil
	}
	s.tr.Edge(mForward, 1+probes.Hash(name)%128)
	s.tr.Edge(mForward, 192+uint64(qu.Type%32))
	if s.cfg.dnssec {
		// Validation region: per-name signature checks.
		s.tr.Edge(mSECValid, probes.Hash(name)%256)
		s.tr.Edge(mSECValid, 256+uint64(qu.Type%16))
	}
	h := probes.Hash(name)
	rec := record{Name: qu.Name, Type: typeA, Class: 1, TTL: 300,
		Data: []byte{10, byte(h >> 16), byte(h >> 8), byte(h)}}
	if qu.Type == typeAAAA {
		rec.Type = typeAAAA
		rec.Data = append([]byte{0x20, 0x01, 0x0d, 0xb8}, rec.Data...)
		rec.Data = append(rec.Data, make([]byte, 16-len(rec.Data))...)
	}
	if s.cfg.cacheSize > 0 && len(s.cache) < s.cfg.cacheSize {
		s.cache[fmt.Sprintf("%s/%d", name, qu.Type)] = rec
	}
	return []record{rec}
}
