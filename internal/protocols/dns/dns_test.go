package dns

import (
	"errors"
	"strings"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/wire"
)

func startServer(t *testing.T, cfg map[string]string) *Server {
	t.Helper()
	s := NewServer()
	if err := s.Start(cfg, coverage.NewTrace()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s
}

func simpleQuery(name string, qtype uint16) []byte {
	return encodeQuery(0x1234, flagRD, []question{{Name: name, Type: qtype, Class: 1}}, nil)
}

func decodeAnswer(t *testing.T, resp []byte) (header, []record) {
	t.Helper()
	r := wire.NewReader(resp)
	h, err := decodeHeader(r)
	if err != nil {
		t.Fatalf("response header: %v", err)
	}
	for i := 0; i < int(h.QDCount); i++ {
		if _, err := decodeName(r, resp); err != nil {
			t.Fatalf("question name: %v", err)
		}
		r.Skip(4)
	}
	var answers []record
	for i := 0; i < int(h.ANCount); i++ {
		rec, err := decodeRecord(r, resp)
		if err != nil {
			t.Fatalf("answer %d: %v", i, err)
		}
		answers = append(answers, rec)
	}
	return h, answers
}

func TestNameRoundTrip(t *testing.T) {
	for _, name := range []string{"", "com", "www.example.com", "a.b.c.d.e"} {
		w := wire.NewWriter(32)
		encodeName(w, name)
		got, err := decodeName(wire.NewReader(w.Bytes()), w.Bytes())
		if err != nil || got != name {
			t.Errorf("name %q round-tripped to %q (%v)", name, got, err)
		}
	}
}

func TestNameCompression(t *testing.T) {
	// Packet: header-less buffer with "example.com" at 0, then a pointer.
	w := wire.NewWriter(32)
	encodeName(w, "example.com")
	ptrOff := w.Len()
	w.U8(0x03)
	w.Raw([]byte("www"))
	w.U8(0xc0)
	w.U8(0x00) // pointer to offset 0
	full := w.Bytes()
	r := wire.NewReader(full[ptrOff:])
	got, err := decodeName(r, full)
	if err != nil || got != "www.example.com" {
		t.Fatalf("compressed name = %q (%v)", got, err)
	}
}

func TestNamePointerErrors(t *testing.T) {
	// Pointer beyond the packet.
	data := []byte{0xc0, 0x7f}
	if _, err := decodeName(wire.NewReader(data), data); !errors.Is(err, errPointerOut) {
		t.Fatalf("out-of-range pointer err = %v", err)
	}
	// Pointer loop.
	loop := []byte{0xc0, 0x00}
	if _, err := decodeName(wire.NewReader(loop), loop); !errors.Is(err, errPointerLoop) {
		t.Fatalf("pointer loop err = %v", err)
	}
	// Reserved label type.
	bad := []byte{0x80, 0x00}
	if _, err := decodeName(wire.NewReader(bad), bad); err == nil {
		t.Fatal("reserved label accepted")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	raw := encodeQuery(7, flagRD, []question{
		{Name: "a.example.com", Type: typeA, Class: 1},
		{Name: "b.example.com", Type: typeAAAA, Class: 1},
	}, []record{{Name: "", Type: typeOPT, Class: 4096}})
	q, err := decodeQuery(raw)
	if err != nil {
		t.Fatal(err)
	}
	if q.Header.ID != 7 || len(q.Questions) != 2 || len(q.Additional) != 1 {
		t.Fatalf("decoded = %+v", q)
	}
	if q.Questions[1].Name != "b.example.com" || q.Questions[1].Type != typeAAAA {
		t.Fatalf("question = %+v", q.Questions[1])
	}
	if q.Additional[0].Type != typeOPT || q.Additional[0].Class != 4096 {
		t.Fatalf("opt = %+v", q.Additional[0])
	}
}

func TestConfigConflicts(t *testing.T) {
	bad := []map[string]string{
		{"dnssec": "true"},
		{"no-resolv": "true", "server": ""},
		{"auth-zone": "example.org", "stop-dns-rebind": "true"},
		{"expand-hosts": "true"},
		{"cache-size": "-5"},
	}
	for i, cfg := range bad {
		if cfg["server"] == "" && cfg["no-resolv"] != "true" {
			cfg["server"] = "8.8.8.8"
		}
		if err := NewServer().Start(cfg, coverage.NewTrace()); err == nil {
			t.Errorf("conflict %d accepted: %v", i, cfg)
		}
	}
	good := []map[string]string{
		{"server": "8.8.8.8"},
		{"dnssec": "true", "trust-anchor": "x", "server": "1.1.1.1"},
		{"expand-hosts": "true", "domain": "lan", "server": "1.1.1.1"},
	}
	for i, cfg := range good {
		if err := NewServer().Start(cfg, coverage.NewTrace()); err != nil {
			t.Errorf("valid config %d rejected: %v", i, err)
		}
	}
}

func TestForwardedAnswerAndCache(t *testing.T) {
	s := startServer(t, map[string]string{"server": "8.8.8.8"})
	tr := coverage.NewTrace()
	s.SetTrace(tr)
	resp := s.Message(simpleQuery("www.example.com", typeA))
	if len(resp) != 1 {
		t.Fatal("no response")
	}
	h, answers := decodeAnswer(t, resp[0])
	if h.Flags&flagQR == 0 || len(answers) != 1 || answers[0].Type != typeA {
		t.Fatalf("response = %+v %+v", h, answers)
	}
	first := answers[0].Data

	// Second identical query must be served from cache with the same data.
	resp2 := s.Message(simpleQuery("www.example.com", typeA))
	_, answers2 := decodeAnswer(t, resp2[0])
	if string(answers2[0].Data) != string(first) {
		t.Fatal("cache served different answer")
	}
}

func TestLocalHosts(t *testing.T) {
	s := startServer(t, map[string]string{"server": "8.8.8.8"})
	s.SetTrace(coverage.NewTrace())
	_, answers := decodeAnswer(t, s.Message(simpleQuery("router.lan", typeA))[0])
	if len(answers) != 1 || string(answers[0].Data) != string([]byte{192, 168, 0, 1}) {
		t.Fatalf("hosts answer = %+v", answers)
	}
}

func TestFilters(t *testing.T) {
	s := startServer(t, map[string]string{
		"server": "8.8.8.8", "domain-needed": "true", "bogus-priv": "true", "filterwin2k": "true",
	})
	s.SetTrace(coverage.NewTrace())

	h, ans := decodeAnswer(t, s.Message(simpleQuery("plainhost", typeA))[0])
	if h.Flags&0x0f != rcodeRefused || len(ans) != 0 {
		t.Fatalf("domain-needed: rcode %d", h.Flags&0x0f)
	}
	h, _ = decodeAnswer(t, s.Message(simpleQuery("9.0.168.192.in-addr.arpa", typePTR))[0])
	if h.Flags&0x0f != rcodeNXDomain {
		t.Fatalf("bogus-priv: rcode %d", h.Flags&0x0f)
	}
	h, _ = decodeAnswer(t, s.Message(simpleQuery("_ldap.tcp.example.com", typeSRV))[0])
	if h.Flags&0x0f != rcodeNXDomain {
		t.Fatalf("filterwin2k: rcode %d", h.Flags&0x0f)
	}
}

func TestAddressInterception(t *testing.T) {
	s := startServer(t, map[string]string{
		"server": "8.8.8.8", "address": "/blocked.example/127.0.0.1",
	})
	s.SetTrace(coverage.NewTrace())
	_, ans := decodeAnswer(t, s.Message(simpleQuery("ads.blocked.example", typeA))[0])
	if len(ans) != 1 || string(ans[0].Data) != string([]byte{127, 0, 0, 1}) {
		t.Fatalf("interception = %+v", ans)
	}
}

func TestBug10DNSSECTruncated(t *testing.T) {
	// Valid header claiming one additional record, body truncated.
	w := wire.NewWriter(16)
	w.U16(1)
	w.U16(0)
	w.U16(0)
	w.U16(0)
	w.U16(0)
	w.U16(1)                             // ARCOUNT=1 but nothing follows — name decodes as truncated
	data := append(w.Bytes(), 0x03, 'a') // truncated label
	s := startServer(t, map[string]string{"server": "8.8.8.8", "dnssec": "true", "trust-anchor": "x"})
	s.SetTrace(coverage.NewTrace())
	// Need a truncated 16-bit field specifically: name then cut qtype.
	data2 := append(w.Bytes(), 0x01, 'a', 0x00, 0x00) // name "a", then half of TYPE
	crash := bugs.Capture(func() { s.Message(data2) })
	if crash == nil || crash.Function != "get16bits" {
		// try the first variant
		crash = bugs.Capture(func() { s.Message(data) })
	}
	if crash == nil || crash.Function != "get16bits" {
		t.Fatalf("crash = %+v, want bug #10", crash)
	}
	// Without dnssec: no crash.
	s2 := startServer(t, map[string]string{"server": "8.8.8.8"})
	s2.SetTrace(coverage.NewTrace())
	if c := bugs.Capture(func() { s2.Message(data2) }); c != nil {
		t.Fatalf("bug #10 fired without dnssec: %v", c)
	}
}

func TestBug11PointerPastEnd(t *testing.T) {
	w := wire.NewWriter(16)
	w.U16(2)
	w.U16(0)
	w.U16(1)
	w.U16(0)
	w.U16(0)
	w.U16(0)
	w.U8(0xc1)
	w.U8(0xff) // pointer to 511: past end
	w.U16(typeA)
	w.U16(1)
	data := w.Bytes()
	s := startServer(t, map[string]string{"server": "8.8.8.8", "stop-dns-rebind": "true"})
	s.SetTrace(coverage.NewTrace())
	crash := bugs.Capture(func() { s.Message(data) })
	if crash == nil || crash.Kind != bugs.HeapBufferOverflow {
		t.Fatalf("crash = %+v, want bug #11", crash)
	}
	s2 := startServer(t, map[string]string{"server": "8.8.8.8"})
	s2.SetTrace(coverage.NewTrace())
	if c := bugs.Capture(func() { s2.Message(data) }); c != nil {
		t.Fatalf("bug #11 fired without stop-dns-rebind: %v", c)
	}
}

func TestBug12HugeEDNS(t *testing.T) {
	q := encodeQuery(3, flagRD, []question{{Name: "x.com", Type: typeA, Class: 1}},
		[]record{{Name: "", Type: typeOPT, Class: 0x8000}})
	s := startServer(t, map[string]string{"server": "8.8.8.8", "edns-packet-max": "0"})
	s.SetTrace(coverage.NewTrace())
	crash := bugs.Capture(func() { s.Message(q) })
	if crash == nil || crash.Kind != bugs.AllocationSizeTooBig {
		t.Fatalf("crash = %+v, want bug #12", crash)
	}
	s2 := startServer(t, map[string]string{"server": "8.8.8.8"}) // default 4096
	s2.SetTrace(coverage.NewTrace())
	if c := bugs.Capture(func() { s2.Message(q) }); c != nil {
		t.Fatalf("bug #12 fired with default edns-packet-max: %v", c)
	}
}

func TestBug13FormatString(t *testing.T) {
	q := simpleQuery("p%n.example.com", typeA)
	s := startServer(t, map[string]string{"server": "8.8.8.8", "log-queries": "true"})
	s.SetTrace(coverage.NewTrace())
	crash := bugs.Capture(func() { s.Message(q) })
	if crash == nil || crash.Function != "printf_common" {
		t.Fatalf("crash = %+v, want bug #13", crash)
	}
	s2 := startServer(t, map[string]string{"server": "8.8.8.8"})
	s2.SetTrace(coverage.NewTrace())
	if c := bugs.Capture(func() { s2.Message(q) }); c != nil {
		t.Fatalf("bug #13 fired without log-queries: %v", c)
	}
}

func TestBug14OverlongNameWithHosts(t *testing.T) {
	long := strings.Repeat("a", 80) + ".example.com"
	q := simpleQuery(long, typeA)
	s := startServer(t, map[string]string{"server": "8.8.8.8", "addn-hosts": "/etc/hosts.extra"})
	s.SetTrace(coverage.NewTrace())
	crash := bugs.Capture(func() { s.Message(q) })
	if crash == nil || crash.Function != "config_parse" {
		t.Fatalf("crash = %+v, want bug #14", crash)
	}
	s2 := startServer(t, map[string]string{"server": "8.8.8.8"})
	s2.SetTrace(coverage.NewTrace())
	if c := bugs.Capture(func() { s2.Message(q) }); c != nil {
		t.Fatalf("bug #14 fired without addn-hosts: %v", c)
	}
}

func TestStartupSynergies(t *testing.T) {
	count := func(cfg map[string]string) int {
		tr := coverage.NewTrace()
		if err := NewServer().Start(cfg, tr); err != nil {
			t.Fatalf("Start(%v): %v", cfg, err)
		}
		return tr.Count()
	}
	base := count(map[string]string{"server": "8.8.8.8"})
	dhcp := count(map[string]string{"server": "8.8.8.8", "dhcp-range": "192.168.0.50,150"})
	dom := count(map[string]string{"server": "8.8.8.8", "domain": "lan"})
	both := count(map[string]string{"server": "8.8.8.8", "dhcp-range": "192.168.0.50,150", "domain": "lan"})
	if both-base <= (dhcp-base)+(dom-base) {
		t.Fatalf("no dhcp/domain synergy: base=%d dhcp=%d dom=%d both=%d", base, dhcp, dom, both)
	}
}

func TestPitParses(t *testing.T) {
	pit, err := fuzz.ParsePit(Subject().PitXML())
	if err != nil {
		t.Fatal(err)
	}
	if len(pit.DataModels) != 5 || len(pit.StateModels) != 1 {
		t.Fatalf("pit models = %d/%d", len(pit.DataModels), len(pit.StateModels))
	}
}

func TestMalformedGetsFormErr(t *testing.T) {
	s := startServer(t, map[string]string{"server": "8.8.8.8"})
	s.SetTrace(coverage.NewTrace())
	// Valid header, truncated question.
	w := wire.NewWriter(16)
	w.U16(9)
	w.U16(0)
	w.U16(1)
	w.U16(0)
	w.U16(0)
	w.U16(0)
	data := append(w.Bytes(), 0x05, 'a')
	resp := s.Message(data)
	if len(resp) != 1 {
		t.Fatal("no FORMERR response")
	}
	h, _ := decodeAnswer(t, resp[0])
	if h.Flags&0x0f != rcodeFormErr {
		t.Fatalf("rcode = %d", h.Flags&0x0f)
	}
}
