// Package dns implements a Dnsmasq-like DNS forwarder used as the DNS
// subject. It parses RFC 1035 messages (including name compression),
// serves local and cached answers, simulates upstream forwarding, and
// carries the DHCP/TFTP/auth-zone/DNSSEC feature surface of dnsmasq's
// configuration. Five seeded configuration-gated defects reproduce
// Table II rows 10–14.
package dns

import (
	"errors"
	"strings"

	"cmfuzz/internal/wire"
)

// Query/record types used by the subject.
const (
	typeA     = 1
	typeNS    = 2
	typeCNAME = 5
	typeSOA   = 6
	typePTR   = 12
	typeMX    = 15
	typeTXT   = 16
	typeAAAA  = 28
	typeSRV   = 33
	typeOPT   = 41
	typeANY   = 255
)

// Header flag masks.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
	flagCD = 1 << 4
)

// Response codes.
const (
	rcodeOK       = 0
	rcodeFormErr  = 1
	rcodeServFail = 2
	rcodeNXDomain = 3
	rcodeRefused  = 5
)

var (
	errMalformed = errors.New("dns: malformed message")
	// errTruncated16 marks a 16-bit field read running past the packet —
	// the get16bits overread of Table II bug #10.
	errTruncated16 = errors.New("dns: truncated 16-bit field")
	// errPointerOut marks a compression pointer beyond the packet — the
	// question-parse overread of Table II bug #11.
	errPointerOut  = errors.New("dns: compression pointer out of range")
	errPointerLoop = errors.New("dns: compression pointer loop")
)

// header is the fixed 12-byte DNS header.
type header struct {
	ID      uint16
	Flags   uint16
	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// question is one entry of the question section.
type question struct {
	Name  string
	Type  uint16
	Class uint16
}

// record is one resource record (answers and the OPT pseudo-record).
type record struct {
	Name  string
	Type  uint16
	Class uint16 // UDP payload size for OPT
	TTL   uint32
	Data  []byte
}

// queryMsg is a decoded DNS request.
type queryMsg struct {
	Header     header
	Questions  []question
	Additional []record
}

func read16(r *wire.Reader) (uint16, error) {
	if r.Remaining() < 2 {
		return 0, errTruncated16
	}
	return r.U16(), nil
}

// decodeHeader parses the fixed header.
func decodeHeader(r *wire.Reader) (header, error) {
	var h header
	var err error
	fields := []*uint16{&h.ID, &h.Flags, &h.QDCount, &h.ANCount, &h.NSCount, &h.ARCount}
	for _, f := range fields {
		if *f, err = read16(r); err != nil {
			return h, err
		}
	}
	return h, nil
}

// decodeName reads a possibly compressed domain name starting at the
// reader's cursor. full is the entire packet, needed to chase pointers.
func decodeName(r *wire.Reader, full []byte) (string, error) {
	var labels []string
	jumps := 0
	pos := -1 // -1: reading from r; otherwise reading from full at pos
	readByte := func() (byte, error) {
		if pos < 0 {
			if r.Remaining() < 1 {
				return 0, errMalformed
			}
			return r.U8(), nil
		}
		if pos >= len(full) {
			return 0, errPointerOut
		}
		b := full[pos]
		pos++
		return b, nil
	}
	for {
		b, err := readByte()
		if err != nil {
			return "", err
		}
		switch {
		case b == 0:
			return strings.Join(labels, "."), nil
		case b&0xc0 == 0xc0:
			low, err := readByte()
			if err != nil {
				return "", err
			}
			target := int(b&0x3f)<<8 | int(low)
			if target >= len(full) {
				return "", errPointerOut
			}
			jumps++
			if jumps > 8 {
				return "", errPointerLoop
			}
			pos = target
		case b&0xc0 != 0:
			return "", errMalformed // reserved label types
		default:
			n := int(b)
			label := make([]byte, 0, n)
			for i := 0; i < n; i++ {
				c, err := readByte()
				if err != nil {
					return "", err
				}
				label = append(label, c)
			}
			labels = append(labels, string(label))
			if len(labels) > 32 {
				return "", errMalformed
			}
		}
	}
}

// decodeQuery parses a request: header, questions, and any additional
// records (for EDNS OPT).
func decodeQuery(data []byte) (queryMsg, error) {
	r := wire.NewReader(data)
	var q queryMsg
	var err error
	if q.Header, err = decodeHeader(r); err != nil {
		return q, err
	}
	if q.Header.QDCount > 16 {
		return q, errMalformed
	}
	for i := 0; i < int(q.Header.QDCount); i++ {
		var qu question
		if qu.Name, err = decodeName(r, data); err != nil {
			return q, err
		}
		if qu.Type, err = read16(r); err != nil {
			return q, err
		}
		if qu.Class, err = read16(r); err != nil {
			return q, err
		}
		q.Questions = append(q.Questions, qu)
	}
	// Skip answer/authority sections (unusual in queries, tolerated).
	for i := 0; i < int(q.Header.ANCount)+int(q.Header.NSCount); i++ {
		if err := skipRecord(r, data); err != nil {
			return q, err
		}
	}
	for i := 0; i < int(q.Header.ARCount); i++ {
		rec, err := decodeRecord(r, data)
		if err != nil {
			return q, err
		}
		q.Additional = append(q.Additional, rec)
	}
	return q, nil
}

func decodeRecord(r *wire.Reader, full []byte) (record, error) {
	var rec record
	var err error
	if rec.Name, err = decodeName(r, full); err != nil {
		return rec, err
	}
	if rec.Type, err = read16(r); err != nil {
		return rec, err
	}
	if rec.Class, err = read16(r); err != nil {
		return rec, err
	}
	if r.Remaining() < 4 {
		return rec, errMalformed
	}
	rec.TTL = r.U32()
	rdlen, err := read16(r)
	if err != nil {
		return rec, err
	}
	if int(rdlen) > r.Remaining() {
		return rec, errTruncated16
	}
	rec.Data = r.Bytes(int(rdlen))
	return rec, nil
}

func skipRecord(r *wire.Reader, full []byte) error {
	_, err := decodeRecord(r, full)
	return err
}

// encodeName renders an uncompressed domain name.
func encodeName(w *wire.Writer, name string) {
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) > 63 {
				label = label[:63]
			}
			w.U8(byte(len(label)))
			w.Raw([]byte(label))
		}
	}
	w.U8(0)
}

// encodeResponse renders a response for the given questions and answers.
func encodeResponse(id uint16, flags uint16, questions []question, answers []record) []byte {
	w := wire.NewWriter(64)
	w.U16(id)
	w.U16(flags | flagQR)
	w.U16(uint16(len(questions)))
	w.U16(uint16(len(answers)))
	w.U16(0)
	w.U16(0)
	for _, q := range questions {
		encodeName(w, q.Name)
		w.U16(q.Type)
		w.U16(q.Class)
	}
	for _, a := range answers {
		encodeName(w, a.Name)
		w.U16(a.Type)
		w.U16(a.Class)
		w.U32(a.TTL)
		w.U16(uint16(len(a.Data)))
		w.Raw(a.Data)
	}
	return w.Bytes()
}

// encodeQuery renders a plain query (used by the Pit seed corpus and
// tests).
func encodeQuery(id uint16, flags uint16, questions []question, additional []record) []byte {
	w := wire.NewWriter(64)
	w.U16(id)
	w.U16(flags)
	w.U16(uint16(len(questions)))
	w.U16(0)
	w.U16(0)
	w.U16(uint16(len(additional)))
	for _, q := range questions {
		encodeName(w, q.Name)
		w.U16(q.Type)
		w.U16(q.Class)
	}
	for _, a := range additional {
		encodeName(w, a.Name)
		w.U16(a.Type)
		w.U16(a.Class)
		w.U32(a.TTL)
		w.U16(uint16(len(a.Data)))
		w.Raw(a.Data)
	}
	return w.Bytes()
}
