package dns

import (
	"testing"
	"testing/quick"

	"cmfuzz/internal/coverage"
)

func TestAAAAAnswer(t *testing.T) {
	s := startServer(t, map[string]string{"server": "8.8.8.8"})
	s.SetTrace(coverage.NewTrace())
	_, ans := decodeAnswer(t, s.Message(simpleQuery("v6.example.com", typeAAAA))[0])
	if len(ans) != 1 || ans[0].Type != typeAAAA || len(ans[0].Data) != 16 {
		t.Fatalf("AAAA answer = %+v", ans)
	}
}

func TestMultipleQuestions(t *testing.T) {
	s := startServer(t, map[string]string{"server": "8.8.8.8"})
	s.SetTrace(coverage.NewTrace())
	q := encodeQuery(5, flagRD, []question{
		{Name: "a.example.com", Type: typeA, Class: 1},
		{Name: "router.lan", Type: typeA, Class: 1},
	}, nil)
	h, ans := decodeAnswer(t, s.Message(q)[0])
	if h.QDCount != 2 || len(ans) != 2 {
		t.Fatalf("qd=%d answers=%d", h.QDCount, len(ans))
	}
}

func TestUnsolicitedResponseDropped(t *testing.T) {
	s := startServer(t, map[string]string{"server": "8.8.8.8"})
	s.SetTrace(coverage.NewTrace())
	q := encodeQuery(5, flagQR, []question{{Name: "x.com", Type: typeA, Class: 1}}, nil)
	if resp := s.Message(q); resp != nil {
		t.Fatalf("QR=1 message answered: %x", resp)
	}
}

func TestNoUpstreamServfail(t *testing.T) {
	s := startServer(t, nil) // no server=
	s.SetTrace(coverage.NewTrace())
	h, _ := decodeAnswer(t, s.Message(simpleQuery("x.example.com", typeA))[0])
	if h.Flags&0x0f != rcodeServFail {
		t.Fatalf("rcode = %d, want SERVFAIL", h.Flags&0x0f)
	}
}

func TestLocalZoneAuthoritativeNXDomain(t *testing.T) {
	s := startServer(t, map[string]string{"server": "8.8.8.8", "local": "/lan/"})
	s.SetTrace(coverage.NewTrace())
	h, _ := decodeAnswer(t, s.Message(simpleQuery("ghost.lan", typeA))[0])
	if h.Flags&0x0f != rcodeNXDomain {
		t.Fatalf("local zone rcode = %d, want NXDOMAIN", h.Flags&0x0f)
	}
}

func TestAuthZoneSOA(t *testing.T) {
	s := startServer(t, map[string]string{"server": "8.8.8.8", "auth-zone": "example.org"})
	s.SetTrace(coverage.NewTrace())
	_, ans := decodeAnswer(t, s.Message(simpleQuery("www.example.org", typeNS))[0])
	if len(ans) != 1 || ans[0].Type != typeSOA {
		t.Fatalf("auth answer = %+v", ans)
	}
}

func TestExpandHosts(t *testing.T) {
	s := startServer(t, map[string]string{"server": "8.8.8.8", "expand-hosts": "true", "domain": "lan"})
	s.SetTrace(coverage.NewTrace())
	_, ans := decodeAnswer(t, s.Message(simpleQuery("printer", typeA))[0])
	if len(ans) != 1 || string(ans[0].Data) != string([]byte{192, 168, 0, 9}) {
		t.Fatalf("expanded host answer = %+v", ans)
	}
}

func TestCacheBounded(t *testing.T) {
	s := startServer(t, map[string]string{"server": "8.8.8.8", "cache-size": "10"})
	s.SetTrace(coverage.NewTrace())
	for i := 0; i < 50; i++ {
		name := "h" + string(rune('a'+i%26)) + string(rune('a'+i/26)) + ".example.com"
		s.Message(simpleQuery(name, typeA))
	}
	if len(s.cache) > 10 {
		t.Fatalf("cache grew to %d, limit 10", len(s.cache))
	}
}

// Property: decodeQuery never panics and never accepts a packet whose
// question count exceeds the guard.
func TestQuickDecodeQueryRobust(t *testing.T) {
	f := func(data []byte) bool {
		q, err := decodeQuery(data)
		if err != nil {
			return true
		}
		return len(q.Questions) <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode round trip for arbitrary simple questions.
func TestQuickQueryRoundTrip(t *testing.T) {
	f := func(id uint16, qtype uint16, labels [3]string) bool {
		name := ""
		for _, l := range labels {
			clean := ""
			for _, r := range l {
				if r > ' ' && r != '.' && r < 127 {
					clean += string(r)
				}
			}
			if clean == "" {
				clean = "x"
			}
			if len(clean) > 63 {
				clean = clean[:63]
			}
			if name != "" {
				name += "."
			}
			name += clean
		}
		raw := encodeQuery(id, flagRD, []question{{Name: name, Type: qtype, Class: 1}}, nil)
		q, err := decodeQuery(raw)
		if err != nil {
			return false
		}
		return q.Header.ID == id && len(q.Questions) == 1 &&
			q.Questions[0].Name == name && q.Questions[0].Type == qtype
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
