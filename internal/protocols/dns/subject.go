package dns

import (
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/subject"
)

// pitXML is the DNS Pit document: standard queries of several types, an
// EDNS query, a compressed-name query, and a reverse lookup. DNS is a
// one-shot exchange, so the state model is a short branch.
const pitXML = `<?xml version="1.0"?>
<Peach>
  <DataModel name="QueryA">
    <Number name="id" bits="16" value="4660"/>
    <Number name="flags" bits="16" value="256"/>
    <Number name="qd" bits="16" value="1" token="true"/>
    <Number name="an" bits="16" value="0"/>
    <Number name="ns" bits="16" value="0"/>
    <Number name="ar" bits="16" value="0"/>
    <Block name="q1">
      <Number name="l1" bits="8" sizeOf="n1"/>
      <Choice name="n1">
        <String name="www" value="www"/>
        <String name="mail" value="mail"/>
        <String name="iot" value="iot-device"/>
        <String name="pct" value="p%srinter"/>
      </Choice>
      <Number name="l2" bits="8" sizeOf="n2"/>
      <String name="n2" value="example"/>
      <Number name="l3" bits="8" sizeOf="n3"/>
      <String name="n3" value="com"/>
      <Number name="root" bits="8" value="0" token="true"/>
      <Choice name="qtype">
        <Number name="a" bits="16" value="1"/>
        <Number name="aaaa" bits="16" value="28"/>
        <Number name="mx" bits="16" value="15"/>
        <Number name="txt" bits="16" value="16"/>
        <Number name="srv" bits="16" value="33"/>
        <Number name="any" bits="16" value="255"/>
      </Choice>
      <Number name="qclass" bits="16" value="1"/>
    </Block>
  </DataModel>
  <DataModel name="QueryLocal">
    <Number name="id" bits="16" value="4661"/>
    <Number name="flags" bits="16" value="256"/>
    <Number name="qd" bits="16" value="1" token="true"/>
    <Number name="an" bits="16" value="0"/>
    <Number name="ns" bits="16" value="0"/>
    <Number name="ar" bits="16" value="0"/>
    <Block name="q1">
      <Number name="l1" bits="8" sizeOf="n1"/>
      <Choice name="n1">
        <String name="router" value="router"/>
        <String name="printer" value="printer"/>
        <String name="host" value="somehost"/>
      </Choice>
      <Number name="l2" bits="8" sizeOf="n2"/>
      <String name="n2" value="lan"/>
      <Number name="root" bits="8" value="0" token="true"/>
      <Number name="qtype" bits="16" value="1"/>
      <Number name="qclass" bits="16" value="1"/>
    </Block>
  </DataModel>
  <DataModel name="QueryPTR">
    <Number name="id" bits="16" value="4662"/>
    <Number name="flags" bits="16" value="256"/>
    <Number name="qd" bits="16" value="1" token="true"/>
    <Number name="an" bits="16" value="0"/>
    <Number name="ns" bits="16" value="0"/>
    <Number name="ar" bits="16" value="0"/>
    <Block name="q1">
      <Number name="l1" bits="8" sizeOf="n1"/>
      <String name="n1" value="9"/>
      <Number name="l2" bits="8" sizeOf="n2"/>
      <String name="n2" value="0"/>
      <Number name="l3" bits="8" sizeOf="n3"/>
      <String name="n3" value="168"/>
      <Number name="l4" bits="8" sizeOf="n4"/>
      <String name="n4" value="192"/>
      <Number name="l5" bits="8" sizeOf="n5"/>
      <String name="n5" value="in-addr"/>
      <Number name="l6" bits="8" sizeOf="n6"/>
      <String name="n6" value="arpa"/>
      <Number name="root" bits="8" value="0" token="true"/>
      <Number name="qtype" bits="16" value="12"/>
      <Number name="qclass" bits="16" value="1"/>
    </Block>
  </DataModel>
  <DataModel name="QueryEDNS">
    <Number name="id" bits="16" value="4663"/>
    <Number name="flags" bits="16" value="256"/>
    <Number name="qd" bits="16" value="1" token="true"/>
    <Number name="an" bits="16" value="0"/>
    <Number name="ns" bits="16" value="0"/>
    <Number name="ar" bits="16" value="1" token="true"/>
    <Block name="q1">
      <Number name="l1" bits="8" sizeOf="n1"/>
      <String name="n1" value="edns"/>
      <Number name="l2" bits="8" sizeOf="n2"/>
      <String name="n2" value="test"/>
      <Number name="root" bits="8" value="0" token="true"/>
      <Number name="qtype" bits="16" value="1"/>
      <Number name="qclass" bits="16" value="1"/>
    </Block>
    <Block name="opt">
      <Number name="optroot" bits="8" value="0" token="true"/>
      <Number name="opttype" bits="16" value="41" token="true"/>
      <Choice name="udpsize">
        <Number name="standard" bits="16" value="4096"/>
        <Number name="big" bits="16" value="16400"/>
        <Number name="huge" bits="16" value="65535"/>
      </Choice>
      <Number name="ttl" bits="32" value="0"/>
      <Number name="rdlen" bits="16" value="0"/>
    </Block>
  </DataModel>
  <DataModel name="QueryCompressed">
    <Number name="id" bits="16" value="4664"/>
    <Number name="flags" bits="16" value="256"/>
    <Number name="qd" bits="16" value="2" token="true"/>
    <Number name="an" bits="16" value="0"/>
    <Number name="ns" bits="16" value="0"/>
    <Number name="ar" bits="16" value="0"/>
    <Block name="q1">
      <Number name="l1" bits="8" sizeOf="n1"/>
      <String name="n1" value="compress"/>
      <Number name="l2" bits="8" sizeOf="n2"/>
      <String name="n2" value="me"/>
      <Number name="root" bits="8" value="0" token="true"/>
      <Number name="qtype" bits="16" value="1"/>
      <Number name="qclass" bits="16" value="1"/>
    </Block>
    <Block name="q2">
      <Choice name="ptr">
        <Number name="backref" bits="16" value="49164"/>
        <Number name="far" bits="16" value="49663"/>
      </Choice>
      <Number name="qtype" bits="16" value="1"/>
      <Number name="qclass" bits="16" value="1"/>
    </Block>
  </DataModel>
  <StateModel name="DNSExchange" initialState="ask">
    <State name="ask">
      <Action type="output" dataModel="QueryA"/>
      <Action type="changeState" to="again"/>
      <Action type="changeState" to="localnet"/>
      <Action type="changeState" to="extended"/>
    </State>
    <State name="again">
      <Action type="output" dataModel="QueryA"/>
      <Action type="changeState" to="reverse"/>
    </State>
    <State name="localnet">
      <Action type="output" dataModel="QueryLocal"/>
      <Action type="changeState" to="reverse"/>
    </State>
    <State name="extended">
      <Action type="output" dataModel="QueryEDNS"/>
      <Action type="output" dataModel="QueryCompressed"/>
    </State>
    <State name="reverse">
      <Action type="output" dataModel="QueryPTR"/>
    </State>
  </StateModel>
</Peach>`

// dnsSubject implements subject.Subject for the Dnsmasq-like forwarder.
type dnsSubject struct{}

// Subject returns the DNS evaluation subject.
func Subject() subject.Subject { return dnsSubject{} }

func (dnsSubject) Info() subject.Info {
	return subject.Info{
		Protocol:       "DNS",
		Implementation: "Dnsmasq",
		Transport:      subject.Datagram,
		Port:           53,
	}
}

func (dnsSubject) ConfigInput() configspec.Input {
	return configspec.Input{
		Files: []configspec.File{{Name: "dnsmasq.conf", Content: confFile}},
	}
}

func (dnsSubject) PitXML() string { return pitXML }

func (dnsSubject) NewInstance() subject.Instance { return NewServer() }
