// Package dds implements a CycloneDDS-like DDS/RTPS stack used as the DDS
// subject: RTPS message parsing (header + submessages), SPDP/SEDP
// discovery, reliable-reader heartbeat/acknack handling, inline QoS
// parameter lists, and fragment reassembly, configured through a
// CycloneDDS-style hierarchical XML document (the hierarchical branch of
// Algorithm 1). The paper found no new bugs here and reports moderate
// improvement ("DDS's structured management restricts configuration
// diversity"): the subject has the largest base branch space of the six
// and a proportionally smaller configuration-gated region.
package dds

import (
	"fmt"

	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/protocols/probes"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/wire"
)

// Submessage ids (RTPS 2.2 §8.3.3).
const (
	smPad       = 0x01
	smAckNack   = 0x06
	smHeartbeat = 0x07
	smGap       = 0x08
	smInfoTS    = 0x09
	smInfoSrc   = 0x0c
	smInfoDst   = 0x0e
	smNackFrag  = 0x12
	smData      = 0x15
	smDataFrag  = 0x16
)

// Built-in discovery entity ids.
const (
	entitySPDPWriter = 0x000100c2
	entitySEDPPubW   = 0x000003c2
	entitySEDPSubW   = 0x000004c2
)

// xmlConfig is the shipped cyclonedds.xml the extraction mines
// (hierarchical format).
const xmlConfig = `<CycloneDDS>
  <Domain Id="0">
    <General>
      <AllowMulticast>true</AllowMulticast>
      <MaxMessageSize>65500</MaxMessageSize>
      <FragmentSize>1344</FragmentSize>
      <!-- one of: udp, tcp, shm -->
      <Transport>udp</Transport>
    </General>
    <Discovery>
      <ParticipantIndex>auto</ParticipantIndex>
      <MaxAutoParticipantIndex>9</MaxAutoParticipantIndex>
      <SPDPInterval>30</SPDPInterval>
    </Discovery>
    <Internal>
      <HeartbeatInterval>100</HeartbeatInterval>
      <!-- one of: never, adaptive, always -->
      <RetransmitMerging>never</RetransmitMerging>
      <DeliveryQueueMaxSamples>256</DeliveryQueueMaxSamples>
      <WriterBatching>false</WriterBatching>
      <LivelinessMonitoring>false</LivelinessMonitoring>
    </Internal>
    <Security>
      <Enable>false</Enable>
    </Security>
    <Tracing>
      <!-- one of: none, warning, fine, finest -->
      <Verbosity>none</Verbosity>
    </Tracing>
  </Domain>
</CycloneDDS>`

// Configuration keys as produced by hierarchical extraction + name
// normalization.
const (
	keyDomainID       = "cyclonedds/domain@id"
	keyAllowMulticast = "cyclonedds/domain/general/allowmulticast"
	keyMaxMessageSize = "cyclonedds/domain/general/maxmessagesize"
	keyFragmentSize   = "cyclonedds/domain/general/fragmentsize"
	keyTransport      = "cyclonedds/domain/general/transport"
	keyPartIndex      = "cyclonedds/domain/discovery/participantindex"
	keyMaxAutoIndex   = "cyclonedds/domain/discovery/maxautoparticipantindex"
	keySPDPInterval   = "cyclonedds/domain/discovery/spdpinterval"
	keyHeartbeat      = "cyclonedds/domain/internal/heartbeatinterval"
	keyRetransmit     = "cyclonedds/domain/internal/retransmitmerging"
	keyDeliveryQueue  = "cyclonedds/domain/internal/deliveryqueuemaxsamples"
	keyWriterBatching = "cyclonedds/domain/internal/writerbatching"
	keyLiveliness     = "cyclonedds/domain/internal/livelinessmonitoring"
	keySecurity       = "cyclonedds/domain/security/enable"
	keyVerbosity      = "cyclonedds/domain/tracing/verbosity"
)

type settings struct {
	domainID       int
	allowMulticast bool
	maxMessageSize int
	fragmentSize   int
	transport      string
	partIndex      string
	maxAutoIndex   int
	spdpInterval   int
	heartbeat      int
	retransmit     string
	deliveryQueue  int
	writerBatching bool
	liveliness     bool
	security       bool
	verbosity      string
}

func parseSettings(cfg map[string]string) settings {
	return settings{
		domainID:       probes.Int(cfg, keyDomainID, 0),
		allowMulticast: probes.Bool(cfg, keyAllowMulticast, true),
		maxMessageSize: probes.Int(cfg, keyMaxMessageSize, 65500),
		fragmentSize:   probes.Int(cfg, keyFragmentSize, 1344),
		transport:      probes.Str(cfg, keyTransport, "udp"),
		partIndex:      probes.Str(cfg, keyPartIndex, "auto"),
		maxAutoIndex:   probes.Int(cfg, keyMaxAutoIndex, 9),
		spdpInterval:   probes.Int(cfg, keySPDPInterval, 30),
		heartbeat:      probes.Int(cfg, keyHeartbeat, 100),
		retransmit:     probes.Str(cfg, keyRetransmit, "never"),
		deliveryQueue:  probes.Int(cfg, keyDeliveryQueue, 256),
		writerBatching: probes.Bool(cfg, keyWriterBatching, false),
		liveliness:     probes.Bool(cfg, keyLiveliness, false),
		security:       probes.Bool(cfg, keySecurity, false),
		verbosity:      probes.Str(cfg, keyVerbosity, "none"),
	}
}

func (s settings) validate() error {
	if s.transport != "udp" && s.transport != "tcp" && s.transport != "shm" {
		return fmt.Errorf("dds: unknown transport %q", s.transport)
	}
	if s.transport == "shm" && s.allowMulticast {
		return fmt.Errorf("dds: shared-memory transport cannot multicast")
	}
	if s.fragmentSize > s.maxMessageSize {
		return fmt.Errorf("dds: FragmentSize exceeds MaxMessageSize")
	}
	if s.fragmentSize < 256 {
		return fmt.Errorf("dds: FragmentSize below minimum of 256")
	}
	if s.spdpInterval < 1 {
		return fmt.Errorf("dds: SPDPInterval must be positive")
	}
	if s.partIndex != "auto" && s.partIndex != "none" {
		return fmt.Errorf("dds: ParticipantIndex must be auto or none")
	}
	if s.maxAutoIndex < 0 {
		return fmt.Errorf("dds: MaxAutoParticipantIndex must be non-negative")
	}
	switch s.retransmit {
	case "never", "adaptive", "always":
	default:
		return fmt.Errorf("dds: unknown RetransmitMerging mode %q", s.retransmit)
	}
	switch s.verbosity {
	case "none", "warning", "fine", "finest":
	default:
		return fmt.Errorf("dds: unknown Verbosity %q", s.verbosity)
	}
	return nil
}

// Startup sites.
const (
	sBoot     = 100
	sTransprt = 101
	sDisc     = 102
	sInternal = 103
	sSecurity = 104
	sTracing  = 105
	sSynSecTr = 110
	sSynBatHB = 111
	sSynLivHB = 112
)

func (s settings) startupCoverage(tr *coverage.Trace) {
	for i := uint64(0); i < 14; i++ {
		tr.Edge(sBoot, i)
	}
	tr.Edge(sBoot, 16+uint64(s.domainID%32))
	tr.Edge(sTransprt, probes.Hash(s.transport)%4)
	tr.Edge(sTransprt, 8+probes.B(s.allowMulticast))
	tr.Edge(sTransprt, 16+probes.Bucket(s.maxMessageSize))
	tr.Edge(sTransprt, 32+probes.Bucket(s.fragmentSize))
	tr.Edge(sDisc, probes.Hash(s.partIndex)%2)
	tr.Edge(sDisc, 4+uint64(s.maxAutoIndex%16))
	tr.Edge(sDisc, 24+probes.Bucket(s.spdpInterval))
	tr.Edge(sInternal, probes.Bucket(s.heartbeat))
	tr.Edge(sInternal, 16+probes.Hash(s.retransmit)%4)
	if s.retransmit != "never" {
		tr.Edge(sInternal, 40)
		tr.Edge(sInternal, 41)
	}
	if s.retransmit == "adaptive" {
		tr.Edge(sInternal, 42) // adaptive merge window estimator
		tr.Edge(sInternal, 43)
	}
	tr.Edge(sInternal, 24+probes.Bucket(s.deliveryQueue))

	if s.writerBatching {
		for i := uint64(0); i < 5; i++ {
			tr.Edge(sInternal, 64+i)
		}
		tr.Edge(sSynBatHB, probes.Bucket(s.heartbeat))
	}
	if s.liveliness {
		for i := uint64(0); i < 5; i++ {
			tr.Edge(sInternal, 80+i)
		}
		tr.Edge(sSynLivHB, probes.Bucket(s.heartbeat))
	}
	if s.security {
		for i := uint64(0); i < 8; i++ {
			tr.Edge(sSecurity, i)
		}
		tr.Edge(sSynSecTr, probes.Hash(s.transport)%4)
	}
	if s.verbosity != "none" {
		for i := uint64(0); i < 4; i++ {
			tr.Edge(sTracing, i)
		}
		tr.Edge(sTracing, 8+probes.Hash(s.verbosity)%4)
		if s.verbosity == "fine" || s.verbosity == "finest" {
			tr.Edge(sTracing, 16) // per-packet trace sinks
			tr.Edge(sTracing, 17)
		}
		if s.verbosity == "finest" {
			tr.Edge(sTracing, 18) // payload hexdumps
		}
	}
}

// Message sites.
const (
	mHdrErr    = 200
	mHeader    = 201
	mSubmsg    = 210
	mData      = 220
	mInlineQos = 230
	mPayload   = 240
	mHeartbt   = 250
	mAckNack   = 260
	mGapOp     = 270
	mInfoOp    = 280
	mFragOp    = 290
	mSPDP      = 300
	mSEDP      = 310
	mSecOp     = 320
	mTraceOp   = 330
	mLiveOp    = 340
)

// hashSpace is the widest content family — DDS has the paper's largest
// branch space (≈29k for CycloneDDS), so its families are wide.
const hashSpace = 8192

// participant tracks one discovered remote participant.
type participant struct {
	lastSeq uint64
}

// Node is the CycloneDDS-like subject instance.
type Node struct {
	cfg          settings
	tr           *coverage.Trace
	participants map[uint64]*participant
	readers      map[uint32]uint64 // readerId -> highest seq acked
	frags        map[uint64][]bool
}

// NewNode returns an unstarted DDS node.
func NewNode() *Node {
	return &Node{
		participants: make(map[uint64]*participant),
		readers:      make(map[uint32]uint64),
		frags:        make(map[uint64][]bool),
	}
}

// Start implements subject.Instance.
func (n *Node) Start(cfg map[string]string, tr *coverage.Trace) error {
	st := parseSettings(cfg)
	if err := st.validate(); err != nil {
		return err
	}
	n.cfg = st
	n.tr = tr
	st.startupCoverage(tr)
	return nil
}

// SetTrace implements subject.Instance.
func (n *Node) SetTrace(tr *coverage.Trace) { n.tr = tr }

// NewSession implements subject.Instance. RTPS peers persist across
// datagrams; a session only resets fragment reassembly.
func (n *Node) NewSession() { n.frags = make(map[uint64][]bool) }

// Close implements subject.Instance.
func (n *Node) Close() {}

// Message handles one RTPS datagram.
func (n *Node) Message(data []byte) [][]byte {
	if n.cfg.maxMessageSize > 0 && len(data) > n.cfg.maxMessageSize {
		n.tr.Edge(mHdrErr, probes.Bucket(len(data)))
		return nil
	}
	r := wire.NewReader(data)
	magic := r.Bytes(4)
	major := r.U8()
	minor := r.U8()
	vendor := r.U16()
	guidPrefix := r.Bytes(12)
	if r.Err() != nil || string(magic) != "RTPS" {
		n.tr.Edge(mHdrErr, 64+probes.Bucket(len(data)))
		return nil
	}
	n.tr.Edge(mHeader, uint64(major)<<8|uint64(minor))
	n.tr.Edge(mHeader, 512+uint64(vendor%256))
	guid := probes.HashBytes(guidPrefix)
	n.tr.Edge(mHeader, 1024+guid%512)

	if n.cfg.security {
		// Security wrapper inspection per datagram.
		n.tr.Edge(mSecOp, probes.HashBytes(data)%4096)
	}
	if n.cfg.verbosity == "fine" || n.cfg.verbosity == "finest" {
		n.tr.Edge(mTraceOp, probes.Bucket(len(data)))
		n.tr.Edge(mTraceOp, 64+probes.HashBytes(data)%2048)
	}

	var out [][]byte
	count := 0
	for r.Remaining() >= 4 && count < 16 {
		count++
		id := r.U8()
		flags := r.U8()
		var length int
		if flags&0x01 != 0 {
			length = int(r.U16LE())
		} else {
			length = int(r.U16())
		}
		if length == 0 {
			length = r.Remaining() // 0 means "to end of message"
		}
		body := r.Bytes(length)
		if r.Err() != nil {
			n.tr.Edge(mSubmsg, 0)
			return out
		}
		n.tr.Edge(mSubmsg, uint64(id)<<4|uint64(flags&0x0f))
		n.tr.Edge(mSubmsg, 4096+probes.Bucket(length))
		le := flags&0x01 != 0

		switch id {
		case smData:
			out = append(out, n.handleData(body, flags, le, guid)...)
		case smDataFrag:
			n.handleDataFrag(body, le)
		case smHeartbeat:
			out = append(out, n.handleHeartbeat(body, le)...)
		case smAckNack:
			n.handleAckNack(body, le)
		case smGap:
			n.tr.Edge(mGapOp, probes.HashBytes(body)%1024)
			n.tr.Edge(mGapOp, 1024+probes.Bucket(length))
		case smInfoTS:
			n.tr.Edge(mInfoOp, probes.Bucket(len(body)))
			n.tr.Edge(mInfoOp, 512+probes.HashBytes(body)%512)
			if flags&0x02 != 0 {
				n.tr.Edge(mInfoOp, 64) // invalidate flag
			}
		case smInfoDst, smInfoSrc:
			n.tr.Edge(mInfoOp, 128+uint64(id)<<2|probes.Bucket(len(body))%4)
			n.tr.Edge(mInfoOp, 1024+probes.HashBytes(body)%512)
		case smPad:
			n.tr.Edge(mInfoOp, 256)
		default:
			n.tr.Edge(mSubmsg, 8192+uint64(id))
		}
	}
	return out
}

func readEntityID(r *wire.Reader) uint32 { return r.U32() }

func (n *Node) handleData(body []byte, flags byte, le bool, guid uint64) [][]byte {
	r := wire.NewReader(body)
	r.Skip(2) // extraFlags
	var inlineQosOff uint16
	if le {
		inlineQosOff = r.U16LE()
	} else {
		inlineQosOff = r.U16()
	}
	readerID := readEntityID(r)
	writerID := readEntityID(r)
	seqHi := r.U32()
	seqLo := r.U32()
	if r.Err() != nil {
		n.tr.Edge(mData, 0)
		return nil
	}
	seq := uint64(seqHi)<<32 | uint64(seqLo)
	n.tr.Edge(mData, 1+uint64(readerID%256))
	n.tr.Edge(mData, 300+uint64(writerID%256))
	n.tr.Edge(mData, 3000+uint64(readerID%32)<<5|uint64(writerID%32))
	n.tr.Edge(mData, 600+probes.Bucket(int(seqLo)))
	n.tr.Edge(mData, 700+uint64(inlineQosOff%16))

	// Inline QoS parameter list (flag Q).
	if flags&0x02 != 0 {
		n.parseParameterList(r, le, mInlineQos)
	}
	payload := r.Rest()
	n.tr.Edge(mPayload, probes.HashBytes(payload)%hashSpace)
	n.tr.Edge(mPayload, uint64(hashSpace)+probes.Bucket(len(payload)))

	switch writerID {
	case entitySPDPWriter:
		// SPDP participant announcement.
		p, known := n.participants[guid]
		n.tr.Edge(mSPDP, probes.B(known)<<10|guid%1024)
		n.tr.Edge(mSPDP, 4096+probes.HashBytes(payload)%1024)
		if !known {
			if len(n.participants) >= 64 {
				n.tr.Edge(mSPDP, 1024)
				return nil
			}
			p = &participant{}
			n.participants[guid] = p
		}
		p.lastSeq = seq
		// Respond with our own SPDP announcement.
		return [][]byte{n.spdpAnnouncement()}
	case entitySEDPPubW, entitySEDPSubW:
		n.tr.Edge(mSEDP, uint64(writerID%16)<<11|probes.HashBytes(payload)%2048)
		return nil
	default:
		// User data: reliable readers record the sequence.
		if cur, ok := n.readers[writerID]; !ok || seq > cur {
			n.readers[writerID] = seq
			n.tr.Edge(mData, 800+probes.Bucket(int(seq)))
		} else {
			n.tr.Edge(mData, 900) // duplicate/old sample
		}
		n.tr.Edge(mData, 1000+uint64(writerID%64)<<5|probes.Bucket(int(seqLo)))
		if n.cfg.liveliness {
			n.tr.Edge(mLiveOp, uint64(writerID%128))
			n.tr.Edge(mLiveOp, 128+probes.HashBytes(payload)%2048)
		}
		return nil
	}
}

// parseParameterList walks a PID/length parameter list (used by inline
// QoS and discovery payloads) — a rich branch family.
func (n *Node) parseParameterList(r *wire.Reader, le bool, site uint32) {
	for i := 0; i < 24 && r.Remaining() >= 4; i++ {
		var pid, plen uint16
		if le {
			pid = r.U16LE()
			plen = r.U16LE()
		} else {
			pid = r.U16()
			plen = r.U16()
		}
		if pid == 0x0001 { // PID_SENTINEL
			n.tr.Edge(site, 0xffff)
			return
		}
		val := r.Bytes(int(plen))
		if r.Err() != nil {
			n.tr.Edge(site, 0xfffe)
			return
		}
		n.tr.Edge(site, uint64(pid%512))
		n.tr.Edge(site, 512+uint64(pid%128)<<4|probes.Bucket(len(val))%16)
		n.tr.Edge(site, 3072+probes.HashBytes(val)%1024)
	}
}

func (n *Node) handleDataFrag(body []byte, le bool) {
	r := wire.NewReader(body)
	r.Skip(4)
	readerID := readEntityID(r)
	writerID := readEntityID(r)
	seq := uint64(r.U32())<<32 | uint64(r.U32())
	var fragNum uint32
	var fragsInSubmsg, fragSize uint16
	if le {
		fragNum = r.U32LE()
		fragsInSubmsg = r.U16LE()
		fragSize = r.U16LE()
	} else {
		fragNum = r.U32()
		fragsInSubmsg = r.U16()
		fragSize = r.U16()
	}
	if r.Err() != nil {
		n.tr.Edge(mFragOp, 0)
		return
	}
	_ = readerID
	n.tr.Edge(mFragOp, 1+uint64(fragNum%64))
	n.tr.Edge(mFragOp, 128+uint64(fragsInSubmsg%16))
	n.tr.Edge(mFragOp, 192+probes.Bucket(int(fragSize)))
	if int(fragSize) > n.cfg.fragmentSize {
		n.tr.Edge(mFragOp, 256)
		return
	}
	key := uint64(writerID)<<32 | seq&0xffffffff
	slots, ok := n.frags[key]
	if !ok {
		if len(n.frags) >= 128 {
			n.tr.Edge(mFragOp, 257)
			return
		}
		slots = make([]bool, 64)
		n.frags[key] = slots
	}
	if int(fragNum) < len(slots) {
		slots[fragNum] = true
		n.tr.Edge(mFragOp, 300+uint64(countTrue(slots)%32))
	}
	n.tr.Edge(mFragOp, 1024+probes.HashBytes(r.Rest())%1024)
}

func countTrue(b []bool) int {
	c := 0
	for _, v := range b {
		if v {
			c++
		}
	}
	return c
}

func (n *Node) handleHeartbeat(body []byte, le bool) [][]byte {
	r := wire.NewReader(body)
	readerID := readEntityID(r)
	writerID := readEntityID(r)
	firstSN := uint64(r.U32())<<32 | uint64(r.U32())
	lastSN := uint64(r.U32())<<32 | uint64(r.U32())
	count := r.U32()
	if r.Err() != nil {
		n.tr.Edge(mHeartbt, 0)
		return nil
	}
	n.tr.Edge(mHeartbt, 1+uint64(writerID%128))
	n.tr.Edge(mHeartbt, 256+probes.Bucket(int(lastSN-firstSN)))
	n.tr.Edge(mHeartbt, 300+uint64(count%32))
	n.tr.Edge(mHeartbt, 1024+probes.HashBytes(body)%1024)
	if firstSN > lastSN {
		n.tr.Edge(mHeartbt, 400) // invalid range
		return nil
	}
	acked := n.readers[writerID]
	if acked < lastSN {
		// Reliable reader: answer with an ACKNACK requesting the gap.
		n.tr.Edge(mAckNack, 512+probes.Bucket(int(lastSN-acked)))
		if n.cfg.retransmit == "adaptive" {
			n.tr.Edge(mAckNack, 600+uint64(count%8))
			n.tr.Edge(mAckNack, 8192+probes.HashBytes(body)%768)
		}
		return [][]byte{n.acknackMessage(readerID, writerID, acked+1)}
	}
	return nil
}

func (n *Node) handleAckNack(body []byte, le bool) {
	r := wire.NewReader(body)
	readerID := readEntityID(r)
	writerID := readEntityID(r)
	base := uint64(r.U32())<<32 | uint64(r.U32())
	numBits := r.U32()
	if r.Err() != nil {
		n.tr.Edge(mAckNack, 0)
		return
	}
	n.tr.Edge(mAckNack, 1+uint64(readerID%64))
	n.tr.Edge(mAckNack, 128+uint64(writerID%64))
	n.tr.Edge(mAckNack, 256+probes.Bucket(int(base)))
	n.tr.Edge(mAckNack, 300+uint64(numBits%32))
	if numBits > 256 {
		n.tr.Edge(mAckNack, 400)
		return
	}
	bitmapWords := (int(numBits) + 31) / 32
	for i := 0; i < bitmapWords && r.Remaining() >= 4; i++ {
		word := r.U32()
		n.tr.Edge(mAckNack, 2048+probes.HashBytes([]byte{byte(word), byte(word >> 8), byte(word >> 16), byte(word >> 24)})%1024)
	}
	if n.cfg.writerBatching {
		n.tr.Edge(mAckNack, 1024+uint64(numBits%16)) // merged retransmit batches
		n.tr.Edge(mAckNack, 4096+probes.HashBytes(body)%1024)
	}
}

// spdpAnnouncement builds this node's own SPDP DATA message.
func (n *Node) spdpAnnouncement() []byte {
	w := wire.NewWriter(64)
	w.Raw([]byte("RTPS"))
	w.U8(2)
	w.U8(2)
	w.U16(0x0110) // vendor: our stand-in id
	w.Raw(make([]byte, 12))
	// DATA submessage.
	body := wire.NewWriter(32)
	body.U16(0)
	body.U16(0)
	body.U32(0)
	body.U32(entitySPDPWriter)
	body.U32(0)
	body.U32(1)
	body.Raw([]byte("participant"))
	w.U8(smData)
	w.U8(0)
	w.U16(uint16(body.Len()))
	w.Raw(body.Bytes())
	return w.Bytes()
}

// acknackMessage builds an ACKNACK reply.
func (n *Node) acknackMessage(readerID, writerID uint32, base uint64) []byte {
	w := wire.NewWriter(48)
	w.Raw([]byte("RTPS"))
	w.U8(2)
	w.U8(2)
	w.U16(0x0110)
	w.Raw(make([]byte, 12))
	body := wire.NewWriter(24)
	body.U32(readerID)
	body.U32(writerID)
	body.U32(uint32(base >> 32))
	body.U32(uint32(base))
	body.U32(0) // numBits
	body.U32(1) // count
	w.U8(smAckNack)
	w.U8(0)
	w.U16(uint16(body.Len()))
	w.Raw(body.Bytes())
	return w.Bytes()
}

// ddsSubject implements subject.Subject.
type ddsSubject struct{}

// Subject returns the DDS evaluation subject.
func Subject() subject.Subject { return ddsSubject{} }

func (ddsSubject) Info() subject.Info {
	return subject.Info{
		Protocol:       "DDS",
		Implementation: "CycloneDDS",
		Transport:      subject.Datagram,
		Port:           7400,
	}
}

func (ddsSubject) ConfigInput() configspec.Input {
	return configspec.Input{
		Files: []configspec.File{{Name: "cyclonedds.xml", Content: xmlConfig}},
	}
}

func (ddsSubject) PitXML() string { return pitXML }

func (ddsSubject) NewInstance() subject.Instance { return NewNode() }
