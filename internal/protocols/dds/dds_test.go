package dds

import (
	"testing"

	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/wire"
)

func startNode(t *testing.T, cfg map[string]string) *Node {
	t.Helper()
	n := NewNode()
	if err := n.Start(cfg, coverage.NewTrace()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	n.SetTrace(coverage.NewTrace())
	n.NewSession()
	return n
}

// rtpsMessage wraps submessages in an RTPS header.
func rtpsMessage(subs ...[]byte) []byte {
	w := wire.NewWriter(64)
	w.Raw([]byte("RTPS"))
	w.U8(2)
	w.U8(2)
	w.U16(0x0101)
	w.Raw([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	for _, s := range subs {
		w.Raw(s)
	}
	return w.Bytes()
}

func submsg(id, flags byte, body []byte) []byte {
	w := wire.NewWriter(4 + len(body))
	w.U8(id)
	w.U8(flags)
	w.U16(uint16(len(body)))
	w.Raw(body)
	return w.Bytes()
}

func dataBody(writerID uint32, seq uint64, payload []byte) []byte {
	w := wire.NewWriter(24 + len(payload))
	w.U16(0)
	w.U16(0)
	w.U32(1) // readerId
	w.U32(writerID)
	w.U32(uint32(seq >> 32))
	w.U32(uint32(seq))
	w.Raw(payload)
	return w.Bytes()
}

func heartbeatBody(writerID uint32, first, last uint64, count uint32) []byte {
	w := wire.NewWriter(28)
	w.U32(1)
	w.U32(writerID)
	w.U32(uint32(first >> 32))
	w.U32(uint32(first))
	w.U32(uint32(last >> 32))
	w.U32(uint32(last))
	w.U32(count)
	return w.Bytes()
}

func TestConfigValidation(t *testing.T) {
	bad := []map[string]string{
		{keyTransport: "carrier-pigeon"},
		{keyTransport: "shm"}, // multicast defaults true
		{keyFragmentSize: "99999"},
		{keyFragmentSize: "16"},
		{keySPDPInterval: "0"},
		{keyPartIndex: "7"},
		{keyMaxAutoIndex: "-1"},
		{keyRetransmit: "sometimes"},
		{keyVerbosity: "shouting"},
	}
	for i, cfg := range bad {
		if err := NewNode().Start(cfg, coverage.NewTrace()); err == nil {
			t.Errorf("conflict %d accepted: %v", i, cfg)
		}
	}
	good := []map[string]string{
		nil,
		{keyTransport: "shm", keyAllowMulticast: "false"},
		{keySecurity: "true"},
		{keyVerbosity: "finest", keyWriterBatching: "true"},
	}
	for i, cfg := range good {
		if err := NewNode().Start(cfg, coverage.NewTrace()); err != nil {
			t.Errorf("valid config %d rejected: %v", i, err)
		}
	}
}

func TestXMLConfigExtractsToModel(t *testing.T) {
	items := configspec.Extract(Subject().ConfigInput())
	model := configmodel.Build(items)
	for _, key := range []string{keyAllowMulticast, keyMaxMessageSize, keyTransport, keySecurity, keyDomainID} {
		if _, ok := model.Get(key); !ok {
			t.Errorf("extracted model missing %q (have %v)", key, model.Names())
		}
	}
	// The extracted defaults must boot the node.
	cfg := model.Defaults()
	if err := NewNode().Start(map[string]string(cfg), coverage.NewTrace()); err != nil {
		t.Fatalf("extracted defaults fail startup: %v", err)
	}
}

func TestSPDPDiscovery(t *testing.T) {
	n := startNode(t, nil)
	msg := rtpsMessage(submsg(smData, 0, dataBody(entitySPDPWriter, 1, []byte("participant"))))
	resp := n.Message(msg)
	if len(resp) != 1 {
		t.Fatalf("SPDP responses = %d", len(resp))
	}
	if string(resp[0][:4]) != "RTPS" {
		t.Fatalf("response not RTPS: %x", resp[0][:4])
	}
	if len(n.participants) != 1 {
		t.Fatalf("participants = %d", len(n.participants))
	}
}

func TestUserDataTracking(t *testing.T) {
	n := startNode(t, nil)
	n.Message(rtpsMessage(submsg(smData, 0, dataBody(7, 5, []byte("x")))))
	if n.readers[7] != 5 {
		t.Fatalf("reader seq = %d", n.readers[7])
	}
	// Older sample does not regress.
	n.Message(rtpsMessage(submsg(smData, 0, dataBody(7, 3, []byte("y")))))
	if n.readers[7] != 5 {
		t.Fatalf("reader seq regressed to %d", n.readers[7])
	}
}

func TestHeartbeatTriggersAckNack(t *testing.T) {
	n := startNode(t, nil)
	n.Message(rtpsMessage(submsg(smData, 0, dataBody(7, 2, []byte("x")))))
	resp := n.Message(rtpsMessage(submsg(smHeartbeat, 0, heartbeatBody(7, 1, 9, 1))))
	if len(resp) != 1 {
		t.Fatalf("heartbeat responses = %d", len(resp))
	}
	// Caught-up reader stays silent.
	n.Message(rtpsMessage(submsg(smData, 0, dataBody(7, 9, []byte("z")))))
	resp = n.Message(rtpsMessage(submsg(smHeartbeat, 0, heartbeatBody(7, 1, 9, 2))))
	if resp != nil {
		t.Fatalf("caught-up reader acknacked: %d", len(resp))
	}
	// Invalid range ignored.
	if resp := n.Message(rtpsMessage(submsg(smHeartbeat, 0, heartbeatBody(7, 9, 1, 3)))); resp != nil {
		t.Fatal("invalid heartbeat range answered")
	}
}

func TestInlineQosParsing(t *testing.T) {
	n := startNode(t, nil)
	tr := coverage.NewTrace()
	n.SetTrace(tr)
	qos := []byte{
		0x00, 0x1d, 0x00, 0x04, 0, 0, 0, 1, // durability
		0x00, 0x01, 0x00, 0x00, // sentinel
	}
	body := dataBody(7, 6, append(qos, []byte("sample")...))
	before := tr.Count()
	n.Message(rtpsMessage(submsg(smData, 0x02, body)))
	if tr.Count() <= before {
		t.Fatal("inline qos parsing recorded no coverage")
	}
}

func TestDataFragReassemblyState(t *testing.T) {
	n := startNode(t, nil)
	fragBody := func(num uint32) []byte {
		w := wire.NewWriter(32)
		w.U16(0)
		w.U16(0)
		w.U32(1)
		w.U32(7)
		w.U32(0)
		w.U32(5)
		w.U32(num)
		w.U16(1)
		w.U16(512)
		w.Raw([]byte("frag"))
		return w.Bytes()
	}
	n.Message(rtpsMessage(submsg(smDataFrag, 0, fragBody(1))))
	n.Message(rtpsMessage(submsg(smDataFrag, 0, fragBody(2))))
	key := uint64(7)<<32 | 5
	slots := n.frags[key]
	if slots == nil || !slots[1] || !slots[2] {
		t.Fatalf("fragments not tracked: %v", slots)
	}
	// Oversized fragment rejected by FragmentSize config.
	big := func() []byte {
		w := wire.NewWriter(32)
		w.U16(0)
		w.U16(0)
		w.U32(1)
		w.U32(7)
		w.U32(0)
		w.U32(6)
		w.U32(1)
		w.U16(1)
		w.U16(9000)
		return w.Bytes()
	}()
	n.Message(rtpsMessage(submsg(smDataFrag, 0, big)))
	if _, ok := n.frags[uint64(7)<<32|6]; ok {
		t.Fatal("oversized fragment accepted")
	}
}

func TestMalformedSafe(t *testing.T) {
	n := startNode(t, nil)
	inputs := [][]byte{
		nil,
		[]byte("RTP"),
		[]byte("JUNKJUNKJUNKJUNKJUNKJUNK"),
		rtpsMessage(), // header only
		rtpsMessage([]byte{smData, 0, 0xff, 0xff}),
		rtpsMessage(submsg(smData, 0, []byte{1, 2})),
		rtpsMessage(submsg(smHeartbeat, 0, []byte{0})),
		rtpsMessage(submsg(smAckNack, 0, []byte{0, 1})),
		rtpsMessage(submsg(0x77, 0, []byte("unknown"))),
	}
	for _, in := range inputs {
		n.Message(in) // must not panic
	}
}

func TestMaxMessageSizeEnforced(t *testing.T) {
	n := startNode(t, map[string]string{keyMaxMessageSize: "2048", keyFragmentSize: "1024"})
	big := make([]byte, 4096)
	copy(big, "RTPS")
	if resp := n.Message(big); resp != nil {
		t.Fatal("oversized message processed")
	}
}

func TestSecurityRegionGated(t *testing.T) {
	run := func(cfg map[string]string) int {
		n := startNode(t, cfg)
		tr := coverage.NewTrace()
		n.SetTrace(tr)
		n.Message(rtpsMessage(submsg(smData, 0, dataBody(7, 1, []byte("x")))))
		return tr.Count()
	}
	plain := run(nil)
	secure := run(map[string]string{keySecurity: "true"})
	if secure <= plain {
		t.Fatalf("security region not gated: plain=%d secure=%d", plain, secure)
	}
}

func TestLittleEndianSubmessage(t *testing.T) {
	n := startNode(t, nil)
	// DATA with LE flag: length and fields little-endian.
	body := wire.NewWriter(24)
	body.U16LE(0)
	body.U16LE(0)
	body.U32(1)
	body.U32(7)
	body.U32(0)
	body.U32(8)
	w := wire.NewWriter(64)
	w.Raw([]byte("RTPS"))
	w.U8(2)
	w.U8(2)
	w.U16(0x0101)
	w.Raw(make([]byte, 12))
	w.U8(smData)
	w.U8(0x01) // endianness flag
	w.U16LE(uint16(body.Len()))
	w.Raw(body.Bytes())
	n.Message(w.Bytes())
	if n.readers[7] != 8 {
		t.Fatalf("LE data not handled: %v", n.readers)
	}
}

func TestPitParses(t *testing.T) {
	pit, err := fuzz.ParsePit(Subject().PitXML())
	if err != nil {
		t.Fatal(err)
	}
	if len(pit.DataModels) != 7 {
		t.Fatalf("data models = %d", len(pit.DataModels))
	}
	if len(pit.StateModels["DDSDiscovery"].Paths(10, 32)) < 3 {
		t.Fatal("too few discovery paths")
	}
}
