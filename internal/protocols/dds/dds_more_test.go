package dds

import (
	"testing"
	"testing/quick"

	"strings"

	"cmfuzz/internal/coverage"
	"cmfuzz/internal/wire"
)

func TestParticipantTableBounded(t *testing.T) {
	n := startNode(t, nil)
	for i := 0; i < 200; i++ {
		msg := rtpsMessage(submsg(smData, 0, dataBody(entitySPDPWriter, uint64(i+1), []byte("p"))))
		// Vary the GUID prefix so every announcement is a new participant.
		msg[8] = byte(i)
		msg[9] = byte(i >> 8)
		n.Message(msg)
	}
	if len(n.participants) > 64 {
		t.Fatalf("participant table unbounded: %d", len(n.participants))
	}
}

func TestParticipantReannounceUpdatesSeq(t *testing.T) {
	n := startNode(t, nil)
	msg1 := rtpsMessage(submsg(smData, 0, dataBody(entitySPDPWriter, 1, []byte("p"))))
	msg2 := rtpsMessage(submsg(smData, 0, dataBody(entitySPDPWriter, 9, []byte("p"))))
	n.Message(msg1)
	n.Message(msg2)
	if len(n.participants) != 1 {
		t.Fatalf("participants = %d, want 1 (same guid)", len(n.participants))
	}
	for _, p := range n.participants {
		if p.lastSeq != 9 {
			t.Fatalf("lastSeq = %d", p.lastSeq)
		}
	}
}

func TestMultipleSubmessagesPerMessage(t *testing.T) {
	n := startNode(t, nil)
	msg := rtpsMessage(
		submsg(smInfoTS, 0, []byte{0, 1, 2, 3, 4, 5, 6, 7}),
		submsg(smData, 0, dataBody(7, 3, []byte("x"))),
		submsg(smHeartbeat, 0, heartbeatBody(7, 1, 3, 1)),
	)
	n.Message(msg) // data seq 3 == heartbeat last 3: no acknack
	if n.readers[7] != 3 {
		t.Fatalf("seq = %d", n.readers[7])
	}
}

func TestZeroLengthSubmessageRunsToEnd(t *testing.T) {
	n := startNode(t, nil)
	// octetsToNextHeader 0 means "to end of message" (RTPS).
	body := dataBody(7, 4, []byte("tail"))
	msg := rtpsMessage()
	msg = append(msg, smData, 0x00, 0x00, 0x00)
	msg = append(msg, body...)
	n.Message(msg)
	if n.readers[7] != 4 {
		t.Fatalf("zero-length submessage not handled: %v", n.readers)
	}
}

func TestGapAndPadHandled(t *testing.T) {
	n := startNode(t, nil)
	tr := coverage.NewTrace()
	n.SetTrace(tr)
	n.Message(rtpsMessage(
		submsg(smPad, 0, nil),
		submsg(smGap, 0, []byte{0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 3}),
	))
	if tr.Count() == 0 {
		t.Fatal("gap/pad produced no coverage")
	}
}

func TestAckNackBitmapGuard(t *testing.T) {
	n := startNode(t, nil)
	body := func(numBits uint32) []byte {
		w := wire.NewWriter(32)
		w.U32(1)
		w.U32(7)
		w.U32(0)
		w.U32(4)
		w.U32(numBits)
		w.U32(0xffffffff)
		return w.Bytes()
	}
	n.Message(rtpsMessage(submsg(smAckNack, 0, body(8))))
	n.Message(rtpsMessage(submsg(smAckNack, 0, body(100000)))) // guarded
}

func TestFragTableBounded(t *testing.T) {
	n := startNode(t, nil)
	for i := 0; i < 300; i++ {
		w := wire.NewWriter(32)
		w.U16(0)
		w.U16(0)
		w.U32(1)
		w.U32(uint32(i)) // distinct writer per fragment stream
		w.U32(0)
		w.U32(5)
		w.U32(1)
		w.U16(1)
		w.U16(512)
		n.Message(rtpsMessage(submsg(smDataFrag, 0, w.Bytes())))
	}
	if len(n.frags) > 128 {
		t.Fatalf("fragment table unbounded: %d", len(n.frags))
	}
}

// Property: Message never panics on arbitrary datagrams.
func TestQuickMessageTotal(t *testing.T) {
	n := startNode(t, map[string]string{keySecurity: "true"})
	f := func(data []byte) bool {
		// Prefix half the inputs with a valid header to reach submessage
		// parsing.
		if len(data) > 2 && data[0]%2 == 0 {
			data = append([]byte("RTPS\x02\x02\x01\x01aabbccddeeff"), data...)
		}
		n.Message(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumValuesExtractedFromComments(t *testing.T) {
	// The XML comments documenting allowed values must surface as
	// candidates, or scheduling can never enable the finer modes.
	sub := Subject()
	input := sub.ConfigInput()
	if len(input.Files) != 1 {
		t.Fatal("expected one config file")
	}
	if !strings.Contains(input.Files[0].Content, "one of: none, warning, fine, finest") {
		t.Fatal("verbosity enum comment missing from cyclonedds.xml")
	}
	if !strings.Contains(input.Files[0].Content, "one of: never, adaptive, always") {
		t.Fatal("retransmit enum comment missing")
	}
}
