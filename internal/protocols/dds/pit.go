package dds

// pitXML is the DDS/RTPS Pit document: SPDP discovery DATA, user DATA
// (with and without inline QoS), HEARTBEAT, ACKNACK, DATA_FRAG, GAP and
// INFO_TS submessages, each wrapped in an RTPS header, plus a discovery →
// publish → reliability-handshake state model.
const pitXML = `<?xml version="1.0"?>
<Peach>
  <DataModel name="SPDPAnnounce">
    <String name="magic" value="RTPS" token="true"/>
    <Number name="pmaj" bits="8" value="2"/>
    <Number name="pmin" bits="8" value="2"/>
    <Number name="vendor" bits="16" value="257"/>
    <Blob name="guid" valueHex="0102030405060708090a0b0c"/>
    <Number name="smid" bits="8" value="21" token="true"/>
    <Number name="smflags" bits="8" value="0"/>
    <Number name="smlen" bits="16" sizeOf="smbody"/>
    <Block name="smbody">
      <Number name="extra" bits="16" value="0"/>
      <Number name="qosoff" bits="16" value="0"/>
      <Number name="reader" bits="32" value="0"/>
      <Number name="writer" bits="32" value="65730" token="true"/>
      <Number name="seqhi" bits="32" value="0"/>
      <Number name="seqlo" bits="32" value="1"/>
      <Blob name="pdata" valueHex="500015000c000102030405060708090a0b0c01000000"/>
    </Block>
  </DataModel>
  <DataModel name="UserData">
    <String name="magic" value="RTPS" token="true"/>
    <Number name="pmaj" bits="8" value="2"/>
    <Number name="pmin" bits="8" value="2"/>
    <Number name="vendor" bits="16" value="257"/>
    <Blob name="guid" valueHex="0102030405060708090a0b0c"/>
    <Number name="smid" bits="8" value="21" token="true"/>
    <Number name="smflags" bits="8" value="0"/>
    <Number name="smlen" bits="16" sizeOf="smbody"/>
    <Block name="smbody">
      <Number name="extra" bits="16" value="0"/>
      <Number name="qosoff" bits="16" value="0"/>
      <Number name="reader" bits="32" value="1"/>
      <Choice name="writer">
        <Number name="w7" bits="32" value="7"/>
        <Number name="w9" bits="32" value="9"/>
        <Number name="w11" bits="32" value="11"/>
        <Number name="sedppub" bits="32" value="962"/>
        <Number name="sedpsub" bits="32" value="1218"/>
      </Choice>
      <Number name="seqhi" bits="32" value="0"/>
      <Number name="seqlo" bits="32" value="2"/>
      <Blob name="sample" valueHex="0003000074656d703a32312e35"/>
    </Block>
  </DataModel>
  <DataModel name="UserDataQos">
    <String name="magic" value="RTPS" token="true"/>
    <Number name="pmaj" bits="8" value="2"/>
    <Number name="pmin" bits="8" value="2"/>
    <Number name="vendor" bits="16" value="257"/>
    <Blob name="guid" valueHex="0102030405060708090a0b0c"/>
    <Number name="smid" bits="8" value="21" token="true"/>
    <Number name="smflags" bits="8" value="2"/>
    <Number name="smlen" bits="16" sizeOf="smbody"/>
    <Block name="smbody">
      <Number name="extra" bits="16" value="0"/>
      <Number name="qosoff" bits="16" value="16"/>
      <Number name="reader" bits="32" value="1"/>
      <Number name="writer" bits="32" value="7"/>
      <Number name="seqhi" bits="32" value="0"/>
      <Number name="seqlo" bits="32" value="3"/>
      <Block name="qos">
        <Choice name="pid1">
          <Number name="durability" bits="16" value="29"/>
          <Number name="reliability" bits="16" value="26"/>
          <Number name="history" bits="16" value="64"/>
          <Number name="deadline" bits="16" value="35"/>
        </Choice>
        <Number name="plen1" bits="16" value="4"/>
        <Number name="pval1" bits="32" value="1"/>
        <Number name="sentinel" bits="16" value="1" token="true"/>
        <Number name="slen" bits="16" value="0" token="true"/>
      </Block>
      <Blob name="sample" valueHex="00030000"/>
    </Block>
  </DataModel>
  <DataModel name="Heartbeat">
    <String name="magic" value="RTPS" token="true"/>
    <Number name="pmaj" bits="8" value="2"/>
    <Number name="pmin" bits="8" value="2"/>
    <Number name="vendor" bits="16" value="257"/>
    <Blob name="guid" valueHex="0102030405060708090a0b0c"/>
    <Number name="smid" bits="8" value="7" token="true"/>
    <Number name="smflags" bits="8" value="0"/>
    <Number name="smlen" bits="16" sizeOf="smbody"/>
    <Block name="smbody">
      <Number name="reader" bits="32" value="1"/>
      <Number name="writer" bits="32" value="7"/>
      <Number name="firsthi" bits="32" value="0"/>
      <Number name="firstlo" bits="32" value="1"/>
      <Number name="lasthi" bits="32" value="0"/>
      <Number name="lastlo" bits="32" value="9"/>
      <Number name="count" bits="32" value="1"/>
    </Block>
  </DataModel>
  <DataModel name="AckNack">
    <String name="magic" value="RTPS" token="true"/>
    <Number name="pmaj" bits="8" value="2"/>
    <Number name="pmin" bits="8" value="2"/>
    <Number name="vendor" bits="16" value="257"/>
    <Blob name="guid" valueHex="0102030405060708090a0b0c"/>
    <Number name="smid" bits="8" value="6" token="true"/>
    <Number name="smflags" bits="8" value="0"/>
    <Number name="smlen" bits="16" sizeOf="smbody"/>
    <Block name="smbody">
      <Number name="reader" bits="32" value="1"/>
      <Number name="writer" bits="32" value="7"/>
      <Number name="basehi" bits="32" value="0"/>
      <Number name="baselo" bits="32" value="4"/>
      <Number name="numbits" bits="32" value="8"/>
      <Number name="bitmap" bits="32" value="4278190080"/>
      <Number name="count" bits="32" value="2"/>
    </Block>
  </DataModel>
  <DataModel name="DataFrag">
    <String name="magic" value="RTPS" token="true"/>
    <Number name="pmaj" bits="8" value="2"/>
    <Number name="pmin" bits="8" value="2"/>
    <Number name="vendor" bits="16" value="257"/>
    <Blob name="guid" valueHex="0102030405060708090a0b0c"/>
    <Number name="smid" bits="8" value="22" token="true"/>
    <Number name="smflags" bits="8" value="0"/>
    <Number name="smlen" bits="16" sizeOf="smbody"/>
    <Block name="smbody">
      <Number name="extra" bits="16" value="0"/>
      <Number name="qosoff" bits="16" value="0"/>
      <Number name="reader" bits="32" value="1"/>
      <Number name="writer" bits="32" value="7"/>
      <Number name="seqhi" bits="32" value="0"/>
      <Number name="seqlo" bits="32" value="5"/>
      <Choice name="fragnum">
        <Number name="f1" bits="32" value="1"/>
        <Number name="f2" bits="32" value="2"/>
        <Number name="f9" bits="32" value="9"/>
      </Choice>
      <Number name="frags" bits="16" value="1"/>
      <Number name="fragsize" bits="16" value="1024"/>
      <Blob name="fragment" valueHex="aabbccddeeff"/>
    </Block>
  </DataModel>
  <DataModel name="InfoTS">
    <String name="magic" value="RTPS" token="true"/>
    <Number name="pmaj" bits="8" value="2"/>
    <Number name="pmin" bits="8" value="2"/>
    <Number name="vendor" bits="16" value="257"/>
    <Blob name="guid" valueHex="0102030405060708090a0b0c"/>
    <Number name="smid" bits="8" value="9" token="true"/>
    <Number name="smflags" bits="8" value="0"/>
    <Number name="smlen" bits="16" sizeOf="ts"/>
    <Blob name="ts" valueHex="0011223344556677"/>
    <Number name="smid2" bits="8" value="8" token="true"/>
    <Number name="smflags2" bits="8" value="0"/>
    <Number name="smlen2" bits="16" sizeOf="gap"/>
    <Blob name="gap" valueHex="000000010000000700000000000000030000000000000004"/>
  </DataModel>
  <StateModel name="DDSDiscovery" initialState="discover">
    <State name="discover">
      <Action type="output" dataModel="SPDPAnnounce"/>
      <Action type="input"/>
      <Action type="changeState" to="publishing"/>
      <Action type="changeState" to="reliable"/>
    </State>
    <State name="publishing">
      <Action type="output" dataModel="UserData"/>
      <Action type="output" dataModel="UserDataQos"/>
      <Action type="changeState" to="reliable"/>
      <Action type="changeState" to="fragmented"/>
    </State>
    <State name="reliable">
      <Action type="output" dataModel="Heartbeat"/>
      <Action type="output" dataModel="AckNack"/>
      <Action type="changeState" to="publishing"/>
      <Action type="changeState" to="timestamps"/>
    </State>
    <State name="fragmented">
      <Action type="output" dataModel="DataFrag"/>
      <Action type="output" dataModel="DataFrag"/>
      <Action type="changeState" to="timestamps"/>
    </State>
    <State name="timestamps">
      <Action type="output" dataModel="InfoTS"/>
    </State>
  </StateModel>
</Peach>`
