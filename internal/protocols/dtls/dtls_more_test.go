package dtls

import (
	"testing"
	"testing/quick"

	"cmfuzz/internal/coverage"
)

func TestMTUDropsOversizedRecordBody(t *testing.T) {
	s := startServer(t, map[string]string{"mtu": "256"})
	big := record(ctHandshake, make([]byte, 512))
	if resp := s.Message(big); resp != nil {
		t.Fatalf("oversized record processed: %d responses", len(resp))
	}
}

func TestMultipleRecordsPerDatagram(t *testing.T) {
	s := startServer(t, map[string]string{"no-cookie": "true"})
	// ClientHello + ClientKeyExchange coalesced into one datagram.
	datagram := append(clientHello(nil), record(ctHandshake, handshakeMsg(hsClientKeyExchange, []byte("k")))...)
	resp := s.Message(datagram)
	if len(resp) < 2 {
		t.Fatalf("coalesced records produced %d responses", len(resp))
	}
	if s.state != stateKeyExchanged {
		t.Fatalf("state = %d, want key-exchanged", s.state)
	}
}

func TestWrongVersionRecordSkipped(t *testing.T) {
	s := startServer(t, nil)
	bad := record(ctHandshake, handshakeMsg(hsClientHello, []byte{0xfe, 0xfd}))
	bad[1], bad[2] = 0x03, 0x03 // TLS 1.2 version in a DTLS record
	if resp := s.Message(bad); resp != nil {
		t.Fatalf("wrong-version record answered: %v", resp)
	}
}

func TestFinishedRequiresCCS(t *testing.T) {
	s := startServer(t, map[string]string{"no-cookie": "true"})
	s.Message(clientHello(nil))
	s.Message(record(ctHandshake, handshakeMsg(hsClientKeyExchange, []byte("k"))))
	// Finished without ChangeCipherSpec: epoch still 0 → rejected.
	if resp := s.Message(record(ctHandshake, handshakeMsg(hsFinished, []byte("v")))); resp != nil {
		t.Fatal("finished accepted before CCS")
	}
	if s.state == stateFinished {
		t.Fatal("handshake completed without CCS")
	}
}

func TestKeyExchangeRequiresHelloDone(t *testing.T) {
	s := startServer(t, nil)
	s.Message(record(ctHandshake, handshakeMsg(hsClientKeyExchange, []byte("k"))))
	if s.state != stateInit {
		t.Fatal("key exchange advanced state without hello")
	}
}

func TestNewSessionResetsHandshake(t *testing.T) {
	s := startServer(t, map[string]string{"no-cookie": "true"})
	s.Message(clientHello(nil))
	s.Message(record(ctHandshake, handshakeMsg(hsClientKeyExchange, []byte("k"))))
	s.Message(record(ctChangeCipherSpec, []byte{1}))
	s.Message(record(ctHandshake, handshakeMsg(hsFinished, []byte("v"))))
	if s.state != stateFinished {
		t.Fatal("handshake did not complete")
	}
	s.NewSession()
	if s.state != stateInit || s.epoch != 0 {
		t.Fatal("NewSession did not reset handshake state")
	}
}

func TestCookieDependsOnConfig(t *testing.T) {
	a := startServer(t, map[string]string{"cipher": "AES128-SHA"})
	b := startServer(t, map[string]string{"cipher": "CHACHA20"})
	if a.cookieValue() == b.cookieValue() {
		t.Fatal("cookie not bound to configuration")
	}
}

// Property: Message never panics on arbitrary datagrams (DTLS has no
// seeded bugs, so no typed crashes either).
func TestQuickMessageTotal(t *testing.T) {
	s := startServer(t, map[string]string{"no-cookie": "true", "session-tickets": "true"})
	s.SetTrace(coverage.NewTrace())
	f := func(data []byte) bool {
		s.Message(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestCipherIDs(t *testing.T) {
	names := []string{"AES128-SHA", "AES256-GCM", "CHACHA20", "PSK-AES128"}
	seen := map[uint16]bool{}
	for _, n := range names {
		id := cipherID(n)
		if id == 0 || seen[id] {
			t.Fatalf("cipherID(%s) = %#x invalid or duplicate", n, id)
		}
		seen[id] = true
	}
	if cipherID("NULL") != 0 {
		t.Fatal("unknown cipher has nonzero id")
	}
}
