// Package dtls implements an OpenSSL-s_server-like DTLS 1.2 endpoint used
// as the DTLS subject: record layer parsing, cookie exchange, a handshake
// state machine with toy cryptography, fragmentation handling, and
// optional session tickets / renegotiation / PSK features. The paper
// found no new bugs here and reports modest coverage improvement ("DTLS
// relies on fixed cryptographic settings"), which this subject mirrors
// with a comparatively small configuration-gated region.
package dtls

import (
	"fmt"

	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/protocols/probes"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/wire"
)

// Record content types.
const (
	ctChangeCipherSpec = 20
	ctAlert            = 21
	ctHandshake        = 22
	ctApplicationData  = 23
)

// Handshake message types.
const (
	hsClientHello        = 1
	hsServerHello        = 2
	hsHelloVerifyRequest = 3
	hsCertificate        = 11
	hsServerKeyExchange  = 12
	hsCertificateRequest = 13
	hsServerHelloDone    = 14
	hsCertificateVerify  = 15
	hsClientKeyExchange  = 16
	hsFinished           = 20
)

// Handshake states.
const (
	stateInit = iota
	stateCookieSent
	stateHelloDone
	stateKeyExchanged
	stateFinished
)

// cliHelp is the s_server-style option documentation.
const cliHelp = `Usage: dtls-server [options]
  -p, --port PORT           listen port (default: 4433)
  --cipher LIST             cipher preference, one of: AES128-SHA, AES256-GCM, CHACHA20, PSK-AES128
  --psk KEY                 pre-shared key (hex), one of: 1a2b3c4d, deadbeef
  --cert FILE               server certificate (default: /etc/dtls/server.crt)
  --key FILE                server private key (default: /etc/dtls/server.key)
  --verify-peer             request and verify a client certificate
  --no-cookie               disable the stateless cookie exchange
  --mtu BYTES               path MTU for fragmentation (default: 1400)
  --session-tickets         enable RFC 5077 session tickets
  --renegotiation           allow secure renegotiation
  --compression             enable record compression
  --min-version VER         lowest version, one of: dtls1, dtls1.2
  --timeout SECONDS         retransmission timeout (default: 1)
`

type settings struct {
	port       int
	cipher     string
	psk        string
	certFile   string
	keyFile    string
	verifyPeer bool
	noCookie   bool
	mtu        int
	tickets    bool
	reneg      bool
	compress   bool
	minVersion string
	timeout    int
}

func parseSettings(cfg map[string]string) settings {
	return settings{
		port:       probes.Int(cfg, "port", 4433),
		cipher:     probes.Str(cfg, "cipher", "AES128-SHA"),
		psk:        probes.Str(cfg, "psk", ""),
		certFile:   probes.Str(cfg, "cert", "/etc/dtls/server.crt"),
		keyFile:    probes.Str(cfg, "key", "/etc/dtls/server.key"),
		verifyPeer: probes.Bool(cfg, "verify-peer", false),
		noCookie:   probes.Bool(cfg, "no-cookie", false),
		mtu:        probes.Int(cfg, "mtu", 1400),
		tickets:    probes.Bool(cfg, "session-tickets", false),
		reneg:      probes.Bool(cfg, "renegotiation", false),
		compress:   probes.Bool(cfg, "compression", false),
		minVersion: probes.Str(cfg, "min-version", "dtls1.2"),
		timeout:    probes.Int(cfg, "timeout", 1),
	}
}

func (s settings) validate() error {
	switch s.cipher {
	case "AES128-SHA", "AES256-GCM", "CHACHA20":
	case "PSK-AES128":
		if s.psk == "" {
			return fmt.Errorf("dtls: PSK cipher requires --psk")
		}
	default:
		return fmt.Errorf("dtls: unknown cipher %q", s.cipher)
	}
	if s.compress && s.cipher == "AES256-GCM" {
		return fmt.Errorf("dtls: compression is incompatible with AEAD ciphers")
	}
	if s.mtu != 0 && (s.mtu < 256 || s.mtu > 9000) {
		return fmt.Errorf("dtls: mtu out of range")
	}
	if s.minVersion != "dtls1" && s.minVersion != "dtls1.2" {
		return fmt.Errorf("dtls: unknown min-version %q", s.minVersion)
	}
	if s.timeout < 1 {
		return fmt.Errorf("dtls: timeout must be positive")
	}
	return nil
}

// Startup sites.
const (
	sBoot    = 100
	sCipher  = 101
	sCert    = 102
	sPSK     = 103
	sVerify  = 104
	sTickets = 105
	sReneg   = 106
	sSynPSKC = 110
	sSynVerT = 111
)

func (s settings) startupCoverage(tr *coverage.Trace) {
	for i := uint64(0); i < 11; i++ {
		tr.Edge(sBoot, i)
	}
	tr.Edge(sBoot, 16+probes.Bucket(s.port))
	tr.Edge(sBoot, 32+probes.Bucket(s.mtu))
	tr.Edge(sBoot, 48+probes.Bucket(s.timeout))
	tr.Edge(sCipher, probes.Hash(s.cipher)%8)
	tr.Edge(sCert, probes.Hash(s.certFile)%4)
	tr.Edge(sCert, 8+probes.Hash(s.keyFile)%4)
	tr.Edge(sBoot, 64+probes.Hash(s.minVersion)%2)
	tr.Edge(sBoot, 72+probes.B(s.noCookie))
	tr.Edge(sBoot, 80+probes.B(s.compress))

	if s.psk != "" {
		for i := uint64(0); i < 6; i++ {
			tr.Edge(sPSK, i)
		}
		if s.cipher == "PSK-AES128" {
			for i := uint64(0); i < 5; i++ {
				tr.Edge(sSynPSKC, i) // PSK identity hint wiring
			}
		}
	}
	if s.verifyPeer {
		for i := uint64(0); i < 7; i++ {
			tr.Edge(sVerify, i)
		}
		if s.tickets {
			for i := uint64(0); i < 4; i++ {
				tr.Edge(sSynVerT, i) // client identity in tickets
			}
		}
	}
	if s.tickets {
		for i := uint64(0); i < 6; i++ {
			tr.Edge(sTickets, i)
		}
	}
	if s.reneg {
		for i := uint64(0); i < 5; i++ {
			tr.Edge(sReneg, i)
		}
	}
}

// Message sites.
const (
	mRecord    = 200
	mBadRecord = 201
	mHandshake = 210
	mHello     = 220
	mCookie    = 230
	mCipherSel = 240
	mExt       = 250
	mKeyEx     = 260
	mCCS       = 270
	mFin       = 280
	mAppData   = 290
	mAlert     = 300
	mFrag      = 310
	mTicketOp  = 320
	mRenegOp   = 330
)

const hashSpace = 512

// Server is the DTLS subject instance.
type Server struct {
	cfg    settings
	tr     *coverage.Trace
	state  int
	cookie byte
	epoch  uint16
}

// NewServer returns an unstarted DTLS endpoint.
func NewServer() *Server { return &Server{} }

// Start implements subject.Instance.
func (s *Server) Start(cfg map[string]string, tr *coverage.Trace) error {
	st := parseSettings(cfg)
	if err := st.validate(); err != nil {
		return err
	}
	s.cfg = st
	s.tr = tr
	st.startupCoverage(tr)
	return nil
}

// SetTrace implements subject.Instance.
func (s *Server) SetTrace(tr *coverage.Trace) { s.tr = tr }

// NewSession implements subject.Instance.
func (s *Server) NewSession() {
	s.state = stateInit
	s.epoch = 0
}

// Close implements subject.Instance.
func (s *Server) Close() {}

// Message handles one DTLS record datagram (possibly several records).
func (s *Server) Message(data []byte) [][]byte {
	var out [][]byte
	r := wire.NewReader(data)
	records := 0
	for !r.Empty() && records < 8 {
		records++
		ct := r.U8()
		ver := r.U16()
		epoch := r.U16()
		seqHi := r.U32()
		seqLo := r.U16()
		length := r.U16()
		body := r.Bytes(int(length))
		if r.Err() != nil {
			s.tr.Edge(mBadRecord, probes.Bucket(len(data)))
			return out
		}
		_ = seqHi
		s.tr.Edge(mRecord, uint64(ct))
		s.tr.Edge(mRecord, 256+uint64(ver%16))
		s.tr.Edge(mRecord, 300+uint64(epoch%4)<<4|probes.Bucket(int(seqLo)))
		s.tr.Edge(mRecord, 1024+probes.HashBytes(body)%1536)
		if ver != 0xfefd && ver != 0xfeff {
			s.tr.Edge(mBadRecord, 64+uint64(ver%32))
			continue
		}
		if s.cfg.mtu > 0 && len(body) > s.cfg.mtu {
			s.tr.Edge(mFrag, probes.Bucket(len(body)))
			continue
		}
		switch ct {
		case ctHandshake:
			out = append(out, s.handleHandshake(body)...)
		case ctChangeCipherSpec:
			s.tr.Edge(mCCS, probes.B(s.state >= stateKeyExchanged))
			if s.state >= stateKeyExchanged {
				s.epoch++
			}
		case ctAlert:
			if len(body) >= 2 {
				// level (valid: 1 warning / 2 fatal, else bucket) × description
				s.tr.Edge(mAlert, uint64(body[0]%4)<<8|uint64(body[1]))
			} else {
				s.tr.Edge(mAlert, 0xffff)
			}
		case ctApplicationData:
			s.tr.Edge(mAppData, probes.B(s.state == stateFinished))
			if s.state == stateFinished {
				s.tr.Edge(mAppData, 2+probes.HashBytes(body)%hashSpace)
				// Echo "decrypted" data back.
				out = append(out, record(ctApplicationData, body))
			}
		default:
			s.tr.Edge(mBadRecord, 128+uint64(ct))
		}
	}
	return out
}

func (s *Server) handleHandshake(body []byte) [][]byte {
	r := wire.NewReader(body)
	u24 := func() uint32 {
		b := r.Bytes(3)
		if len(b) < 3 {
			return 0
		}
		return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
	}
	msgType := r.U8()
	length := u24()
	msgSeq := r.U16()
	fragOff := u24()
	fragLen := u24()
	if r.Err() != nil {
		s.tr.Edge(mHandshake, 0)
		return nil
	}
	s.tr.Edge(mHandshake, 1+uint64(msgType))
	s.tr.Edge(mHandshake, 64+probes.Bucket(int(length)))
	s.tr.Edge(mHandshake, 96+uint64(msgSeq%16))
	if fragOff != 0 || fragLen != length {
		// Fragmented handshake message region.
		s.tr.Edge(mFrag, 64+probes.Bucket(int(fragOff))<<3|probes.Bucket(int(fragLen))%8)
	}

	switch msgType {
	case hsClientHello:
		return s.handleClientHello(r)
	case hsClientKeyExchange:
		s.tr.Edge(mKeyEx, probes.B(s.state == stateHelloDone))
		if s.state == stateHelloDone {
			s.tr.Edge(mKeyEx, 2+probes.HashBytes(r.Rest())%64)
			s.state = stateKeyExchanged
		}
		return nil
	case hsFinished:
		s.tr.Edge(mFin, probes.B(s.state == stateKeyExchanged)<<1|probes.B(s.epoch > 0))
		if s.state == stateKeyExchanged && s.epoch > 0 {
			s.state = stateFinished
			var out [][]byte
			out = append(out, record(ctChangeCipherSpec, []byte{1}))
			out = append(out, record(ctHandshake, handshakeMsg(hsFinished, []byte("server-fin"))))
			if s.cfg.tickets {
				s.tr.Edge(mTicketOp, probes.Hash(s.cfg.cipher)%16)
				s.tr.Edge(mTicketOp, 16+probes.HashBytes(body)%1024)
				out = append(out, record(ctHandshake, handshakeMsg(4 /* NewSessionTicket */, []byte("ticket"))))
			}
			return out
		}
		return nil
	case hsCertificateVerify:
		s.tr.Edge(mKeyEx, 128+probes.B(s.cfg.verifyPeer))
		return nil
	case hsCertificate:
		s.tr.Edge(mKeyEx, 130+probes.B(s.cfg.verifyPeer)<<1|probes.B(r.Remaining() == 0))
		if s.cfg.verifyPeer {
			s.tr.Edge(mKeyEx, 1024+probes.HashBytes(r.Rest())%768) // client cert chain walk
		}
		return nil
	default:
		s.tr.Edge(mHandshake, 128+uint64(msgType))
		return nil
	}
}

func (s *Server) handleClientHello(r *wire.Reader) [][]byte {
	ver := r.U16()
	random := r.Bytes(32)
	sidLen := r.U8()
	r.Skip(int(sidLen))
	cookieLen := r.U8()
	cookie := r.Bytes(int(cookieLen))
	csLen := r.U16()
	suites := r.Bytes(int(csLen))
	if r.Err() != nil {
		s.tr.Edge(mHello, 0)
		return nil
	}
	s.tr.Edge(mHello, 1+uint64(ver%16))
	s.tr.Edge(mHello, 32+probes.HashBytes(random)%256)
	s.tr.Edge(mHello, 100+uint64(sidLen%8))
	s.tr.Edge(mHello, 128+uint64(len(suites)/2%32))

	// Renegotiation attempt after an established handshake.
	if s.state == stateFinished {
		s.tr.Edge(mRenegOp, probes.B(s.cfg.reneg))
		if !s.cfg.reneg {
			return [][]byte{record(ctAlert, []byte{2, 100})} // fatal no_renegotiation
		}
		s.tr.Edge(mRenegOp, 2+probes.HashBytes(suites)%1024)
		s.state = stateInit
	}

	// Compression methods + extensions region.
	if cmLen := r.U8(); r.Err() == nil {
		cms := r.Bytes(int(cmLen))
		s.tr.Edge(mExt, probes.HashBytes(cms)%16)
		if s.cfg.compress && len(cms) > 1 {
			s.tr.Edge(mExt, 20)
		}
	}
	for r.Remaining() >= 4 {
		extType := r.U16()
		extLen := r.U16()
		extBody := r.Bytes(int(extLen))
		if r.Err() != nil {
			s.tr.Edge(mExt, 32)
			break
		}
		s.tr.Edge(mExt, 64+uint64(extType%128))
		s.tr.Edge(mExt, 256+probes.HashBytes(extBody)%512)
	}

	// Cookie exchange.
	if !s.cfg.noCookie && s.state == stateInit {
		expect := s.cookieValue()
		if len(cookie) == 0 || cookie[0] != expect {
			s.tr.Edge(mCookie, probes.B(len(cookie) == 0))
			s.state = stateCookieSent
			return [][]byte{record(ctHandshake, handshakeMsg(hsHelloVerifyRequest, []byte{0xfe, 0xfd, 1, expect}))}
		}
		s.tr.Edge(mCookie, 4)
	}

	// Cipher selection: the offered list must include the configured one.
	selected := false
	for i := 0; i+1 < len(suites); i += 2 {
		suite := uint16(suites[i])<<8 | uint16(suites[i+1])
		s.tr.Edge(mCipherSel, uint64(suite%128))
		if suite == cipherID(s.cfg.cipher) {
			selected = true
		}
	}
	s.tr.Edge(mCipherSel, 512+probes.B(selected))
	s.tr.Edge(mCipherSel, 1024+probes.HashBytes(suites)%512)
	if !selected {
		return [][]byte{record(ctAlert, []byte{2, 40})} // handshake_failure
	}
	if s.cfg.cipher == "PSK-AES128" {
		s.tr.Edge(mCipherSel, 520+probes.Hash(s.cfg.psk)%8)
		s.tr.Edge(mCipherSel, 2048+probes.HashBytes(random)%768) // PSK identity binding
	}

	s.state = stateHelloDone
	out := [][]byte{
		record(ctHandshake, handshakeMsg(hsServerHello, []byte{0xfe, 0xfd, byte(cipherID(s.cfg.cipher) >> 8), byte(cipherID(s.cfg.cipher))})),
	}
	if s.cfg.cipher != "PSK-AES128" {
		out = append(out, record(ctHandshake, handshakeMsg(hsCertificate, []byte("server-cert"))))
	}
	if s.cfg.verifyPeer {
		out = append(out, record(ctHandshake, handshakeMsg(hsCertificateRequest, []byte{1})))
	}
	out = append(out, record(ctHandshake, handshakeMsg(hsServerHelloDone, nil)))
	return out
}

// cookieValue derives the stateless cookie (toy HMAC).
func (s *Server) cookieValue() byte {
	return byte(probes.Hash(s.cfg.cipher+s.cfg.psk)%250) + 1
}

func cipherID(name string) uint16 {
	switch name {
	case "AES128-SHA":
		return 0x002f
	case "AES256-GCM":
		return 0x009d
	case "CHACHA20":
		return 0xcca8
	case "PSK-AES128":
		return 0x008c
	default:
		return 0
	}
}

// record wraps a body into a DTLS record.
func record(ct byte, body []byte) []byte {
	w := wire.NewWriter(13 + len(body))
	w.U8(ct)
	w.U16(0xfefd)
	w.U16(0) // epoch
	w.U32(0) // seq hi
	w.U16(0) // seq lo
	w.U16(uint16(len(body)))
	w.Raw(body)
	return w.Bytes()
}

// handshakeMsg wraps a body into a DTLS handshake message header.
func handshakeMsg(msgType byte, body []byte) []byte {
	w := wire.NewWriter(12 + len(body))
	w.U8(msgType)
	n := uint32(len(body))
	w.U8(byte(n >> 16))
	w.U8(byte(n >> 8))
	w.U8(byte(n))
	w.U16(0) // message seq
	w.U8(0)  // frag offset 24-bit
	w.U8(0)
	w.U8(0)
	w.U8(byte(n >> 16)) // frag length = length
	w.U8(byte(n >> 8))
	w.U8(byte(n))
	w.Raw(body)
	return w.Bytes()
}

// dtlsSubject implements subject.Subject.
type dtlsSubject struct{}

// Subject returns the DTLS evaluation subject.
func Subject() subject.Subject { return dtlsSubject{} }

func (dtlsSubject) Info() subject.Info {
	return subject.Info{
		Protocol:       "DTLS",
		Implementation: "OpenSSL",
		Transport:      subject.Datagram,
		Port:           4433,
	}
}

func (dtlsSubject) ConfigInput() configspec.Input {
	return configspec.Input{CLIHelp: []string{cliHelp}}
}

func (dtlsSubject) PitXML() string { return pitXML }

func (dtlsSubject) NewInstance() subject.Instance { return NewServer() }
