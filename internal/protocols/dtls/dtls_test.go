package dtls

import (
	"testing"

	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
)

func startServer(t *testing.T, cfg map[string]string) *Server {
	t.Helper()
	s := NewServer()
	if err := s.Start(cfg, coverage.NewTrace()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	s.SetTrace(coverage.NewTrace())
	s.NewSession()
	return s
}

// clientHello builds a valid ClientHello record with the given cookie.
func clientHello(cookie []byte) []byte {
	body := []byte{0xfe, 0xfd}
	body = append(body, make([]byte, 32)...) // random
	body = append(body, 0)                   // sid len
	body = append(body, byte(len(cookie)))
	body = append(body, cookie...)
	suites := []byte{0x00, 0x2f, 0x00, 0x9d, 0xcc, 0xa8, 0x00, 0x8c}
	body = append(body, byte(len(suites)>>8), byte(len(suites)))
	body = append(body, suites...)
	body = append(body, 1, 0) // compression methods
	return record(ctHandshake, handshakeMsg(hsClientHello, body))
}

func msgTypeOf(t *testing.T, rec []byte) (ct byte, hsType byte) {
	t.Helper()
	if len(rec) < 13 {
		t.Fatalf("short record %x", rec)
	}
	ct = rec[0]
	if ct == ctHandshake && len(rec) > 13 {
		hsType = rec[13]
	}
	return ct, hsType
}

func TestConfigValidation(t *testing.T) {
	bad := []map[string]string{
		{"cipher": "EXPORT-RC4"},
		{"cipher": "PSK-AES128"},
		{"compression": "true", "cipher": "AES256-GCM"},
		{"mtu": "64"},
		{"min-version": "sslv3"},
		{"timeout": "0"},
	}
	for i, cfg := range bad {
		if err := NewServer().Start(cfg, coverage.NewTrace()); err == nil {
			t.Errorf("conflict %d accepted: %v", i, cfg)
		}
	}
	good := []map[string]string{
		nil,
		{"cipher": "PSK-AES128", "psk": "aa55"},
		{"compression": "true", "cipher": "AES128-SHA"},
		{"no-cookie": "true", "session-tickets": "true", "renegotiation": "true"},
	}
	for i, cfg := range good {
		if err := NewServer().Start(cfg, coverage.NewTrace()); err != nil {
			t.Errorf("valid config %d rejected: %v", i, err)
		}
	}
}

func TestCookieExchange(t *testing.T) {
	s := startServer(t, nil)
	resp := s.Message(clientHello(nil))
	if len(resp) != 1 {
		t.Fatalf("responses = %d", len(resp))
	}
	if _, hs := msgTypeOf(t, resp[0]); hs != hsHelloVerifyRequest {
		t.Fatalf("expected HelloVerifyRequest, got hs type %d", hs)
	}
	// The HVR carries the cookie at body offset 3 (ver(2) + count(1)).
	cookie := resp[0][13+12+3]
	resp = s.Message(clientHello([]byte{cookie}))
	foundSH := false
	for _, r := range resp {
		if _, hs := msgTypeOf(t, r); hs == hsServerHello {
			foundSH = true
		}
	}
	if !foundSH {
		t.Fatalf("no ServerHello after valid cookie: %d records", len(resp))
	}
}

func TestNoCookieSkipsVerify(t *testing.T) {
	s := startServer(t, map[string]string{"no-cookie": "true"})
	resp := s.Message(clientHello(nil))
	if len(resp) < 2 {
		t.Fatalf("expected immediate ServerHello flight, got %d records", len(resp))
	}
	if _, hs := msgTypeOf(t, resp[0]); hs != hsServerHello {
		t.Fatalf("first record hs type %d", hs)
	}
}

func TestFullHandshakeAndAppData(t *testing.T) {
	s := startServer(t, map[string]string{"no-cookie": "true"})
	s.Message(clientHello(nil))
	s.Message(record(ctHandshake, handshakeMsg(hsClientKeyExchange, []byte("keydata"))))
	s.Message(record(ctChangeCipherSpec, []byte{1}))
	resp := s.Message(record(ctHandshake, handshakeMsg(hsFinished, []byte("verify"))))
	if len(resp) < 2 {
		t.Fatalf("finished flight = %d records", len(resp))
	}
	echo := s.Message(record(ctApplicationData, []byte("hello")))
	if len(echo) != 1 || echo[0][0] != ctApplicationData {
		t.Fatalf("appdata echo = %v", echo)
	}
}

func TestAppDataBeforeHandshakeIgnored(t *testing.T) {
	s := startServer(t, nil)
	if resp := s.Message(record(ctApplicationData, []byte("early"))); resp != nil {
		t.Fatalf("early appdata answered: %v", resp)
	}
}

func TestSessionTicketsIssued(t *testing.T) {
	s := startServer(t, map[string]string{"no-cookie": "true", "session-tickets": "true"})
	s.Message(clientHello(nil))
	s.Message(record(ctHandshake, handshakeMsg(hsClientKeyExchange, []byte("k"))))
	s.Message(record(ctChangeCipherSpec, []byte{1}))
	resp := s.Message(record(ctHandshake, handshakeMsg(hsFinished, []byte("v"))))
	if len(resp) != 3 {
		t.Fatalf("expected CCS+Finished+Ticket, got %d records", len(resp))
	}
}

func TestRenegotiationPolicy(t *testing.T) {
	complete := func(cfg map[string]string) *Server {
		s := startServer(t, cfg)
		s.Message(clientHello(nil))
		s.Message(record(ctHandshake, handshakeMsg(hsClientKeyExchange, []byte("k"))))
		s.Message(record(ctChangeCipherSpec, []byte{1}))
		s.Message(record(ctHandshake, handshakeMsg(hsFinished, []byte("v"))))
		return s
	}
	// Denied by default: fatal alert.
	s := complete(map[string]string{"no-cookie": "true"})
	resp := s.Message(clientHello(nil))
	if len(resp) != 1 || resp[0][0] != ctAlert {
		t.Fatalf("renegotiation not refused: %v", resp)
	}
	// Allowed when configured.
	s2 := complete(map[string]string{"no-cookie": "true", "renegotiation": "true"})
	resp = s2.Message(clientHello(nil))
	if len(resp) == 0 || resp[0][0] == ctAlert {
		t.Fatalf("renegotiation refused despite config: %v", resp)
	}
}

func TestCipherMismatch(t *testing.T) {
	s := startServer(t, map[string]string{"no-cookie": "true", "cipher": "CHACHA20"})
	// Offer only AES128-SHA.
	body := []byte{0xfe, 0xfd}
	body = append(body, make([]byte, 32)...)
	body = append(body, 0, 0)
	body = append(body, 0, 2, 0x00, 0x2f)
	body = append(body, 1, 0)
	resp := s.Message(record(ctHandshake, handshakeMsg(hsClientHello, body)))
	if len(resp) != 1 || resp[0][0] != ctAlert {
		t.Fatalf("cipher mismatch not alerted: %v", resp)
	}
}

func TestMalformedRecordsSafe(t *testing.T) {
	s := startServer(t, nil)
	inputs := [][]byte{
		nil,
		{22},
		{22, 0xfe, 0xfd, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff},
		{99, 0xfe, 0xfd, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		record(ctHandshake, []byte{1, 2}),
		record(ctAlert, []byte{5}),
	}
	for _, in := range inputs {
		s.Message(in) // must not panic
	}
}

func TestStartupCoverageGatedRegions(t *testing.T) {
	count := func(cfg map[string]string) int {
		tr := coverage.NewTrace()
		if err := NewServer().Start(cfg, tr); err != nil {
			t.Fatalf("Start(%v): %v", cfg, err)
		}
		return tr.Count()
	}
	base := count(nil)
	rich := count(map[string]string{
		"session-tickets": "true", "renegotiation": "true",
		"verify-peer": "true", "psk": "aa55",
	})
	if rich <= base {
		t.Fatalf("gated startup regions missing: base=%d rich=%d", base, rich)
	}
	// DTLS's gated space is deliberately modest (paper: fixed crypto
	// settings limit flexibility).
	if rich > base*3 {
		t.Fatalf("DTLS gated region too large: base=%d rich=%d", base, rich)
	}
}

func TestPitParsesAndHandshakes(t *testing.T) {
	pit, err := fuzz.ParsePit(Subject().PitXML())
	if err != nil {
		t.Fatal(err)
	}
	if len(pit.DataModels) != 6 {
		t.Fatalf("pit data models = %d", len(pit.DataModels))
	}
	sm := pit.StateModels["DTLSHandshake"]
	if sm == nil {
		t.Fatal("state model missing")
	}
	if len(sm.Paths(12, 64)) < 3 {
		t.Fatal("too few distinct handshake paths")
	}
}
