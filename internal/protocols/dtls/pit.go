package dtls

// pitXML is the DTLS Pit document. ClientHello carries a 1-byte cookie
// guess (the server's stateless cookie is config-derived, so reaching the
// post-cookie states requires either mutation luck or the non-default
// --no-cookie configuration — a deliberately configuration-gated depth).
const pitXML = `<?xml version="1.0"?>
<Peach>
  <DataModel name="ClientHello">
    <Number name="ct" bits="8" value="22" token="true"/>
    <Number name="ver" bits="16" value="65277" token="true"/>
    <Number name="epoch" bits="16" value="0"/>
    <Number name="seqhi" bits="32" value="0"/>
    <Number name="seqlo" bits="16" value="1"/>
    <Number name="reclen" bits="16" sizeOf="hs"/>
    <Block name="hs">
      <Number name="msgtype" bits="8" value="1" token="true"/>
      <Number name="lenhi" bits="8" value="0"/>
      <Number name="len" bits="16" sizeOf="chbody"/>
      <Number name="msgseq" bits="16" value="0"/>
      <Number name="fraghi" bits="8" value="0"/>
      <Number name="fragoff" bits="16" value="0"/>
      <Number name="flenhi" bits="8" value="0"/>
      <Number name="flen" bits="16" sizeOf="chbody"/>
      <Block name="chbody">
        <Number name="chver" bits="16" value="65277"/>
        <Blob name="random" valueHex="000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"/>
        <Number name="sidlen" bits="8" value="0" token="true"/>
        <Number name="cookielen" bits="8" value="1" token="true"/>
        <Choice name="cookie">
          <Number name="c0" bits="8" value="0"/>
          <Number name="c1" bits="8" value="77"/>
          <Number name="c2" bits="8" value="133"/>
          <Number name="c3" bits="8" value="201"/>
        </Choice>
        <Number name="cslen" bits="16" sizeOf="suites"/>
        <Blob name="suites" valueHex="002f009dcca8008c"/>
        <Number name="cmlen" bits="8" value="1" token="true"/>
        <Number name="cm" bits="8" value="0"/>
        <Block name="ext">
          <Number name="exttype" bits="16" value="10"/>
          <Number name="extlen" bits="16" sizeOf="extbody"/>
          <Blob name="extbody" valueHex="00170018"/>
        </Block>
      </Block>
    </Block>
  </DataModel>
  <DataModel name="ClientKeyExchange">
    <Number name="ct" bits="8" value="22" token="true"/>
    <Number name="ver" bits="16" value="65277" token="true"/>
    <Number name="epoch" bits="16" value="0"/>
    <Number name="seqhi" bits="32" value="0"/>
    <Number name="seqlo" bits="16" value="2"/>
    <Number name="reclen" bits="16" sizeOf="hs"/>
    <Block name="hs">
      <Number name="msgtype" bits="8" value="16" token="true"/>
      <Number name="lenhi" bits="8" value="0"/>
      <Number name="len" bits="16" sizeOf="keydata"/>
      <Number name="msgseq" bits="16" value="1"/>
      <Number name="fraghi" bits="8" value="0"/>
      <Number name="fragoff" bits="16" value="0"/>
      <Number name="flenhi" bits="8" value="0"/>
      <Number name="flen" bits="16" sizeOf="keydata"/>
      <Blob name="keydata" valueHex="a1b2c3d4e5f60718"/>
    </Block>
  </DataModel>
  <DataModel name="ChangeCipherSpec">
    <Number name="ct" bits="8" value="20" token="true"/>
    <Number name="ver" bits="16" value="65277" token="true"/>
    <Number name="epoch" bits="16" value="0"/>
    <Number name="seqhi" bits="32" value="0"/>
    <Number name="seqlo" bits="16" value="3"/>
    <Number name="reclen" bits="16" sizeOf="ccs"/>
    <Blob name="ccs" valueHex="01"/>
  </DataModel>
  <DataModel name="Finished">
    <Number name="ct" bits="8" value="22" token="true"/>
    <Number name="ver" bits="16" value="65277" token="true"/>
    <Number name="epoch" bits="16" value="1"/>
    <Number name="seqhi" bits="32" value="0"/>
    <Number name="seqlo" bits="16" value="4"/>
    <Number name="reclen" bits="16" sizeOf="hs"/>
    <Block name="hs">
      <Number name="msgtype" bits="8" value="20" token="true"/>
      <Number name="lenhi" bits="8" value="0"/>
      <Number name="len" bits="16" sizeOf="verify"/>
      <Number name="msgseq" bits="16" value="2"/>
      <Number name="fraghi" bits="8" value="0"/>
      <Number name="fragoff" bits="16" value="0"/>
      <Number name="flenhi" bits="8" value="0"/>
      <Number name="flen" bits="16" sizeOf="verify"/>
      <Blob name="verify" valueHex="f00dfeedf00dfeedf00dfeed"/>
    </Block>
  </DataModel>
  <DataModel name="AppData">
    <Number name="ct" bits="8" value="23" token="true"/>
    <Number name="ver" bits="16" value="65277" token="true"/>
    <Number name="epoch" bits="16" value="1"/>
    <Number name="seqhi" bits="32" value="0"/>
    <Number name="seqlo" bits="16" value="5"/>
    <Number name="reclen" bits="16" sizeOf="payload"/>
    <Blob name="payload" valueHex="6465764d6573736167"/>
  </DataModel>
  <DataModel name="Alert">
    <Number name="ct" bits="8" value="21" token="true"/>
    <Number name="ver" bits="16" value="65277" token="true"/>
    <Number name="epoch" bits="16" value="0"/>
    <Number name="seqhi" bits="32" value="0"/>
    <Number name="seqlo" bits="16" value="6"/>
    <Number name="reclen" bits="16" sizeOf="alert"/>
    <Blob name="alert" valueHex="0100"/>
  </DataModel>
  <StateModel name="DTLSHandshake" initialState="hello">
    <State name="hello">
      <Action type="output" dataModel="ClientHello"/>
      <Action type="input"/>
      <Action type="changeState" to="retryhello"/>
      <Action type="changeState" to="keyexchange"/>
    </State>
    <State name="retryhello">
      <Action type="output" dataModel="ClientHello"/>
      <Action type="changeState" to="keyexchange"/>
    </State>
    <State name="keyexchange">
      <Action type="output" dataModel="ClientKeyExchange"/>
      <Action type="output" dataModel="ChangeCipherSpec"/>
      <Action type="changeState" to="finish"/>
    </State>
    <State name="finish">
      <Action type="output" dataModel="Finished"/>
      <Action type="changeState" to="appdata"/>
      <Action type="changeState" to="teardown"/>
    </State>
    <State name="appdata">
      <Action type="output" dataModel="AppData"/>
      <Action type="output" dataModel="AppData"/>
      <Action type="changeState" to="teardown"/>
      <Action type="changeState" to="renegotiate"/>
    </State>
    <State name="renegotiate">
      <Action type="output" dataModel="ClientHello"/>
      <Action type="changeState" to="teardown"/>
    </State>
    <State name="teardown">
      <Action type="output" dataModel="Alert"/>
    </State>
  </StateModel>
</Peach>`
