// Package probes holds the small helpers the instrumented protocol
// subjects share: value bucketing and hashing for bounded-cardinality
// coverage states, and lenient config-value parsing.
package probes

import "strconv"

// Bucket maps a non-negative quantity to a logarithmic bucket (0..~32),
// so size-like values produce bounded coverage states.
func Bucket(n int) uint64 {
	if n <= 0 {
		return 0
	}
	b := uint64(1)
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Hash returns a 64-bit FNV-1a hash of s.
func Hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// HashBytes returns a 64-bit FNV-1a hash of b.
func HashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// B converts a bool to a coverage state.
func B(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// Int parses a config integer leniently, returning def for missing or
// unparseable values.
func Int(cfg map[string]string, key string, def int) int {
	s, ok := cfg[key]
	if !ok || s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

// Bool parses a config boolean leniently ("true"/"yes"/"on"/"1" are
// true, "false"/"no"/"off"/"0" are false), returning def otherwise.
func Bool(cfg map[string]string, key string, def bool) bool {
	s, ok := cfg[key]
	if !ok || s == "" {
		return def
	}
	switch s {
	case "true", "yes", "on", "1":
		return true
	case "false", "no", "off", "0":
		return false
	}
	return def
}

// Str reads a config string with a default.
func Str(cfg map[string]string, key, def string) string {
	if s, ok := cfg[key]; ok && s != "" {
		return s
	}
	return def
}
