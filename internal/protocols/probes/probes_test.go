package probes

import (
	"testing"
	"testing/quick"
)

func TestBucket(t *testing.T) {
	cases := map[int]uint64{
		-5: 0, 0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 1023: 10, 1024: 11, 1 << 30: 31,
	}
	for in, want := range cases {
		if got := Bucket(in); got != want {
			t.Errorf("Bucket(%d) = %d, want %d", in, got, want)
		}
	}
}

// Property: Bucket is monotone and bounded.
func TestQuickBucketMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		bx, by := Bucket(x), Bucket(y)
		return bx <= by && by <= 17
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashConsistency(t *testing.T) {
	if Hash("abc") != Hash("abc") {
		t.Fatal("Hash not deterministic")
	}
	if Hash("abc") == Hash("abd") {
		t.Fatal("Hash collides on near inputs")
	}
	if Hash("abc") != HashBytes([]byte("abc")) {
		t.Fatal("Hash and HashBytes disagree")
	}
}

func TestB(t *testing.T) {
	if B(true) != 1 || B(false) != 0 {
		t.Fatal("B wrong")
	}
}

func TestIntBoolStr(t *testing.T) {
	cfg := map[string]string{
		"n": "42", "bad": "x", "empty": "",
		"t1": "true", "t2": "yes", "t3": "on", "t4": "1",
		"f1": "false", "f2": "no", "f3": "off", "f4": "0",
		"s": "hello",
	}
	if Int(cfg, "n", 7) != 42 || Int(cfg, "bad", 7) != 7 || Int(cfg, "missing", 7) != 7 || Int(cfg, "empty", 7) != 7 {
		t.Fatal("Int wrong")
	}
	for _, k := range []string{"t1", "t2", "t3", "t4"} {
		if !Bool(cfg, k, false) {
			t.Errorf("Bool(%s) = false", k)
		}
	}
	for _, k := range []string{"f1", "f2", "f3", "f4"} {
		if Bool(cfg, k, true) {
			t.Errorf("Bool(%s) = true", k)
		}
	}
	if !Bool(cfg, "s", true) || Bool(cfg, "s", false) {
		t.Fatal("unparseable bool should return default")
	}
	if Str(cfg, "s", "d") != "hello" || Str(cfg, "missing", "d") != "d" || Str(cfg, "empty", "d") != "d" {
		t.Fatal("Str wrong")
	}
}
