package coverage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ErrBadDelta reports a structurally invalid delta payload.
var ErrBadDelta = errors.New("coverage: malformed delta")

// EncodeDelta serializes the edges of m that are absent from base as a
// compact word stream: for every backing word where m holds bits base
// lacks, the word index (delta-encoded varint) followed by m's full
// 64-bit word value. Only m's dirty words are visited, so the payload —
// and the encoding cost — is proportional to the edges m actually holds,
// never to the full 64 Ki map. A nil base encodes all of m.
//
// Applying the result to base with ApplyDelta makes base the union
// base ∪ m. Words are emitted in ascending index order, so the encoding
// of a given (m, base) pair is canonical.
func EncodeDelta(m, base *Map) []byte {
	return AppendDelta(nil, m, base, nil)
}

// AppendDelta is EncodeDelta with two hot-path affordances: the payload
// is appended to dst (pass a reused scratch slice to keep per-call
// allocations off the step loop), and a non-nil touched map restricts
// the scan to touched's dirty words. The restriction is sound whenever
// every word where m exceeds base is dirty in touched — e.g. when base
// was equal to m before the single execution whose trace map touched
// records — and then the output is byte-identical to the full scan,
// because word values still come from m and touched's dirty words
// iterate in the same ascending order.
func AppendDelta(dst []byte, m, base, touched *Map) []byte {
	if m == nil {
		return dst
	}
	scan := m
	if touched != nil {
		scan = touched
	}
	var scratch [binary.MaxVarintLen32 + 8]byte
	prev := -1
	for s, sw := range scan.summary {
		for sw != 0 {
			w := s*64 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			mw := m.bits[w]
			if mw == 0 || (base != nil && mw&^base.bits[w] == 0) {
				continue
			}
			n := binary.PutUvarint(scratch[:], uint64(w-prev-1))
			binary.BigEndian.PutUint64(scratch[n:], mw)
			dst = append(dst, scratch[:n+8]...)
			prev = w
		}
	}
	return dst
}

// ApplyDelta merges a payload produced by EncodeDelta into m (ORing each
// carried word in) and returns how many edges were new to m. The empty
// payload is valid and a no-op. A truncated or out-of-range payload
// returns ErrBadDelta with m only partially updated; partial application
// is safe because deltas are monotone (they only ever add edges).
func (m *Map) ApplyDelta(data []byte) (int, error) {
	added := 0
	prev := -1
	for len(data) > 0 {
		gap, n := binary.Uvarint(data)
		if n <= 0 || len(data) < n+8 {
			return added, ErrBadDelta
		}
		w := prev + 1 + int(gap)
		if w >= wordCount || gap > uint64(wordCount) {
			return added, fmt.Errorf("%w: word index %d", ErrBadDelta, w)
		}
		word := binary.BigEndian.Uint64(data[n : n+8])
		if nw := word &^ m.bits[w]; nw != 0 {
			added += bits.OnesCount64(nw)
			m.bits[w] |= nw
			m.summary[w/64] |= 1 << (w % 64)
		}
		prev = w
		data = data[n+8:]
	}
	m.count += added
	return added, nil
}
