package coverage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapAddAndCount(t *testing.T) {
	m := NewMap()
	if m.Count() != 0 {
		t.Fatalf("empty map count = %d, want 0", m.Count())
	}
	if !m.Add(42) {
		t.Fatal("first Add(42) reported not-new")
	}
	if m.Add(42) {
		t.Fatal("second Add(42) reported new")
	}
	if !m.Has(42) {
		t.Fatal("Has(42) = false after Add")
	}
	if m.Has(43) {
		t.Fatal("Has(43) = true without Add")
	}
	if m.Count() != 1 {
		t.Fatalf("count = %d, want 1", m.Count())
	}
}

func TestMapBoundaryIndices(t *testing.T) {
	m := NewMap()
	for _, idx := range []Index{0, 63, 64, MapSize - 1} {
		if !m.Add(idx) {
			t.Errorf("Add(%d) not new", idx)
		}
		if !m.Has(idx) {
			t.Errorf("Has(%d) false", idx)
		}
	}
	if m.Count() != 4 {
		t.Fatalf("count = %d, want 4", m.Count())
	}
}

func TestMapUnion(t *testing.T) {
	a, b := NewMap(), NewMap()
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	added := a.Union(b)
	if added != 1 {
		t.Fatalf("Union added = %d, want 1", added)
	}
	if a.Count() != 3 {
		t.Fatalf("count after union = %d, want 3", a.Count())
	}
	for _, idx := range []Index{1, 2, 3} {
		if !a.Has(idx) {
			t.Errorf("missing %d after union", idx)
		}
	}
	if a.Union(nil) != 0 {
		t.Fatal("Union(nil) != 0")
	}
}

func TestMapNewOver(t *testing.T) {
	a, base := NewMap(), NewMap()
	a.Add(10)
	a.Add(20)
	base.Add(20)
	if got := a.NewOver(base); got != 1 {
		t.Fatalf("NewOver = %d, want 1", got)
	}
	if got := a.NewOver(nil); got != 2 {
		t.Fatalf("NewOver(nil) = %d, want 2", got)
	}
	// NewOver must not mutate.
	if a.Count() != 2 || base.Count() != 1 {
		t.Fatal("NewOver mutated its operands")
	}
}

func TestMapCloneIndependence(t *testing.T) {
	a := NewMap()
	a.Add(5)
	c := a.Clone()
	c.Add(6)
	if a.Has(6) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Has(5) {
		t.Fatal("clone lost original edge")
	}
}

func TestMapReset(t *testing.T) {
	m := NewMap()
	m.Add(7)
	m.Reset()
	if m.Count() != 0 || m.Has(7) {
		t.Fatal("Reset did not clear map")
	}
}

func TestMapIndices(t *testing.T) {
	m := NewMap()
	want := []Index{3, 64, 1000, MapSize - 1}
	for _, idx := range want {
		m.Add(idx)
	}
	got := m.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEdgeIndexDeterministic(t *testing.T) {
	if EdgeIndex(1, 2) != EdgeIndex(1, 2) {
		t.Fatal("EdgeIndex not deterministic")
	}
	if EdgeIndex(1, 2) == EdgeIndex(1, 3) && EdgeIndex(1, 4) == EdgeIndex(1, 5) {
		t.Fatal("EdgeIndex suspiciously collides on consecutive states")
	}
}

func TestEdgeIndexSpread(t *testing.T) {
	// Consecutive sites must not all collapse into a few cells.
	seen := make(map[Index]bool)
	for site := uint32(0); site < 1000; site++ {
		seen[EdgeIndex(site, 0)] = true
	}
	if len(seen) < 950 {
		t.Fatalf("1000 sites mapped to only %d cells", len(seen))
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	tr.Hit(1)
	tr.Hit(1)
	tr.Edge(1, 7)
	if tr.Count() != 2 {
		t.Fatalf("trace count = %d, want 2", tr.Count())
	}
	tr.Reset()
	if tr.Count() != 0 {
		t.Fatal("Reset did not clear trace")
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.Hit(1)     // must not panic
	tr.Edge(1, 2) // must not panic
}

// Property: for any two edge sets, Count(a ∪ b) = Count(a) + NewOver(b over a).
func TestQuickUnionCountConsistent(t *testing.T) {
	f := func(as, bs []uint16) bool {
		a, b := NewMap(), NewMap()
		for _, x := range as {
			a.Add(Index(x))
		}
		for _, x := range bs {
			b.Add(Index(x))
		}
		before := a.Count()
		wantAdded := b.NewOver(a)
		added := a.Union(b)
		return added == wantAdded && a.Count() == before+added
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Union is idempotent and monotone.
func TestQuickUnionIdempotent(t *testing.T) {
	f := func(as, bs []uint16) bool {
		a, b := NewMap(), NewMap()
		for _, x := range as {
			a.Add(Index(x))
		}
		for _, x := range bs {
			b.Add(Index(x))
		}
		a.Union(b)
		c1 := a.Count()
		if a.Union(b) != 0 {
			return false
		}
		return a.Count() == c1 && c1 >= b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Count always equals len(Indices), and Indices are sorted unique.
func TestQuickCountMatchesIndices(t *testing.T) {
	f := func(xs []uint16) bool {
		m := NewMap()
		for _, x := range xs {
			m.Add(Index(x))
		}
		idx := m.Indices()
		if len(idx) != m.Count() {
			return false
		}
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Final() != 0 || s.At(100) != 0 {
		t.Fatal("empty series not zero")
	}
	s.Observe(0, 10)
	s.Observe(5, 10) // collapsed: no growth
	s.Observe(10, 25)
	s.Observe(20, 40)
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3 (flat sample collapsed)", s.Len())
	}
	if s.Final() != 40 {
		t.Fatalf("final = %d, want 40", s.Final())
	}
	cases := []struct {
		t    float64
		want int
	}{{-1, 0}, {0, 10}, {9.9, 10}, {10, 25}, {15, 25}, {20, 40}, {1e9, 40}}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestSeriesTimeToReach(t *testing.T) {
	var s Series
	s.Observe(0, 5)
	s.Observe(100, 50)
	if tt, ok := s.TimeToReach(0); !ok || tt != 0 {
		t.Fatalf("TimeToReach(0) = %v,%v", tt, ok)
	}
	if tt, ok := s.TimeToReach(5); !ok || tt != 0 {
		t.Fatalf("TimeToReach(5) = %v,%v", tt, ok)
	}
	if tt, ok := s.TimeToReach(6); !ok || tt != 100 {
		t.Fatalf("TimeToReach(6) = %v,%v", tt, ok)
	}
	if _, ok := s.TimeToReach(51); ok {
		t.Fatal("TimeToReach(51) should fail")
	}
}

func TestSeriesSample(t *testing.T) {
	var s Series
	s.Observe(0, 1)
	s.Observe(50, 2)
	pts := s.Sample(100, 3)
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Count != 1 || pts[1].Count != 2 || pts[2].Count != 2 {
		t.Fatalf("sample counts = %v", pts)
	}
	if pts[2].T != 100 {
		t.Fatalf("last sample T = %v, want 100", pts[2].T)
	}
}

func TestMeanOf(t *testing.T) {
	a, b := &Series{}, &Series{}
	a.Observe(0, 10)
	b.Observe(0, 20)
	pts := MeanOf([]*Series{a, b}, 10, 2)
	if pts[1].Count != 15 {
		t.Fatalf("mean = %d, want 15", pts[1].Count)
	}
	if MeanOf(nil, 10, 2) != nil {
		t.Fatal("MeanOf(nil) != nil")
	}
}

// Property: Series.At is monotone nondecreasing in t for monotone input.
func TestQuickSeriesMonotone(t *testing.T) {
	f := func(deltas []uint8) bool {
		var s Series
		tt, c := 0.0, 0
		for _, d := range deltas {
			tt += float64(d%7) + 1
			c += int(d % 5)
			s.Observe(tt, c)
		}
		r := rand.New(rand.NewSource(1))
		prevT, prevC := -1.0, -1
		for i := 0; i < 50; i++ {
			q := prevT + r.Float64()*5
			got := s.At(q)
			if q >= prevT && prevC > got {
				return false
			}
			prevT, prevC = q, got
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSaturation(t *testing.T) {
	s := NewSaturation(10)
	if s.Saturated(0) {
		t.Fatal("unstarted detector saturated")
	}
	s.Observe(0, 5)
	if s.Saturated(9.9) {
		t.Fatal("saturated before window elapsed")
	}
	if !s.Saturated(10) {
		t.Fatal("not saturated after flat window")
	}
	s.Observe(11, 6) // growth resets the clock
	if s.Saturated(20.9) {
		t.Fatal("saturated despite recent growth")
	}
	if !s.Saturated(21) {
		t.Fatal("not saturated after second flat window")
	}
	s.Reset(21)
	if s.Saturated(100) {
		t.Fatal("saturated right after Reset without observations")
	}
}

func BenchmarkTraceEdge(b *testing.B) {
	tr := NewTrace()
	for i := 0; i < b.N; i++ {
		tr.Edge(uint32(i%512), uint64(i%64))
	}
}

func BenchmarkMapUnion(b *testing.B) {
	a, o := NewMap(), NewMap()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 4000; i++ {
		o.Add(Index(r.Intn(MapSize)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Union(o)
	}
}
