package coverage

import (
	"math/bits"
	"math/rand"
	"testing"
)

// denseMap is the pre-optimization reference implementation: every
// operation walks the full backing array. The sparse Map must agree with
// it on every observable, for any operation stream.
type denseMap struct {
	bits  [wordCount]uint64
	count int
}

func (m *denseMap) Add(idx Index) bool {
	w, b := idx/64, idx%64
	mask := uint64(1) << b
	if m.bits[w]&mask != 0 {
		return false
	}
	m.bits[w] |= mask
	m.count++
	return true
}

func (m *denseMap) Has(idx Index) bool { return m.bits[idx/64]&(1<<(idx%64)) != 0 }
func (m *denseMap) Count() int         { return m.count }

func (m *denseMap) Union(o *denseMap) int {
	if o == nil {
		return 0
	}
	added := 0
	for i, w := range o.bits {
		nw := w &^ m.bits[i]
		if nw != 0 {
			added += bits.OnesCount64(nw)
			m.bits[i] |= nw
		}
	}
	m.count += added
	return added
}

func (m *denseMap) NewOver(base *denseMap) int {
	if base == nil {
		return m.count
	}
	n := 0
	for i, w := range m.bits {
		if d := w &^ base.bits[i]; d != 0 {
			n += bits.OnesCount64(d)
		}
	}
	return n
}

func (m *denseMap) Reset() {
	m.bits = [wordCount]uint64{}
	m.count = 0
}

func (m *denseMap) Indices() []Index {
	out := make([]Index, 0, m.count)
	for w, word := range m.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, Index(w*64+b))
			word &= word - 1
		}
	}
	return out
}

// pair is one map under test mirrored by its dense reference.
type pair struct {
	sparse *Map
	dense  *denseMap
}

func (p *pair) check(t *testing.T, when string) {
	t.Helper()
	if p.sparse.Count() != p.dense.Count() {
		t.Fatalf("%s: Count sparse=%d dense=%d", when, p.sparse.Count(), p.dense.Count())
	}
	si, di := p.sparse.Indices(), p.dense.Indices()
	if len(si) != len(di) {
		t.Fatalf("%s: Indices length sparse=%d dense=%d", when, len(si), len(di))
	}
	for i := range si {
		if si[i] != di[i] {
			t.Fatalf("%s: Indices[%d] sparse=%d dense=%d", when, i, si[i], di[i])
		}
	}
}

// TestSparseDenseDifferential drives random (site, state) streams and a
// random interleaving of Add/Union/NewOver/Reset/Clone through the sparse
// Map and the dense reference in lockstep, quick-check style. Any
// divergence in Count, Has, Indices, Union added-counts or NewOver deltas
// fails the property.
func TestSparseDenseDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 991, 20260806} {
		rng := rand.New(rand.NewSource(seed))
		// A small pool of maps so Union/NewOver mix independent histories.
		pool := make([]*pair, 4)
		for i := range pool {
			pool[i] = &pair{sparse: NewMap(), dense: &denseMap{}}
		}
		pick := func() *pair { return pool[rng.Intn(len(pool))] }

		for op := 0; op < 4000; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // Add a random edge; bias toward clustering
				p := pick()
				var idx Index
				if rng.Intn(2) == 0 {
					idx = EdgeIndex(uint32(rng.Intn(200)), uint64(rng.Intn(8)))
				} else {
					idx = Index(rng.Intn(MapSize))
				}
				gs, gd := p.sparse.Add(idx), p.dense.Add(idx)
				if gs != gd {
					t.Fatalf("seed %d op %d: Add(%d) sparse=%v dense=%v", seed, op, idx, gs, gd)
				}
				if !p.sparse.Has(idx) {
					t.Fatalf("seed %d op %d: Has(%d) false after Add", seed, op, idx)
				}
			case 5, 6: // Union two maps
				dst, src := pick(), pick()
				if dst == src {
					continue
				}
				as, ad := dst.sparse.Union(src.sparse), dst.dense.Union(src.dense)
				if as != ad {
					t.Fatalf("seed %d op %d: Union added sparse=%d dense=%d", seed, op, as, ad)
				}
			case 7: // NewOver query
				m, base := pick(), pick()
				ns, nd := m.sparse.NewOver(base.sparse), m.dense.NewOver(base.dense)
				if ns != nd {
					t.Fatalf("seed %d op %d: NewOver sparse=%d dense=%d", seed, op, ns, nd)
				}
				if m.sparse.NewOver(nil) != m.dense.NewOver(nil) {
					t.Fatalf("seed %d op %d: NewOver(nil) mismatch", seed, op)
				}
			case 8: // Reset one map
				p := pick()
				p.sparse.Reset()
				p.dense.Reset()
				if p.sparse.Count() != 0 {
					t.Fatalf("seed %d op %d: Count %d after Reset", seed, op, p.sparse.Count())
				}
			case 9: // Clone must be independent
				p := pick()
				c := p.sparse.Clone()
				if c.Count() != p.dense.Count() {
					t.Fatalf("seed %d op %d: Clone count %d want %d", seed, op, c.Count(), p.dense.Count())
				}
				c.Add(Index(rng.Intn(MapSize))) // must not affect p
			}
		}
		for i, p := range pool {
			p.check(t, "final pool["+string(rune('0'+i))+"]")
		}
	}
}

// TestSparseResetReuse pins the dirty-word invariant the engine hot loop
// depends on: a reset map behaves exactly like a fresh one, including
// after the Union-into-dirty-destination path.
func TestSparseResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := NewMap()
	other := NewMap()
	for round := 0; round < 50; round++ {
		ref := &denseMap{}
		for i := 0; i < 100; i++ {
			idx := EdgeIndex(uint32(rng.Intn(500)), uint64(round))
			m.Add(idx)
			ref.Add(idx)
		}
		if got, want := m.Count(), ref.Count(); got != want {
			t.Fatalf("round %d: count %d want %d", round, got, want)
		}
		si, di := m.Indices(), ref.Indices()
		for i := range si {
			if si[i] != di[i] {
				t.Fatalf("round %d: index %d diverges", round, i)
			}
		}
		other.Union(m)
		m.Reset()
		if m.Count() != 0 || len(m.Indices()) != 0 {
			t.Fatalf("round %d: map not empty after Reset", round)
		}
	}
	if other.Count() == 0 {
		t.Fatal("cumulative union lost everything")
	}
}
