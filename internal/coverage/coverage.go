// Package coverage provides the branch-coverage substrate used throughout
// CMFuzz. It replaces the Clang trace-pc-guard instrumentation the paper
// applies to C targets with an AFL-style edge map: instrumented subjects
// report (site, state) pairs through a Trace, each pair is hashed into a
// fixed-size edge map, and the number of populated map cells is the branch
// count every scheduling and evaluation component consumes.
package coverage

import "math/bits"

// MapSize is the number of distinct edge cells. It matches the classic
// 64 Ki AFL map, which is large enough that the six protocol subjects
// (tens of thousands of reachable edges) stay well below saturation.
const MapSize = 1 << 16

// wordCount is the number of 64-bit words backing a Map's bitset.
const wordCount = MapSize / 64

// summaryCount is the number of words in the dirty-word summary bitset:
// bit w of the summary is set iff bits[w] is nonzero.
const summaryCount = wordCount / 64

// Index identifies a single edge cell in a Map.
type Index uint32

// mix64 is the splitmix64 finalizer; it decorrelates nearby probe sites so
// edge identities spread uniformly across the map.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// EdgeIndex maps an instrumentation site and a dynamic state discriminator
// to an edge cell. The same (site, state) pair always lands in the same
// cell, so coverage is reproducible across runs and processes.
func EdgeIndex(site uint32, state uint64) Index {
	return Index(mix64(uint64(site)<<32|uint64(uint32(state))^(state>>32)) % MapSize)
}

// A Map is a set of covered edges. The zero value is not usable; create
// Maps with NewMap. Maps are not safe for concurrent mutation.
//
// The map is sparse-aware: alongside the dense bitset it maintains a
// two-level summary (one bit per backing word, set iff that word is
// nonzero), so per-exec operations — Reset, Union, NewOver, Indices —
// walk only the handful of words an execution actually dirtied instead
// of all MapSize/64 of them. A typical protocol exec touches tens of
// words; the summary keeps the whole hot loop O(dirty words).
type Map struct {
	bits [wordCount]uint64
	// summary bit w is set iff bits[w] != 0 — the dirty-word index that
	// every sparse iteration below drives off. Invariant maintained by
	// Add, Union and Reset; Clone copies it wholesale.
	summary [summaryCount]uint64
	count   int
}

// NewMap returns an empty coverage map.
func NewMap() *Map { return &Map{} }

// Add marks the edge cell idx as covered and reports whether it was
// previously uncovered.
func (m *Map) Add(idx Index) bool {
	w, b := idx/64, idx%64
	mask := uint64(1) << b
	if m.bits[w]&mask != 0 {
		return false
	}
	m.bits[w] |= mask
	m.summary[w/64] |= 1 << (w % 64)
	m.count++
	return true
}

// Has reports whether the edge cell idx is covered.
func (m *Map) Has(idx Index) bool {
	return m.bits[idx/64]&(1<<(idx%64)) != 0
}

// Count returns the number of covered edges — the "branches covered"
// metric used by every table and figure.
func (m *Map) Count() int { return m.count }

// Union merges o into m and returns how many edges were new to m.
// A nil o is treated as empty. Only o's dirty words are visited.
func (m *Map) Union(o *Map) int {
	if o == nil {
		return 0
	}
	added := 0
	for s, sw := range o.summary {
		for sw != 0 {
			i := s*64 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			nw := o.bits[i] &^ m.bits[i]
			if nw != 0 {
				added += bits.OnesCount64(nw)
				m.bits[i] |= nw
				m.summary[s] |= 1 << (i % 64)
			}
		}
	}
	m.count += added
	return added
}

// NewOver returns how many edges in m are absent from base, without
// modifying either map. A nil base is treated as empty. Only m's dirty
// words are visited, so querying a per-exec map against a large
// cumulative base costs O(words the exec touched).
func (m *Map) NewOver(base *Map) int {
	if base == nil {
		return m.count
	}
	n := 0
	for s, sw := range m.summary {
		for sw != 0 {
			i := s*64 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			if d := m.bits[i] &^ base.bits[i]; d != 0 {
				n += bits.OnesCount64(d)
			}
		}
	}
	return n
}

// Clone returns an independent copy of m.
func (m *Map) Clone() *Map {
	c := *m
	return &c
}

// Reset clears all covered edges. Only words recorded dirty in the
// summary are zeroed, so resetting a per-exec map between executions
// costs O(words touched), not O(MapSize/64).
func (m *Map) Reset() {
	for s, sw := range m.summary {
		for sw != 0 {
			m.bits[s*64+bits.TrailingZeros64(sw)] = 0
			sw &= sw - 1
		}
		m.summary[s] = 0
	}
	m.count = 0
}

// Indices returns the covered edge cells in ascending order. It is meant
// for tests and diagnostics, not hot paths.
func (m *Map) Indices() []Index {
	out := make([]Index, 0, m.count)
	for s, sw := range m.summary {
		for sw != 0 {
			w := s*64 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			word := m.bits[w]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				out = append(out, Index(w*64+b))
				word &= word - 1
			}
		}
	}
	return out
}

// A Trace is the probe interface handed to instrumented subjects. Every
// call records one edge into the trace's per-execution map. Subjects call
// Hit for plain basic blocks and Edge when a dynamic value (a parser state,
// an option number, a packet kind) meaningfully distinguishes paths.
type Trace struct {
	m *Map
}

// NewTrace returns a Trace backed by a fresh map.
func NewTrace() *Trace { return &Trace{m: NewMap()} }

// Hit records coverage of the static probe site.
func (t *Trace) Hit(site uint32) {
	if t == nil {
		return
	}
	t.m.Add(EdgeIndex(site, 0))
}

// Edge records coverage of a probe site refined by a dynamic state value,
// mirroring how distinct branch targets produce distinct trace-pc-guard
// callbacks.
func (t *Trace) Edge(site uint32, state uint64) {
	if t == nil {
		return
	}
	t.m.Add(EdgeIndex(site, state))
}

// Map exposes the edges recorded so far.
func (t *Trace) Map() *Map { return t.m }

// Count returns the number of distinct edges recorded so far.
func (t *Trace) Count() int { return t.m.Count() }

// Reset clears the trace for the next execution.
func (t *Trace) Reset() { t.m.Reset() }
