package coverage

import "testing"

// benchSites is the per-exec edge workload: roughly what one protocol
// message sequence touches (a few dozen distinct (site, state) pairs).
const benchSites = 48

// BenchmarkTraceResetUnion measures the per-exec coverage bookkeeping the
// engine hot loop pays around each execution: fold a typical exec's edges
// into a scratch map, merge the scratch into the cumulative instance map,
// and reset the scratch for the next exec. Edge recording itself (the
// subject-side instrumentation calls) is excluded — it is the workload,
// not the bookkeeping; BenchmarkTraceExec measures the combined path.
func BenchmarkTraceResetUnion(b *testing.B) {
	// Pre-built per-exec footprints: what a trace map holds after one run.
	execMaps := make([]*Map, 7)
	for v := range execMaps {
		execMaps[v] = NewMap()
		for s := 0; s < benchSites; s++ {
			execMaps[v].Add(EdgeIndex(uint32(s), uint64(v)))
		}
	}
	scratch := NewMap()
	global := NewMap()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Union(execMaps[i%len(execMaps)])
		global.Union(scratch)
		scratch.Reset()
	}
}

// BenchmarkTraceResetUnionDense runs the identical workload through the
// pre-optimization full-scan reference implementation (denseMap in
// sparse_diff_test.go), so the sparse speedup is measurable inside one
// binary: compare against BenchmarkTraceResetUnion.
func BenchmarkTraceResetUnionDense(b *testing.B) {
	execMaps := make([]*denseMap, 7)
	for v := range execMaps {
		execMaps[v] = &denseMap{}
		for s := 0; s < benchSites; s++ {
			execMaps[v].Add(EdgeIndex(uint32(s), uint64(v)))
		}
	}
	scratch := &denseMap{}
	global := &denseMap{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Union(execMaps[i%len(execMaps)])
		global.Union(scratch)
		scratch.Reset()
	}
}

// BenchmarkTraceExec is the end-to-end per-exec coverage path exactly as
// Engine.Step drives it: record the exec's edges through the Trace probe
// interface, union into the cumulative map, reset the trace.
func BenchmarkTraceExec(b *testing.B) {
	tr := NewTrace()
	global := NewMap()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < benchSites; s++ {
			tr.Edge(uint32(s), uint64(i%7))
		}
		global.Union(tr.Map())
		tr.Reset()
	}
}

// BenchmarkMapNewOver measures the saturation/scheduling-side query cost
// on a sparse per-exec map against a dense-ish cumulative base.
func BenchmarkMapNewOver(b *testing.B) {
	base := NewMap()
	for s := 0; s < 4096; s++ {
		base.Add(EdgeIndex(uint32(s), 0))
	}
	m := NewMap()
	for s := 0; s < benchSites; s++ {
		m.Add(EdgeIndex(uint32(s), 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.NewOver(base) < 0 {
			b.Fatal("impossible")
		}
	}
}
