package coverage

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomMap populates a map with n random edges (duplicates collapse).
func randomMap(rng *rand.Rand, n int) *Map {
	m := NewMap()
	for i := 0; i < n; i++ {
		m.Add(Index(rng.Intn(MapSize)))
	}
	return m
}

// TestDeltaQuickCheck is the differential property pin: for random (m,
// base) pairs, ApplyDelta(EncodeDelta(m, base)) must leave base exactly
// equal to the full-map union base ∪ m, with the reported added count
// matching Union's.
func TestDeltaQuickCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		m := randomMap(rng, rng.Intn(400))
		base := randomMap(rng, rng.Intn(400))
		// Overlap: share some edges so the delta is a strict subset
		// sometimes.
		for _, idx := range m.Indices() {
			if rng.Intn(3) == 0 {
				base.Add(idx)
			}
		}

		want := base.Clone()
		wantAdded := want.Union(m)

		payload := EncodeDelta(m, base)
		gotAdded, err := base.ApplyDelta(payload)
		if err != nil {
			t.Fatalf("trial %d: ApplyDelta: %v", trial, err)
		}
		if gotAdded != wantAdded {
			t.Fatalf("trial %d: added %d, Union added %d", trial, gotAdded, wantAdded)
		}
		if base.Count() != want.Count() {
			t.Fatalf("trial %d: count %d != union count %d", trial, base.Count(), want.Count())
		}
		if !bytes.Equal(indicesBytes(base), indicesBytes(want)) {
			t.Fatalf("trial %d: delta-applied map differs from union", trial)
		}
	}
}

func indicesBytes(m *Map) []byte {
	var b bytes.Buffer
	for _, i := range m.Indices() {
		b.WriteByte(byte(i))
		b.WriteByte(byte(i >> 8))
	}
	return b.Bytes()
}

func TestDeltaEmptyAndNil(t *testing.T) {
	m := NewMap()
	if got := EncodeDelta(m, nil); len(got) != 0 {
		t.Fatalf("empty map encoded to %d bytes", len(got))
	}
	if got := EncodeDelta(nil, nil); got != nil {
		t.Fatalf("nil map encoded to %v", got)
	}
	base := NewMap()
	if added, err := base.ApplyDelta(nil); err != nil || added != 0 {
		t.Fatalf("empty payload: added=%d err=%v", added, err)
	}
	// Delta of m against itself is empty: nothing new.
	m.Add(7)
	m.Add(65535)
	if got := EncodeDelta(m, m); len(got) != 0 {
		t.Fatalf("self-delta encoded to %d bytes", len(got))
	}
}

func TestDeltaProportionalToNewEdges(t *testing.T) {
	base := randomMap(rand.New(rand.NewSource(1)), 5000)
	m := base.Clone()
	m.Add(Index(123)) // likely already present; force a fresh edge
	fresh := Index(54321)
	for m.Has(fresh) {
		fresh++
	}
	m.Add(fresh)
	payload := EncodeDelta(m, base)
	// One or two dirty words at ~9-10 bytes each — nothing near the 8 KiB
	// a dense map dump would cost.
	if len(payload) > 64 {
		t.Fatalf("delta for <=2 new edges is %d bytes", len(payload))
	}
}

func TestDeltaMalformed(t *testing.T) {
	m := NewMap()
	if _, err := m.ApplyDelta([]byte{0x01}); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Word index past the map: gap varint of wordCount.
	if _, err := m.ApplyDelta([]byte{0x80, 0x80, 0x01, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("out-of-range word index accepted")
	}
}

func TestDeltaCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomMap(rng, 300)
	base := randomMap(rng, 100)
	if !bytes.Equal(EncodeDelta(m, base), EncodeDelta(m, base)) {
		t.Fatal("encoding is not deterministic")
	}
}
