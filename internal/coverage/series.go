package coverage

import "sort"

// A Point is one sample of a coverage time series: at virtual time T
// (seconds since campaign start) the cumulative branch count was Count.
type Point struct {
	T     float64
	Count int
}

// A Series records cumulative coverage over virtual time. Samples are
// appended in nondecreasing time order; redundant samples (no growth) are
// collapsed so long campaigns stay compact. The zero value is ready to use.
type Series struct {
	pts []Point
}

// Observe appends a sample. Samples must arrive with nondecreasing T and
// nondecreasing Count; Observe keeps only samples that change the count,
// plus the very first one.
func (s *Series) Observe(t float64, count int) {
	if n := len(s.pts); n > 0 && s.pts[n-1].Count == count {
		return
	}
	s.pts = append(s.pts, Point{T: t, Count: count})
}

// Len returns the number of retained samples.
func (s *Series) Len() int { return len(s.pts) }

// Points returns the retained samples in time order. The returned slice
// aliases internal storage and must not be modified.
func (s *Series) Points() []Point { return s.pts }

// Final returns the last observed count, or 0 for an empty series.
func (s *Series) Final() int {
	if len(s.pts) == 0 {
		return 0
	}
	return s.pts[len(s.pts)-1].Count
}

// At returns the coverage in effect at virtual time t (step semantics:
// the count of the latest sample with T <= t). It returns 0 before the
// first sample.
func (s *Series) At(t float64) int {
	i := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T > t })
	if i == 0 {
		return 0
	}
	return s.pts[i-1].Count
}

// TimeToReach returns the earliest virtual time at which the series reached
// at least count edges, and whether it ever did. Reaching zero coverage
// takes zero time.
func (s *Series) TimeToReach(count int) (float64, bool) {
	if count <= 0 {
		return 0, true
	}
	i := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].Count >= count })
	if i == len(s.pts) {
		return 0, false
	}
	return s.pts[i].T, true
}

// Sample returns the series resampled at n evenly spaced times across
// [0, horizon], suitable for plotting Figure 4 curves. n must be >= 2.
func (s *Series) Sample(horizon float64, n int) []Point {
	out := make([]Point, n)
	for i := range out {
		t := horizon * float64(i) / float64(n-1)
		out[i] = Point{T: t, Count: s.At(t)}
	}
	return out
}

// MeanOf averages several series point-wise at n evenly spaced times across
// [0, horizon] — the "average of 5 repetitions" aggregation the paper uses.
// It returns nil if series is empty.
func MeanOf(series []*Series, horizon float64, n int) []Point {
	if len(series) == 0 {
		return nil
	}
	out := make([]Point, n)
	for i := range out {
		t := horizon * float64(i) / float64(n-1)
		sum := 0
		for _, s := range series {
			sum += s.At(t)
		}
		out[i] = Point{T: t, Count: sum / len(series)}
	}
	return out
}

// A Saturation detector reports when coverage has stopped growing for a
// configured window of virtual time. CMFuzz instances consult it to decide
// when to mutate configuration values (paper §III-B2: mutations are applied
// "only if the current instance's coverage has reached saturation").
type Saturation struct {
	// Window is how long coverage must stay flat to count as saturated.
	Window float64
	// MinGain is the growth (in edges) since the last recorded gain that
	// counts as progress; smaller trickles are treated as flat. The zero
	// value means any growth counts.
	MinGain int
	// MinGainFrac scales the progress threshold with the current count:
	// the effective threshold is max(MinGain, MinGainFrac·count). Wide
	// hash-family instrumentation trickles a near-constant share of its
	// size long after a configuration is effectively exhausted.
	MinGainFrac float64

	lastGain  float64
	lastCount int
	started   bool
}

// NewSaturation returns a detector with the given flat-coverage window.
func NewSaturation(window float64) *Saturation {
	return &Saturation{Window: window}
}

// Observe feeds the current virtual time and cumulative coverage count.
func (s *Saturation) Observe(t float64, count int) {
	minGain := s.MinGain
	if frac := int(s.MinGainFrac * float64(s.lastCount)); frac > minGain {
		minGain = frac
	}
	if minGain < 1 {
		minGain = 1
	}
	if !s.started || count >= s.lastCount+minGain {
		s.lastGain = t
		s.lastCount = count
		s.started = true
	}
}

// Saturated reports whether coverage has been flat for at least Window
// as of virtual time t.
func (s *Saturation) Saturated(t float64) bool {
	return s.started && t-s.lastGain >= s.Window
}

// Reset restarts the detector, typically after a configuration mutation
// opens a new region of the program.
func (s *Saturation) Reset(t float64) {
	s.lastGain = t
	s.lastCount = -1
	s.started = false
}
