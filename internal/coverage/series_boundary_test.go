package coverage

import "testing"

// TestSeriesAtBoundaries pins At's step semantics at the exact edges:
// a query precisely at a sample's T returns that sample, a query any
// amount before the first sample returns 0, and queries between samples
// hold the earlier count.
func TestSeriesAtBoundaries(t *testing.T) {
	var s Series
	// First sample deliberately NOT at t=0, so "before first sample"
	// differs from "at zero".
	s.Observe(10, 7)
	s.Observe(30, 12)

	cases := []struct {
		t    float64
		want int
	}{
		{9.999999, 0}, // strictly before the first sample
		{10, 7},       // exactly at the first sample
		{10.000001, 7},
		{29.999999, 7}, // just before the second sample
		{30, 12},       // exactly at the second sample
		{1e12, 12},     // far beyond the last sample
		{0, 0},
		{-5, 0},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

// TestSeriesTimeToReachBoundaries pins TimeToReach at the edges: zero
// and negative targets take zero time even on an empty series, a target
// exactly equal to Final is reached at Final's sample time, and any
// target beyond Final reports unreached.
func TestSeriesTimeToReachBoundaries(t *testing.T) {
	var empty Series
	if tt, ok := empty.TimeToReach(0); !ok || tt != 0 {
		t.Fatalf("empty TimeToReach(0) = %v,%v", tt, ok)
	}
	if tt, ok := empty.TimeToReach(-3); !ok || tt != 0 {
		t.Fatalf("empty TimeToReach(-3) = %v,%v", tt, ok)
	}
	if _, ok := empty.TimeToReach(1); ok {
		t.Fatal("empty series claims to reach 1 edge")
	}

	var s Series
	s.Observe(10, 7)
	s.Observe(30, 12)
	if tt, ok := s.TimeToReach(7); !ok || tt != 10 {
		t.Fatalf("TimeToReach(first count) = %v,%v, want 10,true", tt, ok)
	}
	if tt, ok := s.TimeToReach(8); !ok || tt != 30 {
		t.Fatalf("TimeToReach(between counts) = %v,%v, want 30,true", tt, ok)
	}
	if tt, ok := s.TimeToReach(s.Final()); !ok || tt != 30 {
		t.Fatalf("TimeToReach(Final) = %v,%v, want 30,true", tt, ok)
	}
	if _, ok := s.TimeToReach(s.Final() + 1); ok {
		t.Fatal("count beyond Final reported reached")
	}
}
