package live

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
)

// nsPort is the port the live target occupies inside its netsim
// namespace. The virtual overlay carries fuzzer→target messages (so
// netsim's loss/latency knobs impair the live link like any simulated
// one); the real socket hop happens inside Message.
const nsPort = 4242

// A Subject adapts one live target spec to the subject contract, so
// the whole campaign stack — identification, relation probing,
// cohesive grouping, saturation-driven mutation, the fleet bandit —
// drives a real server without knowing it.
//
// The safety rails (rate limiter, kill switch) live here, shared by
// every instance of the campaign: Rails.Rate bounds the campaign's
// aggregate send rate and one restart storm anywhere trips the whole
// campaign.
type Subject struct {
	spec    Spec
	limiter *RateLimiter
	ks      *KillSwitch
	rec     *telemetry.Recorder

	// fuzzing flips true at the first fuzzed message. Before that, every
	// Start is a relation probe or initial boot — process churn that is
	// the scheduler's business, not a "target restart" worth alarming on.
	fuzzing atomic.Bool
}

// NewSubject validates the spec, applies defaults, and builds the
// campaign-shared rails.
func NewSubject(spec Spec) (*Subject, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	s := &Subject{spec: spec}
	s.limiter = NewRateLimiter(spec.Rails.Rate, spec.Rails.Burst)
	s.ks = NewKillSwitch(spec.Rails, nil)
	return s, nil
}

// SubjectFromJSON rebuilds a Subject from a JSON-encoded Spec — the
// form that travels in fleet campaign specs and over the dist wire.
func SubjectFromJSON(raw string) (*Subject, error) {
	spec, err := ParseSpec([]byte(raw))
	if err != nil {
		return nil, err
	}
	return NewSubject(spec)
}

// LiveSpecJSON returns the JSON spec this subject was built from. The
// dist coordinator detects live subjects through this method (a plain
// interface assertion, so dist never imports live).
func (s *Subject) LiveSpecJSON() string { return s.spec.JSON() }

// KillSwitch exposes the campaign kill switch so the driver can wire
// its OnTrip hook to the campaign context's cancel function.
func (s *Subject) KillSwitch() *KillSwitch { return s.ks }

// SetRecorder directs the live counters (target_restarts,
// target_rate_limited, target_hangs) into rec. Nil is fine.
func (s *Subject) SetRecorder(rec *telemetry.Recorder) { s.rec = rec }

// Info implements subject.Subject.
func (s *Subject) Info() subject.Info {
	tr := subject.Datagram
	if s.spec.Transport == TransportTCP {
		tr = subject.Stream
	}
	return subject.Info{
		Protocol:       strings.ToUpper(s.spec.Name),
		Implementation: "live target",
		Transport:      tr,
		Port:           nsPort,
	}
}

// ConfigInput implements subject.Subject: the target's own config file
// template is the identification input Algorithm 1 mines.
func (s *Subject) ConfigInput() configspec.Input {
	if s.spec.ConfigTemplate == "" {
		return configspec.Input{}
	}
	return configspec.Input{Files: []configspec.File{{Name: s.spec.ConfigName, Content: s.spec.ConfigTemplate}}}
}

// PitXML implements subject.Subject.
func (s *Subject) PitXML() string {
	if s.spec.PitXML != "" {
		return s.spec.PitXML
	}
	return genericPitXML
}

// NewInstance implements subject.Subject.
func (s *Subject) NewInstance() subject.Instance {
	return &Instance{sub: s, spec: s.spec, cls: newClassifier(), buf: make([]byte, 64<<10)}
}

// An Instance is one live target instance: a spawned server process
// (or, in attach mode, a remote address) plus the socket to it.
// Instances are not safe for concurrent use, matching the contract.
type Instance struct {
	sub  *Subject
	spec Spec
	cfg  map[string]string // last applied config, for respawns
	proc *process          // nil in attach mode
	conn net.Conn
	cls  *classifier

	// misses counts consecutive messages that drew no response; at
	// HangThreshold the target is declared hung.
	misses int
	buf    []byte // reused read buffer; responses are copied out
}

// addr returns the target's socket address.
func (in *Instance) addr() string {
	if in.proc != nil {
		return fmt.Sprintf("127.0.0.1:%d", in.proc.port)
	}
	return in.spec.Addr
}

// dial (re)opens the socket to the target. UDP uses a connected socket
// so ICMP port-unreachable surfaces as a write/read error instead of
// silence.
func (in *Instance) dial() error {
	in.closeConn()
	conn, err := net.DialTimeout(in.spec.Transport, in.addr(), in.spec.readyTimeout())
	if err != nil {
		return err
	}
	in.conn = conn
	return nil
}

func (in *Instance) closeConn() {
	if in.conn != nil {
		in.conn.Close()
		in.conn = nil
	}
}

// Start implements subject.Instance: render cfg, spawn the server,
// wait for readiness, and report the readiness banner as startup
// coverage. During fuzzing each Start is a configuration-mutation
// restart and is counted as one.
func (in *Instance) Start(cfg map[string]string, tr *coverage.Trace) error {
	if in.sub.ks.Tripped() {
		return fmt.Errorf("live: kill switch tripped: %s", in.sub.ks.Reason())
	}
	in.cfg = cfg
	if len(in.spec.Cmd) == 0 {
		// Attach mode: nothing to spawn or configure; the boot edge is the
		// only startup coverage.
		tr.Hit(siteBoot)
		if in.spec.Transport == TransportUDP {
			return in.dial()
		}
		return nil
	}
	p, err := spawn(in.spec, cfg)
	if err != nil {
		return err
	}
	in.stopProc()
	in.proc = p
	if in.sub.fuzzing.Load() {
		in.sub.rec.Count(telemetry.CtrTargetRestarts, 1)
		in.sub.ks.NoteRestart()
	}
	bannerCoverage(tr, p.banner)
	if in.spec.Transport == TransportUDP {
		return in.dial()
	}
	// TCP connects per session, in NewSession.
	return nil
}

// SetTrace implements subject.Instance.
func (in *Instance) SetTrace(tr *coverage.Trace) { in.cls.setTrace(tr) }

// NewSession implements subject.Instance: reset the inferred state
// chain and, for TCP, open a fresh connection.
func (in *Instance) NewSession() {
	in.cls.newSession()
	if in.spec.Transport == TransportTCP && !in.sub.ks.Tripped() {
		// A dial failure is diagnosed in Message (dead process → crash,
		// otherwise counted as a miss), so it is not fatal here.
		_ = in.dial()
	}
}

// Message implements subject.Instance: one request over the real
// socket, responses collected under the read deadline and folded into
// inferred coverage. A dead target process panics with the triaged
// *bugs.Crash (captured by the engine's Run wrapper) after respawning
// a replacement, so fuzzing continues seamlessly — exactly the flow an
// in-process subject's seeded defect takes.
func (in *Instance) Message(payload []byte) [][]byte {
	s := in.sub
	if s.ks.Tripped() {
		return nil
	}
	s.fuzzing.Store(true)
	if s.limiter.Acquire(s.ks) {
		s.rec.Count(telemetry.CtrTargetRateLimited, 1)
	}
	if s.ks.Tripped() {
		return nil
	}
	if in.proc != nil && !in.proc.alive() {
		crash := in.proc.crash(s.spec.Name)
		in.respawn()
		panic(crash)
	}

	sent := false
	if in.conn != nil || in.dial() == nil {
		in.conn.SetWriteDeadline(time.Now().Add(in.spec.writeTimeout()))
		if _, err := in.conn.Write(payload); err == nil {
			sent = true
		}
	}

	var resps [][]byte
	if sent {
		// First response gets the full read deadline; after it, only a
		// short drain window for multi-packet replies.
		deadline := time.Now().Add(in.spec.readTimeout())
		for {
			in.conn.SetReadDeadline(deadline)
			n, err := in.conn.Read(in.buf)
			if err != nil {
				break
			}
			if n > 0 {
				resps = append(resps, append([]byte(nil), in.buf[:n]...))
			}
			deadline = time.Now().Add(time.Millisecond)
		}
	}
	in.cls.observe(resps)

	if len(resps) == 0 {
		// A send failure and a silent target look the same from here:
		// another strike toward the hang threshold.
		in.misses++
		if in.misses >= in.spec.HangThreshold {
			in.misses = 0
			if in.proc != nil && !in.proc.alive() {
				// The silence was death, not a wedge: triage the exit.
				crash := in.proc.crash(s.spec.Name)
				in.respawn()
				panic(crash)
			}
			s.rec.Count(telemetry.CtrTargetHangs, 1)
			s.ks.NoteHang()
			if in.proc != nil && !s.ks.Tripped() {
				in.respawn()
			}
		}
	} else {
		in.misses = 0
	}
	return resps
}

// respawn replaces a dead or hung target process under the same
// configuration. Every respawn counts as a restart; a failed respawn
// trips the kill switch (the campaign cannot continue without a
// target, and limping on would just spin the storm window).
func (in *Instance) respawn() {
	s := in.sub
	if in.proc == nil {
		return
	}
	in.stopProc()
	in.closeConn()
	in.misses = 0
	s.rec.Count(telemetry.CtrTargetRestarts, 1)
	s.ks.NoteRestart()
	if s.ks.Tripped() {
		return
	}
	p, err := spawn(in.spec, in.cfg)
	if err != nil {
		s.ks.Trip("respawn failed: " + err.Error())
		return
	}
	in.proc = p
	if in.spec.Transport == TransportUDP {
		if err := in.dial(); err != nil {
			s.ks.Trip("redial failed: " + err.Error())
		}
	}
}

func (in *Instance) stopProc() {
	if in.proc != nil {
		in.proc.stop()
		in.proc = nil
	}
}

// Close implements subject.Instance.
func (in *Instance) Close() {
	in.closeConn()
	in.stopProc()
}
