package live

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/subject"
)

// echoBin is the sample external echo server, built once per test run.
// It is a genuinely separate process: these tests exercise the same
// spawn/readiness/crash/hang machinery the CI smoke drives.
var echoBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "cmfuzz-live-test-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	echoBin = filepath.Join(dir, "echoserver")
	if out, err := exec.Command("go", "build", "-o", echoBin, "cmfuzz/examples/echoserver").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building echoserver fixture: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

const echoTemplate = `# sample echo server configuration
mode=plain
#mode=upper
#mode=reverse
verbose=false
#verbose=true
max_payload=1024
#max_payload=64
`

func echoSpec() Spec {
	return Spec{
		Cmd:            []string{echoBin, "-port", "{port}", "-config", "{config}"},
		Transport:      TransportUDP,
		ConfigTemplate: echoTemplate,
		ConfigName:     "echo.conf",
		ReadTimeoutMS:  200,
	}
}

func TestRenderConfigFile(t *testing.T) {
	tmpl := "# comment\nmode=plain\n#verbose=true\nkeep=1\n"
	got := RenderConfigFile(tmpl, map[string]string{"mode": "upper", "verbose": "true", "extra": "x"})
	want := "# comment\nmode=upper\nverbose=true\nkeep=1\n\nextra=x\n"
	if got != want {
		t.Fatalf("rendered:\n%q\nwant:\n%q", got, want)
	}
}

func TestSpecValidation(t *testing.T) {
	if err := (Spec{}).Validate(); err == nil {
		t.Fatal("empty spec must fail validation")
	}
	if err := (Spec{Cmd: []string{"x"}, Addr: "h:1"}).Validate(); err == nil {
		t.Fatal("cmd+addr must be mutually exclusive")
	}
	if err := (Spec{Cmd: []string{"x"}, Transport: "sctp"}).Validate(); err == nil {
		t.Fatal("unknown transport must fail")
	}
	s := Spec{Cmd: []string{"srv"}, Rails: Rails{Rate: 100, MaxRestarts: 5}}.withDefaults()
	if s.Rails.Burst != 10 || s.Rails.RestartWindow != 30 {
		t.Fatalf("defaults not applied: %+v", s.Rails)
	}
	rt, err := ParseSpec([]byte(s.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	if rt.JSON() != s.JSON() {
		t.Fatalf("spec did not round-trip:\n%s\n%s", s.JSON(), rt.JSON())
	}
}

func TestClassifierBounded(t *testing.T) {
	c := newClassifier()
	tr := coverage.NewTrace()
	c.setTrace(tr)
	c.newSession()
	// Responses with identical shape add nothing once the class and its
	// self-transition have both been seen.
	c.observe([][]byte{[]byte("hello")})
	c.observe([][]byte{[]byte("hello")})
	n := tr.Count()
	for i := 0; i < 50; i++ {
		c.observe([][]byte{[]byte("hello")})
	}
	if tr.Count() != n {
		t.Fatalf("repeated identical responses grew coverage %d -> %d", n, tr.Count())
	}
	// A different length bucket or first nibble is a new class.
	c.observe([][]byte{[]byte(strings.Repeat("x", 300))})
	if tr.Count() <= n {
		t.Fatal("new response shape did not add coverage")
	}
	// Silence records its own edge.
	before := tr.Count()
	c.observe(nil)
	if tr.Count() != before+1 {
		t.Fatalf("silence edge: %d -> %d", before, tr.Count())
	}
}

func TestGenericPitParses(t *testing.T) {
	pit, err := fuzz.ParsePit(genericPitXML)
	if err != nil {
		t.Fatalf("generic pit: %v", err)
	}
	if pit.DefaultStateModel() == nil {
		t.Fatal("generic pit has no state model")
	}
}

func TestProbeStartupCoverageTracksConfig(t *testing.T) {
	sub, err := NewSubject(echoSpec())
	if err != nil {
		t.Fatal(err)
	}
	plain := subject.Probe(sub, map[string]string{"mode": "plain", "verbose": "false"})
	loud := subject.Probe(sub, map[string]string{"mode": "upper", "verbose": "true"})
	if plain == 0 || loud == 0 {
		t.Fatalf("probes failed: plain=%d loud=%d", plain, loud)
	}
	if loud <= plain {
		t.Fatalf("feature-rich config should show more startup coverage: plain=%d loud=%d", plain, loud)
	}
}

func TestLiveEchoRoundTrip(t *testing.T) {
	sub, err := NewSubject(echoSpec())
	if err != nil {
		t.Fatal(err)
	}
	inst := sub.NewInstance()
	defer inst.Close()
	tr := coverage.NewTrace()
	if err := inst.Start(map[string]string{"mode": "upper"}, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Count() == 0 {
		t.Fatal("no startup coverage from banner")
	}
	exe := coverage.NewTrace()
	inst.SetTrace(exe)
	inst.NewSession()
	resps := inst.Message([]byte("hello"))
	if len(resps) != 1 || string(resps[0]) != "HELLO" {
		t.Fatalf("resps = %q, want [HELLO]", resps)
	}
	if exe.Count() == 0 {
		t.Fatal("response produced no inferred coverage")
	}
}

func TestLiveTCPRoundTrip(t *testing.T) {
	spec := echoSpec()
	spec.Cmd = append(spec.Cmd, "-transport", "tcp")
	spec.Transport = TransportTCP
	sub, err := NewSubject(spec)
	if err != nil {
		t.Fatal(err)
	}
	inst := sub.NewInstance()
	defer inst.Close()
	tr := coverage.NewTrace()
	if err := inst.Start(map[string]string{"mode": "reverse"}, tr); err != nil {
		t.Fatal(err)
	}
	inst.SetTrace(coverage.NewTrace())
	inst.NewSession()
	resps := inst.Message([]byte("abc"))
	if len(resps) != 1 || string(resps[0]) != "cba" {
		t.Fatalf("resps = %q, want [cba]", resps)
	}
}

func TestDeadProcessBecomesCrash(t *testing.T) {
	spec := echoSpec()
	spec.HangThreshold = 100 // keep hang detection out of this test
	sub, err := NewSubject(spec)
	if err != nil {
		t.Fatal(err)
	}
	inst := sub.NewInstance().(*Instance)
	defer inst.Close()
	if err := inst.Start(map[string]string{"crash_on": "BOOM"}, coverage.NewTrace()); err != nil {
		t.Fatal(err)
	}
	inst.SetTrace(coverage.NewTrace())
	inst.NewSession()
	inst.Message([]byte("xxBOOMxx")) // server exits before replying
	// Wait for the exit observer to reap the process.
	deadline := time.Now().Add(5 * time.Second)
	for inst.proc.alive() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if inst.proc.alive() {
		t.Fatal("server did not die on crash token")
	}
	crash := bugs.Capture(func() { inst.Message([]byte("after")) })
	if crash == nil {
		t.Fatal("dead process did not surface as a crash")
	}
	if crash.Kind != bugs.AbnormalExit {
		t.Fatalf("kind = %v, want abnormal-exit", crash.Kind)
	}
	if !strings.Contains(crash.Function, "exit:134") {
		t.Fatalf("function = %q, want exit:134", crash.Function)
	}
	if !strings.Contains(crash.Detail, "crash token") {
		t.Fatalf("detail lost the stderr tail: %q", crash.Detail)
	}
	// The driver respawned a replacement under the same config: fuzzing
	// continues without campaign intervention.
	resps := inst.Message([]byte("recovered"))
	if len(resps) != 1 || string(resps[0]) != "recovered" {
		t.Fatalf("post-respawn resps = %q", resps)
	}
}

func TestHangRespawnsThenStormTripsKillSwitch(t *testing.T) {
	spec := echoSpec()
	spec.ReadTimeoutMS = 25
	spec.HangThreshold = 2
	spec.Rails = Rails{MaxRestarts: 2, RestartWindow: 300}
	sub, err := NewSubject(spec)
	if err != nil {
		t.Fatal(err)
	}
	var tripReason string
	sub.KillSwitch().SetOnTrip(func(r string) { tripReason = r })
	inst := sub.NewInstance().(*Instance)
	defer inst.Close()
	// wedge_after=1: one echo, then silence — every hang respawns into
	// another wedge, so the restart storm is inevitable.
	if err := inst.Start(map[string]string{"wedge_after": "1"}, coverage.NewTrace()); err != nil {
		t.Fatal(err)
	}
	inst.SetTrace(coverage.NewTrace())
	inst.NewSession()
	for i := 0; i < 40 && !sub.KillSwitch().Tripped(); i++ {
		inst.Message([]byte("m"))
	}
	if !sub.KillSwitch().Tripped() {
		t.Fatal("restart storm never tripped the kill switch")
	}
	if !strings.Contains(tripReason, "restart storm") {
		t.Fatalf("trip reason = %q", tripReason)
	}
	// A tripped campaign goes inert: no sockets, no spawns.
	if resps := inst.Message([]byte("m")); resps != nil {
		t.Fatalf("tripped instance still answered: %q", resps)
	}
	if err := inst.Start(map[string]string{}, coverage.NewTrace()); err == nil {
		t.Fatal("Start after trip must fail")
	}
}
