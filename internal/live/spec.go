// Package live drives real protocol servers over actual UDP/TCP
// sockets — the target lives outside this repository and outside this
// process. It is the bridge between CMFuzz's virtual-clock campaign
// machinery and software that does not cooperate: a process lifecycle
// manager renders each scheduled configuration to the target's native
// surface (config file, environment, CLI flags), spawns the server,
// waits for readiness, and restarts it on every configuration mutation
// and on crash or hang; a socket transport implements the subject
// Instance contract with per-message read/write deadlines; campaign
// safety rails (a token-bucket rate limiter and a kill switch) bound
// the damage a runaway campaign can do to the host; and an inferred
// coverage layer maps (response-class, state-transition) observations
// onto the sparse coverage map so saturation detection, cohesive group
// scheduling, and the fleet bandit keep working without any
// instrumentation in the target.
//
// Determinism caveat: unlike the in-process simulation subjects, a live
// campaign is NOT reproducible bit-for-bit — process scheduling, socket
// timing, and the target's own behavior all leak wall-clock
// nondeterminism into the inferred coverage stream. The campaign
// machinery runs unchanged; only the byte-identity guarantees are
// forfeit, which is inherent to fuzzing real software.
package live

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Transport names for Spec.Transport.
const (
	TransportUDP = "udp"
	TransportTCP = "tcp"
)

// Render modes for Spec.Render: how a scheduled configuration
// assignment reaches the target process.
const (
	RenderFile = "file" // rendered into the config file template; {config} in Cmd is the path
	RenderEnv  = "env"  // exported as CMFUZZ_CFG_<KEY>=value environment variables
	RenderCLI  = "cli"  // appended as --key=value flags
)

// Rails bounds a live campaign's interaction with the host machine.
// The zero value disables both rails.
type Rails struct {
	// Rate caps outbound messages per wall-clock second through a token
	// bucket (0 disables). Acquisition blocks; each blocking acquisition
	// counts once toward cmfuzz_target_rate_limited_total.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity (default max(1, Rate/10)).
	Burst int `json:"burst,omitempty"`
	// MaxRestarts trips the kill switch when more than this many process
	// restarts land inside RestartWindow (0 disables storm detection).
	MaxRestarts int `json:"max_restarts,omitempty"`
	// RestartWindow is the storm-detection window in seconds (default 30).
	RestartWindow float64 `json:"restart_window,omitempty"`
	// MaxHangs trips the kill switch after this many hang events
	// (0 disables).
	MaxHangs int `json:"max_hangs,omitempty"`
}

// A Spec fully describes one live target. It is JSON-serializable so a
// fleet campaign spec can carry it to worker processes: everything a
// worker needs — including the config template content — travels
// inline, never as a path only the submitter's machine can read.
type Spec struct {
	// Name labels the target in crash reports and artifacts (default
	// "live").
	Name string `json:"name,omitempty"`
	// Cmd is the server argv. The placeholders {port} (the listen port
	// chosen per instance) and {config} (the rendered config file path,
	// RenderFile mode) are substituted in every element. Empty Cmd with
	// a non-empty Addr attaches to an already-running server instead —
	// no lifecycle management, no restarts.
	Cmd []string `json:"cmd,omitempty"`
	// Addr is the target address ("host:port") when Cmd is empty.
	Addr string `json:"addr,omitempty"`
	// Transport is "udp" or "tcp" (default "udp").
	Transport string `json:"transport,omitempty"`
	// ConfigTemplate is the target's native config file content; it is
	// both the identification input (Algorithm 1 mines items from it)
	// and the render template for scheduled assignments.
	ConfigTemplate string `json:"config_template,omitempty"`
	// ConfigName names the template file (default "target.conf").
	ConfigName string `json:"config_name,omitempty"`
	// Render selects how assignments reach the process (default "file").
	Render string `json:"render,omitempty"`
	// ReadyLine is the stdout prefix announcing readiness (default
	// "READY"). TCP targets that never print one are also probed by
	// dialing the port.
	ReadyLine string `json:"ready_line,omitempty"`
	// ReadyTimeoutMS bounds the spawn-to-ready wait (default 5000).
	ReadyTimeoutMS int `json:"ready_timeout_ms,omitempty"`
	// ReadTimeoutMS is the per-message response deadline (default 20).
	ReadTimeoutMS int `json:"read_timeout_ms,omitempty"`
	// WriteTimeoutMS is the per-message send deadline (default 100).
	WriteTimeoutMS int `json:"write_timeout_ms,omitempty"`
	// HangThreshold declares the target hung after this many consecutive
	// messages with no response (default 3); a hang kills and respawns
	// the process and counts toward Rails.MaxHangs.
	HangThreshold int `json:"hang_threshold,omitempty"`
	// PitXML overrides the generation model (default: the generic
	// byte-oriented pit in this package).
	PitXML string `json:"pit_xml,omitempty"`
	// Rails bounds the campaign's host impact.
	Rails Rails `json:"rails,omitempty"`
}

// withDefaults returns a copy of s with every defaultable field filled.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "live"
	}
	if s.Transport == "" {
		s.Transport = TransportUDP
	}
	if s.ConfigName == "" {
		s.ConfigName = "target.conf"
	}
	if s.Render == "" {
		s.Render = RenderFile
	}
	if s.ReadyLine == "" {
		s.ReadyLine = "READY"
	}
	if s.ReadyTimeoutMS == 0 {
		s.ReadyTimeoutMS = 5000
	}
	if s.ReadTimeoutMS == 0 {
		s.ReadTimeoutMS = 20
	}
	if s.WriteTimeoutMS == 0 {
		s.WriteTimeoutMS = 100
	}
	if s.HangThreshold == 0 {
		s.HangThreshold = 3
	}
	if s.Rails.Rate > 0 && s.Rails.Burst == 0 {
		s.Rails.Burst = int(s.Rails.Rate / 10)
		if s.Rails.Burst < 1 {
			s.Rails.Burst = 1
		}
	}
	if s.Rails.MaxRestarts > 0 && s.Rails.RestartWindow == 0 {
		s.Rails.RestartWindow = 30
	}
	return s
}

// Validate reports the first structural problem with the spec.
func (s Spec) Validate() error {
	if len(s.Cmd) == 0 && s.Addr == "" {
		return errors.New("live: spec needs a target command or address")
	}
	if len(s.Cmd) > 0 && s.Addr != "" {
		return errors.New("live: target command and address are mutually exclusive")
	}
	switch s.Transport {
	case "", TransportUDP, TransportTCP:
	default:
		return fmt.Errorf("live: unknown transport %q", s.Transport)
	}
	switch s.Render {
	case "", RenderFile, RenderEnv, RenderCLI:
	default:
		return fmt.Errorf("live: unknown render mode %q", s.Render)
	}
	if len(s.Cmd) > 0 && strings.TrimSpace(s.Cmd[0]) == "" {
		return errors.New("live: empty target command")
	}
	return nil
}

// readyTimeout returns the spawn-to-ready bound as a duration.
func (s Spec) readyTimeout() time.Duration {
	return time.Duration(s.ReadyTimeoutMS) * time.Millisecond
}

func (s Spec) readTimeout() time.Duration {
	return time.Duration(s.ReadTimeoutMS) * time.Millisecond
}

func (s Spec) writeTimeout() time.Duration {
	return time.Duration(s.WriteTimeoutMS) * time.Millisecond
}

// ParseSpec decodes a JSON-encoded Spec and validates it. It is the
// inverse of Spec's JSON encoding and the entry point for specs carried
// over the dist wire and in fleet campaign specs.
func ParseSpec(raw []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return Spec{}, fmt.Errorf("live: spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// JSON renders the spec for transport. Defaults are not baked in: the
// receiving side re-applies them, so the encoding stays minimal.
func (s Spec) JSON() string {
	raw, err := json.Marshal(s)
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on it.
		panic(err)
	}
	return string(raw)
}
