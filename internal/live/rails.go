package live

import (
	"fmt"
	"sync"
	"time"
)

// A RateLimiter is a wall-clock token bucket bounding outbound message
// rate. Unlike the virtual-clock machinery everywhere else in this
// repository, the limiter runs on real time: its whole purpose is to
// protect the real host and network the live target occupies.
//
// Acquire blocks until a token is available (or the kill switch trips).
// The limiter is shared by every parallel instance of one campaign, so
// Rate bounds the campaign's aggregate send rate, not each instance's.
type RateLimiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time

	// now and sleep are injectable for tests.
	now   func() time.Time
	sleep func(time.Duration)
}

// NewRateLimiter returns a limiter admitting rate messages per second
// with the given burst capacity. A nonpositive rate returns nil, and a
// nil limiter admits everything (nil-safety mirrors the telemetry
// recorder convention).
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
		sleep:  time.Sleep,
	}
}

// Acquire takes one token, blocking while the bucket is empty. It
// reports whether it had to wait — the caller counts those toward
// cmfuzz_target_rate_limited_total. A tripped kill switch aborts the
// wait so a throttled campaign still shuts down promptly; ks may be
// nil.
func (rl *RateLimiter) Acquire(ks *KillSwitch) (limited bool) {
	if rl == nil {
		return false
	}
	for {
		rl.mu.Lock()
		t := rl.now()
		if !rl.last.IsZero() {
			rl.tokens += t.Sub(rl.last).Seconds() * rl.rate
			if rl.tokens > rl.burst {
				rl.tokens = rl.burst
			}
		}
		rl.last = t
		if rl.tokens >= 1 {
			rl.tokens--
			rl.mu.Unlock()
			return limited
		}
		// Sleep exactly long enough for one token to accrue.
		wait := time.Duration((1 - rl.tokens) / rl.rate * float64(time.Second))
		rl.mu.Unlock()
		if ks.Tripped() {
			return limited
		}
		limited = true
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		rl.sleep(wait)
	}
}

// A KillSwitch hard-stops a live campaign when it starts doing more
// harm than fuzzing: a restart storm (the target crash-loops faster
// than the storm window allows), too many hangs, or an explicit trip.
// Once tripped it stays tripped; the campaign driver wires OnTrip to
// the campaign context's cancel function, and every live instance goes
// inert (no sockets, no spawns) the moment Tripped reports true.
type KillSwitch struct {
	mu       sync.Mutex
	tripped  bool
	reason   string
	onTrip   func(reason string)
	restarts []time.Time // restart timestamps inside the storm window
	hangs    int

	maxRestarts int
	window      time.Duration
	maxHangs    int

	now func() time.Time
}

// NewKillSwitch builds a switch from the rails config. onTrip runs
// exactly once, from whichever call trips the switch; nil is allowed.
func NewKillSwitch(r Rails, onTrip func(reason string)) *KillSwitch {
	return &KillSwitch{
		onTrip:      onTrip,
		maxRestarts: r.MaxRestarts,
		window:      time.Duration(r.RestartWindow * float64(time.Second)),
		maxHangs:    r.MaxHangs,
		now:         time.Now,
	}
}

// SetOnTrip installs the trip hook after construction — the campaign
// driver builds the subject first and wires the hook to the campaign
// context's cancel function later. Replaces any previous hook.
func (ks *KillSwitch) SetOnTrip(fn func(reason string)) {
	if ks == nil {
		return
	}
	ks.mu.Lock()
	ks.onTrip = fn
	ks.mu.Unlock()
}

// Tripped reports whether the switch has fired. Nil-safe.
func (ks *KillSwitch) Tripped() bool {
	if ks == nil {
		return false
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return ks.tripped
}

// Reason returns why the switch tripped ("" while armed). Nil-safe.
func (ks *KillSwitch) Reason() string {
	if ks == nil {
		return ""
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return ks.reason
}

// Trip fires the switch with the given reason. Idempotent: only the
// first call records a reason and runs the OnTrip hook.
func (ks *KillSwitch) Trip(reason string) {
	if ks == nil {
		return
	}
	ks.mu.Lock()
	if ks.tripped {
		ks.mu.Unlock()
		return
	}
	ks.tripped = true
	ks.reason = reason
	hook := ks.onTrip
	ks.mu.Unlock()
	if hook != nil {
		hook(reason)
	}
}

// NoteRestart records one process restart and trips the switch when
// more than maxRestarts land inside the storm window.
func (ks *KillSwitch) NoteRestart() {
	if ks == nil || ks.maxRestarts <= 0 {
		return
	}
	ks.mu.Lock()
	t := ks.now()
	cutoff := t.Add(-ks.window)
	kept := ks.restarts[:0]
	for _, r := range ks.restarts {
		if r.After(cutoff) {
			kept = append(kept, r)
		}
	}
	ks.restarts = append(kept, t)
	storm := len(ks.restarts) > ks.maxRestarts
	ks.mu.Unlock()
	if storm {
		ks.Trip(fmt.Sprintf("restart storm: more than %d target restarts in %s",
			ks.maxRestarts, ks.window))
	}
}

// NoteHang records one hang event and trips the switch at the limit.
func (ks *KillSwitch) NoteHang() {
	if ks == nil || ks.maxHangs <= 0 {
		return
	}
	ks.mu.Lock()
	ks.hangs++
	limit := ks.hangs >= ks.maxHangs
	ks.mu.Unlock()
	if limit {
		ks.Trip(fmt.Sprintf("hang limit: target hung %d times", ks.maxHangs))
	}
}
