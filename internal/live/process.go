package live

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"cmfuzz/internal/bugs"
)

// RenderConfigFile substitutes a configuration assignment into the
// target's native key=value template: existing `key=...` lines are
// rewritten in place, matching commented-out `#key=...` lines are
// uncommented, and keys with no line in the template are appended in
// sorted order. Comments and unrelated lines survive untouched, so the
// target sees a file shaped exactly like the one its operator wrote.
func RenderConfigFile(template string, cfg map[string]string) string {
	done := make(map[string]bool, len(cfg))
	var b strings.Builder
	for _, line := range strings.Split(template, "\n") {
		trimmed := strings.TrimSpace(line)
		key := ""
		if i := strings.IndexByte(trimmed, '='); i > 0 {
			k := strings.TrimSpace(strings.TrimPrefix(trimmed[:i], "#"))
			if v, ok := cfg[k]; ok && !done[k] {
				key = k
				b.WriteString(k + "=" + v + "\n")
				done[k] = true
				_ = v
			}
		}
		if key == "" {
			b.WriteString(line + "\n")
		}
	}
	extra := make([]string, 0, len(cfg))
	for k := range cfg {
		if !done[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		b.WriteString(k + "=" + cfg[k] + "\n")
	}
	return b.String()
}

// tailRing keeps the last few KiB of the target's stderr so a crash
// report can carry the tail the way an ASan triage note carries the
// sanitizer output.
type tailRing struct {
	mu    sync.Mutex
	lines []string
	bytes int
}

const tailMaxLines = 40
const tailMaxBytes = 8 << 10

func (t *tailRing) add(line string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lines = append(t.lines, line)
	t.bytes += len(line)
	for len(t.lines) > tailMaxLines || (t.bytes > tailMaxBytes && len(t.lines) > 1) {
		t.bytes -= len(t.lines[0])
		t.lines = t.lines[1:]
	}
}

func (t *tailRing) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return strings.Join(t.lines, "\n")
}

// A process is one spawned target server: the running command, its
// chosen listen port, the readiness banner it printed, and the exit
// observer that captures how it died.
type process struct {
	cmd    *exec.Cmd
	port   int
	banner string
	dir    string // temp dir holding the rendered config; removed on stop
	stderr *tailRing

	done     chan struct{} // closed when Wait returns
	waitOnce sync.Once
	exitErr  error // Wait's error, valid after done closes
}

// alive reports whether the process has not yet been observed to exit.
func (p *process) alive() bool {
	if p == nil || p.cmd == nil {
		return false
	}
	select {
	case <-p.done:
		return false
	default:
		return true
	}
}

// stop kills the process (SIGKILL — the fuzzer owns it, graceful
// shutdown buys nothing), waits for the exit observer, and removes the
// rendered-config directory. Idempotent.
func (p *process) stop() {
	if p == nil {
		return
	}
	if p.cmd != nil && p.cmd.Process != nil {
		p.cmd.Process.Kill()
		<-p.done
	}
	if p.dir != "" {
		os.RemoveAll(p.dir)
		p.dir = ""
	}
}

// crash converts the process's exit status into the triage model: the
// fatal signal (a real SIGSEGV maps to the SEGV kind, like an ASan
// report would) or the exit code, with the stderr tail as detail. The
// function field carries the exit cause so distinct failure modes
// dedup separately in the ledger.
func (p *process) crash(protocol string) *bugs.Crash {
	<-p.done
	kind := bugs.AbnormalExit
	cause := "exit"
	if p.exitErr != nil {
		if ee, ok := p.exitErr.(*exec.ExitError); ok {
			if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
				cause = "signal:" + ws.Signal().String()
				switch ws.Signal() {
				case syscall.SIGSEGV, syscall.SIGBUS:
					kind = bugs.SEGV
				}
			} else {
				cause = fmt.Sprintf("exit:%d", ee.ExitCode())
			}
		} else {
			cause = "error:" + p.exitErr.Error()
		}
	} else {
		cause = "exit:0"
	}
	detail := fmt.Sprintf("target process died (%s)", cause)
	if tail := p.stderr.String(); tail != "" {
		detail += "; stderr: " + tail
	}
	return &bugs.Crash{Protocol: protocol, Kind: kind, Function: cause, Detail: detail}
}

// freePort asks the kernel for an unused local port on the given
// transport. The port is released before the target binds it, so a
// collision is possible but vanishingly rare on a loopback-only CI box.
func freePort(transport string) (int, error) {
	if transport == TransportTCP {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer l.Close()
		return l.Addr().(*net.TCPAddr).Port, nil
	}
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer c.Close()
	return c.LocalAddr().(*net.UDPAddr).Port, nil
}

// spawn renders cfg to the target's configuration surface, starts the
// server process, and waits for readiness: the ReadyLine banner on
// stdout, or (TCP) a successful dial of the chosen port. On success the
// returned process is live and listening.
func spawn(spec Spec, cfg map[string]string) (*process, error) {
	port, err := freePort(spec.Transport)
	if err != nil {
		return nil, fmt.Errorf("live: allocate port: %w", err)
	}

	dir, err := os.MkdirTemp("", "cmfuzz-live-")
	if err != nil {
		return nil, err
	}
	cfgPath := filepath.Join(dir, spec.ConfigName)
	argv := make([]string, len(spec.Cmd))
	for i, a := range spec.Cmd {
		a = strings.ReplaceAll(a, "{port}", fmt.Sprintf("%d", port))
		a = strings.ReplaceAll(a, "{config}", cfgPath)
		argv[i] = a
	}
	var env []string
	switch spec.Render {
	case RenderFile:
		if err := os.WriteFile(cfgPath, []byte(RenderConfigFile(spec.ConfigTemplate, cfg)), 0o644); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
	case RenderEnv:
		env = os.Environ()
		keys := make([]string, 0, len(cfg))
		for k := range cfg {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			env = append(env, "CMFUZZ_CFG_"+strings.ToUpper(strings.NewReplacer("-", "_", ".", "_").Replace(k))+"="+cfg[k])
		}
	case RenderCLI:
		keys := make([]string, 0, len(cfg))
		for k := range cfg {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			argv = append(argv, "--"+k+"="+cfg[k])
		}
	}

	// The child runs inside the rendered-config dir, so a relative
	// command path must be pinned to the caller's cwd first.
	exe := argv[0]
	if strings.Contains(exe, "/") && !filepath.IsAbs(exe) {
		if abs, aerr := filepath.Abs(exe); aerr == nil {
			exe = abs
		}
	}
	cmd := exec.Command(exe, argv[1:]...)
	cmd.Env = env
	cmd.Dir = dir
	p := &process{cmd: cmd, port: port, dir: dir, stderr: &tailRing{}, done: make(chan struct{})}

	stdout, err := cmd.StdoutPipe()
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("live: start %s: %w", argv[0], err)
	}

	// Exit observer: one Wait per process, its outcome published through
	// the done channel so alive() and crash() never race the reaper.
	bannerCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 64<<10), 64<<10)
		sent := false
		for sc.Scan() {
			line := sc.Text()
			if !sent && strings.HasPrefix(line, spec.ReadyLine) {
				bannerCh <- line
				sent = true
			}
		}
		if !sent {
			close(bannerCh)
		}
	}()
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 64<<10), 64<<10)
		for sc.Scan() {
			p.stderr.add(sc.Text())
		}
	}()
	go func() {
		err := cmd.Wait()
		p.waitOnce.Do(func() {
			p.exitErr = err
			close(p.done)
		})
	}()

	// Readiness: banner line, process death, or timeout — whichever
	// comes first. TCP targets without a banner get a dial fallback.
	deadline := time.After(spec.readyTimeout())
	select {
	case banner, ok := <-bannerCh:
		if ok {
			p.banner = banner
			return p, nil
		}
		// stdout closed without a banner: either the process died or it
		// is a banner-less server. Fall through to the dial probe.
	case <-p.done:
	case <-deadline:
		p.stop()
		return nil, fmt.Errorf("live: target not ready after %s", spec.readyTimeout())
	}
	if !p.alive() {
		c := p.crash(spec.Name)
		p.stop()
		return nil, fmt.Errorf("live: target died during startup: %s", c.Detail)
	}
	if spec.Transport == TransportTCP {
		probeDeadline := time.Now().Add(spec.readyTimeout())
		for time.Now().Before(probeDeadline) {
			conn, derr := net.DialTimeout("tcp", fmt.Sprintf("127.0.0.1:%d", port), 100*time.Millisecond)
			if derr == nil {
				conn.Close()
				return p, nil
			}
			time.Sleep(10 * time.Millisecond)
		}
		p.stop()
		return nil, fmt.Errorf("live: target never opened port %d", port)
	}
	// UDP with no banner: nothing to probe; trust the process.
	return p, nil
}
