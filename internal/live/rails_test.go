package live

import (
	"strings"
	"testing"
	"time"
)

// fakeClock drives a RateLimiter/KillSwitch deterministically: sleep
// advances the clock instead of blocking.
type fakeClock struct {
	t time.Time
}

func (f *fakeClock) now() time.Time        { return f.t }
func (f *fakeClock) sleep(d time.Duration) { f.t = f.t.Add(d) }

func TestRateLimiterNilAdmitsEverything(t *testing.T) {
	var rl *RateLimiter
	for i := 0; i < 100; i++ {
		if rl.Acquire(nil) {
			t.Fatal("nil limiter reported limiting")
		}
	}
	if NewRateLimiter(0, 5) != nil {
		t.Fatal("nonpositive rate should yield nil limiter")
	}
}

func TestRateLimiterBurstThenBlocks(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	rl := NewRateLimiter(10, 3) // 10/s, burst 3
	rl.now, rl.sleep = clk.now, clk.sleep

	for i := 0; i < 3; i++ {
		if rl.Acquire(nil) {
			t.Fatalf("burst acquisition %d should not block", i)
		}
	}
	start := clk.t
	if !rl.Acquire(nil) {
		t.Fatal("post-burst acquisition should report limiting")
	}
	if waited := clk.t.Sub(start); waited < 90*time.Millisecond || waited > 110*time.Millisecond {
		t.Fatalf("waited %s for one token at 10/s, want ~100ms", waited)
	}
}

func TestRateLimiterRefillsWhileIdle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	rl := NewRateLimiter(10, 2)
	rl.now, rl.sleep = clk.now, clk.sleep

	rl.Acquire(nil)
	rl.Acquire(nil)
	clk.t = clk.t.Add(time.Second) // refill past burst; cap at 2
	if rl.Acquire(nil) || rl.Acquire(nil) {
		t.Fatal("idle refill should cover two free acquisitions")
	}
	if !rl.Acquire(nil) {
		t.Fatal("third acquisition should block: refill is capped at burst")
	}
}

func TestRateLimiterAbortsOnKillSwitch(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	rl := NewRateLimiter(1, 1)
	rl.now = clk.now
	ks := NewKillSwitch(Rails{MaxRestarts: 1, RestartWindow: 60}, nil)
	// sleep trips the switch without advancing the clock, so no token
	// ever accrues: only the abort path can end the wait.
	rl.sleep = func(d time.Duration) { ks.Trip("test") }
	rl.Acquire(ks) // drains the bucket
	done := make(chan bool, 1)
	go func() { done <- rl.Acquire(ks) }()
	select {
	case limited := <-done:
		if !limited {
			t.Fatal("aborted wait should still report limiting")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not abort after kill switch tripped")
	}
}

func TestKillSwitchRestartStorm(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var reasons []string
	ks := NewKillSwitch(Rails{MaxRestarts: 3, RestartWindow: 10}, func(r string) { reasons = append(reasons, r) })
	ks.now = clk.now

	// Three restarts spread outside the window: no storm.
	for i := 0; i < 3; i++ {
		ks.NoteRestart()
		clk.t = clk.t.Add(11 * time.Second)
	}
	if ks.Tripped() {
		t.Fatal("restarts outside the window must not trip")
	}
	// Four restarts inside one window: storm.
	for i := 0; i < 4; i++ {
		ks.NoteRestart()
		clk.t = clk.t.Add(time.Second)
	}
	if !ks.Tripped() {
		t.Fatal("storm did not trip the switch")
	}
	if !strings.Contains(ks.Reason(), "restart storm") {
		t.Fatalf("reason = %q", ks.Reason())
	}
	if len(reasons) != 1 {
		t.Fatalf("OnTrip ran %d times, want once", len(reasons))
	}
	// Trip is idempotent: further events change nothing.
	ks.Trip("other")
	ks.NoteRestart()
	if len(reasons) != 1 || !strings.Contains(ks.Reason(), "restart storm") {
		t.Fatal("trip was not idempotent")
	}
}

func TestKillSwitchHangLimit(t *testing.T) {
	ks := NewKillSwitch(Rails{MaxHangs: 2}, nil)
	ks.NoteHang()
	if ks.Tripped() {
		t.Fatal("tripped below hang limit")
	}
	ks.NoteHang()
	if !ks.Tripped() || !strings.Contains(ks.Reason(), "hang limit") {
		t.Fatalf("tripped=%v reason=%q", ks.Tripped(), ks.Reason())
	}
}

func TestKillSwitchDisabledRails(t *testing.T) {
	ks := NewKillSwitch(Rails{}, nil)
	for i := 0; i < 100; i++ {
		ks.NoteRestart()
		ks.NoteHang()
	}
	if ks.Tripped() {
		t.Fatal("zero rails must disable both trips")
	}
	var nilKS *KillSwitch
	nilKS.NoteRestart()
	nilKS.NoteHang()
	nilKS.Trip("x")
	if nilKS.Tripped() || nilKS.Reason() != "" {
		t.Fatal("nil kill switch must be inert")
	}
}
