package live

// genericPitXML is the default generation model for live targets whose
// protocol is unknown: a handful of byte-oriented message shapes — a
// short textual command line, a length-prefixed binary record, a
// type+payload frame — arranged in a small state machine so session
// sequences mix probes, follow-ups, and oversized payloads. Targets
// with a real protocol should ship their own Pit via Spec.PitXML; this
// one exists so `cmfuzz fuzz -target-cmd ...` works with zero protocol
// knowledge.
const genericPitXML = `<?xml version="1.0"?>
<Peach>
  <DataModel name="TextCmd">
    <Choice name="verb">
      <String name="ping" value="PING"/>
      <String name="get" value="GET"/>
      <String name="set" value="SET"/>
      <String name="info" value="INFO"/>
      <String name="quit" value="QUIT"/>
    </Choice>
    <String name="sp" value=" " token="true"/>
    <Choice name="arg">
      <String name="key" value="key"/>
      <String name="star" value="*"/>
      <String name="num" value="12345"/>
      <String name="long" value="aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"/>
      <String name="fmt" value="%s%n%x"/>
    </Choice>
    <String name="nl" value="&#10;" token="true"/>
  </DataModel>
  <DataModel name="BinRecord">
    <Number name="magic" bits="16" value="51966" token="true"/>
    <Number name="version" bits="8" value="1"/>
    <Choice name="kind">
      <Number name="req" bits="8" value="0"/>
      <Number name="ack" bits="8" value="1"/>
      <Number name="data" bits="8" value="2"/>
      <Number name="ctrl" bits="8" value="255"/>
    </Choice>
    <Number name="len" bits="16" sizeOf="body"/>
    <Block name="body">
      <Choice name="payload">
        <String name="small" value="hello"/>
        <String name="empty" value=""/>
        <String name="big" value="BBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBB"/>
      </Choice>
    </Block>
  </DataModel>
  <DataModel name="TypeFrame">
    <Choice name="type">
      <Number name="t0" bits="8" value="0"/>
      <Number name="t1" bits="8" value="1"/>
      <Number name="t16" bits="8" value="16"/>
      <Number name="t127" bits="8" value="127"/>
      <Number name="t255" bits="8" value="255"/>
    </Choice>
    <Number name="seq" bits="32" value="1"/>
    <String name="data" value="payload-bytes"/>
  </DataModel>
  <StateModel name="GenericExchange" initialState="probe">
    <State name="probe">
      <Action type="output" dataModel="TextCmd"/>
      <Action type="changeState" to="binary"/>
      <Action type="changeState" to="framed"/>
    </State>
    <State name="binary">
      <Action type="output" dataModel="BinRecord"/>
      <Action type="changeState" to="framed"/>
    </State>
    <State name="framed">
      <Action type="output" dataModel="TypeFrame"/>
      <Action type="output" dataModel="TextCmd"/>
    </State>
  </StateModel>
</Peach>`
