package live

import (
	"hash/fnv"
	"math/bits"
	"strings"

	"cmfuzz/internal/coverage"
)

// Inferred coverage. A live target has no trace-pc-guard map, so the
// driver synthesizes one from what the wire gives back: each response
// is folded into a small bounded class (length bucket × first-byte
// nibble), and both the class and the (previous class → class)
// transition are recorded as edges. The class space is deliberately
// tiny — a few hundred classes, a few thousand transitions — so a
// target whose behavior stops changing saturates the inferred map
// quickly and the scheduler's saturation detector fires config-group
// mutations exactly as it would for an instrumented subject. Raw
// response hashes would do the opposite: every timestamp or sequence
// number in a reply would mint a fresh edge and the group would never
// saturate.

// Probe-site namespaces for the synthetic edges. Spread apart so the
// splitmix64 edge hash keeps boot, class, and transition populations
// disjoint in practice.
const (
	siteBoot       = 0x11770001 // target reached readiness
	siteBanner     = 0x11770002 // one banner token (state = token hash)
	siteClass      = 0x11770003 // one response class
	siteTransition = 0x11770004 // one class→class transition
	siteSilence    = 0x11770005 // a message drew no response
)

// classNone is the transition-origin sentinel for "start of session".
const classNone = 0xffff

// classify folds one response into its bounded class: the upper bits
// are the length's power-of-two bucket, the lower four the first
// payload nibble (a protocol's opcode/type field usually lives there).
func classify(resp []byte) uint16 {
	bucket := uint16(bits.Len(uint(len(resp))))
	var nib uint16
	if len(resp) > 0 {
		nib = uint16(resp[0] >> 4)
	}
	return bucket<<4 | nib
}

// classifier accumulates inferred coverage for one instance. Not
// safe for concurrent use; each instance owns one.
type classifier struct {
	tr   *coverage.Trace
	prev uint16
}

func newClassifier() *classifier { return &classifier{prev: classNone} }

// setTrace redirects subsequent observations into tr.
func (c *classifier) setTrace(tr *coverage.Trace) { c.tr = tr }

// newSession resets the transition origin, mirroring the fresh-session
// semantics instrumented subjects get from Instance.NewSession.
func (c *classifier) newSession() { c.prev = classNone }

// observe records the inferred edges for one request's responses. An
// empty response set records the silence edge (distinguishing "target
// answers nothing" from "target answers") without advancing the
// transition chain.
func (c *classifier) observe(resps [][]byte) {
	if len(resps) == 0 {
		c.tr.Edge(siteSilence, uint64(c.prev))
		return
	}
	for _, r := range resps {
		cl := classify(r)
		c.tr.Edge(siteClass, uint64(cl))
		c.tr.Edge(siteTransition, uint64(c.prev)<<16|uint64(cl))
		c.prev = cl
	}
}

// bannerCoverage turns the target's readiness banner into startup
// coverage: one guaranteed boot edge (so subject.Probe always sees a
// successful start as >0 coverage) plus one edge per whitespace token.
// Targets that announce enabled features in their banner — the usual
// convention, and the one the bundled echo fixture follows — thereby
// give the relation-quantification probe a real signal: configurations
// that flip features on and off produce different startup counts.
func bannerCoverage(tr *coverage.Trace, banner string) {
	tr.Hit(siteBoot)
	for _, tok := range strings.Fields(banner) {
		h := fnv.New32a()
		h.Write([]byte(tok))
		tr.Edge(siteBanner, uint64(h.Sum32()))
	}
}
