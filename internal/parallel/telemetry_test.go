package parallel

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
)

// twoSMSubject is a minimal subject whose Pit declares TWO state models
// with observably different traffic (different data models, different
// message sizes), so a nondeterministic state-model pick changes the
// campaign outcome.
type twoSMSubject struct{}

func (twoSMSubject) Info() subject.Info {
	return subject.Info{Protocol: "2SM", Implementation: "twosm", Transport: subject.Datagram, Port: 9998}
}
func (twoSMSubject) ConfigInput() configspec.Input { return configspec.Input{} }
func (twoSMSubject) PitXML() string {
	return `<Peach>
  <DataModel name="Short"><String name="s" value="AAAA"/></DataModel>
  <DataModel name="Long"><String name="s" value="BBBBBBBBBBBBBBBBBBBBBBBB"/></DataModel>
  <StateModel name="Zeta" initialState="s0">
    <State name="s0"><Action type="output" dataModel="Short"/></State>
  </StateModel>
  <StateModel name="Alpha" initialState="s0">
    <State name="s0"><Action type="output" dataModel="Long"/></State>
  </StateModel>
</Peach>`
}
func (twoSMSubject) NewInstance() subject.Instance { return &twoSMInstance{} }

type twoSMInstance struct{ tr *coverage.Trace }

func (i *twoSMInstance) Start(cfg map[string]string, tr *coverage.Trace) error {
	tr.Hit(1)
	return nil
}
func (i *twoSMInstance) SetTrace(tr *coverage.Trace) { i.tr = tr }
func (i *twoSMInstance) NewSession()                 {}
func (i *twoSMInstance) Message(p []byte) [][]byte {
	// Coverage depends on the payload content, so the two state models
	// reach different edges.
	for pos, b := range p {
		if pos > 8 {
			break
		}
		i.tr.Edge(uint32(pos), uint64(b))
	}
	return nil
}
func (i *twoSMInstance) Close() {}

// TestRunDeterministicWithTwoStateModels is the regression test for the
// state-model selection bug: `for _, m := range pit.StateModels` picked a
// map-iteration-random model, so a Pit with several state models made
// campaigns (and SPFuzz path partitions) unreproducible. Document-order
// selection must make repeated runs identical.
func TestRunDeterministicWithTwoStateModels(t *testing.T) {
	for _, mode := range []Mode{ModePeach, ModeSPFuzz} {
		var base *Result
		for try := 0; try < 8; try++ {
			r, err := Run(context.Background(), twoSMSubject{}, Options{Mode: mode, VirtualHours: 0.05, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = r
				continue
			}
			if r.FinalBranches != base.FinalBranches || r.TotalExecs != base.TotalExecs {
				t.Fatalf("%s run %d diverged: (%d branches, %d execs) vs (%d, %d) — state model pick is nondeterministic",
					mode, try, r.FinalBranches, r.TotalExecs, base.FinalBranches, base.TotalExecs)
			}
		}
	}
}

// TestSyncCatchUpAfterClockJump is the regression test for the sync
// scheduling bug: advancing nextSync by a single interval after an
// expensive step that jumped several intervals left nextSync behind the
// instance clock, firing a burst of back-to-back syncs on the following
// cheap steps. After the fix every sync must consume at least one fresh
// interval boundary past the previous sync's clock, and jumped intervals
// are reported via the event's skipped count instead of replayed.
func TestSyncCatchUpAfterClockJump(t *testing.T) {
	rec := telemetry.New()
	const interval = 50.0
	// ByteCost 0.2 makes step cost track payload size: DNS sequences vary
	// enough that some steps stay inside one interval while others jump
	// several at once. With the pre-fix single-increment scheduling this
	// mix produces back-to-back sync bursts that violate the grid check
	// below (verified by reverting the catch-up loop).
	_, err := Run(context.Background(), mustSubject(t, "DNS"), Options{
		Mode: ModePeach, VirtualHours: 0.5, Seed: 9,
		SyncInterval: interval, StepCost: 2, ByteCost: 0.2,
		Telemetry: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	lastSync := map[int]float64{}
	jumps := 0
	for _, ev := range rec.Events() {
		if ev.Type != telemetry.EvSync {
			continue
		}
		if ev.Skipped > 0 {
			jumps++
		}
		if prev, ok := lastSync[ev.Instance]; ok {
			// At least one interval boundary must lie in (prev, ev.T]:
			// a sync inside the same interval cell as its predecessor is
			// exactly the back-to-back burst the fix removes.
			if math.Floor(ev.T/interval) <= math.Floor(prev/interval) {
				t.Fatalf("instance %d synced twice inside one interval cell: t=%.2f after t=%.2f (interval %.0f)",
					ev.Instance, ev.T, prev, interval)
			}
		}
		lastSync[ev.Instance] = ev.T
	}
	if len(lastSync) == 0 {
		t.Fatal("no sync events recorded")
	}
	if jumps == 0 {
		t.Fatal("test never exercised a multi-interval clock jump; raise ByteCost")
	}
}

// TestNilTelemetryByteIdentical pins the no-op-sink contract: a campaign
// with telemetry enabled must produce byte-identical artifacts (result
// summary, coverage series, crash reports) to one with the default nil
// sink — the recorder observes, it never steers.
func TestNilTelemetryByteIdentical(t *testing.T) {
	sub := mustSubject(t, "DNS")
	opts := Options{Mode: ModeCMFuzz, VirtualHours: 1, Seed: 7}

	plain, err := Run(context.Background(), sub, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Telemetry = telemetry.New()
	instrumented, err := Run(context.Background(), sub, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.Telemetry.Events()) == 0 {
		t.Fatal("recorder saw no events")
	}
	if plain.Counters != nil {
		t.Fatal("nil-sink run grew a counter registry")
	}
	// Counters are the one intentional addition; everything else must
	// match bit for bit.
	instrumented.Counters = nil

	a, b := serializeResult(t, plain), serializeResult(t, instrumented)
	if !bytes.Equal(a, b) {
		t.Fatalf("result differs between nil-sink and instrumented runs:\n%s\nvs\n%s", a, b)
	}
}

// serializeResult renders everything a Result exposes — summary numbers,
// per-instance stats, the coverage series and every deduplicated bug —
// so a byte comparison covers the full observable outcome.
func serializeResult(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	summary, err := json.Marshal(struct {
		Mode          string
		FinalBranches int
		TotalExecs    int
		ModelEntities int
		RelationEdges int
		Probes        int
		Instances     []InstanceResult
	}{res.Mode.String(), res.FinalBranches, res.TotalExecs,
		res.ModelEntities, res.RelationEdges, res.Probes, res.Instances})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(summary)
	buf.WriteByte('\n')
	for _, p := range res.Series.Points() {
		fmt.Fprintf(&buf, "%.1f,%d\n", p.T, p.Count)
	}
	for _, rep := range res.Bugs.Unique() {
		fmt.Fprintf(&buf, "%s %d %.1f %q %d\n", rep.Crash.ID(), rep.Instance, rep.Time, rep.Config, rep.Count)
	}
	return buf.Bytes()
}

// TestTelemetryStreamDeterministic asserts the exported JSONL stream is
// identical run to run for a fixed seed — the property that makes event
// logs diffable across scheduler changes.
func TestTelemetryStreamDeterministic(t *testing.T) {
	sub := mustSubject(t, "CoAP")
	stream := func() []byte {
		rec := telemetry.New()
		if _, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.5, Seed: 4, Telemetry: rec}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := stream(), stream()
	if !bytes.Equal(a, b) {
		t.Fatal("telemetry JSONL differs between identical runs")
	}
}

// TestTelemetryCountersMatchResult cross-checks the counter registry
// against the aggregates the Result already reports.
func TestTelemetryCountersMatchResult(t *testing.T) {
	rec := telemetry.New()
	res, err := Run(context.Background(), mustSubject(t, "MQTT"), Options{Mode: ModeCMFuzz, VirtualHours: 4, Seed: 2, Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	muts, fails := 0, 0
	for _, in := range res.Instances {
		muts += in.ConfigMutations
		fails += in.RestartFailures
	}
	if c[telemetry.CtrMutations] != muts {
		t.Fatalf("mutation counter %d != instance sum %d", c[telemetry.CtrMutations], muts)
	}
	if c[telemetry.CtrRestartFailures] != fails {
		t.Fatalf("restart-failure counter %d != instance sum %d", c[telemetry.CtrRestartFailures], fails)
	}
	if c[telemetry.CtrSyncs] == 0 || c[telemetry.CtrSamples] == 0 || c[telemetry.CtrBoots] < len(res.Instances) {
		t.Fatalf("core counters missing: %v", c)
	}
	if c[telemetry.CtrProbeStartups] != res.Probes {
		t.Fatalf("probe startup counter %d != Result.Probes %d", c[telemetry.CtrProbeStartups], res.Probes)
	}
}

// BenchmarkTelemetryOverhead guards the no-op and enabled costs of the
// telemetry layer on a full campaign: "off" must track the historical
// baseline (the sink is one nil check per event site) and "on" must stay
// within a few percent of it. EXPERIMENTS.md records the measured ratio.
func BenchmarkTelemetryOverhead(b *testing.B) {
	sub, err := protocols.ByName("DNS")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.5, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := telemetry.New()
			if _, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.5, Seed: 1, Telemetry: rec}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
