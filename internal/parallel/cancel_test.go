package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// countdownCtx is a context that cancels itself on the nth Done() poll.
// Run polls Done() once per event-loop iteration, so the cancellation
// lands at a deterministic point in the campaign — no timers, no flakes.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	polls int
	limit int
	done  chan struct{}
}

func newCountdownCtx(limit int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), limit: limit, done: make(chan struct{})}
}

func (c *countdownCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.polls++
	if c.polls == c.limit {
		close(c.done)
	}
	return c.done
}

func (c *countdownCtx) Err() error {
	select {
	case <-c.done:
		return context.Canceled
	default:
		return nil
	}
}

// TestRunCancelledMidCampaign pins the cancellation contract: a run cut
// off mid-loop returns ctx.Err() alongside a partial but well-formed
// Result — truncated series, per-instance summaries, and a final sample
// at the watermark actually reached rather than the horizon.
func TestRunCancelledMidCampaign(t *testing.T) {
	sub := mustSubject(t, "DNS")
	ctx := newCountdownCtx(400)
	res, err := Run(ctx, sub, Options{Mode: ModeCMFuzz, VirtualHours: 24, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled mid-loop run returned no partial result")
	}
	if len(res.Instances) != 4 {
		t.Fatalf("partial result has %d instance summaries, want 4", len(res.Instances))
	}
	pts := res.Series.Points()
	if len(pts) == 0 {
		t.Fatal("partial result has an empty series")
	}
	last := pts[len(pts)-1]
	if horizon := 24 * 3600.0; last.T >= horizon {
		t.Fatalf("partial series reaches T=%.0f, want < horizon %.0f", last.T, horizon)
	}
	if last.Count != res.FinalBranches {
		t.Fatalf("final series count %d != FinalBranches %d", last.Count, res.FinalBranches)
	}
	if res.FinalBranches == 0 || res.TotalExecs == 0 {
		t.Fatalf("partial result recorded no work: %d branches, %d execs",
			res.FinalBranches, res.TotalExecs)
	}

	// The same seed run to completion must strictly extend the partial
	// run: more virtual time, at least as much coverage.
	full, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.FinalBranches < res.FinalBranches {
		t.Fatalf("full run found %d branches, partial %d", full.FinalBranches, res.FinalBranches)
	}
	if full.TotalExecs <= res.TotalExecs {
		t.Fatalf("full run executed %d, partial %d", full.TotalExecs, res.TotalExecs)
	}
}

// TestRunCancelledBeforeStart: a context cancelled before the event loop
// begins yields no result at all.
func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, mustSubject(t, "DNS"), Options{Mode: ModeCMFuzz, VirtualHours: 1, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("pre-cancelled run returned a result")
	}
}
