// Package parallel orchestrates parallel fuzzing campaigns over the
// protocol subjects. It implements the three fuzzers the paper compares:
//
//   - CMFuzz: configuration model identification + relation-aware
//     scheduling (one cohesive configuration group per instance), with
//     adaptive mutation of MUTABLE configuration values on coverage
//     saturation (paper §III-B2);
//   - Peach parallel mode: N identical default-configuration instances
//     with periodic seed synchronization;
//   - SPFuzz: default configuration, state-model path space partitioned
//     across instances (stateful-path-based parallelism).
//
// Campaigns run on a virtual clock: each engine step models a batch of
// protocol executions and advances the owning instance's clock by a cost
// derived from the bytes sent, so 24 simulated hours replay in seconds
// and deterministically for a fixed seed. Every instance runs inside its
// own netsim namespace, reproducing the paper's network-namespace
// isolation.
package parallel

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/core/relation"
	"cmfuzz/internal/core/schedule"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/netsim"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
)

// Mode selects the parallel fuzzer.
type Mode int

// The fuzzers compared in Table I.
const (
	ModeCMFuzz Mode = iota
	ModePeach
	ModeSPFuzz
)

var modeNames = [...]string{ModeCMFuzz: "CMFuzz", ModePeach: "Peach", ModeSPFuzz: "SPFuzz"}

// String names the mode as the paper does.
func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return "unknown"
	}
	return modeNames[m]
}

// Allocator is the grouping strategy CMFuzz uses; alternatives exist for
// the ablation experiments.
type Allocator int

// Grouping strategies.
const (
	AllocCohesive Allocator = iota // Algorithm 2 (the paper's)
	AllocRandom
	AllocRoundRobin
)

// Options parameterizes a campaign.
type Options struct {
	// Mode selects the fuzzer (default CMFuzz).
	Mode Mode
	// Instances is the parallel instance count (default 4, as in §IV).
	Instances int
	// VirtualHours is the campaign length in simulated hours (default 24).
	VirtualHours float64
	// Seed drives all randomness.
	Seed int64
	// StepCost is the virtual seconds one engine step (a batch of
	// executions) costs before the per-byte term (default 2.0).
	StepCost float64
	// ByteCost is the additional virtual seconds per payload byte
	// (default 0.00002).
	ByteCost float64
	// SyncInterval is the seed-synchronization period in virtual seconds
	// (default 600).
	SyncInterval float64
	// SaturationWindow is how long coverage must stay flat before a
	// CMFuzz instance mutates a configuration value (default 1800).
	SaturationWindow float64
	// SaturationMinGain is the per-window coverage growth below which an
	// instance counts as saturated (default 8 edges) — wide hash-family
	// instrumentation trickles a few edges long after a configuration is
	// effectively exhausted.
	SaturationMinGain int
	// MaxValues caps per-entity values during relation probing
	// (default 4).
	MaxValues int
	// Allocator selects the grouping strategy (CMFuzz mode only).
	Allocator Allocator
	// DisableConfigMutation turns off adaptive configuration-value
	// mutation (ablation).
	DisableConfigMutation bool
	// SampleEvery records a coverage sample at least this often in
	// virtual seconds (default 300), bounding Figure 4 resolution.
	SampleEvery float64
	// RawRelationWeighting uses the paper-literal raw-coverage relation
	// weights instead of interaction gains (an ablation; see the relation
	// package).
	RawRelationWeighting bool
	// PeachSharedSchedules makes Peach-mode workers share generation
	// schedules pairwise, modeling a parallel mode that replicates one
	// deterministic strategy without task division (an ablation
	// quantifying the redundancy critique from the parallel-fuzzing
	// literature). Off by default: the Table I baseline runs independent
	// workers.
	PeachSharedSchedules bool
	// Concurrency bounds the relation-probing worker pool (0 means
	// GOMAXPROCS). The campaign itself stays on the deterministic
	// virtual-clock event loop; only the startup probe matrix fans out,
	// and its result is identical for any worker count.
	Concurrency int
	// Telemetry receives the campaign's structured event stream (boots,
	// group assignments, seed syncs, coverage samples, saturation fires,
	// configuration mutations, restart failures, crash dedup, probe-cache
	// stats). Nil — the default — is a no-op sink: the campaign runs the
	// exact same decisions and the Result is byte-identical to an
	// uninstrumented run.
	Telemetry *telemetry.Recorder
	// Trace, when non-nil, is the parent wall-clock span this run
	// records under: relation.quantify (with probe.plan/execute/score),
	// schedule.allocate, instance.boot, and one long-lived instance span
	// per parallel instance carrying its sync and config.mutate children.
	// Wall-clock data lives only in the tracer — it never feeds a
	// campaign decision, so the Result stays byte-identical.
	Trace *trace.Span
	// Progress, when non-nil, receives live per-instance state (virtual
	// clock, edges, execs, crashes, seed-queue depth) on every engine
	// step, for the HTTP monitor's /status and /metrics endpoints. Like
	// Telemetry, it is observation-only.
	Progress *telemetry.Progress
	// Label names this run on the Progress board and defaults to the
	// mode name when empty.
	Label string
}

func (o *Options) setDefaults() {
	if o.Instances == 0 {
		o.Instances = 4
	}
	if o.VirtualHours == 0 {
		o.VirtualHours = 24
	}
	if o.StepCost == 0 {
		o.StepCost = 2.0
	}
	if o.ByteCost == 0 {
		o.ByteCost = 0.00002
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 600
	}
	if o.SaturationWindow == 0 {
		o.SaturationWindow = 1800
	}
	if o.SaturationMinGain == 0 {
		o.SaturationMinGain = 8
	}
	if o.MaxValues == 0 {
		o.MaxValues = 4
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 300
	}
}

// InstanceResult summarizes one parallel instance.
type InstanceResult struct {
	Index           int
	Config          string
	Group           []string
	FinalBranches   int
	Execs           int
	Crashes         int
	ConfigMutations int
	// RestartFailures counts failed target restarts during configuration
	// mutation (each failed boot attempt, including a failed revert or
	// defaults fallback, counts once).
	RestartFailures int
}

// Result is one campaign's outcome.
type Result struct {
	Mode          Mode
	Subject       subject.Info
	Series        *coverage.Series // union branch coverage over time
	FinalBranches int
	Instances     []InstanceResult
	Bugs          *bugs.Ledger
	TotalExecs    int
	// CMFuzz internals, for inspection and the ablations.
	ModelEntities int
	RelationEdges int
	Probes        int
	Groups        []schedule.Group
	// Counters aggregates the telemetry counter registry (syncs,
	// mutations, restarts, probe cache hits, ...). Nil unless
	// Options.Telemetry was set, so results without telemetry stay
	// byte-identical to pre-telemetry builds.
	Counters telemetry.Counters
}

// instance is one running parallel fuzzing instance.
type instance struct {
	index        int
	clock        float64
	nextSync     float64
	engine       *fuzz.Engine
	target       *netTarget
	cfg          configmodel.Assignment
	group        schedule.Group
	sat          *coverage.Saturation
	rng          *rand.Rand
	muts         int
	crashes      int
	restartFails int
}

// instanceHeap orders instances by virtual clock (ties on index), so the
// interleaving is deterministic.
type instanceHeap []*instance

func (h instanceHeap) Len() int { return len(h) }
func (h instanceHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].index < h[j].index
}
func (h instanceHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *instanceHeap) Push(x any)   { *h = append(*h, x.(*instance)) }
func (h *instanceHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Run executes one parallel fuzzing campaign of sub under opts.
func Run(sub subject.Subject, opts Options) (*Result, error) {
	opts.setDefaults()
	info := sub.Info()

	pit, err := fuzz.ParsePit(sub.PitXML())
	if err != nil {
		return nil, fmt.Errorf("parallel: %s pit: %w", info.Protocol, err)
	}
	// Document order, not map iteration: a Pit with several state models
	// must yield the same model every run or SPFuzz path partitions (and
	// every engine walk) stop reproducing.
	sm := pit.DefaultStateModel()
	tel := opts.Telemetry
	prog := opts.Progress
	if opts.Label == "" {
		opts.Label = opts.Mode.String()
	}
	prog.StartRun(opts.Label, opts.Mode.String(), info.Protocol, opts.VirtualHours*3600, opts.Instances)
	defer prog.EndRun(opts.Label)

	// Configuration model identification (CMFuzz) / defaults (baselines).
	items := configspec.Extract(sub.ConfigInput())
	model := configmodel.Build(items)
	defaults := model.Defaults()

	res := &Result{
		Mode:          opts.Mode,
		Subject:       info,
		Series:        &coverage.Series{},
		Bugs:          bugs.NewLedger(),
		ModelEntities: model.Len(),
	}

	// Per-instance configurations and path restrictions by mode.
	configs := make([]configmodel.Assignment, opts.Instances)
	groups := make([]schedule.Group, opts.Instances)
	paths := make([][]fuzz.Path, opts.Instances)
	switch opts.Mode {
	case ModeCMFuzz:
		weighting := relation.WeightInteraction
		if opts.RawRelationWeighting {
			weighting = relation.WeightRawCoverage
		}
		// The probe closure runs concurrently across the executor's
		// workers; each call boots its own throwaway instance, and a
		// startup crash (a configuration-parsing defect hit while
		// probing) is filed in the concurrency-safe ledger and scored as
		// a failed startup rather than tearing the campaign down.
		rel := relation.Quantify(model, func(cfg configmodel.Assignment) int {
			cov := 0
			if crash := bugs.Capture(func() { cov = subject.Probe(sub, map[string]string(cfg)) }); crash != nil {
				res.Bugs.Record(crash, -1, 0, cfg.String())
				return 0
			}
			return cov
		}, relation.Options{MaxValues: opts.MaxValues, Weighting: weighting, Workers: opts.Concurrency, Telemetry: tel, Trace: opts.Trace})
		res.RelationEdges = rel.Graph.EdgeCount()
		res.Probes = rel.Probes
		allocName := map[Allocator]string{AllocRandom: "random", AllocRoundRobin: "round-robin"}[opts.Allocator]
		if allocName == "" {
			allocName = "cohesive"
		}
		alloc := schedule.Instrumented(opts.Trace, allocName, len(rel.Graph.Nodes()), func() []schedule.Group {
			switch opts.Allocator {
			case AllocRandom:
				return schedule.RandomAllocate(rel.Graph, opts.Instances, opts.Seed)
			case AllocRoundRobin:
				return schedule.RoundRobinAllocate(rel.Graph, opts.Instances)
			default:
				return schedule.Allocate(rel.Graph, opts.Instances)
			}
		})
		res.Groups = alloc
		for i := range configs {
			if i < len(alloc) {
				groups[i] = alloc[i]
				configs[i] = schedule.GroupAssignment(model, rel, alloc[i])
			} else {
				configs[i] = defaults.Clone()
			}
			tel.Emit(telemetry.Event{Type: telemetry.EvGroup, Instance: i,
				Group: groups[i].Members, Config: configs[i].String()})
		}
	case ModeSPFuzz:
		var all []fuzz.Path
		if sm != nil {
			all = sm.Paths(12, 64)
		}
		for i := range configs {
			configs[i] = defaults.Clone()
			for j := i; j < len(all); j += opts.Instances {
				paths[i] = append(paths[i], all[j])
			}
		}
	default: // Peach
		for i := range configs {
			configs[i] = defaults.Clone()
		}
	}

	// Boot instances, each in its own namespace.
	fabric := netsim.NewFabric()
	insts := make([]*instance, 0, opts.Instances)
	for i := 0; i < opts.Instances; i++ {
		bootSpan := opts.Trace.Child("instance.boot", trace.A("instance", i))
		ns := fabric.Namespace(fmt.Sprintf("inst%d", i))
		configs[i] = repairConfig(sub, configs[i], defaults)
		target, startCov, err := bootTarget(sub, ns, configs[i], res.Bugs, i)
		if err != nil {
			// Still conflicting after repair: last-resort defaults.
			configs[i] = defaults.Clone()
			target, startCov, err = bootTarget(sub, ns, configs[i], res.Bugs, i)
			if err != nil {
				bootSpan.End()
				return nil, fmt.Errorf("parallel: instance %d failed to start: %w", i, err)
			}
		}
		bootSpan.Set("edges", startCov.Count())
		bootSpan.End()
		tel.Emit(telemetry.Event{Type: telemetry.EvBoot, Instance: i,
			Config: configs[i].String(), Edges: startCov.Count()})
		tel.Count(telemetry.CtrBoots, 1)
		if prog.Enabled() {
			prog.SetInstanceConfig(opts.Label, i, configs[i].String())
		}
		engineSeed := opts.Seed*7919 + int64(i)
		if opts.Mode == ModePeach && opts.PeachSharedSchedules {
			engineSeed = opts.Seed*7919 + int64(i/2)
		}
		eng := fuzz.NewEngine(fuzz.Config{
			Models:     pit.DataModels,
			StateModel: sm,
			Seed:       engineSeed,
			FixedPaths: paths[i],
		}, target)
		eng.Absorb(startCov)
		insts = append(insts, &instance{
			index:    i,
			nextSync: opts.SyncInterval,
			engine:   eng,
			target:   target,
			cfg:      configs[i],
			group:    groups[i],
			sat:      &coverage.Saturation{Window: opts.SaturationWindow, MinGain: opts.SaturationMinGain, MinGainFrac: 0.01},
			rng:      rand.New(rand.NewSource(opts.Seed*104729 + int64(i))),
		})
	}

	// The virtual-time event loop.
	horizon := opts.VirtualHours * 3600
	global := coverage.NewMap()
	for _, in := range insts {
		global.Union(in.engine.CoverageMap())
	}
	res.Series.Observe(0, global.Count())
	lastSample := 0.0
	watermark := 0.0 // monotone observation clock across instances
	// New-edge samples are coalesced to at most one per minSampleGap of
	// virtual time; without the floor, the discovery-heavy early campaign
	// records a point per coverage step and the series grows unbounded
	// long before the first SampleEvery window elapses. The final point
	// stays exact (observed at the horizon below).
	minSampleGap := opts.SampleEvery / 10

	// One long-lived wall-clock span per instance: siblings under the
	// run's parent span, so each instance renders as its own lane in the
	// trace viewer, carrying sync and config.mutate children.
	instSpans := make([]*trace.Span, len(insts))
	for _, in := range insts {
		instSpans[in.index] = opts.Trace.Child("instance", trace.A("index", in.index))
	}

	h := make(instanceHeap, len(insts))
	copy(h, insts)
	heap.Init(&h)
	for h[0].clock < horizon {
		in := h[0]
		step := in.engine.Step()
		in.clock += opts.StepCost + opts.ByteCost*float64(step.Bytes)

		if step.Crash != nil {
			in.crashes++
			isNew := res.Bugs.Record(step.Crash, in.index, in.clock, in.cfg.String())
			tel.Emit(telemetry.Event{T: in.clock, Type: telemetry.EvCrash, Instance: in.index,
				Crash: step.Crash.ID(), New: isNew, Config: in.cfg.String()})
			tel.Count(telemetry.CtrCrashes, 1)
			if isNew {
				tel.Count(telemetry.CtrCrashesUnique, 1)
			}
		}
		if step.NewEdges > 0 {
			global.Union(in.engine.CoverageMap())
		}
		if in.clock > watermark {
			watermark = in.clock
		}
		if watermark-lastSample >= opts.SampleEvery ||
			(step.NewEdges > 0 && watermark-lastSample >= minSampleGap) {
			res.Series.Observe(watermark, global.Count())
			lastSample = watermark
			tel.Emit(telemetry.Event{T: watermark, Type: telemetry.EvSample, Instance: in.index,
				Edges: global.Count()})
			tel.Count(telemetry.CtrSamples, 1)
			prog.SetUnion(opts.Label, watermark, global.Count())
		}
		if prog.Enabled() {
			st := in.engine.Stats()
			prog.StepInstance(opts.Label, in.index, in.clock,
				in.engine.Coverage(), st.Execs, in.crashes, in.muts, st.CorpusSize)
		}

		// Seed synchronization.
		if in.clock >= in.nextSync {
			sync := instSpans[in.index].Child("sync")
			imported := 0
			for _, other := range insts {
				if other != in {
					seeds := other.engine.ExportSeeds(4)
					imported += len(seeds)
					in.engine.ImportSeeds(seeds)
				}
			}
			// Advance nextSync past the instance clock. One expensive
			// step can jump several sync intervals at once; advancing by
			// a single interval would leave nextSync behind the clock and
			// fire a burst of back-to-back syncs on the following cheap
			// steps. The skipped intervals are counted, not replayed.
			skipped := 0
			for in.nextSync += opts.SyncInterval; in.nextSync <= in.clock; in.nextSync += opts.SyncInterval {
				skipped++
			}
			tel.Emit(telemetry.Event{T: in.clock, Type: telemetry.EvSync, Instance: in.index,
				Seeds: imported, Skipped: skipped})
			tel.Count(telemetry.CtrSyncs, 1)
			if skipped > 0 {
				tel.Count(telemetry.CtrSyncSkipped, skipped)
			}
			sync.Set("seeds", imported)
			sync.End()
		}

		// CMFuzz adaptive configuration mutation on saturation.
		if opts.Mode == ModeCMFuzz && !opts.DisableConfigMutation {
			in.sat.Observe(in.clock, in.engine.Coverage())
			if in.sat.Saturated(in.clock) {
				tel.Emit(telemetry.Event{T: in.clock, Type: telemetry.EvSaturation, Instance: in.index,
					Edges: in.engine.Coverage()})
				tel.Count(telemetry.CtrSaturations, 1)
				mut := instSpans[in.index].Child("config.mutate")
				if mutateConfig(sub, model, in, res.Bugs, tel) {
					in.engine.Absorb(in.target.startup)
					if prog.Enabled() {
						prog.SetInstanceConfig(opts.Label, in.index, in.cfg.String())
					}
				}
				mut.End()
				in.sat.Reset(in.clock)
			}
		}
		heap.Fix(&h, 0)
	}

	// Finalize.
	res.Series.Observe(horizon, global.Count())
	res.FinalBranches = global.Count()
	prog.SetUnion(opts.Label, horizon, global.Count())
	for _, in := range insts {
		st := in.engine.Stats()
		res.TotalExecs += st.Execs
		instSpans[in.index].Set("edges", in.engine.Coverage())
		instSpans[in.index].Set("execs", st.Execs)
		instSpans[in.index].End()
		res.Instances = append(res.Instances, InstanceResult{
			Index:           in.index,
			Config:          in.cfg.String(),
			Group:           in.group.Members,
			FinalBranches:   in.engine.Coverage(),
			Execs:           st.Execs,
			Crashes:         in.crashes,
			ConfigMutations: in.muts,
			RestartFailures: in.restartFails,
		})
	}
	res.Counters = tel.Counters()
	return res, nil
}

// mutateConfig applies the paper's Values-guided configuration mutation:
// pick a MUTABLE entity (preferring the instance's assigned group), set a
// different typical value, and restart the instance under the new
// configuration. Returns whether a restart happened. A mutation that
// produces a conflicting configuration (or crashes during startup — a
// config-parsing defect) is reverted.
func mutateConfig(sub subject.Subject, model *configmodel.Model, in *instance, ledger *bugs.Ledger, tel *telemetry.Recorder) bool {
	candidates := mutableIn(model, in.group.Members)
	if len(candidates) == 0 {
		candidates = model.Mutable()
	}
	if len(candidates) == 0 {
		return false
	}
	e := candidates[in.rng.Intn(len(candidates))]
	if len(e.Values) == 0 {
		return false
	}
	newVal := e.Values[in.rng.Intn(len(e.Values))]
	if in.cfg[e.Name] == newVal {
		return false
	}
	old, had := in.cfg[e.Name]
	in.cfg[e.Name] = newVal

	if err := in.target.restart(sub, in.cfg, ledger, in.index, in.clock); err != nil {
		in.restartFails++
		tel.Emit(telemetry.Event{T: in.clock, Type: telemetry.EvRestartFail, Instance: in.index,
			Entity: e.Name, Value: newVal, Detail: err.Error()})
		tel.Count(telemetry.CtrRestartFailures, 1)
		// Conflicting mutation: revert and restart under the old config.
		if had {
			in.cfg[e.Name] = old
		} else {
			delete(in.cfg, e.Name)
		}
		if err := in.target.restart(sub, in.cfg, ledger, in.index, in.clock); err != nil {
			in.restartFails++
			tel.Emit(telemetry.Event{T: in.clock, Type: telemetry.EvRestartFail, Instance: in.index,
				Config: in.cfg.String(), Detail: "revert failed: " + err.Error()})
			tel.Count(telemetry.CtrRestartFailures, 1)
			// Both the mutated and the reverted restart failed; without a
			// fallback the instance would keep stepping against a dead
			// target for the rest of the campaign. Boot the defaults,
			// which every subject's conformance suite guarantees start.
			in.cfg = model.Defaults()
			err := in.target.restart(sub, in.cfg, ledger, in.index, in.clock)
			if err != nil {
				in.restartFails++
			}
			tel.Emit(telemetry.Event{T: in.clock, Type: telemetry.EvFallback, Instance: in.index,
				Config: in.cfg.String(), Detail: fallbackDetail(err)})
			tel.Count(telemetry.CtrFallbacks, 1)
			if err != nil {
				tel.Count(telemetry.CtrRestartFailures, 1)
				return false
			}
			tel.Count(telemetry.CtrBoots, 1)
			return true
		}
		tel.Count(telemetry.CtrBoots, 1)
		return true
	}
	in.muts++
	tel.Emit(telemetry.Event{T: in.clock, Type: telemetry.EvMutation, Instance: in.index,
		Entity: e.Name, Value: newVal, Config: in.cfg.String()})
	tel.Count(telemetry.CtrMutations, 1)
	tel.Count(telemetry.CtrBoots, 1)
	return true
}

// fallbackDetail summarizes the defaults-fallback outcome for telemetry.
func fallbackDetail(err error) string {
	if err != nil {
		return "defaults fallback failed: " + err.Error()
	}
	return "defaults fallback"
}

// repairConfig makes a jointly conflicting group assignment bootable by
// greedily reverting non-default bindings (in sorted key order for
// determinism) until startup succeeds. Each reverted binding is kept
// reverted only if reverting it actually helps, so the configuration
// keeps as much of its scheduled character as possible.
func repairConfig(sub subject.Subject, cfg, defaults configmodel.Assignment) configmodel.Assignment {
	boots := func(c configmodel.Assignment) bool {
		ok := false
		bugs.Capture(func() { ok = subject.Probe(sub, map[string]string(c)) > 0 })
		return ok
	}
	if boots(cfg) {
		return cfg
	}
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		if cfg[k] != defaults[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	// First try reverting each non-default binding alone, restoring it
	// when that does not fix startup, so pairs like (feature,
	// its-dependency) survive together when they are not the culprit.
	for _, k := range keys {
		old := cfg[k]
		if def, ok := defaults[k]; ok {
			cfg[k] = def
		} else {
			delete(cfg, k)
		}
		if boots(cfg) {
			return cfg
		}
		cfg[k] = old
	}
	// Pairwise reversion did not help; strip all non-default bindings
	// one by one cumulatively.
	for _, k := range keys {
		if def, ok := defaults[k]; ok {
			cfg[k] = def
		} else {
			delete(cfg, k)
		}
		if boots(cfg) {
			return cfg
		}
	}
	return defaults.Clone()
}

func mutableIn(model *configmodel.Model, members []string) []configmodel.Entity {
	var out []configmodel.Entity
	for _, name := range members {
		if e, ok := model.Get(name); ok && e.Flag == configmodel.Mutable && len(e.Values) > 1 {
			out = append(out, e)
		}
	}
	return out
}
