// Package parallel orchestrates parallel fuzzing campaigns over the
// protocol subjects. It implements the three fuzzers the paper compares:
//
//   - CMFuzz: configuration model identification + relation-aware
//     scheduling (one cohesive configuration group per instance), with
//     adaptive mutation of MUTABLE configuration values on coverage
//     saturation (paper §III-B2);
//   - Peach parallel mode: N identical default-configuration instances
//     with periodic seed synchronization;
//   - SPFuzz: default configuration, state-model path space partitioned
//     across instances (stateful-path-based parallelism).
//
// Campaigns run on a virtual clock: each engine step models a batch of
// protocol executions and advances the owning instance's clock by a cost
// derived from the bytes sent, so 24 simulated hours replay in seconds
// and deterministically for a fixed seed. Every instance runs inside its
// own netsim namespace, reproducing the paper's network-namespace
// isolation.
//
// The campaign is factored into Host/Plan/Boot/Instance primitives so
// the distributed coordinator (internal/dist) can run the identical
// per-instance code on worker nodes: Run here and a coordinator driving
// remote workers execute the same step, sync, and mutation sequences and
// produce byte-identical Results for the same seed.
package parallel

import (
	"container/heap"
	"context"
	"sort"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/schedule"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
)

// Mode selects the parallel fuzzer.
type Mode int

// The fuzzers compared in Table I.
const (
	ModeCMFuzz Mode = iota
	ModePeach
	ModeSPFuzz
)

var modeNames = [...]string{ModeCMFuzz: "CMFuzz", ModePeach: "Peach", ModeSPFuzz: "SPFuzz"}

// String names the mode as the paper does.
func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return "unknown"
	}
	return modeNames[m]
}

// Allocator is the grouping strategy CMFuzz uses; alternatives exist for
// the ablation experiments.
type Allocator int

// Grouping strategies.
const (
	AllocCohesive Allocator = iota // Algorithm 2 (the paper's)
	AllocRandom
	AllocRoundRobin
)

// Options parameterizes a campaign.
type Options struct {
	// Mode selects the fuzzer (default CMFuzz).
	Mode Mode
	// Instances is the parallel instance count (default 4, as in §IV).
	Instances int
	// VirtualHours is the campaign length in simulated hours (default 24).
	VirtualHours float64
	// Seed drives all randomness.
	Seed int64
	// StepCost is the virtual seconds one engine step (a batch of
	// executions) costs before the per-byte term (default 2.0).
	StepCost float64
	// ByteCost is the additional virtual seconds per payload byte
	// (default 0.00002).
	ByteCost float64
	// SyncInterval is the seed-synchronization period in virtual seconds
	// (default 600).
	SyncInterval float64
	// SaturationWindow is how long coverage must stay flat before a
	// CMFuzz instance mutates a configuration value (default 1800).
	SaturationWindow float64
	// SaturationMinGain is the per-window coverage growth below which an
	// instance counts as saturated (default 8 edges) — wide hash-family
	// instrumentation trickles a few edges long after a configuration is
	// effectively exhausted.
	SaturationMinGain int
	// MaxValues caps per-entity values during relation probing
	// (default 4).
	MaxValues int
	// Allocator selects the grouping strategy (CMFuzz mode only).
	Allocator Allocator
	// DisableConfigMutation turns off adaptive configuration-value
	// mutation (ablation).
	DisableConfigMutation bool
	// SampleEvery records a coverage sample at least this often in
	// virtual seconds (default 300), bounding Figure 4 resolution.
	SampleEvery float64
	// RawRelationWeighting uses the paper-literal raw-coverage relation
	// weights instead of interaction gains (an ablation; see the relation
	// package).
	RawRelationWeighting bool
	// PeachSharedSchedules makes Peach-mode workers share generation
	// schedules pairwise, modeling a parallel mode that replicates one
	// deterministic strategy without task division (an ablation
	// quantifying the redundancy critique from the parallel-fuzzing
	// literature). Off by default: the Table I baseline runs independent
	// workers.
	PeachSharedSchedules bool
	// LinkLoss drops each fuzzer→target datagram with this probability
	// (0 disables). Applied per instance namespace, so it impairs the
	// live-target link (and simulated links) identically.
	LinkLoss float64
	// LinkLatencyBase/LinkLatencyJitter charge virtual latency per
	// delivered message: base plus uniform jitter, in virtual seconds
	// (0/0 disables).
	LinkLatencyBase   float64
	LinkLatencyJitter float64
	// Concurrency bounds the relation-probing worker pool (0 means
	// GOMAXPROCS). The campaign itself stays on the deterministic
	// virtual-clock event loop; only the startup probe matrix fans out,
	// and its result is identical for any worker count.
	Concurrency int
	// Telemetry receives the campaign's structured event stream (boots,
	// group assignments, seed syncs, coverage samples, saturation fires,
	// configuration mutations, restart failures, crash dedup, probe-cache
	// stats). Nil — the default — is a no-op sink: the campaign runs the
	// exact same decisions and the Result is byte-identical to an
	// uninstrumented run.
	Telemetry *telemetry.Recorder
	// Trace, when non-nil, is the parent wall-clock span this run
	// records under: relation.quantify (with probe.plan/execute/score),
	// schedule.allocate, instance.boot, and one long-lived instance span
	// per parallel instance carrying its sync and config.mutate children.
	// Wall-clock data lives only in the tracer — it never feeds a
	// campaign decision, so the Result stays byte-identical.
	Trace *trace.Span
	// Progress, when non-nil, receives live per-instance state (virtual
	// clock, edges, execs, crashes, seed-queue depth) on every engine
	// step, for the HTTP monitor's /status and /metrics endpoints. Like
	// Telemetry, it is observation-only.
	Progress *telemetry.Progress
	// Label names this run on the Progress board and defaults to the
	// mode name when empty.
	Label string
}

func (o *Options) setDefaults() {
	if o.Instances == 0 {
		o.Instances = 4
	}
	if o.VirtualHours == 0 {
		o.VirtualHours = 24
	}
	if o.StepCost == 0 {
		o.StepCost = 2.0
	}
	if o.ByteCost == 0 {
		o.ByteCost = 0.00002
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 600
	}
	if o.SaturationWindow == 0 {
		o.SaturationWindow = 1800
	}
	if o.SaturationMinGain == 0 {
		o.SaturationMinGain = 8
	}
	if o.MaxValues == 0 {
		o.MaxValues = 4
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 300
	}
}

// InstanceResult summarizes one parallel instance.
type InstanceResult struct {
	Index           int
	Config          string
	Group           []string
	FinalBranches   int
	Execs           int
	Crashes         int
	ConfigMutations int
	// RestartFailures counts failed target restarts during configuration
	// mutation (each failed boot attempt, including a failed revert or
	// defaults fallback, counts once).
	RestartFailures int
}

// Result is one campaign's outcome.
type Result struct {
	Mode          Mode
	Subject       subject.Info
	Series        *coverage.Series // union branch coverage over time
	FinalBranches int
	Instances     []InstanceResult
	Bugs          *bugs.Ledger
	TotalExecs    int
	// CMFuzz internals, for inspection and the ablations.
	ModelEntities int
	RelationEdges int
	Probes        int
	Groups        []schedule.Group
	// Counters aggregates the telemetry counter registry (syncs,
	// mutations, restarts, probe cache hits, ...). Nil unless
	// Options.Telemetry was set, so results without telemetry stay
	// byte-identical to pre-telemetry builds.
	Counters telemetry.Counters
}

// instanceHeap orders instances by virtual clock (ties on index), so the
// interleaving is deterministic.
type instanceHeap []*Instance

func (h instanceHeap) Len() int { return len(h) }
func (h instanceHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].index < h[j].index
}
func (h instanceHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *instanceHeap) Push(x any)   { *h = append(*h, x.(*Instance)) }
func (h *instanceHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Run executes one parallel fuzzing campaign of sub under opts.
//
// Cancelling ctx stops the campaign at the next event-loop iteration;
// Run then finalizes the partial result (series observed at the current
// watermark, per-instance summaries, counters) and returns it alongside
// ctx.Err(), so callers can still write well-formed artifacts for the
// portion that ran. Cancellation before the event loop starts returns
// (nil, ctx.Err()).
func Run(ctx context.Context, sub subject.Subject, opts Options) (*Result, error) {
	host, err := NewHost(sub, opts)
	if err != nil {
		return nil, err
	}
	opts = host.Opts
	info := sub.Info()
	tel := opts.Telemetry
	prog := opts.Progress
	if opts.Label == "" {
		opts.Label = opts.Mode.String()
	}
	prog.StartRun(opts.Label, opts.Mode.String(), info.Protocol, opts.VirtualHours*3600, opts.Instances)
	defer prog.EndRun(opts.Label)

	res := &Result{
		Mode:          opts.Mode,
		Subject:       info,
		Series:        &coverage.Series{},
		Bugs:          bugs.NewLedger(),
		ModelEntities: host.Model.Len(),
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Mode-dependent scheduling: relation probing + cohesive grouping
	// (CMFuzz), path partitioning (SPFuzz), defaults (Peach).
	plan := host.Plan(res.Bugs, tel, opts.Trace)
	res.RelationEdges = plan.RelationEdges
	res.Probes = plan.Probes
	res.Groups = plan.Groups

	// Boot instances, each in its own namespace.
	insts := make([]*Instance, 0, opts.Instances)
	for _, spec := range plan.Specs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bootSpan := opts.Trace.Child("instance.boot", trace.A("instance", spec.Index))
		in, err := host.Boot(spec, res.Bugs)
		if err != nil {
			bootSpan.End()
			return nil, err
		}
		bootSpan.Set("edges", in.startEdges)
		bootSpan.End()
		tel.Emit(telemetry.Event{Type: telemetry.EvBoot, Instance: spec.Index,
			Config: in.cfg.String(), Edges: in.startEdges})
		tel.Count(telemetry.CtrBoots, 1)
		if prog.Enabled() {
			prog.SetInstanceConfig(opts.Label, spec.Index, in.cfg.String())
		}
		insts = append(insts, in)
	}

	// The virtual-time event loop.
	horizon := opts.VirtualHours * 3600
	global := coverage.NewMap()
	for _, in := range insts {
		global.Union(in.engine.CoverageMap())
	}
	res.Series.Observe(0, global.Count())
	lastSample := 0.0
	watermark := 0.0 // monotone observation clock across instances
	// New-edge samples are coalesced to at most one per minSampleGap of
	// virtual time; without the floor, the discovery-heavy early campaign
	// records a point per coverage step and the series grows unbounded
	// long before the first SampleEvery window elapses. The final point
	// stays exact (observed at the horizon below).
	minSampleGap := opts.SampleEvery / 10

	// One long-lived wall-clock span per instance: siblings under the
	// run's parent span, so each instance renders as its own lane in the
	// trace viewer, carrying sync and config.mutate children.
	instSpans := make([]*trace.Span, len(insts))
	for _, in := range insts {
		instSpans[in.index] = opts.Trace.Child("instance", trace.A("index", in.index))
	}

	cancelled := false
	h := make(instanceHeap, len(insts))
	copy(h, insts)
	heap.Init(&h)
	for h[0].clock < horizon {
		select {
		case <-ctx.Done():
			cancelled = true
		default:
		}
		if cancelled {
			break
		}
		in := h[0]
		step := in.Step()

		if step.Crash != nil {
			isNew := res.Bugs.Record(step.Crash, in.index, in.clock, in.cfg.String())
			tel.Emit(telemetry.Event{T: in.clock, Type: telemetry.EvCrash, Instance: in.index,
				Crash: step.Crash.ID(), New: isNew, Config: in.cfg.String()})
			tel.Count(telemetry.CtrCrashes, 1)
			if isNew {
				tel.Count(telemetry.CtrCrashesUnique, 1)
			}
		}
		if step.NewEdges > 0 {
			global.Union(in.engine.CoverageMap())
		}
		if in.clock > watermark {
			watermark = in.clock
		}
		if watermark-lastSample >= opts.SampleEvery ||
			(step.NewEdges > 0 && watermark-lastSample >= minSampleGap) {
			res.Series.Observe(watermark, global.Count())
			lastSample = watermark
			tel.Emit(telemetry.Event{T: watermark, Type: telemetry.EvSample, Instance: in.index,
				Edges: global.Count()})
			tel.Count(telemetry.CtrSamples, 1)
			prog.SetUnion(opts.Label, watermark, global.Count())
		}
		if prog.Enabled() {
			st := in.engine.Stats()
			prog.StepInstance(opts.Label, in.index, in.clock,
				in.engine.Coverage(), st.Execs, in.crashes, in.muts, st.CorpusSize)
		}

		// Seed synchronization.
		if in.clock >= in.nextSync {
			sync := instSpans[in.index].Child("sync")
			imported := 0
			for _, other := range insts {
				if other != in {
					seeds := other.engine.ExportSeeds(4)
					imported += len(seeds)
					in.engine.ImportSeeds(seeds)
				}
			}
			// Advance nextSync past the instance clock. One expensive
			// step can jump several sync intervals at once; advancing by
			// a single interval would leave nextSync behind the clock and
			// fire a burst of back-to-back syncs on the following cheap
			// steps. The skipped intervals are counted, not replayed.
			skipped := 0
			for in.nextSync += opts.SyncInterval; in.nextSync <= in.clock; in.nextSync += opts.SyncInterval {
				skipped++
			}
			tel.Emit(telemetry.Event{T: in.clock, Type: telemetry.EvSync, Instance: in.index,
				Seeds: imported, Skipped: skipped})
			tel.Count(telemetry.CtrSyncs, 1)
			if skipped > 0 {
				tel.Count(telemetry.CtrSyncSkipped, skipped)
			}
			sync.Set("seeds", imported)
			sync.End()
		}

		// CMFuzz adaptive configuration mutation on saturation.
		if opts.Mode == ModeCMFuzz && !opts.DisableConfigMutation {
			if in.ObserveSaturation() {
				tel.Emit(telemetry.Event{T: in.clock, Type: telemetry.EvSaturation, Instance: in.index,
					Edges: in.engine.Coverage()})
				tel.Count(telemetry.CtrSaturations, 1)
				mut := instSpans[in.index].Child("config.mutate")
				out := in.Mutate(res.Bugs)
				EmitMutation(tel, in.index, in.clock, out)
				if out.Restarted && prog.Enabled() {
					prog.SetInstanceConfig(opts.Label, in.index, in.cfg.String())
				}
				mut.End()
				in.ResetSaturation()
			}
		}
		heap.Fix(&h, 0)
	}

	// Finalize. A cancelled run observes the series at the watermark it
	// actually reached instead of the horizon, so the partial artifact
	// never claims coverage for virtual time that did not run.
	finalT := horizon
	if cancelled {
		finalT = watermark
	}
	res.Series.Observe(finalT, global.Count())
	res.FinalBranches = global.Count()
	prog.SetUnion(opts.Label, finalT, global.Count())
	for _, in := range insts {
		st := in.engine.Stats()
		res.TotalExecs += st.Execs
		instSpans[in.index].Set("edges", in.engine.Coverage())
		instSpans[in.index].Set("execs", st.Execs)
		instSpans[in.index].End()
		res.Instances = append(res.Instances, in.Result())
	}
	res.Counters = tel.Counters()
	if cancelled {
		return res, ctx.Err()
	}
	return res, nil
}

// fallbackDetail summarizes the defaults-fallback outcome for telemetry.
func fallbackDetail(err error) string {
	if err != nil {
		return "defaults fallback failed: " + err.Error()
	}
	return "defaults fallback"
}

// repairConfig makes a jointly conflicting group assignment bootable by
// greedily reverting non-default bindings (in sorted key order for
// determinism) until startup succeeds. Each reverted binding is kept
// reverted only if reverting it actually helps, so the configuration
// keeps as much of its scheduled character as possible.
func repairConfig(sub subject.Subject, cfg, defaults configmodel.Assignment) configmodel.Assignment {
	boots := func(c configmodel.Assignment) bool {
		ok := false
		bugs.Capture(func() { ok = subject.Probe(sub, map[string]string(c)) > 0 })
		return ok
	}
	if boots(cfg) {
		return cfg
	}
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		if cfg[k] != defaults[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	// First try reverting each non-default binding alone, restoring it
	// when that does not fix startup, so pairs like (feature,
	// its-dependency) survive together when they are not the culprit.
	for _, k := range keys {
		old := cfg[k]
		if def, ok := defaults[k]; ok {
			cfg[k] = def
		} else {
			delete(cfg, k)
		}
		if boots(cfg) {
			return cfg
		}
		cfg[k] = old
	}
	// Pairwise reversion did not help; strip all non-default bindings
	// one by one cumulatively.
	for _, k := range keys {
		if def, ok := defaults[k]; ok {
			cfg[k] = def
		} else {
			delete(cfg, k)
		}
		if boots(cfg) {
			return cfg
		}
	}
	return defaults.Clone()
}

func mutableIn(model *configmodel.Model, members []string) []configmodel.Entity {
	var out []configmodel.Entity
	for _, name := range members {
		if e, ok := model.Get(name); ok && e.Flag == configmodel.Mutable && len(e.Values) > 1 {
			out = append(out, e)
		}
	}
	return out
}
