package parallel

import (
	"context"
	"strings"
	"testing"

	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
)

// short campaigns keep the unit tests fast; the campaign package and the
// bench harness run the full 24-hour settings.
const testHours = 1

func mustSubject(t *testing.T, name string) subject.Subject {
	t.Helper()
	sub, err := protocols.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestModeString(t *testing.T) {
	if ModeCMFuzz.String() != "CMFuzz" || ModePeach.String() != "Peach" || ModeSPFuzz.String() != "SPFuzz" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "unknown" {
		t.Fatal("out-of-range mode")
	}
}

func TestRunAllSubjectsAllModes(t *testing.T) {
	for _, sub := range protocols.All() {
		for _, mode := range []Mode{ModeCMFuzz, ModePeach, ModeSPFuzz} {
			res, err := Run(context.Background(), sub, Options{Mode: mode, VirtualHours: 0.25, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", sub.Info().Protocol, mode, err)
			}
			if res.FinalBranches == 0 {
				t.Errorf("%s/%s: zero coverage", sub.Info().Protocol, mode)
			}
			if res.TotalExecs == 0 {
				t.Errorf("%s/%s: zero executions", sub.Info().Protocol, mode)
			}
			if len(res.Instances) != 4 {
				t.Errorf("%s/%s: %d instances", sub.Info().Protocol, mode, len(res.Instances))
			}
			if res.Series.Final() != res.FinalBranches {
				t.Errorf("%s/%s: series end %d != final %d",
					sub.Info().Protocol, mode, res.Series.Final(), res.FinalBranches)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	sub := mustSubject(t, "DNS")
	a, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: testHours, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: testHours, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalBranches != b.FinalBranches || a.TotalExecs != b.TotalExecs || a.Bugs.Len() != b.Bugs.Len() {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)",
			a.FinalBranches, a.TotalExecs, a.Bugs.Len(),
			b.FinalBranches, b.TotalExecs, b.Bugs.Len())
	}
}

func TestCMFuzzBeatsBaselinesOnDNS(t *testing.T) {
	sub := mustSubject(t, "DNS")
	results := map[Mode]*Result{}
	for _, mode := range []Mode{ModeCMFuzz, ModePeach, ModeSPFuzz} {
		r, err := Run(context.Background(), sub, Options{Mode: mode, VirtualHours: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		results[mode] = r
	}
	if results[ModeCMFuzz].FinalBranches <= results[ModePeach].FinalBranches {
		t.Fatalf("CMFuzz %d <= Peach %d",
			results[ModeCMFuzz].FinalBranches, results[ModePeach].FinalBranches)
	}
	if results[ModeCMFuzz].FinalBranches <= results[ModeSPFuzz].FinalBranches {
		t.Fatalf("CMFuzz %d <= SPFuzz %d",
			results[ModeCMFuzz].FinalBranches, results[ModeSPFuzz].FinalBranches)
	}
}

func TestCMFuzzSchedulesDistinctConfigs(t *testing.T) {
	sub := mustSubject(t, "CoAP")
	r, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.ModelEntities == 0 || r.Probes == 0 {
		t.Fatalf("no model identification happened: %+v", r)
	}
	distinct := map[string]bool{}
	for _, in := range r.Instances {
		distinct[in.Config] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all instances share one configuration: %v", distinct)
	}
	// Groups must partition (no entity twice).
	seen := map[string]bool{}
	for _, g := range r.Groups {
		for _, m := range g.Members {
			if seen[m] {
				t.Fatalf("entity %q in two groups", m)
			}
			seen[m] = true
		}
	}
}

func TestBaselinesRunDefaultConfigs(t *testing.T) {
	sub := mustSubject(t, "MQTT")
	r, err := Run(context.Background(), sub, Options{Mode: ModePeach, VirtualHours: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range r.Instances {
		if strings.Contains(in.Config, "bridge=true") || strings.Contains(in.Config, "websockets=true") {
			t.Fatalf("Peach instance runs a non-default feature: %s", in.Config)
		}
		if in.ConfigMutations != 0 {
			t.Fatal("baseline mutated its configuration")
		}
	}
}

func TestConfigGatedBugsOnlyFoundByCMFuzz(t *testing.T) {
	sub := mustSubject(t, "DNS")
	cm, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Bugs.Len() == 0 {
		t.Fatal("CMFuzz found no DNS bugs in 6 virtual hours")
	}
	pe, err := Run(context.Background(), sub, Options{Mode: ModePeach, VirtualHours: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pe.Bugs.Len() != 0 {
		t.Fatalf("Peach found %d config-gated bugs under defaults", pe.Bugs.Len())
	}
}

func TestSPFuzzUsesPathPartition(t *testing.T) {
	sub := mustSubject(t, "MQTT")
	r, err := Run(context.Background(), sub, Options{Mode: ModeSPFuzz, VirtualHours: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// SPFuzz instances run default configs (config diversity is CMFuzz's).
	for _, in := range r.Instances {
		if strings.Contains(in.Config, "bridge=true") {
			t.Fatalf("SPFuzz instance has non-default config: %s", in.Config)
		}
	}
}

func TestAllocatorAblations(t *testing.T) {
	sub := mustSubject(t, "DNS")
	for _, alloc := range []Allocator{AllocCohesive, AllocRandom, AllocRoundRobin} {
		r, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.25, Seed: 1, Allocator: alloc})
		if err != nil {
			t.Fatalf("allocator %d: %v", alloc, err)
		}
		if len(r.Groups) == 0 {
			t.Fatalf("allocator %d produced no groups", alloc)
		}
	}
}

func TestDisableConfigMutation(t *testing.T) {
	sub := mustSubject(t, "CoAP")
	r, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 4, Seed: 1, DisableConfigMutation: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range r.Instances {
		if in.ConfigMutations != 0 {
			t.Fatal("config mutation happened despite being disabled")
		}
	}
}

func TestSeriesMonotone(t *testing.T) {
	sub := mustSubject(t, "CoAP")
	r, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: testHours, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Series.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].Count < pts[i-1].Count || pts[i].T < pts[i-1].T {
			t.Fatalf("series not monotone at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestRepairConfigSalvagesConflicts(t *testing.T) {
	sub := mustSubject(t, "DNS")
	// dnssec without trust-anchor conflicts; repair must drop or complete it.
	items := map[string]string{"server": "8.8.8.8", "dnssec": "true"}
	cfgIn := make(map[string]string, len(items))
	for k, v := range items {
		cfgIn[k] = v
	}
	repaired := repairConfig(sub, toAssignment(cfgIn), toAssignment(map[string]string{"server": "8.8.8.8"}))
	if got := subject.Probe(sub, map[string]string(repaired)); got == 0 {
		t.Fatalf("repaired config still fails startup: %v", repaired)
	}
}

func toAssignment(m map[string]string) map[string]string { return m }

func BenchmarkCampaignStepDNS(b *testing.B) {
	sub, err := protocols.ByName("DNS")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
