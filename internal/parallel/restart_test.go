package parallel

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/netsim"
	"cmfuzz/internal/subject"
)

// stubSubject is a minimal subject whose bootability is scripted through
// allow, so restart-failure paths can be forced deterministically.
type stubSubject struct {
	allow func(cfg map[string]string) bool
	boots int
}

func (s *stubSubject) Info() subject.Info {
	return subject.Info{Protocol: "STUB", Implementation: "stub", Transport: subject.Datagram, Port: 9999}
}
func (s *stubSubject) ConfigInput() configspec.Input { return configspec.Input{} }
func (s *stubSubject) PitXML() string                { return "" }
func (s *stubSubject) NewInstance() subject.Instance { return &stubInstance{sub: s} }

type stubInstance struct {
	sub *stubSubject
	tr  *coverage.Trace
}

func (i *stubInstance) Start(cfg map[string]string, tr *coverage.Trace) error {
	i.sub.boots++
	if i.sub.allow != nil && !i.sub.allow(cfg) {
		return errors.New("stub: conflicting configuration")
	}
	tr.Hit(1)
	tr.Hit(2)
	return nil
}
func (i *stubInstance) SetTrace(tr *coverage.Trace) { i.tr = tr }
func (i *stubInstance) NewSession()                 {}
func (i *stubInstance) Message(p []byte) [][]byte   { i.tr.Hit(3); return nil }
func (i *stubInstance) Close()                      {}

// TestMutateConfigFallsBackToDefaults is the regression test for the
// dead-target restart path: when both the mutated and the reverted
// restart fail, mutateConfig must boot the defaults instead of leaving
// the instance stepping against a dead target, and the failures must be
// surfaced in the restart-failure counter.
func TestMutateConfigFallsBackToDefaults(t *testing.T) {
	model := configmodel.NewModel([]configmodel.Entity{
		{Name: "mode", Type: configmodel.TypeString, Flag: configmodel.Mutable,
			Default: "v0", Values: []string{"v1", "v2"}},
	})
	sub := &stubSubject{allow: func(map[string]string) bool { return true }}
	ns := netsim.NewFabric().Namespace("dead0")
	cfg := configmodel.Assignment{"mode": "v1"}
	target, _, err := bootTarget(sub, ns, cfg, bugs.NewLedger(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// The target "dies": from now on only the default configuration
	// boots, so the mutated config (mode=v2) and the reverted config
	// (mode=v1) both fail to restart.
	sub.allow = func(cfg map[string]string) bool { return cfg["mode"] == "v0" }
	h := &Host{Sub: sub, Model: model, Defaults: model.Defaults()}
	in := &Instance{host: h, index: 0, target: target, cfg: cfg, rng: rand.New(rand.NewSource(1))}
	ledger := bugs.NewLedger()
	ok := false
	for tries := 0; tries < 32 && !ok; tries++ {
		// Attempts that draw the current value return false without a
		// restart; keep drawing until the mutation actually fires.
		ok = in.Mutate(ledger).Restarted
	}
	if !ok {
		t.Fatal("Mutate never recovered the instance")
	}
	if in.cfg["mode"] != "v0" {
		t.Fatalf("fallback config = %v, want the defaults", in.cfg)
	}
	if in.restartFails != 2 {
		t.Fatalf("restartFails = %d, want 2 (mutated + reverted)", in.restartFails)
	}
	// The swapped-in instance must be live.
	tr := coverage.NewTrace()
	if crash := target.Run([][]byte{{1}}, tr); crash != nil || tr.Count() == 0 {
		t.Fatalf("fallback target not live: crash=%v cov=%d", crash, tr.Count())
	}
}

// TestMutateConfigRevertStillWorks pins the pre-existing single-failure
// path: a conflicting mutation is reverted, the old configuration boots
// again, and exactly one restart failure is counted.
func TestMutateConfigRevertStillWorks(t *testing.T) {
	model := configmodel.NewModel([]configmodel.Entity{
		{Name: "mode", Type: configmodel.TypeString, Flag: configmodel.Mutable,
			Default: "v0", Values: []string{"v1", "v2"}},
	})
	sub := &stubSubject{allow: func(map[string]string) bool { return true }}
	ns := netsim.NewFabric().Namespace("dead1")
	cfg := configmodel.Assignment{"mode": "v1"}
	target, _, err := bootTarget(sub, ns, cfg, bugs.NewLedger(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Only the mutated value conflicts; the revert must succeed.
	sub.allow = func(cfg map[string]string) bool { return cfg["mode"] != "v2" }
	h := &Host{Sub: sub, Model: model, Defaults: model.Defaults()}
	in := &Instance{host: h, index: 0, target: target, cfg: cfg, rng: rand.New(rand.NewSource(1))}
	ok := false
	for tries := 0; tries < 32 && !ok; tries++ {
		ok = in.Mutate(bugs.NewLedger()).Restarted
	}
	if !ok {
		t.Fatal("Mutate never fired")
	}
	if in.cfg["mode"] != "v1" {
		t.Fatalf("config after revert = %v, want mode=v1", in.cfg)
	}
	if in.restartFails != 1 {
		t.Fatalf("restartFails = %d, want 1", in.restartFails)
	}
}

// TestSeriesSampleCoalescing asserts new-edge samples are coalesced: no
// two retained interior samples may be closer than SampleEvery/10 of
// virtual time, and the series stays bounded instead of growing with
// every discovery-heavy early step.
func TestSeriesSampleCoalescing(t *testing.T) {
	sub := mustSubject(t, "DNS")
	r, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Series.Points()
	if len(pts) < 3 {
		t.Fatalf("series too sparse to check: %d points", len(pts))
	}
	const minGap = 300.0 / 10 // default SampleEvery / 10
	for i := 1; i < len(pts)-1; i++ {
		if gap := pts[i].T - pts[i-1].T; gap < minGap {
			t.Fatalf("samples %d and %d only %.1fs apart, want >= %.1fs", i-1, i, gap, minGap)
		}
	}
	horizon := 1.0 * 3600
	if maxPts := int(horizon/minGap) + 2; len(pts) > maxPts {
		t.Fatalf("series has %d points, coalescing bound is %d", len(pts), maxPts)
	}
}

// TestRunIdenticalAcrossConcurrency asserts a campaign's outcome does not
// depend on the probe worker count.
func TestRunIdenticalAcrossConcurrency(t *testing.T) {
	sub := mustSubject(t, "DNS")
	base, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.5, Seed: 11, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, conc := range []int{2, 8} {
		got, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.5, Seed: 11, Concurrency: conc})
		if err != nil {
			t.Fatal(err)
		}
		if got.FinalBranches != base.FinalBranches || got.TotalExecs != base.TotalExecs ||
			got.Probes != base.Probes || got.RelationEdges != base.RelationEdges {
			t.Fatalf("concurrency %d diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", conc,
				got.FinalBranches, got.TotalExecs, got.Probes, got.RelationEdges,
				base.FinalBranches, base.TotalExecs, base.Probes, base.RelationEdges)
		}
		for i := range got.Instances {
			if got.Instances[i].Config != base.Instances[i].Config {
				t.Fatalf("concurrency %d: instance %d config diverged", conc, i)
			}
		}
	}
}
