package parallel

import (
	"fmt"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/core/relation"
	"cmfuzz/internal/core/schedule"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/netsim"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
)

// An InstanceSpec fully determines one parallel instance: its scheduled
// configuration, cohesive group, path restriction, and seeds. Specs are
// the unit the distributed coordinator ships to worker nodes — booting
// the same spec on any process yields the same instance behavior.
type InstanceSpec struct {
	Index  int
	Config configmodel.Assignment
	Group  schedule.Group
	Paths  []fuzz.Path
	// EngineSeed drives the instance's fuzzing engine; RngSeed drives its
	// configuration-mutation choices. Both are derived from the campaign
	// seed by Plan and carried explicitly so a remote worker does not
	// need to re-derive mode-dependent seeding rules.
	EngineSeed int64
	RngSeed    int64
}

// A Host owns the per-process context instances need: the parsed Pit,
// the configuration model, and the netsim fabric. Both the in-process
// campaign loop and a distributed worker node build one Host per
// campaign; everything in it is a deterministic function of the subject,
// so two Hosts for the same subject are interchangeable.
type Host struct {
	Sub        subject.Subject
	Opts       Options // defaults applied
	Pit        *fuzz.Pit
	StateModel *fuzz.StateModel
	Model      *configmodel.Model
	Defaults   configmodel.Assignment
	Fabric     *netsim.Fabric
}

// NewHost parses the subject's Pit and configuration model and returns a
// Host ready to plan or boot instances. opts gets its defaults applied.
func NewHost(sub subject.Subject, opts Options) (*Host, error) {
	opts.setDefaults()
	info := sub.Info()
	pit, err := fuzz.ParsePit(sub.PitXML())
	if err != nil {
		return nil, fmt.Errorf("parallel: %s pit: %w", info.Protocol, err)
	}
	model := configmodel.Build(configspec.Extract(sub.ConfigInput()))
	return &Host{
		Sub:  sub,
		Opts: opts,
		Pit:  pit,
		// Document order, not map iteration: a Pit with several state
		// models must yield the same model every run or SPFuzz path
		// partitions (and every engine walk) stop reproducing.
		StateModel: pit.DefaultStateModel(),
		Model:      model,
		Defaults:   model.Defaults(),
		Fabric:     netsim.NewFabric(),
	}, nil
}

// A Plan is the campaign's pre-fuzzing work product: one InstanceSpec
// per instance plus the model internals the Result reports. In a
// distributed campaign the coordinator computes the Plan (identification,
// relation probing, cohesive grouping) and ships the specs to workers.
type Plan struct {
	Specs []InstanceSpec
	// Groups is the cohesive allocation (CMFuzz mode; may be shorter
	// than Instances when the relation graph has few entities).
	Groups        []schedule.Group
	RelationEdges int
	Probes        int
}

// Plan runs the mode-dependent scheduling phase: configuration model
// relation probing and cohesive grouping for CMFuzz, path partitioning
// for SPFuzz, defaults for Peach. Probe-time startup crashes are filed
// in ledger (instance -1). tel receives the per-instance group events.
func (h *Host) Plan(ledger *bugs.Ledger, tel *telemetry.Recorder, parent *trace.Span) *Plan {
	opts := h.Opts
	plan := &Plan{Specs: make([]InstanceSpec, opts.Instances)}
	configs := make([]configmodel.Assignment, opts.Instances)
	groups := make([]schedule.Group, opts.Instances)
	paths := make([][]fuzz.Path, opts.Instances)

	switch opts.Mode {
	case ModeCMFuzz:
		weighting := relation.WeightInteraction
		if opts.RawRelationWeighting {
			weighting = relation.WeightRawCoverage
		}
		// The probe closure runs concurrently across the executor's
		// workers; each call boots its own throwaway instance, and a
		// startup crash (a configuration-parsing defect hit while
		// probing) is filed in the concurrency-safe ledger and scored as
		// a failed startup rather than tearing the campaign down.
		rel := relation.Quantify(h.Model, func(cfg configmodel.Assignment) int {
			cov := 0
			if crash := bugs.Capture(func() { cov = subject.Probe(h.Sub, map[string]string(cfg)) }); crash != nil {
				ledger.Record(crash, -1, 0, cfg.String())
				return 0
			}
			return cov
		}, relation.Options{MaxValues: opts.MaxValues, Weighting: weighting, Workers: opts.Concurrency, Telemetry: tel, Trace: parent})
		plan.RelationEdges = rel.Graph.EdgeCount()
		plan.Probes = rel.Probes
		allocName := map[Allocator]string{AllocRandom: "random", AllocRoundRobin: "round-robin"}[opts.Allocator]
		if allocName == "" {
			allocName = "cohesive"
		}
		alloc := schedule.Instrumented(parent, allocName, len(rel.Graph.Nodes()), func() []schedule.Group {
			switch opts.Allocator {
			case AllocRandom:
				return schedule.RandomAllocate(rel.Graph, opts.Instances, opts.Seed)
			case AllocRoundRobin:
				return schedule.RoundRobinAllocate(rel.Graph, opts.Instances)
			default:
				return schedule.Allocate(rel.Graph, opts.Instances)
			}
		})
		plan.Groups = alloc
		for i := range configs {
			if i < len(alloc) {
				groups[i] = alloc[i]
				configs[i] = schedule.GroupAssignment(h.Model, rel, alloc[i])
			} else {
				configs[i] = h.Defaults.Clone()
			}
			tel.Emit(telemetry.Event{Type: telemetry.EvGroup, Instance: i,
				Group: groups[i].Members, Config: configs[i].String()})
		}
	case ModeSPFuzz:
		var all []fuzz.Path
		if h.StateModel != nil {
			all = h.StateModel.Paths(12, 64)
		}
		for i := range configs {
			configs[i] = h.Defaults.Clone()
			for j := i; j < len(all); j += opts.Instances {
				paths[i] = append(paths[i], all[j])
			}
		}
	default: // Peach
		for i := range configs {
			configs[i] = h.Defaults.Clone()
		}
	}

	for i := range plan.Specs {
		engineSeed := opts.Seed*7919 + int64(i)
		if opts.Mode == ModePeach && opts.PeachSharedSchedules {
			engineSeed = opts.Seed*7919 + int64(i/2)
		}
		plan.Specs[i] = InstanceSpec{
			Index:      i,
			Config:     configs[i],
			Group:      groups[i],
			Paths:      paths[i],
			EngineSeed: engineSeed,
			RngSeed:    opts.Seed*104729 + int64(i),
		}
	}
	return plan
}
