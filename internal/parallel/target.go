package parallel

import (
	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/netsim"
	"cmfuzz/internal/subject"
)

// netTarget adapts a subject instance into a fuzz.Target, routing every
// message through the instance's isolated netsim namespace (datagram or
// stream, per the subject's transport) so cross-instance contamination is
// structurally impossible.
type netTarget struct {
	ns      *netsim.Namespace
	info    subject.Info
	inst    subject.Instance
	startup *coverage.Map
	conn    *netsim.Conn
}

// bootTarget starts a fresh subject instance under cfg inside ns and
// wires it to the namespace. It returns the target and the startup
// coverage map. A crash during startup (a configuration-parsing defect)
// is recorded in the ledger and reported as an error.
func bootTarget(sub subject.Subject, ns *netsim.Namespace, cfg configmodel.Assignment, sink CrashSink, index int) (*netTarget, *coverage.Map, error) {
	t := &netTarget{ns: ns, info: sub.Info()}
	if err := t.boot(sub, cfg, sink, index, 0); err != nil {
		return nil, nil, err
	}
	// Namespace wiring: handlers read t.inst through the pointer, so a
	// restart transparently swaps the backing instance.
	if t.info.Transport == subject.Datagram {
		if err := ns.BindDatagram(t.info.Port, netsim.DatagramHandlerFunc(
			func(src netsim.Addr, payload []byte) [][]byte {
				return t.inst.Message(payload)
			})); err != nil {
			return nil, nil, err
		}
	} else {
		if err := ns.Listen(t.info.Port, streamAdapter{t}); err != nil {
			return nil, nil, err
		}
	}
	return t, t.startup, nil
}

// boot starts (or re-starts) the backing instance under cfg.
func (t *netTarget) boot(sub subject.Subject, cfg configmodel.Assignment, sink CrashSink, index int, now float64) error {
	inst := sub.NewInstance()
	tr := coverage.NewTrace()
	var startErr error
	crash := bugs.Capture(func() {
		startErr = inst.Start(map[string]string(cfg), tr)
	})
	if crash != nil {
		sink.Record(crash, index, now, cfg.String())
		return crash
	}
	if startErr != nil {
		return startErr
	}
	if t.inst != nil {
		t.inst.Close()
	}
	t.inst = inst
	t.startup = tr.Map()
	return nil
}

// restart reboots the instance under a mutated configuration, keeping
// the namespace wiring.
func (t *netTarget) restart(sub subject.Subject, cfg configmodel.Assignment, sink CrashSink, index int, now float64) error {
	return t.boot(sub, cfg, sink, index, now)
}

// streamAdapter exposes the target's instance as a netsim stream server.
type streamAdapter struct{ t *netTarget }

func (a streamAdapter) OnConnect(c *netsim.Conn) {}
func (a streamAdapter) OnData(c *netsim.Conn, data []byte) [][]byte {
	return a.t.inst.Message(data)
}
func (a streamAdapter) OnClose(c *netsim.Conn) {}

// Run implements fuzz.Target: one execution = one fresh protocol session
// carrying the whole message sequence through the namespace.
func (t *netTarget) Run(seq [][]byte, tr *coverage.Trace) (crash *bugs.Crash) {
	t.inst.SetTrace(tr)
	t.inst.NewSession()
	client := netsim.Addr{Host: "fuzzer", Port: 49152}
	dst := netsim.Addr{Host: t.ns.Name(), Port: t.info.Port}

	if t.info.Transport == subject.Stream {
		crash = bugs.Capture(func() {
			conn, err := t.ns.Dial(t.info.Port)
			if err != nil {
				return
			}
			t.conn = conn
			defer conn.Close()
			for _, msg := range seq {
				if _, err := conn.Send(msg); err != nil {
					return
				}
			}
		})
		return crash
	}
	crash = bugs.Capture(func() {
		for _, msg := range seq {
			if _, err := t.ns.SendDatagram(client, dst, msg); err != nil {
				return
			}
		}
	})
	return crash
}
