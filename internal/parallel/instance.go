package parallel

import (
	"fmt"
	"math/rand"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/schedule"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/telemetry"
)

// A CrashSink receives crash records as instances hit them. *bugs.Ledger
// satisfies it; a distributed worker substitutes a buffering sink that
// ships the records to the coordinator, which replays them into the one
// authoritative ledger in event-loop order. The return value reports
// whether the crash was new to the sink (ledger dedup).
type CrashSink interface {
	Record(c *bugs.Crash, instance int, t float64, config string) bool
}

// A CrashRec is one buffered crash record: the crash plus the stamp a
// CrashSink.Record call would have received. Transports ship these and
// replay them into the authoritative ledger in event-loop order.
type CrashRec struct {
	Crash    bugs.Crash
	Instance int
	T        float64
	Config   string
}

// A RecordingSink buffers crash records instead of deduplicating them.
// Distributed workers hand one to Boot/Mutate and ship the records back
// to the coordinator, whose ledger performs the authoritative dedup.
type RecordingSink struct{ Recs []CrashRec }

// Record appends the crash and reports it as new (dedup is deferred to
// whoever replays the buffer).
func (b *RecordingSink) Record(c *bugs.Crash, instance int, t float64, config string) bool {
	b.Recs = append(b.Recs, CrashRec{Crash: *c, Instance: instance, T: t, Config: config})
	return true
}

// An Instance is one running parallel fuzzing instance: an engine bound
// to a booted subject target inside its own netsim namespace, plus the
// virtual clock and saturation state the campaign loop schedules it by.
// Booting equal specs on equal hosts yields instances whose step
// sequences are bit-for-bit identical, which is what lets a distributed
// worker stand in for the in-process loop.
type Instance struct {
	host         *Host
	index        int
	clock        float64
	nextSync     float64
	engine       *fuzz.Engine
	target       *netTarget
	cfg          configmodel.Assignment
	group        schedule.Group
	sat          *coverage.Saturation
	rng          *rand.Rand
	muts         int
	crashes      int
	restartFails int
	startEdges   int
	// latencySpent is how much of the namespace's accrued link latency
	// has already been charged to the virtual clock.
	latencySpent float64
}

// Boot starts the instance described by spec: repair the scheduled
// configuration if it conflicts, boot the target (falling back to
// defaults as a last resort), and seed the engine with the startup
// coverage. Startup crashes go to sink.
func (h *Host) Boot(spec InstanceSpec, sink CrashSink) (*Instance, error) {
	ns := h.Fabric.Namespace(fmt.Sprintf("inst%d", spec.Index))
	// Link impairment, seeded per instance so loss/latency streams are
	// independent across instances yet reproducible per campaign seed.
	if h.Opts.LinkLoss > 0 {
		ns.SetLoss(h.Opts.LinkLoss, h.Opts.Seed*31+int64(spec.Index))
	}
	if h.Opts.LinkLatencyBase > 0 || h.Opts.LinkLatencyJitter > 0 {
		ns.SetLatency(h.Opts.LinkLatencyBase, h.Opts.LinkLatencyJitter, h.Opts.Seed*37+int64(spec.Index))
	}
	cfg := repairConfig(h.Sub, spec.Config, h.Defaults)
	target, startCov, err := bootTarget(h.Sub, ns, cfg, sink, spec.Index)
	if err != nil {
		// Still conflicting after repair: last-resort defaults.
		cfg = h.Defaults.Clone()
		target, startCov, err = bootTarget(h.Sub, ns, cfg, sink, spec.Index)
		if err != nil {
			return nil, fmt.Errorf("parallel: instance %d failed to start: %w", spec.Index, err)
		}
	}
	eng := fuzz.NewEngine(fuzz.Config{
		Models:     h.Pit.DataModels,
		StateModel: h.StateModel,
		Seed:       spec.EngineSeed,
		FixedPaths: spec.Paths,
	}, target)
	eng.Absorb(startCov)
	return &Instance{
		host:       h,
		index:      spec.Index,
		nextSync:   h.Opts.SyncInterval,
		engine:     eng,
		target:     target,
		cfg:        cfg,
		group:      spec.Group,
		sat:        &coverage.Saturation{Window: h.Opts.SaturationWindow, MinGain: h.Opts.SaturationMinGain, MinGainFrac: 0.01},
		rng:        rand.New(rand.NewSource(spec.RngSeed)),
		startEdges: startCov.Count(),
	}, nil
}

// Step runs one engine step and advances the instance's virtual clock by
// the campaign cost model. A crashing step bumps the instance crash
// counter; recording it in the ledger is the scheduler's job (the record
// must land in global event-loop order, which only the scheduler knows).
func (in *Instance) Step() fuzz.StepResult {
	step := in.engine.Step()
	in.clock += in.host.Opts.StepCost + in.host.Opts.ByteCost*float64(step.Bytes)
	if in.host.Opts.LinkLatencyBase > 0 || in.host.Opts.LinkLatencyJitter > 0 {
		// Spend the link latency netsim accrued during this step: the
		// impaired link slows the campaign's virtual clock, exactly as a
		// slow real network would slow wall time.
		acc := in.target.ns.Stats().LatencyAccrued
		in.clock += acc - in.latencySpent
		in.latencySpent = acc
	}
	if step.Crash != nil {
		in.crashes++
	}
	return step
}

// A LeaseStep is the full record of one autonomous step: what Step
// returned, the corpus addition it caused (if any), and the saturation
// mutation it triggered (if any). The distributed worker streams one per
// step back to the coordinator, which replays them into the global
// event loop in virtual-clock order; Delta is transport scratch the
// in-process loop leaves nil.
type LeaseStep struct {
	Bytes    int
	NewEdges int
	Crash    *bugs.Crash
	// Seed is the corpus addition this step produced; zero unless
	// NewEdges > 0.
	Seed fuzz.Seed
	// Delta carries the encoded coverage delta for transports. The
	// afterStep callback fills it in; StepN itself never touches it.
	Delta []byte
	// Saturation-mutation fields, set only when SatFired is true.
	SatFired        bool
	Mutation        *MutationOutcome
	MutationCrashes []CrashRec
	Config          string // assignment after the mutation attempt
	Coverage        int    // edge count after absorbing restart coverage
}

// StepN runs the instance autonomously until its clock crosses boundary
// (the next sync point) or horizon, whichever comes first, invoking the
// callbacks once per step. It is the worker half of the lease protocol:
// the loop body is `Step` plus the saturation/mutation check, i.e.
// exactly what the in-process event loop does between scheduler
// touchpoints, so a coordinator replaying the records reproduces the
// in-process run bit for bit.
//
// afterStep fires after the engine step but before any configuration
// mutation — the point where the in-process loop unions new coverage
// into the global map — so transports must snapshot coverage deltas
// there: a mutation restart absorbs startup coverage that must ride the
// NEXT new-edges delta, as it does in-process. afterRecord fires once
// the record is complete (mutation included). Mutation and seed sync
// commute — mutation touches rng/target/engine state, sync touches only
// the corpus — so running the whole batch before the coordinator
// processes syncs does not reorder observable effects.
//
// The return value reports whether the instance stopped at boundary
// (sync due) rather than at horizon.
func (in *Instance) StepN(boundary, horizon float64, afterStep, afterRecord func(*LeaseStep)) (syncDue bool) {
	opts := in.host.Opts
	mutate := opts.Mode == ModeCMFuzz && !opts.DisableConfigMutation
	for in.clock < horizon {
		step := in.Step()
		rec := LeaseStep{Bytes: step.Bytes, NewEdges: step.NewEdges, Crash: step.Crash}
		if step.NewEdges > 0 {
			rec.Seed = in.engine.LastSeed()
		}
		if afterStep != nil {
			afterStep(&rec)
		}
		if mutate && in.ObserveSaturation() {
			rec.SatFired = true
			sink := &RecordingSink{}
			out := in.Mutate(sink)
			rec.Mutation = &out
			rec.MutationCrashes = sink.Recs
			rec.Config = in.cfg.String()
			rec.Coverage = in.engine.Coverage()
			in.ResetSaturation()
		}
		if afterRecord != nil {
			afterRecord(&rec)
		}
		if in.clock >= boundary {
			return true
		}
	}
	return false
}

// ObserveSaturation feeds the instance's current coverage into its
// saturation tracker and reports whether the tracker now considers the
// instance saturated.
func (in *Instance) ObserveSaturation() bool {
	in.sat.Observe(in.clock, in.engine.Coverage())
	return in.sat.Saturated(in.clock)
}

// ResetSaturation restarts the saturation window (after a configuration
// mutation attempt).
func (in *Instance) ResetSaturation() { in.sat.Reset(in.clock) }

// Accessors used by the campaign loop, the progress board, and the
// distributed coordinator/worker pair.

// Index returns the instance's campaign slot.
func (in *Instance) Index() int { return in.index }

// Clock returns the instance's virtual clock in seconds.
func (in *Instance) Clock() float64 { return in.clock }

// SetClock overrides the virtual clock. The distributed coordinator uses
// it when re-booting a lost instance on a surviving worker: the fresh
// instance must resume at the clock the dead worker had reached.
func (in *Instance) SetClock(c float64) { in.clock = c }

// NextSync returns the next scheduled seed-synchronization time.
func (in *Instance) NextSync() float64 { return in.nextSync }

// SetNextSync overrides the sync schedule (coordinator-owned in
// distributed runs).
func (in *Instance) SetNextSync(t float64) { in.nextSync = t }

// Coverage returns the instance's own edge count.
func (in *Instance) Coverage() int { return in.engine.Coverage() }

// CoverageMap exposes the engine's live coverage map (read-only use).
func (in *Instance) CoverageMap() *coverage.Map { return in.engine.CoverageMap() }

// TraceMap exposes the engine's per-exec trace map from the most recent
// step (read-only use, valid until the next step).
func (in *Instance) TraceMap() *coverage.Map { return in.engine.TraceMap() }

// Stats returns the engine's execution statistics.
func (in *Instance) Stats() fuzz.Stats { return in.engine.Stats() }

// ExportSeeds returns up to max of the instance's best corpus entries.
func (in *Instance) ExportSeeds(max int) []fuzz.Seed { return in.engine.ExportSeeds(max) }

// ImportSeeds merges seeds from other instances into the corpus.
func (in *Instance) ImportSeeds(seeds []fuzz.Seed) { in.engine.ImportSeeds(seeds) }

// ConfigString renders the instance's current configuration assignment.
func (in *Instance) ConfigString() string { return in.cfg.String() }

// StartupEdges returns the coverage the target's boot alone produced.
func (in *Instance) StartupEdges() int { return in.startEdges }

// Crashes returns how many crashing steps the instance has hit.
func (in *Instance) Crashes() int { return in.crashes }

// Mutations returns how many configuration mutations have stuck.
func (in *Instance) Mutations() int { return in.muts }

// Result summarizes the instance for the campaign Result.
func (in *Instance) Result() InstanceResult {
	st := in.engine.Stats()
	return InstanceResult{
		Index:           in.index,
		Config:          in.cfg.String(),
		Group:           in.group.Members,
		FinalBranches:   in.engine.Coverage(),
		Execs:           st.Execs,
		Crashes:         in.crashes,
		ConfigMutations: in.muts,
		RestartFailures: in.restartFails,
	}
}

// A MutEvent is one telemetry event a configuration mutation produced,
// in order. The scheduler stamps instance and clock when emitting, so the
// same outcome renders identically whether the mutation ran in-process
// or on a remote worker.
type MutEvent struct {
	Type   telemetry.Type
	Entity string
	Value  string
	Config string
	Detail string
}

// A MutationOutcome reports what a Mutate call did: the ordered
// telemetry events plus the counter deltas, and whether the target was
// actually restarted (so the caller knows fresh startup coverage was
// absorbed and the configuration changed).
type MutationOutcome struct {
	Events       []MutEvent
	Mutations    int
	Boots        int
	RestartFails int
	Fallbacks    int
	Restarted    bool
}

// Mutate applies the paper's Values-guided configuration mutation: pick
// a MUTABLE entity (preferring the instance's assigned group), set a
// different typical value, and restart the instance under the new
// configuration. A mutation that produces a conflicting configuration
// (or crashes during startup — a config-parsing defect) is reverted; if
// even the reverted configuration fails to boot, the instance falls back
// to defaults. When a restart happened, the fresh startup coverage has
// already been absorbed into the engine on return.
func (in *Instance) Mutate(sink CrashSink) MutationOutcome {
	var out MutationOutcome
	h := in.host
	candidates := mutableIn(h.Model, in.group.Members)
	if len(candidates) == 0 {
		candidates = h.Model.Mutable()
	}
	if len(candidates) == 0 {
		return out
	}
	e := candidates[in.rng.Intn(len(candidates))]
	if len(e.Values) == 0 {
		return out
	}
	newVal := e.Values[in.rng.Intn(len(e.Values))]
	if in.cfg[e.Name] == newVal {
		return out
	}
	old, had := in.cfg[e.Name]
	in.cfg[e.Name] = newVal

	restarted := func() MutationOutcome {
		out.Boots++
		out.Restarted = true
		if in.engine != nil { // engine-less instances appear only in unit tests
			in.engine.Absorb(in.target.startup)
		}
		return out
	}

	if err := in.target.restart(h.Sub, in.cfg, sink, in.index, in.clock); err != nil {
		in.restartFails++
		out.RestartFails++
		out.Events = append(out.Events, MutEvent{Type: telemetry.EvRestartFail,
			Entity: e.Name, Value: newVal, Detail: err.Error()})
		// Conflicting mutation: revert and restart under the old config.
		if had {
			in.cfg[e.Name] = old
		} else {
			delete(in.cfg, e.Name)
		}
		if err := in.target.restart(h.Sub, in.cfg, sink, in.index, in.clock); err != nil {
			in.restartFails++
			out.RestartFails++
			out.Events = append(out.Events, MutEvent{Type: telemetry.EvRestartFail,
				Config: in.cfg.String(), Detail: "revert failed: " + err.Error()})
			// Both the mutated and the reverted restart failed; without a
			// fallback the instance would keep stepping against a dead
			// target for the rest of the campaign. Boot the defaults,
			// which every subject's conformance suite guarantees start.
			in.cfg = h.Model.Defaults()
			err := in.target.restart(h.Sub, in.cfg, sink, in.index, in.clock)
			if err != nil {
				in.restartFails++
				out.RestartFails++
			}
			out.Events = append(out.Events, MutEvent{Type: telemetry.EvFallback,
				Config: in.cfg.String(), Detail: fallbackDetail(err)})
			out.Fallbacks++
			if err != nil {
				return out
			}
			return restarted()
		}
		return restarted()
	}
	in.muts++
	out.Mutations++
	out.Events = append(out.Events, MutEvent{Type: telemetry.EvMutation,
		Entity: e.Name, Value: newVal, Config: in.cfg.String()})
	return restarted()
}

// Close tears the instance's target down.
func (in *Instance) Close() {
	if in.target != nil && in.target.inst != nil {
		in.target.inst.Close()
	}
}

// EmitMutation renders a MutationOutcome into the telemetry stream
// exactly as the historical inline mutation code did: events in order
// with the instance/clock stamp, then the counter deltas. Zero deltas
// are skipped so an uninstrumented-looking counter map stays identical.
func EmitMutation(tel *telemetry.Recorder, index int, t float64, out MutationOutcome) {
	for _, ev := range out.Events {
		tel.Emit(telemetry.Event{T: t, Type: ev.Type, Instance: index,
			Entity: ev.Entity, Value: ev.Value, Config: ev.Config, Detail: ev.Detail})
	}
	if out.RestartFails > 0 {
		tel.Count(telemetry.CtrRestartFailures, out.RestartFails)
	}
	if out.Fallbacks > 0 {
		tel.Count(telemetry.CtrFallbacks, out.Fallbacks)
	}
	if out.Mutations > 0 {
		tel.Count(telemetry.CtrMutations, out.Mutations)
	}
	if out.Boots > 0 {
		tel.Count(telemetry.CtrBoots, out.Boots)
	}
}
