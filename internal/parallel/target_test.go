package parallel

import (
	"strings"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/netsim"
	"cmfuzz/internal/protocols"
)

func TestBootTargetDatagramRouting(t *testing.T) {
	sub, _ := protocols.ByName("DNS")
	ns := netsim.NewFabric().Namespace("t0")
	cfg := configmodel.Assignment(map[string]string{"server": "8.8.8.8"})
	target, startCov, err := bootTarget(sub, ns, cfg, bugs.NewLedger(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if startCov.Count() == 0 {
		t.Fatal("no startup coverage")
	}
	tr := coverage.NewTrace()
	if crash := target.Run([][]byte{{0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}}, tr); crash != nil {
		t.Fatalf("unexpected crash: %v", crash)
	}
	if tr.Count() == 0 {
		t.Fatal("datagram did not reach the instance through the namespace")
	}
	if ns.Stats().DatagramsDelivered == 0 {
		t.Fatal("fabric did not route the datagram")
	}
}

func TestBootTargetStreamRouting(t *testing.T) {
	sub, _ := protocols.ByName("MQTT")
	ns := netsim.NewFabric().Namespace("t1")
	target, _, err := bootTarget(sub, ns, configmodel.Assignment(nil), bugs.NewLedger(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := coverage.NewTrace()
	target.Run([][]byte{{0xc0, 0x00}}, tr) // PINGREQ
	if ns.Stats().ConnsOpened == 0 || ns.Stats().SegmentsDelivered == 0 {
		t.Fatalf("stream path unused: %+v", ns.Stats())
	}
}

func TestBootTargetCrashPropagation(t *testing.T) {
	sub, _ := protocols.ByName("DNS")
	ns := netsim.NewFabric().Namespace("t2")
	cfg := configmodel.Assignment(map[string]string{"server": "8.8.8.8", "log-queries": "true"})
	target, _, err := bootTarget(sub, ns, cfg, bugs.NewLedger(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Query containing a '%' label triggers bug #13 under log-queries.
	q := buildDNSQuery("p%n.example.com")
	crash := target.Run([][]byte{q}, coverage.NewTrace())
	if crash == nil || crash.Function != "printf_common" {
		t.Fatalf("crash = %v, want bug #13 through the namespace", crash)
	}
}

func TestBootTargetRejectsConflict(t *testing.T) {
	sub, _ := protocols.ByName("DNS")
	ns := netsim.NewFabric().Namespace("t3")
	cfg := configmodel.Assignment(map[string]string{"dnssec": "true"}) // missing trust-anchor
	if _, _, err := bootTarget(sub, ns, cfg, bugs.NewLedger(), 0); err == nil {
		t.Fatal("conflicting configuration booted")
	}
}

func TestRestartSwapsInstance(t *testing.T) {
	sub, _ := protocols.ByName("DNS")
	ns := netsim.NewFabric().Namespace("t4")
	ledger := bugs.NewLedger()
	target, _, err := bootTarget(sub, ns, configmodel.Assignment(map[string]string{"server": "8.8.8.8"}), ledger, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Before restart: no crash on '%' names.
	q := buildDNSQuery("p%n.example.com")
	if crash := target.Run([][]byte{q}, coverage.NewTrace()); crash != nil {
		t.Fatalf("premature crash: %v", crash)
	}
	// Restart with log-queries enabled: same wiring, new behavior.
	if err := target.restart(sub, configmodel.Assignment(map[string]string{"server": "8.8.8.8", "log-queries": "true"}), ledger, 0, 100); err != nil {
		t.Fatal(err)
	}
	if crash := target.Run([][]byte{q}, coverage.NewTrace()); crash == nil {
		t.Fatal("restarted instance does not show new configuration behavior")
	}
}

// buildDNSQuery assembles a minimal A query without importing the dns
// internals.
func buildDNSQuery(name string) []byte {
	q := []byte{0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0}
	for _, label := range strings.Split(name, ".") {
		q = append(q, byte(len(label)))
		q = append(q, label...)
	}
	q = append(q, 0x00, 0x00, 0x01, 0x00, 0x01)
	return q
}
