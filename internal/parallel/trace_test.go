package parallel

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"cmfuzz/internal/protocols"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
)

// chromeEvent mirrors the trace_event JSON fields the tests inspect.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func exportEvents(t *testing.T, tr *trace.Tracer) []chromeEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v\n%s", err, buf.String())
	}
	return doc.TraceEvents
}

// contains reports whether inner lies within outer's [ts, ts+dur]
// interval — the Perfetto nesting relation.
func contains(outer, inner chromeEvent) bool {
	return inner.Ts >= outer.Ts && inner.Ts+inner.Dur <= outer.Ts+outer.Dur
}

// TestNilTraceAndProgressByteIdentical extends the no-op-sink pin to the
// wall-clock layer: a campaign under a span tracer and a live progress
// board must produce byte-identical artifacts to one with both off.
// Wall-clock observation must never steer the virtual-clock campaign.
func TestNilTraceAndProgressByteIdentical(t *testing.T) {
	sub := mustSubject(t, "DNS")
	opts := Options{Mode: ModeCMFuzz, VirtualHours: 1, Seed: 7}

	plain, err := Run(context.Background(), sub, opts)
	if err != nil {
		t.Fatal(err)
	}

	tr := trace.New()
	root := tr.Start("fuzz")
	prog := telemetry.NewProgress()
	opts.Trace = root
	opts.Progress = prog
	instrumented, err := Run(context.Background(), sub, opts)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	if tr.SpanCount() < 4 {
		t.Fatalf("tracer recorded only %d spans", tr.SpanCount())
	}
	snap := prog.Snapshot()
	if len(snap) != 1 || !snap[0].Done || snap[0].Mode != "CMFuzz" {
		t.Fatalf("progress board = %+v", snap)
	}
	if snap[0].Execs != instrumented.TotalExecs {
		t.Fatalf("progress execs %d != result %d", snap[0].Execs, instrumented.TotalExecs)
	}
	if snap[0].Edges != instrumented.FinalBranches {
		t.Fatalf("progress edges %d != result %d", snap[0].Edges, instrumented.FinalBranches)
	}

	a, b := serializeResult(t, plain), serializeResult(t, instrumented)
	if !bytes.Equal(a, b) {
		t.Fatalf("result differs between untraced and traced runs:\n%s\nvs\n%s", a, b)
	}
}

// TestTraceSpanNesting pins the span structure a CMFuzz run exports: a
// relation.quantify span containing probe.plan → probe.execute →
// probe.score in order, a schedule.allocate span, and one instance span
// per parallel instance — all within the root.
func TestTraceSpanNesting(t *testing.T) {
	sub := mustSubject(t, "DNS")
	tr := trace.New()
	root := tr.Start("fuzz")
	if _, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.2, Seed: 3, Instances: 3, Trace: root}); err != nil {
		t.Fatal(err)
	}
	root.End()

	events := exportEvents(t, tr)
	byName := map[string][]chromeEvent{}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("unexpected phase %q in %+v", ev.Ph, ev)
		}
		byName[ev.Name] = append(byName[ev.Name], ev)
	}
	one := func(name string) chromeEvent {
		t.Helper()
		if len(byName[name]) != 1 {
			t.Fatalf("span %q appears %d times, want 1", name, len(byName[name]))
		}
		return byName[name][0]
	}

	rootEv := one("fuzz")
	quant := one("relation.quantify")
	plan := one("probe.plan")
	exec := one("probe.execute")
	pool := one("probe.pool")
	score := one("probe.score")
	alloc := one("schedule.allocate")

	for name, ev := range map[string]chromeEvent{
		"relation.quantify": quant, "schedule.allocate": alloc,
	} {
		if !contains(rootEv, ev) {
			t.Errorf("%s not nested in root: %+v vs %+v", name, ev, rootEv)
		}
	}
	for name, ev := range map[string]chromeEvent{
		"probe.plan": plan, "probe.execute": exec, "probe.score": score,
	} {
		if !contains(quant, ev) {
			t.Errorf("%s not nested in relation.quantify", name)
		}
	}
	if !contains(exec, pool) {
		t.Error("probe.pool not nested in probe.execute")
	}
	if !(plan.Ts+plan.Dur <= exec.Ts && exec.Ts+exec.Dur <= score.Ts) {
		t.Errorf("plan→execute→score out of order: plan=%v exec=%v score=%v", plan, exec, score)
	}
	if quant.Ts+quant.Dur > alloc.Ts {
		t.Error("schedule.allocate started before quantification ended")
	}
	if alloc.Args["algorithm"] != "cohesive" {
		t.Errorf("allocate args = %v", alloc.Args)
	}

	if len(byName["instance"]) != 3 {
		t.Fatalf("instance spans = %d, want 3", len(byName["instance"]))
	}
	if len(byName["instance.boot"]) != 3 {
		t.Fatalf("instance.boot spans = %d, want 3", len(byName["instance.boot"]))
	}
	seen := map[int]bool{}
	for _, in := range byName["instance"] {
		if !contains(rootEv, in) {
			t.Errorf("instance span escapes root: %+v", in)
		}
		idx, ok := in.Args["index"].(float64)
		if !ok {
			t.Fatalf("instance span without index: %v", in.Args)
		}
		seen[int(idx)] = true
		if _, ok := in.Args["edges"]; !ok {
			t.Errorf("instance %v missing final edges attribute", in.Args)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("instance indexes = %v", seen)
	}
	// Sync spans land inside their instance's span.
	for _, sy := range byName["sync"] {
		ok := false
		for _, in := range byName["instance"] {
			if in.Tid == sy.Tid && contains(in, sy) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("sync span on no instance lane: %+v", sy)
		}
	}
	if len(byName["sync"]) == 0 {
		t.Fatal("no sync spans recorded")
	}
}

// BenchmarkTraceOverhead guards the wall-clock layer's cost the way
// BenchmarkTelemetryOverhead guards the recorder's: "off" is the plain
// campaign (every span site pays one nil check), "on" runs the full
// tracer + progress board + a scraping-ready registry. The PR's
// acceptance bound is on/off within 5%; BENCH_monitor.json records the
// measured ratio.
func BenchmarkTraceOverhead(b *testing.B) {
	sub, err := protocols.ByName("DNS")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.5, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := trace.New()
			root := tr.Start("bench")
			prog := telemetry.NewProgress()
			if _, err := Run(context.Background(), sub, Options{Mode: ModeCMFuzz, VirtualHours: 0.5, Seed: 1,
				Trace: root, Progress: prog}); err != nil {
				b.Fatal(err)
			}
			root.End()
		}
	})
}
