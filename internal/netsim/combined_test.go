package netsim

import "testing"

// These tests pin the composition contract of the two impairment
// knobs on ONE namespace: loss and latency each own a private rng
// stream, reconfiguring one never perturbs the other's sequence, a
// dropped datagram is never charged delay, and the whole Stats
// snapshot is a pure function of (configuration, send sequence).

// combinedRun drives one namespace through a fixed mixed workload —
// datagrams and stream segments interleaved, with both knobs
// reconfigured mid-run — and returns the final Stats snapshot.
func combinedRun(t *testing.T) Stats {
	t.Helper()
	ns := NewFabric().Namespace("combined")
	ns.SetLoss(0.5, 42)
	ns.SetLatency(0.010, 0.005, 7)
	if err := ns.BindDatagram(1, echoHandler()); err != nil {
		t.Fatal(err)
	}
	if err := ns.Listen(2, &recordingStream{}); err != nil {
		t.Fatal(err)
	}
	c, err := ns.Dial(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		switch i {
		case 40:
			ns.SetLoss(0.3, 1000) // re-seed loss mid-run
		case 80:
			ns.SetLatency(0.020, 0.010, 2000) // re-seed latency mid-run
		}
		if _, err := ns.SendDatagram(Addr{}, Addr{Port: 1}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := c.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ns.Stats()
}

// TestCombinedStatsDeterministic: the full Stats snapshot — including
// the float latency ledger — is byte-identical across two runs of the
// same workload, reconfigurations and all.
func TestCombinedStatsDeterministic(t *testing.T) {
	s1, s2 := combinedRun(t), combinedRun(t)
	if s1 != s2 {
		t.Fatalf("combined Stats not deterministic:\n%+v\n%+v", s1, s2)
	}
	if s1.DatagramsSent != 120 || s1.SegmentsDelivered != 40 {
		t.Fatalf("workload accounting off: %+v", s1)
	}
	if s1.DatagramsDropped+s1.DatagramsDelivered != s1.DatagramsSent {
		t.Fatalf("sent != dropped + delivered: %+v", s1)
	}
	if s1.DatagramsDropped == 0 || s1.DatagramsDelivered == 0 {
		t.Fatalf("loss=0.5/0.3 dropped %d of %d — want a mix", s1.DatagramsDropped, s1.DatagramsSent)
	}
}

// TestDropsNeverAccrueLatency: with jitter disabled the ledger is
// exact arithmetic, so LatencyAccrued must equal deliveries × base —
// any charge on a dropped datagram would show up as a surplus.
func TestDropsNeverAccrueLatency(t *testing.T) {
	ns := NewFabric().Namespace("exact")
	ns.SetLoss(0.5, 42)
	ns.SetLatency(0.25, 0, 7) // binary-exact base, no jitter
	if err := ns.BindDatagram(1, echoHandler()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := ns.SendDatagram(Addr{}, Addr{Port: 1}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := ns.Stats()
	if want := float64(st.DatagramsDelivered) * 0.25; st.LatencyAccrued != want {
		t.Fatalf("accrued %v, want exactly deliveries(%d) × 0.25 = %v",
			st.LatencyAccrued, st.DatagramsDelivered, want)
	}
}

// TestLatencyReconfigKeepsLossStream: re-seeding SetLatency mid-run
// must not shift which datagrams the loss knob drops — the drop
// pattern is a pure function of the loss stream alone.
func TestLatencyReconfigKeepsLossStream(t *testing.T) {
	pattern := func(reconfig bool) []bool {
		ns := NewFabric().Namespace("loss-side")
		ns.SetLoss(0.5, 42)
		ns.SetLatency(0.001, 0.001, 99)
		if err := ns.BindDatagram(1, echoHandler()); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			if reconfig && i%25 == 0 {
				ns.SetLatency(0.002, 0.003, int64(1000+i))
			}
			resp, err := ns.SendDatagram(Addr{}, Addr{Port: 1}, []byte{byte(i)})
			if err != nil {
				t.Fatal(err)
			}
			out[i] = resp != nil
		}
		return out
	}
	plain, perturbed := pattern(false), pattern(true)
	for i := range plain {
		if plain[i] != perturbed[i] {
			t.Fatalf("drop pattern diverged at datagram %d under latency reconfiguration", i)
		}
	}
}

// TestLossReconfigKeepsLatencyStream: with every datagram dropped
// (charged nothing, drawing nothing from the latency rng), stream
// segments are the only latency consumers — so the accrued ledger
// must match a run with no loss knob at all, however often the loss
// stream is re-seeded in between.
func TestLossReconfigKeepsLatencyStream(t *testing.T) {
	run := func(withLoss bool) float64 {
		ns := NewFabric().Namespace("lat-side")
		ns.SetLatency(0.010, 0.005, 7)
		if withLoss {
			ns.SetLoss(1.0, 42)
		}
		if err := ns.BindDatagram(1, echoHandler()); err != nil {
			t.Fatal(err)
		}
		if err := ns.Listen(2, &recordingStream{}); err != nil {
			t.Fatal(err)
		}
		c, err := ns.Dial(2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if withLoss {
				if i%20 == 0 {
					ns.SetLoss(1.0, int64(i)) // re-seed, still dropping everything
				}
				ns.SendDatagram(Addr{}, Addr{Port: 1}, []byte{byte(i)})
			}
			if _, err := c.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return ns.Stats().LatencyAccrued
	}
	if plain, lossy := run(false), run(true); plain != lossy {
		t.Fatalf("latency ledger diverged under loss reconfiguration: %v vs %v", plain, lossy)
	}
}
