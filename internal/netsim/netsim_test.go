package netsim

import (
	"bytes"
	"errors"
	"testing"
)

func echoHandler() DatagramHandler {
	return DatagramHandlerFunc(func(src Addr, payload []byte) [][]byte {
		out := append([]byte("echo:"), payload...)
		return [][]byte{out}
	})
}

func TestDatagramRoundTrip(t *testing.T) {
	f := NewFabric()
	ns := f.Namespace("inst0")
	if err := ns.BindDatagram(5683, echoHandler()); err != nil {
		t.Fatal(err)
	}
	resp, err := ns.SendDatagram(Addr{Host: "c", Port: 9999}, Addr{Host: "inst0", Port: 5683}, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 1 || !bytes.Equal(resp[0], []byte("echo:hi")) {
		t.Fatalf("resp = %q", resp)
	}
	st := ns.Stats()
	if st.DatagramsSent != 1 || st.DatagramsDelivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDatagramPortConflictAndUnbind(t *testing.T) {
	ns := NewFabric().Namespace("a")
	if err := ns.BindDatagram(53, echoHandler()); err != nil {
		t.Fatal(err)
	}
	if err := ns.BindDatagram(53, echoHandler()); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("rebind err = %v, want ErrPortInUse", err)
	}
	ns.UnbindDatagram(53)
	if err := ns.BindDatagram(53, echoHandler()); err != nil {
		t.Fatalf("bind after unbind: %v", err)
	}
}

func TestDatagramUnroutable(t *testing.T) {
	ns := NewFabric().Namespace("a")
	_, err := ns.SendDatagram(Addr{}, Addr{Port: 1}, nil)
	if !errors.Is(err, ErrUnroutable) {
		t.Fatalf("err = %v, want ErrUnroutable", err)
	}
}

func TestNamespaceIsolation(t *testing.T) {
	f := NewFabric()
	a := f.Namespace("inst0")
	b := f.Namespace("inst1")
	if err := b.BindDatagram(5683, echoHandler()); err != nil {
		t.Fatal(err)
	}
	// inst0 cannot reach inst1's endpoint, even though the fabric knows it.
	if err := a.SendAcross("inst1", Addr{Host: "inst1", Port: 5683}, []byte("x")); !errors.Is(err, ErrIsolated) {
		t.Fatalf("cross-namespace err = %v, want ErrIsolated", err)
	}
	// Same-name SendAcross routes locally.
	if err := b.SendAcross("inst1", Addr{Host: "inst1", Port: 5683}, []byte("x")); err != nil {
		t.Fatalf("local SendAcross err = %v", err)
	}
}

func TestNamespaceIdentity(t *testing.T) {
	f := NewFabric()
	if f.Namespace("x") != f.Namespace("x") {
		t.Fatal("same name returned different namespaces")
	}
	if f.Namespace("x") == f.Namespace("y") {
		t.Fatal("different names returned same namespace")
	}
	if len(f.Names()) != 2 {
		t.Fatalf("Names = %v", f.Names())
	}
}

func TestDatagramLossDeterministic(t *testing.T) {
	run := func() (delivered int) {
		ns := NewFabric().Namespace("lossy")
		ns.SetLoss(0.5, 42)
		if err := ns.BindDatagram(1, echoHandler()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			resp, err := ns.SendDatagram(Addr{}, Addr{Port: 1}, []byte{byte(i)})
			if err != nil {
				t.Fatal(err)
			}
			if resp != nil {
				delivered++
			}
		}
		return delivered
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Fatalf("loss not deterministic: %d vs %d", d1, d2)
	}
	if d1 == 0 || d1 == 200 {
		t.Fatalf("loss=0.5 delivered %d/200", d1)
	}
}

type recordingStream struct {
	connects int
	closes   int
	data     [][]byte
}

func (r *recordingStream) OnConnect(c *Conn) {
	r.connects++
	c.SetState("session")
}
func (r *recordingStream) OnData(c *Conn, data []byte) [][]byte {
	r.data = append(r.data, data)
	return [][]byte{[]byte("ack")}
}
func (r *recordingStream) OnClose(c *Conn) { r.closes++ }

func TestStreamLifecycle(t *testing.T) {
	ns := NewFabric().Namespace("a")
	h := &recordingStream{}
	if err := ns.Listen(1883, h); err != nil {
		t.Fatal(err)
	}
	if err := ns.Listen(1883, h); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("double listen err = %v", err)
	}
	c, err := ns.Dial(1883)
	if err != nil {
		t.Fatal(err)
	}
	if h.connects != 1 {
		t.Fatalf("connects = %d", h.connects)
	}
	if c.State() != "session" {
		t.Fatalf("state = %v", c.State())
	}
	resp, err := c.Send([]byte("CONNECT"))
	if err != nil || len(resp) != 1 || string(resp[0]) != "ack" {
		t.Fatalf("send = %q, %v", resp, err)
	}
	c.Close()
	c.Close() // idempotent
	if h.closes != 1 {
		t.Fatalf("closes = %d", h.closes)
	}
	if !c.Closed() {
		t.Fatal("conn not marked closed")
	}
	if _, err := c.Send(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close err = %v", err)
	}
}

func TestStreamDialUnroutable(t *testing.T) {
	ns := NewFabric().Namespace("a")
	if _, err := ns.Dial(1); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("err = %v", err)
	}
}

func TestConnIDsUnique(t *testing.T) {
	ns := NewFabric().Namespace("a")
	h := &recordingStream{}
	if err := ns.Listen(1, h); err != nil {
		t.Fatal(err)
	}
	c1, _ := ns.Dial(1)
	c2, _ := ns.Dial(1)
	if c1.ID() == c2.ID() {
		t.Fatal("conn ids collide")
	}
	if c1.RemoteAddr().Port != 1 {
		t.Fatalf("remote = %v", c1.RemoteAddr())
	}
}

func TestAddrString(t *testing.T) {
	if got := (Addr{Host: "h", Port: 53}).String(); got != "h:53" {
		t.Fatalf("String = %q", got)
	}
}

// TestSetLossContract pins the documented loss semantics: total loss
// drops every datagram before routing (nil responses, nil error, no
// handler invocation, even toward unbound ports) while stream segments
// keep flowing untouched.
func TestSetLossContract(t *testing.T) {
	ns := NewFabric().Namespace("lossy")
	ns.SetLoss(1.0, 1)
	handled := 0
	if err := ns.BindDatagram(53, DatagramHandlerFunc(func(src Addr, p []byte) [][]byte {
		handled++
		return [][]byte{p}
	})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		resp, err := ns.SendDatagram(Addr{}, Addr{Port: 53}, []byte{byte(i)})
		if resp != nil || err != nil {
			t.Fatalf("send %d under total loss = %q, %v; want nil, nil", i, resp, err)
		}
	}
	// Drop is decided before routing: an unbound port looks the same as
	// a bound one under total loss (the packet never arrives to find out).
	if resp, err := ns.SendDatagram(Addr{}, Addr{Port: 9}, nil); resp != nil || err != nil {
		t.Fatalf("unbound send under total loss = %q, %v; want nil, nil", resp, err)
	}
	if handled != 0 {
		t.Fatalf("handler invoked %d times under total loss", handled)
	}
	st := ns.Stats()
	if st.DatagramsSent != 51 || st.DatagramsDropped != 51 || st.DatagramsDelivered != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Streams are exempt: loss=1 must not drop a single segment.
	h := &recordingStream{}
	if err := ns.Listen(1883, h); err != nil {
		t.Fatal(err)
	}
	c, err := ns.Dial(1883)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		resp, err := c.Send([]byte{byte(i)})
		if err != nil || len(resp) != 1 {
			t.Fatalf("segment %d lost under datagram loss: %q, %v", i, resp, err)
		}
	}
	if len(h.data) != 20 || ns.Stats().SegmentsDelivered != 20 {
		t.Fatalf("stream saw %d/20 segments (stats %+v)", len(h.data), ns.Stats())
	}
}

// TestLatencyDeterministic pins the latency knob: the accrued virtual
// delay is a pure function of (base, jitter, seed) and the delivery
// sequence, identical across runs with the same seed and different
// across seeds.
func TestLatencyDeterministic(t *testing.T) {
	run := func(seed int64) float64 {
		ns := NewFabric().Namespace("slow")
		ns.SetLatency(0.010, 0.005, seed)
		if err := ns.BindDatagram(1, echoHandler()); err != nil {
			t.Fatal(err)
		}
		if err := ns.Listen(2, &recordingStream{}); err != nil {
			t.Fatal(err)
		}
		c, err := ns.Dial(2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if _, err := ns.SendDatagram(Addr{}, Addr{Port: 1}, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return ns.Stats().LatencyAccrued
	}
	a1, a2 := run(7), run(7)
	if a1 != a2 {
		t.Fatalf("latency not deterministic under fixed seed: %v vs %v", a1, a2)
	}
	// 200 deliveries at 10ms base + [0,5)ms jitter.
	if lo, hi := 2.0, 3.0; a1 < lo || a1 > hi {
		t.Fatalf("accrued latency %v outside [%v, %v]", a1, lo, hi)
	}
	if b := run(8); b == a1 {
		t.Fatalf("different seeds accrued identical jitter: %v", b)
	}
}

// TestLatencyBaseOnly checks the jitter-free path is exact arithmetic
// and that dropped datagrams are charged nothing.
func TestLatencyBaseOnly(t *testing.T) {
	ns := NewFabric().Namespace("fixed")
	ns.SetLatency(0.25, 0, 1) // binary-exact so accumulation is exact arithmetic
	ns.SetLoss(1.0, 1)
	if err := ns.BindDatagram(1, echoHandler()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ns.SendDatagram(Addr{}, Addr{Port: 1}, nil) // all dropped
	}
	if acc := ns.Stats().LatencyAccrued; acc != 0 {
		t.Fatalf("dropped datagrams accrued latency %v", acc)
	}
	ns.SetLoss(0, 1)
	for i := 0; i < 10; i++ {
		if _, err := ns.SendDatagram(Addr{}, Addr{Port: 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if acc, want := ns.Stats().LatencyAccrued, 2.5; acc != want {
		t.Fatalf("accrued = %v, want exactly %v", acc, want)
	}
}

// TestLossLatencyIndependent checks the two knobs draw from separate
// rng streams: enabling latency must not change which datagrams the
// loss knob drops.
func TestLossLatencyIndependent(t *testing.T) {
	pattern := func(withLatency bool) []bool {
		ns := NewFabric().Namespace("both")
		ns.SetLoss(0.5, 42)
		if withLatency {
			ns.SetLatency(0.001, 0.001, 99)
		}
		if err := ns.BindDatagram(1, echoHandler()); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			resp, err := ns.SendDatagram(Addr{}, Addr{Port: 1}, []byte{byte(i)})
			if err != nil {
				t.Fatal(err)
			}
			out[i] = resp != nil
		}
		return out
	}
	plain, withLat := pattern(false), pattern(true)
	for i := range plain {
		if plain[i] != withLat[i] {
			t.Fatalf("drop pattern diverged at datagram %d once latency was enabled", i)
		}
	}
}

func TestCloseListenerUnroutes(t *testing.T) {
	ns := NewFabric().Namespace("a")
	if err := ns.Listen(2, &recordingStream{}); err != nil {
		t.Fatal(err)
	}
	ns.CloseListener(2)
	if _, err := ns.Dial(2); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("dial after close err = %v", err)
	}
}
