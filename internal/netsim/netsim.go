// Package netsim is an in-memory network fabric standing in for the Linux
// network namespaces (`ip netns`) the paper uses to isolate parallel
// fuzzing instances. Each instance gets its own Namespace; endpoints bound
// in one namespace are unroutable from any other, which gives the same
// cross-contamination guarantee without kernel facilities.
//
// The fabric is synchronous and deterministic: sending a datagram (or
// stream segment) invokes the bound handler inline and returns its
// responses, so campaigns driven by a virtual clock replay identically
// for a given seed.
//
// Impairment knobs follow the same discipline. SetLoss drops datagrams
// with a seeded probability and never touches streams (TCP's stand-in
// stays reliable); SetLatency charges a seeded per-delivery delay to a
// virtual ledger instead of sleeping. Both draw from their own rng
// streams, so enabling one never perturbs the other's sequence.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Errors reported by the fabric.
var (
	ErrPortInUse  = errors.New("netsim: port already bound")
	ErrUnroutable = errors.New("netsim: no endpoint at destination")
	ErrIsolated   = errors.New("netsim: destination is in another namespace")
	ErrClosed     = errors.New("netsim: connection closed")
)

// An Addr locates an endpoint inside a namespace.
type Addr struct {
	Host string
	Port uint16
}

// String renders the address as host:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// A DatagramHandler consumes one inbound datagram and returns zero or more
// response payloads (delivered to the sender synchronously).
type DatagramHandler interface {
	OnDatagram(src Addr, payload []byte) [][]byte
}

// DatagramHandlerFunc adapts a function to the DatagramHandler interface.
type DatagramHandlerFunc func(src Addr, payload []byte) [][]byte

// OnDatagram calls f.
func (f DatagramHandlerFunc) OnDatagram(src Addr, payload []byte) [][]byte {
	return f(src, payload)
}

// A StreamHandler serves stream connections (the TCP stand-in used by the
// MQTT and AMQP subjects).
type StreamHandler interface {
	// OnConnect is invoked when a client dials the listener.
	OnConnect(c *Conn)
	// OnData consumes one segment and returns response segments.
	OnData(c *Conn, data []byte) [][]byte
	// OnClose is invoked when the connection closes.
	OnClose(c *Conn)
}

// Stats counts fabric activity inside one namespace.
type Stats struct {
	DatagramsSent      int
	DatagramsDropped   int
	DatagramsDelivered int
	SegmentsDelivered  int
	ConnsOpened        int

	// LatencyAccrued is the total simulated delivery delay, in virtual
	// seconds, charged by SetLatency across every delivered datagram and
	// stream segment. The fabric never sleeps; campaigns fold this into
	// their virtual clocks.
	LatencyAccrued float64
}

// A Fabric owns a set of isolated namespaces.
type Fabric struct {
	mu         sync.Mutex
	namespaces map[string]*Namespace
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{namespaces: make(map[string]*Namespace)}
}

// Namespace returns the namespace with the given name, creating it on
// first use.
func (f *Fabric) Namespace(name string) *Namespace {
	f.mu.Lock()
	defer f.mu.Unlock()
	ns, ok := f.namespaces[name]
	if !ok {
		ns = &Namespace{
			name:      name,
			fabric:    f,
			datagrams: make(map[uint16]DatagramHandler),
			listeners: make(map[uint16]StreamHandler),
		}
		f.namespaces[name] = ns
	}
	return ns
}

// Names returns the names of all namespaces created so far.
func (f *Fabric) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.namespaces))
	for n := range f.namespaces {
		out = append(out, n)
	}
	return out
}

// A Namespace is one isolated network environment. All methods are safe
// for use by the single fuzzing instance that owns the namespace; the
// namespace never routes traffic to or from any other namespace.
type Namespace struct {
	name   string
	fabric *Fabric

	mu        sync.Mutex
	datagrams map[uint16]DatagramHandler
	listeners map[uint16]StreamHandler
	nextConn  int
	loss      float64
	rng       *rand.Rand
	latBase   float64
	latJitter float64
	latRng    *rand.Rand
	stats     Stats
}

// Name returns the namespace name.
func (ns *Namespace) Name() string { return ns.name }

// SetLoss configures a deterministic datagram loss probability in [0,1],
// driven by the given seed. The contract:
//
//   - Loss applies to datagrams only. Stream segments are reliable, as
//     TCP would be: no loss probability ever drops a Conn.Send, so
//     stream subjects (MQTT, AMQP) see every byte in order.
//   - A drop is decided before routing, the way a lost packet never
//     reaches the destination host: a dropped datagram returns
//     (nil, nil) even when no endpoint is bound at dst, and the bound
//     handler (if any) is not invoked.
//   - Drops count in Stats.DatagramsDropped (and DatagramsSent, never
//     DatagramsDelivered).
//   - The drop sequence is a pure function of (p, seed) and the send
//     sequence; it shares no state with the SetLatency rng, so the two
//     knobs compose without perturbing each other.
//
// Calling SetLoss again resets the sequence from the new seed.
func (ns *Namespace) SetLoss(p float64, seed int64) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.loss = p
	ns.rng = rand.New(rand.NewSource(seed))
}

// SetLatency configures a simulated one-way delivery delay, in virtual
// seconds: every delivered datagram and stream segment is charged base
// plus a uniform draw in [0, jitter) from a rng stream seeded by seed
// (independent of the SetLoss stream). The fabric stays synchronous —
// nothing sleeps; the accumulated delay is reported in
// Stats.LatencyAccrued for virtual-clock campaigns to spend. Dropped
// datagrams are charged nothing. Calling SetLatency again resets the
// jitter sequence from the new seed.
func (ns *Namespace) SetLatency(base, jitter float64, seed int64) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.latBase = base
	ns.latJitter = jitter
	ns.latRng = rand.New(rand.NewSource(seed))
}

// chargeLatencyLocked accrues one delivery's simulated delay. Callers
// hold ns.mu.
func (ns *Namespace) chargeLatencyLocked() {
	if ns.latBase == 0 && ns.latJitter == 0 {
		return
	}
	d := ns.latBase
	if ns.latJitter > 0 && ns.latRng != nil {
		d += ns.latRng.Float64() * ns.latJitter
	}
	ns.stats.LatencyAccrued += d
}

// Stats returns a snapshot of the namespace's traffic counters.
func (ns *Namespace) Stats() Stats {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.stats
}

// BindDatagram binds a datagram handler to port.
func (ns *Namespace) BindDatagram(port uint16, h DatagramHandler) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.datagrams[port]; ok {
		return ErrPortInUse
	}
	ns.datagrams[port] = h
	return nil
}

// UnbindDatagram releases a datagram port.
func (ns *Namespace) UnbindDatagram(port uint16) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	delete(ns.datagrams, port)
}

// SendDatagram delivers payload to the endpoint bound at dst within this
// namespace and returns the handler's responses. Configured loss may drop
// the datagram (nil responses, nil error), mirroring UDP semantics.
func (ns *Namespace) SendDatagram(src Addr, dst Addr, payload []byte) ([][]byte, error) {
	ns.mu.Lock()
	ns.stats.DatagramsSent++
	if ns.loss > 0 && ns.rng != nil && ns.rng.Float64() < ns.loss {
		ns.stats.DatagramsDropped++
		ns.mu.Unlock()
		return nil, nil
	}
	h, ok := ns.datagrams[dst.Port]
	if !ok {
		ns.mu.Unlock()
		return nil, ErrUnroutable
	}
	ns.stats.DatagramsDelivered++
	ns.chargeLatencyLocked()
	ns.mu.Unlock()
	return h.OnDatagram(src, payload), nil
}

// SendAcross attempts delivery into another namespace and always fails
// with ErrIsolated. It exists so isolation is an enforced, testable
// property rather than an accident of the API.
func (ns *Namespace) SendAcross(otherNamespace string, dst Addr, payload []byte) error {
	if otherNamespace == ns.name {
		_, err := ns.SendDatagram(Addr{Host: "local"}, dst, payload)
		return err
	}
	return ErrIsolated
}

// Listen binds a stream handler to port.
func (ns *Namespace) Listen(port uint16, h StreamHandler) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.listeners[port]; ok {
		return ErrPortInUse
	}
	ns.listeners[port] = h
	return nil
}

// CloseListener releases a stream port.
func (ns *Namespace) CloseListener(port uint16) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	delete(ns.listeners, port)
}

// Dial opens a stream connection to the listener at port.
func (ns *Namespace) Dial(port uint16) (*Conn, error) {
	ns.mu.Lock()
	h, ok := ns.listeners[port]
	if !ok {
		ns.mu.Unlock()
		return nil, ErrUnroutable
	}
	ns.nextConn++
	id := ns.nextConn
	ns.stats.ConnsOpened++
	ns.mu.Unlock()

	c := &Conn{
		ns:      ns,
		handler: h,
		id:      id,
		local:   Addr{Host: "client", Port: uint16(40000 + id%20000)},
		remote:  Addr{Host: ns.name, Port: port},
	}
	h.OnConnect(c)
	return c, nil
}

// A Conn is a synchronous stream connection: each Send delivers one
// segment to the server handler and returns the server's response
// segments.
type Conn struct {
	ns      *Namespace
	handler StreamHandler
	id      int
	local   Addr
	remote  Addr
	closed  bool
	state   any
}

// ID returns the fabric-unique connection id.
func (c *Conn) ID() int { return c.id }

// LocalAddr returns the client-side address.
func (c *Conn) LocalAddr() Addr { return c.local }

// RemoteAddr returns the server-side address.
func (c *Conn) RemoteAddr() Addr { return c.remote }

// SetState attaches server-side per-connection state.
func (c *Conn) SetState(s any) { c.state = s }

// State returns the state attached with SetState.
func (c *Conn) State() any { return c.state }

// Send delivers one segment and returns the server's responses.
func (c *Conn) Send(data []byte) ([][]byte, error) {
	if c.closed {
		return nil, ErrClosed
	}
	c.ns.mu.Lock()
	c.ns.stats.SegmentsDelivered++
	c.ns.chargeLatencyLocked()
	c.ns.mu.Unlock()
	return c.handler.OnData(c, data), nil
}

// Close tears the connection down, notifying the server. Closing twice
// is a no-op.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.handler.OnClose(c)
}

// Closed reports whether the connection has been closed.
func (c *Conn) Closed() bool { return c.closed }
