package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestTimelineEdgeCases pins the renderer's behavior on degenerate
// streams: it must never panic and never invent phantom instance rows.
func TestTimelineEdgeCases(t *testing.T) {
	t.Run("nil recorder", func(t *testing.T) {
		var r *Recorder
		if out := r.Timeline(40); out != "" {
			t.Fatalf("nil recorder rendered %q", out)
		}
	})

	t.Run("zero events", func(t *testing.T) {
		out := New().Timeline(40)
		if !strings.Contains(out, "0 events") {
			t.Fatalf("empty timeline header wrong:\n%s", out)
		}
		if strings.Contains(out, "inst ") {
			t.Fatalf("empty recorder rendered instance rows:\n%s", out)
		}
	})

	t.Run("only campaign-level events", func(t *testing.T) {
		r := New()
		r.Emit(Event{T: 100, Type: EvCampaign, Instance: -1, Detail: "marker"})
		r.Emit(Event{T: 200, Type: EvProbeStats, Instance: -1, Requests: 5})
		out := r.Timeline(40)
		if strings.Contains(out, "inst ") {
			t.Fatalf("Instance==-1 events produced instance rows:\n%s", out)
		}
		if !strings.Contains(out, "2 events") {
			t.Fatalf("campaign-level events not counted in header:\n%s", out)
		}
	})

	t.Run("all events at t zero", func(t *testing.T) {
		// Horizon 0 must not divide by zero when placing glyph columns.
		r := New()
		r.Emit(Event{T: 0, Type: EvBoot, Instance: 0})
		r.Emit(Event{T: 0, Type: EvCrash, Instance: 0, Crash: "c"})
		out := r.Timeline(40)
		if !strings.Contains(out, "inst 0") || !strings.Contains(out, "1 crashes") {
			t.Fatalf("zero-horizon timeline wrong:\n%s", out)
		}
	})

	t.Run("sparse instance indexes", func(t *testing.T) {
		// Instances 0 and 5 have events, 1..4 have none: exactly two rows.
		r := New()
		r.Emit(Event{T: 10, Type: EvBoot, Instance: 0})
		r.Emit(Event{T: 20, Type: EvBoot, Instance: 5})
		out := r.Timeline(40)
		if !strings.Contains(out, "inst 0") || !strings.Contains(out, "inst 5") {
			t.Fatalf("missing real instance rows:\n%s", out)
		}
		for _, phantom := range []string{"inst 1", "inst 2", "inst 3", "inst 4"} {
			if strings.Contains(out, phantom+" ") {
				t.Fatalf("phantom row %q rendered:\n%s", phantom, out)
			}
		}
		if got := strings.Count(out, "inst "); got != 2 {
			t.Fatalf("instance rows = %d, want 2:\n%s", got, out)
		}
	})

	t.Run("tiny width clamped", func(t *testing.T) {
		r := New()
		r.Emit(Event{T: 50, Type: EvBoot, Instance: 0})
		if out := r.Timeline(1); !strings.Contains(out, "inst 0") {
			t.Fatalf("width clamp failed:\n%s", out)
		}
	})
}

// TestRecorderConcurrencyStress is the recorder half of the -race stress
// satellite (the metrics registry and progress board halves live in
// their own packages): many goroutines emit events and bump counters on
// ONE recorder while others concurrently read Events, Counters and the
// rendered timeline.
func TestRecorderConcurrencyStress(t *testing.T) {
	r := New()
	const writers, perWriter = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Emit(Event{T: float64(i), Type: EvSync, Instance: w, Seeds: i})
				r.Count(CtrSyncs, 1)
				if i%100 == 0 {
					_ = r.Events()
					_ = r.Counters()
					_ = r.Timeline(40)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counters()[CtrSyncs]; got != writers*perWriter {
		t.Fatalf("lost counter increments: %d != %d", got, writers*perWriter)
	}
	if got := len(r.Events()); got != writers*perWriter {
		t.Fatalf("lost events: %d != %d", got, writers*perWriter)
	}
}
