package telemetry

import "sync"

// Progress is the live side of the observability layer: a
// concurrency-safe mutable snapshot of every campaign currently running
// in the process, updated by the parallel runner on each engine step
// and read by the campaign monitor's /status endpoint and metrics
// collectors. Unlike the Recorder (append-only virtual-clock history),
// Progress holds only the current state, so polling it is O(instances)
// no matter how long the campaign has run.
//
// It follows the package's nil-safety contract: the nil *Progress is
// the default no-op sink, every method on it returns immediately, and
// campaign decisions never read from it — live state observation cannot
// perturb a deterministic run.
type Progress struct {
	mu    sync.Mutex
	runs  map[string]*RunStatus
	order []string
}

// RunStatus is the live state of one campaign run (one fuzzer ×
// repetition, or the single run of `cmfuzz fuzz`).
type RunStatus struct {
	// Run is the campaign label ("" for a single unlabeled run,
	// "CMFuzz/rep0"-style inside a repetition matrix).
	Run string `json:"run"`
	// Mode is the fuzzer name (CMFuzz, Peach, SPFuzz).
	Mode string `json:"mode"`
	// Subject is the implementation under fuzz.
	Subject string `json:"subject"`
	// VirtualSeconds is the campaign's current virtual time; Horizon is
	// where it will stop.
	VirtualSeconds float64 `json:"virtual_seconds"`
	HorizonSeconds float64 `json:"horizon_seconds"`
	// Edges is the union branch coverage across instances.
	Edges int `json:"edges"`
	// Execs sums protocol executions across instances.
	Execs int `json:"execs"`
	// Crashes counts crash observations (pre-dedup).
	Crashes int `json:"crashes"`
	// Done flips when the campaign finishes.
	Done bool `json:"done"`
	// Instances holds per-instance live state, indexed by instance.
	Instances []InstanceStatus `json:"instances"`
}

// InstanceStatus is the live state of one parallel fuzzing instance.
type InstanceStatus struct {
	Index int `json:"index"`
	// VirtualSeconds is the instance's own clock.
	VirtualSeconds float64 `json:"virtual_seconds"`
	// Edges is the instance's branch coverage.
	Edges int `json:"edges"`
	// Execs counts the instance's protocol executions.
	Execs int `json:"execs"`
	// Crashes counts the instance's crash observations.
	Crashes int `json:"crashes"`
	// Mutations counts applied configuration mutations.
	Mutations int `json:"mutations"`
	// CorpusSeeds is the seed-queue depth.
	CorpusSeeds int `json:"corpus_seeds"`
	// Config is the canonical rendering of the running configuration.
	Config string `json:"config,omitempty"`
}

// NewProgress returns an empty enabled progress board.
func NewProgress() *Progress {
	return &Progress{runs: make(map[string]*RunStatus)}
}

// Enabled reports whether updates are actually retained.
func (p *Progress) Enabled() bool { return p != nil }

// run returns (creating if needed) the named run. p.mu must be held.
func (p *Progress) run(name string) *RunStatus {
	r, ok := p.runs[name]
	if !ok {
		r = &RunStatus{Run: name}
		p.runs[name] = r
		p.order = append(p.order, name)
	}
	return r
}

// StartRun registers a campaign: its fuzzer, subject, horizon and
// instance count (instances start zeroed). Restarting a known run label
// resets it, so repeated seeds under one label stay coherent.
func (p *Progress) StartRun(name, mode, subject string, horizon float64, instances int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	r := p.run(name)
	r.Mode = mode
	r.Subject = subject
	r.HorizonSeconds = horizon
	r.VirtualSeconds = 0
	r.Edges, r.Execs, r.Crashes = 0, 0, 0
	r.Done = false
	r.Instances = make([]InstanceStatus, instances)
	for i := range r.Instances {
		r.Instances[i].Index = i
	}
	p.mu.Unlock()
}

// StepInstance publishes one instance's per-step state: its clock,
// coverage, execution and crash counts, and seed-queue depth. Unknown
// runs or out-of-range indexes are ignored (a monitor must never panic
// a campaign).
func (p *Progress) StepInstance(run string, index int, clock float64, edges, execs, crashes, mutations, corpus int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if r, ok := p.runs[run]; ok && index >= 0 && index < len(r.Instances) {
		in := &r.Instances[index]
		in.VirtualSeconds = clock
		in.Edges = edges
		in.Execs = execs
		in.Crashes = crashes
		in.Mutations = mutations
		in.CorpusSeeds = corpus
		if clock > r.VirtualSeconds {
			r.VirtualSeconds = clock
		}
		execsSum, crashSum := 0, 0
		for i := range r.Instances {
			execsSum += r.Instances[i].Execs
			crashSum += r.Instances[i].Crashes
		}
		r.Execs = execsSum
		r.Crashes = crashSum
	}
	p.mu.Unlock()
}

// SetInstanceConfig publishes an instance's running configuration
// (boot, mutation, revert, fallback).
func (p *Progress) SetInstanceConfig(run string, index int, config string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if r, ok := p.runs[run]; ok && index >= 0 && index < len(r.Instances) {
		r.Instances[index].Config = config
	}
	p.mu.Unlock()
}

// SetUnion publishes the campaign's union coverage at virtual time t.
func (p *Progress) SetUnion(run string, t float64, edges int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if r, ok := p.runs[run]; ok {
		if t > r.VirtualSeconds {
			r.VirtualSeconds = t
		}
		r.Edges = edges
	}
	p.mu.Unlock()
}

// EndRun marks a campaign finished.
func (p *Progress) EndRun(run string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if r, ok := p.runs[run]; ok {
		r.Done = true
		r.VirtualSeconds = r.HorizonSeconds
	}
	p.mu.Unlock()
}

// Snapshot returns a deep copy of every run in registration order,
// ready for JSON encoding. Nil receivers return nil.
func (p *Progress) Snapshot() []RunStatus {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]RunStatus, 0, len(p.order))
	for _, name := range p.order {
		r := *p.runs[name]
		r.Instances = append([]InstanceStatus(nil), p.runs[name].Instances...)
		out = append(out, r)
	}
	return out
}

// Running counts runs that have started and not finished.
func (p *Progress) Running() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, r := range p.runs {
		if !r.Done {
			n++
		}
	}
	return n
}
