package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(5)
	g := r.Gauge("x", "help")
	g.Set(3)
	g.Add(-1)
	h := r.Histogram("x_seconds", "help", nil)
	h.Observe(0.1)
	r.CounterFunc("y_total", "", func() float64 { return 1 })
	r.GaugeFunc("y", "", func() float64 { return 1 })
	r.Collect(func(set func(string, string, float64, ...Label)) { set("z", "", 1) })
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", buf.String(), err)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cmfuzz_execs_total", "Total protocol executions.")
	c.Add(42)
	r.Counter("cmfuzz_execs_total", "Total protocol executions.", L("instance", "0")).Add(7)
	g := r.Gauge("cmfuzz_instances_running", "Parallel instances currently fuzzing.")
	g.Set(4)
	h := r.Histogram("cmfuzz_probe_seconds", "Startup probe latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	r.GaugeFunc("cmfuzz_cache_hit_ratio", "Probe cache hit ratio.", func() float64 { return 0.75 })

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP cmfuzz_execs_total Total protocol executions.",
		"# TYPE cmfuzz_execs_total counter",
		"cmfuzz_execs_total 42",
		`cmfuzz_execs_total{instance="0"} 7`,
		"# TYPE cmfuzz_instances_running gauge",
		"cmfuzz_instances_running 4",
		"# TYPE cmfuzz_probe_seconds histogram",
		`cmfuzz_probe_seconds_bucket{le="0.01"} 1`,
		`cmfuzz_probe_seconds_bucket{le="0.1"} 2`,
		`cmfuzz_probe_seconds_bucket{le="1"} 2`,
		`cmfuzz_probe_seconds_bucket{le="+Inf"} 3`,
		"cmfuzz_probe_seconds_sum 5.055",
		"cmfuzz_probe_seconds_count 3",
		"cmfuzz_cache_hit_ratio 0.75",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition fails lint: %v\n%s", err, out)
	}
}

func TestCollectorSamples(t *testing.T) {
	r := NewRegistry()
	edges := map[string]int{"0": 120, "1": 95}
	r.Collect(func(set func(string, string, float64, ...Label)) {
		for inst, e := range edges {
			set("cmfuzz_instance_edges", "Edges per instance.", float64(e), L("instance", inst))
		}
	})
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cmfuzz_instance_edges gauge",
		`cmfuzz_instance_edges{instance="0"} 120`,
		`cmfuzz_instance_edges{instance="1"} 95`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("collector exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "quoted \\ and\nnewline", L("cfg", `a="b"\c`)).Set(1)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP g quoted \\ and\nnewline`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `g{cfg="a=\"b\"\\c"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
	if _, err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("lint rejects escaped output: %v\n%s", err, out)
	}
}

func TestSameSeriesSharedAndTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "")
	b := r.Counter("shared_total", "")
	a.Inc()
	b.Inc()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "shared_total 2\n") {
		t.Fatalf("re-registered counter did not share state:\n%s", buf.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering shared_total as a gauge did not panic")
		}
	}()
	r.Gauge("shared_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("0bad-name", "")
}

func TestLintRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"no samples":      "# TYPE a counter\n",
		"bad value":       "a xyz\n",
		"bad name":        "9a 1\n",
		"unclosed labels": `a{b="c 1` + "\n",
		"type after use":  "a 1\n# TYPE a counter\na 2\n",
		"unknown type":    "# TYPE a widget\na 1\n",
		"unquoted label":  "a{b=c} 1\n",
		"missing value":   "a{b=\"c\"}\n",
		"duplicate TYPE":  "# TYPE a counter\n# TYPE a counter\na 1\n",
	}
	for name, in := range cases {
		if _, err := Lint(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted %q", name, in)
		}
	}
}

func TestLintAcceptsRealWorldShape(t *testing.T) {
	in := `# HELP up Scrape success.
# TYPE up gauge
up 1
# TYPE rpc_seconds histogram
rpc_seconds_bucket{le="0.1"} 3
rpc_seconds_bucket{le="+Inf"} 4
rpc_seconds_sum 0.8
rpc_seconds_count 4
plain_untyped_metric 3.14 1712345678
`
	stats, err := Lint(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Families != 2 || stats.Samples != 6 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestLintStrictConventions: strict mode layers naming discipline on
// top of grammar validation — counters end _total, nothing else does,
// names are lowercase, reserved sample suffixes stay reserved, and
// every family carries HELP and TYPE.
func TestLintStrictConventions(t *testing.T) {
	good := `# HELP reqs_total Requests served.
# TYPE reqs_total counter
reqs_total 4
# HELP queue_depth Items waiting.
# TYPE queue_depth gauge
queue_depth 2
# HELP rpc_seconds Round-trip time.
# TYPE rpc_seconds histogram
rpc_seconds_bucket{le="+Inf"} 4
rpc_seconds_sum 0.8
rpc_seconds_count 4
`
	if _, err := LintStrict(strings.NewReader(good)); err != nil {
		t.Fatalf("strict rejected a clean exposition: %v", err)
	}

	cases := map[string]string{
		"counter without _total": "# HELP reqs Requests.\n# TYPE reqs counter\nreqs 1\n",
		"gauge with _total":      "# HELP depth_total Depth.\n# TYPE depth_total gauge\ndepth_total 1\n",
		"uppercase name":         "# HELP req_Total Requests.\n# TYPE req_Total counter\nreq_Total 1\n",
		"reserved suffix":        "# HELP a_count Things.\n# TYPE a_count gauge\na_count 1\n",
		"missing HELP":           "# TYPE reqs_total counter\nreqs_total 1\n",
		"missing TYPE":           "# HELP reqs_total Requests.\nreqs_total 1\n",
	}
	for name, in := range cases {
		if _, err := LintStrict(strings.NewReader(in)); err == nil {
			t.Errorf("%s: strict lint accepted %q", name, in)
		} else if _, lax := Lint(strings.NewReader(in)); lax != nil {
			t.Errorf("%s: plain lint should accept what only strict rejects: %v", name, lax)
		}
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines the
// way -j campaign workers and scrapes actually interleave; run with
// -race this is the metrics half of the telemetry stress satellite.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("stress_total", "")
			ga := r.Gauge("stress", "", L("worker", string(rune('a'+g))))
			h := r.Histogram("stress_seconds", "", nil)
			for i := 0; i < 500; i++ {
				c.Inc()
				ga.Set(float64(i))
				h.Observe(float64(i) / 1000)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WriteText(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stress_total 4000\n") {
		t.Fatalf("lost counter increments:\n%s", buf.String())
	}
	if _, err := Lint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("lint: %v", err)
	}
}
