// Package metrics is a zero-dependency Prometheus-style metrics
// registry: counters, gauges and histograms, exposed in the Prometheus
// text exposition format for the /metrics endpoint of the campaign
// monitor (package monitor).
//
// Like the rest of the observability layer it is nil-safe end to end: a
// nil *Registry hands out nil instruments, and every method on a nil
// instrument is a cheap no-op, so instrumented code never branches on
// whether monitoring is enabled.
//
// Instruments come in two flavors. Stateful instruments (Counter,
// Gauge, Histogram) are updated at the emission site and are safe for
// concurrent use. Pull instruments (CounterFunc, GaugeFunc, Collect)
// are evaluated at exposition time, which is how live campaign state —
// instances running, per-instance edges, probe-cache hit rate — is
// published without touching the deterministic hot path.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// A Label is one name="value" pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// L builds a label (shorthand used at call sites).
func L(name, value string) Label { return Label{Name: name, Value: value} }

// instrument kinds, also the TYPE strings of the exposition format.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled sample stream of a family.
type series struct {
	labels []Label

	// scalar value for counters and gauges.
	val float64
	// pull callback; when non-nil it supersedes val at exposition.
	fn func() float64

	// histogram state.
	buckets []float64 // upper bounds, ascending, +Inf excluded
	counts  []uint64  // one per bucket
	sum     float64
	count   uint64
}

// family is every series sharing one metric name.
type family struct {
	name string
	help string
	typ  string

	series map[string]*series // keyed by label signature
	order  []string
}

// A Registry holds metric families and renders them in the Prometheus
// text format. The nil *Registry is a no-op sink. Safe for concurrent
// use from any number of goroutines.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	order      []string
	collectors []Collector
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Enabled reports whether the registry actually collects.
func (r *Registry) Enabled() bool { return r != nil }

// nameOK validates a metric or label name against the Prometheus
// grammar [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally forbid ':', but
// we keep one check — none of our labels use it).
func nameOK(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// signature renders labels into a canonical map key (sorted by name).
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return b.String()
}

// lookup returns (creating if needed) the series for name+labels,
// checking the family type. r.mu must be held.
func (r *Registry) lookup(name, help, typ string, labels []Label) *series {
	if !nameOK(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameOK(l.Name) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l.Name, name))
		}
	}
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = fam
		r.order = append(r.order, name)
	} else if fam.typ != typ {
		panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, fam.typ, typ))
	}
	sig := signature(labels)
	s, ok := fam.series[sig]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		fam.series[sig] = s
		fam.order = append(fam.order, sig)
	}
	return s
}

// A Counter is a monotonically increasing value.
type Counter struct {
	r *Registry
	s *series
}

// Counter registers (or finds) the counter name{labels}. Repeated calls
// with the same name and labels return the same underlying series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Counter{r: r, s: r.lookup(name, help, typeCounter, labels)}
}

// Add increments the counter by delta (negative deltas are ignored —
// counters only go up).
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	c.r.mu.Lock()
	c.s.val += delta
	c.r.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// A Gauge is a value that can go up and down.
type Gauge struct {
	r *Registry
	s *series
}

// Gauge registers (or finds) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Gauge{r: r, s: r.lookup(name, help, typeGauge, labels)}
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.s.val = v
	g.r.mu.Unlock()
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.s.val += delta
	g.r.mu.Unlock()
}

// CounterFunc registers a pull counter evaluated at exposition time.
// fn must be monotonically nondecreasing and safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, help, typeCounter, labels).fn = fn
}

// GaugeFunc registers a pull gauge evaluated at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, help, typeGauge, labels).fn = fn
}

// A Histogram samples observations into cumulative buckets.
type Histogram struct {
	r *Registry
	s *series
}

// DefBuckets is a general-purpose duration bucket layout in seconds
// (50us .. ~160s, doubling), tuned for probe and span latencies.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60,
}

// Histogram registers (or finds) the histogram name{labels} with the
// given ascending upper bounds (+Inf is implicit; nil means
// DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, typeHistogram, labels)
	if s.buckets == nil {
		s.buckets = append([]float64(nil), buckets...)
		s.counts = make([]uint64, len(buckets))
	}
	return &Histogram{r: r, s: s}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.r.mu.Lock()
	for i, ub := range h.s.buckets {
		if v <= ub {
			h.s.counts[i]++
			break
		}
	}
	h.s.sum += v
	h.s.count++
	h.r.mu.Unlock()
}

// A Collector publishes gauge samples computed on the fly at each
// exposition — the hook live campaign snapshots hang off. The set
// callback may be invoked any number of times; every sample it
// publishes is typed gauge.
type Collector func(set func(name, help string, value float64, labels ...Label))

// Collect registers fn to run at every exposition.
func (r *Registry) Collect(fn Collector) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// escapeHelp escapes a HELP string per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus does.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// renderLabels renders {a="b",c="d"} (empty string for no labels).
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each preceded by its
// HELP and TYPE comments; collector samples are folded in as gauges.
// Nil registries write nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	// Run collectors outside the registry lock (they snapshot other
	// locked structures), folding their samples into an overlay.
	type dynSample struct {
		value  float64
		labels []Label
	}
	type dynFamily struct {
		help  string
		order []string
		bySig map[string]dynSample
	}
	dyn := make(map[string]*dynFamily)
	var dynOrder []string
	for _, fn := range collectors {
		fn(func(name, help string, value float64, labels ...Label) {
			if !nameOK(name) {
				return
			}
			f, ok := dyn[name]
			if !ok {
				f = &dynFamily{help: help, bySig: make(map[string]dynSample)}
				dyn[name] = f
				dynOrder = append(dynOrder, name)
			}
			sig := signature(labels)
			if _, dup := f.bySig[sig]; !dup {
				f.order = append(f.order, sig)
			}
			f.bySig[sig] = dynSample{value: value, labels: append([]Label(nil), labels...)}
		})
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	names := append([]string(nil), r.order...)
	for _, n := range dynOrder {
		if _, exists := r.families[n]; !exists {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		fam := r.families[name]
		df := dyn[name]
		help, typ := "", typeGauge
		if fam != nil {
			help, typ = fam.help, fam.typ
		} else if df != nil {
			help = df.help
		}
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		if fam != nil {
			for _, sig := range fam.order {
				s := fam.series[sig]
				switch typ {
				case typeHistogram:
					cum := uint64(0)
					for i, ub := range s.buckets {
						cum += s.counts[i]
						fmt.Fprintf(&b, "%s_bucket%s %d\n", name,
							renderLabels(s.labels, L("le", formatValue(ub))), cum)
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", name,
						renderLabels(s.labels, L("le", "+Inf")), s.count)
					fmt.Fprintf(&b, "%s_sum%s %s\n", name, renderLabels(s.labels), formatValue(s.sum))
					fmt.Fprintf(&b, "%s_count%s %d\n", name, renderLabels(s.labels), s.count)
				default:
					v := s.val
					if s.fn != nil {
						r.mu.Unlock()
						v = s.fn()
						r.mu.Lock()
					}
					fmt.Fprintf(&b, "%s%s %s\n", name, renderLabels(s.labels), formatValue(v))
				}
			}
		}
		if df != nil && (fam == nil || fam.typ == typeGauge) {
			for _, sig := range df.order {
				if fam != nil {
					if _, static := fam.series[sig]; static {
						continue // static series wins over a collector dup
					}
				}
				s := df.bySig[sig]
				fmt.Fprintf(&b, "%s%s %s\n", name, renderLabels(s.labels), formatValue(s.value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
