package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// LintStats summarizes a validated exposition.
type LintStats struct {
	// Families is the number of distinct metric families seen.
	Families int
	// Samples is the number of sample lines.
	Samples int
}

// Lint validates a Prometheus text-format exposition (version 0.0.4):
// comment grammar, sample grammar, TYPE declarations preceding their
// samples, histogram suffix discipline and parseable values. It exists
// so tests and the CI monitor smoke can assert /metrics output parses
// without a Prometheus dependency. It returns basic counts on success.
func Lint(r io.Reader) (LintStats, error) { return lint(r, false) }

// LintStrict validates like Lint and additionally enforces the naming
// conventions this repo holds its own registries to: every family is
// lowercase snake_case with a HELP line and a TYPE line, counters (and
// only counters) end in _total, and no family name squats on the
// reserved histogram/summary sample suffixes _bucket, _sum, _count.
// CI runs `cmfuzz promlint -strict` over every live /metrics surface.
func LintStrict(r io.Reader) (LintStats, error) { return lint(r, true) }

func lint(r io.Reader, strict bool) (LintStats, error) {
	var stats LintStats
	types := make(map[string]string) // family -> declared type
	helps := make(map[string]bool)   // family -> HELP seen
	seenSample := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return stats, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			switch fields[1] {
			case "HELP":
				if !nameOK(fields[2]) {
					return stats, fmt.Errorf("line %d: HELP for invalid name %q", lineNo, fields[2])
				}
				helps[fields[2]] = true
			case "TYPE":
				if len(fields) != 4 {
					return stats, fmt.Errorf("line %d: TYPE needs a name and a type", lineNo)
				}
				name, typ := fields[2], fields[3]
				if !nameOK(name) {
					return stats, fmt.Errorf("line %d: TYPE for invalid name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return stats, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
				}
				if seenSample[name] {
					return stats, fmt.Errorf("line %d: TYPE %s after its samples", lineNo, name)
				}
				if _, dup := types[name]; dup {
					return stats, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				types[name] = typ
				stats.Families++
			default:
				// Free-form comment: legal, ignored.
			}
			continue
		}
		name, rest, err := splitSample(line)
		if err != nil {
			return stats, fmt.Errorf("line %d: %w", lineNo, err)
		}
		seenSample[familyOf(name, types)] = true
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return stats, fmt.Errorf("line %d: want 'value [timestamp]' after series, got %q", lineNo, rest)
		}
		if _, err := parseValue(fields[0]); err != nil {
			return stats, fmt.Errorf("line %d: bad value %q: %v", lineNo, fields[0], err)
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return stats, fmt.Errorf("line %d: bad timestamp %q", lineNo, fields[1])
			}
		}
		stats.Samples++
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	if stats.Samples == 0 {
		return stats, fmt.Errorf("no samples in exposition")
	}
	if strict {
		if err := checkConventions(types, helps, seenSample); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// checkConventions is the strict-mode pass: it reports every naming
// violation at once (sorted, so the message is deterministic) instead
// of stopping at the first.
func checkConventions(types map[string]string, helps, seenSample map[string]bool) error {
	var violations []string
	add := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	for name, typ := range types {
		if name != strings.ToLower(name) {
			add("family %s: name is not lowercase snake_case", name)
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				add("family %s: name squats on reserved sample suffix %s", name, suffix)
			}
		}
		if typ == "counter" && !strings.HasSuffix(name, "_total") {
			add("family %s: counter does not end in _total", name)
		}
		if typ != "counter" && strings.HasSuffix(name, "_total") {
			add("family %s: %s ends in _total (counters only)", name, typ)
		}
		if !helps[name] {
			add("family %s: no HELP line", name)
		}
	}
	for fam := range seenSample {
		if _, ok := types[fam]; !ok {
			add("family %s: samples without a TYPE declaration", fam)
		}
	}
	if len(violations) == 0 {
		return nil
	}
	sort.Strings(violations)
	return fmt.Errorf("strict: %s", strings.Join(violations, "; "))
}

// familyOf maps a sample name to its family, peeling histogram/summary
// suffixes when the suffixed family was declared.
func familyOf(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t, declared := types[base]; declared && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

// splitSample splits "name{labels} value" into the name and the part
// after the series, validating the name and label syntax.
func splitSample(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("sample %q has no value", line)
	}
	name = line[:i]
	if !nameOK(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if line[i] == ' ' {
		return name, line[i+1:], nil
	}
	// Label block: scan to the closing brace honoring quoted values.
	j := i + 1
	for j < len(line) {
		if line[j] == '}' {
			break
		}
		// label name
		k := j
		for k < len(line) && line[k] != '=' {
			k++
		}
		if k >= len(line) || !nameOK(line[j:k]) {
			return "", "", fmt.Errorf("invalid label name in %q", line)
		}
		k++ // past '='
		if k >= len(line) || line[k] != '"' {
			return "", "", fmt.Errorf("unquoted label value in %q", line)
		}
		k++
		for k < len(line) {
			if line[k] == '\\' {
				k += 2
				continue
			}
			if line[k] == '"' {
				break
			}
			k++
		}
		if k >= len(line) {
			return "", "", fmt.Errorf("unterminated label value in %q", line)
		}
		k++ // past closing quote
		if k < len(line) && line[k] == ',' {
			k++
		}
		j = k
	}
	if j >= len(line) || line[j] != '}' {
		return "", "", fmt.Errorf("unterminated label block in %q", line)
	}
	rest = strings.TrimPrefix(line[j+1:], " ")
	if rest == "" {
		return "", "", fmt.Errorf("sample %q has no value", line)
	}
	return name, rest, nil
}

// parseValue parses a sample value, accepting the Prometheus special
// forms +Inf, -Inf and NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN", "Nan":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
