// Package trace is the wall-clock half of the observability layer: a
// zero-dependency hierarchical span tracer for finding where real time
// goes inside a campaign — the probe matrix, group allocation, instance
// boots, the fuzzing loop — while the sibling event log (package
// telemetry) stays on the deterministic virtual clock.
//
// The design mirrors the telemetry recorder's nil-safety contract: a nil
// *Tracer is the default no-op sink, a nil *Span absorbs every method
// (including Child, which returns nil), so components thread spans
// through unconditionally and pay one nil check when tracing is off.
// Wall-clock timings never feed back into campaign decisions, so traced
// and untraced runs produce byte-identical deterministic artifacts.
//
// Spans form a tree: Tracer.Start opens a root, Span.Child opens a
// nested span, Span.End closes one. Concurrent children are legal —
// a child opened while a sibling is still running is placed on its own
// track so exports stay readable. Exports are the Chrome trace_event
// JSON format ("X" complete events, loadable in chrome://tracing or
// https://ui.perfetto.dev) and a self-time-sorted ASCII profile table
// for terminal triage.
//
// The clock is injectable (NewWithClock) so tests assert on exact
// durations; the default is Go's monotonic clock via time.Since.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// A Clock reports the elapsed monotonic time since the tracer was
// created. Injectable for tests; the default wraps time.Since.
type Clock func() time.Duration

// An Attr is one key/value annotation on a span. Values are rendered
// with %v into the export, so ints, strings and floats all work.
type Attr struct {
	Key   string
	Value any
}

// A records one attribute (shorthand used at call sites).
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// record is one completed span.
type record struct {
	id     int
	parent int // -1 for roots
	track  int
	name   string
	start  time.Duration
	end    time.Duration
	attrs  []Attr
}

// A Record is one completed span in portable form: the shape that
// crosses process boundaries. Workers drain their completed spans as
// Records, ship them over the wire, and the coordinator ingests them
// under a per-process lane so one Chrome trace shows every process on
// a single timeline. Process "" means the local (exporting) process.
type Record struct {
	Process string
	ID      int
	Parent  int // -1 for roots
	Track   int
	Name    string
	Start   time.Duration
	End     time.Duration
	Attrs   []Attr
}

// export converts an internal record to the portable form.
func (r record) export() Record {
	return Record{
		ID: r.id, Parent: r.parent, Track: r.track,
		Name: r.name, Start: r.start, End: r.end, Attrs: r.attrs,
	}
}

// A Tracer collects spans. The nil *Tracer is the no-op sink. A non-nil
// Tracer is safe for concurrent use: campaign repetitions and probe
// workers open and close spans from many goroutines at once.
type Tracer struct {
	mu        sync.Mutex
	clock     Clock
	done      []record
	foreign   []Record // spans ingested from other processes
	nextID    int
	nextTrack int
	top       map[int]*Span // track -> innermost open span (nil = free)
	open      int
}

// New returns a tracer on the real monotonic clock.
func New() *Tracer {
	start := time.Now()
	return NewWithClock(func() time.Duration { return time.Since(start) })
}

// NewWithClock returns a tracer reading time from clock, which must be
// monotonically nondecreasing. Tests inject a hand-stepped clock to pin
// exact durations.
func NewWithClock(clock Clock) *Tracer {
	return &Tracer{clock: clock, top: make(map[int]*Span)}
}

// Enabled reports whether spans are actually collected.
func (t *Tracer) Enabled() bool { return t != nil }

// Now reads the tracer's clock: elapsed monotonic time since creation.
// A nil tracer reads 0. Used to timestamp regions measured outside the
// span stack (see Span.Complete) and to align foreign timelines.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock()
}

// DrainRecords removes and returns every completed local span in
// portable form (completion order, Process ""). Still-open spans stay
// behind and are returned by a later drain once ended. This is the
// worker half of cross-process stitching: drain after each lease and
// ship the batch with the reply.
func (t *Tracer) DrainRecords() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.done) == 0 {
		return nil
	}
	out := make([]Record, len(t.done))
	for i, r := range t.done {
		out[i] = r.export()
	}
	t.done = nil
	return out
}

// IngestForeign files completed spans from another process under its
// own lane. Each record's Start/End is shifted by offset (the receiver
// clock minus the sender clock, measured at ingest) so all processes
// share one timeline; negative starts clamp to 0 and End never drops
// below Start. Safe for concurrent use — per-worker dispatchers ingest
// from their own goroutines.
func (t *Tracer) IngestForeign(process string, offset time.Duration, recs []Record) {
	if t == nil || len(recs) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range recs {
		r.Process = process
		r.Start += offset
		r.End += offset
		if r.Start < 0 {
			r.Start = 0
		}
		if r.End < r.Start {
			r.End = r.Start
		}
		t.foreign = append(t.foreign, r)
	}
}

// Records snapshots every completed span in portable form: local spans
// in completion order (Process "") followed by foreign spans sorted by
// (process, id). The foreign sort restores a deterministic order even
// though ingestion races across dispatcher goroutines — span IDs are
// allocated sequentially inside each sender, so for a deterministic
// workload the result is structurally reproducible run to run.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Record, 0, len(t.done)+len(t.foreign))
	for _, r := range t.done {
		out = append(out, r.export())
	}
	foreign := append([]Record(nil), t.foreign...)
	t.mu.Unlock()
	sort.SliceStable(foreign, func(i, j int) bool {
		if foreign[i].Process != foreign[j].Process {
			return foreign[i].Process < foreign[j].Process
		}
		return foreign[i].ID < foreign[j].ID
	})
	return append(out, foreign...)
}

// A Span is one open (or ended) region of wall-clock time. The nil
// *Span absorbs every method; Child on a nil span returns nil, so an
// untraced call tree costs one nil check per site.
type Span struct {
	t      *Tracer
	id     int
	parent int
	track  int
	name   string
	start  time.Duration

	mu         sync.Mutex
	attrs      []Attr
	ended      bool
	parentSpan *Span
	prevTop    *Span // span below this one on its track's stack
}

// Start opens a root span on its own track.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.startLocked(name, -1, nil, attrs)
}

// startLocked opens a span and pushes it onto its track's stack;
// t.mu must be held. A nil parent allocates a free track; a non-nil
// parent reuses the parent's track when the parent is that track's
// innermost open span (so the child nests by containment), and a free
// lane otherwise (a concurrent sibling is holding the parent's track).
func (t *Tracer) startLocked(name string, parentID int, parent *Span, attrs []Attr) *Span {
	track := -1
	if parent != nil && t.top[parent.track] == parent {
		track = parent.track
	} else {
		for cand := 0; cand < t.nextTrack; cand++ {
			if t.top[cand] == nil {
				track = cand
				break
			}
		}
		if track < 0 {
			track = t.nextTrack
			t.nextTrack++
		}
	}
	s := &Span{
		t:          t,
		id:         t.nextID,
		parent:     parentID,
		track:      track,
		name:       name,
		start:      t.clock(),
		attrs:      append([]Attr(nil), attrs...),
		parentSpan: parent,
		prevTop:    t.top[track],
	}
	t.nextID++
	t.top[track] = s
	t.open++
	return s
}

// Child opens a span nested under s. A child opened while a sibling is
// still running goes to its own track (concurrent lanes render side by
// side in the trace viewer); sequential children share the parent's
// track and nest by containment.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.startLocked(name, s.id, s, attrs)
}

// Tracer returns the tracer that owns s, or nil for a nil span. Lets
// components handed only a parent span reach the tracer for Now,
// DrainRecords and IngestForeign.
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.t
}

// Complete files an already-measured region as a completed child of s
// without touching the track stacks: the record lands on s's track with
// the given start/end (tracer-clock durations, see Tracer.Now). Use it
// for regions whose extent was measured before a span could be opened —
// e.g. decoding the very request that carries the tracing flag.
func (s *Span) Complete(name string, start, end time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	if end < start {
		end = start
	}
	t := s.t
	t.mu.Lock()
	t.done = append(t.done, record{
		id: t.nextID, parent: s.id, track: s.track,
		name: name, start: start, end: end,
		attrs: append([]Attr(nil), attrs...),
	})
	t.nextID++
	t.mu.Unlock()
}

// Set appends one attribute to the span. Safe to call from the goroutine
// that owns the span at any time before End.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span and files it with the tracer. Ending a span twice
// is a no-op; ending nil is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	end := t.clock()
	t.mu.Lock()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		t.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	t.done = append(t.done, record{
		id: s.id, parent: s.parent, track: s.track,
		name: s.name, start: s.start, end: end, attrs: attrs,
	})
	// Pop the track stack, skipping any spans below that already ended
	// out of order (a parent ended before its child): the track becomes
	// free again once its last open span ends, never leaking a lane.
	if t.top[s.track] == s {
		p := s.prevTop
		for p != nil {
			p.mu.Lock()
			endedBelow := p.ended
			p.mu.Unlock()
			if !endedBelow {
				break
			}
			p = p.prevTop
		}
		t.top[s.track] = p
	}
	t.open--
	t.mu.Unlock()
}

// snapshot returns the completed spans in end order plus the count of
// still-open spans.
func (t *Tracer) snapshot() ([]record, int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]record(nil), t.done...), t.open
}

// SpanCount returns how many spans have completed, local and foreign.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done) + len(t.foreign)
}

// chromeEvent is one trace_event entry (the "X" complete-event form).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the containing object; both chrome://tracing and
// Perfetto load {"traceEvents": [...]}.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Meta        string        `json:"otherData,omitempty"`
}

// WriteChromeTrace streams the completed spans — local and ingested
// foreign — as Chrome trace_event JSON. Load the output in
// chrome://tracing or https://ui.perfetto.dev. The local process is
// pid 1; each foreign process gets its own pid (sorted by name, from
// 2) with a process_name metadata event, so a stitched distributed
// trace renders one lane group per worker. Purely local traces stay a
// plain stream of "X" events with no metadata, exactly as before.
// Spans are sorted by start time so the export is stable for a fixed
// clock; still-open spans are not included.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	recs := t.Records()
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		if recs[i].Process != recs[j].Process {
			return recs[i].Process < recs[j].Process
		}
		return recs[i].ID < recs[j].ID
	})
	pidOf := map[string]int{"": 1}
	var procs []string
	for _, r := range recs {
		if _, ok := pidOf[r.Process]; !ok {
			pidOf[r.Process] = 0 // placeholder until sorted
			procs = append(procs, r.Process)
		}
	}
	sort.Strings(procs)
	for i, p := range procs {
		pidOf[p] = 2 + i
	}
	file := chromeFile{TraceEvents: make([]chromeEvent, 0, len(recs)), Meta: "cmfuzz wall-clock trace"}
	if len(procs) > 0 {
		// Name the lanes only when the trace is actually multi-process,
		// keeping single-process exports a pure X-event stream.
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]any{"name": "coordinator"},
		})
		for _, p := range procs {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pidOf[p],
				Args: map[string]any{"name": p},
			})
		}
	}
	for _, r := range recs {
		ev := chromeEvent{
			Name: r.Name,
			Ph:   "X",
			Ts:   float64(r.Start) / float64(time.Microsecond),
			Dur:  float64(r.End-r.Start) / float64(time.Microsecond),
			Pid:  pidOf[r.Process],
			Tid:  r.Track,
		}
		if len(r.Attrs) > 0 {
			ev.Args = make(map[string]any, len(r.Attrs))
			for _, a := range r.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		file.TraceEvents = append(file.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// ExportChromeTrace writes the Chrome trace JSON to path (0644,
// truncating). Nil tracers write nothing.
func (t *Tracer) ExportChromeTrace(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// profileRow aggregates all spans sharing one name.
type profileRow struct {
	name  string
	calls int
	total time.Duration
	self  time.Duration
}

// Profile renders the completed spans as a self-time-sorted ASCII
// table: one row per span name with call count, cumulative total and
// self time (total minus time attributed to child spans). Self time is
// what the region itself burned — the column to read when hunting for
// the hot layer. maxRows <= 0 means all rows.
func (t *Tracer) Profile(maxRows int) string {
	if t == nil {
		return ""
	}
	recs, open := t.snapshot()
	byID := make(map[int]int, len(recs)) // span id -> index
	for i, r := range recs {
		byID[r.id] = i
	}
	childTime := make([]time.Duration, len(recs))
	for _, r := range recs {
		if r.parent >= 0 {
			if pi, ok := byID[r.parent]; ok {
				childTime[pi] += r.end - r.start
			}
		}
	}
	agg := make(map[string]*profileRow)
	var order []string
	wall := time.Duration(0)
	for i, r := range recs {
		dur := r.end - r.start
		if r.end > wall {
			wall = r.end
		}
		row, ok := agg[r.name]
		if !ok {
			row = &profileRow{name: r.name}
			agg[r.name] = row
			order = append(order, r.name)
		}
		row.calls++
		row.total += dur
		self := dur - childTime[i]
		if self < 0 {
			self = 0 // overlapping concurrent children can exceed the parent
		}
		row.self += self
	}
	rows := make([]*profileRow, 0, len(order))
	for _, name := range order {
		rows = append(rows, agg[name])
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].self != rows[j].self {
			return rows[i].self > rows[j].self
		}
		return rows[i].name < rows[j].name
	})
	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "wall-clock profile: %d spans in %v", len(recs), wall.Round(time.Microsecond))
	if open > 0 {
		fmt.Fprintf(&b, " (%d still open)", open)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  %12s %12s %7s %12s  %s\n", "self", "total", "calls", "avg", "span")
	for _, r := range rows {
		avg := time.Duration(0)
		if r.calls > 0 {
			avg = r.total / time.Duration(r.calls)
		}
		fmt.Fprintf(&b, "  %12v %12v %7d %12v  %s\n",
			r.self.Round(time.Microsecond), r.total.Round(time.Microsecond),
			r.calls, avg.Round(time.Microsecond), r.name)
	}
	return b.String()
}
