package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// stepClock is a hand-advanced monotonic clock.
type stepClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *stepClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start("root")
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	child := sp.Child("child", A("k", 1))
	if child != nil {
		t.Fatal("nil span returned a non-nil child")
	}
	sp.Set("k", "v")
	sp.End()
	child.End()
	if got := tr.Profile(10); got != "" {
		t.Fatalf("nil tracer profile = %q", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer export wrote %q, err %v", buf.String(), err)
	}
	if tr.SpanCount() != 0 {
		t.Fatal("nil tracer has spans")
	}
}

func TestSpanNestingAndDurations(t *testing.T) {
	clk := &stepClock{}
	tr := NewWithClock(clk.Now)
	root := tr.Start("campaign", A("subject", "mqtt"))
	clk.Advance(10 * time.Millisecond)
	plan := root.Child("probe.plan")
	clk.Advance(5 * time.Millisecond)
	plan.End()
	exec := root.Child("probe.execute")
	clk.Advance(20 * time.Millisecond)
	exec.Set("probes", 42)
	exec.End()
	clk.Advance(1 * time.Millisecond)
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(file.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(file.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = i
	}
	rootEv := file.TraceEvents[byName["campaign"]]
	planEv := file.TraceEvents[byName["probe.plan"]]
	execEv := file.TraceEvents[byName["probe.execute"]]
	if rootEv.Dur != 36000 { // 36ms in microseconds
		t.Fatalf("root dur = %v us, want 36000", rootEv.Dur)
	}
	if planEv.Ts != 10000 || planEv.Dur != 5000 {
		t.Fatalf("plan ts/dur = %v/%v, want 10000/5000", planEv.Ts, planEv.Dur)
	}
	if execEv.Dur != 20000 {
		t.Fatalf("exec dur = %v, want 20000", execEv.Dur)
	}
	// Sequential children share the root's track: containment nests them.
	if planEv.Tid != rootEv.Tid || execEv.Tid != rootEv.Tid {
		t.Fatalf("sequential children left the parent track: root %d plan %d exec %d",
			rootEv.Tid, planEv.Tid, execEv.Tid)
	}
	// Containment: children inside the parent window.
	if planEv.Ts < rootEv.Ts || planEv.Ts+planEv.Dur > rootEv.Ts+rootEv.Dur {
		t.Fatal("plan span escapes its parent window")
	}
	if rootEv.Args["subject"] != "mqtt" {
		t.Fatalf("root args = %v", rootEv.Args)
	}
	if execEv.Args["probes"] != float64(42) {
		t.Fatalf("exec args = %v", execEv.Args)
	}
}

func TestConcurrentChildrenGetDistinctTracks(t *testing.T) {
	clk := &stepClock{}
	tr := NewWithClock(clk.Now)
	root := tr.Start("batch")
	a := root.Child("worker")
	clk.Advance(time.Millisecond)
	b := root.Child("worker") // a still open: must not share a's track
	clk.Advance(time.Millisecond)
	a.End()
	c := root.Child("worker") // a's lane is free again: reuse it
	clk.Advance(time.Millisecond)
	b.End()
	c.End()
	root.End()

	recs, open := tr.snapshot()
	if open != 0 {
		t.Fatalf("%d spans still open", open)
	}
	tracks := map[string][]int{}
	for _, r := range recs {
		tracks[r.name] = append(tracks[r.name], r.track)
	}
	workers := tracks["worker"]
	if len(workers) != 3 {
		t.Fatalf("got %d worker spans", len(workers))
	}
	// a ends first, then b, then c (End order): a and b overlap so their
	// tracks differ; c reuses a freed lane rather than growing a third.
	aTrack, bTrack, cTrack := workers[0], workers[1], workers[2]
	if aTrack == bTrack {
		t.Fatal("overlapping siblings share a track")
	}
	if cTrack != aTrack {
		t.Fatalf("freed lane not reused: a=%d b=%d c=%d", aTrack, bTrack, cTrack)
	}
}

func TestProfileSelfTimeSorted(t *testing.T) {
	clk := &stepClock{}
	tr := NewWithClock(clk.Now)
	root := tr.Start("run")
	clk.Advance(2 * time.Millisecond) // 2ms self before children
	hot := root.Child("hot")
	clk.Advance(30 * time.Millisecond)
	hot.End()
	cool := root.Child("cool")
	clk.Advance(4 * time.Millisecond)
	cool.End()
	root.End()

	out := tr.Profile(0)
	hotIdx := strings.Index(out, "hot")
	coolIdx := strings.Index(out, "cool")
	runIdx := strings.Index(out, "run")
	if hotIdx < 0 || coolIdx < 0 || runIdx < 0 {
		t.Fatalf("profile missing rows:\n%s", out)
	}
	if !(hotIdx < coolIdx && coolIdx < runIdx) {
		t.Fatalf("profile not self-time sorted (want hot, cool, run):\n%s", out)
	}
	// Root self time: 36ms total - 34ms in children = 2ms.
	if !strings.Contains(out, "2ms") {
		t.Fatalf("root self time missing:\n%s", out)
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	clk := &stepClock{}
	tr := NewWithClock(clk.Now)
	sp := tr.Start("once")
	clk.Advance(time.Millisecond)
	sp.End()
	clk.Advance(time.Hour)
	sp.End()
	recs, open := tr.snapshot()
	if len(recs) != 1 || open != 0 {
		t.Fatalf("double End filed %d records, %d open", len(recs), open)
	}
	if recs[0].end-recs[0].start != time.Millisecond {
		t.Fatalf("second End changed the duration: %v", recs[0].end-recs[0].start)
	}
}

func TestNilTracerCrossProcessNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Now() != 0 {
		t.Fatal("nil tracer Now != 0")
	}
	if got := tr.DrainRecords(); got != nil {
		t.Fatalf("nil tracer drained %v", got)
	}
	if got := tr.Records(); got != nil {
		t.Fatalf("nil tracer records %v", got)
	}
	tr.IngestForeign("w", 0, []Record{{Name: "x"}})
	var sp *Span
	if sp.Tracer() != nil {
		t.Fatal("nil span has a tracer")
	}
	sp.Complete("x", 0, time.Second)
}

func TestSpanCompleteFilesChildRecord(t *testing.T) {
	clk := &stepClock{}
	tr := NewWithClock(clk.Now)
	root := tr.Start("lease")
	clk.Advance(10 * time.Millisecond)
	// A region measured before the span stack existed: decode ran over
	// [2ms, 6ms] on the tracer clock.
	root.Complete("decode", 2*time.Millisecond, 6*time.Millisecond, A("bytes", 128))
	root.End()

	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	dec := recs[0] // Complete files immediately; root ends after
	if dec.Name != "decode" || dec.Start != 2*time.Millisecond || dec.End != 6*time.Millisecond {
		t.Fatalf("decode record = %+v", dec)
	}
	rootRec := recs[1]
	if dec.Parent != rootRec.ID || dec.Track != rootRec.Track {
		t.Fatalf("decode not filed under root: %+v vs %+v", dec, rootRec)
	}
	// Inverted intervals clamp rather than exporting negative durations.
	root2 := tr.Start("r2")
	root2.Complete("clamped", 5*time.Millisecond, 3*time.Millisecond)
	root2.End()
	for _, r := range tr.Records() {
		if r.End < r.Start {
			t.Fatalf("negative-duration record %+v", r)
		}
	}
}

func TestDrainRecordsTakesCompletedOnly(t *testing.T) {
	clk := &stepClock{}
	tr := NewWithClock(clk.Now)
	root := tr.Start("lease")
	inner := root.Child("steps")
	clk.Advance(time.Millisecond)
	inner.End()

	first := tr.DrainRecords()
	if len(first) != 1 || first[0].Name != "steps" {
		t.Fatalf("first drain = %+v", first)
	}
	if got := tr.DrainRecords(); got != nil {
		t.Fatalf("second drain not empty: %+v", got)
	}
	root.End()
	second := tr.DrainRecords()
	if len(second) != 1 || second[0].Name != "lease" {
		t.Fatalf("drain after root end = %+v", second)
	}
	if second[0].Process != "" {
		t.Fatalf("local record has process %q", second[0].Process)
	}
}

func TestIngestForeignStitchesTimelines(t *testing.T) {
	// Worker-side tracer: spans on the worker's own clock.
	wclk := &stepClock{}
	wt := NewWithClock(wclk.Now)
	lease := wt.Start("lease")
	steps := lease.Child("lease.steps")
	wclk.Advance(8 * time.Millisecond)
	steps.End()
	lease.End()
	shipped := wt.DrainRecords()

	// Coordinator-side tracer, 100ms ahead of the worker clock.
	cclk := &stepClock{}
	cclk.Advance(100 * time.Millisecond)
	ct := NewWithClock(cclk.Now)
	rootC := ct.Start("coordinator")
	ct.IngestForeign("w1", 100*time.Millisecond, shipped)
	// A second worker whose records would go negative without clamping.
	ct.IngestForeign("w0", -time.Second, []Record{{ID: 7, Parent: -1, Name: "late", Start: 0, End: time.Millisecond}})
	cclk.Advance(time.Millisecond)
	rootC.End()

	recs := ct.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	// Local first, then foreign sorted by (process, id).
	if recs[0].Name != "coordinator" || recs[0].Process != "" {
		t.Fatalf("local record not first: %+v", recs[0])
	}
	if recs[1].Process != "w0" || recs[2].Process != "w1" || recs[3].Process != "w1" {
		t.Fatalf("foreign order wrong: %+v", recs[1:])
	}
	if recs[1].Start != 0 || recs[1].End != 0 {
		t.Fatalf("clamping failed: %+v", recs[1])
	}
	for _, r := range recs[2:] {
		if r.Start != 100*time.Millisecond {
			t.Fatalf("offset not applied: %+v", r)
		}
	}
	if ct.SpanCount() != 4 {
		t.Fatalf("span count = %d, want 4", ct.SpanCount())
	}

	// Export: three pids (coordinator=1, w0=2, w1=3) with name metadata.
	var buf bytes.Buffer
	if err := ct.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	names := map[int]string{}
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" {
			names[ev.Pid] = ev.Args["name"].(string)
			continue
		}
		pids[ev.Pid] = true
	}
	if len(pids) != 3 {
		t.Fatalf("want 3 distinct pids, got %v", pids)
	}
	if names[1] != "coordinator" || names[2] != "w0" || names[3] != "w1" {
		t.Fatalf("process names = %v", names)
	}
}

func TestSingleProcessExportHasNoMetadataEvents(t *testing.T) {
	clk := &stepClock{}
	tr := NewWithClock(clk.Now)
	sp := tr.Start("solo")
	clk.Advance(time.Millisecond)
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"ph":"M"`) {
		t.Fatalf("single-process export emitted metadata events:\n%s", buf.String())
	}
}

func TestTracerConcurrencySmoke(t *testing.T) {
	tr := New()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := root.Child("work")
				sp.Set("i", i)
				grand := sp.Child("inner")
				grand.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := tr.SpanCount(); got != 8*200*2+1 {
		t.Fatalf("span count = %d, want %d", got, 8*200*2+1)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace export is invalid JSON")
	}
}
