package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// stepClock is a hand-advanced monotonic clock.
type stepClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *stepClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start("root")
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	child := sp.Child("child", A("k", 1))
	if child != nil {
		t.Fatal("nil span returned a non-nil child")
	}
	sp.Set("k", "v")
	sp.End()
	child.End()
	if got := tr.Profile(10); got != "" {
		t.Fatalf("nil tracer profile = %q", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer export wrote %q, err %v", buf.String(), err)
	}
	if tr.SpanCount() != 0 {
		t.Fatal("nil tracer has spans")
	}
}

func TestSpanNestingAndDurations(t *testing.T) {
	clk := &stepClock{}
	tr := NewWithClock(clk.Now)
	root := tr.Start("campaign", A("subject", "mqtt"))
	clk.Advance(10 * time.Millisecond)
	plan := root.Child("probe.plan")
	clk.Advance(5 * time.Millisecond)
	plan.End()
	exec := root.Child("probe.execute")
	clk.Advance(20 * time.Millisecond)
	exec.Set("probes", 42)
	exec.End()
	clk.Advance(1 * time.Millisecond)
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(file.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(file.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = i
	}
	rootEv := file.TraceEvents[byName["campaign"]]
	planEv := file.TraceEvents[byName["probe.plan"]]
	execEv := file.TraceEvents[byName["probe.execute"]]
	if rootEv.Dur != 36000 { // 36ms in microseconds
		t.Fatalf("root dur = %v us, want 36000", rootEv.Dur)
	}
	if planEv.Ts != 10000 || planEv.Dur != 5000 {
		t.Fatalf("plan ts/dur = %v/%v, want 10000/5000", planEv.Ts, planEv.Dur)
	}
	if execEv.Dur != 20000 {
		t.Fatalf("exec dur = %v, want 20000", execEv.Dur)
	}
	// Sequential children share the root's track: containment nests them.
	if planEv.Tid != rootEv.Tid || execEv.Tid != rootEv.Tid {
		t.Fatalf("sequential children left the parent track: root %d plan %d exec %d",
			rootEv.Tid, planEv.Tid, execEv.Tid)
	}
	// Containment: children inside the parent window.
	if planEv.Ts < rootEv.Ts || planEv.Ts+planEv.Dur > rootEv.Ts+rootEv.Dur {
		t.Fatal("plan span escapes its parent window")
	}
	if rootEv.Args["subject"] != "mqtt" {
		t.Fatalf("root args = %v", rootEv.Args)
	}
	if execEv.Args["probes"] != float64(42) {
		t.Fatalf("exec args = %v", execEv.Args)
	}
}

func TestConcurrentChildrenGetDistinctTracks(t *testing.T) {
	clk := &stepClock{}
	tr := NewWithClock(clk.Now)
	root := tr.Start("batch")
	a := root.Child("worker")
	clk.Advance(time.Millisecond)
	b := root.Child("worker") // a still open: must not share a's track
	clk.Advance(time.Millisecond)
	a.End()
	c := root.Child("worker") // a's lane is free again: reuse it
	clk.Advance(time.Millisecond)
	b.End()
	c.End()
	root.End()

	recs, open := tr.snapshot()
	if open != 0 {
		t.Fatalf("%d spans still open", open)
	}
	tracks := map[string][]int{}
	for _, r := range recs {
		tracks[r.name] = append(tracks[r.name], r.track)
	}
	workers := tracks["worker"]
	if len(workers) != 3 {
		t.Fatalf("got %d worker spans", len(workers))
	}
	// a ends first, then b, then c (End order): a and b overlap so their
	// tracks differ; c reuses a freed lane rather than growing a third.
	aTrack, bTrack, cTrack := workers[0], workers[1], workers[2]
	if aTrack == bTrack {
		t.Fatal("overlapping siblings share a track")
	}
	if cTrack != aTrack {
		t.Fatalf("freed lane not reused: a=%d b=%d c=%d", aTrack, bTrack, cTrack)
	}
}

func TestProfileSelfTimeSorted(t *testing.T) {
	clk := &stepClock{}
	tr := NewWithClock(clk.Now)
	root := tr.Start("run")
	clk.Advance(2 * time.Millisecond) // 2ms self before children
	hot := root.Child("hot")
	clk.Advance(30 * time.Millisecond)
	hot.End()
	cool := root.Child("cool")
	clk.Advance(4 * time.Millisecond)
	cool.End()
	root.End()

	out := tr.Profile(0)
	hotIdx := strings.Index(out, "hot")
	coolIdx := strings.Index(out, "cool")
	runIdx := strings.Index(out, "run")
	if hotIdx < 0 || coolIdx < 0 || runIdx < 0 {
		t.Fatalf("profile missing rows:\n%s", out)
	}
	if !(hotIdx < coolIdx && coolIdx < runIdx) {
		t.Fatalf("profile not self-time sorted (want hot, cool, run):\n%s", out)
	}
	// Root self time: 36ms total - 34ms in children = 2ms.
	if !strings.Contains(out, "2ms") {
		t.Fatalf("root self time missing:\n%s", out)
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	clk := &stepClock{}
	tr := NewWithClock(clk.Now)
	sp := tr.Start("once")
	clk.Advance(time.Millisecond)
	sp.End()
	clk.Advance(time.Hour)
	sp.End()
	recs, open := tr.snapshot()
	if len(recs) != 1 || open != 0 {
		t.Fatalf("double End filed %d records, %d open", len(recs), open)
	}
	if recs[0].end-recs[0].start != time.Millisecond {
		t.Fatalf("second End changed the duration: %v", recs[0].end-recs[0].start)
	}
}

func TestTracerConcurrencySmoke(t *testing.T) {
	tr := New()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := root.Child("work")
				sp.Set("i", i)
				grand := sp.Child("inner")
				grand.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := tr.SpanCount(); got != 8*200*2+1 {
		t.Fatalf("span count = %d, want %d", got, 8*200*2+1)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace export is invalid JSON")
	}
}
