package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNilRecorderIsNoOp pins the nil-safety contract every emit site in
// the runner relies on.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims to be enabled")
	}
	r.Emit(Event{Type: EvBoot})
	r.Count(CtrSyncs, 3)
	r.Merge(New())
	if r.Events() != nil || r.Counters() != nil {
		t.Fatal("nil recorder retained data")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL wrote %q, err %v", buf.String(), err)
	}
	if r.Timeline(40) != "" {
		t.Fatal("nil Timeline produced output")
	}
}

// TestJSONLGolden pins the exact JSONL wire format: field order, omitted
// empties, one object per line. Changing the format breaks downstream
// consumers, so this is a byte-for-byte golden.
func TestJSONLGolden(t *testing.T) {
	r := NewRun("CMFuzz/rep0")
	r.Emit(Event{T: 0, Type: EvBoot, Instance: 0, Config: "bridge=true", Edges: 120})
	r.Emit(Event{T: 0, Type: EvGroup, Instance: 0, Group: []string{"bridge", "bridge-address"}})
	r.Emit(Event{T: 610.5, Type: EvSync, Instance: 1, Seeds: 12, Skipped: 2})
	r.Emit(Event{T: 1800, Type: EvSaturation, Instance: 0, Edges: 450})
	r.Emit(Event{T: 1800, Type: EvMutation, Instance: 0, Entity: "max_inflight", Value: "0"})
	r.Emit(Event{T: 2000, Type: EvCrash, Instance: 2, Crash: "MQTT/heap-buffer-overflow/f", New: true})

	want := strings.Join([]string{
		`{"t":0,"type":"boot","run":"CMFuzz/rep0","instance":0,"config":"bridge=true","edges":120}`,
		`{"t":0,"type":"group","run":"CMFuzz/rep0","instance":0,"group":["bridge","bridge-address"]}`,
		`{"t":610.5,"type":"sync","run":"CMFuzz/rep0","instance":1,"skipped":2,"seeds":12}`,
		`{"t":1800,"type":"saturation","run":"CMFuzz/rep0","instance":0,"edges":450}`,
		`{"t":1800,"type":"mutation","run":"CMFuzz/rep0","instance":0,"entity":"max_inflight","value":"0"}`,
		`{"t":2000,"type":"crash","run":"CMFuzz/rep0","instance":2,"crash":"MQTT/heap-buffer-overflow/f","new":true}`,
	}, "\n") + "\n"

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Fatalf("JSONL drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Round trip.
	evs, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_ = evs
	evs, err = ParseJSONL(strings.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 6 || evs[2].Skipped != 2 || evs[5].Crash == "" || !evs[5].New {
		t.Fatalf("round trip lost data: %+v", evs)
	}
}

func TestExportJSONLFile(t *testing.T) {
	r := New()
	r.Emit(Event{T: 1, Type: EvSample, Instance: 0, Edges: 10})
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	if err := r.ExportJSONL(path); err != nil {
		t.Fatal(err)
	}
	evs, err := parseFile(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Type != EvSample {
		t.Fatalf("export round trip: %+v", evs)
	}
}

func parseFile(t *testing.T, path string) ([]Event, error) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseJSONL(bytes.NewReader(raw))
}

func TestCountersAndMerge(t *testing.T) {
	a := NewRun("a")
	a.Count(CtrSyncs, 2)
	a.Emit(Event{T: 1, Type: EvSync, Instance: 0})
	b := NewRun("b")
	b.Count(CtrSyncs, 3)
	b.Count(CtrMutations, 1)
	b.Emit(Event{T: 2, Type: EvMutation, Instance: 1})

	a.Merge(b)
	c := a.Counters()
	if c[CtrSyncs] != 5 || c[CtrMutations] != 1 {
		t.Fatalf("merged counters: %v", c)
	}
	evs := a.Events()
	if len(evs) != 2 || evs[0].Run != "a" || evs[1].Run != "b" {
		t.Fatalf("merged events out of order or unlabeled: %+v", evs)
	}
	if got := c.String(); got != "config_mutations=1 syncs=5" {
		t.Fatalf("counters render: %q", got)
	}
}

func TestTimelineRendersPerInstance(t *testing.T) {
	r := New()
	r.Emit(Event{T: 0, Type: EvBoot, Instance: 0})
	r.Emit(Event{T: 3600, Type: EvSync, Instance: 0})
	r.Emit(Event{T: 7200, Type: EvMutation, Instance: 1})
	r.Emit(Event{T: 7200, Type: EvCampaign, Instance: -1}) // no strip
	r.Count(CtrSyncs, 1)
	out := r.Timeline(40)
	for _, want := range []string{"inst 0", "inst 1", "1 syncs", "1 mutations", "B", "M", "counters: syncs=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "inst -1") {
		t.Fatalf("campaign-level event got a strip:\n%s", out)
	}
}
