// Package telemetry is the campaign observability layer: a
// zero-dependency, virtual-clock-aware structured event log plus a
// counter registry. Every scheduling decision the parallel runner makes
// — group allocation, seed synchronization, coverage sampling,
// saturation detection, configuration mutation, restart fallback, crash
// deduplication, probe-cache activity — is emitted as a typed Event so
// campaigns can be tuned and debugged from their event stream instead of
// from their final aggregates.
//
// The package is built around a nil-safe Recorder: a nil *Recorder is
// the default no-op sink, every method on it is a cheap early return,
// and components accept it unconditionally. With telemetry off the hot
// path pays one nil check per event site and campaign results stay
// byte-identical to an uninstrumented run (the parallel package's
// TestNilTelemetryByteIdentical pins this).
//
// Events carry the emitting campaign's virtual time, never wall time, so
// an exported stream is deterministic for a fixed seed: replaying a
// campaign replays its event log byte for byte. Export formats are JSONL
// (one event object per line, append-friendly, `jq`-able) and a compact
// per-instance ASCII timeline for terminal triage.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Type tags one event with its place in the taxonomy.
type Type string

// The event taxonomy. Every type is emitted at a fixed site:
//
//	boot          instance (re)boot under a configuration (parallel)
//	group         cohesive-group assignment to an instance (parallel)
//	probe_stats   probe-executor batch statistics (core/probe)
//	sync          one seed synchronization (parallel)
//	sample        one union-coverage sample (parallel)
//	saturation    a saturation-detector fire (parallel)
//	mutation      a configuration-value mutation, with the value chosen
//	restart_fail  a failed target restart during mutation
//	fallback      last-resort defaults fallback after a double failure
//	crash         a crash observation, with dedup outcome (parallel)
//	campaign      campaign-level marker (campaign)
const (
	EvBoot        Type = "boot"
	EvGroup       Type = "group"
	EvProbeStats  Type = "probe_stats"
	EvSync        Type = "sync"
	EvSample      Type = "sample"
	EvSaturation  Type = "saturation"
	EvMutation    Type = "mutation"
	EvRestartFail Type = "restart_fail"
	EvFallback    Type = "fallback"
	EvCrash       Type = "crash"
	EvCampaign    Type = "campaign"
)

// An Event is one structured observation. T is virtual campaign time in
// seconds; Instance is the emitting parallel instance (or -1 for
// campaign-level events). The remaining fields are populated per type
// and omitted from the JSONL encoding when empty.
type Event struct {
	T        float64  `json:"t"`
	Type     Type     `json:"type"`
	Run      string   `json:"run,omitempty"`      // campaign label (fuzzer/repetition)
	Instance int      `json:"instance"`           // -1 = campaign-level
	Entity   string   `json:"entity,omitempty"`   // configuration entity involved
	Value    string   `json:"value,omitempty"`    // configuration value chosen
	Config   string   `json:"config,omitempty"`   // canonical assignment rendering
	Group    []string `json:"group,omitempty"`    // cohesive-group members
	Edges    int      `json:"edges,omitempty"`    // branch count at the event
	Skipped  int      `json:"skipped,omitempty"`  // sync intervals skipped by a clock jump
	Seeds    int      `json:"seeds,omitempty"`    // seeds imported by a sync
	Requests int      `json:"requests,omitempty"` // probe requests in a batch
	Startups int      `json:"startups,omitempty"` // probe cache misses (actual boots)
	Hits     int      `json:"hits,omitempty"`     // probe cache hits
	Crash    string   `json:"crash,omitempty"`    // crash identity
	New      bool     `json:"new,omitempty"`      // crash was new to the ledger
	Detail   string   `json:"detail,omitempty"`
}

// Counters is the aggregate counter registry: name → count. The nil map
// is a valid empty registry.
type Counters map[string]int

// The counter names the runner maintains.
const (
	CtrBoots           = "boots"
	CtrSyncs           = "syncs"
	CtrSyncSkipped     = "sync_intervals_skipped"
	CtrSamples         = "coverage_samples"
	CtrSaturations     = "saturations"
	CtrMutations       = "config_mutations"
	CtrRestartFailures = "restart_failures"
	CtrFallbacks       = "defaults_fallbacks"
	CtrCrashes         = "crashes"
	CtrCrashesUnique   = "crashes_unique"
	CtrProbeStartups   = "probe_startups"
	CtrProbeCacheHits  = "probe_cache_hits"
	// Distributed-campaign counters (internal/dist). Both fire only on
	// worker failure, so a healthy distributed run keeps a counter map
	// identical to the in-process campaign's.
	CtrWorkerDeaths  = "worker_deaths"
	CtrReassignments = "group_reassignments"
	// Live-target counters (internal/live): real-process restarts, rate
	// limiter engagements, and hang detections. Zero for simulation
	// subjects.
	CtrTargetRestarts    = "target_restarts"
	CtrTargetRateLimited = "target_rate_limited"
	CtrTargetHangs       = "target_hangs"
)

// Clone returns an independent copy of c.
func (c Counters) Clone() Counters {
	if c == nil {
		return nil
	}
	out := make(Counters, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// String renders the counters as sorted "name=count" pairs.
func (c Counters) String() string {
	names := make([]string, 0, len(c))
	for k := range c {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%d", k, c[k])
	}
	return strings.Join(parts, " ")
}

// A Recorder collects events and counters. The nil *Recorder is the
// default no-op sink: every method is nil-safe, so callers thread a
// Recorder through unconditionally and pay only a nil check when
// telemetry is off. A non-nil Recorder is safe for concurrent use; the
// deterministic virtual-clock event loop emits from one goroutine, but
// concurrent probe batches and campaign repetitions may share one.
type Recorder struct {
	mu       sync.Mutex
	run      string
	events   []Event
	counters Counters
	tap      func(Event)
}

// New returns an empty enabled recorder.
func New() *Recorder { return &Recorder{counters: make(Counters)} }

// NewRun returns an enabled recorder that stamps run into every event it
// records (used to label one campaign of a repetition matrix).
func NewRun(run string) *Recorder {
	r := New()
	r.run = run
	return r
}

// Restore rebuilds a recorder from a checkpointed event log and counter
// snapshot, so a resumed campaign appends to the exact state an
// uninterrupted run would have reached. Events keep whatever run labels
// they were recorded with; the restored recorder itself stamps nothing,
// matching New.
func Restore(events []Event, counters Counters) *Recorder {
	r := New()
	r.events = append(r.events, events...)
	for k, v := range counters {
		r.counters[k] = v
	}
	return r
}

// Enabled reports whether events are actually collected.
func (r *Recorder) Enabled() bool { return r != nil }

// SetTap installs fn as a live observer of every subsequent Emit: the
// stamped event is passed to fn after it is recorded. One tap at a
// time; nil removes it. The tap is observation-only — it cannot alter
// the recorded stream — and runs outside the recorder lock, so it may
// itself emit or inspect the recorder. Nil-safe no-op when off.
func (r *Recorder) SetTap(fn func(Event)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tap = fn
	r.mu.Unlock()
}

// Emit appends one event. Nil-safe no-op when the recorder is off.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if ev.Run == "" {
		ev.Run = r.run
	}
	r.events = append(r.events, ev)
	tap := r.tap
	r.mu.Unlock()
	if tap != nil {
		tap(ev)
	}
}

// Count adds delta to the named counter. Nil-safe no-op when off.
func (r *Recorder) Count(name string, delta int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Counters returns a copy of the counter registry (nil when off).
func (r *Recorder) Counters() Counters {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters.Clone()
}

// Merge appends o's events after r's and folds o's counters into r's.
// Merging children in a fixed order keeps a concurrent repetition
// matrix's export deterministic. Nil receivers and nil arguments are
// no-ops.
func (r *Recorder) Merge(o *Recorder) {
	if r == nil || o == nil {
		return
	}
	o.mu.Lock()
	events := append([]Event(nil), o.events...)
	counters := o.counters.Clone()
	o.mu.Unlock()
	r.mu.Lock()
	r.events = append(r.events, events...)
	for k, v := range counters {
		r.counters[k] += v
	}
	r.mu.Unlock()
}

// WriteJSONL streams the event log to w, one JSON object per line, in
// emission order. The encoding is deterministic: struct field order is
// fixed and empty fields are omitted.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// ExportJSONL writes the event log to path (0644, truncating).
func (r *Recorder) ExportJSONL(path string) error {
	if r == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseJSONL decodes a JSONL event stream produced by WriteJSONL.
func ParseJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: jsonl: %w", err)
		}
		out = append(out, ev)
	}
}

// timeline glyphs, in increasing priority: when several events share one
// column the highest-priority glyph wins.
var glyphs = map[Type]struct {
	g    byte
	prio int
}{
	EvSample:      {'.', 1},
	EvSync:        {'s', 2},
	EvSaturation:  {'S', 3},
	EvMutation:    {'M', 4},
	EvRestartFail: {'F', 5},
	EvFallback:    {'F', 5},
	EvCrash:       {'X', 6},
	EvBoot:        {'B', 7},
}

// Timeline renders a per-instance ASCII summary of the event log: one
// strip per (run, instance), each column one bucket of virtual time,
// marked with the highest-priority event that fell into it
// (B boot, X crash, F restart failure/fallback, M mutation,
// S saturation, s sync, . sample), followed by that instance's headline
// counts. Width is the strip width in columns (min 10).
func (r *Recorder) Timeline(width int) string {
	if r == nil {
		return ""
	}
	if width < 10 {
		width = 10
	}
	events := r.Events()
	horizon := 0.0
	type key struct {
		run  string
		inst int
	}
	perInst := make(map[key][]Event)
	var order []key
	for _, ev := range events {
		if ev.T > horizon {
			horizon = ev.T
		}
		if ev.Instance < 0 {
			continue
		}
		k := key{ev.Run, ev.Instance}
		if _, ok := perInst[k]; !ok {
			order = append(order, k)
		}
		perInst[k] = append(perInst[k], ev)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].run != order[j].run {
			return order[i].run < order[j].run
		}
		return order[i].inst < order[j].inst
	})
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry timeline: %.1f virtual hours, %d events, one column = %.2fh\n",
		horizon/3600, len(events), horizon/3600/float64(width))
	fmt.Fprintf(&b, "glyphs: B boot  X crash  F restart-fail  M mutation  S saturation  s sync  . sample\n")
	lastRun := "\x00"
	for _, k := range order {
		if k.run != lastRun {
			if k.run != "" {
				fmt.Fprintf(&b, "run %s:\n", k.run)
			}
			lastRun = k.run
		}
		strip := []byte(strings.Repeat(" ", width))
		prio := make([]int, width)
		syncs, muts, crashes := 0, 0, 0
		for _, ev := range perInst[k] {
			switch ev.Type {
			case EvSync:
				syncs++
			case EvMutation:
				muts++
			case EvCrash:
				crashes++
			}
			gl, ok := glyphs[ev.Type]
			if !ok {
				continue
			}
			col := 0
			if horizon > 0 {
				col = int(ev.T / horizon * float64(width-1))
			}
			if col >= 0 && col < width && gl.prio > prio[col] {
				strip[col] = gl.g
				prio[col] = gl.prio
			}
		}
		fmt.Fprintf(&b, "  inst %d |%s| %d syncs, %d mutations, %d crashes\n",
			k.inst, string(strip), syncs, muts, crashes)
	}
	if c := r.Counters(); len(c) > 0 {
		fmt.Fprintf(&b, "counters: %s\n", c.String())
	}
	return b.String()
}
