package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
)

// Config tunes the coordinator's failure detection. The zero value gets
// sensible defaults; the campaign semantics (and hence the Result) do
// not depend on any of these — they only decide how fast a dead worker
// is noticed.
type Config struct {
	// RPCTimeout bounds every request/response exchange, including the
	// execution of a whole lease batch worker-side (default 30s).
	RPCTimeout time.Duration
	// HeartbeatInterval is how often idle workers are pinged
	// (default 2s). Zero keeps the default; negative disables
	// heartbeats (useful for deterministic tests).
	HeartbeatInterval time.Duration
	// PingRetries is how many extra pings a silent worker gets, with
	// jittered exponential backoff between attempts, before it is
	// declared dead (default 3).
	PingRetries int
}

func (c *Config) setDefaults() {
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.PingRetries == 0 {
		c.PingRetries = 3
	}
}

var errWorkerDead = errors.New("dist: worker is dead")

// errPaused is fill's signal that the caller's context fired while a
// lease reply was pending. The reply channel is buffered, so the
// dispatcher is never blocked by the abandoned wait; the reply is
// consumed by the next Advance (or by the checkpoint drain).
var errPaused = errors.New("dist: advance interrupted")

// workerConn is the coordinator's view of one connected worker. The
// connection mutex serializes RPCs; the heartbeat goroutine uses
// TryLock so it never queues behind (or splices frames into) an
// in-flight campaign RPC — a pending reply already proves liveness.
type workerConn struct {
	id   int
	name string
	conn net.Conn
	br   *bufio.Reader
	fw   frameWriter // reusable frame scratch, guarded by mu

	mu        sync.Mutex
	dead      atomic.Bool
	lastReply atomic.Int64 // unix nanos of the last frame received
	execs     atomic.Int64 // cumulative execs across this worker's instances
	syncBytes atomic.Int64 // cumulative sync payload bytes shipped
}

// rpc performs one request/response exchange under the per-RPC
// deadline. Stale Pongs (late heartbeat replies) are skipped: Pongs are
// empty and interchangeable, so dropping one loses nothing. Any framing
// or deadline error kills the connection — a partially read frame
// cannot be resynchronized.
func (wc *workerConn) rpc(typ byte, payload []byte, want byte, timeout time.Duration) ([]byte, error) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.rpcLocked(typ, payload, want, timeout)
}

func (wc *workerConn) rpcLocked(typ byte, payload []byte, want byte, timeout time.Duration) ([]byte, error) {
	if wc.dead.Load() {
		return nil, errWorkerDead
	}
	wc.conn.SetDeadline(time.Now().Add(timeout))
	defer wc.conn.SetDeadline(time.Time{})
	if err := wc.fw.write(wc.conn, typ, payload); err != nil {
		wc.dead.Store(true)
		return nil, err
	}
	for {
		rtyp, rp, err := readFrame(wc.br)
		if err != nil {
			wc.dead.Store(true)
			return nil, err
		}
		wc.lastReply.Store(time.Now().UnixNano())
		if rtyp == msgPong && want != msgPong {
			continue
		}
		if rtyp == msgError {
			return nil, fmt.Errorf("dist: worker %q: %s", wc.name, rp)
		}
		if rtyp != want {
			wc.dead.Store(true)
			return nil, fmt.Errorf("dist: worker %q: got message %d, want %d", wc.name, rtyp, want)
		}
		return rp, nil
	}
}

// WorkerStatus is a point-in-time snapshot of one worker, for the
// monitor bridge.
type WorkerStatus struct {
	Name      string
	Alive     bool
	Execs     int64
	SyncBytes int64
	LastReply time.Time
}

// An Observer receives dist-layer operational callbacks. Like Stats it
// lives outside the telemetry counter map — wire timings and byte
// counts must never leak into campaign artifacts. The zero Observer is
// a no-op.
type Observer struct {
	// Lease fires after every successful lease round-trip with the
	// replayable record count, request/reply payload sizes, and the
	// wall-clock round-trip time. Called from per-worker dispatcher
	// goroutines; implementations must be safe for concurrent use.
	Lease func(instance, records, reqBytes, repBytes int, seconds float64, syncDue bool)
	// Death fires when the campaign loop declares a worker dead, once
	// per worker per campaign (after the Stats/telemetry accounting).
	Death func(worker string)
}

// Stats aggregates the distributed-run bookkeeping that exists only in
// dist (lease traffic, failures). It deliberately lives outside the
// telemetry counter map: byte counts depend on wire encoding, and
// folding them into counters would break the byte-identity guarantee
// against in-process runs.
type Stats struct {
	// SyncBytes is the total lease traffic: request plus reply payload
	// bytes across every lease RPC (the campaign's entire steady-state
	// wire volume — seeds out, step records back).
	SyncBytes     int64
	WorkerDeaths  int
	Reassignments int
}

// A Coordinator owns the global half of one distributed campaign: the
// scheduling plan, the virtual-clock event loop, the union coverage
// map, the series, the ledger, and telemetry. Workers own the
// instances. For the same subject, options, and seed, Run produces a
// Result byte-identical to parallel.Run's.
//
// The campaign lifecycle is decomposed so a scheduler can multiplex
// many campaigns over one pool and survive restarts:
//
//	Start    plan, assign, boot, dispatch the first leases
//	Advance  replay the event loop up to a virtual-clock bound
//	Checkpoint / Restore   serialize between Advance slices
//	Finish   collect per-instance results, seal the Result
//	Close    join dispatchers, release or shut down the fleet
//
// Run composes them for the classic single-campaign shape.
type Coordinator struct {
	sub       subject.Subject
	opts      parallel.Options
	cfg       Config
	pool      *Pool
	ownPool   bool
	partition *Partition
	campaign  uint32

	syncBytes     atomic.Int64
	workerDeaths  atomic.Int64
	reassignments atomic.Int64

	dispWG sync.WaitGroup

	st *runState
	// tracer is the campaign tracer (nil when tracing is off): worker
	// span records from lease replies are ingested into it under
	// per-worker process lanes.
	tracer *trace.Tracer
	obs    Observer
	// deathCounted dedups worker-death accounting per campaign (the
	// replay loop may notice the same dead worker many times; a shared
	// pool may have many campaigns each noticing it once).
	deathCounted map[*workerConn]bool
	endRun       func()
	instSpans    []*trace.Span
	watermark    float64
	lastSample   float64
	minSampleGap float64
	cancelled    bool
	finished     bool
	closed       bool
}

// NewCoordinator prepares a standalone coordinator for one campaign of
// sub under opts, with a private worker pool. Workers attach via
// AddConn before Run is called.
func NewCoordinator(sub subject.Subject, opts parallel.Options, cfg Config) *Coordinator {
	cfg.setDefaults()
	return &Coordinator{
		sub:          sub,
		opts:         opts,
		cfg:          cfg,
		pool:         NewPool(cfg),
		ownPool:      true,
		deathCounted: make(map[*workerConn]bool),
	}
}

// NewCoordinatorOn prepares a coordinator that shares an existing
// worker pool with other campaigns. The pool outlives the campaign:
// Close releases this campaign's instances (msgRelease) but leaves the
// connections and heartbeats to the pool's owner.
func NewCoordinatorOn(pool *Pool, sub subject.Subject, opts parallel.Options) *Coordinator {
	return &Coordinator{
		sub:          sub,
		opts:         opts,
		cfg:          pool.cfg,
		pool:         pool,
		campaign:     pool.NextCampaignID(),
		deathCounted: make(map[*workerConn]bool),
	}
}

// AddConn registers a freshly accepted worker connection on the
// coordinator's private pool.
func (c *Coordinator) AddConn(conn net.Conn) error { return c.pool.AddConn(conn) }

// Workers snapshots every registered worker for the monitor bridge.
func (c *Coordinator) Workers() []WorkerStatus { return c.pool.Workers() }

// SetObserver installs obs. Call before Start or Restore; the campaign
// never mutates it afterwards.
func (c *Coordinator) SetObserver(obs Observer) { c.obs = obs }

// SetPartition restricts the campaign to a leased partition of the
// shared pool: Start/Restore capture the partition's live members as
// the worker set instead of the whole pool, so concurrent campaigns
// on disjoint partitions never touch each other's connections. Call
// before Start or Restore. The caller keeps ownership of the
// partition (Close does not Release it).
func (c *Coordinator) SetPartition(pt *Partition) { c.partition = pt }

// workerSet captures the campaign's workers: the partition's live
// members when one is set, otherwise the whole pool.
func (c *Coordinator) workerSet() ([]*workerConn, error) {
	if c.partition != nil {
		workers := c.partition.live()
		if len(workers) == 0 {
			return nil, errors.New("dist: partition has no live workers")
		}
		return workers, nil
	}
	workers := c.pool.snapshot()
	if len(workers) == 0 {
		return nil, errors.New("dist: no workers connected")
	}
	return workers, nil
}

// Stats reports the dist-only bookkeeping. Safe to call concurrently
// with Run.
func (c *Coordinator) Stats() Stats {
	return Stats{
		SyncBytes:     c.syncBytes.Load(),
		WorkerDeaths:  int(c.workerDeaths.Load()),
		Reassignments: int(c.reassignments.Load()),
	}
}

// alive returns the live worker whose id is at or after from, wrapping
// around; nil when every worker is dead.
func (c *Coordinator) alive(from int) *workerConn {
	workers := c.st.workers
	n := len(workers)
	for k := 0; k < n; k++ {
		wc := workers[(from+k)%n]
		if !wc.dead.Load() {
			return wc
		}
	}
	return nil
}

// leaseJournal is one dispatched lease, remembered so Restore can
// replay the instance's exact post-boot history: re-sending the same
// boundaries and seed imports to a freshly booted instance reconstructs
// the engine, corpus, RNG, and saturation state deterministically.
type leaseJournal struct {
	Boundary float64
	Seeds    []fuzz.Seed
}

// runState is the coordinator-owned per-instance campaign state — the
// exact fields the in-process event loop keeps on its Instance structs,
// plus the replay bookkeeping the lease protocol needs: a corpus mirror
// per instance (so sync exports are computed locally at the exact
// event-loop position, without a wire round-trip) and the in-flight
// lease batches being replayed.
type runState struct {
	host       *parallel.Host
	opts       parallel.Options
	specs      []parallel.InstanceSpec
	workers    []*workerConn // pool snapshot taken at Start/Restore
	owner      []*workerConn
	clock      []float64
	nextSync   []float64
	crashes    []int
	muts       []int
	execs      []int // replayed steps since (re)boot — the engine's Execs counter
	curCov     []int // instance's own edge count at the replay position
	curConfig  []string
	startEdges []int
	// mirror replays each instance's corpus: Add on every new-edges
	// record, plus the sync imports, in the same order the worker-side
	// engine applies them, so mirror.Export == worker ExportSeeds.
	mirror  []*fuzz.Corpus
	pending [][]fuzz.Seed // seeds collected at sync, shipped with the next lease
	// batch/pos is the lease reply currently being replayed; inflight
	// marks a dispatched lease whose reply has not been consumed.
	batch    [][]leaseRecord
	pos      []int
	inflight []bool
	replyCh  []chan leaseReply
	// jobs are the per-worker dispatcher queues; slot maps a worker to
	// its position in the workers slice (pool-global ids don't index a
	// partition subset, so both are keyed by connection).
	jobs map[*workerConn]chan leaseJob
	slot map[*workerConn]int
	// journal/resumeClock record each instance's lease history since its
	// last (re)boot, for checkpoint/resume replay.
	journal     [][]leaseJournal
	resumeClock []float64
	horizon     float64
	res         *parallel.Result
	global      *coverage.Map
	tel         *telemetry.Recorder
}

// A leaseJob is one lease RPC queued on a worker's dispatcher.
type leaseJob struct {
	instance int
	payload  []byte
	ch       chan leaseReply
}

// A leaseReply is a decoded lease result (or the transport/decode
// failure that killed it).
type leaseReply struct {
	recs    []leaseRecord
	syncDue bool
	err     error
}

// dispatcher owns this campaign's lease traffic for one worker: jobs
// are executed strictly in FIFO order (wc.mu serializes the round-trips
// against heartbeats and other campaigns), so leases for different
// instances on the same worker pipeline without interleaving frames. It
// exits when jobs closes.
func (c *Coordinator) dispatcher(wc *workerConn, jobs <-chan leaseJob) {
	defer c.dispWG.Done()
	for job := range jobs {
		t0 := time.Now()
		p, err := wc.rpc(msgLease, job.payload, msgLeaseResult, c.cfg.RPCTimeout)
		if err != nil {
			job.ch <- leaseReply{err: err}
			continue
		}
		recs, syncDue, spans, workerNow, err := decodeLeaseResult(p)
		if err != nil {
			wc.dead.Store(true)
			job.ch <- leaseReply{err: err}
			continue
		}
		if len(recs) == 0 {
			// A lease always executes at least one step (the budget is
			// checked after stepping); an empty reply means the worker
			// lost its instance state.
			wc.dead.Store(true)
			job.ch <- leaseReply{err: errors.New("dist: empty lease reply")}
			continue
		}
		if len(spans) > 0 {
			// Align the worker timeline to ours: the worker's clock read
			// at encode time maps to now, so worker spans land where the
			// reply arrived (shifted late by the return wire time — a
			// bounded skew this layer cannot observe, documented in
			// DESIGN.md).
			c.tracer.IngestForeign(wc.name, c.tracer.Now()-workerNow, spans)
		}
		wc.execs.Add(int64(len(recs)))
		nb := int64(len(job.payload) + len(p))
		wc.syncBytes.Add(nb)
		c.syncBytes.Add(nb)
		if c.obs.Lease != nil {
			c.obs.Lease(job.instance, len(recs), len(job.payload), len(p), time.Since(t0).Seconds(), syncDue)
		}
		job.ch <- leaseReply{recs: recs, syncDue: syncDue}
	}
}

// dispatch hands instance i its next lease: the seeds its last sync
// collected, and a budget up to its next sync boundary or the horizon.
func (c *Coordinator) dispatch(st *runState, i int) {
	l := lease{Campaign: c.campaign, Index: i, Boundary: st.nextSync[i], Horizon: st.horizon, Seeds: st.pending[i]}
	st.journal[i] = append(st.journal[i], leaseJournal{Boundary: st.nextSync[i], Seeds: st.pending[i]})
	st.pending[i] = nil
	st.batch[i] = nil
	st.pos[i] = 0
	st.inflight[i] = true
	st.jobs[st.owner[i]] <- leaseJob{instance: i, payload: encodeLease(l), ch: st.replyCh[i]}
}

// fill consumes instance i's in-flight lease reply into its batch,
// keeping any not-yet-replayed records. A lease that fails because its
// worker died is retried whole on a surviving worker: the reply is
// all-or-nothing, so zero records were replayed and the re-booted
// instance resumes at the lease's start clock — which is exactly the
// coordinator's current clock for i. A cancelled ctx returns errPaused
// without consuming anything (the buffered reply channel means the
// dispatcher never blocks on the abandoned wait).
func (c *Coordinator) fill(ctx context.Context, st *runState, i int) error {
	if !st.inflight[i] {
		return fmt.Errorf("dist: instance %d has no lease in flight", i)
	}
	var rep leaseReply
	select {
	case rep = <-st.replyCh[i]:
	default:
		select {
		case rep = <-st.replyCh[i]:
		case <-ctx.Done():
			return errPaused
		}
	}
	st.inflight[i] = false
	if rep.err != nil {
		wc := st.owner[i]
		if !wc.dead.Load() {
			return rep.err // application error: campaign-fatal
		}
		c.markDead(wc, st.tel)
		if rerr := c.reassign(st, i); rerr != nil {
			return rerr
		}
		c.dispatch(st, i)
		return nil
	}
	if rest := st.batch[i][st.pos[i]:]; len(rest) > 0 {
		merged := make([]leaseRecord, 0, len(rest)+len(rep.recs))
		st.batch[i] = append(append(merged, rest...), rep.recs...)
	} else {
		st.batch[i] = rep.recs
	}
	st.pos[i] = 0
	return nil
}

// nextRecord returns instance i's next replay record, blocking on the
// in-flight lease reply when the current batch is exhausted.
func (c *Coordinator) nextRecord(ctx context.Context, st *runState, i int) (*leaseRecord, bool, error) {
	for st.pos[i] >= len(st.batch[i]) {
		if err := c.fill(ctx, st, i); err != nil {
			return nil, false, err
		}
	}
	rec := &st.batch[i][st.pos[i]]
	st.pos[i]++
	return rec, st.pos[i] >= len(st.batch[i]), nil
}

// markDead records a worker failure exactly once per campaign (campaign
// loop only).
func (c *Coordinator) markDead(wc *workerConn, tel *telemetry.Recorder) {
	wc.dead.Store(true)
	if !c.deathCounted[wc] {
		c.deathCounted[wc] = true
		c.workerDeaths.Add(1)
		tel.Count(telemetry.CtrWorkerDeaths, 1)
		if c.obs.Death != nil {
			c.obs.Death(wc.name)
		}
	}
}

// bootOn boots instance i on wc (resuming at resumeClock), replays the
// startup crash records into the ledger, and merges the startup
// coverage delta into the global map.
func (c *Coordinator) bootOn(wc *workerConn, st *runState, i int, resumeClock float64) error {
	p, err := wc.rpc(msgBoot, encodeBootReq(bootReq{Campaign: c.campaign, Index: i, ResumeClock: resumeClock}), msgBootResult, c.cfg.RPCTimeout)
	if err != nil {
		return err
	}
	br, err := decodeBootResult(p)
	if err != nil {
		wc.dead.Store(true)
		return err
	}
	for _, cr := range br.Crashes {
		crash := cr.Crash
		st.res.Bugs.Record(&crash, cr.Instance, cr.T, cr.Config)
	}
	if br.Err != "" {
		return errors.New(br.Err)
	}
	if _, err := st.global.ApplyDelta(br.Delta); err != nil {
		wc.dead.Store(true)
		return err
	}
	st.owner[i] = wc
	st.curConfig[i] = br.Config
	st.startEdges[i] = br.StartEdges
	st.curCov[i] = br.StartEdges
	return nil
}

// bootQuiet re-boots instance i on wc at resumeClock during Restore,
// discarding the startup crash records and coverage delta — the
// checkpointed ledger and global map already contain them. Only the
// owner assignment survives; config/edges bookkeeping is restored from
// the checkpoint.
func (c *Coordinator) bootQuiet(wc *workerConn, st *runState, i int, resumeClock float64) error {
	p, err := wc.rpc(msgBoot, encodeBootReq(bootReq{Campaign: c.campaign, Index: i, ResumeClock: resumeClock}), msgBootResult, c.cfg.RPCTimeout)
	if err != nil {
		return err
	}
	br, err := decodeBootResult(p)
	if err != nil {
		wc.dead.Store(true)
		return err
	}
	if br.Err != "" {
		return errors.New(br.Err)
	}
	st.owner[i] = wc
	return nil
}

// reassign moves instance i off its dead owner onto the next live
// worker, resuming at the coordinator-owned clock. The dead worker's
// corpus progress for the instance is lost — the fresh instance reboots
// from its original spec — but the global map, series, ledger, and
// schedule are coordinator-owned and survive intact.
func (c *Coordinator) reassign(st *runState, i int) error {
	for {
		wc := c.alive(st.slot[st.owner[i]] + 1)
		if wc == nil {
			return errors.New("dist: no live workers left")
		}
		c.reassignments.Add(1)
		st.tel.Count(telemetry.CtrReassignments, 1)
		err := c.bootOn(wc, st, i, st.clock[i])
		if err == nil {
			st.tel.Count(telemetry.CtrBoots, 1)
			// The fresh instance starts with an empty corpus and a zeroed
			// exec counter; the mirror must match it. The lease journal
			// restarts from this boot, too.
			st.execs[i] = 0
			st.mirror[i] = fuzz.NewCorpus(0)
			st.journal[i] = nil
			st.resumeClock[i] = st.clock[i]
			return nil
		}
		if wc.dead.Load() {
			c.markDead(wc, st.tel)
			st.owner[i] = wc // advance the search past this worker
			continue
		}
		return err // application-level boot failure: campaign-fatal, as in-process
	}
}

// rpcI sends one instance-targeted RPC, transparently reassigning the
// instance and retrying when its owner has died.
func (c *Coordinator) rpcI(st *runState, i int, typ byte, payload []byte, want byte) ([]byte, error) {
	for {
		wc := st.owner[i]
		p, err := wc.rpc(typ, payload, want, c.cfg.RPCTimeout)
		if err == nil {
			return p, nil
		}
		if !wc.dead.Load() {
			return nil, err // worker alive but request failed: not recoverable by reassignment
		}
		c.markDead(wc, st.tel)
		if rerr := c.reassign(st, i); rerr != nil {
			return nil, rerr
		}
	}
}

// Start plans the campaign, ships the plan to every worker, boots all
// instances, and dispatches the first leases. After Start the campaign
// advances via Advance; every Start must be paired with Close.
func (c *Coordinator) Start(ctx context.Context) error {
	if c.st != nil {
		return errors.New("dist: coordinator already started")
	}
	workers, err := c.workerSet()
	if err != nil {
		return err
	}
	host, err := parallel.NewHost(c.sub, c.opts)
	if err != nil {
		return err
	}
	opts := host.Opts
	info := c.sub.Info()
	tel := opts.Telemetry
	prog := opts.Progress
	if opts.Label == "" {
		opts.Label = opts.Mode.String()
	}
	prog.StartRun(opts.Label, opts.Mode.String(), info.Protocol, opts.VirtualHours*3600, opts.Instances)
	c.endRun = func() { prog.EndRun(opts.Label) }

	res := &parallel.Result{
		Mode:          opts.Mode,
		Subject:       info,
		Series:        &coverage.Series{},
		Bugs:          bugs.NewLedger(),
		ModelEntities: host.Model.Len(),
	}

	if err := ctx.Err(); err != nil {
		return err
	}

	plan := host.Plan(res.Bugs, tel, opts.Trace)
	res.RelationEdges = plan.RelationEdges
	res.Probes = plan.Probes
	res.Groups = plan.Groups

	// Ship the whole plan to every worker: each boots only the
	// instances it is told to, but holding all specs lets any worker
	// adopt a reassigned instance later. Observability sinks are
	// stripped from the wire options (workers replay into none of
	// them); the Trace flag alone asks workers to run their own tracer
	// and ship span records back for stitching.
	c.tracer = opts.Trace.Tracer()
	wireOpts := opts
	wireOpts.Telemetry = nil
	wireOpts.Trace = nil
	wireOpts.Progress = nil
	wireOpts.Label = ""
	assignPayload := encodeAssign(assign{Campaign: c.campaign, Subject: info.Protocol, Trace: opts.Trace != nil, LiveSpec: liveSpecOf(c.sub), Opts: wireOpts, Specs: plan.Specs})
	for _, wc := range workers {
		if _, err := wc.rpc(msgAssign, assignPayload, msgAssignOK, c.cfg.RPCTimeout); err != nil {
			return fmt.Errorf("dist: assign to worker %q: %w", wc.name, err)
		}
	}

	if c.ownPool {
		c.pool.StartHeartbeats()
	}

	st := c.newRunState(host, opts, plan.Specs, workers, res, coverage.NewMap(), tel)

	// Boot every instance, round-robin across workers, in instance
	// order — the same order the in-process loop boots in, so ledger
	// entries and telemetry events from startup land identically.
	c.st = st
	for i, spec := range plan.Specs {
		if err := ctx.Err(); err != nil {
			return err
		}
		wc := c.alive(i % len(workers))
		if wc == nil {
			return errors.New("dist: no live workers left")
		}
		bootSpan := opts.Trace.Child("instance.boot", trace.A("instance", spec.Index))
		st.owner[i] = wc
		if err := c.bootOn(wc, st, i, 0); err != nil {
			if wc.dead.Load() {
				c.markDead(wc, tel)
				if rerr := c.reassign(st, i); rerr != nil {
					bootSpan.End()
					return rerr
				}
			} else {
				bootSpan.End()
				return fmt.Errorf("parallel: instance %d failed to start: %w", i, err)
			}
		}
		st.nextSync[i] = opts.SyncInterval
		bootSpan.Set("edges", st.startEdges[i])
		bootSpan.End()
		tel.Emit(telemetry.Event{Type: telemetry.EvBoot, Instance: i,
			Config: st.curConfig[i], Edges: st.startEdges[i]})
		tel.Count(telemetry.CtrBoots, 1)
		if prog.Enabled() {
			prog.SetInstanceConfig(opts.Label, i, st.curConfig[i])
		}
	}

	res.Series.Observe(0, st.global.Count())
	c.lastSample = 0
	c.watermark = 0
	c.minSampleGap = opts.SampleEvery / 10

	c.startLoop(st)
	for i := range st.specs {
		c.dispatch(st, i)
	}
	return nil
}

// newRunState allocates the per-instance state vectors.
func (c *Coordinator) newRunState(host *parallel.Host, opts parallel.Options, specs []parallel.InstanceSpec,
	workers []*workerConn, res *parallel.Result, global *coverage.Map, tel *telemetry.Recorder) *runState {
	n := len(specs)
	st := &runState{
		host:        host,
		opts:        opts,
		specs:       append([]parallel.InstanceSpec(nil), specs...),
		workers:     workers,
		owner:       make([]*workerConn, n),
		clock:       make([]float64, n),
		nextSync:    make([]float64, n),
		crashes:     make([]int, n),
		muts:        make([]int, n),
		execs:       make([]int, n),
		curCov:      make([]int, n),
		curConfig:   make([]string, n),
		startEdges:  make([]int, n),
		mirror:      make([]*fuzz.Corpus, n),
		pending:     make([][]fuzz.Seed, n),
		batch:       make([][]leaseRecord, n),
		pos:         make([]int, n),
		inflight:    make([]bool, n),
		replyCh:     make([]chan leaseReply, n),
		jobs:        make(map[*workerConn]chan leaseJob, len(workers)),
		slot:        make(map[*workerConn]int, len(workers)),
		journal:     make([][]leaseJournal, n),
		resumeClock: make([]float64, n),
		horizon:     opts.VirtualHours * 3600,
		res:         res,
		global:      global,
		tel:         tel,
	}
	for i := 0; i < n; i++ {
		st.mirror[i] = fuzz.NewCorpus(0)
		st.replyCh[i] = make(chan leaseReply, 1)
	}
	for wi, wc := range workers {
		st.slot[wc] = wi
	}
	return st
}

// startLoop creates the instance trace spans and launches one
// dispatcher per worker. The dispatchers drain in Close before the
// pool (or release) tears the connections down.
func (c *Coordinator) startLoop(st *runState) {
	c.instSpans = make([]*trace.Span, len(st.specs))
	for i := range c.instSpans {
		c.instSpans[i] = st.opts.Trace.Child("instance", trace.A("index", i))
	}
	for _, wc := range st.workers {
		st.jobs[wc] = make(chan leaseJob, len(st.specs))
		c.dispWG.Add(1)
		go c.dispatcher(wc, st.jobs[wc])
	}
}

// MinClock reports the campaign's replay position: the minimum
// per-instance virtual clock. Valid after Start or Restore.
func (c *Coordinator) MinClock() float64 {
	st := c.st
	if st == nil || len(st.clock) == 0 {
		return 0
	}
	m := st.clock[0]
	for _, t := range st.clock[1:] {
		if t < m {
			m = t
		}
	}
	return m
}

// Horizon reports the campaign's virtual end time.
func (c *Coordinator) Horizon() float64 {
	if c.st == nil {
		return c.opts.VirtualHours * 3600
	}
	return c.st.horizon
}

// Progress reports the replay position, the union edge count, and the
// replayed exec total — the fleet scheduler's reward signal.
func (c *Coordinator) Progress() (clock float64, edges, execs int) {
	st := c.st
	if st == nil {
		return 0, 0, 0
	}
	total := 0
	for _, e := range st.execs {
		total += e
	}
	return c.MinClock(), st.global.Count(), total
}

// Recorder returns the campaign's telemetry recorder (the restored one
// after Restore). Artifact writers use it after Finish.
func (c *Coordinator) Recorder() *telemetry.Recorder {
	if c.st == nil {
		return c.opts.Telemetry
	}
	return c.st.tel
}

// Advance replays the distributed event loop until every instance's
// virtual clock reaches min(until, horizon), dispatching fresh leases
// as batches drain. It mirrors parallel.Run's loop statement for
// statement — the replay is slicing-invariant, so any sequence of
// Advance calls produces the same artifacts as one uninterrupted run.
// A cancelled ctx returns ctx.Err() with the replay position intact;
// the in-flight leases stay pending and the next Advance (or a
// Checkpoint drain) consumes them.
func (c *Coordinator) Advance(ctx context.Context, until float64) error {
	st := c.st
	if st == nil {
		return errors.New("dist: coordinator not started")
	}
	if c.finished || c.closed {
		return errors.New("dist: campaign already finished")
	}
	opts := st.opts
	tel := st.tel
	prog := opts.Progress
	res := st.res
	n := len(st.specs)
	horizon := st.horizon
	if until > horizon {
		until = horizon
	}

	// The replay event loop. It is parallel.Run's loop statement for
	// statement, with the engine step replaced by the next lease record:
	// records arrive batched per instance but are consumed in global
	// (clock, index) min-scan order — the heap order the in-process loop
	// steps in — so every ledger entry, telemetry event, series sample,
	// and counter lands identically.
	for {
		i := 0
		for j := 1; j < n; j++ {
			if st.clock[j] < st.clock[i] {
				i = j
			}
		}
		if st.clock[i] >= until {
			break
		}
		select {
		case <-ctx.Done():
			c.cancelled = true
		default:
		}
		if c.cancelled {
			break
		}

		rec, lastOfBatch, err := c.nextRecord(ctx, st, i)
		if err != nil {
			if errors.Is(err, errPaused) {
				c.cancelled = true
				break
			}
			return err
		}
		st.execs[i]++
		st.clock[i] += opts.StepCost + opts.ByteCost*float64(rec.bytes)

		if rec.crash != nil {
			st.crashes[i]++
			isNew := res.Bugs.Record(rec.crash, i, st.clock[i], st.curConfig[i])
			tel.Emit(telemetry.Event{T: st.clock[i], Type: telemetry.EvCrash, Instance: i,
				Crash: rec.crash.ID(), New: isNew, Config: st.curConfig[i]})
			tel.Count(telemetry.CtrCrashes, 1)
			if isNew {
				tel.Count(telemetry.CtrCrashesUnique, 1)
			}
		}
		if rec.newEdges > 0 {
			if _, err := st.global.ApplyDelta(rec.delta); err != nil {
				return fmt.Errorf("dist: coverage delta from worker %q: %w", st.owner[i].name, err)
			}
			// The instance's own map grew by exactly newEdges, and its
			// corpus gained the seed; replay both into the mirrors.
			st.curCov[i] += rec.newEdges
			st.mirror[i].Add(rec.seed)
		}
		if st.clock[i] > c.watermark {
			c.watermark = st.clock[i]
		}
		if c.watermark-c.lastSample >= opts.SampleEvery ||
			(rec.newEdges > 0 && c.watermark-c.lastSample >= c.minSampleGap) {
			res.Series.Observe(c.watermark, st.global.Count())
			c.lastSample = c.watermark
			tel.Emit(telemetry.Event{T: c.watermark, Type: telemetry.EvSample, Instance: i,
				Edges: st.global.Count()})
			tel.Count(telemetry.CtrSamples, 1)
			prog.SetUnion(opts.Label, c.watermark, st.global.Count())
		}
		if prog.Enabled() {
			prog.StepInstance(opts.Label, i, st.clock[i],
				st.curCov[i], st.execs[i], st.crashes[i], st.muts[i], st.mirror[i].Len())
		}

		// Seed synchronization, replayed from the corpus mirrors: export
		// from every other instance (in index order, exactly as the
		// in-process loop iterates) at this exact event-loop position.
		// The collected seeds merge into i's mirror now — matching the
		// in-process ImportSeeds — and ship to i's engine with its next
		// lease; i does not step again before that lease, so the
		// deferred wire import is invisible.
		if st.clock[i] >= st.nextSync[i] {
			sync := c.instSpans[i].Child("sync")
			var all []fuzz.Seed
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				all = append(all, st.mirror[j].Export(4)...)
			}
			for _, s := range all {
				st.mirror[i].Add(s)
			}
			st.pending[i] = all
			skipped := 0
			for st.nextSync[i] += opts.SyncInterval; st.nextSync[i] <= st.clock[i]; st.nextSync[i] += opts.SyncInterval {
				skipped++
			}
			tel.Emit(telemetry.Event{T: st.clock[i], Type: telemetry.EvSync, Instance: i,
				Seeds: len(all), Skipped: skipped})
			tel.Count(telemetry.CtrSyncs, 1)
			if skipped > 0 {
				tel.Count(telemetry.CtrSyncSkipped, skipped)
			}
			sync.Set("seeds", len(all))
			sync.End()
		}

		// Saturation fired worker-side inside the lease; replay its
		// telemetry, ledger records, and counters here, in the same
		// order the in-process loop emits them (after sync). Mutation
		// commutes with sync — mutation touches the rng, target, and
		// engine map; sync touches only corpora — so the worker running
		// the mutation before the coordinator replays the sync does not
		// reorder any observable effect.
		if rec.satFired {
			tel.Emit(telemetry.Event{T: st.clock[i], Type: telemetry.EvSaturation, Instance: i,
				Edges: st.curCov[i]})
			tel.Count(telemetry.CtrSaturations, 1)
			if m := rec.mutation; m != nil {
				mut := c.instSpans[i].Child("config.mutate")
				for _, cr := range m.Crashes {
					crash := cr.Crash
					res.Bugs.Record(&crash, cr.Instance, cr.T, cr.Config)
				}
				st.muts[i] += m.Outcome.Mutations
				parallel.EmitMutation(tel, i, st.clock[i], m.Outcome)
				if m.Outcome.Restarted && prog.Enabled() {
					prog.SetInstanceConfig(opts.Label, i, rec.config)
				}
				mut.End()
			}
			st.curConfig[i] = rec.config
			// A restart absorbed fresh startup coverage into the
			// instance's map; resync the replayed edge count to the
			// post-absorb value the worker reported.
			st.curCov[i] = rec.coverage
		}

		// Batch exhausted: hand the instance its next lease, unless it
		// just ran out the campaign horizon. A horizon-crossing sync
		// skips its import-only lease — the in-process loop does import
		// there, but the instance never steps again, so the corpus
		// difference is invisible in every artifact.
		if lastOfBatch && st.clock[i] < horizon {
			c.dispatch(st, i)
		}
	}

	if c.cancelled {
		return ctx.Err()
	}
	return nil
}

// drainInflight blocks until no instance has a lease reply pending,
// folding the drained records into the per-instance batches for the
// next Advance to replay. Checkpoint requires this quiescent state.
func (c *Coordinator) drainInflight() error {
	st := c.st
	for i := range st.inflight {
		for st.inflight[i] {
			if err := c.fill(context.Background(), st, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Finish observes the final series sample, collects every instance's
// result from its worker, and seals the Result. After a cancelled
// Advance it finalizes the partial campaign exactly as parallel.Run
// does.
func (c *Coordinator) Finish(ctx context.Context) (*parallel.Result, error) {
	st := c.st
	if st == nil {
		return nil, errors.New("dist: coordinator not started")
	}
	if c.finished {
		return nil, errors.New("dist: campaign already finished")
	}
	opts := st.opts
	res := st.res
	finalT := st.horizon
	if c.cancelled {
		finalT = c.watermark
	}
	res.Series.Observe(finalT, st.global.Count())
	res.FinalBranches = st.global.Count()
	opts.Progress.SetUnion(opts.Label, finalT, st.global.Count())
	for i := range st.specs {
		p, err := c.rpcI(st, i, msgFinalize, encodeIndexReq(indexReq{Campaign: c.campaign, Index: i}), msgInstanceResult)
		if err != nil {
			return nil, err
		}
		ir, err := decodeInstanceResult(p)
		if err != nil {
			return nil, err
		}
		res.TotalExecs += ir.Execs
		c.instSpans[i].Set("edges", ir.FinalBranches)
		c.instSpans[i].Set("execs", ir.Execs)
		c.instSpans[i].End()
		res.Instances = append(res.Instances, ir)
	}
	res.Counters = st.tel.Counters()
	c.finished = true
	return res, nil
}

// Close tears the campaign down: the dispatcher goroutines are joined
// (no goroutine outlives Close, even after a mid-lease cancellation),
// the progress run ends, and the fleet is released — a standalone
// coordinator shuts its private pool down; a shared-pool campaign sends
// a best-effort Release so workers retire its instances while other
// campaigns keep running. Idempotent.
func (c *Coordinator) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.st != nil {
		for _, jobs := range c.st.jobs {
			close(jobs)
		}
		c.dispWG.Wait()
	}
	if c.endRun != nil {
		c.endRun()
	}
	if c.ownPool {
		c.pool.Close()
		return
	}
	if c.st != nil {
		payload := encodeRelease(c.campaign)
		for _, wc := range c.st.workers {
			if wc.dead.Load() {
				continue
			}
			wc.rpc(msgRelease, payload, msgReleaseOK, c.cfg.RPCTimeout)
		}
	}
}

// Run executes the whole distributed campaign: Start, Advance to the
// horizon, Finish, Close. See the package comment for the byte-identity
// argument.
func (c *Coordinator) Run(ctx context.Context) (*parallel.Result, error) {
	defer c.Close()
	if err := c.Start(ctx); err != nil {
		return nil, err
	}
	if err := c.Advance(ctx, c.st.horizon); err != nil && !c.cancelled {
		return nil, err
	}
	res, err := c.Finish(ctx)
	if err != nil {
		return nil, err
	}
	if c.cancelled {
		return res, ctx.Err()
	}
	return res, nil
}
