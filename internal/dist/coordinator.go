package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
)

// Config tunes the coordinator's failure detection. The zero value gets
// sensible defaults; the campaign semantics (and hence the Result) do
// not depend on any of these — they only decide how fast a dead worker
// is noticed.
type Config struct {
	// RPCTimeout bounds every request/response exchange, including the
	// execution of a whole lease batch worker-side (default 30s).
	RPCTimeout time.Duration
	// HeartbeatInterval is how often idle workers are pinged
	// (default 2s). Zero keeps the default; negative disables
	// heartbeats (useful for deterministic tests).
	HeartbeatInterval time.Duration
	// PingRetries is how many extra pings a silent worker gets, with
	// jittered exponential backoff between attempts, before it is
	// declared dead (default 3).
	PingRetries int
}

func (c *Config) setDefaults() {
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.PingRetries == 0 {
		c.PingRetries = 3
	}
}

var errWorkerDead = errors.New("dist: worker is dead")

// workerConn is the coordinator's view of one connected worker. The
// connection mutex serializes RPCs; the heartbeat goroutine uses
// TryLock so it never queues behind (or splices frames into) an
// in-flight campaign RPC — a pending reply already proves liveness.
type workerConn struct {
	id   int
	name string
	conn net.Conn
	br   *bufio.Reader
	fw   frameWriter // reusable frame scratch, guarded by mu

	mu        sync.Mutex
	dead      atomic.Bool
	lastReply atomic.Int64 // unix nanos of the last frame received
	execs     atomic.Int64 // cumulative execs across this worker's instances
	syncBytes atomic.Int64 // cumulative sync payload bytes shipped

	// deathCounted is touched only from the campaign loop, so telemetry
	// and Stats see exactly one death per worker without locking.
	deathCounted bool
}

// rpc performs one request/response exchange under the per-RPC
// deadline. Stale Pongs (late heartbeat replies) are skipped: Pongs are
// empty and interchangeable, so dropping one loses nothing. Any framing
// or deadline error kills the connection — a partially read frame
// cannot be resynchronized.
func (wc *workerConn) rpc(typ byte, payload []byte, want byte, timeout time.Duration) ([]byte, error) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.rpcLocked(typ, payload, want, timeout)
}

func (wc *workerConn) rpcLocked(typ byte, payload []byte, want byte, timeout time.Duration) ([]byte, error) {
	if wc.dead.Load() {
		return nil, errWorkerDead
	}
	wc.conn.SetDeadline(time.Now().Add(timeout))
	defer wc.conn.SetDeadline(time.Time{})
	if err := wc.fw.write(wc.conn, typ, payload); err != nil {
		wc.dead.Store(true)
		return nil, err
	}
	for {
		rtyp, rp, err := readFrame(wc.br)
		if err != nil {
			wc.dead.Store(true)
			return nil, err
		}
		wc.lastReply.Store(time.Now().UnixNano())
		if rtyp == msgPong && want != msgPong {
			continue
		}
		if rtyp == msgError {
			return nil, fmt.Errorf("dist: worker %q: %s", wc.name, rp)
		}
		if rtyp != want {
			wc.dead.Store(true)
			return nil, fmt.Errorf("dist: worker %q: got message %d, want %d", wc.name, rtyp, want)
		}
		return rp, nil
	}
}

// WorkerStatus is a point-in-time snapshot of one worker, for the
// monitor bridge.
type WorkerStatus struct {
	Name      string
	Alive     bool
	Execs     int64
	SyncBytes int64
	LastReply time.Time
}

// Stats aggregates the distributed-run bookkeeping that exists only in
// dist (lease traffic, failures). It deliberately lives outside the
// telemetry counter map: byte counts depend on wire encoding, and
// folding them into counters would break the byte-identity guarantee
// against in-process runs.
type Stats struct {
	// SyncBytes is the total lease traffic: request plus reply payload
	// bytes across every lease RPC (the campaign's entire steady-state
	// wire volume — seeds out, step records back).
	SyncBytes     int64
	WorkerDeaths  int
	Reassignments int
}

// A Coordinator owns the global half of a distributed campaign: the
// scheduling plan, the virtual-clock event loop, the union coverage
// map, the series, the ledger, and telemetry. Workers own the
// instances. For the same subject, options, and seed, Run produces a
// Result byte-identical to parallel.Run's.
type Coordinator struct {
	sub  subject.Subject
	opts parallel.Options
	cfg  Config

	workers []*workerConn

	syncBytes     atomic.Int64
	workerDeaths  atomic.Int64
	reassignments atomic.Int64

	stopHeartbeat chan struct{}
	hbWG          sync.WaitGroup
	dispWG        sync.WaitGroup
}

// NewCoordinator prepares a coordinator for one campaign of sub under
// opts. Workers attach via AddConn before Run is called.
func NewCoordinator(sub subject.Subject, opts parallel.Options, cfg Config) *Coordinator {
	cfg.setDefaults()
	return &Coordinator{sub: sub, opts: opts, cfg: cfg, stopHeartbeat: make(chan struct{})}
}

// AddConn performs the Hello/Welcome handshake on a freshly accepted
// worker connection and registers the worker. The worker speaks first,
// so with synchronous transports (net.Pipe) the worker's Serve loop
// must already be running.
func (c *Coordinator) AddConn(conn net.Conn) error {
	conn.SetDeadline(time.Now().Add(c.cfg.RPCTimeout))
	defer conn.SetDeadline(time.Time{})
	br := bufio.NewReaderSize(conn, 64<<10)
	typ, payload, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("dist: worker handshake: %w", err)
	}
	if typ != msgHello {
		return fmt.Errorf("dist: worker handshake: got message %d, want Hello", typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if h.Version != protocolVersion {
		writeFrame(conn, msgError, []byte("protocol version mismatch"))
		return fmt.Errorf("dist: worker %q speaks protocol %d, want %d", h.Name, h.Version, protocolVersion)
	}
	if err := writeFrame(conn, msgWelcome, nil); err != nil {
		return err
	}
	wc := &workerConn{id: len(c.workers), name: h.Name, conn: conn, br: br}
	wc.lastReply.Store(time.Now().UnixNano())
	c.workers = append(c.workers, wc)
	return nil
}

// Workers snapshots every registered worker for the monitor bridge.
func (c *Coordinator) Workers() []WorkerStatus {
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, wc := range c.workers {
		out = append(out, WorkerStatus{
			Name:      wc.name,
			Alive:     !wc.dead.Load(),
			Execs:     wc.execs.Load(),
			SyncBytes: wc.syncBytes.Load(),
			LastReply: time.Unix(0, wc.lastReply.Load()),
		})
	}
	return out
}

// Stats reports the dist-only bookkeeping. Safe to call concurrently
// with Run.
func (c *Coordinator) Stats() Stats {
	return Stats{
		SyncBytes:     c.syncBytes.Load(),
		WorkerDeaths:  int(c.workerDeaths.Load()),
		Reassignments: int(c.reassignments.Load()),
	}
}

// heartbeat pings wc until the campaign ends or the worker dies. A
// silent worker gets cfg.PingRetries extra attempts with jittered
// exponential backoff before being declared dead; a worker with a
// campaign RPC in flight is skipped (TryLock), since the pending reply
// already proves the connection is live.
func (c *Coordinator) heartbeat(wc *workerConn) {
	defer c.hbWG.Done()
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	rng := rand.New(rand.NewSource(int64(wc.id)*2654435761 + 1))
	for {
		select {
		case <-c.stopHeartbeat:
			return
		case <-ticker.C:
		}
		if wc.dead.Load() {
			return
		}
		if !wc.mu.TryLock() {
			continue
		}
		var err error
		backoff := 100 * time.Millisecond
		for attempt := 0; attempt <= c.cfg.PingRetries; attempt++ {
			_, err = wc.rpcLocked(msgPing, nil, msgPong, c.cfg.RPCTimeout)
			if err == nil || wc.dead.Load() {
				break
			}
			time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
			backoff *= 2
		}
		wc.mu.Unlock()
		if err != nil {
			wc.dead.Store(true)
			return
		}
	}
}

// alive returns the live worker whose id is at or after from, wrapping
// around; nil when every worker is dead.
func (c *Coordinator) alive(from int) *workerConn {
	n := len(c.workers)
	for k := 0; k < n; k++ {
		wc := c.workers[(from+k)%n]
		if !wc.dead.Load() {
			return wc
		}
	}
	return nil
}

// runState is the coordinator-owned per-instance campaign state — the
// exact fields the in-process event loop keeps on its Instance structs,
// plus the replay bookkeeping the lease protocol needs: a corpus mirror
// per instance (so sync exports are computed locally at the exact
// event-loop position, without a wire round-trip) and the in-flight
// lease batches being replayed.
type runState struct {
	host       *parallel.Host
	opts       parallel.Options
	specs      []parallel.InstanceSpec
	owner      []*workerConn
	clock      []float64
	nextSync   []float64
	crashes    []int
	muts       []int
	execs      []int // replayed steps since (re)boot — the engine's Execs counter
	curCov     []int // instance's own edge count at the replay position
	curConfig  []string
	startEdges []int
	// mirror replays each instance's corpus: Add on every new-edges
	// record, plus the sync imports, in the same order the worker-side
	// engine applies them, so mirror.Export == worker ExportSeeds.
	mirror  []*fuzz.Corpus
	pending [][]fuzz.Seed // seeds collected at sync, shipped with the next lease
	// batch/pos is the lease reply currently being replayed; inflight
	// marks a dispatched lease whose reply has not been consumed.
	batch    [][]leaseRecord
	pos      []int
	inflight []bool
	replyCh  []chan leaseReply
	jobs     []chan leaseJob // per-worker dispatcher queues, indexed by worker id
	horizon  float64
	res      *parallel.Result
	global   *coverage.Map
	tel      *telemetry.Recorder
}

// A leaseJob is one lease RPC queued on a worker's dispatcher.
type leaseJob struct {
	payload []byte
	ch      chan leaseReply
}

// A leaseReply is a decoded lease result (or the transport/decode
// failure that killed it).
type leaseReply struct {
	recs    []leaseRecord
	syncDue bool
	err     error
}

// dispatcher owns the lease traffic for one worker: jobs are executed
// strictly in FIFO order (wc.mu serializes the round-trips against
// heartbeats), so leases for different instances on the same worker
// pipeline without interleaving frames. It exits when jobs closes.
func (c *Coordinator) dispatcher(wc *workerConn, jobs <-chan leaseJob) {
	defer c.dispWG.Done()
	for job := range jobs {
		p, err := wc.rpc(msgLease, job.payload, msgLeaseResult, c.cfg.RPCTimeout)
		if err != nil {
			job.ch <- leaseReply{err: err}
			continue
		}
		recs, syncDue, err := decodeLeaseResult(p)
		if err != nil {
			wc.dead.Store(true)
			job.ch <- leaseReply{err: err}
			continue
		}
		if len(recs) == 0 {
			// A lease always executes at least one step (the budget is
			// checked after stepping); an empty reply means the worker
			// lost its instance state.
			wc.dead.Store(true)
			job.ch <- leaseReply{err: errors.New("dist: empty lease reply")}
			continue
		}
		wc.execs.Add(int64(len(recs)))
		nb := int64(len(job.payload) + len(p))
		wc.syncBytes.Add(nb)
		c.syncBytes.Add(nb)
		job.ch <- leaseReply{recs: recs, syncDue: syncDue}
	}
}

// dispatch hands instance i its next lease: the seeds its last sync
// collected, and a budget up to its next sync boundary or the horizon.
func (c *Coordinator) dispatch(st *runState, i int) {
	l := lease{Index: i, Boundary: st.nextSync[i], Horizon: st.horizon, Seeds: st.pending[i]}
	st.pending[i] = nil
	st.batch[i] = nil
	st.pos[i] = 0
	st.inflight[i] = true
	st.jobs[st.owner[i].id] <- leaseJob{payload: encodeLease(l), ch: st.replyCh[i]}
}

// nextRecord returns instance i's next replay record, blocking on the
// in-flight lease reply when the current batch is exhausted. A lease
// that fails because its worker died is retried whole on a surviving
// worker: the reply is all-or-nothing, so zero records were replayed
// and the re-booted instance resumes at the lease's start clock — which
// is exactly the coordinator's current clock for i.
func (c *Coordinator) nextRecord(st *runState, i int) (*leaseRecord, bool, error) {
	for st.pos[i] >= len(st.batch[i]) {
		if !st.inflight[i] {
			return nil, false, fmt.Errorf("dist: instance %d has no lease in flight", i)
		}
		rep := <-st.replyCh[i]
		st.inflight[i] = false
		if rep.err != nil {
			wc := st.owner[i]
			if !wc.dead.Load() {
				return nil, false, rep.err // application error: campaign-fatal
			}
			c.markDead(wc, st.tel)
			if rerr := c.reassign(st, i); rerr != nil {
				return nil, false, rerr
			}
			c.dispatch(st, i)
			continue
		}
		st.batch[i] = rep.recs
		st.pos[i] = 0
	}
	rec := &st.batch[i][st.pos[i]]
	st.pos[i]++
	return rec, st.pos[i] >= len(st.batch[i]), nil
}

// markDead records a worker failure exactly once (campaign loop only).
func (c *Coordinator) markDead(wc *workerConn, tel *telemetry.Recorder) {
	wc.dead.Store(true)
	if !wc.deathCounted {
		wc.deathCounted = true
		c.workerDeaths.Add(1)
		tel.Count(telemetry.CtrWorkerDeaths, 1)
	}
}

// bootOn boots instance i on wc (resuming at resumeClock), replays the
// startup crash records into the ledger, and merges the startup
// coverage delta into the global map.
func (c *Coordinator) bootOn(wc *workerConn, st *runState, i int, resumeClock float64) error {
	p, err := wc.rpc(msgBoot, encodeBootReq(bootReq{Index: i, ResumeClock: resumeClock}), msgBootResult, c.cfg.RPCTimeout)
	if err != nil {
		return err
	}
	br, err := decodeBootResult(p)
	if err != nil {
		wc.dead.Store(true)
		return err
	}
	for _, cr := range br.Crashes {
		crash := cr.Crash
		st.res.Bugs.Record(&crash, cr.Instance, cr.T, cr.Config)
	}
	if br.Err != "" {
		return errors.New(br.Err)
	}
	if _, err := st.global.ApplyDelta(br.Delta); err != nil {
		wc.dead.Store(true)
		return err
	}
	st.owner[i] = wc
	st.curConfig[i] = br.Config
	st.startEdges[i] = br.StartEdges
	st.curCov[i] = br.StartEdges
	return nil
}

// reassign moves instance i off its dead owner onto the next live
// worker, resuming at the coordinator-owned clock. The dead worker's
// corpus progress for the instance is lost — the fresh instance reboots
// from its original spec — but the global map, series, ledger, and
// schedule are coordinator-owned and survive intact.
func (c *Coordinator) reassign(st *runState, i int) error {
	for {
		wc := c.alive(st.owner[i].id + 1)
		if wc == nil {
			return errors.New("dist: no live workers left")
		}
		c.reassignments.Add(1)
		st.tel.Count(telemetry.CtrReassignments, 1)
		err := c.bootOn(wc, st, i, st.clock[i])
		if err == nil {
			st.tel.Count(telemetry.CtrBoots, 1)
			// The fresh instance starts with an empty corpus and a zeroed
			// exec counter; the mirror must match it.
			st.execs[i] = 0
			st.mirror[i] = fuzz.NewCorpus(0)
			return nil
		}
		if wc.dead.Load() {
			c.markDead(wc, st.tel)
			st.owner[i] = wc // advance the search past this worker
			continue
		}
		return err // application-level boot failure: campaign-fatal, as in-process
	}
}

// rpcI sends one instance-targeted RPC, transparently reassigning the
// instance and retrying when its owner has died.
func (c *Coordinator) rpcI(st *runState, i int, typ byte, payload []byte, want byte) ([]byte, error) {
	for {
		wc := st.owner[i]
		p, err := wc.rpc(typ, payload, want, c.cfg.RPCTimeout)
		if err == nil {
			return p, nil
		}
		if !wc.dead.Load() {
			return nil, err // worker alive but request failed: not recoverable by reassignment
		}
		c.markDead(wc, st.tel)
		if rerr := c.reassign(st, i); rerr != nil {
			return nil, rerr
		}
	}
}

// Run executes the distributed campaign. It mirrors parallel.Run's
// event loop statement for statement; the only difference is that step,
// sync-export/import, and finalize execute on workers via RPC. See the
// package comment for the byte-identity argument.
func (c *Coordinator) Run(ctx context.Context) (*parallel.Result, error) {
	if len(c.workers) == 0 {
		return nil, errors.New("dist: no workers connected")
	}
	// Every return path must release the fleet: stop heartbeats, send a
	// best-effort Shutdown to live workers, and close the connections.
	defer func() {
		close(c.stopHeartbeat)
		c.hbWG.Wait()
		for _, wc := range c.workers {
			if !wc.dead.Load() {
				wc.mu.Lock()
				wc.fw.write(wc.conn, msgShutdown, nil)
				wc.mu.Unlock()
			}
			wc.conn.Close()
		}
	}()
	host, err := parallel.NewHost(c.sub, c.opts)
	if err != nil {
		return nil, err
	}
	opts := host.Opts
	info := c.sub.Info()
	tel := opts.Telemetry
	prog := opts.Progress
	if opts.Label == "" {
		opts.Label = opts.Mode.String()
	}
	prog.StartRun(opts.Label, opts.Mode.String(), info.Protocol, opts.VirtualHours*3600, opts.Instances)
	defer prog.EndRun(opts.Label)

	res := &parallel.Result{
		Mode:          opts.Mode,
		Subject:       info,
		Series:        &coverage.Series{},
		Bugs:          bugs.NewLedger(),
		ModelEntities: host.Model.Len(),
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	plan := host.Plan(res.Bugs, tel, opts.Trace)
	res.RelationEdges = plan.RelationEdges
	res.Probes = plan.Probes
	res.Groups = plan.Groups

	// Ship the whole plan to every worker: each boots only the
	// instances it is told to, but holding all specs lets any worker
	// adopt a reassigned instance later.
	wireOpts := opts
	wireOpts.Telemetry = nil
	wireOpts.Trace = nil
	wireOpts.Progress = nil
	wireOpts.Label = ""
	assignPayload := encodeAssign(assign{Subject: info.Protocol, Opts: wireOpts, Specs: plan.Specs})
	for _, wc := range c.workers {
		if _, err := wc.rpc(msgAssign, assignPayload, msgAssignOK, c.cfg.RPCTimeout); err != nil {
			return nil, fmt.Errorf("dist: assign to worker %q: %w", wc.name, err)
		}
	}

	if c.cfg.HeartbeatInterval > 0 {
		for _, wc := range c.workers {
			c.hbWG.Add(1)
			go c.heartbeat(wc)
		}
	}

	n := len(plan.Specs)
	st := &runState{
		host:       host,
		opts:       opts,
		specs:      append([]parallel.InstanceSpec(nil), plan.Specs...),
		owner:      make([]*workerConn, n),
		clock:      make([]float64, n),
		nextSync:   make([]float64, n),
		crashes:    make([]int, n),
		muts:       make([]int, n),
		execs:      make([]int, n),
		curCov:     make([]int, n),
		curConfig:  make([]string, n),
		startEdges: make([]int, n),
		mirror:     make([]*fuzz.Corpus, n),
		pending:    make([][]fuzz.Seed, n),
		batch:      make([][]leaseRecord, n),
		pos:        make([]int, n),
		inflight:   make([]bool, n),
		replyCh:    make([]chan leaseReply, n),
		jobs:       make([]chan leaseJob, len(c.workers)),
		horizon:    opts.VirtualHours * 3600,
		res:        res,
		global:     coverage.NewMap(),
		tel:        tel,
	}
	for i := 0; i < n; i++ {
		st.mirror[i] = fuzz.NewCorpus(0)
		st.replyCh[i] = make(chan leaseReply, 1)
	}

	// Boot every instance, round-robin across workers, in instance
	// order — the same order the in-process loop boots in, so ledger
	// entries and telemetry events from startup land identically.
	for i, spec := range plan.Specs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wc := c.alive(i % len(c.workers))
		if wc == nil {
			return nil, errors.New("dist: no live workers left")
		}
		bootSpan := opts.Trace.Child("instance.boot", trace.A("instance", spec.Index))
		st.owner[i] = wc
		if err := c.bootOn(wc, st, i, 0); err != nil {
			if wc.dead.Load() {
				c.markDead(wc, tel)
				if rerr := c.reassign(st, i); rerr != nil {
					bootSpan.End()
					return nil, rerr
				}
			} else {
				bootSpan.End()
				return nil, fmt.Errorf("parallel: instance %d failed to start: %w", i, err)
			}
		}
		st.nextSync[i] = opts.SyncInterval
		bootSpan.Set("edges", st.startEdges[i])
		bootSpan.End()
		tel.Emit(telemetry.Event{Type: telemetry.EvBoot, Instance: i,
			Config: st.curConfig[i], Edges: st.startEdges[i]})
		tel.Count(telemetry.CtrBoots, 1)
		if prog.Enabled() {
			prog.SetInstanceConfig(opts.Label, i, st.curConfig[i])
		}
	}

	horizon := st.horizon
	res.Series.Observe(0, st.global.Count())
	lastSample := 0.0
	watermark := 0.0
	minSampleGap := opts.SampleEvery / 10

	instSpans := make([]*trace.Span, n)
	for i := range instSpans {
		instSpans[i] = opts.Trace.Child("instance", trace.A("index", i))
	}

	// One dispatcher per worker owns that connection's lease traffic, so
	// leases for different instances pipeline while the event loop
	// replays earlier records. The dispatchers drain before the fleet
	// cleanup defer (registered above, so it runs after this one) sends
	// Shutdown and closes the connections.
	for wi := range c.workers {
		st.jobs[wi] = make(chan leaseJob, n)
		c.dispWG.Add(1)
		go c.dispatcher(c.workers[wi], st.jobs[wi])
	}
	defer func() {
		for _, jobs := range st.jobs {
			close(jobs)
		}
		c.dispWG.Wait()
	}()
	for i := 0; i < n; i++ {
		c.dispatch(st, i)
	}

	// The replay event loop. It is parallel.Run's loop statement for
	// statement, with the engine step replaced by the next lease record:
	// records arrive batched per instance but are consumed in global
	// (clock, index) min-scan order — the heap order the in-process loop
	// steps in — so every ledger entry, telemetry event, series sample,
	// and counter lands identically.
	cancelled := false
	for {
		i := 0
		for j := 1; j < n; j++ {
			if st.clock[j] < st.clock[i] {
				i = j
			}
		}
		if st.clock[i] >= horizon {
			break
		}
		select {
		case <-ctx.Done():
			cancelled = true
		default:
		}
		if cancelled {
			break
		}

		rec, lastOfBatch, err := c.nextRecord(st, i)
		if err != nil {
			return nil, err
		}
		st.execs[i]++
		st.clock[i] += opts.StepCost + opts.ByteCost*float64(rec.bytes)

		if rec.crash != nil {
			st.crashes[i]++
			isNew := res.Bugs.Record(rec.crash, i, st.clock[i], st.curConfig[i])
			tel.Emit(telemetry.Event{T: st.clock[i], Type: telemetry.EvCrash, Instance: i,
				Crash: rec.crash.ID(), New: isNew, Config: st.curConfig[i]})
			tel.Count(telemetry.CtrCrashes, 1)
			if isNew {
				tel.Count(telemetry.CtrCrashesUnique, 1)
			}
		}
		if rec.newEdges > 0 {
			if _, err := st.global.ApplyDelta(rec.delta); err != nil {
				return nil, fmt.Errorf("dist: coverage delta from worker %q: %w", st.owner[i].name, err)
			}
			// The instance's own map grew by exactly newEdges, and its
			// corpus gained the seed; replay both into the mirrors.
			st.curCov[i] += rec.newEdges
			st.mirror[i].Add(rec.seed)
		}
		if st.clock[i] > watermark {
			watermark = st.clock[i]
		}
		if watermark-lastSample >= opts.SampleEvery ||
			(rec.newEdges > 0 && watermark-lastSample >= minSampleGap) {
			res.Series.Observe(watermark, st.global.Count())
			lastSample = watermark
			tel.Emit(telemetry.Event{T: watermark, Type: telemetry.EvSample, Instance: i,
				Edges: st.global.Count()})
			tel.Count(telemetry.CtrSamples, 1)
			prog.SetUnion(opts.Label, watermark, st.global.Count())
		}
		if prog.Enabled() {
			prog.StepInstance(opts.Label, i, st.clock[i],
				st.curCov[i], st.execs[i], st.crashes[i], st.muts[i], st.mirror[i].Len())
		}

		// Seed synchronization, replayed from the corpus mirrors: export
		// from every other instance (in index order, exactly as the
		// in-process loop iterates) at this exact event-loop position.
		// The collected seeds merge into i's mirror now — matching the
		// in-process ImportSeeds — and ship to i's engine with its next
		// lease; i does not step again before that lease, so the
		// deferred wire import is invisible.
		if st.clock[i] >= st.nextSync[i] {
			sync := instSpans[i].Child("sync")
			var all []fuzz.Seed
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				all = append(all, st.mirror[j].Export(4)...)
			}
			for _, s := range all {
				st.mirror[i].Add(s)
			}
			st.pending[i] = all
			skipped := 0
			for st.nextSync[i] += opts.SyncInterval; st.nextSync[i] <= st.clock[i]; st.nextSync[i] += opts.SyncInterval {
				skipped++
			}
			tel.Emit(telemetry.Event{T: st.clock[i], Type: telemetry.EvSync, Instance: i,
				Seeds: len(all), Skipped: skipped})
			tel.Count(telemetry.CtrSyncs, 1)
			if skipped > 0 {
				tel.Count(telemetry.CtrSyncSkipped, skipped)
			}
			sync.Set("seeds", len(all))
			sync.End()
		}

		// Saturation fired worker-side inside the lease; replay its
		// telemetry, ledger records, and counters here, in the same
		// order the in-process loop emits them (after sync). Mutation
		// commutes with sync — mutation touches the rng, target, and
		// engine map; sync touches only corpora — so the worker running
		// the mutation before the coordinator replays the sync does not
		// reorder any observable effect.
		if rec.satFired {
			tel.Emit(telemetry.Event{T: st.clock[i], Type: telemetry.EvSaturation, Instance: i,
				Edges: st.curCov[i]})
			tel.Count(telemetry.CtrSaturations, 1)
			if m := rec.mutation; m != nil {
				mut := instSpans[i].Child("config.mutate")
				for _, cr := range m.Crashes {
					crash := cr.Crash
					res.Bugs.Record(&crash, cr.Instance, cr.T, cr.Config)
				}
				st.muts[i] += m.Outcome.Mutations
				parallel.EmitMutation(tel, i, st.clock[i], m.Outcome)
				if m.Outcome.Restarted && prog.Enabled() {
					prog.SetInstanceConfig(opts.Label, i, rec.config)
				}
				mut.End()
			}
			st.curConfig[i] = rec.config
			// A restart absorbed fresh startup coverage into the
			// instance's map; resync the replayed edge count to the
			// post-absorb value the worker reported.
			st.curCov[i] = rec.coverage
		}

		// Batch exhausted: hand the instance its next lease, unless it
		// just ran out the campaign horizon. A horizon-crossing sync
		// skips its import-only lease — the in-process loop does import
		// there, but the instance never steps again, so the corpus
		// difference is invisible in every artifact.
		if lastOfBatch && st.clock[i] < horizon {
			c.dispatch(st, i)
		}
	}

	finalT := horizon
	if cancelled {
		finalT = watermark
	}
	res.Series.Observe(finalT, st.global.Count())
	res.FinalBranches = st.global.Count()
	prog.SetUnion(opts.Label, finalT, st.global.Count())
	for i := 0; i < n; i++ {
		p, err := c.rpcI(st, i, msgFinalize, encodeIndexReq(indexReq{Index: i}), msgInstanceResult)
		if err != nil {
			return nil, err
		}
		ir, err := decodeInstanceResult(p)
		if err != nil {
			return nil, err
		}
		res.TotalExecs += ir.Execs
		instSpans[i].Set("edges", ir.FinalBranches)
		instSpans[i].Set("execs", ir.Execs)
		instSpans[i].End()
		res.Instances = append(res.Instances, ir)
	}
	res.Counters = tel.Counters()
	if cancelled {
		return res, ctx.Err()
	}
	return res, nil
}
