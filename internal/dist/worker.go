package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"syscall"
	"time"

	"cmfuzz/internal/coverage"
	"cmfuzz/internal/live"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry/trace"
	"cmfuzz/internal/wire"
)

// WorkerConfig parameterizes a worker node.
type WorkerConfig struct {
	// Name identifies the worker in coordinator logs and metrics.
	Name string
	// Resolve maps the subject name carried in the Assign message to a
	// local subject implementation. Both sides must resolve the same
	// name to behaviorally identical subjects or determinism is lost.
	Resolve func(name string) (subject.Subject, error)
}

// A Worker owns whole campaign instances — engine, booted target,
// mutation RNG, saturation tracker — and executes RPCs from the
// coordinator. It runs the identical per-instance code the in-process
// campaign uses; only the global bookkeeping lives on the coordinator.
// Between scheduler touchpoints it executes whole leases autonomously:
// import seeds, step until the boundary, stream every record back in
// one reply.
//
// Every instance-addressed message carries a campaign id, and the
// worker keeps an independent context per campaign, so one connection
// can serve many concurrent campaigns (the fleet service) — a Release
// retires one campaign's instances without disturbing the others.
type Worker struct {
	cfg      WorkerConfig
	camps    map[uint32]*workerCampaign
	fw       frameWriter // reusable frame scratch (Serve is single-threaded)
	enc      wire.Writer // reusable lease-reply encoder
	deltaBuf []byte      // reusable delta scratch; valid per step, copied into enc
}

// workerCampaign is one campaign's worker-side state: the assigned plan
// plus whatever instances this worker has booted for it.
type workerCampaign struct {
	host     *parallel.Host
	opts     parallel.Options
	specs    map[int]parallel.InstanceSpec
	insts    map[int]*parallel.Instance
	reported map[int]*repState // coverage already flushed to the coordinator
	// tracer collects this campaign's lease spans when the Assign asked
	// for tracing (nil otherwise). Per campaign, not per worker, so one
	// connection hosting many fleet campaigns never mixes their spans.
	// Serve is single-threaded, so every span is ended before the
	// reply's DrainRecords and the drain is always complete.
	tracer *trace.Tracer
}

func (wc *workerCampaign) closeInstances() {
	for _, in := range wc.insts {
		in.Close()
	}
	wc.insts = map[int]*parallel.Instance{}
}

// repState tracks what coverage an instance has already shipped. The
// mirror map stays equal to the engine map between new-edges steps, so
// a step's delta normally needs to visit only the words that step's
// trace touched; fullScan flags the one exception — a mutation restart
// absorbed startup coverage outside any step, so the next delta must
// diff the whole engine map again.
type repState struct {
	m        *coverage.Map
	fullScan bool
}

// NewWorker returns a worker ready to Serve a coordinator connection.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg}
}

// isDisconnect reports whether err is one of the shapes an abrupt peer
// disconnect takes: clean EOF, EOF mid-frame (coordinator died between
// header and payload), or local/remote teardown of the socket. A worker
// that outlives its coordinator should exit cleanly, not with a
// confusing transport error after a healthy campaign.
func isDisconnect(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	// Pre-go1.16 teardown surfaces as a bare *net.OpError string.
	return strings.Contains(err.Error(), "use of closed network connection")
}

// Serve runs the worker protocol over conn until the coordinator sends
// Shutdown or the connection drops. It sends the Hello immediately, so
// the coordinator's accept path can complete the handshake. Abrupt
// disconnects (coordinator death, conn teardown) exit cleanly after
// instances are closed.
func (w *Worker) Serve(conn net.Conn) error {
	defer conn.Close()
	defer w.closeInstances()
	if err := w.fw.write(conn, msgHello, encodeHello(hello{Name: w.cfg.Name, Version: protocolVersion})); err != nil {
		if isDisconnect(err) {
			return nil
		}
		return err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	typ, _, err := readFrame(br)
	if err != nil {
		if isDisconnect(err) {
			return nil
		}
		return err
	}
	if typ != msgWelcome {
		return fmt.Errorf("dist: worker handshake: got message %d, want Welcome", typ)
	}
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			if isDisconnect(err) {
				return nil
			}
			return err
		}
		if typ == msgShutdown {
			return nil
		}
		rtyp, reply, herr := w.handle(typ, payload)
		if herr != nil {
			// Report the failure; the coordinator decides whether the
			// campaign survives. The protocol stream stays aligned
			// because every request still gets exactly one reply.
			if werr := w.fw.write(conn, msgError, []byte(herr.Error())); werr != nil {
				if isDisconnect(werr) {
					return nil
				}
				return werr
			}
			continue
		}
		if err := w.fw.write(conn, rtyp, reply); err != nil {
			if isDisconnect(err) {
				return nil
			}
			return err
		}
	}
}

func (w *Worker) closeInstances() {
	for _, wc := range w.camps {
		wc.closeInstances()
	}
}

func (w *Worker) campaign(id uint32) *workerCampaign {
	if w.camps == nil {
		return nil
	}
	return w.camps[id]
}

func (w *Worker) handle(typ byte, payload []byte) (byte, []byte, error) {
	switch typ {
	case msgPing:
		return msgPong, nil, nil

	case msgAssign:
		a, err := decodeAssign(payload)
		if err != nil {
			return 0, nil, err
		}
		var sub subject.Subject
		if a.LiveSpec != "" {
			// Live target: the spec travels inline, so any worker can
			// spawn and drive the external server locally.
			sub, err = live.SubjectFromJSON(a.LiveSpec)
			if err != nil {
				return 0, nil, fmt.Errorf("dist: live spec: %w", err)
			}
		} else {
			if w.cfg.Resolve == nil {
				return 0, nil, errors.New("dist: worker has no subject resolver")
			}
			sub, err = w.cfg.Resolve(a.Subject)
			if err != nil {
				return 0, nil, fmt.Errorf("dist: resolve subject %q: %w", a.Subject, err)
			}
		}
		host, err := parallel.NewHost(sub, a.Opts)
		if err != nil {
			return 0, nil, err
		}
		// A re-Assign of the same campaign replaces its instance map;
		// close what the previous assignment booted first or its live
		// targets leak. Other campaigns on the connection are untouched.
		if prev := w.campaign(a.Campaign); prev != nil {
			prev.closeInstances()
		}
		if w.camps == nil {
			w.camps = make(map[uint32]*workerCampaign)
		}
		wc := &workerCampaign{
			host:     host,
			opts:     host.Opts,
			specs:    make(map[int]parallel.InstanceSpec, len(a.Specs)),
			insts:    make(map[int]*parallel.Instance),
			reported: make(map[int]*repState),
		}
		if a.Trace {
			wc.tracer = trace.New()
		}
		for _, s := range a.Specs {
			wc.specs[s.Index] = s
		}
		w.camps[a.Campaign] = wc
		return msgAssignOK, nil, nil

	case msgRelease:
		id, err := decodeRelease(payload)
		if err != nil {
			return 0, nil, err
		}
		// Releasing an unknown campaign is fine: release is idempotent
		// and the coordinator sends it best-effort during teardown.
		if wc := w.campaign(id); wc != nil {
			wc.closeInstances()
			delete(w.camps, id)
		}
		return msgReleaseOK, nil, nil

	case msgBoot:
		b, err := decodeBootReq(payload)
		if err != nil {
			return 0, nil, err
		}
		wc := w.campaign(b.Campaign)
		if wc == nil {
			return 0, nil, fmt.Errorf("dist: boot for unassigned campaign %d", b.Campaign)
		}
		spec, ok := wc.specs[b.Index]
		if !ok {
			return 0, nil, fmt.Errorf("dist: boot for unassigned instance %d", b.Index)
		}
		sink := &parallel.RecordingSink{}
		in, err := wc.host.Boot(spec, sink)
		if err != nil {
			return msgBootResult, encodeBootResult(bootResult{Err: err.Error(), Crashes: sink.Recs}), nil
		}
		in.SetClock(b.ResumeClock)
		wc.insts[b.Index] = in
		// The boot delta carries the full startup map (delta against
		// nothing); from here on only new words travel.
		delta := coverage.EncodeDelta(in.CoverageMap(), nil)
		rep := coverage.NewMap()
		rep.Union(in.CoverageMap())
		wc.reported[b.Index] = &repState{m: rep}
		return msgBootResult, encodeBootResult(bootResult{
			Config:     in.ConfigString(),
			StartEdges: in.StartupEdges(),
			Delta:      delta,
			Crashes:    sink.Recs,
		}), nil

	case msgLease:
		decStart := time.Now()
		l, err := decodeLease(payload)
		if err != nil {
			return 0, nil, err
		}
		wc := w.campaign(l.Campaign)
		if wc == nil {
			return 0, nil, fmt.Errorf("dist: lease for unassigned campaign %d", l.Campaign)
		}
		in := wc.insts[l.Index]
		if in == nil {
			return 0, nil, fmt.Errorf("dist: lease for unbooted instance %d", l.Index)
		}
		// Worker-side lease spans (no-ops when tracing is off): the root
		// covers the whole handler, with decode backfilled via Complete
		// since it ran before the root could open.
		tr := wc.tracer
		root := tr.Start("lease", trace.A("instance", l.Index))
		now := tr.Now()
		root.Complete("lease.decode", now-time.Since(decStart), now, trace.A("bytes", len(payload)))
		if len(l.Seeds) > 0 {
			absorb := root.Child("corpus.absorb", trace.A("seeds", len(l.Seeds)))
			in.ImportSeeds(l.Seeds)
			absorb.End()
		}
		rep := wc.reported[l.Index]
		w.enc.Reset()
		// afterStep fires before any mutation absorbs restart coverage,
		// which is where the in-process loop unions into the global map
		// — the delta must be snapshotted there, so a restart's startup
		// coverage rides the NEXT new-edges delta exactly as it does
		// in-process. Normally rep.m equals the engine map going into
		// the step, so the delta lives entirely in words the step's own
		// trace touched and the encoder can skip the full-map scan; a
		// preceding restart breaks that equality and forces one full
		// diff (the fullScan flag, set when a saturation event fires).
		afterStep := func(rec *parallel.LeaseStep) {
			if rec.NewEdges > 0 {
				em := in.CoverageMap()
				touched := in.TraceMap()
				if rep.fullScan {
					touched = nil
					rep.fullScan = false
				}
				w.deltaBuf = coverage.AppendDelta(w.deltaBuf[:0], em, rep.m, touched)
				rec.Delta = w.deltaBuf
				rep.m.ApplyDelta(rec.Delta)
			}
		}
		records := 0
		afterRecord := func(rec *parallel.LeaseStep) {
			if rec.SatFired {
				rep.fullScan = true
			}
			records++
			appendLeaseStep(&w.enc, rec)
		}
		steps := root.Child("lease.steps")
		syncDue := in.StepN(l.Boundary, l.Horizon, afterStep, afterRecord)
		steps.Set("records", records)
		steps.End()
		encStart := tr.Now()
		w.enc.U8(leaseEnd)
		putBool(&w.enc, syncDue)
		root.Complete("lease.encode", encStart, tr.Now())
		root.End()
		// The span section rides after the terminator: everything above
		// has ended, so the drain is complete and the reply carries this
		// lease's whole span tree (plus the worker clock for alignment).
		putSpanRecords(&w.enc, tr.DrainRecords(), tr.Now())
		return msgLeaseResult, w.enc.Bytes(), nil

	case msgFinalize:
		f, err := decodeIndexReq(payload)
		if err != nil {
			return 0, nil, err
		}
		wc := w.campaign(f.Campaign)
		if wc == nil {
			return 0, nil, fmt.Errorf("dist: finalize for unassigned campaign %d", f.Campaign)
		}
		in := wc.insts[f.Index]
		if in == nil {
			return 0, nil, fmt.Errorf("dist: finalize for unbooted instance %d", f.Index)
		}
		return msgInstanceResult, encodeInstanceResult(in.Result()), nil

	default:
		return 0, nil, fmt.Errorf("dist: unexpected message type %d", typ)
	}
}

// Dial connects to a coordinator at addr, retrying with jittered
// exponential backoff: each failed attempt doubles the base delay (50ms
// up to 5s) and adds up to 100% jitter, so a fleet of workers restarted
// together does not stampede the coordinator.
func Dial(addr string, attempts int, seed int64) (net.Conn, error) {
	if attempts <= 0 {
		attempts = 1
	}
	rng := rand.New(rand.NewSource(seed))
	backoff := 50 * time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if i == attempts-1 {
			break
		}
		time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
	return nil, fmt.Errorf("dist: dial %s after %d attempts: %w", addr, attempts, lastErr)
}
