package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/subject"
)

// bufferSink is the worker-side CrashSink: it buffers crash records so
// they can ride back to the coordinator in the next reply and be
// replayed into the authoritative ledger in event-loop order.
type bufferSink struct{ recs []crashRec }

func (b *bufferSink) Record(c *bugs.Crash, instance int, t float64, config string) bool {
	b.recs = append(b.recs, crashRec{Crash: *c, Instance: instance, T: t, Config: config})
	return true
}

// WorkerConfig parameterizes a worker node.
type WorkerConfig struct {
	// Name identifies the worker in coordinator logs and metrics.
	Name string
	// Resolve maps the subject name carried in the Assign message to a
	// local subject implementation. Both sides must resolve the same
	// name to behaviorally identical subjects or determinism is lost.
	Resolve func(name string) (subject.Subject, error)
}

// A Worker owns whole campaign instances — engine, booted target,
// mutation RNG, saturation tracker — and executes RPCs from the
// coordinator. It runs the identical per-instance code the in-process
// campaign uses; only the global bookkeeping lives on the coordinator.
type Worker struct {
	cfg      WorkerConfig
	host     *parallel.Host
	opts     parallel.Options
	specs    map[int]parallel.InstanceSpec
	insts    map[int]*parallel.Instance
	reported map[int]*coverage.Map // coverage already flushed to the coordinator
}

// NewWorker returns a worker ready to Serve a coordinator connection.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg}
}

// Serve runs the worker protocol over conn until the coordinator sends
// Shutdown or the connection drops. It sends the Hello immediately, so
// the coordinator's accept path can complete the handshake.
func (w *Worker) Serve(conn net.Conn) error {
	defer conn.Close()
	defer w.closeInstances()
	if err := writeFrame(conn, msgHello, encodeHello(hello{Name: w.cfg.Name, Version: protocolVersion})); err != nil {
		return err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	typ, _, err := readFrame(br)
	if err != nil {
		return err
	}
	if typ != msgWelcome {
		return fmt.Errorf("dist: worker handshake: got message %d, want Welcome", typ)
	}
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if typ == msgShutdown {
			return nil
		}
		rtyp, reply, herr := w.handle(typ, payload)
		if herr != nil {
			// Report the failure; the coordinator decides whether the
			// campaign survives. The protocol stream stays aligned
			// because every request still gets exactly one reply.
			if werr := writeFrame(conn, msgError, []byte(herr.Error())); werr != nil {
				return werr
			}
			continue
		}
		if err := writeFrame(conn, rtyp, reply); err != nil {
			return err
		}
	}
}

func (w *Worker) closeInstances() {
	for _, in := range w.insts {
		in.Close()
	}
}

func (w *Worker) handle(typ byte, payload []byte) (byte, []byte, error) {
	switch typ {
	case msgPing:
		return msgPong, nil, nil

	case msgAssign:
		a, err := decodeAssign(payload)
		if err != nil {
			return 0, nil, err
		}
		if w.cfg.Resolve == nil {
			return 0, nil, errors.New("dist: worker has no subject resolver")
		}
		sub, err := w.cfg.Resolve(a.Subject)
		if err != nil {
			return 0, nil, fmt.Errorf("dist: resolve subject %q: %w", a.Subject, err)
		}
		host, err := parallel.NewHost(sub, a.Opts)
		if err != nil {
			return 0, nil, err
		}
		w.host = host
		w.opts = host.Opts
		w.specs = make(map[int]parallel.InstanceSpec, len(a.Specs))
		for _, s := range a.Specs {
			w.specs[s.Index] = s
		}
		w.insts = make(map[int]*parallel.Instance)
		w.reported = make(map[int]*coverage.Map)
		return msgAssignOK, nil, nil

	case msgBoot:
		b, err := decodeBootReq(payload)
		if err != nil {
			return 0, nil, err
		}
		spec, ok := w.specs[b.Index]
		if !ok || w.host == nil {
			return 0, nil, fmt.Errorf("dist: boot for unassigned instance %d", b.Index)
		}
		sink := &bufferSink{}
		in, err := w.host.Boot(spec, sink)
		if err != nil {
			return msgBootResult, encodeBootResult(bootResult{Err: err.Error(), Crashes: sink.recs}), nil
		}
		in.SetClock(b.ResumeClock)
		w.insts[b.Index] = in
		// The boot delta carries the full startup map (delta against
		// nothing); from here on only new words travel.
		delta := coverage.EncodeDelta(in.CoverageMap(), nil)
		rep := coverage.NewMap()
		rep.Union(in.CoverageMap())
		w.reported[b.Index] = rep
		return msgBootResult, encodeBootResult(bootResult{
			Config:     in.ConfigString(),
			StartEdges: in.StartupEdges(),
			Delta:      delta,
			Crashes:    sink.recs,
		}), nil

	case msgStep:
		s, err := decodeStepReq(payload)
		if err != nil {
			return 0, nil, err
		}
		in := w.insts[s.Index]
		if in == nil {
			return 0, nil, fmt.Errorf("dist: step for unbooted instance %d", s.Index)
		}
		return msgStepResult, encodeStepResult(w.step(in, s.Index)), nil

	case msgExport:
		e, err := decodeExportReq(payload)
		if err != nil {
			return 0, nil, err
		}
		in := w.insts[e.Index]
		if in == nil {
			return 0, nil, fmt.Errorf("dist: export for unbooted instance %d", e.Index)
		}
		return msgSeeds, encodeSeeds(in.ExportSeeds(e.Max)), nil

	case msgImport:
		i, err := decodeImportReq(payload)
		if err != nil {
			return 0, nil, err
		}
		in := w.insts[i.Index]
		if in == nil {
			return 0, nil, fmt.Errorf("dist: import for unbooted instance %d", i.Index)
		}
		in.ImportSeeds(i.Seeds)
		return msgImportOK, nil, nil

	case msgFinalize:
		f, err := decodeStepReq(payload) // same shape: one index
		if err != nil {
			return 0, nil, err
		}
		in := w.insts[f.Index]
		if in == nil {
			return 0, nil, fmt.Errorf("dist: finalize for unbooted instance %d", f.Index)
		}
		return msgInstanceResult, encodeInstanceResult(in.Result()), nil

	default:
		return 0, nil, fmt.Errorf("dist: unexpected message type %d", typ)
	}
}

// step runs one engine step plus — exactly as the in-process event loop
// would after the step — the saturation observation and any resulting
// configuration mutation. The saturation check and mutation commute with
// the coordinator's seed sync (sync touches only corpora; mutation
// touches only this instance's rng, target, and engine map), so folding
// them into the step reply preserves byte identity while halving the
// RPCs per iteration.
func (w *Worker) step(in *parallel.Instance, index int) stepResult {
	step := in.Step()
	r := stepResult{Bytes: step.Bytes, NewEdges: step.NewEdges, Crash: step.Crash}
	if step.NewEdges > 0 {
		em := in.CoverageMap()
		r.Delta = coverage.EncodeDelta(em, w.reported[index])
		w.reported[index].Union(em)
	}
	st := in.Stats()
	r.Execs = st.Execs
	r.Corpus = st.CorpusSize
	r.Coverage = in.Coverage()
	if w.opts.Mode == parallel.ModeCMFuzz && !w.opts.DisableConfigMutation {
		if in.ObserveSaturation() {
			r.SatFired = true
			r.SatEdges = in.Coverage()
			sink := &bufferSink{}
			out := in.Mutate(sink)
			r.Mutation = &mutation{Outcome: out, Crashes: sink.recs}
			in.ResetSaturation()
		}
	}
	r.Config = in.ConfigString()
	return r
}

// Dial connects to a coordinator at addr, retrying with jittered
// exponential backoff: each failed attempt doubles the base delay (50ms
// up to 5s) and adds up to 100% jitter, so a fleet of workers restarted
// together does not stampede the coordinator.
func Dial(addr string, attempts int, seed int64) (net.Conn, error) {
	if attempts <= 0 {
		attempts = 1
	}
	rng := rand.New(rand.NewSource(seed))
	backoff := 50 * time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if i == attempts-1 {
			break
		}
		time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
	return nil, fmt.Errorf("dist: dial %s after %d attempts: %w", addr, attempts, lastErr)
}
