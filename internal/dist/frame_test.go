package dist

import (
	"io"
	"testing"
)

// TestWriteFrameAllocs pins the satellite fix: a warmed frameWriter
// sends frames with zero allocations, so the lease loop's frame traffic
// stays off the garbage collector entirely.
func TestWriteFrameAllocs(t *testing.T) {
	fw := &frameWriter{}
	payload := make([]byte, 4096)
	if err := fw.write(io.Discard, msgLease, payload); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		fw.write(io.Discard, msgLease, payload)
	})
	if allocs != 0 {
		t.Fatalf("frameWriter.write allocates %.1f times per frame, want 0", allocs)
	}
}

func BenchmarkWriteFrame(b *testing.B) {
	fw := &frameWriter{}
	payload := make([]byte, 4096)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload) + 5))
	for i := 0; i < b.N; i++ {
		if err := fw.write(io.Discard, msgLease, payload); err != nil {
			b.Fatal(err)
		}
	}
}
