package dist

import (
	"fmt"
	"net"
	"testing"
)

// addPipeWorker attaches one net.Pipe-backed worker to the pool and
// returns its connection record. The worker's Serve loop runs in the
// background so the Hello/Welcome handshake completes.
func addPipeWorker(t *testing.T, p *Pool, name string) *workerConn {
	t.Helper()
	cConn, wConn := net.Pipe()
	w := NewWorker(WorkerConfig{Name: name})
	go w.Serve(wConn)
	if err := p.AddConn(cConn); err != nil {
		t.Fatalf("AddConn(%s): %v", name, err)
	}
	wc := p.workers[len(p.workers)-1]
	t.Cleanup(func() { cConn.Close(); wConn.Close() })
	return wc
}

// TestPartitionAcquireRelease pins the partition-leasing contract the
// concurrent fleet scheduler depends on: deterministic attach-order
// acquisition, disjointness, short grants under pressure, exhaustion,
// release back to the free set, and dead workers never re-acquired.
func TestPartitionAcquireRelease(t *testing.T) {
	p := NewPool(Config{HeartbeatInterval: -1})
	defer p.Close()
	var ws []*workerConn
	for i := 0; i < 4; i++ {
		ws = append(ws, addPipeWorker(t, p, fmt.Sprintf("w%d", i)))
	}
	if got := p.FreeLive(); got != 4 {
		t.Fatalf("FreeLive = %d, want 4", got)
	}

	// Acquisition follows attach order and removes members from the
	// free set.
	a := p.Acquire(2)
	if a.Size() != 2 || a.workers[0] != ws[0] || a.workers[1] != ws[1] {
		t.Fatalf("first Acquire(2) = %v, want [w0 w1]", a.Names())
	}
	b := p.Acquire(2)
	if b.Size() != 2 || b.workers[0] != ws[2] || b.workers[1] != ws[3] {
		t.Fatalf("second Acquire(2) = %v, want [w2 w3]", b.Names())
	}
	if got := p.FreeLive(); got != 0 {
		t.Fatalf("FreeLive after leasing all = %d, want 0", got)
	}
	if pt := p.Acquire(1); pt != nil {
		t.Fatalf("Acquire on exhausted pool = %v, want nil", pt.Names())
	}

	// Release returns members to the free set; the next acquisition
	// reuses them, still in attach order. A short grant is returned
	// when the free set is smaller than asked.
	a.Release()
	if got := p.FreeLive(); got != 2 {
		t.Fatalf("FreeLive after release = %d, want 2", got)
	}
	c := p.Acquire(3)
	if c.Size() != 2 || c.workers[0] != ws[0] || c.workers[1] != ws[1] {
		t.Fatalf("Acquire(3) after release = %v (size %d), want short grant [w0 w1]", c.Names(), c.Size())
	}

	// A dead member shrinks the partition's live view but stays a
	// member; once released it never comes back.
	ws[0].dead.Store(true)
	if c.Size() != 2 || c.Live() != 1 {
		t.Fatalf("Size/Live after death = %d/%d, want 2/1", c.Size(), c.Live())
	}
	if names := c.Names(); len(names) != 1 || names[0] != "w1" {
		t.Fatalf("Names after death = %v, want [w1]", names)
	}
	c.Release()
	c.Release() // idempotent
	b.Release()
	if got := p.FreeLive(); got != 3 {
		t.Fatalf("FreeLive with one dead worker = %d, want 3", got)
	}
	d := p.Acquire(4)
	if d.Size() != 3 || d.workers[0] != ws[1] {
		t.Fatalf("Acquire(4) skipping the dead worker = %v, want [w1 w2 w3]", d.Names())
	}
	d.Release()
}

// TestElasticAdmission pins late-joining admission: a worker attached
// after the pool went live lands in the free set and is handed out by
// the next acquisition, and a closed pool refuses new workers.
func TestElasticAdmission(t *testing.T) {
	p := NewPool(Config{HeartbeatInterval: -1})
	addPipeWorker(t, p, "early")
	pt := p.Acquire(1)
	if pt.Size() != 1 {
		t.Fatalf("Acquire(1) = %d workers, want 1", pt.Size())
	}
	if got := p.FreeLive(); got != 0 {
		t.Fatalf("FreeLive = %d, want 0", got)
	}

	// Late joiner: admitted into the free set without disturbing the
	// existing lease.
	late := addPipeWorker(t, p, "late")
	if got := p.FreeLive(); got != 1 {
		t.Fatalf("FreeLive after late join = %d, want 1", got)
	}
	pt2 := p.Acquire(1)
	if pt2.Size() != 1 || pt2.workers[0] != late {
		t.Fatalf("Acquire after late join = %v, want [late]", pt2.Names())
	}
	pt.Release()
	pt2.Release()

	// A closed pool refuses admission instead of leaking the conn.
	p.Close()
	cConn, wConn := net.Pipe()
	w := NewWorker(WorkerConfig{Name: "too-late"})
	go w.Serve(wConn)
	if err := p.AddConn(cConn); err == nil {
		t.Fatal("AddConn on a closed pool succeeded, want error")
	}
}

// TestAcquirePreferring pins partition affinity: workers named in the
// prefer list are leased first when free, the remainder fills in
// attach order, and a fully-preferred re-grant reproduces the exact
// worker set a campaign held before releasing it.
func TestAcquirePreferring(t *testing.T) {
	p := NewPool(Config{HeartbeatInterval: -1})
	defer p.Close()
	var ws []*workerConn
	for i := 0; i < 4; i++ {
		ws = append(ws, addPipeWorker(t, p, fmt.Sprintf("w%d", i)))
	}

	// Preference jumps the attach order: w2 and w3 come first, then
	// the remainder fills from the front.
	a := p.AcquirePreferring(3, []string{"w2", "w3"})
	if a.Size() != 3 || a.workers[0] != ws[2] || a.workers[1] != ws[3] || a.workers[2] != ws[0] {
		t.Fatalf("AcquirePreferring(3, [w2 w3]) = %v, want [w2 w3 w0]", a.Names())
	}
	a.Release()

	// Release-then-reacquire with the previous names lands on the same
	// worker set even though another campaign grabbed different
	// workers in between.
	other := p.AcquirePreferring(2, nil)
	if other.workers[0] != ws[0] || other.workers[1] != ws[1] {
		t.Fatalf("plain acquire = %v, want [w0 w1]", other.Names())
	}
	b := p.AcquirePreferring(2, []string{"w2", "w3"})
	if b.Size() != 2 || b.workers[0] != ws[2] || b.workers[1] != ws[3] {
		t.Fatalf("re-grant = %v, want previous set [w2 w3]", b.Names())
	}
	other.Release()
	b.Release()

	// Preferred names that are leased or dead are skipped, not waited
	// for: the grant falls back to whatever is free.
	ws[2].dead.Store(true)
	hold := p.AcquirePreferring(1, []string{"w3"})
	if hold.workers[0] != ws[3] {
		t.Fatalf("hold = %v, want [w3]", hold.Names())
	}
	c := p.AcquirePreferring(2, []string{"w2", "w3"})
	if c.Size() != 2 || c.workers[0] != ws[0] || c.workers[1] != ws[1] {
		t.Fatalf("grant with dead+leased preferences = %v, want [w0 w1]", c.Names())
	}
	hold.Release()
	c.Release()
}
