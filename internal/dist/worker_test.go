package dist

import (
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
)

// countingSubject wraps a real subject and counts instances that are
// currently open (started and not yet closed).
type countingSubject struct {
	subject.Subject
	open atomic.Int32
}

func (s *countingSubject) NewInstance() subject.Instance {
	return &countingInstance{Instance: s.Subject.NewInstance(), open: &s.open}
}

type countingInstance struct {
	subject.Instance
	open    *atomic.Int32
	counted bool
}

func (in *countingInstance) Start(cfg map[string]string, tr *coverage.Trace) error {
	err := in.Instance.Start(cfg, tr)
	if err == nil && !in.counted {
		in.counted = true
		in.open.Add(1)
	}
	return err
}

func (in *countingInstance) Close() {
	if in.counted {
		in.counted = false
		in.open.Add(-1)
	}
	in.Instance.Close()
}

// TestReassignClosesPreviousInstances pins the msgAssign lifecycle fix:
// a second Assign must Close every instance the first campaign booted
// before replacing the instance map, or their targets leak.
func TestReassignClosesPreviousInstances(t *testing.T) {
	base, err := protocols.ByName("DNS")
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingSubject{Subject: base}
	w := NewWorker(WorkerConfig{
		Name:    "w",
		Resolve: func(string) (subject.Subject, error) { return cs, nil },
	})

	opts := parallel.Options{
		Mode: parallel.ModePeach, Instances: 2, VirtualHours: 0.1, Seed: 1, Concurrency: 1,
	}
	host, err := parallel.NewHost(cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan := host.Plan(bugs.NewLedger(), nil, nil)
	payload := encodeAssign(assign{Subject: "DNS", Opts: opts, Specs: plan.Specs})

	bootAll := func() {
		if typ, _, err := w.handle(msgAssign, payload); err != nil || typ != msgAssignOK {
			t.Fatalf("assign: type %d, err %v", typ, err)
		}
		for i := 0; i < 2; i++ {
			typ, p, err := w.handle(msgBoot, encodeBootReq(bootReq{Index: i}))
			if err != nil || typ != msgBootResult {
				t.Fatalf("boot %d: type %d, err %v", i, typ, err)
			}
			br, err := decodeBootResult(p)
			if err != nil || br.Err != "" {
				t.Fatalf("boot %d failed: %v %q", i, err, br.Err)
			}
		}
	}

	bootAll()
	if got := cs.open.Load(); got != 2 {
		t.Fatalf("open instances after first campaign = %d, want 2", got)
	}
	// Re-Assign: the two live targets from the first campaign must be
	// closed before the fresh instance map replaces them.
	bootAll()
	if got := cs.open.Load(); got != 2 {
		t.Fatalf("open instances after re-assign = %d, want 2 (previous campaign leaked)", got)
	}
	w.closeInstances()
	if got := cs.open.Load(); got != 0 {
		t.Fatalf("open instances after close = %d, want 0", got)
	}
}

// TestServeNormalizesAbruptDisconnect pins the Serve exit-path fix: a
// coordinator that vanishes — cleanly, mid-frame, or by conn teardown —
// must yield a nil Serve error, not a transport error after a healthy
// campaign.
func TestServeNormalizesAbruptDisconnect(t *testing.T) {
	cases := []struct {
		name string
		peer func(t *testing.T, conn net.Conn)
	}{
		{"clean close after welcome", func(t *testing.T, conn net.Conn) {
			if _, _, err := readFrame(conn); err != nil { // hello
				t.Error(err)
			}
			if err := writeFrame(conn, msgWelcome, nil); err != nil {
				t.Error(err)
			}
			conn.Close()
		}},
		{"mid-frame death", func(t *testing.T, conn net.Conn) {
			if _, _, err := readFrame(conn); err != nil {
				t.Error(err)
			}
			if err := writeFrame(conn, msgWelcome, nil); err != nil {
				t.Error(err)
			}
			// Three bytes of a five-byte header, then death: the worker
			// sees io.ErrUnexpectedEOF, not io.EOF.
			conn.Write([]byte{0, 0, 0})
			conn.Close()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cConn, wConn := net.Pipe()
			done := make(chan error, 1)
			w := NewWorker(WorkerConfig{Name: "w"})
			go func() { done <- w.Serve(wConn) }()
			tc.peer(t, cConn)
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("Serve returned %v, want nil", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Serve did not exit")
			}
		})
	}

	// Sanity: isDisconnect covers the error shapes the satellite names.
	for _, err := range []error{io.EOF, io.ErrUnexpectedEOF, io.ErrClosedPipe, net.ErrClosed} {
		if !isDisconnect(err) {
			t.Fatalf("isDisconnect(%v) = false", err)
		}
	}
	if isDisconnect(errInjectedDist) {
		t.Fatal("isDisconnect treats an arbitrary error as a disconnect")
	}
}

var errInjectedDist = errTest("boom")

type errTest string

func (e errTest) Error() string { return string(e) }

// TestWorkerHostsConcurrentCampaigns pins the protocol-v3 multi-campaign
// contract: one worker hosts instances from several campaigns at once,
// a Release retires exactly one campaign's instances (idempotently),
// and the surviving campaigns keep serving leases.
func TestWorkerHostsConcurrentCampaigns(t *testing.T) {
	base, err := protocols.ByName("DNS")
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingSubject{Subject: base}
	w := NewWorker(WorkerConfig{
		Name:    "w",
		Resolve: func(string) (subject.Subject, error) { return cs, nil },
	})

	opts := parallel.Options{
		Mode: parallel.ModePeach, Instances: 2, VirtualHours: 0.1, Seed: 1, Concurrency: 1,
	}
	host, err := parallel.NewHost(cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan := host.Plan(bugs.NewLedger(), nil, nil)

	for _, id := range []uint32{1, 2} {
		payload := encodeAssign(assign{Campaign: id, Subject: "DNS", Opts: opts, Specs: plan.Specs})
		if typ, _, err := w.handle(msgAssign, payload); err != nil || typ != msgAssignOK {
			t.Fatalf("assign campaign %d: type %d, err %v", id, typ, err)
		}
		for i := 0; i < 2; i++ {
			typ, p, err := w.handle(msgBoot, encodeBootReq(bootReq{Campaign: id, Index: i}))
			if err != nil || typ != msgBootResult {
				t.Fatalf("boot %d/%d: type %d, err %v", id, i, typ, err)
			}
			if br, err := decodeBootResult(p); err != nil || br.Err != "" {
				t.Fatalf("boot %d/%d failed: %v %q", id, i, err, br.Err)
			}
		}
	}
	if got := cs.open.Load(); got != 4 {
		t.Fatalf("open instances with two campaigns = %d, want 4", got)
	}

	if typ, _, err := w.handle(msgRelease, encodeRelease(1)); err != nil || typ != msgReleaseOK {
		t.Fatalf("release: type %d, err %v", typ, err)
	}
	if got := cs.open.Load(); got != 2 {
		t.Fatalf("open instances after releasing campaign 1 = %d, want 2", got)
	}
	// Campaign 2 keeps serving; campaign 1's state is gone.
	l := lease{Campaign: 2, Index: 0, Boundary: 60, Horizon: 360}
	if typ, _, err := w.handle(msgLease, encodeLease(l)); err != nil || typ != msgLeaseResult {
		t.Fatalf("lease on surviving campaign: type %d, err %v", typ, err)
	}
	if _, _, err := w.handle(msgBoot, encodeBootReq(bootReq{Campaign: 1, Index: 0})); err == nil {
		t.Fatal("boot on released campaign succeeded, want error")
	}
	// Release is idempotent.
	if typ, _, err := w.handle(msgRelease, encodeRelease(1)); err != nil || typ != msgReleaseOK {
		t.Fatalf("repeat release: type %d, err %v", typ, err)
	}

	w.closeInstances()
	if got := cs.open.Load(); got != 0 {
		t.Fatalf("open instances after close = %d, want 0", got)
	}
}
