package dist_test

import (
	"context"
	"testing"

	"cmfuzz/internal/dist"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry/trace"
)

// benchOpts is the shared workload: the same campaign the byte-identity
// tests pin, so the two benchmarks below measure transport overhead on
// provably identical work.
func benchOpts() parallel.Options {
	return parallel.Options{
		Mode:         parallel.ModeCMFuzz,
		VirtualHours: 0.5,
		Seed:         11,
		Concurrency:  1,
	}
}

// BenchmarkInProcess is the baseline: the campaign run by parallel.Run
// in one process, no wire anywhere.
func BenchmarkInProcess(b *testing.B) {
	sub := mustSubjectB(b, "DNS")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parallel.Run(context.Background(), sub, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistLoopback is the same campaign through a coordinator and
// two net.Pipe workers on the lease protocol — one RPC round-trip per
// sync interval, with every step record riding the consolidated lease
// replies. The ns/op delta against BenchmarkInProcess is the full cost
// of distribution; lease-bytes/op is the total lease traffic (seeds
// out, step records and coverage deltas back).
func BenchmarkDistLoopback(b *testing.B) {
	sub := mustSubjectB(b, "DNS")
	b.ReportAllocs()
	var leaseBytes int64
	for i := 0; i < b.N; i++ {
		_, coord, err := dist.RunLocal(context.Background(), sub, benchOpts(), 2, dist.Config{})
		if err != nil {
			b.Fatal(err)
		}
		leaseBytes = coord.Stats().SyncBytes
	}
	b.ReportMetric(float64(leaseBytes), "lease-bytes/op")
}

// BenchmarkLeaseTraceOverhead is BenchmarkDistLoopback with
// cross-process tracing on: workers record per-lease spans, ship them
// in every lease reply, and the coordinator stitches them. Compare
// ns/op against BenchmarkDistLoopback — the issue budget for the whole
// span pipeline (record, encode, decode, ingest) is under 5% of wall
// time; spans/op reports how much span traffic that bought.
func BenchmarkLeaseTraceOverhead(b *testing.B) {
	sub := mustSubjectB(b, "DNS")
	b.ReportAllocs()
	var spans int
	for i := 0; i < b.N; i++ {
		tracer := trace.New()
		root := tracer.Start("coordinator")
		opts := benchOpts()
		opts.Trace = root
		_, _, err := dist.RunLocal(context.Background(), sub, opts, 2, dist.Config{})
		if err != nil {
			b.Fatal(err)
		}
		root.End()
		spans = tracer.SpanCount()
	}
	b.ReportMetric(float64(spans), "spans/op")
}

func mustSubjectB(b *testing.B, name string) subject.Subject {
	b.Helper()
	sub, err := protocols.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return sub
}
