package dist_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"

	"cmfuzz/internal/dist"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
)

// faultConn fails every operation after `limit` successful writes,
// simulating a worker process dying mid-campaign at a deterministic
// point in the RPC sequence (net.Pipe carries no kernel buffering, so
// the failure interleaving is reproducible).
type faultConn struct {
	net.Conn
	writes int
	limit  int
}

var errInjected = errors.New("injected worker failure")

func (f *faultConn) Write(p []byte) (int, error) {
	if f.writes >= f.limit {
		return 0, errInjected
	}
	f.writes++
	return f.Conn.Write(p)
}

// TestWorkerDeathReassignsInstances kills one of two workers partway
// through a campaign and asserts the coordinator notices, re-boots the
// dead worker's instances on the survivor, counts the failure in
// telemetry and Stats, and still completes the full horizon.
func TestWorkerDeathReassignsInstances(t *testing.T) {
	sub := mustSubject(t, "DNS")
	rec := telemetry.New()
	opts := parallel.Options{
		Mode: parallel.ModeCMFuzz, VirtualHours: 0.25, Seed: 5, Concurrency: 1,
		Telemetry: rec,
	}
	resolve := func(name string) (subject.Subject, error) { return protocols.ByName(name) }

	// Heartbeats off: the death must be detected synchronously by the
	// campaign loop's own RPC failure, keeping the test deterministic.
	coord := dist.NewCoordinator(sub, opts, dist.Config{HeartbeatInterval: -1})
	serveErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		cConn, wConn := net.Pipe()
		w := dist.NewWorker(dist.WorkerConfig{Name: fmt.Sprintf("w%d", i), Resolve: resolve})
		go func() { serveErr <- w.Serve(wConn) }()
		conn := net.Conn(cConn)
		if i == 0 {
			// Enough writes to get through welcome, assign, both boots,
			// and the first lease per owned instance (6 total), then die
			// when the second round of leases is dispatched.
			conn = &faultConn{Conn: cConn, limit: 6}
		}
		if err := coord.AddConn(conn); err != nil {
			t.Fatal(err)
		}
	}

	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		<-serveErr
	}

	if len(res.Instances) != 4 {
		t.Fatalf("got %d instance results, want 4", len(res.Instances))
	}
	if res.FinalBranches == 0 || res.TotalExecs == 0 {
		t.Fatalf("campaign did not make progress: %d branches, %d execs", res.FinalBranches, res.TotalExecs)
	}
	last := res.Series.Points()[len(res.Series.Points())-1]
	if want := opts.VirtualHours * 3600; last.T < want {
		t.Fatalf("campaign stopped at %.1f virtual seconds, want %.1f", last.T, want)
	}

	st := coord.Stats()
	if st.WorkerDeaths != 1 {
		t.Fatalf("worker deaths = %d, want 1", st.WorkerDeaths)
	}
	// Worker 0 owned instances 0 and 2 (round-robin over two workers);
	// both must have been re-booted on the survivor.
	if st.Reassignments != 2 {
		t.Fatalf("reassignments = %d, want 2", st.Reassignments)
	}
	if res.Counters[telemetry.CtrWorkerDeaths] != 1 || res.Counters[telemetry.CtrReassignments] != 2 {
		t.Fatalf("telemetry counters missing the failure: %+v", res.Counters)
	}

	var alive, dead int
	for _, ws := range coord.Workers() {
		if ws.Alive {
			alive++
		} else {
			dead++
		}
	}
	if alive != 1 || dead != 1 {
		t.Fatalf("worker status: %d alive, %d dead, want 1/1", alive, dead)
	}
}

// readFaultConn fails every Read after `limit` successful ones: the
// worker accepts the lease and goes silent, so the death surfaces while
// the coordinator is waiting for a consolidated lease reply.
type readFaultConn struct {
	net.Conn
	reads int
	limit int
}

func (f *readFaultConn) Read(p []byte) (int, error) {
	if f.reads >= f.limit {
		return 0, errInjected
	}
	f.reads++
	return f.Conn.Read(p)
}

// TestWorkerDeathMidLease kills a worker between lease dispatch and
// lease reply. The reply is all-or-nothing, so zero records from the
// broken lease may be replayed: the coordinator must re-boot the
// instances at the lease's start clock on the survivor and still run
// the campaign to the horizon.
func TestWorkerDeathMidLease(t *testing.T) {
	sub := mustSubject(t, "DNS")
	rec := telemetry.New()
	opts := parallel.Options{
		Mode: parallel.ModeCMFuzz, VirtualHours: 0.25, Seed: 5, Concurrency: 1,
		Telemetry: rec,
	}
	resolve := func(name string) (subject.Subject, error) { return protocols.ByName(name) }

	coord := dist.NewCoordinator(sub, opts, dist.Config{HeartbeatInterval: -1})
	serveErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		cConn, wConn := net.Pipe()
		w := dist.NewWorker(dist.WorkerConfig{Name: fmt.Sprintf("w%d", i), Resolve: resolve})
		go func() { serveErr <- w.Serve(wConn) }()
		conn := net.Conn(cConn)
		if i == 0 {
			// Reads 1-4 carry hello, assignOK, and both boot results; the
			// read of the first lease reply fails, i.e. the worker dies
			// mid-lease with the batch undelivered.
			conn = &readFaultConn{Conn: cConn, limit: 4}
		}
		if err := coord.AddConn(conn); err != nil {
			t.Fatal(err)
		}
	}

	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		<-serveErr
	}

	if len(res.Instances) != 4 {
		t.Fatalf("got %d instance results, want 4", len(res.Instances))
	}
	last := res.Series.Points()[len(res.Series.Points())-1]
	if want := opts.VirtualHours * 3600; last.T < want {
		t.Fatalf("campaign stopped at %.1f virtual seconds, want %.1f", last.T, want)
	}
	st := coord.Stats()
	if st.WorkerDeaths != 1 || st.Reassignments != 2 {
		t.Fatalf("deaths/reassignments = %d/%d, want 1/2", st.WorkerDeaths, st.Reassignments)
	}
	// The re-boots happened at the lease start clock — virtual second
	// zero here, since the very first lease reply was lost — so every
	// instance still accounts for the whole horizon of virtual time.
	if res.Counters[telemetry.CtrWorkerDeaths] != 1 || res.Counters[telemetry.CtrReassignments] != 2 {
		t.Fatalf("telemetry counters missing the failure: %+v", res.Counters)
	}
}

// TestRunLocalCancellation checks ctx cancellation propagates through
// the distributed path the same way it does through parallel.Run: a
// partial, well-formed Result alongside ctx.Err().
func TestRunLocalCancellation(t *testing.T) {
	sub := mustSubject(t, "DNS")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := parallel.Options{Mode: parallel.ModeCMFuzz, VirtualHours: 0.25, Seed: 5, Concurrency: 1}
	if _, _, err := dist.RunLocal(ctx, sub, opts, 2, dist.Config{HeartbeatInterval: -1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
