package dist_test

import (
	"context"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"testing"

	"cmfuzz/internal/campaign"
	"cmfuzz/internal/dist"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
)

func mustSubject(t *testing.T, name string) subject.Subject {
	t.Helper()
	sub, err := protocols.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func baseOptions(rec *telemetry.Recorder) parallel.Options {
	return parallel.Options{
		Mode:         parallel.ModeCMFuzz,
		VirtualHours: 0.5,
		Seed:         11,
		Concurrency:  1,
		Telemetry:    rec,
	}
}

// writeAll drops the full artifact set (result.json, coverage.csv,
// crash reports, events.jsonl, timeline.txt) for one run.
func writeAll(t *testing.T, dir string, res *parallel.Result, rec *telemetry.Recorder) {
	t.Helper()
	if err := campaign.WriteArtifacts(dir, res); err != nil {
		t.Fatal(err)
	}
	if err := campaign.WriteTelemetry(dir, rec); err != nil {
		t.Fatal(err)
	}
}

// readTree maps relative path -> contents for every file under dir.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[rel] = string(raw)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLoopbackMatchesInProcess is the subsystem's anchor: the same DNS
// campaign, run once in-process and once through a coordinator driving
// two workers over real loopback TCP, must produce byte-identical
// artifacts — summary, coverage series, crash reports, and the full
// telemetry event stream.
func TestLoopbackMatchesInProcess(t *testing.T) {
	sub := mustSubject(t, "DNS")

	recA := telemetry.New()
	resA, err := parallel.Run(context.Background(), sub, baseOptions(recA))
	if err != nil {
		t.Fatal(err)
	}
	dirA := filepath.Join(t.TempDir(), "inproc")
	writeAll(t, dirA, resA, recA)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const workers = 2
	serveErr := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			conn, err := dist.Dial(ln.Addr().String(), 5, int64(i))
			if err != nil {
				serveErr <- err
				return
			}
			w := dist.NewWorker(dist.WorkerConfig{Name: "w", Resolve: func(name string) (subject.Subject, error) {
				return protocols.ByName(name)
			}})
			serveErr <- w.Serve(conn)
		}(i)
	}
	// Tracing on for the distributed side only: spans must never reach
	// the artifacts, so the byte-for-byte diff below doubles as the
	// observation-only guarantee for cross-process tracing.
	tracer := trace.New()
	troot := tracer.Start("coordinator")
	recB := telemetry.New()
	optsB := baseOptions(recB)
	optsB.Trace = troot
	coord := dist.NewCoordinator(sub, optsB, dist.Config{})
	for i := 0; i < workers; i++ {
		conn, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.AddConn(conn); err != nil {
			t.Fatal(err)
		}
	}
	resB, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		<-serveErr
	}
	troot.End()
	foreign := 0
	for _, r := range tracer.Records() {
		if r.Process != "" {
			foreign++
		}
	}
	if foreign == 0 {
		t.Fatal("no worker spans were stitched into the coordinator trace")
	}
	dirB := filepath.Join(t.TempDir(), "dist")
	writeAll(t, dirB, resB, recB)

	treeA, treeB := readTree(t, dirA), readTree(t, dirB)
	if len(treeB) != len(treeA) {
		t.Fatalf("artifact sets differ: %d files in-process, %d distributed", len(treeA), len(treeB))
	}
	for rel, a := range treeA {
		b, ok := treeB[rel]
		if !ok {
			t.Fatalf("distributed run missing artifact %s", rel)
		}
		if a != b {
			t.Fatalf("artifact %s diverged between in-process and distributed runs:\n--- in-process ---\n%s\n--- distributed ---\n%s", rel, a, b)
		}
	}

	if st := coord.Stats(); st.WorkerDeaths != 0 || st.Reassignments != 0 {
		t.Fatalf("healthy run reported failures: %+v", st)
	}
	if st := coord.Stats(); st.SyncBytes == 0 {
		t.Fatal("sync traffic not accounted")
	}
	for _, ws := range coord.Workers() {
		if !ws.Alive || ws.Execs == 0 {
			t.Fatalf("worker status not maintained: %+v", ws)
		}
	}
}

// TestRunLocalMatchesInProcess pins the net.Pipe harness (the
// `campaign -dist N` path) against the in-process result too, at a
// different worker count than the TCP test.
func TestRunLocalMatchesInProcess(t *testing.T) {
	sub := mustSubject(t, "MQTT")
	opts := parallel.Options{Mode: parallel.ModeCMFuzz, VirtualHours: 0.25, Seed: 3, Concurrency: 1}
	resA, err := parallel.Run(context.Background(), sub, opts)
	if err != nil {
		t.Fatal(err)
	}
	resB, _, err := dist.RunLocal(context.Background(), sub, opts, 3, dist.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if resA.FinalBranches != resB.FinalBranches || resA.TotalExecs != resB.TotalExecs ||
		resA.Bugs.Len() != resB.Bugs.Len() {
		t.Fatalf("diverged: in-process (%d branches, %d execs, %d bugs) vs dist (%d, %d, %d)",
			resA.FinalBranches, resA.TotalExecs, resA.Bugs.Len(),
			resB.FinalBranches, resB.TotalExecs, resB.Bugs.Len())
	}
	for i := range resA.Instances {
		a, b := resA.Instances[i], resB.Instances[i]
		if a.Config != b.Config || a.FinalBranches != b.FinalBranches ||
			a.Execs != b.Execs || a.Crashes != b.Crashes || a.ConfigMutations != b.ConfigMutations {
			t.Fatalf("instance %d diverged:\n got %+v\nwant %+v", i, b, a)
		}
	}
	pa, pb := resA.Series.Points(), resB.Series.Points()
	if len(pa) != len(pb) {
		t.Fatalf("series length diverged: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("series point %d diverged: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}
