package dist

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

func pipeWorkerConn() (*workerConn, net.Conn) {
	cConn, wConn := net.Pipe()
	wc := &workerConn{id: 0, name: "w", conn: cConn, br: bufio.NewReaderSize(cConn, 64<<10)}
	return wc, wConn
}

// TestStalePongSkipped pins the documented rpc behavior: a Pong that
// arrives while a campaign RPC is waiting for its reply (a heartbeat
// answered late) is skipped, not mistaken for the reply — Pongs are
// empty and interchangeable, so dropping one loses nothing.
func TestStalePongSkipped(t *testing.T) {
	wc, peer := pipeWorkerConn()
	defer peer.Close()
	defer wc.conn.Close()

	go func() {
		if _, _, err := readFrame(peer); err != nil { // the Finalize request
			t.Error(err)
			return
		}
		// A stale Pong first, then the real reply.
		if err := writeFrame(peer, msgPong, nil); err != nil {
			t.Error(err)
			return
		}
		if err := writeFrame(peer, msgInstanceResult, []byte{1, 2, 3}); err != nil {
			t.Error(err)
		}
	}()

	p, err := wc.rpc(msgFinalize, nil, msgInstanceResult, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, []byte{1, 2, 3}) {
		t.Fatalf("rpc returned %v, want the real reply after the stale Pong", p)
	}
	if wc.dead.Load() {
		t.Fatal("stale Pong killed the connection")
	}
}

// TestLatePongKillsWorker delays every Pong past the RPC deadline: the
// heartbeat loop must declare the worker dead and subsequent RPCs must
// fail fast with errWorkerDead rather than hang.
func TestLatePongKillsWorker(t *testing.T) {
	wc, peer := pipeWorkerConn()
	defer peer.Close()
	defer wc.conn.Close()

	p := NewPool(Config{
		RPCTimeout: 50 * time.Millisecond, HeartbeatInterval: 10 * time.Millisecond, PingRetries: 1,
	})
	p.workers = append(p.workers, wc)

	// The peer reads pings but answers far past the deadline.
	go func() {
		for {
			if _, _, err := readFrame(peer); err != nil {
				return
			}
			go func() {
				time.Sleep(300 * time.Millisecond)
				writeFrame(peer, msgPong, nil) // blocks or errors once the pipe dies; both fine
			}()
		}
	}()

	p.hbWG.Add(1)
	go p.heartbeat(wc)
	deadline := time.Now().Add(5 * time.Second)
	for !wc.dead.Load() {
		if time.Now().After(deadline) {
			t.Fatal("late Pongs never killed the worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(p.stopHeartbeat)
	p.hbWG.Wait()

	if _, err := wc.rpc(msgPing, nil, msgPong, time.Second); !errors.Is(err, errWorkerDead) {
		t.Fatalf("rpc on dead worker = %v, want errWorkerDead", err)
	}
}
