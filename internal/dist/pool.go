package dist

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// A Pool owns a fleet of worker connections: the Hello/Welcome
// handshake, liveness heartbeats, and final teardown. A standalone
// Coordinator creates a private pool, so the single-campaign API is
// unchanged; the fleet service creates one shared pool and runs many
// coordinators on it concurrently — each campaign's RPCs are
// namespaced by campaign id, and the per-connection mutex serializes
// frames from different campaigns' dispatchers.
type Pool struct {
	cfg Config

	mu      sync.Mutex
	workers []*workerConn

	stopHeartbeat chan struct{}
	hbWG          sync.WaitGroup
	hbStarted     bool
	closed        bool

	nextCampaign uint32
}

// NewPool prepares an empty worker pool. Workers attach via AddConn.
func NewPool(cfg Config) *Pool {
	cfg.setDefaults()
	return &Pool{cfg: cfg, stopHeartbeat: make(chan struct{})}
}

// AddConn performs the Hello/Welcome handshake on a freshly accepted
// worker connection and registers the worker. The worker speaks first,
// so with synchronous transports (net.Pipe) the worker's Serve loop
// must already be running.
func (p *Pool) AddConn(conn net.Conn) error {
	conn.SetDeadline(time.Now().Add(p.cfg.RPCTimeout))
	defer conn.SetDeadline(time.Time{})
	br := bufio.NewReaderSize(conn, 64<<10)
	typ, payload, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("dist: worker handshake: %w", err)
	}
	if typ != msgHello {
		return fmt.Errorf("dist: worker handshake: got message %d, want Hello", typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if h.Version != protocolVersion {
		writeFrame(conn, msgError, []byte("protocol version mismatch"))
		return fmt.Errorf("dist: worker %q speaks protocol %d, want %d", h.Name, h.Version, protocolVersion)
	}
	if err := writeFrame(conn, msgWelcome, nil); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	wc := &workerConn{id: len(p.workers), name: h.Name, conn: conn, br: br}
	wc.lastReply.Store(time.Now().UnixNano())
	p.workers = append(p.workers, wc)
	return nil
}

// snapshot returns the registered workers. Coordinators capture it once
// at Start, so a worker added later never changes a running campaign's
// round-robin assignment.
func (p *Pool) snapshot() []*workerConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*workerConn(nil), p.workers...)
}

// Workers snapshots every registered worker for the monitor bridge.
func (p *Pool) Workers() []WorkerStatus {
	workers := p.snapshot()
	out := make([]WorkerStatus, 0, len(workers))
	for _, wc := range workers {
		out = append(out, WorkerStatus{
			Name:      wc.name,
			Alive:     !wc.dead.Load(),
			Execs:     wc.execs.Load(),
			SyncBytes: wc.syncBytes.Load(),
			LastReply: time.Unix(0, wc.lastReply.Load()),
		})
	}
	return out
}

// NextCampaignID hands out pool-unique campaign ids for coordinators
// sharing this pool's connections.
func (p *Pool) NextCampaignID() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextCampaign++
	return p.nextCampaign
}

// StartHeartbeats launches one liveness pinger per currently registered
// worker. Idempotent; a nonpositive heartbeat interval disables it.
func (p *Pool) StartHeartbeats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hbStarted || p.cfg.HeartbeatInterval <= 0 {
		p.hbStarted = true
		return
	}
	p.hbStarted = true
	for _, wc := range p.workers {
		p.hbWG.Add(1)
		go p.heartbeat(wc)
	}
}

// heartbeat pings wc until the pool closes or the worker dies. A silent
// worker gets cfg.PingRetries extra attempts with jittered exponential
// backoff before being declared dead; a worker with a campaign RPC in
// flight is skipped (TryLock), since the pending reply already proves
// the connection is live.
func (p *Pool) heartbeat(wc *workerConn) {
	defer p.hbWG.Done()
	ticker := time.NewTicker(p.cfg.HeartbeatInterval)
	defer ticker.Stop()
	rng := rand.New(rand.NewSource(int64(wc.id)*2654435761 + 1))
	for {
		select {
		case <-p.stopHeartbeat:
			return
		case <-ticker.C:
		}
		if wc.dead.Load() {
			return
		}
		if !wc.mu.TryLock() {
			continue
		}
		var err error
		backoff := 100 * time.Millisecond
		stopped := false
		for attempt := 0; attempt <= p.cfg.PingRetries; attempt++ {
			_, err = wc.rpcLocked(msgPing, nil, msgPong, p.cfg.RPCTimeout)
			if err == nil || wc.dead.Load() {
				break
			}
			// Back off between retries, but wake immediately when the
			// pool shuts down — a closing campaign must not wait out a
			// multi-second retry ladder against a worker that is already
			// gone.
			select {
			case <-time.After(backoff + time.Duration(rng.Int63n(int64(backoff)))):
			case <-p.stopHeartbeat:
				stopped = true
			}
			if stopped {
				break
			}
			backoff *= 2
		}
		wc.mu.Unlock()
		if stopped {
			return
		}
		if err != nil {
			wc.dead.Store(true)
			return
		}
	}
}

// Close stops the heartbeats, sends a best-effort Shutdown to every
// live worker, and closes the connections. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	workers := append([]*workerConn(nil), p.workers...)
	p.mu.Unlock()
	close(p.stopHeartbeat)
	p.hbWG.Wait()
	for _, wc := range workers {
		if !wc.dead.Load() {
			wc.mu.Lock()
			wc.fw.write(wc.conn, msgShutdown, nil)
			wc.mu.Unlock()
		}
		wc.conn.Close()
	}
}
