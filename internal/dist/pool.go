package dist

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// A Pool owns a fleet of worker connections: the Hello/Welcome
// handshake, liveness heartbeats, and final teardown. A standalone
// Coordinator creates a private pool, so the single-campaign API is
// unchanged; the fleet service creates one shared pool and runs many
// coordinators on it concurrently — each campaign's RPCs are
// namespaced by campaign id, and the per-connection mutex serializes
// frames from different campaigns' dispatchers.
//
// Workers can additionally be leased out as disjoint Partitions
// (Acquire/Release), which is how the concurrent fleet scheduler
// gives each campaign its own slice of the fleet: a coordinator
// handed a partition drives only those connections, so campaigns
// sharing the pool never contend for the same worker.
type Pool struct {
	cfg Config

	mu      sync.Mutex
	workers []*workerConn
	leased  map[*workerConn]bool

	stopHeartbeat chan struct{}
	hbWG          sync.WaitGroup
	hbStarted     bool
	closed        bool

	nextCampaign uint32
}

// NewPool prepares an empty worker pool. Workers attach via AddConn.
func NewPool(cfg Config) *Pool {
	cfg.setDefaults()
	return &Pool{cfg: cfg, leased: make(map[*workerConn]bool), stopHeartbeat: make(chan struct{})}
}

// AddConn performs the Hello/Welcome handshake on a freshly accepted
// worker connection and registers the worker. The worker speaks first,
// so with synchronous transports (net.Pipe) the worker's Serve loop
// must already be running.
//
// Admission is elastic: a worker attached after the pool went live
// simply joins the free set (and gets its own heartbeat pinger when
// heartbeats are already running), so the next partition acquisition —
// the fleet scheduler's next round — can hand it to a campaign.
// Campaigns that captured their worker set earlier are unaffected.
func (p *Pool) AddConn(conn net.Conn) error {
	conn.SetDeadline(time.Now().Add(p.cfg.RPCTimeout))
	defer conn.SetDeadline(time.Time{})
	br := bufio.NewReaderSize(conn, 64<<10)
	typ, payload, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("dist: worker handshake: %w", err)
	}
	if typ != msgHello {
		return fmt.Errorf("dist: worker handshake: got message %d, want Hello", typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if h.Version != protocolVersion {
		writeFrame(conn, msgError, []byte("protocol version mismatch"))
		return fmt.Errorf("dist: worker %q speaks protocol %d, want %d", h.Name, h.Version, protocolVersion)
	}
	if err := writeFrame(conn, msgWelcome, nil); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		conn.Close()
		return fmt.Errorf("dist: pool is closed")
	}
	wc := &workerConn{id: len(p.workers), name: h.Name, conn: conn, br: br}
	wc.lastReply.Store(time.Now().UnixNano())
	p.workers = append(p.workers, wc)
	if p.hbStarted && p.cfg.HeartbeatInterval > 0 {
		p.hbWG.Add(1)
		go p.heartbeat(wc)
	}
	return nil
}

// A Partition is a leased, disjoint subset of the pool's workers, in
// ascending attach order. The holder (one campaign's coordinator)
// owns the members' lease-RPC traffic until Release; heartbeats and
// teardown stay with the pool. A dead member shrinks only its own
// partition — the holder reassigns the dead worker's instances within
// the partition, never across one.
type Partition struct {
	pool    *Pool
	workers []*workerConn
}

// Acquire leases up to n free live workers, in deterministic attach
// order, removing them from the free set. It returns nil when no free
// live worker exists (the caller's scheduling round has no capacity
// for another partition); a short partition — fewer than n — is
// returned when the free set is smaller than asked.
func (p *Pool) Acquire(n int) *Partition {
	return p.AcquirePreferring(n, nil)
}

// AcquirePreferring is Acquire with partition affinity: free live
// workers named in prefer are leased first (in attach order among
// themselves), and only then is the remainder filled from the rest of
// the free set in attach order. A campaign that parks and re-acquires
// gets its previous workers back whenever they are still free, so the
// worker-side state that survives a warm hand-off (booted live
// targets, OS page cache) is reused instead of rebuilt on strangers.
func (p *Pool) AcquirePreferring(n int, prefer []string) *Partition {
	if n <= 0 {
		return nil
	}
	preferred := make(map[string]bool, len(prefer))
	for _, name := range prefer {
		preferred[name] = true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var got []*workerConn
	take := func(wantPreferred bool) {
		for _, wc := range p.workers {
			if len(got) == n {
				return
			}
			if wc.dead.Load() || p.leased[wc] {
				continue
			}
			if preferred[wc.name] != wantPreferred {
				continue
			}
			got = append(got, wc)
			p.leased[wc] = true
		}
	}
	take(true)
	take(false)
	if len(got) == 0 {
		return nil
	}
	return &Partition{pool: p, workers: got}
}

// Release returns the partition's members to the pool's free set
// (dead members stay out — they are unleased but never re-acquired).
// The partition is empty afterwards; Release is idempotent.
func (pt *Partition) Release() {
	if pt == nil || pt.pool == nil {
		return
	}
	pt.pool.mu.Lock()
	for _, wc := range pt.workers {
		delete(pt.pool.leased, wc)
	}
	pt.pool.mu.Unlock()
	pt.workers = nil
}

// Size reports the partition's member count, dead or alive.
func (pt *Partition) Size() int {
	if pt == nil {
		return 0
	}
	return len(pt.workers)
}

// Live reports how many members are still alive — the capacity the
// holder actually has after any mid-slice worker deaths.
func (pt *Partition) Live() int {
	if pt == nil {
		return 0
	}
	n := 0
	for _, wc := range pt.workers {
		if !wc.dead.Load() {
			n++
		}
	}
	return n
}

// Names lists the partition's live members, for status surfaces.
func (pt *Partition) Names() []string {
	if pt == nil {
		return nil
	}
	out := make([]string, 0, len(pt.workers))
	for _, wc := range pt.workers {
		if !wc.dead.Load() {
			out = append(out, wc.name)
		}
	}
	return out
}

// live returns the partition's live members in attach order, for a
// coordinator capturing its worker set at Start/Restore.
func (pt *Partition) live() []*workerConn {
	if pt == nil {
		return nil
	}
	out := make([]*workerConn, 0, len(pt.workers))
	for _, wc := range pt.workers {
		if !wc.dead.Load() {
			out = append(out, wc)
		}
	}
	return out
}

// FreeLive reports how many live workers are currently unleased — the
// capacity a scheduling round can still partition out.
func (p *Pool) FreeLive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, wc := range p.workers {
		if !wc.dead.Load() && !p.leased[wc] {
			n++
		}
	}
	return n
}

// snapshot returns the registered workers. Coordinators capture it once
// at Start, so a worker added later never changes a running campaign's
// round-robin assignment.
func (p *Pool) snapshot() []*workerConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*workerConn(nil), p.workers...)
}

// Workers snapshots every registered worker for the monitor bridge.
func (p *Pool) Workers() []WorkerStatus {
	workers := p.snapshot()
	out := make([]WorkerStatus, 0, len(workers))
	for _, wc := range workers {
		out = append(out, WorkerStatus{
			Name:      wc.name,
			Alive:     !wc.dead.Load(),
			Execs:     wc.execs.Load(),
			SyncBytes: wc.syncBytes.Load(),
			LastReply: time.Unix(0, wc.lastReply.Load()),
		})
	}
	return out
}

// NextCampaignID hands out pool-unique campaign ids for coordinators
// sharing this pool's connections.
func (p *Pool) NextCampaignID() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextCampaign++
	return p.nextCampaign
}

// StartHeartbeats launches one liveness pinger per currently registered
// worker. Idempotent; a nonpositive heartbeat interval disables it.
func (p *Pool) StartHeartbeats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hbStarted || p.cfg.HeartbeatInterval <= 0 {
		p.hbStarted = true
		return
	}
	p.hbStarted = true
	for _, wc := range p.workers {
		p.hbWG.Add(1)
		go p.heartbeat(wc)
	}
}

// heartbeat pings wc until the pool closes or the worker dies. A silent
// worker gets cfg.PingRetries extra attempts with jittered exponential
// backoff before being declared dead; a worker with a campaign RPC in
// flight is skipped (TryLock), since the pending reply already proves
// the connection is live.
func (p *Pool) heartbeat(wc *workerConn) {
	defer p.hbWG.Done()
	ticker := time.NewTicker(p.cfg.HeartbeatInterval)
	defer ticker.Stop()
	rng := rand.New(rand.NewSource(int64(wc.id)*2654435761 + 1))
	for {
		select {
		case <-p.stopHeartbeat:
			return
		case <-ticker.C:
		}
		if wc.dead.Load() {
			return
		}
		if !wc.mu.TryLock() {
			continue
		}
		var err error
		backoff := 100 * time.Millisecond
		stopped := false
		for attempt := 0; attempt <= p.cfg.PingRetries; attempt++ {
			_, err = wc.rpcLocked(msgPing, nil, msgPong, p.cfg.RPCTimeout)
			if err == nil || wc.dead.Load() {
				break
			}
			// Back off between retries, but wake immediately when the
			// pool shuts down — a closing campaign must not wait out a
			// multi-second retry ladder against a worker that is already
			// gone.
			select {
			case <-time.After(backoff + time.Duration(rng.Int63n(int64(backoff)))):
			case <-p.stopHeartbeat:
				stopped = true
			}
			if stopped {
				break
			}
			backoff *= 2
		}
		wc.mu.Unlock()
		if stopped {
			return
		}
		if err != nil {
			wc.dead.Store(true)
			return
		}
	}
}

// Close stops the heartbeats, sends a best-effort Shutdown to every
// live worker, and closes the connections. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	workers := append([]*workerConn(nil), p.workers...)
	p.mu.Unlock()
	close(p.stopHeartbeat)
	p.hbWG.Wait()
	for _, wc := range workers {
		if !wc.dead.Load() {
			wc.mu.Lock()
			wc.fw.write(wc.conn, msgShutdown, nil)
			wc.mu.Unlock()
		}
		wc.conn.Close()
	}
}
