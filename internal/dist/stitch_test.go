package dist_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"cmfuzz/internal/dist"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/telemetry/trace"
)

// structureOf renders a span-record set as a canonical structure
// string: one tree per process lane, nodes labeled by span name, each
// node's children sorted by their own canonical rendering. Wall-clock
// times and attributes are deliberately excluded — the structure is
// what determinism guarantees; durations are physics.
func structureOf(recs []trace.Record) string {
	type key struct {
		proc string
		id   int
	}
	children := make(map[key][]key, len(recs))
	names := make(map[key]string, len(recs))
	var roots []key
	for _, r := range recs {
		k := key{r.Process, r.ID}
		names[k] = r.Name
		pk := key{r.Process, r.Parent}
		if r.Parent < 0 {
			roots = append(roots, k)
		} else {
			children[pk] = append(children[pk], k)
		}
	}
	// A child whose parent never completed (or was drained earlier)
	// still needs a home: promote orphans to roots of their lane.
	for pk, ck := range children {
		if _, ok := names[pk]; !ok {
			roots = append(roots, ck...)
			delete(children, pk)
		}
	}
	var render func(k key) string
	render = func(k key) string {
		kids := make([]string, 0, len(children[k]))
		for _, c := range children[k] {
			kids = append(kids, render(c))
		}
		sort.Strings(kids)
		return names[k] + "(" + strings.Join(kids, ",") + ")"
	}
	byProc := map[string][]string{}
	for _, r := range roots {
		byProc[r.proc] = append(byProc[r.proc], render(r))
	}
	procs := make([]string, 0, len(byProc))
	for p := range byProc {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	var b strings.Builder
	for _, p := range procs {
		trees := byProc[p]
		sort.Strings(trees)
		fmt.Fprintf(&b, "[%s] %s\n", p, strings.Join(trees, " "))
	}
	return b.String()
}

// TestTraceStitchingDeterministic runs the same 2-worker campaign twice
// with tracing on: the stitched span trees must be structurally equal —
// same names, same nesting, same process lanes — even though every wall
// time differs. RunLocal names its workers local-0/local-1
// deterministically, so the lanes line up run to run.
func TestTraceStitchingDeterministic(t *testing.T) {
	run := func() string {
		sub := mustSubject(t, "DNS")
		tracer := trace.New()
		root := tracer.Start("coordinator")
		opts := parallel.Options{
			Mode: parallel.ModeCMFuzz, VirtualHours: 0.25, Seed: 11,
			Concurrency: 1, Trace: root,
		}
		if _, _, err := dist.RunLocal(context.Background(), sub, opts, 2, dist.Config{}); err != nil {
			t.Fatal(err)
		}
		root.End()
		return structureOf(tracer.Records())
	}
	a := run()
	b := run()
	if a != b {
		t.Fatalf("stitched trace structure diverged between identical runs:\n--- run A ---\n%s--- run B ---\n%s", a, b)
	}
	for _, want := range []string{"[local-0]", "[local-1]", "lease(", "lease.steps("} {
		if !strings.Contains(a, want) {
			t.Fatalf("stitched structure missing %q:\n%s", want, a)
		}
	}
}
