package dist

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/schedule"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
	"cmfuzz/internal/wire"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := writeFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got type %d payload %q", i, typ, got)
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	if err := writeFrame(&bytes.Buffer{}, msgLease, make([]byte, maxFrame)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	var hdr bytes.Buffer
	hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(msgLease)})
	if _, _, err := readFrame(&hdr); err == nil {
		t.Fatal("oversized length header accepted")
	}
	zero := bytes.NewBuffer([]byte{0, 0, 0, 0, 0})
	if _, _, err := readFrame(zero); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestAssignRoundTrip(t *testing.T) {
	in := assign{
		Subject:  "DNS",
		LiveSpec: `{"cmd":["/usr/bin/echo-server","-port","{port}"],"transport":"udp"}`,
		Opts: parallel.Options{
			Mode: parallel.ModeCMFuzz, Instances: 4, VirtualHours: 1.5, Seed: 42,
			StepCost: 2, ByteCost: 0.00002, SyncInterval: 600,
			SaturationWindow: 1800, SaturationMinGain: 8, MaxValues: 4,
			Allocator: parallel.AllocRandom, DisableConfigMutation: true,
			SampleEvery: 300, RawRelationWeighting: true, PeachSharedSchedules: true,
			LinkLoss: 0.01, LinkLatencyBase: 0.0002, LinkLatencyJitter: 0.0001,
			Concurrency: 3,
		},
		Specs: []parallel.InstanceSpec{
			{
				Index:  0,
				Config: configmodel.Assignment{"b": "2", "a": "1"},
				Group:  schedule.Group{Members: []string{"a", "b"}},
				Paths: []fuzz.Path{
					{States: []string{"s0", "s1"}, Models: []string{"m0"}},
				},
				EngineSeed: 7919, RngSeed: 104729,
			},
			{Index: 1, Config: configmodel.Assignment{}, EngineSeed: -5, RngSeed: -9},
		},
	}
	out, err := decodeAssign(encodeAssign(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Subject != in.Subject || !reflect.DeepEqual(out.Opts, in.Opts) {
		t.Fatalf("options diverged: %+v vs %+v", out.Opts, in.Opts)
	}
	if out.LiveSpec != in.LiveSpec {
		t.Fatalf("live spec diverged: %q vs %q", out.LiveSpec, in.LiveSpec)
	}
	if len(out.Specs) != len(in.Specs) {
		t.Fatalf("spec count %d, want %d", len(out.Specs), len(in.Specs))
	}
	for i := range in.Specs {
		want := in.Specs[i]
		got := out.Specs[i]
		if len(want.Config) == 0 {
			want.Config = got.Config // empty map vs nil: same assignment
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("spec %d diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestLeaseRoundTrip(t *testing.T) {
	in := lease{
		Index: 2, Boundary: 600, Horizon: 1800,
		Seeds: []fuzz.Seed{
			{Msgs: [][]byte{{1, 2}, {3}}, Gain: 5},
			{Msgs: [][]byte{{}}, Gain: 0},
		},
	}
	out, err := decodeLease(encodeLease(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Index != in.Index || out.Boundary != in.Boundary || out.Horizon != in.Horizon {
		t.Fatalf("lease header diverged: %+v vs %+v", out, in)
	}
	if len(out.Seeds) != len(in.Seeds) {
		t.Fatalf("seed count %d, want %d", len(out.Seeds), len(in.Seeds))
	}
	for i := range in.Seeds {
		if out.Seeds[i].Gain != in.Seeds[i].Gain || len(out.Seeds[i].Msgs) != len(in.Seeds[i].Msgs) {
			t.Fatalf("seed %d diverged: %+v vs %+v", i, out.Seeds[i], in.Seeds[i])
		}
		for j := range in.Seeds[i].Msgs {
			if !bytes.Equal(out.Seeds[i].Msgs[j], in.Seeds[i].Msgs[j]) {
				t.Fatalf("seed %d msg %d diverged", i, j)
			}
		}
	}
	if _, err := decodeLease(append(encodeLease(in), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// encodeLeaseResult assembles a reply the way the worker does: records
// through appendLeaseStep, the terminator and syncDue flag, then the
// span-record section (empty here, as with tracing off).
func encodeLeaseResult(steps []parallel.LeaseStep, syncDue bool) []byte {
	w := &wire.Writer{}
	for i := range steps {
		appendLeaseStep(w, &steps[i])
	}
	w.U8(leaseEnd)
	putBool(w, syncDue)
	putSpanRecords(w, nil, 0)
	return w.Bytes()
}

func TestLeaseResultRoundTrip(t *testing.T) {
	steps := []parallel.LeaseStep{
		{Bytes: 41}, // bare step: no crash, no edges, no saturation
		{
			Bytes: 77, NewEdges: 3,
			Crash: &bugs.Crash{Protocol: "DNS", Kind: bugs.Kind(2), Function: "parse", Detail: "oob"},
			Seed:  fuzz.Seed{Msgs: [][]byte{{1, 2}, {3}}, Gain: 3},
			Delta: []byte{1, 2, 3},
		},
		{
			Bytes: 9, SatFired: true,
			Mutation: &parallel.MutationOutcome{
				Events: []parallel.MutEvent{
					{Type: telemetry.EvRestartFail, Entity: "tcp", Value: "off", Detail: "conflict"},
					{Type: telemetry.EvMutation, Entity: "udp", Value: "on", Config: "udp=on"},
				},
				Mutations: 1, Boots: 1, RestartFails: 1, Restarted: true,
			},
			MutationCrashes: []crashRec{{
				Crash:    bugs.Crash{Protocol: "DNS", Kind: bugs.Kind(1), Function: "boot", Detail: "x"},
				Instance: 2, T: 123.5, Config: "udp=on",
			}},
			Config: "udp=on", Coverage: 345,
		},
	}
	recs, syncDue, spans, workerNow, err := decodeLeaseResult(encodeLeaseResult(steps, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 || workerNow != 0 {
		t.Fatalf("untraced reply carried spans: %v clock %v", spans, workerNow)
	}
	if !syncDue {
		t.Fatal("syncDue lost")
	}
	if len(recs) != len(steps) {
		t.Fatalf("record count %d, want %d", len(recs), len(steps))
	}
	if recs[0].bytes != 41 || recs[0].crash != nil || recs[0].newEdges != 0 || recs[0].satFired {
		t.Fatalf("bare record diverged: %+v", recs[0])
	}
	r1 := recs[1]
	if r1.bytes != 77 || r1.newEdges != 3 || !reflect.DeepEqual(r1.crash, steps[1].Crash) ||
		!bytes.Equal(r1.delta, steps[1].Delta) || r1.seed.Gain != 3 || len(r1.seed.Msgs) != 2 {
		t.Fatalf("edge+crash record diverged: %+v", r1)
	}
	r2 := recs[2]
	if !r2.satFired || r2.config != "udp=on" || r2.coverage != 345 ||
		!reflect.DeepEqual(r2.mutation.Outcome, *steps[2].Mutation) ||
		!reflect.DeepEqual(r2.mutation.Crashes, steps[2].MutationCrashes) {
		t.Fatalf("saturation record diverged: %+v", r2)
	}

	// Unknown flag bits and an edges flag without edges are protocol
	// violations, not silent zero values.
	if _, _, _, _, err := decodeLeaseResult([]byte{0x08, 0x00, leaseEnd, 0}); err == nil {
		t.Fatal("unknown flag bits accepted")
	}
	bad := &wire.Writer{}
	bad.U8(leaseFlagEdges)
	bad.Varint(1) // bytes
	bad.Varint(0) // newEdges == 0 contradicts the flag
	bad.Bytes32(nil)
	bad.U8(0)
	bad.U8(leaseEnd)
	putBool(bad, false)
	putSpanRecords(bad, nil, 0)
	if _, _, _, _, err := decodeLeaseResult(bad.Bytes()); err == nil {
		t.Fatal("edges flag with zero newEdges accepted")
	}
}

func TestLeaseResultSpanSectionRoundTrip(t *testing.T) {
	steps := []parallel.LeaseStep{{Bytes: 41}}
	spans := []trace.Record{
		{ID: 0, Parent: -1, Track: 0, Name: "lease", Start: 0, End: 5 * time.Millisecond,
			Attrs: []trace.Attr{{Key: "instance", Value: "2"}}},
		{ID: 1, Parent: 0, Track: 0, Name: "lease.steps", Start: time.Millisecond, End: 4 * time.Millisecond},
	}
	w := &wire.Writer{}
	for i := range steps {
		appendLeaseStep(w, &steps[i])
	}
	w.U8(leaseEnd)
	putBool(w, false)
	putSpanRecords(w, spans, 6*time.Millisecond)

	recs, syncDue, gotSpans, workerNow, err := decodeLeaseResult(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || syncDue {
		t.Fatalf("step records diverged: %d recs, syncDue=%v", len(recs), syncDue)
	}
	if workerNow != 6*time.Millisecond {
		t.Fatalf("worker clock = %v, want 6ms", workerNow)
	}
	if !reflect.DeepEqual(gotSpans, spans) {
		t.Fatalf("spans diverged:\n got %+v\nwant %+v", gotSpans, spans)
	}
	// Attribute values of any type flatten to strings on the wire.
	w2 := &wire.Writer{}
	w2.U8(leaseEnd)
	putBool(w2, false)
	putSpanRecords(w2, []trace.Record{{Parent: -1, Name: "x", Attrs: []trace.Attr{{Key: "n", Value: 42}}}}, 0)
	_, _, s2, _, err := decodeLeaseResult(w2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if s2[0].Attrs[0].Value != "42" {
		t.Fatalf("attr value = %v, want \"42\"", s2[0].Attrs[0].Value)
	}
}

func TestBootResultRoundTrip(t *testing.T) {
	in := bootResult{
		Err: "", Config: "a=1 b=2", StartEdges: 41, Delta: []byte{9, 8, 7},
		Crashes: []crashRec{{Crash: bugs.Crash{Protocol: "MQTT", Function: "f"}, Instance: 1, T: 0, Config: "a=1"}},
	}
	out, err := decodeBootResult(encodeBootResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("boot result diverged:\n got %+v\nwant %+v", out, in)
	}
}

func TestInstanceResultRoundTrip(t *testing.T) {
	in := parallel.InstanceResult{
		Index: 3, Config: "x=y", Group: []string{"x", "z"},
		FinalBranches: 512, Execs: 100000, Crashes: 4, ConfigMutations: 7, RestartFailures: 1,
	}
	out, err := decodeInstanceResult(encodeInstanceResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("instance result diverged:\n got %+v\nwant %+v", out, in)
	}
}

// TestDecodeMalformed feeds truncated and corrupt payloads to every
// decoder: they must return an error (or a harmless zero value), never
// panic or over-allocate.
func TestDecodeMalformed(t *testing.T) {
	good := [][]byte{
		encodeAssign(assign{Subject: "DNS", Specs: []parallel.InstanceSpec{{Index: 1}}}),
		encodeLease(lease{Index: 1, Boundary: 600, Horizon: 1800, Seeds: []fuzz.Seed{{Msgs: [][]byte{{1}}, Gain: 1}}}),
		encodeLeaseResult([]parallel.LeaseStep{
			{Bytes: 1},
			{Bytes: 2, NewEdges: 1, Seed: fuzz.Seed{Msgs: [][]byte{{1}}, Gain: 1}, Delta: []byte{1}},
		}, true),
		encodeBootResult(bootResult{Config: "c", Delta: []byte{1}}),
		encodeInstanceResult(parallel.InstanceResult{Index: 1}),
		encodeHello(hello{Name: "w", Version: 1}),
	}
	decoders := []func([]byte) error{
		func(p []byte) error { _, err := decodeAssign(p); return err },
		func(p []byte) error { _, err := decodeLease(p); return err },
		func(p []byte) error { _, _, _, _, err := decodeLeaseResult(p); return err },
		func(p []byte) error { _, err := decodeBootResult(p); return err },
		func(p []byte) error { _, err := decodeInstanceResult(p); return err },
		func(p []byte) error { _, err := decodeHello(p); return err },
	}
	for gi, g := range good {
		for _, dec := range decoders {
			for cut := 0; cut < len(g); cut++ {
				dec(g[:cut]) // must not panic
			}
			mutated := append([]byte(nil), g...)
			for i := range mutated {
				mutated[i] ^= 0xFF
				dec(mutated)
				mutated[i] ^= 0xFF
			}
			_ = gi
		}
	}
}
