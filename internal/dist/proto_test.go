package dist

import (
	"bytes"
	"reflect"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/schedule"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/telemetry"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := writeFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got type %d payload %q", i, typ, got)
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	if err := writeFrame(&bytes.Buffer{}, msgStep, make([]byte, maxFrame)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	var hdr bytes.Buffer
	hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(msgStep)})
	if _, _, err := readFrame(&hdr); err == nil {
		t.Fatal("oversized length header accepted")
	}
	zero := bytes.NewBuffer([]byte{0, 0, 0, 0, 0})
	if _, _, err := readFrame(zero); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestAssignRoundTrip(t *testing.T) {
	in := assign{
		Subject: "DNS",
		Opts: parallel.Options{
			Mode: parallel.ModeCMFuzz, Instances: 4, VirtualHours: 1.5, Seed: 42,
			StepCost: 2, ByteCost: 0.00002, SyncInterval: 600,
			SaturationWindow: 1800, SaturationMinGain: 8, MaxValues: 4,
			Allocator: parallel.AllocRandom, DisableConfigMutation: true,
			SampleEvery: 300, RawRelationWeighting: true, PeachSharedSchedules: true,
			Concurrency: 3,
		},
		Specs: []parallel.InstanceSpec{
			{
				Index:  0,
				Config: configmodel.Assignment{"b": "2", "a": "1"},
				Group:  schedule.Group{Members: []string{"a", "b"}},
				Paths: []fuzz.Path{
					{States: []string{"s0", "s1"}, Models: []string{"m0"}},
				},
				EngineSeed: 7919, RngSeed: 104729,
			},
			{Index: 1, Config: configmodel.Assignment{}, EngineSeed: -5, RngSeed: -9},
		},
	}
	out, err := decodeAssign(encodeAssign(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Subject != in.Subject || !reflect.DeepEqual(out.Opts, in.Opts) {
		t.Fatalf("options diverged: %+v vs %+v", out.Opts, in.Opts)
	}
	if len(out.Specs) != len(in.Specs) {
		t.Fatalf("spec count %d, want %d", len(out.Specs), len(in.Specs))
	}
	for i := range in.Specs {
		want := in.Specs[i]
		got := out.Specs[i]
		if len(want.Config) == 0 {
			want.Config = got.Config // empty map vs nil: same assignment
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("spec %d diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestStepResultRoundTrip(t *testing.T) {
	in := stepResult{
		Bytes: 77, NewEdges: 3,
		Crash: &bugs.Crash{Protocol: "DNS", Kind: bugs.Kind(2), Function: "parse", Detail: "oob"},
		Delta: []byte{1, 2, 3},
		Execs: 900, Corpus: 12, Coverage: 345,
		SatFired: true, SatEdges: 345,
		Mutation: &mutation{
			Outcome: parallel.MutationOutcome{
				Events: []parallel.MutEvent{
					{Type: telemetry.EvRestartFail, Entity: "tcp", Value: "off", Detail: "conflict"},
					{Type: telemetry.EvMutation, Entity: "udp", Value: "on", Config: "udp=on"},
				},
				Mutations: 1, Boots: 1, RestartFails: 1, Restarted: true,
			},
			Crashes: []crashRec{{
				Crash:    bugs.Crash{Protocol: "DNS", Kind: bugs.Kind(1), Function: "boot", Detail: "x"},
				Instance: 2, T: 123.5, Config: "udp=on",
			}},
		},
		Config: "udp=on",
	}
	out, err := decodeStepResult(encodeStepResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("step result diverged:\n got %+v\nwant %+v", out, in)
	}
}

func TestBootResultRoundTrip(t *testing.T) {
	in := bootResult{
		Err: "", Config: "a=1 b=2", StartEdges: 41, Delta: []byte{9, 8, 7},
		Crashes: []crashRec{{Crash: bugs.Crash{Protocol: "MQTT", Function: "f"}, Instance: 1, T: 0, Config: "a=1"}},
	}
	out, err := decodeBootResult(encodeBootResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("boot result diverged:\n got %+v\nwant %+v", out, in)
	}
}

func TestSeedsRoundTrip(t *testing.T) {
	in := []fuzz.Seed{
		{Msgs: [][]byte{{1, 2}, {3}}, Gain: 5},
		{Msgs: [][]byte{{}}, Gain: 0},
	}
	out, err := decodeSeeds(encodeSeeds(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("seed count %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Gain != in[i].Gain || len(out[i].Msgs) != len(in[i].Msgs) {
			t.Fatalf("seed %d diverged: %+v vs %+v", i, out[i], in[i])
		}
		for j := range in[i].Msgs {
			if !bytes.Equal(out[i].Msgs[j], in[i].Msgs[j]) {
				t.Fatalf("seed %d msg %d diverged", i, j)
			}
		}
	}
}

func TestInstanceResultRoundTrip(t *testing.T) {
	in := parallel.InstanceResult{
		Index: 3, Config: "x=y", Group: []string{"x", "z"},
		FinalBranches: 512, Execs: 100000, Crashes: 4, ConfigMutations: 7, RestartFailures: 1,
	}
	out, err := decodeInstanceResult(encodeInstanceResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("instance result diverged:\n got %+v\nwant %+v", out, in)
	}
}

// TestDecodeMalformed feeds truncated and corrupt payloads to every
// decoder: they must return an error (or a harmless zero value), never
// panic or over-allocate.
func TestDecodeMalformed(t *testing.T) {
	good := [][]byte{
		encodeAssign(assign{Subject: "DNS", Specs: []parallel.InstanceSpec{{Index: 1}}}),
		encodeStepResult(stepResult{Bytes: 1, Config: "c"}),
		encodeBootResult(bootResult{Config: "c", Delta: []byte{1}}),
		encodeSeeds([]fuzz.Seed{{Msgs: [][]byte{{1}}, Gain: 1}}),
		encodeInstanceResult(parallel.InstanceResult{Index: 1}),
		encodeHello(hello{Name: "w", Version: 1}),
	}
	decoders := []func([]byte) error{
		func(p []byte) error { _, err := decodeAssign(p); return err },
		func(p []byte) error { _, err := decodeStepResult(p); return err },
		func(p []byte) error { _, err := decodeBootResult(p); return err },
		func(p []byte) error { _, err := decodeSeeds(p); return err },
		func(p []byte) error { _, err := decodeInstanceResult(p); return err },
		func(p []byte) error { _, err := decodeHello(p); return err },
	}
	for gi, g := range good {
		for _, dec := range decoders {
			for cut := 0; cut < len(g); cut++ {
				dec(g[:cut]) // must not panic
			}
			mutated := append([]byte(nil), g...)
			for i := range mutated {
				mutated[i] ^= 0xFF
				dec(mutated)
				mutated[i] ^= 0xFF
			}
			_ = gi
		}
	}
}
