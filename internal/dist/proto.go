package dist

import (
	"errors"
	"math"
	"sort"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/schedule"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/wire"
)

// ErrProto reports a structurally invalid protocol payload.
var ErrProto = errors.New("dist: malformed message")

// The codecs below use internal/wire. Every map is serialized in sorted
// key order so encodings are canonical; floats travel as IEEE-754 bits
// so the worker and coordinator compute with identical values.

func putF64(w *wire.Writer, f float64) { w.U64(math.Float64bits(f)) }
func getF64(r *wire.Reader) float64    { return math.Float64frombits(r.U64()) }
func getBool(r *wire.Reader) bool      { return r.U8() != 0 }
func putI64(w *wire.Writer, v int64)   { w.U64(uint64(v)) }
func getI64(r *wire.Reader) int64      { return int64(r.U64()) }

func putBool(w *wire.Writer, b bool) {
	if b {
		w.U8(1)
		return
	}
	w.U8(0)
}

func putStrings(w *wire.Writer, ss []string) {
	w.U16(uint16(len(ss)))
	for _, s := range ss {
		w.String16(s)
	}
}

func getStrings(r *wire.Reader) []string {
	n := int(r.U16())
	if n == 0 || r.Err() != nil {
		return nil
	}
	out := make([]string, 0, min(n, 1024))
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, r.String16())
	}
	return out
}

func putAssignment(w *wire.Writer, a configmodel.Assignment) {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U16(uint16(len(keys)))
	for _, k := range keys {
		w.String16(k)
		w.String16(a[k])
	}
}

func getAssignment(r *wire.Reader) configmodel.Assignment {
	n := int(r.U16())
	if r.Err() != nil {
		return nil
	}
	a := make(configmodel.Assignment, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String16()
		a[k] = r.String16()
	}
	return a
}

// --- Hello / Welcome ---

type hello struct {
	Name    string
	Version byte
}

func encodeHello(h hello) []byte {
	w := &wire.Writer{}
	w.U8(h.Version)
	w.String16(h.Name)
	return w.Bytes()
}

func decodeHello(p []byte) (hello, error) {
	r := wire.NewReader(p)
	h := hello{Version: r.U8(), Name: r.String16()}
	return h, r.Err()
}

// --- Assign ---

type assign struct {
	Subject string
	Opts    parallel.Options
	Specs   []parallel.InstanceSpec
}

func encodeOptions(w *wire.Writer, o parallel.Options) {
	w.U8(byte(o.Mode))
	w.U32(uint32(o.Instances))
	putF64(w, o.VirtualHours)
	putI64(w, o.Seed)
	putF64(w, o.StepCost)
	putF64(w, o.ByteCost)
	putF64(w, o.SyncInterval)
	putF64(w, o.SaturationWindow)
	w.U32(uint32(o.SaturationMinGain))
	w.U32(uint32(o.MaxValues))
	w.U8(byte(o.Allocator))
	putBool(w, o.DisableConfigMutation)
	putF64(w, o.SampleEvery)
	putBool(w, o.RawRelationWeighting)
	putBool(w, o.PeachSharedSchedules)
	w.U32(uint32(o.Concurrency))
}

func decodeOptions(r *wire.Reader) parallel.Options {
	return parallel.Options{
		Mode:                  parallel.Mode(r.U8()),
		Instances:             int(r.U32()),
		VirtualHours:          getF64(r),
		Seed:                  getI64(r),
		StepCost:              getF64(r),
		ByteCost:              getF64(r),
		SyncInterval:          getF64(r),
		SaturationWindow:      getF64(r),
		SaturationMinGain:     int(r.U32()),
		MaxValues:             int(r.U32()),
		Allocator:             parallel.Allocator(r.U8()),
		DisableConfigMutation: getBool(r),
		SampleEvery:           getF64(r),
		RawRelationWeighting:  getBool(r),
		PeachSharedSchedules:  getBool(r),
		Concurrency:           int(r.U32()),
	}
}

func encodeSpec(w *wire.Writer, s parallel.InstanceSpec) {
	w.U32(uint32(s.Index))
	putAssignment(w, s.Config)
	putStrings(w, s.Group.Members)
	w.U16(uint16(len(s.Paths)))
	for _, p := range s.Paths {
		putStrings(w, p.States)
		putStrings(w, p.Models)
	}
	putI64(w, s.EngineSeed)
	putI64(w, s.RngSeed)
}

func decodeSpec(r *wire.Reader) parallel.InstanceSpec {
	s := parallel.InstanceSpec{
		Index:  int(r.U32()),
		Config: getAssignment(r),
		Group:  schedule.Group{Members: getStrings(r)},
	}
	n := int(r.U16())
	for i := 0; i < n && r.Err() == nil; i++ {
		s.Paths = append(s.Paths, fuzz.Path{States: getStrings(r), Models: getStrings(r)})
	}
	s.EngineSeed = getI64(r)
	s.RngSeed = getI64(r)
	return s
}

func encodeAssign(a assign) []byte {
	w := &wire.Writer{}
	w.String16(a.Subject)
	encodeOptions(w, a.Opts)
	w.U16(uint16(len(a.Specs)))
	for _, s := range a.Specs {
		encodeSpec(w, s)
	}
	return w.Bytes()
}

func decodeAssign(p []byte) (assign, error) {
	r := wire.NewReader(p)
	a := assign{Subject: r.String16(), Opts: decodeOptions(r)}
	n := int(r.U16())
	for i := 0; i < n && r.Err() == nil; i++ {
		a.Specs = append(a.Specs, decodeSpec(r))
	}
	if r.Err() != nil {
		return assign{}, r.Err()
	}
	if !r.Empty() {
		return assign{}, ErrProto
	}
	return a, nil
}

// --- Boot ---

type bootReq struct {
	Index       int
	ResumeClock float64 // nonzero when re-booting a lost instance
}

func encodeBootReq(b bootReq) []byte {
	w := &wire.Writer{}
	w.U32(uint32(b.Index))
	putF64(w, b.ResumeClock)
	return w.Bytes()
}

func decodeBootReq(p []byte) (bootReq, error) {
	r := wire.NewReader(p)
	b := bootReq{Index: int(r.U32()), ResumeClock: getF64(r)}
	return b, r.Err()
}

// crashRec is one buffered CrashSink record, replayed into the
// coordinator's ledger in order.
type crashRec struct {
	Crash    bugs.Crash
	Instance int
	T        float64
	Config   string
}

func putCrashRec(w *wire.Writer, c crashRec) {
	w.String16(c.Crash.Protocol)
	w.U8(byte(c.Crash.Kind))
	w.String16(c.Crash.Function)
	w.String32(c.Crash.Detail)
	w.U32(uint32(c.Instance))
	putF64(w, c.T)
	w.String32(c.Config)
}

func getCrashRec(r *wire.Reader) crashRec {
	return crashRec{
		Crash: bugs.Crash{
			Protocol: r.String16(),
			Kind:     bugs.Kind(r.U8()),
			Function: r.String16(),
			Detail:   r.String32(),
		},
		Instance: int(r.U32()),
		T:        getF64(r),
		Config:   r.String32(),
	}
}

func putCrashRecs(w *wire.Writer, cs []crashRec) {
	w.U16(uint16(len(cs)))
	for _, c := range cs {
		putCrashRec(w, c)
	}
}

func getCrashRecs(r *wire.Reader) []crashRec {
	n := int(r.U16())
	var out []crashRec
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, getCrashRec(r))
	}
	return out
}

type bootResult struct {
	Err        string // empty on success
	Config     string
	StartEdges int
	Delta      []byte // full engine map (EncodeDelta against nil)
	Crashes    []crashRec
}

func encodeBootResult(b bootResult) []byte {
	w := &wire.Writer{}
	w.String32(b.Err)
	w.String32(b.Config)
	w.U32(uint32(b.StartEdges))
	w.Bytes32(b.Delta)
	putCrashRecs(w, b.Crashes)
	return w.Bytes()
}

func decodeBootResult(p []byte) (bootResult, error) {
	r := wire.NewReader(p)
	b := bootResult{
		Err:        r.String32(),
		Config:     r.String32(),
		StartEdges: int(r.U32()),
		Delta:      r.Bytes32(),
		Crashes:    getCrashRecs(r),
	}
	return b, r.Err()
}

// --- Step ---

type stepReq struct{ Index int }

func encodeStepReq(s stepReq) []byte {
	w := &wire.Writer{}
	w.U32(uint32(s.Index))
	return w.Bytes()
}

func decodeStepReq(p []byte) (stepReq, error) {
	r := wire.NewReader(p)
	s := stepReq{Index: int(r.U32())}
	return s, r.Err()
}

// mutation mirrors parallel.MutationOutcome plus the crash records the
// restarts produced.
type mutation struct {
	Outcome parallel.MutationOutcome
	Crashes []crashRec
}

type stepResult struct {
	Bytes    int // drives the coordinator's clock advance
	NewEdges int
	Crash    *bugs.Crash
	Delta    []byte // new-coverage words, empty unless NewEdges > 0
	Execs    int
	Corpus   int
	Coverage int
	SatFired bool
	SatEdges int
	Mutation *mutation
	Config   string // configuration after the step (post-mutation)
}

func putMutEvent(w *wire.Writer, e parallel.MutEvent) {
	w.String16(string(e.Type))
	w.String16(e.Entity)
	w.String16(e.Value)
	w.String32(e.Config)
	w.String32(e.Detail)
}

func getMutEvent(r *wire.Reader) parallel.MutEvent {
	return parallel.MutEvent{
		Type:   telemetry.Type(r.String16()),
		Entity: r.String16(),
		Value:  r.String16(),
		Config: r.String32(),
		Detail: r.String32(),
	}
}

func encodeStepResult(s stepResult) []byte {
	w := &wire.Writer{}
	w.U32(uint32(s.Bytes))
	w.U32(uint32(s.NewEdges))
	putBool(w, s.Crash != nil)
	if s.Crash != nil {
		w.String16(s.Crash.Protocol)
		w.U8(byte(s.Crash.Kind))
		w.String16(s.Crash.Function)
		w.String32(s.Crash.Detail)
	}
	w.Bytes32(s.Delta)
	putI64(w, int64(s.Execs))
	w.U32(uint32(s.Corpus))
	w.U32(uint32(s.Coverage))
	putBool(w, s.SatFired)
	w.U32(uint32(s.SatEdges))
	putBool(w, s.Mutation != nil)
	if m := s.Mutation; m != nil {
		w.U16(uint16(len(m.Outcome.Events)))
		for _, e := range m.Outcome.Events {
			putMutEvent(w, e)
		}
		w.U8(byte(m.Outcome.Mutations))
		w.U8(byte(m.Outcome.Boots))
		w.U8(byte(m.Outcome.RestartFails))
		w.U8(byte(m.Outcome.Fallbacks))
		putBool(w, m.Outcome.Restarted)
		putCrashRecs(w, m.Crashes)
	}
	w.String32(s.Config)
	return w.Bytes()
}

func decodeStepResult(p []byte) (stepResult, error) {
	r := wire.NewReader(p)
	s := stepResult{
		Bytes:    int(r.U32()),
		NewEdges: int(r.U32()),
	}
	if getBool(r) {
		s.Crash = &bugs.Crash{
			Protocol: r.String16(),
			Kind:     bugs.Kind(r.U8()),
			Function: r.String16(),
			Detail:   r.String32(),
		}
	}
	s.Delta = r.Bytes32()
	s.Execs = int(getI64(r))
	s.Corpus = int(r.U32())
	s.Coverage = int(r.U32())
	s.SatFired = getBool(r)
	s.SatEdges = int(r.U32())
	if getBool(r) {
		m := &mutation{}
		n := int(r.U16())
		for i := 0; i < n && r.Err() == nil; i++ {
			m.Outcome.Events = append(m.Outcome.Events, getMutEvent(r))
		}
		m.Outcome.Mutations = int(r.U8())
		m.Outcome.Boots = int(r.U8())
		m.Outcome.RestartFails = int(r.U8())
		m.Outcome.Fallbacks = int(r.U8())
		m.Outcome.Restarted = getBool(r)
		m.Crashes = getCrashRecs(r)
		s.Mutation = m
	}
	s.Config = r.String32()
	return s, r.Err()
}

// --- Export / Import ---

type exportReq struct {
	Index int
	Max   int
}

func encodeExportReq(e exportReq) []byte {
	w := &wire.Writer{}
	w.U32(uint32(e.Index))
	w.U8(byte(e.Max))
	return w.Bytes()
}

func decodeExportReq(p []byte) (exportReq, error) {
	r := wire.NewReader(p)
	e := exportReq{Index: int(r.U32()), Max: int(r.U8())}
	return e, r.Err()
}

func putSeeds(w *wire.Writer, seeds []fuzz.Seed) {
	w.U16(uint16(len(seeds)))
	for _, s := range seeds {
		w.U16(uint16(len(s.Msgs)))
		for _, m := range s.Msgs {
			w.Bytes32(m)
		}
		w.U32(uint32(s.Gain))
	}
}

func getSeeds(r *wire.Reader) []fuzz.Seed {
	n := int(r.U16())
	var out []fuzz.Seed
	for i := 0; i < n && r.Err() == nil; i++ {
		var s fuzz.Seed
		msgs := int(r.U16())
		for j := 0; j < msgs && r.Err() == nil; j++ {
			s.Msgs = append(s.Msgs, r.Bytes32())
		}
		s.Gain = int(r.U32())
		out = append(out, s)
	}
	return out
}

func encodeSeeds(seeds []fuzz.Seed) []byte {
	w := &wire.Writer{}
	putSeeds(w, seeds)
	return w.Bytes()
}

func decodeSeeds(p []byte) ([]fuzz.Seed, error) {
	r := wire.NewReader(p)
	s := getSeeds(r)
	return s, r.Err()
}

type importReq struct {
	Index int
	Seeds []fuzz.Seed
}

func encodeImportReq(i importReq) []byte {
	w := &wire.Writer{}
	w.U32(uint32(i.Index))
	putSeeds(w, i.Seeds)
	return w.Bytes()
}

func decodeImportReq(p []byte) (importReq, error) {
	r := wire.NewReader(p)
	i := importReq{Index: int(r.U32()), Seeds: getSeeds(r)}
	return i, r.Err()
}

// --- Finalize ---

func encodeInstanceResult(ir parallel.InstanceResult) []byte {
	w := &wire.Writer{}
	w.U32(uint32(ir.Index))
	w.String32(ir.Config)
	putStrings(w, ir.Group)
	w.U32(uint32(ir.FinalBranches))
	putI64(w, int64(ir.Execs))
	w.U32(uint32(ir.Crashes))
	w.U32(uint32(ir.ConfigMutations))
	w.U32(uint32(ir.RestartFailures))
	return w.Bytes()
}

func decodeInstanceResult(p []byte) (parallel.InstanceResult, error) {
	r := wire.NewReader(p)
	ir := parallel.InstanceResult{
		Index:           int(r.U32()),
		Config:          r.String32(),
		Group:           getStrings(r),
		FinalBranches:   int(r.U32()),
		Execs:           int(getI64(r)),
		Crashes:         int(r.U32()),
		ConfigMutations: int(r.U32()),
		RestartFailures: int(r.U32()),
	}
	return ir, r.Err()
}
