package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/schedule"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
	"cmfuzz/internal/wire"
)

// ErrProto reports a structurally invalid protocol payload.
var ErrProto = errors.New("dist: malformed message")

// The codecs below use internal/wire. Every map is serialized in sorted
// key order so encodings are canonical; floats travel as IEEE-754 bits
// so the worker and coordinator compute with identical values.

func putF64(w *wire.Writer, f float64) { w.U64(math.Float64bits(f)) }
func getF64(r *wire.Reader) float64    { return math.Float64frombits(r.U64()) }
func getBool(r *wire.Reader) bool      { return r.U8() != 0 }
func putI64(w *wire.Writer, v int64)   { w.U64(uint64(v)) }
func getI64(r *wire.Reader) int64      { return int64(r.U64()) }

func putBool(w *wire.Writer, b bool) {
	if b {
		w.U8(1)
		return
	}
	w.U8(0)
}

func putStrings(w *wire.Writer, ss []string) {
	w.U16(uint16(len(ss)))
	for _, s := range ss {
		w.String16(s)
	}
}

func getStrings(r *wire.Reader) []string {
	n := int(r.U16())
	if n == 0 || r.Err() != nil {
		return nil
	}
	out := make([]string, 0, min(n, 1024))
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, r.String16())
	}
	return out
}

func putAssignment(w *wire.Writer, a configmodel.Assignment) {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U16(uint16(len(keys)))
	for _, k := range keys {
		w.String16(k)
		w.String16(a[k])
	}
}

func getAssignment(r *wire.Reader) configmodel.Assignment {
	n := int(r.U16())
	if r.Err() != nil {
		return nil
	}
	a := make(configmodel.Assignment, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String16()
		a[k] = r.String16()
	}
	return a
}

// --- Hello / Welcome ---

type hello struct {
	Name    string
	Version byte
}

func encodeHello(h hello) []byte {
	w := &wire.Writer{}
	w.U8(h.Version)
	w.String16(h.Name)
	return w.Bytes()
}

func decodeHello(p []byte) (hello, error) {
	r := wire.NewReader(p)
	h := hello{Version: r.U8(), Name: r.String16()}
	return h, r.Err()
}

// --- Assign ---

// Campaign ids namespace every instance-addressed message so one worker
// connection can host instances from many concurrent campaigns. They
// ride inside the existing payloads (never as extra frames), so the
// startup frame sequence — and the fault-injection tests that count it
// — is identical to a single-campaign run.
type assign struct {
	Campaign uint32
	Subject  string
	// Trace asks the worker to run its own span tracer over lease
	// execution and ship completed records back in lease replies.
	// Timing observation only — it never influences execution, so
	// traced and untraced campaigns stay byte-identical.
	Trace bool
	// LiveSpec, when non-empty, is a JSON-encoded live-target spec: the
	// worker builds a live subject from it instead of resolving Subject
	// by name. The whole spec (config template included) travels inline
	// so workers never need files from the submitter's machine.
	LiveSpec string
	Opts     parallel.Options
	Specs    []parallel.InstanceSpec
}

func encodeOptions(w *wire.Writer, o parallel.Options) {
	w.U8(byte(o.Mode))
	w.U32(uint32(o.Instances))
	putF64(w, o.VirtualHours)
	putI64(w, o.Seed)
	putF64(w, o.StepCost)
	putF64(w, o.ByteCost)
	putF64(w, o.SyncInterval)
	putF64(w, o.SaturationWindow)
	w.U32(uint32(o.SaturationMinGain))
	w.U32(uint32(o.MaxValues))
	w.U8(byte(o.Allocator))
	putBool(w, o.DisableConfigMutation)
	putF64(w, o.SampleEvery)
	putBool(w, o.RawRelationWeighting)
	putBool(w, o.PeachSharedSchedules)
	w.U32(uint32(o.Concurrency))
	putF64(w, o.LinkLoss)
	putF64(w, o.LinkLatencyBase)
	putF64(w, o.LinkLatencyJitter)
}

func decodeOptions(r *wire.Reader) parallel.Options {
	return parallel.Options{
		Mode:                  parallel.Mode(r.U8()),
		Instances:             int(r.U32()),
		VirtualHours:          getF64(r),
		Seed:                  getI64(r),
		StepCost:              getF64(r),
		ByteCost:              getF64(r),
		SyncInterval:          getF64(r),
		SaturationWindow:      getF64(r),
		SaturationMinGain:     int(r.U32()),
		MaxValues:             int(r.U32()),
		Allocator:             parallel.Allocator(r.U8()),
		DisableConfigMutation: getBool(r),
		SampleEvery:           getF64(r),
		RawRelationWeighting:  getBool(r),
		PeachSharedSchedules:  getBool(r),
		Concurrency:           int(r.U32()),
		LinkLoss:              getF64(r),
		LinkLatencyBase:       getF64(r),
		LinkLatencyJitter:     getF64(r),
	}
}

func encodeSpec(w *wire.Writer, s parallel.InstanceSpec) {
	w.U32(uint32(s.Index))
	putAssignment(w, s.Config)
	putStrings(w, s.Group.Members)
	w.U16(uint16(len(s.Paths)))
	for _, p := range s.Paths {
		putStrings(w, p.States)
		putStrings(w, p.Models)
	}
	putI64(w, s.EngineSeed)
	putI64(w, s.RngSeed)
}

func decodeSpec(r *wire.Reader) parallel.InstanceSpec {
	s := parallel.InstanceSpec{
		Index:  int(r.U32()),
		Config: getAssignment(r),
		Group:  schedule.Group{Members: getStrings(r)},
	}
	n := int(r.U16())
	for i := 0; i < n && r.Err() == nil; i++ {
		s.Paths = append(s.Paths, fuzz.Path{States: getStrings(r), Models: getStrings(r)})
	}
	s.EngineSeed = getI64(r)
	s.RngSeed = getI64(r)
	return s
}

// liveSpecOf returns the inline live-target spec for subjects that
// carry one ("" otherwise). The assertion keeps dist decoupled from
// the live package on the coordinator side: any subject exposing
// LiveSpecJSON rides the wire.
func liveSpecOf(sub subject.Subject) string {
	if ls, ok := sub.(interface{ LiveSpecJSON() string }); ok {
		return ls.LiveSpecJSON()
	}
	return ""
}

func encodeAssign(a assign) []byte {
	w := &wire.Writer{}
	w.U32(a.Campaign)
	w.String16(a.Subject)
	putBool(w, a.Trace)
	w.String32(a.LiveSpec)
	encodeOptions(w, a.Opts)
	w.U16(uint16(len(a.Specs)))
	for _, s := range a.Specs {
		encodeSpec(w, s)
	}
	return w.Bytes()
}

func decodeAssign(p []byte) (assign, error) {
	r := wire.NewReader(p)
	a := assign{Campaign: r.U32(), Subject: r.String16(), Trace: getBool(r), LiveSpec: r.String32(), Opts: decodeOptions(r)}
	n := int(r.U16())
	for i := 0; i < n && r.Err() == nil; i++ {
		a.Specs = append(a.Specs, decodeSpec(r))
	}
	if r.Err() != nil {
		return assign{}, r.Err()
	}
	if !r.Empty() {
		return assign{}, ErrProto
	}
	return a, nil
}

// --- Boot ---

type bootReq struct {
	Campaign    uint32
	Index       int
	ResumeClock float64 // nonzero when re-booting a lost instance
}

func encodeBootReq(b bootReq) []byte {
	w := &wire.Writer{}
	w.U32(b.Campaign)
	w.U32(uint32(b.Index))
	putF64(w, b.ResumeClock)
	return w.Bytes()
}

func decodeBootReq(p []byte) (bootReq, error) {
	r := wire.NewReader(p)
	b := bootReq{Campaign: r.U32(), Index: int(r.U32()), ResumeClock: getF64(r)}
	return b, r.Err()
}

// crashRec is one buffered CrashSink record (parallel.RecordingSink's
// element type), replayed into the coordinator's ledger in order.
type crashRec = parallel.CrashRec

func putCrash(w *wire.Writer, c *bugs.Crash) {
	w.String16(c.Protocol)
	w.U8(byte(c.Kind))
	w.String16(c.Function)
	w.String32(c.Detail)
}

func getCrash(r *wire.Reader) bugs.Crash {
	return bugs.Crash{
		Protocol: r.String16(),
		Kind:     bugs.Kind(r.U8()),
		Function: r.String16(),
		Detail:   r.String32(),
	}
}

func putCrashRec(w *wire.Writer, c crashRec) {
	putCrash(w, &c.Crash)
	w.U32(uint32(c.Instance))
	putF64(w, c.T)
	w.String32(c.Config)
}

func getCrashRec(r *wire.Reader) crashRec {
	return crashRec{
		Crash:    getCrash(r),
		Instance: int(r.U32()),
		T:        getF64(r),
		Config:   r.String32(),
	}
}

func putCrashRecs(w *wire.Writer, cs []crashRec) {
	w.U16(uint16(len(cs)))
	for _, c := range cs {
		putCrashRec(w, c)
	}
}

func getCrashRecs(r *wire.Reader) []crashRec {
	n := int(r.U16())
	var out []crashRec
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, getCrashRec(r))
	}
	return out
}

type bootResult struct {
	Err        string // empty on success
	Config     string
	StartEdges int
	Delta      []byte // full engine map (EncodeDelta against nil)
	Crashes    []crashRec
}

func encodeBootResult(b bootResult) []byte {
	w := &wire.Writer{}
	w.String32(b.Err)
	w.String32(b.Config)
	w.U32(uint32(b.StartEdges))
	w.Bytes32(b.Delta)
	putCrashRecs(w, b.Crashes)
	return w.Bytes()
}

func decodeBootResult(p []byte) (bootResult, error) {
	r := wire.NewReader(p)
	b := bootResult{
		Err:        r.String32(),
		Config:     r.String32(),
		StartEdges: int(r.U32()),
		Delta:      r.Bytes32(),
		Crashes:    getCrashRecs(r),
	}
	return b, r.Err()
}

// --- Lease ---

// indexReq addresses a single instance (Finalize).
type indexReq struct {
	Campaign uint32
	Index    int
}

func encodeIndexReq(s indexReq) []byte {
	w := &wire.Writer{}
	w.U32(s.Campaign)
	w.U32(uint32(s.Index))
	return w.Bytes()
}

func decodeIndexReq(p []byte) (indexReq, error) {
	r := wire.NewReader(p)
	s := indexReq{Campaign: r.U32(), Index: int(r.U32())}
	return s, r.Err()
}

// --- Release ---

// encodeRelease addresses a whole campaign: the worker closes and
// forgets that campaign's instances but keeps serving every other
// campaign on the connection.
func encodeRelease(campaign uint32) []byte {
	w := &wire.Writer{}
	w.U32(campaign)
	return w.Bytes()
}

func decodeRelease(p []byte) (uint32, error) {
	r := wire.NewReader(p)
	id := r.U32()
	if r.Err() != nil {
		return 0, r.Err()
	}
	if !r.Empty() {
		return 0, ErrProto
	}
	return id, nil
}

// mutation mirrors parallel.MutationOutcome plus the crash records the
// restarts produced.
type mutation struct {
	Outcome parallel.MutationOutcome
	Crashes []crashRec
}

func putMutEvent(w *wire.Writer, e parallel.MutEvent) {
	w.String16(string(e.Type))
	w.String16(e.Entity)
	w.String16(e.Value)
	w.String32(e.Config)
	w.String32(e.Detail)
}

func getMutEvent(r *wire.Reader) parallel.MutEvent {
	return parallel.MutEvent{
		Type:   telemetry.Type(r.String16()),
		Entity: r.String16(),
		Value:  r.String16(),
		Config: r.String32(),
		Detail: r.String32(),
	}
}

// A lease hands one instance a batch of work: seeds to import first
// (the previous sync's collection, empty on the first lease), then run
// autonomously until the virtual clock crosses Boundary (the instance's
// next sync point) or Horizon, whichever comes first.
type lease struct {
	Campaign uint32
	Index    int
	Boundary float64
	Horizon  float64
	Seeds    []fuzz.Seed
}

func encodeLease(l lease) []byte {
	w := &wire.Writer{}
	w.U32(l.Campaign)
	w.U32(uint32(l.Index))
	putF64(w, l.Boundary)
	putF64(w, l.Horizon)
	putSeeds(w, l.Seeds)
	return w.Bytes()
}

func decodeLease(p []byte) (lease, error) {
	r := wire.NewReader(p)
	l := lease{
		Campaign: r.U32(),
		Index:    int(r.U32()),
		Boundary: getF64(r),
		Horizon:  getF64(r),
		Seeds:    getSeeds(r),
	}
	if r.Err() != nil {
		return lease{}, r.Err()
	}
	if !r.Empty() {
		return lease{}, ErrProto
	}
	return l, nil
}

// Per-step record encoding inside a lease reply. A flags byte leads
// each record so the common case (no crash, no new edges, no
// saturation) costs two bytes: flags + a varint byte count.
const (
	leaseFlagCrash = 1 << 0
	leaseFlagEdges = 1 << 1
	leaseFlagSat   = 1 << 2

	leaseFlagsKnown = leaseFlagCrash | leaseFlagEdges | leaseFlagSat

	// leaseEnd terminates the record stream (it cannot collide with a
	// flags byte, whose unknown bits are rejected).
	leaseEnd byte = 0xFF
)

// A leaseRecord is the decoded form of one worker step, ready for the
// coordinator to replay.
type leaseRecord struct {
	bytes    int
	newEdges int
	crash    *bugs.Crash
	delta    []byte
	seed     fuzz.Seed
	satFired bool
	mutation *mutation
	config   string // assignment after the mutation attempt
	coverage int    // post-absorb edge count, only when satFired
}

// appendLeaseStep encodes one step record onto w. The worker calls it
// from StepN's afterRecord hook, so the reply is built incrementally in
// a reused encoder instead of being assembled from per-step slices.
func appendLeaseStep(w *wire.Writer, rec *parallel.LeaseStep) {
	var flags byte
	if rec.Crash != nil {
		flags |= leaseFlagCrash
	}
	if rec.NewEdges > 0 {
		flags |= leaseFlagEdges
	}
	if rec.SatFired {
		flags |= leaseFlagSat
	}
	w.U8(flags)
	w.Varint(uint32(rec.Bytes))
	if rec.Crash != nil {
		putCrash(w, rec.Crash)
	}
	if rec.NewEdges > 0 {
		w.Varint(uint32(rec.NewEdges))
		w.Bytes32(rec.Delta)
		// Seed.Gain is NewEdges by construction, so only the messages
		// travel. Sequences are at most a handful of messages (the
		// engine caps path length), so a one-byte count suffices.
		w.U8(byte(len(rec.Seed.Msgs)))
		for _, m := range rec.Seed.Msgs {
			w.Bytes32(m)
		}
	}
	if rec.SatFired {
		m := rec.Mutation
		w.U16(uint16(len(m.Events)))
		for _, e := range m.Events {
			putMutEvent(w, e)
		}
		w.U8(byte(m.Mutations))
		w.U8(byte(m.Boots))
		w.U8(byte(m.RestartFails))
		w.U8(byte(m.Fallbacks))
		putBool(w, m.Restarted)
		putCrashRecs(w, rec.MutationCrashes)
		w.String32(rec.Config)
		w.Varint(uint32(rec.Coverage))
	}
}

// getLeaseRecord parses one step record whose flags byte has already
// been read and validated.
func getLeaseRecord(r *wire.Reader, flags byte) (leaseRecord, error) {
	rec := leaseRecord{bytes: int(r.Varint())}
	if flags&leaseFlagCrash != 0 {
		c := getCrash(r)
		rec.crash = &c
	}
	if flags&leaseFlagEdges != 0 {
		rec.newEdges = int(r.Varint())
		if r.Err() == nil && rec.newEdges == 0 {
			return rec, ErrProto
		}
		rec.delta = r.Bytes32()
		msgs := int(r.U8())
		for j := 0; j < msgs && r.Err() == nil; j++ {
			rec.seed.Msgs = append(rec.seed.Msgs, r.Bytes32())
		}
		rec.seed.Gain = rec.newEdges
	}
	if flags&leaseFlagSat != 0 {
		rec.satFired = true
		m := &mutation{}
		n := int(r.U16())
		for i := 0; i < n && r.Err() == nil; i++ {
			m.Outcome.Events = append(m.Outcome.Events, getMutEvent(r))
		}
		m.Outcome.Mutations = int(r.U8())
		m.Outcome.Boots = int(r.U8())
		m.Outcome.RestartFails = int(r.U8())
		m.Outcome.Fallbacks = int(r.U8())
		m.Outcome.Restarted = getBool(r)
		m.Crashes = getCrashRecs(r)
		rec.mutation = m
		rec.config = r.String32()
		rec.coverage = int(r.Varint())
	}
	return rec, r.Err()
}

// putLeaseRecord re-encodes a decoded record in the exact wire form
// appendLeaseStep produces. The checkpoint uses it to persist a drained
// lease batch that has not been fully replayed yet.
func putLeaseRecord(w *wire.Writer, rec *leaseRecord) {
	var flags byte
	if rec.crash != nil {
		flags |= leaseFlagCrash
	}
	if rec.newEdges > 0 {
		flags |= leaseFlagEdges
	}
	if rec.satFired {
		flags |= leaseFlagSat
	}
	w.U8(flags)
	w.Varint(uint32(rec.bytes))
	if rec.crash != nil {
		putCrash(w, rec.crash)
	}
	if rec.newEdges > 0 {
		w.Varint(uint32(rec.newEdges))
		w.Bytes32(rec.delta)
		w.U8(byte(len(rec.seed.Msgs)))
		for _, m := range rec.seed.Msgs {
			w.Bytes32(m)
		}
	}
	if rec.satFired {
		m := rec.mutation
		w.U16(uint16(len(m.Outcome.Events)))
		for _, e := range m.Outcome.Events {
			putMutEvent(w, e)
		}
		w.U8(byte(m.Outcome.Mutations))
		w.U8(byte(m.Outcome.Boots))
		w.U8(byte(m.Outcome.RestartFails))
		w.U8(byte(m.Outcome.Fallbacks))
		putBool(w, m.Outcome.Restarted)
		putCrashRecs(w, m.Crashes)
		w.String32(rec.config)
		w.Varint(uint32(rec.coverage))
	}
}

// putSpanRecords appends the span-record section that closes every
// lease reply: a count, each completed span (id/parent/track/name/
// start/end/attrs — attribute values flattened to strings with %v),
// then the worker's tracer clock at encode time so the coordinator can
// align the worker timeline with its own. With tracing off the section
// is a count of zero and a zero clock (~12 bytes).
func putSpanRecords(w *wire.Writer, recs []trace.Record, now time.Duration) {
	w.U32(uint32(len(recs)))
	for _, rec := range recs {
		putI64(w, int64(rec.ID))
		putI64(w, int64(rec.Parent))
		w.U16(uint16(rec.Track))
		w.String16(rec.Name)
		putI64(w, int64(rec.Start))
		putI64(w, int64(rec.End))
		w.U8(byte(len(rec.Attrs)))
		for _, a := range rec.Attrs {
			w.String16(a.Key)
			w.String32(fmt.Sprint(a.Value))
		}
	}
	putI64(w, int64(now))
}

// getSpanRecords parses the span-record section and the worker clock.
func getSpanRecords(r *wire.Reader) ([]trace.Record, time.Duration) {
	n := int(r.U32())
	var recs []trace.Record
	for i := 0; i < n && r.Err() == nil; i++ {
		rec := trace.Record{
			ID:     int(getI64(r)),
			Parent: int(getI64(r)),
			Track:  int(r.U16()),
			Name:   r.String16(),
			Start:  time.Duration(getI64(r)),
			End:    time.Duration(getI64(r)),
		}
		attrs := int(r.U8())
		for j := 0; j < attrs && r.Err() == nil; j++ {
			rec.Attrs = append(rec.Attrs, trace.A(r.String16(), r.String32()))
		}
		recs = append(recs, rec)
	}
	return recs, time.Duration(getI64(r))
}

// decodeLeaseResult parses a consolidated lease reply: step records up
// to the leaseEnd terminator, whether the instance stopped at its sync
// boundary (false means it ran out the campaign horizon), then the
// span-record section (worker trace spans plus the worker's tracer
// clock; empty with a zero clock when tracing is off).
func decodeLeaseResult(p []byte) ([]leaseRecord, bool, []trace.Record, time.Duration, error) {
	r := wire.NewReader(p)
	var recs []leaseRecord
	for {
		flags := r.U8()
		if r.Err() != nil {
			return nil, false, nil, 0, r.Err()
		}
		if flags == leaseEnd {
			break
		}
		if flags&^byte(leaseFlagsKnown) != 0 {
			return nil, false, nil, 0, ErrProto
		}
		rec, err := getLeaseRecord(r, flags)
		if err != nil {
			return nil, false, nil, 0, err
		}
		recs = append(recs, rec)
	}
	syncDue := getBool(r)
	spans, workerNow := getSpanRecords(r)
	if r.Err() != nil {
		return nil, false, nil, 0, r.Err()
	}
	if !r.Empty() {
		return nil, false, nil, 0, ErrProto
	}
	return recs, syncDue, spans, workerNow, nil
}

func putSeeds(w *wire.Writer, seeds []fuzz.Seed) {
	w.U16(uint16(len(seeds)))
	for _, s := range seeds {
		w.U16(uint16(len(s.Msgs)))
		for _, m := range s.Msgs {
			w.Bytes32(m)
		}
		w.U32(uint32(s.Gain))
	}
}

func getSeeds(r *wire.Reader) []fuzz.Seed {
	n := int(r.U16())
	var out []fuzz.Seed
	for i := 0; i < n && r.Err() == nil; i++ {
		var s fuzz.Seed
		msgs := int(r.U16())
		for j := 0; j < msgs && r.Err() == nil; j++ {
			s.Msgs = append(s.Msgs, r.Bytes32())
		}
		s.Gain = int(r.U32())
		out = append(out, s)
	}
	return out
}

// --- Finalize ---

func encodeInstanceResult(ir parallel.InstanceResult) []byte {
	w := &wire.Writer{}
	w.U32(uint32(ir.Index))
	w.String32(ir.Config)
	putStrings(w, ir.Group)
	w.U32(uint32(ir.FinalBranches))
	putI64(w, int64(ir.Execs))
	w.U32(uint32(ir.Crashes))
	w.U32(uint32(ir.ConfigMutations))
	w.U32(uint32(ir.RestartFailures))
	return w.Bytes()
}

func decodeInstanceResult(p []byte) (parallel.InstanceResult, error) {
	r := wire.NewReader(p)
	ir := parallel.InstanceResult{
		Index:           int(r.U32()),
		Config:          r.String32(),
		Group:           getStrings(r),
		FinalBranches:   int(r.U32()),
		Execs:           int(getI64(r)),
		Crashes:         int(r.U32()),
		ConfigMutations: int(r.U32()),
		RestartFailures: int(r.U32()),
	}
	return ir, r.Err()
}
