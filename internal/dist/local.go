package dist

import (
	"context"
	"fmt"
	"net"

	"cmfuzz/internal/parallel"
	"cmfuzz/internal/subject"
)

// RunLocal runs a distributed campaign entirely in-process: a
// coordinator plus `workers` worker loops, connected over net.Pipe.
// It exists for `cmfuzz campaign -dist N`, for CI smoke tests, and as
// the deterministic harness the failure-path tests build on — the
// pipes are synchronous, so there is no kernel socket buffering to
// make timings (and thus failure interleavings) flaky.
//
// The Result is byte-identical to parallel.Run(ctx, sub, opts) for the
// same options and seed, whatever the worker count.
func RunLocal(ctx context.Context, sub subject.Subject, opts parallel.Options, workers int, cfg Config) (*parallel.Result, *Coordinator, error) {
	if workers <= 0 {
		workers = 2
	}
	resolve := func(name string) (subject.Subject, error) {
		if info := sub.Info(); name != info.Protocol {
			return nil, fmt.Errorf("dist: local worker asked for subject %q, running %q", name, info.Protocol)
		}
		return sub, nil
	}
	coord := NewCoordinator(sub, opts, cfg)
	serveErr := make(chan error, workers)
	for i := 0; i < workers; i++ {
		cConn, wConn := net.Pipe()
		w := NewWorker(WorkerConfig{Name: fmt.Sprintf("local-%d", i), Resolve: resolve})
		// The worker speaks first (Hello), and net.Pipe writes block
		// until read, so Serve must be running before AddConn.
		go func() { serveErr <- w.Serve(wConn) }()
		if err := coord.AddConn(cConn); err != nil {
			return nil, nil, err
		}
	}
	res, err := coord.Run(ctx)
	// Workers exit on the Shutdown frames (or closed pipes) Run sends
	// on its way out; drain so no goroutine outlives the call.
	for i := 0; i < workers; i++ {
		<-serveErr
	}
	return res, coord, err
}
