package dist_test

import (
	"context"
	"net"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cmfuzz/internal/dist"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
)

// addPipeWorkers attaches n in-process pipe workers to add (a
// Coordinator or Pool AddConn). The returned func joins the worker
// goroutines; call it after the coordinator has shut the fleet down.
func addPipeWorkers(t *testing.T, add func(net.Conn) error, n int) func() {
	t.Helper()
	serveErr := make(chan error, n)
	for i := 0; i < n; i++ {
		cConn, wConn := net.Pipe()
		w := dist.NewWorker(dist.WorkerConfig{Name: "w", Resolve: func(name string) (subject.Subject, error) {
			return protocols.ByName(name)
		}})
		go func() { serveErr <- w.Serve(wConn) }()
		if err := add(cConn); err != nil {
			t.Fatal(err)
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			if err := <-serveErr; err != nil {
				t.Error(err)
			}
		}
	}
}

func diffTrees(t *testing.T, label string, want, got map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: artifact sets differ: %d files vs %d", label, len(want), len(got))
	}
	for rel, a := range want {
		b, ok := got[rel]
		if !ok {
			t.Fatalf("%s: missing artifact %s", label, rel)
		}
		if a != b {
			t.Fatalf("%s: artifact %s diverged:\n--- want ---\n%s\n--- got ---\n%s", label, rel, a, b)
		}
	}
}

// TestCheckpointResumeByteIdentity pins the crash-safe lifecycle: a
// campaign advanced in slices with checkpoints taken mid-lease (t=557,
// inside the first sync window) and at a sync boundary (t=1200), then
// restored onto fresh coordinators with fresh workers — even a
// different worker count — must produce artifacts byte-identical to an
// uninterrupted in-process run.
func TestCheckpointResumeByteIdentity(t *testing.T) {
	sub := mustSubject(t, "DNS")
	ctx := context.Background()

	recA := telemetry.New()
	resA, err := parallel.Run(ctx, sub, baseOptions(recA))
	if err != nil {
		t.Fatal(err)
	}
	dirA := filepath.Join(t.TempDir(), "baseline")
	writeAll(t, dirA, resA, recA)
	treeA := readTree(t, dirA)

	// Sliced run: the same coordinator advances through two checkpoints
	// and finishes. Checkpoint drains in-flight leases, so taking one
	// must not perturb the replay.
	recB := telemetry.New()
	coord := dist.NewCoordinator(sub, baseOptions(recB), dist.Config{HeartbeatInterval: -1})
	wait := addPipeWorkers(t, coord.AddConn, 2)
	if err := coord.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := coord.Advance(ctx, 557); err != nil {
		t.Fatal(err)
	}
	ck1, err := coord.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Advance(ctx, 1200); err != nil {
		t.Fatal(err)
	}
	ck2, err := coord.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Advance(ctx, coord.Horizon()); err != nil {
		t.Fatal(err)
	}
	resB, err := coord.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coord.Close()
	wait()
	dirB := filepath.Join(t.TempDir(), "sliced")
	writeAll(t, dirB, resB, recB)
	diffTrees(t, "sliced run", treeA, readTree(t, dirB))

	// Resume each checkpoint on a brand-new coordinator (simulating a
	// coordinator crash after the checkpoint was persisted). The
	// mid-lease resume runs on a different worker count than the
	// original fleet: instance placement must not leak into artifacts.
	for _, tc := range []struct {
		name    string
		blob    []byte
		workers int
	}{
		{"mid-lease", ck1, 3},
		{"sync-boundary", ck2, 2},
	} {
		c2 := dist.NewCoordinator(sub, baseOptions(telemetry.New()), dist.Config{HeartbeatInterval: -1})
		wait2 := addPipeWorkers(t, c2.AddConn, tc.workers)
		if err := c2.Restore(ctx, tc.blob); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := c2.Advance(ctx, c2.Horizon()); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		res2, err := c2.Finish(ctx)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		c2.Close()
		wait2()
		dir2 := filepath.Join(t.TempDir(), "resume")
		writeAll(t, dir2, res2, c2.Recorder())
		diffTrees(t, "resume from "+tc.name, treeA, readTree(t, dir2))
	}
}

// TestCancelledRunReleasesGoroutines pins the lifecycle audit: after a
// campaign is cancelled mid-run — including mid-lease, with replies in
// flight — every coordinator-side goroutine (dispatchers, heartbeats)
// must be joined by the time Run returns. Run under -race this also
// shakes out unsynchronized teardown.
func TestCancelledRunReleasesGoroutines(t *testing.T) {
	sub := mustSubject(t, "DNS")
	before := runtime.NumGoroutine()
	opts := parallel.Options{Mode: parallel.ModeCMFuzz, VirtualHours: 0.25, Seed: 5, Concurrency: 1}
	for rep := 0; rep < 3; rep++ {
		ctx, cancel := context.WithCancel(context.Background())
		if rep == 0 {
			cancel() // cancelled before the first record is replayed
		} else {
			go func() {
				time.Sleep(time.Duration(rep) * 10 * time.Millisecond)
				cancel() // cancelled mid-lease
			}()
		}
		dist.RunLocal(ctx, sub, opts, 2, dist.Config{})
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancelled runs: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
