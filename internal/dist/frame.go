// Package dist runs a parallel fuzzing campaign across worker processes.
//
// A coordinator owns everything global — the scheduling plan, the
// virtual-clock event loop, the union coverage map, the sampled series,
// the bug ledger, and telemetry — while workers own whole instances
// (engine, booted target, mutation RNG, saturation tracker) and execute
// the exact same per-instance code the in-process campaign uses
// (parallel.Host / parallel.Instance).
//
// Workers run autonomously between scheduler touchpoints: the
// coordinator ships a lease per instance (imported seeds plus a
// virtual-clock budget up to the next sync boundary or the campaign
// horizon) and the worker executes the whole batch locally, streaming
// back one consolidated reply carrying every step's coverage delta,
// crash record, corpus addition, and saturation/mutation outcome. The
// coordinator replays those records into the global event loop in
// virtual-clock order, computing seed-sync exports from per-instance
// corpus mirrors, so a distributed campaign and parallel.Run produce
// byte-identical Results for the same seed: same coverage series, same
// ledger order, same counters — while paying one RPC round-trip per
// sync interval instead of one per engine step.
//
// Coverage travels as deltas (coverage.EncodeDelta over dirty words
// only), so lease payloads are proportional to newly found edges, not
// to the 64 Ki map.
//
// Failure handling is first-class: workers heartbeat, every RPC carries
// a deadline, and when a worker dies its instances are re-booted on
// survivors from their original specs at the clock they had reached. A
// lease reply is all-or-nothing, so a worker that dies mid-lease loses
// the whole batch and the re-boot resumes at the lease's start clock
// (corpus progress on the dead worker is lost; the re-boot is counted
// in telemetry).
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame layout: u32 big-endian length (of type byte + payload), u8
// message type, payload. The length guard bounds a hostile or corrupt
// peer to maxFrame before any allocation happens.
const maxFrame = 64 << 20

// protocolVersion gates the Hello/Welcome handshake; coordinator and
// worker must agree exactly. Version 2 is the lease protocol; version 3
// namespaces every instance-addressed message with a campaign id, so
// one worker can host instances from many concurrent campaigns (the
// fleet service), and adds the Release RPC that retires one campaign's
// instances without tearing the connection down. Version 4 adds
// cross-process tracing: Assign carries a Trace flag, and every lease
// reply ends with a span-record section (empty when tracing is off)
// plus the worker's tracer clock, so the coordinator can stitch worker
// spans into one aligned Chrome trace. Version 5 adds live targets:
// Assign carries an inline JSON live-target spec (empty for built-in
// subjects) and the options gain the link-impairment knobs.
const protocolVersion = 5

// Message types.
const (
	msgHello byte = iota + 1
	msgWelcome
	msgAssign
	msgAssignOK
	msgBoot
	msgBootResult
	msgLease
	msgLeaseResult
	msgFinalize
	msgInstanceResult
	msgPing
	msgPong
	msgShutdown
	msgError
	msgRelease
	msgReleaseOK
)

var errFrameTooLarge = errors.New("dist: frame exceeds size limit")

// A frameWriter sends framed messages through a reusable scratch
// buffer, so the lease loop does not allocate a fresh header+payload
// copy per frame. The header and payload still go out in a single
// Write, so a concurrent deadline cannot split a frame (and each frame
// stays one Read on the far side of a net.Pipe, which the fault-
// injection tests count on). Not safe for concurrent use; each
// connection owns its own.
type frameWriter struct {
	buf []byte
}

func (f *frameWriter) write(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return errFrameTooLarge
	}
	need := 5 + len(payload)
	if cap(f.buf) < need {
		f.buf = make([]byte, need)
	}
	buf := f.buf[:need]
	binary.BigEndian.PutUint32(buf, uint32(len(payload)+1))
	buf[4] = typ
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

// writeFrame sends one framed message through a throwaway frameWriter
// (cold paths only; hot paths reuse a connection-owned frameWriter).
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	return (&frameWriter{}).write(w, typ, payload)
}

// readFrame reads one framed message.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("dist: zero-length frame")
	}
	if n > maxFrame {
		return 0, nil, errFrameTooLarge
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}
