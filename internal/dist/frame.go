// Package dist runs a parallel fuzzing campaign across worker processes.
//
// A coordinator owns everything global — the scheduling plan, the
// virtual-clock event loop, the union coverage map, the sampled series,
// the bug ledger, and telemetry — while workers own whole instances
// (engine, booted target, mutation RNG, saturation tracker) and execute
// the exact same per-instance code the in-process campaign uses
// (parallel.Host / parallel.Instance). The coordinator drives workers in
// lockstep over a length-prefixed binary protocol, so a distributed
// campaign and parallel.Run produce byte-identical Results for the same
// seed: same coverage series, same ledger order, same counters.
//
// Coverage travels as deltas (coverage.EncodeDelta over dirty words
// only), so sync payloads are proportional to newly found edges, not to
// the 64 Ki map.
//
// Failure handling is first-class: workers heartbeat, every RPC carries
// a deadline, and when a worker dies its instances are re-booted on
// survivors from their original specs at the clock they had reached
// (corpus progress on the dead worker is lost; the re-boot is counted in
// telemetry).
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame layout: u32 big-endian length (of type byte + payload), u8
// message type, payload. The length guard bounds a hostile or corrupt
// peer to maxFrame before any allocation happens.
const maxFrame = 64 << 20

// protocolVersion gates the Hello/Welcome handshake; coordinator and
// worker must agree exactly.
const protocolVersion = 1

// Message types.
const (
	msgHello byte = iota + 1
	msgWelcome
	msgAssign
	msgAssignOK
	msgBoot
	msgBootResult
	msgStep
	msgStepResult
	msgExport
	msgSeeds
	msgImport
	msgImportOK
	msgFinalize
	msgInstanceResult
	msgPing
	msgPong
	msgShutdown
	msgError
)

var errFrameTooLarge = errors.New("dist: frame exceeds size limit")

// writeFrame sends one framed message. The header and payload go out in
// a single Write so a concurrent deadline cannot split a frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return errFrameTooLarge
	}
	buf := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)+1))
	buf[4] = typ
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one framed message.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("dist: zero-length frame")
	}
	if n > maxFrame {
		return 0, nil, errFrameTooLarge
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}
