package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/core/schedule"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/fuzz"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/wire"
)

// Checkpoint / Restore serialize a paused campaign between Advance
// slices, so a coordinator restart resumes with artifacts byte-identical
// to an uninterrupted run.
//
// The checkpoint stores two kinds of state. Coordinator-owned replay
// state (clocks, union map, series, ledger, telemetry, corpus mirrors,
// pending seeds, drained-but-unreplayed lease batches) is serialized
// directly. Worker-owned engine state (fuzzing engine, RNG, saturation
// tracker, booted target) is NOT serialized — it is reconstructed by
// deterministic replay: Restore re-boots each instance at the clock of
// its last (re)boot and re-sends its journaled leases (same boundaries,
// same seed imports, same horizon), discarding the replies. Every
// instance is a deterministic function of its spec and lease history,
// so the rebuilt engines land in the exact state the checkpointed
// batches were produced from, and the campaign continues as if never
// interrupted.
const checkpointMagic = "cmfuzz-checkpoint"
const checkpointVersion = 1

// Checkpoint drains every in-flight lease reply and serializes the
// campaign's replay state. The coordinator remains live: Advance can
// continue from exactly this point, and the checkpoint can equally be
// Restored onto a fresh coordinator (same subject, same workers or
// different ones) after a crash.
func (c *Coordinator) Checkpoint() ([]byte, error) {
	st := c.st
	if st == nil {
		return nil, errors.New("dist: coordinator not started")
	}
	if c.finished || c.closed {
		return nil, errors.New("dist: campaign already finished")
	}
	if err := c.drainInflight(); err != nil {
		return nil, err
	}

	w := wire.NewWriter(1 << 16)
	w.String16(checkpointMagic)
	w.U8(checkpointVersion)
	w.String16(st.res.Subject.Protocol)
	encodeOptions(w, st.opts)

	// Plan-derived Result fields. Stored so Restore never re-runs
	// host.Plan — planning probes the target and emits group telemetry,
	// both of which already happened before the checkpoint.
	w.U32(uint32(st.res.ModelEntities))
	w.U32(uint32(st.res.RelationEdges))
	w.U32(uint32(st.res.Probes))
	w.U16(uint16(len(st.res.Groups)))
	for _, g := range st.res.Groups {
		putStrings(w, g.Members)
	}
	w.U16(uint16(len(st.specs)))
	for _, s := range st.specs {
		encodeSpec(w, s)
	}

	// Global replay state: union map, series, ledger, telemetry.
	w.Bytes32(coverage.EncodeDelta(st.global, nil))
	pts := st.res.Series.Points()
	w.U32(uint32(len(pts)))
	for _, p := range pts {
		putF64(w, p.T)
		w.U32(uint32(p.Count))
	}
	reports := st.res.Bugs.Unique()
	w.U16(uint16(len(reports)))
	for i := range reports {
		rep := &reports[i]
		putCrash(w, &rep.Crash)
		w.U32(uint32(rep.Instance))
		putF64(w, rep.Time)
		w.String32(rep.Config)
		w.U32(uint32(rep.Count))
	}
	var events bytes.Buffer
	if err := st.tel.WriteJSONL(&events); err != nil {
		return nil, err
	}
	w.Bytes32(events.Bytes())
	counters := st.tel.Counters()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	w.U16(uint16(len(names)))
	for _, name := range names {
		w.String16(name)
		putI64(w, int64(counters[name]))
	}

	putF64(w, c.watermark)
	putF64(w, c.lastSample)
	putI64(w, c.syncBytes.Load())
	putI64(w, c.workerDeaths.Load())
	putI64(w, c.reassignments.Load())

	// Per-instance replay state.
	w.U32(uint32(len(st.specs)))
	for i := range st.specs {
		putF64(w, st.clock[i])
		putF64(w, st.nextSync[i])
		putF64(w, st.resumeClock[i])
		w.U32(uint32(st.crashes[i]))
		w.U32(uint32(st.muts[i]))
		w.U32(uint32(st.execs[i]))
		w.U32(uint32(st.curCov[i]))
		w.U32(uint32(st.startEdges[i]))
		w.String32(st.curConfig[i])
		mirror := make([]fuzz.Seed, st.mirror[i].Len())
		for j := range mirror {
			mirror[j] = st.mirror[i].At(j)
		}
		putSeeds(w, mirror)
		putSeeds(w, st.pending[i])
		w.U32(uint32(len(st.journal[i])))
		for _, j := range st.journal[i] {
			putF64(w, j.Boundary)
			putSeeds(w, j.Seeds)
		}
		remaining := st.batch[i][st.pos[i]:]
		w.U32(uint32(len(remaining)))
		for j := range remaining {
			putLeaseRecord(w, &remaining[j])
		}
	}
	return w.Bytes(), nil
}

// checkpoint is the decoded form of a serialized campaign.
type checkpoint struct {
	protocol      string
	opts          parallel.Options
	modelEntities int
	relationEdges int
	probes        int
	groups        []schedule.Group
	specs         []parallel.InstanceSpec
	globalDelta   []byte
	series        []coverage.Point
	reports       []bugs.Report
	events        []telemetry.Event
	counters      telemetry.Counters
	watermark     float64
	lastSample    float64
	syncBytes     int64
	workerDeaths  int64
	reassignments int64
	inst          []checkpointInstance
}

type checkpointInstance struct {
	clock       float64
	nextSync    float64
	resumeClock float64
	crashes     int
	muts        int
	execs       int
	curCov      int
	startEdges  int
	curConfig   string
	mirror      []fuzz.Seed
	pending     []fuzz.Seed
	journal     []leaseJournal
	remaining   []leaseRecord
}

// ValidateCheckpoint reports whether data parses as a structurally
// complete checkpoint. The fleet recovery scan uses it to quarantine a
// corrupt or truncated checkpoint.bin (a crash mid-write, a bad disk)
// instead of aborting recovery for every sibling campaign.
func ValidateCheckpoint(data []byte) error {
	_, err := decodeCheckpoint(data)
	return err
}

func decodeCheckpoint(data []byte) (*checkpoint, error) {
	r := wire.NewReader(data)
	if magic := r.String16(); r.Err() != nil || magic != checkpointMagic {
		return nil, errors.New("dist: not a checkpoint")
	}
	if v := r.U8(); r.Err() != nil || v != checkpointVersion {
		return nil, fmt.Errorf("dist: checkpoint version %d, want %d", v, checkpointVersion)
	}
	ck := &checkpoint{
		protocol: r.String16(),
		opts:     decodeOptions(r),
	}
	ck.modelEntities = int(r.U32())
	ck.relationEdges = int(r.U32())
	ck.probes = int(r.U32())
	ngroups := int(r.U16())
	for i := 0; i < ngroups && r.Err() == nil; i++ {
		ck.groups = append(ck.groups, schedule.Group{Members: getStrings(r)})
	}
	nspecs := int(r.U16())
	for i := 0; i < nspecs && r.Err() == nil; i++ {
		ck.specs = append(ck.specs, decodeSpec(r))
	}
	ck.globalDelta = r.Bytes32()
	npts := int(r.U32())
	for i := 0; i < npts && r.Err() == nil; i++ {
		ck.series = append(ck.series, coverage.Point{T: getF64(r), Count: int(r.U32())})
	}
	nreports := int(r.U16())
	for i := 0; i < nreports && r.Err() == nil; i++ {
		ck.reports = append(ck.reports, bugs.Report{
			Crash:    getCrash(r),
			Instance: int(int32(r.U32())),
			Time:     getF64(r),
			Config:   r.String32(),
			Count:    int(r.U32()),
		})
	}
	eventsRaw := r.Bytes32()
	if r.Err() == nil {
		events, err := telemetry.ParseJSONL(bytes.NewReader(eventsRaw))
		if err != nil {
			return nil, err
		}
		ck.events = events
	}
	ck.counters = make(telemetry.Counters)
	ncounters := int(r.U16())
	for i := 0; i < ncounters && r.Err() == nil; i++ {
		name := r.String16()
		ck.counters[name] = int(getI64(r))
	}
	ck.watermark = getF64(r)
	ck.lastSample = getF64(r)
	ck.syncBytes = getI64(r)
	ck.workerDeaths = getI64(r)
	ck.reassignments = getI64(r)
	ninst := int(r.U32())
	for i := 0; i < ninst && r.Err() == nil; i++ {
		ci := checkpointInstance{
			clock:       getF64(r),
			nextSync:    getF64(r),
			resumeClock: getF64(r),
			crashes:     int(r.U32()),
			muts:        int(r.U32()),
			execs:       int(r.U32()),
			curCov:      int(r.U32()),
			startEdges:  int(r.U32()),
			curConfig:   r.String32(),
		}
		ci.mirror = getSeeds(r)
		ci.pending = getSeeds(r)
		njournal := int(r.U32())
		for j := 0; j < njournal && r.Err() == nil; j++ {
			ci.journal = append(ci.journal, leaseJournal{Boundary: getF64(r), Seeds: getSeeds(r)})
		}
		nrem := int(r.U32())
		for j := 0; j < nrem && r.Err() == nil; j++ {
			flags := r.U8()
			if flags&^byte(leaseFlagsKnown) != 0 {
				return nil, ErrProto
			}
			rec, err := getLeaseRecord(r, flags)
			if err != nil {
				return nil, err
			}
			ci.remaining = append(ci.remaining, rec)
		}
		ck.inst = append(ck.inst, ci)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if !r.Empty() {
		return nil, ErrProto
	}
	if len(ck.inst) != len(ck.specs) {
		return nil, ErrProto
	}
	return ck, nil
}

// Restore rebuilds a checkpointed campaign on a fresh coordinator: the
// pool's workers are assigned the checkpointed plan, each instance is
// re-booted at the clock of its last (re)boot and fast-forwarded by
// replaying its journaled leases, and the coordinator's replay state
// (clocks, union map, series, ledger, telemetry, mirrors, unreplayed
// batches) is restored verbatim. Subsequent Advance/Finish calls produce
// artifacts byte-identical to a run that was never interrupted.
//
// The caller's Telemetry option is ignored — the checkpointed event log
// and counters are restored into a fresh recorder (Recorder returns it).
// Trace, Progress, and Label come from the caller's options; they feed
// operator-facing surfaces, not artifacts.
//
// A worker failure during Restore is an error: reassignment recovery
// starts once the campaign is advancing again.
func (c *Coordinator) Restore(ctx context.Context, data []byte) error {
	if c.st != nil {
		return errors.New("dist: coordinator already started")
	}
	ck, err := decodeCheckpoint(data)
	if err != nil {
		return err
	}
	info := c.sub.Info()
	if ck.protocol != info.Protocol {
		return fmt.Errorf("dist: checkpoint is for subject %q, coordinator has %q", ck.protocol, info.Protocol)
	}
	workers, err := c.workerSet()
	if err != nil {
		return err
	}

	opts := ck.opts
	opts.Telemetry = telemetry.Restore(ck.events, ck.counters)
	opts.Trace = c.opts.Trace
	opts.Progress = c.opts.Progress
	opts.Label = c.opts.Label
	host, err := parallel.NewHost(c.sub, opts)
	if err != nil {
		return err
	}
	opts = host.Opts
	tel := opts.Telemetry
	prog := opts.Progress
	if opts.Label == "" {
		opts.Label = opts.Mode.String()
	}
	prog.StartRun(opts.Label, opts.Mode.String(), info.Protocol, opts.VirtualHours*3600, opts.Instances)
	c.endRun = func() { prog.EndRun(opts.Label) }

	res := &parallel.Result{
		Mode:          opts.Mode,
		Subject:       info,
		Series:        &coverage.Series{},
		Bugs:          bugs.RestoreLedger(ck.reports),
		ModelEntities: ck.modelEntities,
		RelationEdges: ck.relationEdges,
		Probes:        ck.probes,
		Groups:        ck.groups,
	}
	// Observe collapses consecutive equal counts, so the stored points
	// (which have pairwise-different consecutive counts by construction)
	// rebuild the series' internal state exactly.
	for _, p := range ck.series {
		res.Series.Observe(p.T, p.Count)
	}

	global := coverage.NewMap()
	if _, err := global.ApplyDelta(ck.globalDelta); err != nil {
		return err
	}

	if err := ctx.Err(); err != nil {
		return err
	}

	c.tracer = opts.Trace.Tracer()
	wireOpts := opts
	wireOpts.Telemetry = nil
	wireOpts.Trace = nil
	wireOpts.Progress = nil
	wireOpts.Label = ""
	assignPayload := encodeAssign(assign{Campaign: c.campaign, Subject: info.Protocol, Trace: opts.Trace != nil, LiveSpec: liveSpecOf(c.sub), Opts: wireOpts, Specs: ck.specs})
	for _, wc := range workers {
		if _, err := wc.rpc(msgAssign, assignPayload, msgAssignOK, c.cfg.RPCTimeout); err != nil {
			return fmt.Errorf("dist: assign to worker %q: %w", wc.name, err)
		}
	}
	if c.ownPool {
		c.pool.StartHeartbeats()
	}

	st := c.newRunState(host, opts, ck.specs, workers, res, global, tel)
	c.st = st
	for i := range ck.specs {
		ci := &ck.inst[i]
		st.clock[i] = ci.clock
		st.nextSync[i] = ci.nextSync
		st.resumeClock[i] = ci.resumeClock
		st.crashes[i] = ci.crashes
		st.muts[i] = ci.muts
		st.execs[i] = ci.execs
		st.curCov[i] = ci.curCov
		st.startEdges[i] = ci.startEdges
		st.curConfig[i] = ci.curConfig
		for _, s := range ci.mirror {
			st.mirror[i].Add(s)
		}
		st.pending[i] = ci.pending
		st.journal[i] = ci.journal
		st.batch[i] = ci.remaining

		if err := ctx.Err(); err != nil {
			return err
		}
		// Deterministic fast-forward: quiet re-boot at the last boot
		// clock (startup crashes and coverage are already in the
		// restored ledger and global map), then replay the journaled
		// leases to rebuild the worker-side engine, corpus, RNG, and
		// saturation state. Replies are discarded — their records are
		// either already replayed into the restored state or stored in
		// the remaining batch.
		wc := c.alive(i % len(workers))
		if wc == nil {
			return errors.New("dist: no live workers left")
		}
		if err := c.bootQuiet(wc, st, i, ci.resumeClock); err != nil {
			return fmt.Errorf("dist: restore boot of instance %d: %w", i, err)
		}
		if prog.Enabled() {
			prog.SetInstanceConfig(opts.Label, i, st.curConfig[i])
		}
		for _, j := range ci.journal {
			l := lease{Campaign: c.campaign, Index: i, Boundary: j.Boundary, Horizon: st.horizon, Seeds: j.Seeds}
			if _, err := wc.rpc(msgLease, encodeLease(l), msgLeaseResult, c.cfg.RPCTimeout); err != nil {
				return fmt.Errorf("dist: restore replay of instance %d: %w", i, err)
			}
		}
	}

	c.watermark = ck.watermark
	c.lastSample = ck.lastSample
	c.minSampleGap = opts.SampleEvery / 10
	c.syncBytes.Store(ck.syncBytes)
	c.workerDeaths.Store(ck.workerDeaths)
	c.reassignments.Store(ck.reassignments)

	c.startLoop(st)
	// Every instance left mid-campaign has unreplayed records (a batch
	// drains only right before its next lease is dispatched); instances
	// that already ran out the horizon need nothing. The dispatch here
	// is a safety net for the empty-batch edge.
	for i := range st.specs {
		if len(st.batch[i]) == 0 && st.clock[i] < st.horizon {
			c.dispatch(st, i)
		}
	}
	return nil
}
