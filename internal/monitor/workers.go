package monitor

import (
	"strconv"
	"sync"
	"time"

	"cmfuzz/internal/dist"
	"cmfuzz/internal/telemetry/metrics"
)

// RegisterWorkers publishes a distributed campaign's worker fleet on
// reg, from a snapshot function (typically Coordinator.Workers):
//
//	cmfuzz_workers_alive                 workers currently responding
//	cmfuzz_sync_bytes_total              lease traffic, all workers
//	cmfuzz_worker_alive{...}             1 while the worker responds
//	cmfuzz_worker_execs_per_second{...}  per-worker throughput between scrapes
//	cmfuzz_worker_sync_bytes{...}        per-worker lease traffic
//	cmfuzz_worker_heartbeat_age_seconds{...}  time since the last reply
//
// Per-worker series are labeled worker=<index>,name=<reported name>;
// the index disambiguates fleets whose nodes report the same name.
// Like RegisterExecRate, the throughput gauge is the exec-count delta
// between consecutive scrapes over the wall time between them, 0 on the
// first scrape or after a reset. A nil now uses time.Now; tests inject
// a fake clock. Nil registry or snapshot is a no-op.
func RegisterWorkers(reg *metrics.Registry, snap func() []dist.WorkerStatus, now func() time.Time) {
	if reg == nil || snap == nil {
		return
	}
	if now == nil {
		now = time.Now
	}
	reg.GaugeFunc("cmfuzz_workers_alive",
		"Distributed-campaign workers currently responding.", func() float64 {
			alive := 0
			for _, ws := range snap() {
				if ws.Alive {
					alive++
				}
			}
			return float64(alive)
		})
	// Metric names predate the lease protocol; they keep the sync_bytes
	// spelling so existing dashboards and alerts stay valid.
	reg.CounterFunc("cmfuzz_sync_bytes_total",
		"Lease request and reply bytes shipped between coordinator and workers.", func() float64 {
			total := int64(0)
			for _, ws := range snap() {
				total += ws.SyncBytes
			}
			return float64(total)
		})

	var mu sync.Mutex
	var lastT time.Time
	lastExecs := map[int]int64{}
	reg.Collect(func(set func(name, help string, value float64, labels ...metrics.Label)) {
		workers := snap()
		mu.Lock()
		t := now()
		prevT := lastT
		dt := t.Sub(prevT).Seconds()
		lastT = t
		for i, ws := range workers {
			wl := metrics.L("worker", strconv.Itoa(i))
			nl := metrics.L("name", ws.Name)
			set("cmfuzz_worker_alive", "1 while the worker responds to the coordinator.",
				boolTo01(ws.Alive), wl, nl)
			set("cmfuzz_worker_sync_bytes", "Lease request and reply bytes shipped to and from this worker.",
				float64(ws.SyncBytes), wl, nl)
			rate := 0.0
			if prev, ok := lastExecs[i]; ok && !prevT.IsZero() && ws.Execs >= prev && dt > 0 {
				rate = float64(ws.Execs-prev) / dt
			}
			lastExecs[i] = ws.Execs
			set("cmfuzz_worker_execs_per_second",
				"Protocol executions per wall-clock second on this worker, between scrapes.",
				rate, wl, nl)
			age := 0.0
			if ws.LastReply.UnixNano() > 0 {
				age = max(t.Sub(ws.LastReply).Seconds(), 0)
			}
			set("cmfuzz_worker_heartbeat_age_seconds",
				"Seconds since the worker's last reply (RPC or heartbeat).", age, wl, nl)
		}
		mu.Unlock()
	})
}
