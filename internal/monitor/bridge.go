package monitor

import (
	"strconv"
	"sync"
	"time"

	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/metrics"
)

// counterHelp names every counter the virtual-clock recorder maintains,
// with its exposition help string. The bridge publishes each as
// cmfuzz_<name>_total.
var counterHelp = map[string]string{
	telemetry.CtrBoots:           "Target (re)boots, including mutation restarts.",
	telemetry.CtrSyncs:           "Seed synchronizations performed.",
	telemetry.CtrSyncSkipped:     "Sync intervals skipped by virtual-clock jumps.",
	telemetry.CtrSamples:         "Union coverage samples recorded.",
	telemetry.CtrSaturations:     "Coverage saturation detector fires.",
	telemetry.CtrMutations:       "Configuration-value mutations applied.",
	telemetry.CtrRestartFailures: "Failed target restarts during mutation.",
	telemetry.CtrFallbacks:       "Last-resort defaults fallbacks.",
	telemetry.CtrCrashes:         "Crash observations (pre-dedup).",
	telemetry.CtrCrashesUnique:   "Unique crashes after dedup.",
	telemetry.CtrProbeStartups:   "Startup probes executed (cache misses).",
	telemetry.CtrProbeCacheHits:  "Startup probes served from the memo cache.",
	// Live-target safety-rail counters (internal/live); zero for
	// in-process simulation subjects.
	telemetry.CtrTargetRestarts:    "Live target process restarts (mutations, crashes, hangs).",
	telemetry.CtrTargetRateLimited: "Sends delayed by the live-target rate limiter.",
	telemetry.CtrTargetHangs:       "Live target hang detections (consecutive silent messages).",
}

// NewRegistry builds the standard monitor registry: the recorder's
// counters plus the live progress gauges. Nil sources are skipped.
func NewRegistry(rec *telemetry.Recorder, prog *telemetry.Progress) *metrics.Registry {
	reg := metrics.NewRegistry()
	RegisterRecorder(reg, rec)
	RegisterProgress(reg, prog)
	RegisterExecRate(reg, prog, nil)
	return reg
}

// RegisterExecRate publishes cmfuzz_execs_per_second: the campaign-wide
// protocol-execution throughput, computed as the exec-count delta across
// all runs between consecutive scrapes divided by the wall time between
// them. The first scrape (no previous point) and any scrape after a
// counter reset report 0. A nil now uses time.Now; tests inject a fake
// clock. Nil progress or registry is a no-op.
func RegisterExecRate(reg *metrics.Registry, prog *telemetry.Progress, now func() time.Time) {
	if reg == nil || prog == nil {
		return
	}
	if now == nil {
		now = time.Now
	}
	var mu sync.Mutex
	var lastT time.Time
	var lastExecs float64
	reg.GaugeFunc("cmfuzz_execs_per_second",
		"Protocol executions per wall-clock second across all runs, between scrapes.",
		func() float64 {
			total := 0.0
			for _, run := range prog.Snapshot() {
				total += float64(run.Execs)
			}
			mu.Lock()
			defer mu.Unlock()
			t := now()
			prevT, prevExecs := lastT, lastExecs
			lastT, lastExecs = t, total
			if prevT.IsZero() || total < prevExecs {
				return 0
			}
			dt := t.Sub(prevT).Seconds()
			if dt <= 0 {
				return 0
			}
			return (total - prevExecs) / dt
		})
}

// RegisterRecorder publishes the recorder's counter registry on reg:
// one cmfuzz_<counter>_total pull counter per known counter name, plus
// the derived cmfuzz_probe_cache_hit_ratio gauge. Values are read at
// scrape time, so the fuzzing hot path is never touched. Nil recorder
// or registry is a no-op.
func RegisterRecorder(reg *metrics.Registry, rec *telemetry.Recorder) {
	if reg == nil || rec == nil {
		return
	}
	for name, help := range counterHelp {
		name := name
		reg.CounterFunc("cmfuzz_"+name+"_total", help, func() float64 {
			return float64(rec.Counters()[name])
		})
	}
	reg.GaugeFunc("cmfuzz_probe_cache_hit_ratio",
		"Share of probe requests served from the memo cache.", func() float64 {
			c := rec.Counters()
			total := c[telemetry.CtrProbeStartups] + c[telemetry.CtrProbeCacheHits]
			if total == 0 {
				return 0
			}
			return float64(c[telemetry.CtrProbeCacheHits]) / float64(total)
		})
	reg.GaugeFunc("cmfuzz_events_recorded",
		"Structured events held by the virtual-clock recorder.", func() float64 {
			return float64(len(rec.Events()))
		})
}

// RegisterProgress publishes the live campaign board on reg: one
// collector emitting per-run and per-instance gauges at each scrape
// (virtual time, edges, execs, crashes, mutations, seed-queue depth)
// plus the cmfuzz_runs_running gauge. Nil progress or registry is a
// no-op.
func RegisterProgress(reg *metrics.Registry, prog *telemetry.Progress) {
	if reg == nil || prog == nil {
		return
	}
	reg.GaugeFunc("cmfuzz_runs_running",
		"Campaign runs started and not yet finished.", func() float64 {
			return float64(prog.Running())
		})
	reg.Collect(func(set func(name, help string, value float64, labels ...metrics.Label)) {
		for _, run := range prog.Snapshot() {
			rl := metrics.L("run", run.Run)
			set("cmfuzz_run_virtual_seconds", "Campaign virtual clock.", run.VirtualSeconds, rl)
			set("cmfuzz_run_horizon_seconds", "Campaign virtual horizon.", run.HorizonSeconds, rl)
			set("cmfuzz_run_edges", "Union branch coverage of the run.", float64(run.Edges), rl)
			set("cmfuzz_run_execs", "Total protocol executions of the run.", float64(run.Execs), rl)
			set("cmfuzz_run_crashes", "Crash observations of the run.", float64(run.Crashes), rl)
			set("cmfuzz_instances_running", "Parallel instances of unfinished runs.",
				float64(len(run.Instances))*boolTo01(!run.Done), rl)
			for _, in := range run.Instances {
				il := metrics.L("instance", strconv.Itoa(in.Index))
				set("cmfuzz_instance_virtual_seconds", "Instance virtual clock.", in.VirtualSeconds, rl, il)
				set("cmfuzz_instance_edges", "Instance branch coverage.", float64(in.Edges), rl, il)
				set("cmfuzz_instance_execs", "Instance protocol executions.", float64(in.Execs), rl, il)
				set("cmfuzz_instance_crashes", "Instance crash observations.", float64(in.Crashes), rl, il)
				set("cmfuzz_instance_mutations", "Instance configuration mutations.", float64(in.Mutations), rl, il)
				set("cmfuzz_instance_corpus_seeds", "Instance seed-queue depth.", float64(in.CorpusSeeds), rl, il)
			}
		}
	})
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// StatusPayload is what /status serves: the live run board plus the
// aggregate counters.
type StatusPayload struct {
	Runs     []telemetry.RunStatus `json:"runs"`
	Counters telemetry.Counters    `json:"counters,omitempty"`
}

// StatusFunc builds the /status provider over the live board and the
// recorder. Either may be nil.
func StatusFunc(prog *telemetry.Progress, rec *telemetry.Recorder) func() any {
	return func() any {
		return StatusPayload{Runs: prog.Snapshot(), Counters: rec.Counters()}
	}
}
