package monitor

import (
	"cmfuzz/internal/fleet"
	"cmfuzz/internal/telemetry/metrics"
)

// RegisterFleet publishes the fleet scheduler's campaign table on reg,
// from a snapshot function (typically Manager.Status):
//
//	cmfuzz_campaigns{state=...}              campaigns per lifecycle state
//	cmfuzz_campaign_clock_seconds{...}       virtual-clock progress
//	cmfuzz_campaign_horizon_seconds{...}     virtual-clock budget
//	cmfuzz_campaign_edges{...}               union coverage so far
//	cmfuzz_campaign_execs{...}               executions so far
//	cmfuzz_campaign_slices{...}              scheduler quanta received
//	cmfuzz_campaign_workers{...}             partition size this round
//	cmfuzz_bandit_reward{...}                scheduler reward EMA
//
// Per-campaign series are labeled campaign=<id>,subject=<protocol>.
// Values come from the manager's slice-boundary snapshots, so scraping
// never contends with a campaign mid-advance — and because every scrape
// re-reads the snapshot, campaigns recovered from disk after a restart
// report their persisted final figures, not zeros. Nil registry or
// snapshot is a no-op.
func RegisterFleet(reg *metrics.Registry, snap func() []fleet.CampaignStatus) {
	if reg == nil || snap == nil {
		return
	}
	reg.Collect(func(set func(name, help string, value float64, labels ...metrics.Label)) {
		byState := map[string]int{}
		for _, cs := range snap() {
			byState[cs.State]++
			cl := metrics.L("campaign", cs.ID)
			sl := metrics.L("subject", cs.Subject)
			set("cmfuzz_campaign_clock_seconds", "Virtual-clock progress of the campaign.",
				cs.Clock, cl, sl)
			set("cmfuzz_campaign_horizon_seconds", "Virtual-clock budget of the campaign.",
				cs.Horizon, cl, sl)
			set("cmfuzz_campaign_edges", "Union branch coverage observed so far.",
				float64(cs.Edges), cl, sl)
			set("cmfuzz_campaign_execs", "Protocol executions spent so far.",
				float64(cs.Execs), cl, sl)
			set("cmfuzz_campaign_slices", "Scheduler time slices granted so far.",
				float64(cs.Slices), cl, sl)
			set("cmfuzz_campaign_workers", "Workers in the campaign's partition this scheduling round (0 while parked).",
				float64(cs.Workers), cl, sl)
			set("cmfuzz_bandit_reward", "Discounted reward EMA (new edges per execution) the scheduler holds for the campaign.",
				cs.Reward, cl, sl)
		}
		for _, state := range []string{fleet.StateQueued, fleet.StateRunning, fleet.StateDone, fleet.StateFailed} {
			set("cmfuzz_campaigns", "Campaigns per lifecycle state.",
				float64(byState[state]), metrics.L("state", state))
		}
	})
}
