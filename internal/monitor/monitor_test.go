package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/metrics"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServerEndpoints(t *testing.T) {
	rec := telemetry.New()
	rec.Count(telemetry.CtrProbeStartups, 3)
	rec.Count(telemetry.CtrProbeCacheHits, 9)
	prog := telemetry.NewProgress()
	prog.StartRun("CMFuzz/rep0", "CMFuzz", "dns", 3600, 2)
	prog.StepInstance("CMFuzz/rep0", 0, 120.5, 40, 900, 1, 2, 12)
	prog.StepInstance("CMFuzz/rep0", 1, 118.0, 35, 850, 0, 1, 10)
	prog.SetUnion("CMFuzz/rep0", 121, 55)

	srv, err := Start("127.0.0.1:0", Options{
		Registry: NewRegistry(rec, prog),
		Status:   StatusFunc(prog, rec),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, ct, body := get(t, srv.URL()+"/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	_ = ct

	code, ct, body = get(t, srv.URL()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	stats, err := metrics.Lint(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics fails lint: %v\n%s", err, body)
	}
	if stats.Samples == 0 {
		t.Fatal("/metrics served no samples")
	}
	for _, want := range []string{
		"cmfuzz_probe_cache_hits_total 9",
		"cmfuzz_probe_startups_total 3",
		"cmfuzz_probe_cache_hit_ratio 0.75",
		`cmfuzz_run_edges{run="CMFuzz/rep0"} 55`,
		`cmfuzz_instance_execs{instance="0",run="CMFuzz/rep0"} 900`,
		`cmfuzz_instance_corpus_seeds{instance="1",run="CMFuzz/rep0"} 10`,
		"cmfuzz_runs_running 1",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, ct, body = get(t, srv.URL()+"/status")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/status = %d %q", code, ct)
	}
	var st StatusPayload
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if len(st.Runs) != 1 || st.Runs[0].Run != "CMFuzz/rep0" {
		t.Fatalf("/status runs = %+v", st.Runs)
	}
	r := st.Runs[0]
	if r.Execs != 1750 || r.Crashes != 1 || r.Edges != 55 || len(r.Instances) != 2 {
		t.Fatalf("/status aggregate = %+v", r)
	}
	if r.Instances[0].Execs != 900 || r.Instances[1].CorpusSeeds != 10 {
		t.Fatalf("/status instances = %+v", r.Instances)
	}
	if st.Counters[telemetry.CtrProbeCacheHits] != 9 {
		t.Fatalf("/status counters = %+v", st.Counters)
	}

	code, _, body = get(t, srv.URL()+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d %q", code, body[:min(len(body), 80)])
	}
	code, _, _ = get(t, srv.URL()+"/nonexistent")
	if code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
	code, _, body = get(t, srv.URL()+"/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", code, body)
	}
}

func TestServerEmptySources(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _, _ := get(t, srv.URL()+"/metrics"); code != 200 {
		t.Fatalf("/metrics without registry = %d", code)
	}
	code, _, body := get(t, srv.URL()+"/status")
	if code != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("/status without source = %d %q", code, body)
	}
}

func TestSessionImplications(t *testing.T) {
	// -events implies the recorder even without -telemetry.
	s, err := StartSession(SessionConfig{EventsPath: filepath.Join(t.TempDir(), "e.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	if s.Recorder == nil {
		t.Fatal("-events did not imply the recorder")
	}
	if s.Tracer != nil || s.Server != nil || s.Progress != nil {
		t.Fatal("-events enabled unrelated sinks")
	}
	if err := s.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}

	// -monitor implies recorder + progress + running server.
	s, err = StartSession(SessionConfig{MonitorAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Recorder == nil || s.Progress == nil || s.Server == nil {
		t.Fatalf("-monitor implications missing: %+v", s)
	}
	if code, _, _ := get(t, s.Server.URL()+"/healthz"); code != 200 {
		t.Fatal("monitor not serving")
	}
	if err := s.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}

	// Zero config: everything off, Finish is a no-op.
	s, err = StartSession(SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Recorder != nil || s.Tracer != nil || s.Server != nil {
		t.Fatalf("zero config enabled sinks: %+v", s)
	}
	if err := s.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := (*Session)(nil).Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestSessionTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	s, err := StartSession(SessionConfig{TracePath: path, RootSpan: "fuzz"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Tracer == nil || s.Root == nil {
		t.Fatal("-trace did not enable the tracer")
	}
	if s.Recorder != nil {
		t.Fatal("-trace must not imply the virtual-clock recorder")
	}
	child := s.Root.Child("probe.plan")
	child.End()
	var out strings.Builder
	if err := s.Finish(&out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("trace events = %d, want 2", len(doc.TraceEvents))
	}
	if !strings.Contains(out.String(), path) {
		t.Fatalf("Finish did not announce the trace file: %q", out.String())
	}
}

// TestProgressConcurrency is the live-board half of the -race stress
// satellite: many instances stepping one Progress while scrapers
// snapshot it.
func TestProgressConcurrency(t *testing.T) {
	prog := telemetry.NewProgress()
	reg := NewRegistry(nil, prog)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			run := []string{"a", "b"}[g%2]
			prog.StartRun(run, "CMFuzz", "dns", 3600, 4)
			for i := 0; i < 300; i++ {
				prog.StepInstance(run, g%4, float64(i), i, i*10, 0, 0, i%20)
				if i%50 == 0 {
					_ = prog.Snapshot()
					if err := reg.WriteText(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
			prog.EndRun(run)
		}(g)
	}
	wg.Wait()
	if prog.Running() != 0 {
		t.Fatalf("running = %d after all EndRun", prog.Running())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestExecRateGauge drives the cmfuzz_execs_per_second gauge with an
// injected clock: the first scrape reports 0 (no previous point), later
// scrapes report the exec delta over the elapsed wall time, and a
// counter reset (run restart) reports 0 instead of a negative rate.
func TestExecRateGauge(t *testing.T) {
	prog := telemetry.NewProgress()
	prog.StartRun("r", "CMFuzz", "mqtt", 3600, 2)

	clock := time.Unix(1000, 0)
	reg := metrics.NewRegistry()
	RegisterExecRate(reg, prog, func() time.Time { return clock })

	scrape := func() float64 {
		t.Helper()
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(sb.String(), "\n") {
			if strings.HasPrefix(line, "cmfuzz_execs_per_second ") {
				v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
				if err != nil {
					t.Fatalf("bad gauge value in %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatal("cmfuzz_execs_per_second not exposed")
		return 0
	}

	prog.StepInstance("r", 0, 1, 10, 1000, 0, 0, 1)
	if got := scrape(); got != 0 {
		t.Fatalf("first scrape rate = %v, want 0", got)
	}
	prog.StepInstance("r", 0, 2, 10, 1500, 0, 0, 1)
	prog.StepInstance("r", 1, 2, 10, 500, 0, 0, 1)
	clock = clock.Add(10 * time.Second)
	// Delta = (1500+500) - 1000 = 1000 execs over 10s.
	if got := scrape(); got != 100 {
		t.Fatalf("rate = %v, want 100 execs/sec", got)
	}
	// Same instant again: zero elapsed time must not divide by zero.
	if got := scrape(); got != 0 {
		t.Fatalf("zero-dt rate = %v, want 0", got)
	}
	// Run restart: exec counters drop; the gauge must clamp to 0.
	prog.StartRun("r", "CMFuzz", "mqtt", 3600, 2)
	clock = clock.Add(5 * time.Second)
	if got := scrape(); got != 0 {
		t.Fatalf("post-reset rate = %v, want 0", got)
	}
}

// TestCloseLetsInflightRequestFinish pins the graceful-shutdown fix: a
// request already being handled when Close is called must complete with
// its full response, not be cut off by an abortive connection close.
func TestCloseLetsInflightRequestFinish(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, err := Start("127.0.0.1:0", Options{
		Status: func() any {
			close(entered)
			<-release
			return map[string]string{"slow": "but complete"}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		status int
		body   string
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(srv.URL() + "/status")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			done <- result{err: err}
			return
		}
		done <- result{status: resp.StatusCode, body: string(body)}
	}()

	<-entered // the handler is now mid-request
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	// Close must wait for the handler; give it a moment to prove it is
	// blocked rather than aborting, then let the handler finish.
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", r.err)
	}
	if r.status != http.StatusOK || !strings.Contains(r.body, "but complete") {
		t.Fatalf("in-flight request truncated: status %d, body %q", r.status, r.body)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCloseForcesStuckRequests pins the fallback: a handler that never
// returns must not wedge Close past the grace period.
func TestCloseForcesStuckRequests(t *testing.T) {
	old := closeGrace
	closeGrace = 50 * time.Millisecond
	defer func() { closeGrace = old }()

	entered := make(chan struct{})
	srv, err := Start("127.0.0.1:0", Options{
		Status: func() any {
			close(entered)
			select {} // never returns
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go http.Get(srv.URL() + "/status")
	<-entered

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err == nil {
			t.Fatal("Close returned nil despite a stuck request")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a stuck handler")
	}
}
