package monitor

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"cmfuzz/internal/dist"
	"cmfuzz/internal/telemetry/metrics"
)

// TestWorkerGauges drives the distributed-campaign fleet bridge with an
// injected clock and a mutable snapshot: first scrape reports zero
// rates, later scrapes the per-worker exec delta over elapsed wall
// time, heartbeat age against the fake now, and a dead worker drops out
// of cmfuzz_workers_alive without losing its labeled series.
func TestWorkerGauges(t *testing.T) {
	clock := time.Unix(5000, 0)
	workers := []dist.WorkerStatus{
		{Name: "a", Alive: true, Execs: 1000, SyncBytes: 64, LastReply: clock.Add(-2 * time.Second)},
		{Name: "a", Alive: true, Execs: 400, SyncBytes: 32, LastReply: clock},
	}
	reg := metrics.NewRegistry()
	RegisterWorkers(reg, func() []dist.WorkerStatus { return append([]dist.WorkerStatus(nil), workers...) },
		func() time.Time { return clock })

	scrape := func() map[string]float64 {
		t.Helper()
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, line := range strings.Split(sb.String(), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			out[fields[0]] = v
		}
		return out
	}
	// Labels render sorted by name: name before worker.
	series := func(metric, name string, idx int) string {
		return metric + `{name="` + name + `",worker="` + strconv.Itoa(idx) + `"}`
	}

	got := scrape()
	if got["cmfuzz_workers_alive"] != 2 {
		t.Fatalf("workers alive = %v, want 2", got["cmfuzz_workers_alive"])
	}
	if got["cmfuzz_sync_bytes_total"] != 96 {
		t.Fatalf("sync bytes total = %v, want 96", got["cmfuzz_sync_bytes_total"])
	}
	if got[series("cmfuzz_worker_execs_per_second", "a", 0)] != 0 ||
		got[series("cmfuzz_worker_execs_per_second", "a", 1)] != 0 {
		t.Fatalf("first scrape rates not 0: %v", got)
	}
	if got[series("cmfuzz_worker_heartbeat_age_seconds", "a", 0)] != 2 {
		t.Fatalf("heartbeat age = %v, want 2", got[series("cmfuzz_worker_heartbeat_age_seconds", "a", 0)])
	}

	clock = clock.Add(10 * time.Second)
	workers[0].Execs = 2000 // +1000 over 10s
	workers[1].Execs = 900  // +500 over 10s
	workers[1].SyncBytes = 132
	got = scrape()
	if got[series("cmfuzz_worker_execs_per_second", "a", 0)] != 100 {
		t.Fatalf("worker 0 rate = %v, want 100", got[series("cmfuzz_worker_execs_per_second", "a", 0)])
	}
	if got[series("cmfuzz_worker_execs_per_second", "a", 1)] != 50 {
		t.Fatalf("worker 1 rate = %v, want 50", got[series("cmfuzz_worker_execs_per_second", "a", 1)])
	}
	if got["cmfuzz_sync_bytes_total"] != 196 {
		t.Fatalf("sync bytes total = %v, want 196", got["cmfuzz_sync_bytes_total"])
	}

	// Worker 1 dies; a reassignment reboots instances elsewhere and its
	// exec counter goes backwards. The rate must clamp to 0, alive must
	// drop, and the per-worker series must persist with alive=0.
	clock = clock.Add(5 * time.Second)
	workers[1].Alive = false
	workers[1].Execs = 0
	got = scrape()
	if got["cmfuzz_workers_alive"] != 1 {
		t.Fatalf("workers alive = %v, want 1", got["cmfuzz_workers_alive"])
	}
	if got[series("cmfuzz_worker_alive", "a", 1)] != 0 {
		t.Fatalf("dead worker alive gauge = %v, want 0", got[series("cmfuzz_worker_alive", "a", 1)])
	}
	if got[series("cmfuzz_worker_execs_per_second", "a", 1)] != 0 {
		t.Fatalf("post-reset rate = %v, want 0", got[series("cmfuzz_worker_execs_per_second", "a", 1)])
	}

	// Nil sources must be a no-op, not a panic.
	RegisterWorkers(nil, nil, nil)
	RegisterWorkers(reg, nil, nil)
}
