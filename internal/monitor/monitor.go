// Package monitor is the live campaign monitor: an embedded net/http
// server exposing a running cmfuzz process the way production fuzzers
// expose their stats screens. Endpoints:
//
//	/            tiny HTML index linking everything below
//	/healthz     liveness probe ("ok")
//	/status      JSON snapshot of per-run / per-instance progress
//	/metrics     Prometheus text exposition (package telemetry/metrics)
//	/debug/pprof wall-clock CPU/heap/goroutine profiling (net/http/pprof)
//
// The monitor observes and never steers: everything it serves is read
// from the nil-safe observability sinks (telemetry.Recorder,
// telemetry.Progress, metrics.Registry, trace.Tracer), so a monitored
// campaign produces byte-identical artifacts to an unmonitored one.
package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"cmfuzz/internal/telemetry/metrics"
)

// Options configures a Server. Every field is optional; missing sources
// serve empty-but-valid responses.
type Options struct {
	// Registry backs /metrics (nil serves an empty exposition).
	Registry *metrics.Registry

	// Status returns the object serialized on /status.
	Status func() any

	// API, when set, is mounted under /api/ — the fleet service plugs
	// its campaign-control endpoints (submit/status/results) in here so
	// one listener serves both the human monitor and the machine API.
	API http.Handler
}

// A Server is one running monitor listener.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Handler builds the monitor's http.Handler: the status/metrics/health
// endpoints plus net/http/pprof on its own mux (the default mux is
// never touched, so embedding applications keep theirs).
func Handler(opts Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = struct{}{}
		if opts.Status != nil {
			v = opts.Status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if opts.Registry != nil {
			if err := opts.Registry.WriteText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	if opts.API != nil {
		mux.Handle("/api/", opts.API)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<!doctype html><title>cmfuzz monitor</title>
<h1>cmfuzz campaign monitor</h1><ul>
<li><a href="/status">/status</a> — per-run / per-instance progress (JSON)</li>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/healthz">/healthz</a> — liveness</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go runtime profiles</li>
</ul>`)
	})
	return mux
}

// Start listens on addr (host:port; port 0 picks a free one) and serves
// the monitor in a background goroutine until Close.
func Start(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: Handler(opts), ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// http.Serve returns ErrServerClosed after Close; any other
		// error means the listener died under us — nothing to do but
		// stop serving (the campaign itself must never be disturbed).
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the http base URL of the monitor.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// closeGrace bounds how long Close waits for in-flight requests before
// forcibly dropping their connections. A variable so tests can pin the
// forced-close fallback without a multi-second wait.
var closeGrace = 2 * time.Second

// Close stops the listener, lets in-flight requests finish (a fleet
// client mid-submit must not see a reset after the server already
// accepted its campaign), and waits for the serve loop to exit.
// Requests still running after a short grace period are cut off so a
// stuck handler cannot wedge process shutdown.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Grace expired (or the context machinery failed): fall back to
		// the abortive close rather than hanging forever.
		s.srv.Close()
	}
	<-s.done
	return err
}
