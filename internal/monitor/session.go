package monitor

import (
	"fmt"
	"io"

	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/metrics"
	"cmfuzz/internal/telemetry/trace"
)

// SessionConfig is the observability surface of one CLI invocation.
// The zero value means "everything off": every sink in the resulting
// Session is nil, and instrumented code pays one nil check.
type SessionConfig struct {
	// Telemetry enables the virtual-clock event recorder explicitly
	// (the -telemetry flag). EventsPath and MonitorAddr imply it.
	Telemetry bool
	// EventsPath streams recorder events to a JSONL file at Finish.
	EventsPath string
	// TracePath enables the wall-clock span tracer and exports a Chrome
	// trace_event JSON file at Finish.
	TracePath string
	// MonitorAddr starts the HTTP monitor on this host:port.
	MonitorAddr string
	// RootSpan names the tracer's root span ("fuzz", "campaign", ...).
	RootSpan string
}

// A Session bundles every observability sink one CLI run wires up.
// Fields for disabled sinks are nil and safe to pass straight into
// Options structs (the nil-safety contract does the rest).
type Session struct {
	// Recorder is the deterministic virtual-clock event log (nil when
	// telemetry is off).
	Recorder *telemetry.Recorder
	// Tracer/Root are the wall-clock span tracer and its root span (nil
	// without -trace).
	Tracer *trace.Tracer
	Root   *trace.Span
	// Progress is the live run board behind /status (nil without
	// -monitor).
	Progress *telemetry.Progress
	// Registry backs the monitor's /metrics endpoint (nil without
	// -monitor). Callers with extra sources — a distributed-campaign
	// coordinator, say — register them here after StartSession.
	Registry *metrics.Registry
	// Server is the running HTTP monitor (nil without -monitor).
	Server *Server

	cfg SessionConfig
}

// StartSession applies the flag-implication rules and stands up the
// requested sinks:
//
//   - -events FILE implies -telemetry (streaming events requires the
//     recorder that produces them).
//   - -monitor ADDR implies -telemetry and enables the live progress
//     board — the /status and /metrics endpoints are useless without
//     both.
//   - -trace FILE stands alone: the wall-clock tracer is independent of
//     the virtual-clock recorder by design (two clocks, two sinks).
//
// The monitor server starts immediately so scrapes work for the whole
// run; everything else is write-only until Finish.
func StartSession(cfg SessionConfig) (*Session, error) {
	s := &Session{cfg: cfg}
	if cfg.Telemetry || cfg.EventsPath != "" || cfg.MonitorAddr != "" {
		s.Recorder = telemetry.New()
	}
	if cfg.TracePath != "" {
		s.Tracer = trace.New()
		name := cfg.RootSpan
		if name == "" {
			name = "cmfuzz"
		}
		s.Root = s.Tracer.Start(name)
	}
	if cfg.MonitorAddr != "" {
		s.Progress = telemetry.NewProgress()
		s.Registry = NewRegistry(s.Recorder, s.Progress)
		srv, err := Start(cfg.MonitorAddr, Options{
			Registry: s.Registry,
			Status:   StatusFunc(s.Progress, s.Recorder),
		})
		if err != nil {
			return nil, err
		}
		s.Server = srv
	}
	return s, nil
}

// Finish ends the root span, exports the trace and event files, prints
// the monitor URL reminder, and shuts the HTTP server down. Safe on a
// nil session. Returns the first export error.
func (s *Session) Finish(w io.Writer) error {
	if s == nil {
		return nil
	}
	var firstErr error
	if s.Root != nil {
		s.Root.End()
	}
	if s.Tracer != nil && s.cfg.TracePath != "" {
		if err := s.Tracer.ExportChromeTrace(s.cfg.TracePath); err != nil {
			firstErr = err
		} else if w != nil {
			fmt.Fprintf(w, "wall-clock trace (%d spans) written to %s — load in chrome://tracing or https://ui.perfetto.dev\n",
				s.Tracer.SpanCount(), s.cfg.TracePath)
		}
	}
	if s.Recorder != nil && s.cfg.EventsPath != "" {
		if err := s.Recorder.ExportJSONL(s.cfg.EventsPath); err != nil && firstErr == nil {
			firstErr = err
		} else if err == nil && w != nil {
			fmt.Fprintf(w, "telemetry events written to %s\n", s.cfg.EventsPath)
		}
	}
	if s.Server != nil {
		if err := s.Server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
