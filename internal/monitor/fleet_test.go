package monitor

import (
	"net/http"
	"strings"
	"testing"

	"cmfuzz/internal/fleet"
	"cmfuzz/internal/telemetry/metrics"
)

// TestAPIMountAndFleetMetrics pins the serve-mode wiring: a handler
// passed via Options.API answers under /api/ on the same listener as
// the monitor endpoints, and RegisterFleet exposes the campaign table
// on /metrics.
func TestAPIMountAndFleetMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	RegisterFleet(reg, func() []fleet.CampaignStatus {
		return []fleet.CampaignStatus{
			{ID: "dns-a", Subject: "DNS", State: fleet.StateRunning, Clock: 450, Horizon: 1800, Edges: 900, Execs: 451, Slices: 3, Reward: 1.5, Workers: 2},
			{ID: "mqtt-b", Subject: "MQTT", State: fleet.StateQueued, Horizon: 900},
			// A done campaign as a restarted manager recovers it from disk:
			// no slices this lifetime, but final figures intact — the
			// gauges must reflect them, not zeros.
			{ID: "coap-c", Subject: "CoAP", State: fleet.StateDone, Clock: 900, Horizon: 900, Edges: 1200, Execs: 2000},
		}
	})
	api := http.NewServeMux()
	api.HandleFunc("/api/ping", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("pong"))
	})
	s, err := Start("127.0.0.1:0", Options{Registry: reg, API: api})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if code, _, body := get(t, s.URL()+"/api/ping"); code != 200 || body != "pong" {
		t.Fatalf("/api/ping = %d %q", code, body)
	}
	_, _, metricsBody := get(t, s.URL()+"/metrics")
	if _, err := metrics.LintStrict(strings.NewReader(metricsBody)); err != nil {
		t.Fatalf("/metrics fails strict lint: %v\n%s", err, metricsBody)
	}
	for _, want := range []string{
		`cmfuzz_campaigns{state="running"} 1`,
		`cmfuzz_campaigns{state="queued"} 1`,
		`cmfuzz_campaigns{state="done"} 1`,
		`cmfuzz_campaign_edges{campaign="dns-a",subject="DNS"} 900`,
		`cmfuzz_campaign_slices{campaign="dns-a",subject="DNS"} 3`,
		`cmfuzz_campaign_workers{campaign="dns-a",subject="DNS"} 2`,
		`cmfuzz_campaign_workers{campaign="mqtt-b",subject="MQTT"} 0`,
		`cmfuzz_bandit_reward{campaign="dns-a",subject="DNS"} 1.5`,
		`cmfuzz_campaign_horizon_seconds{campaign="mqtt-b",subject="MQTT"} 900`,
		`cmfuzz_campaign_edges{campaign="coap-c",subject="CoAP"} 1200`,
		`cmfuzz_campaign_execs{campaign="coap-c",subject="CoAP"} 2000`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metricsBody)
		}
	}
	// The status endpoint must keep working with the API mounted.
	if code, _, _ := get(t, s.URL()+"/status"); code != 200 {
		t.Fatalf("/status = %d", code)
	}
}
