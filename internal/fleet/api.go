package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"

	"cmfuzz/internal/campaign"
)

func writeSpec(path string, spec CampaignSpec) error {
	raw, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return campaign.WriteFileAtomic(path, raw, 0o644)
}

func readSpec(path string) (CampaignSpec, error) {
	var spec CampaignSpec
	raw, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(raw, &spec); err != nil {
		return spec, err
	}
	return spec, nil
}

// APIHandler returns the fleet's machine API, meant to be mounted on
// the monitor server via monitor.Options.API:
//
//	POST /api/submit   body: CampaignSpec JSON; 202 on accept,
//	                   400 invalid, 409 duplicate id
//	GET  /api/status   {"campaigns": [CampaignStatus, ...]}
//	GET  /api/results?id=X
//	                   final result.json; 404 unknown, 409 not done
//	GET  /api/flight?id=X
//	                   live flight-recorder snapshot; 404 unknown
//	GET  /api/events   Server-Sent Events stream of StreamEvent JSON,
//	                   one `event: <type>` + `data: <json>` per event
func (m *Manager) APIHandler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/api/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var spec CampaignSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := m.Submit(spec); err != nil {
			code := http.StatusBadRequest
			if err == ErrExists {
				code = http.StatusConflict
			}
			http.Error(w, err.Error(), code)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": spec.ID, "state": StateQueued})
	})

	mux.HandleFunc("/api/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"campaigns": m.Status()})
	})

	mux.HandleFunc("/api/results", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		raw, err := m.Results(id)
		if err != nil {
			code := http.StatusNotFound
			m.mu.Lock()
			if c, ok := m.campaigns[id]; ok && c.state != StateDone {
				code = http.StatusConflict
			}
			m.mu.Unlock()
			http.Error(w, err.Error(), code)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	})

	mux.HandleFunc("/api/flight", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		doc, ok := m.Flight(id)
		if !ok {
			http.Error(w, "unknown campaign "+id, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})

	mux.HandleFunc("/api/events", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		// An immediate comment line commits the headers so clients see
		// the stream open before the first event lands.
		fmt.Fprint(w, ": cmfuzz fleet event stream\n\n")
		fl.Flush()
		ch, cancel := m.events.subscribe()
		defer cancel()
		for {
			select {
			case <-r.Context().Done():
				return
			case ev, ok := <-ch:
				if !ok {
					return
				}
				raw, err := json.Marshal(ev)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, raw)
				fl.Flush()
			}
		}
	})

	return mux
}
