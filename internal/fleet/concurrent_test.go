package fleet_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"

	"cmfuzz/internal/campaign"
	"cmfuzz/internal/dist"
	"cmfuzz/internal/fleet"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
)

// TestConcurrentMatchesSerial is the tentpole byte-identity proof for
// the partitioned scheduler: a 4-campaign mix drained by the
// concurrent scheduler (disjoint partitions, one slice per campaign
// per round, warm hand-offs) must write, campaign for campaign, the
// exact artifact trees the legacy serial scheduler writes. Slicing
// invariance times worker-count invariance — the composition this
// test pins end to end.
func TestConcurrentMatchesSerial(t *testing.T) {
	specs := []fleet.CampaignSpec{
		{ID: "dns-a", Subject: "DNS", Hours: 0.5, Seed: 11},
		{ID: "mqtt-b", Subject: "MQTT", Hours: 0.25, Seed: 3},
		{ID: "coap-c", Subject: "CoAP", Hours: 0.25, Seed: 7},
		{ID: "dtls-d", Subject: "DTLS", Hours: 0.5, Seed: 5},
	}

	drain := func(concurrency int) (string, map[string]fleet.CampaignStatus) {
		pool, wait := newPool(t, 4)
		defer wait()
		state := t.TempDir()
		m, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 300, Concurrency: concurrency},
			pool, protocols.ByName)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			if err := m.Submit(spec); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		sts := map[string]fleet.CampaignStatus{}
		for _, st := range m.Status() {
			sts[st.ID] = st
		}
		return state, sts
	}

	serialState, serialSts := drain(1)
	concState, concSts := drain(0)

	for _, spec := range specs {
		if st := serialSts[spec.ID]; st.State != fleet.StateDone {
			t.Fatalf("serial %s = %s (%s), want done", spec.ID, st.State, st.Error)
		}
		if st := concSts[spec.ID]; st.State != fleet.StateDone {
			t.Fatalf("concurrent %s = %s (%s), want done", spec.ID, st.State, st.Error)
		}
		diffTrees(t, "concurrent vs serial "+spec.ID,
			readTree(t, filepath.Join(serialState, spec.ID, "artifacts")),
			readTree(t, filepath.Join(concState, spec.ID, "artifacts")))
	}
}

// faultConn fails every write after `limit` successful ones, simulating
// a worker process dying at a deterministic point in the RPC sequence
// (net.Pipe carries no kernel buffering, so the interleaving is
// reproducible).
type faultConn struct {
	net.Conn
	writes int
	limit  int
}

var errInjected = errors.New("injected worker failure")

func (f *faultConn) Write(p []byte) (int, error) {
	if f.writes >= f.limit {
		return 0, errInjected
	}
	f.writes++
	return f.Conn.Write(p)
}

// deathTree runs spec on a private 2-worker coordinator whose second
// worker dies on its second lease dispatch — the same fuse the fleet
// test below injects — and returns the artifact tree. Reassignment
// reboots the lost instance with a fresh corpus, so a death-afflicted
// campaign legitimately diverges from an undisturbed run; what must
// hold is that the fleet's in-partition reassignment reproduces THIS
// tree byte for byte, proving the instance resumed at the exact
// virtual clock of the lost lease with the exact same recovery.
func deathTree(t *testing.T, spec fleet.CampaignSpec) map[string]string {
	t.Helper()
	sub, err := protocols.ByName(spec.Subject)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.New()
	coord := dist.NewCoordinator(sub, parallel.Options{
		Mode:         parallel.ModeCMFuzz,
		Instances:    spec.Instances,
		VirtualHours: spec.Hours,
		Seed:         spec.Seed,
		Concurrency:  1,
		Telemetry:    rec,
	}, dist.Config{HeartbeatInterval: -1})
	serveErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		cConn, wConn := net.Pipe()
		w := dist.NewWorker(dist.WorkerConfig{Name: fmt.Sprintf("ref%d", i), Resolve: func(name string) (subject.Subject, error) {
			return protocols.ByName(name)
		}})
		go func() { serveErr <- w.Serve(wConn) }()
		conn := net.Conn(cConn)
		if i == 1 {
			conn = &faultConn{Conn: cConn, limit: 4}
		}
		if err := coord.AddConn(conn); err != nil {
			t.Fatal(err)
		}
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		<-serveErr
	}
	dir := t.TempDir()
	if err := campaign.WriteArtifacts(dir, res); err != nil {
		t.Fatal(err)
	}
	if err := campaign.WriteTelemetry(dir, rec); err != nil {
		t.Fatal(err)
	}
	return readTree(t, dir)
}

// TestPartitionWorkerDeath kills one worker of a 2-worker partition
// mid-slice. In-partition reassignment must resume the lost instance
// at the exact virtual clock — proven by a byte-for-byte diff against
// a plain 2-worker dist run with the identical injected death — while
// the other campaign, slicing concurrently on its own partition, is
// completely unaffected (its tree matches an undisturbed standalone
// run). The diff also pins warm hand-off: a park/re-boot between
// slices would shift the fuse's position in the RPC sequence and the
// trees would diverge.
func TestPartitionWorkerDeath(t *testing.T) {
	specA := fleet.CampaignSpec{ID: "dns-a", Subject: "DNS", Hours: 0.25, Seed: 11, Instances: 2}
	specB := fleet.CampaignSpec{ID: "mqtt-b", Subject: "MQTT", Hours: 0.25, Seed: 3, Instances: 2}
	wantA := deathTree(t, specA)
	wantB := standaloneTree(t, specB)

	// Four pipe workers; the allocator hands untried campaigns their
	// shares in submission order, so A gets {w0,w1} and B gets {w2,w3}.
	// w1 carries a write fuse: welcome, assign, boot, and the first
	// lease succeed, then the next lease dispatch fails — a mid-slice
	// death inside A's partition.
	pool := dist.NewPool(dist.Config{HeartbeatInterval: -1})
	serveErr := make(chan error, 4)
	for i := 0; i < 4; i++ {
		cConn, wConn := net.Pipe()
		w := dist.NewWorker(dist.WorkerConfig{Name: fmt.Sprintf("w%d", i), Resolve: func(name string) (subject.Subject, error) {
			return protocols.ByName(name)
		}})
		go func() { serveErr <- w.Serve(wConn) }()
		conn := net.Conn(cConn)
		if i == 1 {
			conn = &faultConn{Conn: cConn, limit: 4}
		}
		if err := pool.AddConn(conn); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		pool.Close()
		for i := 0; i < 4; i++ {
			if err := <-serveErr; err != nil {
				t.Error(err)
			}
		}
	}()

	state := t.TempDir()
	m, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 300}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []fleet.CampaignSpec{specA, specB} {
		if err := m.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"dns-a", "mqtt-b"} {
		if st := findStatus(t, m, id); st.State != fleet.StateDone {
			t.Fatalf("%s = %s (%s), want done", id, st.State, st.Error)
		}
	}

	// B never shared a connection with the dead worker: every artifact
	// byte-identical, and no death leaked into its counters.
	gotB := readTree(t, filepath.Join(state, "mqtt-b", "artifacts"))
	diffTrees(t, "unaffected campaign", wantB, gotB)

	// A's whole tree matches the reference death run: series, event
	// log, crash corpus, result.json — including the fault counters.
	gotA := readTree(t, filepath.Join(state, "dns-a", "artifacts"))
	diffTrees(t, "death-afflicted campaign", wantA, gotA)

	// And the fuse really fired: the counters record exactly one death
	// and the in-partition re-boot.
	var res struct {
		Counters map[string]int `json:"telemetry"`
	}
	if err := json.Unmarshal([]byte(gotA["result.json"]), &res); err != nil {
		t.Fatal(err)
	}
	if res.Counters[telemetry.CtrWorkerDeaths] != 1 {
		t.Fatalf("worker_deaths counter = %d, want 1: %v", res.Counters[telemetry.CtrWorkerDeaths], res.Counters)
	}
	if res.Counters[telemetry.CtrReassignments] < 1 {
		t.Fatalf("reassignments counter = %d, want >= 1", res.Counters[telemetry.CtrReassignments])
	}
}

// TestElasticAdmissionFleet: a worker attaching after the scheduler is
// already slicing joins the free set and is handed to a campaign on
// the very next round. With one worker, only the top-priority campaign
// can run; once a second worker joins, both slice concurrently.
func TestElasticAdmissionFleet(t *testing.T) {
	pool, wait := newPool(t, 1)
	defer wait()
	state := t.TempDir()
	m, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 300}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []fleet.CampaignSpec{
		{ID: "dns-a", Subject: "DNS", Hours: 0.25, Seed: 11, Instances: 1},
		{ID: "mqtt-b", Subject: "MQTT", Hours: 0.25, Seed: 3, Instances: 1},
	} {
		if err := m.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if ok, err := m.Step(ctx); !ok || err != nil {
		t.Fatalf("step 1: ok=%v err=%v", ok, err)
	}
	if a, b := findStatus(t, m, "dns-a"), findStatus(t, m, "mqtt-b"); a.Slices != 1 || b.Slices != 0 {
		t.Fatalf("after step 1: slices = %d/%d, want 1/0 (one worker, one partition)", a.Slices, b.Slices)
	}

	// Late joiner: next round's allocation absorbs it and the starved
	// campaign gets its own partition.
	cConn, wConn := net.Pipe()
	w := dist.NewWorker(dist.WorkerConfig{Name: "late", Resolve: func(name string) (subject.Subject, error) {
		return protocols.ByName(name)
	}})
	lateErr := make(chan error, 1)
	go func() { lateErr <- w.Serve(wConn) }()
	if err := pool.AddConn(cConn); err != nil {
		t.Fatal(err)
	}

	if ok, err := m.Step(ctx); !ok || err != nil {
		t.Fatalf("step 2: ok=%v err=%v", ok, err)
	}
	if a, b := findStatus(t, m, "dns-a"), findStatus(t, m, "mqtt-b"); a.Slices != 2 || b.Slices != 1 {
		t.Fatalf("after step 2: slices = %d/%d, want 2/1 (late worker absorbed)", a.Slices, b.Slices)
	}
	if b := findStatus(t, m, "mqtt-b"); b.Workers != 1 {
		t.Fatalf("mqtt-b workers = %d, want 1", b.Workers)
	}
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Close the pool before joining the late worker's Serve loop (the
	// deferred wait() would otherwise run too late, after this join).
	pool.Close()
	if err := <-lateErr; err != nil {
		t.Error(err)
	}
}
