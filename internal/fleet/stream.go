package fleet

import "sync"

// A StreamEvent is one fleet lifecycle event on the /api/events SSE
// feed. Type is one of: submit, slice_start, checkpoint, slice_end,
// done, failed, worker_death. Seq is a monotone per-manager sequence
// number so consumers can detect drops (the feed is lossy by design);
// Dropped, when set, says how many events this subscriber lost
// immediately before this one, so a dashboard can flag the gap without
// bookkeeping Seq arithmetic itself.
type StreamEvent struct {
	Seq        int64   `json:"seq"`
	Type       string  `json:"type"`
	Campaign   string  `json:"campaign,omitempty"`
	Worker     string  `json:"worker,omitempty"`
	State      string  `json:"state,omitempty"`
	Clock      float64 `json:"clock,omitempty"`
	Edges      int     `json:"edges,omitempty"`
	Execs      int     `json:"execs,omitempty"`
	EdgesDelta int     `json:"edges_delta,omitempty"`
	ExecsDelta int     `json:"execs_delta,omitempty"`
	Reward     float64 `json:"reward,omitempty"`
	Dropped    int64   `json:"dropped,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// subscriber is one consumer's buffered channel plus the count of
// events it has lost since its last successful delivery — stamped onto
// the next event that does get through.
type subscriber struct {
	ch      chan StreamEvent
	dropped int64
}

// broker fans StreamEvents out to live subscribers. Publishing never
// blocks the scheduler: a subscriber whose buffer is full simply loses
// the event. Every loss is visible twice over — the lifetime total
// feeds the cmfuzz_stream_dropped_total counter, and the per-gap count
// rides the subscriber's next delivered event as Dropped.
type broker struct {
	mu           sync.Mutex
	seq          int64
	droppedTotal int64
	subs         map[*subscriber]struct{}
}

func newBroker() *broker {
	return &broker{subs: make(map[*subscriber]struct{})}
}

func (b *broker) publish(ev StreamEvent) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	ev.Seq = b.seq
	for sub := range b.subs {
		ev.Dropped = sub.dropped
		select {
		case sub.ch <- ev:
			sub.dropped = 0
		default: // slow consumer: drop, never stall the scheduler
			sub.dropped++
			b.droppedTotal++
		}
	}
}

// dropped reports the lifetime count of events lost to slow
// subscribers, across all subscribers including departed ones.
func (b *broker) dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.droppedTotal
}

// subscribe registers a new consumer and returns its channel plus a
// cancel func that unregisters and closes it.
func (b *broker) subscribe() (<-chan StreamEvent, func()) {
	sub := &subscriber{ch: make(chan StreamEvent, 64)}
	b.mu.Lock()
	b.subs[sub] = struct{}{}
	b.mu.Unlock()
	return sub.ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[sub]; ok {
			delete(b.subs, sub)
			close(sub.ch)
		}
		b.mu.Unlock()
	}
}
