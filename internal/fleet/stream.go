package fleet

import "sync"

// A StreamEvent is one fleet lifecycle event on the /api/events SSE
// feed. Type is one of: submit, slice_start, checkpoint, slice_end,
// done, failed, worker_death. Seq is a monotone per-manager sequence
// number so consumers can detect drops (the feed is lossy by design).
type StreamEvent struct {
	Seq        int64   `json:"seq"`
	Type       string  `json:"type"`
	Campaign   string  `json:"campaign,omitempty"`
	Worker     string  `json:"worker,omitempty"`
	State      string  `json:"state,omitempty"`
	Clock      float64 `json:"clock,omitempty"`
	Edges      int     `json:"edges,omitempty"`
	Execs      int     `json:"execs,omitempty"`
	EdgesDelta int     `json:"edges_delta,omitempty"`
	ExecsDelta int     `json:"execs_delta,omitempty"`
	Reward     float64 `json:"reward,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// broker fans StreamEvents out to live subscribers. Publishing never
// blocks the scheduler: a subscriber whose buffer is full simply loses
// the event, which is why StreamEvent carries Seq.
type broker struct {
	mu   sync.Mutex
	seq  int64
	subs map[chan StreamEvent]struct{}
}

func newBroker() *broker {
	return &broker{subs: make(map[chan StreamEvent]struct{})}
}

func (b *broker) publish(ev StreamEvent) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	ev.Seq = b.seq
	for ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop, never stall the scheduler
		}
	}
}

// subscribe registers a new consumer and returns its channel plus a
// cancel func that unregisters and closes it.
func (b *broker) subscribe() (<-chan StreamEvent, func()) {
	ch := make(chan StreamEvent, 64)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
}
