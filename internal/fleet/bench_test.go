package fleet_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"cmfuzz/internal/dist"
	"cmfuzz/internal/fleet"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
)

// delayConn injects a fixed one-way link latency on every outgoing
// frame (the transport writes one frame per Write call). This is what
// makes the scheduler comparison honest on a single-vCPU host: the
// campaigns' replay compute cannot parallelize there, but the lease
// RPC latency — the real cost on a distributed fleet — can only be
// hidden by overlapping campaigns, which is exactly what the
// partitioned scheduler does and the serial one cannot.
type delayConn struct {
	net.Conn
	delay time.Duration
}

func (d *delayConn) Write(p []byte) (int, error) {
	time.Sleep(d.delay)
	return d.Conn.Write(p)
}

// delayPool is newPool with the given link latency on every
// coordinator-side connection.
func delayPool(b *testing.B, n int, delay time.Duration) (*dist.Pool, func()) {
	b.Helper()
	pool := dist.NewPool(dist.Config{HeartbeatInterval: -1})
	serveErr := make(chan error, n)
	for i := 0; i < n; i++ {
		cConn, wConn := net.Pipe()
		w := dist.NewWorker(dist.WorkerConfig{Name: fmt.Sprintf("w%d", i), Resolve: func(name string) (subject.Subject, error) {
			return protocols.ByName(name)
		}})
		go func() { serveErr <- w.Serve(wConn) }()
		if err := pool.AddConn(&delayConn{Conn: cConn, delay: delay}); err != nil {
			b.Fatal(err)
		}
	}
	return pool, func() {
		pool.Close()
		for i := 0; i < n; i++ {
			if err := <-serveErr; err != nil {
				b.Error(err)
			}
		}
	}
}

// drainFleet drains the standard 4-campaign mix over a 4-worker pool
// at the given scheduler concurrency and returns the wall-clock time
// of the drain alone (pool setup and teardown excluded).
func drainFleet(b *testing.B, concurrency int, delay time.Duration) time.Duration {
	b.Helper()
	pool, wait := delayPool(b, 4, delay)
	defer wait()
	m, err := fleet.NewManager(fleet.Config{StateDir: b.TempDir(), Slice: 300, Concurrency: concurrency},
		pool, protocols.ByName)
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range []fleet.CampaignSpec{
		{ID: "dns-a", Subject: "DNS", Hours: 0.25, Seed: 11, Instances: 1},
		{ID: "mqtt-b", Subject: "MQTT", Hours: 0.25, Seed: 3, Instances: 1},
		{ID: "coap-c", Subject: "CoAP", Hours: 0.25, Seed: 7, Instances: 1},
		{ID: "dtls-d", Subject: "DTLS", Hours: 0.25, Seed: 5, Instances: 1},
	} {
		if err := m.Submit(spec); err != nil {
			b.Fatal(err)
		}
	}
	start := time.Now()
	if err := m.Drain(context.Background()); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start)
	for _, st := range m.Status() {
		if st.State != fleet.StateDone {
			b.Fatalf("%s = %s (%s), want done", st.ID, st.State, st.Error)
		}
	}
	return elapsed
}

// BenchmarkFleetDrain measures wall-clock drain time of a 4-campaign /
// 4-worker mix with 5ms of injected one-way link latency per frame,
// serial scheduler (Concurrency: 1) vs partitioned concurrent
// scheduler (Concurrency: 0). The concurrent scheduler must overlap
// the four campaigns' RPC latency; the acceptance bar (>= 1.8x,
// recorded in BENCH_fleet.json) is checked by the bench-smoke CI step.
func BenchmarkFleetDrain(b *testing.B) {
	const delay = 5 * time.Millisecond
	for _, bc := range []struct {
		name        string
		concurrency int
	}{
		{"serial", 1},
		{"concurrent", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				total += drainFleet(b, bc.concurrency, delay)
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "wall-ms/op")
		})
	}
}
