package fleet_test

import (
	"bufio"
	"context"
	"io"
	"io/fs"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cmfuzz/internal/campaign"
	"cmfuzz/internal/dist"
	"cmfuzz/internal/fleet"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
)

// newPool builds a shared worker pool backed by n in-process pipe
// workers. The returned func tears the fleet down and joins the worker
// goroutines.
func newPool(t *testing.T, n int) (*dist.Pool, func()) {
	t.Helper()
	pool := dist.NewPool(dist.Config{HeartbeatInterval: -1})
	serveErr := make(chan error, n)
	for i := 0; i < n; i++ {
		cConn, wConn := net.Pipe()
		w := dist.NewWorker(dist.WorkerConfig{Name: "w", Resolve: func(name string) (subject.Subject, error) {
			return protocols.ByName(name)
		}})
		go func() { serveErr <- w.Serve(wConn) }()
		if err := pool.AddConn(cConn); err != nil {
			t.Fatal(err)
		}
	}
	return pool, func() {
		pool.Close()
		for i := 0; i < n; i++ {
			if err := <-serveErr; err != nil {
				t.Error(err)
			}
		}
	}
}

// standaloneTree runs spec as a plain in-process campaign and returns
// its artifact tree — the reference every fleet-scheduled run must
// match byte for byte.
func standaloneTree(t *testing.T, spec fleet.CampaignSpec) map[string]string {
	t.Helper()
	sub, err := protocols.ByName(spec.Subject)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.New()
	res, err := parallel.Run(context.Background(), sub, parallel.Options{
		Mode:         parallel.ModeCMFuzz,
		Instances:    spec.Instances,
		VirtualHours: spec.Hours,
		Seed:         spec.Seed,
		Concurrency:  1,
		Telemetry:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := campaign.WriteArtifacts(dir, res); err != nil {
		t.Fatal(err)
	}
	if err := campaign.WriteTelemetry(dir, rec); err != nil {
		t.Fatal(err)
	}
	return readTree(t, dir)
}

func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[rel] = string(raw)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func diffTrees(t *testing.T, label string, want, got map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: artifact sets differ: %d files vs %d", label, len(want), len(got))
	}
	for rel, a := range want {
		b, ok := got[rel]
		if !ok {
			t.Fatalf("%s: missing artifact %s", label, rel)
		}
		if a != b {
			t.Fatalf("%s: artifact %s diverged:\n--- want ---\n%s\n--- got ---\n%s", label, rel, a, b)
		}
	}
}

func findStatus(t *testing.T, m *fleet.Manager, id string) fleet.CampaignStatus {
	t.Helper()
	for _, st := range m.Status() {
		if st.ID == id {
			return st
		}
	}
	t.Fatalf("campaign %q not in status", id)
	return fleet.CampaignStatus{}
}

// TestFleetMatchesStandalone: a campaign advanced by the fleet
// scheduler in many slices — checkpointed to disk after every one —
// must write artifacts byte-identical to an uninterrupted in-process
// run of the same spec.
func TestFleetMatchesStandalone(t *testing.T) {
	spec := fleet.CampaignSpec{ID: "dns-a", Subject: "DNS", Hours: 0.5, Seed: 11}
	want := standaloneTree(t, spec)

	pool, wait := newPool(t, 2)
	defer wait()
	state := t.TempDir()
	m, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 400}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	st := findStatus(t, m, "dns-a")
	if st.State != fleet.StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	if st.Slices < 3 {
		t.Fatalf("slices = %d, want several (Slice=400 over an 1800s horizon)", st.Slices)
	}
	if _, err := os.Stat(filepath.Join(state, "dns-a", "checkpoint.bin")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not cleaned up after completion: %v", err)
	}
	diffTrees(t, "fleet run", want, readTree(t, filepath.Join(state, "dns-a", "artifacts")))
}

// TestRestartResumesByteIdentity: kill the scheduler process abruptly
// (Manager.Close: no parting checkpoint — on-disk state stays at the
// last slice boundary, as after a crash), bring up a fresh manager on
// the same state directory, and finish. Both campaigns' artifacts must
// match a standalone run exactly.
func TestRestartResumesByteIdentity(t *testing.T) {
	specs := []fleet.CampaignSpec{
		{ID: "dns-a", Subject: "DNS", Hours: 0.5, Seed: 11},
		{ID: "mqtt-b", Subject: "MQTT", Hours: 0.25, Seed: 3},
	}
	want := map[string]map[string]string{}
	for _, spec := range specs {
		want[spec.ID] = standaloneTree(t, spec)
	}

	pool, wait := newPool(t, 2)
	defer wait()
	state := t.TempDir()
	m1, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 300}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if err := m1.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	// Two concurrent rounds: both campaigns advance two slices each,
	// leaving both mid-flight (mqtt-b's 900s horizon needs three).
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		ok, err := m1.Step(ctx)
		if err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	m1.Close() // crash: running coordinators dropped without checkpointing

	m2, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 300}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if st := findStatus(t, m2, spec.ID); st.State != fleet.StateQueued {
			t.Fatalf("recovered %s state = %s, want queued", spec.ID, st.State)
		}
	}
	if err := m2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if st := findStatus(t, m2, spec.ID); st.State != fleet.StateDone {
			t.Fatalf("%s state = %s (%s), want done", spec.ID, st.State, st.Error)
		}
		diffTrees(t, "restarted "+spec.ID, want[spec.ID],
			readTree(t, filepath.Join(state, spec.ID, "artifacts")))
	}
}

// TestRunParksOnCancel: cancelling the serve loop checkpoints every
// running campaign (graceful shutdown), and a successor manager resumes
// them to a byte-identical finish.
func TestRunParksOnCancel(t *testing.T) {
	spec := fleet.CampaignSpec{ID: "dns-a", Subject: "DNS", Hours: 0.5, Seed: 11}
	want := standaloneTree(t, spec)

	pool, wait := newPool(t, 2)
	defer wait()
	state := t.TempDir()
	m, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 200}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- m.Run(ctx) }()
	if err := m.Submit(spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for findStatus(t, m, "dns-a").Slices < 1 {
		if time.Now().After(deadline) {
			t.Fatal("campaign never got a slice")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-runErr; err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}

	st := findStatus(t, m, "dns-a")
	if st.State == fleet.StateQueued {
		if _, err := os.Stat(filepath.Join(state, "dns-a", "checkpoint.bin")); err != nil {
			t.Fatalf("parked campaign has no checkpoint: %v", err)
		}
	} else if st.State != fleet.StateDone {
		t.Fatalf("state after cancel = %s (%s)", st.State, st.Error)
	}

	m2, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 200}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	diffTrees(t, "resumed after cancel", want, readTree(t, filepath.Join(state, "dns-a", "artifacts")))
}

// TestAPIEndpoints drives the machine API end to end: submit
// validation, duplicate rejection, status, and results gating — then
// verifies a cold manager recovers a completed campaign from disk alone.
func TestAPIEndpoints(t *testing.T) {
	pool, wait := newPool(t, 2)
	defer wait()
	state := t.TempDir()
	m, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 500}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.APIHandler())
	defer srv.Close()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/api/submit", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	if code, _ := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("bad JSON: code = %d, want 400", code)
	}
	if code, _ := post(`{"id":"../evil","subject":"DNS","hours":1}`); code != http.StatusBadRequest {
		t.Fatalf("path-traversal id: code = %d, want 400", code)
	}
	if code, _ := post(`{"id":"dns-x","subject":"NOPE","hours":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown subject: code = %d, want 400", code)
	}
	if code, body := post(`{"id":"mqtt-a","subject":"MQTT","hours":0.25,"seed":3}`); code != http.StatusAccepted {
		t.Fatalf("submit: code = %d body = %s", code, body)
	}
	if code, _ := post(`{"id":"mqtt-a","subject":"MQTT","hours":0.25,"seed":3}`); code != http.StatusConflict {
		t.Fatalf("duplicate: code = %d, want 409", code)
	}
	if code, body := get("/api/status"); code != 200 || !strings.Contains(body, `"mqtt-a"`) ||
		!strings.Contains(body, fleet.StateQueued) {
		t.Fatalf("status: code = %d body = %s", code, body)
	}
	if code, _ := get("/api/results?id=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown results: code = %d, want 404", code)
	}
	if code, _ := get("/api/results?id=mqtt-a"); code != http.StatusConflict {
		t.Fatalf("early results: code = %d, want 409", code)
	}

	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, body := get("/api/results?id=mqtt-a")
	if code != 200 {
		t.Fatalf("results: code = %d body = %s", code, body)
	}
	disk, err := os.ReadFile(filepath.Join(state, "mqtt-a", "artifacts", "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if body != string(disk) {
		t.Fatal("results body differs from result.json on disk")
	}

	// A cold manager on the same state dir recovers the campaign as done
	// without touching the worker pool.
	m2, err := fleet.NewManager(fleet.Config{StateDir: state}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	if st := findStatus(t, m2, "mqtt-a"); st.State != fleet.StateDone {
		t.Fatalf("recovered state = %s, want done", st.State)
	}
	if _, err := m2.Results("mqtt-a"); err != nil {
		t.Fatal(err)
	}
}

// TestEventStreamAndFlightAPI drives the live observability surface: a
// subscribed SSE client sees the campaign's whole lifecycle (submit,
// slice_start, checkpoint, slice_end, done), and /api/flight serves the
// flight recorder — bandit awards and lease summaries — while
// triage.json stays absent for a healthy campaign and nothing leaks
// into artifacts/.
func TestEventStreamAndFlightAPI(t *testing.T) {
	pool, wait := newPool(t, 2)
	defer wait()
	state := t.TempDir()
	m, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 300}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.APIHandler())
	defer srv.Close()

	if resp, err := http.Get(srv.URL + "/api/flight?id=nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("flight of unknown campaign: code = %d, want 404", resp.StatusCode)
		}
	}

	streamCtx, stopStream := context.WithCancel(context.Background())
	defer stopStream()
	req, err := http.NewRequestWithContext(streamCtx, http.MethodGet, srv.URL+"/api/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q, want text/event-stream", ct)
	}
	types := make(chan string, 256)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "event: ") {
				types <- strings.TrimPrefix(sc.Text(), "event: ")
			}
		}
	}()

	spec := fleet.CampaignSpec{ID: "mqtt-a", Subject: "MQTT", Hours: 0.25, Seed: 3}
	if err := m.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	missing := map[string]bool{
		"submit": true, "slice_start": true, "checkpoint": true, "slice_end": true, "done": true,
	}
	deadline := time.After(10 * time.Second)
	for len(missing) > 0 {
		select {
		case ty := <-types:
			delete(missing, ty)
		case <-deadline:
			t.Fatalf("timed out waiting for SSE events; still missing %v", missing)
		}
	}

	fresp, err := http.Get(srv.URL + "/api/flight?id=mqtt-a")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	raw, _ := io.ReadAll(fresp.Body)
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("flight: code = %d body = %s", fresp.StatusCode, raw)
	}
	for _, want := range []string{`"kind": "award"`, `"kind": "lease"`, `"total"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("flight snapshot missing %s:\n%s", want, raw)
		}
	}

	// A healthy campaign never dumps triage.json, and the flight recorder
	// must not contaminate the byte-identity-checked artifact tree.
	if _, err := os.Stat(filepath.Join(state, "mqtt-a", "triage.json")); !os.IsNotExist(err) {
		t.Fatalf("triage.json written for a healthy campaign: %v", err)
	}
	if _, err := os.Stat(filepath.Join(state, "mqtt-a", "artifacts", "triage.json")); !os.IsNotExist(err) {
		t.Fatalf("triage.json leaked into artifacts/: %v", err)
	}
}

// TestFlightTriageDumpOnFailure: a campaign that dies (here: the whole
// worker fleet is gone before its first slice) must be marked failed
// AND leave a triage.json flight dump in its state dir for post-mortem.
func TestFlightTriageDumpOnFailure(t *testing.T) {
	pool, wait := newPool(t, 1)
	wait() // tear the fleet down: every subsequent lease fails
	state := t.TempDir()
	m, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 300}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fleet.CampaignSpec{ID: "dns-a", Subject: "DNS", Hours: 0.25, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := findStatus(t, m, "dns-a")
	if st.State != fleet.StateFailed || st.Error == "" {
		t.Fatalf("state = %s (%q), want failed with an error", st.State, st.Error)
	}
	raw, err := os.ReadFile(filepath.Join(state, "dns-a", "triage.json"))
	if err != nil {
		t.Fatalf("no triage.json after campaign failure: %v", err)
	}
	for _, want := range []string{`"reason": "campaign_failed"`, `"kind": "failed"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("triage.json missing %s:\n%s", want, raw)
		}
	}
}

// TestRecoveryRestoresFinalFigures is the regression test for recovered
// done campaigns reporting zero edges/execs: a cold manager scanning
// the state dir must surface the completed campaign's final figures
// from result.json, so /api/status and the monitor gauges stay truthful
// across restarts.
func TestRecoveryRestoresFinalFigures(t *testing.T) {
	pool, wait := newPool(t, 2)
	defer wait()
	state := t.TempDir()
	m1, err := fleet.NewManager(fleet.Config{StateDir: state, Slice: 300}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Submit(fleet.CampaignSpec{ID: "mqtt-a", Subject: "MQTT", Hours: 0.25, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st1 := findStatus(t, m1, "mqtt-a")
	if st1.State != fleet.StateDone || st1.Edges == 0 || st1.Execs == 0 {
		t.Fatalf("live final status implausible: %+v", st1)
	}

	m2, err := fleet.NewManager(fleet.Config{StateDir: state}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	st2 := findStatus(t, m2, "mqtt-a")
	if st2.State != fleet.StateDone {
		t.Fatalf("recovered state = %s, want done", st2.State)
	}
	if st2.Edges != st1.Edges || st2.Execs != st1.Execs {
		t.Fatalf("recovered figures diverge from live run: got %d edges / %d execs, want %d / %d",
			st2.Edges, st2.Execs, st1.Edges, st1.Execs)
	}
}

// slicePoint is one campaign's cumulative progress at one of its own
// slice boundaries. Campaign trajectories are deterministic and
// slicing-invariant, so these points describe the campaign under ANY
// allocator — which lets the test replay the observed trajectories
// under simulated round-robin and oracle-static schedules for a fair
// comparison on identical data.
type slicePoint struct{ edges, execs int }

// simulate walks a slice schedule (campaign id per quantum) over the
// recorded trajectories and returns the total worker execs spent when
// every campaign has first reached its plateau threshold.
func simulate(order []string, hist map[string][]slicePoint, thr map[string]int) int {
	idx := map[string]int{}
	done := 0
	for _, id := range order {
		i := idx[id]
		if i >= len(hist[id]) {
			continue
		}
		idx[id] = i + 1
		if hist[id][i].edges >= thr[id] && (i == 0 || hist[id][i-1].edges < thr[id]) {
			done++
			if done == len(hist) {
				total := 0
				for cid, j := range idx {
					if j > 0 {
						total += hist[cid][j-1].execs
					}
				}
				return total
			}
		}
	}
	return -1 // schedule ended before every campaign plateaued
}

// roundRobin builds the naive static-split schedule: one quantum per
// campaign in submission order, skipping finished campaigns.
func roundRobin(ids []string, hist map[string][]slicePoint) []string {
	idx := map[string]int{}
	var order []string
	for {
		progressed := false
		for _, id := range ids {
			if idx[id] < len(hist[id]) {
				order = append(order, id)
				idx[id]++
				progressed = true
			}
		}
		if !progressed {
			return order
		}
	}
}

// TestBanditAllocation is the fleet-scheduling acceptance bench: four
// campaigns with different saturation profiles share two workers; the
// bandit must bring every campaign to its coverage plateau (99% of
// final edges) spending at most 15% more total worker execs than the
// oracle static split that gives each campaign exactly the slices it
// needs. Round-robin is simulated on the same trajectories for
// contrast; BENCH_fleet.json records a run of this test.
func TestBanditAllocation(t *testing.T) {
	specs := []fleet.CampaignSpec{
		// Two long campaigns with different saturation points (DNS
		// plateaus near the halfway mark, DTLS keeps earning almost to
		// its horizon) plus two short ones that need their whole run: an
		// allocator that cannot tell a plateaued campaign from an earning
		// one overshoots DNS while DTLS starves.
		{ID: "dns-long", Subject: "DNS", Hours: 8, Seed: 11},
		{ID: "dtls-long", Subject: "DTLS", Hours: 8, Seed: 5},
		{ID: "mqtt-short", Subject: "MQTT", Hours: 2, Seed: 3},
		{ID: "coap-short", Subject: "CoAP", Hours: 2, Seed: 7},
	}
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}

	pool, wait := newPool(t, 2)
	defer wait()
	// Concurrency 1: the oracle/round-robin comparison simulates a
	// serial one-slice-per-step schedule, the regime the discounted-UCB
	// pick was designed and budgeted for.
	m, err := fleet.NewManager(fleet.Config{StateDir: t.TempDir(), Slice: 600, Concurrency: 1}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if err := m.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	hist := map[string][]slicePoint{}
	prev := map[string]int{}
	var order []string
	for {
		ok, err := m.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		for _, st := range m.Status() {
			if st.Slices > prev[st.ID] {
				prev[st.ID] = st.Slices
				order = append(order, st.ID)
				hist[st.ID] = append(hist[st.ID], slicePoint{st.Edges, st.Execs})
			}
		}
	}
	for _, st := range m.Status() {
		if st.State != fleet.StateDone {
			t.Fatalf("%s state = %s (%s), want done", st.ID, st.State, st.Error)
		}
	}

	// Per-campaign plateau threshold and oracle cost E_c: the execs at
	// the first slice boundary reaching 99% of final coverage. The
	// oracle static split runs each campaign exactly that far.
	thr := map[string]int{}
	oracle := 0
	for _, id := range ids {
		pts := hist[id]
		final := pts[len(pts)-1].edges
		thr[id] = int(math.Ceil(0.99 * float64(final)))
		for _, p := range pts {
			if p.edges >= thr[id] {
				oracle += p.execs
				break
			}
		}
	}

	bandit := simulate(order, hist, thr)
	rr := simulate(roundRobin(ids, hist), hist, thr)
	if bandit < 0 || rr < 0 {
		t.Fatalf("schedule ended before plateau: bandit=%d rr=%d", bandit, rr)
	}
	t.Logf("worker execs to all-plateau: oracle=%d bandit=%d (%.1f%% over) round-robin=%d (%.1f%% over)",
		oracle, bandit, 100*float64(bandit-oracle)/float64(oracle),
		rr, 100*float64(rr-oracle)/float64(oracle))
	if float64(bandit) > 1.15*float64(oracle) {
		t.Fatalf("bandit spent %d execs to all-plateau, oracle %d: %.1f%% over the 15%% budget",
			bandit, oracle, 100*float64(bandit-oracle)/float64(oracle))
	}
}
