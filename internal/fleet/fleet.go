// Package fleet is the long-lived multi-campaign scheduler behind
// `cmfuzz serve`: many (protocol, configuration-group) campaigns share
// one worker fleet, a deterministic UCB1 bandit reassigns worker time
// slices toward the campaigns with the best observed coverage rate per
// execution, and every campaign's state survives coordinator restarts
// through the dist checkpoint format.
//
// The scheduler is concurrent by partition: each round, the bandit's
// scores become worker *shares*, the shared dist.Pool is split into
// disjoint partitions (one per runnable campaign, sized by share), and
// every campaign advances one virtual-clock slice simultaneously —
// each coordinator driving only its own partition's connections. A
// campaign that keeps the same partition across rounds hands off warm:
// the coordinator, its dispatchers, and the worker-side engines stay
// live and the next slice continues the lease loop directly. Byte
// identity survives by composition: each campaign's replay is
// slicing-invariant (see dist.Advance) and worker-count-invariant, so
// the artifacts a campaign produces are byte-identical whatever
// schedule the allocator picks, however many workers each round hands
// it, and however often the hosting process restarts. Config
// Concurrency: 1 recovers the legacy serial scheduler.
//
// On-disk layout under Config.StateDir:
//
//	<id>/spec.json       the submitted campaign spec (write-once)
//	<id>/checkpoint.bin  dist checkpoint, rewritten after every slice
//	<id>/artifacts/      final artifacts, written at completion
//
// All writes are atomic (campaign.WriteFileAtomic), so a kill at any
// instant leaves either the previous or the next consistent state.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cmfuzz/internal/campaign"
	"cmfuzz/internal/dist"
	"cmfuzz/internal/live"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/metrics"
)

// Config parameterizes a Manager.
type Config struct {
	// StateDir persists specs, checkpoints, and final artifacts.
	StateDir string
	// Slice is the virtual-clock length of one scheduling quantum
	// (default 900 virtual seconds — a quarter of a default sync
	// interval cycle, long enough to amortize checkpointing, short
	// enough for the bandit to react).
	Slice float64
	// Concurrency caps how many campaigns advance per scheduling
	// round. 0 (the default) slices every runnable campaign
	// concurrently, worker supply permitting; 1 selects the legacy
	// serial scheduler (one bandit pick per Step, whole pool per
	// campaign); N>1 limits a round to the N highest-priority
	// campaigns.
	Concurrency int
}

// A CampaignSpec is one submitted campaign, as posted to /api/submit.
// Exactly one of Subject (a built-in protocol name) and Live (an
// inline live-target spec) selects the fuzzing target; when Live is
// set, Subject serves only as a display label.
type CampaignSpec struct {
	ID        string     `json:"id"`
	Subject   string     `json:"subject"`
	Mode      string     `json:"mode,omitempty"` // cmfuzz (default) | peach | spfuzz
	Hours     float64    `json:"hours"`
	Seed      int64      `json:"seed"`
	Instances int        `json:"instances,omitempty"` // 0 = parallel default
	Live      *live.Spec `json:"live,omitempty"`      // live target instead of a built-in subject
}

// Campaign lifecycle states.
const (
	StateQueued  = "queued"  // submitted; not running in this process (may hold a checkpoint)
	StateRunning = "running" // a live coordinator holds it
	StateDone    = "done"    // artifacts written
	StateFailed  = "failed"  // gave up; Error holds why
)

// A CampaignStatus is the /api/status snapshot of one campaign.
type CampaignStatus struct {
	ID      string  `json:"id"`
	Subject string  `json:"subject"`
	Mode    string  `json:"mode"`
	State   string  `json:"state"`
	Clock   float64 `json:"clock"`
	Horizon float64 `json:"horizon"`
	Edges   int     `json:"edges"`
	Execs   int     `json:"execs"`
	Slices  int     `json:"slices"`
	Reward  float64 `json:"reward"`
	Workers int     `json:"workers"`
	Error   string  `json:"error,omitempty"`
}

// campaignRec is the manager-side record of one campaign.
type campaignRec struct {
	spec  CampaignSpec
	state string
	err   string

	coord *dist.Coordinator
	// part is the worker partition the campaign currently holds (nil
	// when parked, done, or running serially over the whole pool);
	// workers caches its size for status snapshots, updated under the
	// manager lock at assignment and release.
	part    *dist.Partition
	workers int
	// prevWorkers remembers the names of the partition members the
	// campaign last held, captured when the partition is released.
	// The next acquisition prefers these workers (Pool.AcquirePreferring)
	// so a park-and-reacquire lands back on machines that already hold
	// this campaign's warm state when capacity allows.
	prevWorkers []string

	// Bandit bookkeeping. reward is an exponential moving average of the
	// per-slice coverage rate — new union edges per (executions+1)
	// observed during the slice. Coverage rate decays as a campaign
	// saturates, so the bandit discounts old observations instead of
	// averaging over the campaign's whole life; a lifetime mean would
	// keep feeding a campaign that scored big early and plateaued.
	slices    int
	reward    float64
	lastEdges int
	lastExecs int

	// Cached progress, updated at slice boundaries so /api/status never
	// races the replay loop.
	clock   float64
	horizon float64
	edges   int
	execs   int

	// flight is the campaign's flight recorder: a bounded ring of recent
	// telemetry events, bandit awards, and lease summaries, dumped as
	// triage.json when something dies. Observation-only — never read by
	// the scheduler.
	flight *flightRing
}

func (c *campaignRec) runnable() bool { return c.state == StateQueued || c.state == StateRunning }

// A Manager owns the campaign table and the slice scheduler. One
// goroutine drives Step/Drain/Run; Submit, Status, and Results are safe
// to call concurrently from HTTP handlers.
type Manager struct {
	cfg     Config
	pool    *dist.Pool
	resolve func(string) (subject.Subject, error)

	mu        sync.Mutex
	cond      *sync.Cond
	campaigns map[string]*campaignRec
	order     []string
	stopped   bool

	// events fans lifecycle events out to /api/events subscribers.
	events *broker
	// leaseLatency, when instrumented, observes per-lease round-trip
	// seconds across every campaign on this manager.
	leaseLatency *metrics.Histogram
}

// Events exposes the live event feed; the API layer subscribes SSE
// clients through it.
func (m *Manager) Events() *broker { return m.events }

// Instrument registers the manager's fleet-level metrics on reg:
// lease round-trip latency, the lifetime flight-recorder event count,
// and the lifetime count of stream events lost to slow SSE
// subscribers. Call once, before Run.
func (m *Manager) Instrument(reg *metrics.Registry) {
	m.leaseLatency = reg.Histogram("cmfuzz_lease_latency_seconds",
		"Round-trip time of one worker lease RPC, request encode to reply decode.", nil)
	reg.CounterFunc("cmfuzz_flight_events_total",
		"Flight-recorder events captured across all campaigns (including evicted ones).",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			var total int64
			for _, c := range m.campaigns {
				total += c.flight.count()
			}
			return float64(total)
		})
	reg.CounterFunc("cmfuzz_stream_dropped_total",
		"Stream events discarded because a subscriber's buffer was full.",
		func() float64 { return float64(m.events.dropped()) })
}

// NewManager opens (or creates) the state directory and recovers every
// campaign found there: completed campaigns (artifacts present) come
// back done, everything else comes back queued — with its checkpoint,
// if one was persisted, resumed on the campaign's first slice.
func NewManager(cfg Config, pool *dist.Pool, resolve func(string) (subject.Subject, error)) (*Manager, error) {
	if cfg.Slice <= 0 {
		cfg.Slice = 900
	}
	if cfg.StateDir == "" {
		return nil, errors.New("fleet: no state directory configured")
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:       cfg,
		pool:      pool,
		resolve:   resolve,
		campaigns: make(map[string]*campaignRec),
		events:    newBroker(),
	}
	m.cond = sync.NewCond(&m.mu)

	entries, err := os.ReadDir(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	// Recover in name order: the original submission order is not
	// persisted, and a deterministic recovery order keeps the bandit's
	// tie-breaking reproducible across restarts.
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		spec, err := readSpec(filepath.Join(cfg.StateDir, e.Name(), "spec.json"))
		if err != nil {
			continue // not a campaign dir (or torn before the atomic spec write: never submitted)
		}
		rec := &campaignRec{spec: spec, state: StateQueued, horizon: spec.Hours * 3600, flight: newFlightRing()}
		if raw, err := os.ReadFile(filepath.Join(m.dir(spec.ID), "artifacts", "result.json")); err == nil {
			rec.state = StateDone
			rec.clock = rec.horizon
			// Recover the final figures from the artifact so status and
			// monitor gauges don't read zero for campaigns completed in a
			// previous process lifetime.
			var final struct {
				FinalBranches int `json:"final_branches"`
				TotalExecs    int `json:"total_execs"`
			}
			if json.Unmarshal(raw, &final) == nil {
				rec.edges = final.FinalBranches
				rec.execs = final.TotalExecs
			}
		}
		// A corrupt or truncated checkpoint (torn write from a kill
		// mid-rename, disk trouble) would otherwise fail the campaign's
		// first slice after recovery. Quarantine it now — rename it
		// aside, mark the campaign failed with the decode error so
		// /api/status reports why — and keep scanning: one damaged
		// campaign must not abort recovery of the rest.
		if rec.state == StateQueued {
			ckPath := filepath.Join(m.dir(spec.ID), "checkpoint.bin")
			if blob, err := os.ReadFile(ckPath); err == nil {
				if verr := dist.ValidateCheckpoint(blob); verr != nil {
					os.Rename(ckPath, ckPath+".corrupt")
					rec.state = StateFailed
					rec.err = fmt.Sprintf("checkpoint quarantined to checkpoint.bin.corrupt: %v", verr)
				}
			}
		}
		m.campaigns[spec.ID] = rec
		m.order = append(m.order, spec.ID)
	}
	return m, nil
}

func (m *Manager) dir(id string) string { return filepath.Join(m.cfg.StateDir, id) }

func validID(id string) bool {
	if id == "" || len(id) > 64 || id[0] == '.' {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// ErrExists reports a submit with an already-used campaign id.
var ErrExists = errors.New("fleet: campaign id already exists")

// Submit validates spec, persists it, and queues the campaign. The
// bandit will start slicing it on the scheduler's next pick.
func (m *Manager) Submit(spec CampaignSpec) error {
	if !validID(spec.ID) {
		return fmt.Errorf("fleet: invalid campaign id %q", spec.ID)
	}
	if spec.Hours <= 0 {
		return fmt.Errorf("fleet: campaign %q: hours must be positive", spec.ID)
	}
	if _, err := m.options(spec); err != nil {
		return err
	}
	if _, err := m.subjectFor(spec); err != nil {
		return fmt.Errorf("fleet: campaign %q: %w", spec.ID, err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.campaigns[spec.ID]; ok {
		return ErrExists
	}
	if err := os.MkdirAll(m.dir(spec.ID), 0o755); err != nil {
		return err
	}
	if err := writeSpec(filepath.Join(m.dir(spec.ID), "spec.json"), spec); err != nil {
		return err
	}
	m.campaigns[spec.ID] = &campaignRec{spec: spec, state: StateQueued, horizon: spec.Hours * 3600, flight: newFlightRing()}
	m.order = append(m.order, spec.ID)
	m.cond.Broadcast()
	m.events.publish(StreamEvent{Type: "submit", Campaign: spec.ID, State: StateQueued})
	return nil
}

// subjectFor maps a spec to its fuzzing target: an inline live-target
// spec when one is present (validated and instantiated fresh per
// call — a live Subject carries per-campaign rails state), otherwise
// a built-in subject by name.
func (m *Manager) subjectFor(spec CampaignSpec) (subject.Subject, error) {
	if spec.Live != nil {
		return live.NewSubject(*spec.Live)
	}
	return m.resolve(spec.Subject)
}

// options maps a spec to campaign options. Concurrency is pinned to 1:
// relation probing order must be deterministic for the restart
// byte-identity guarantee, and the probe phase is a one-off.
func (m *Manager) options(spec CampaignSpec) (parallel.Options, error) {
	var mode parallel.Mode
	switch strings.ToLower(spec.Mode) {
	case "", "cmfuzz":
		mode = parallel.ModeCMFuzz
	case "peach":
		mode = parallel.ModePeach
	case "spfuzz":
		mode = parallel.ModeSPFuzz
	default:
		return parallel.Options{}, fmt.Errorf("fleet: campaign %q: unknown mode %q", spec.ID, spec.Mode)
	}
	return parallel.Options{
		Mode:         mode,
		Instances:    spec.Instances,
		VirtualHours: spec.Hours,
		Seed:         spec.Seed,
		Concurrency:  1,
	}, nil
}

// Status snapshots every campaign in submission order.
func (m *Manager) Status() []CampaignStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]CampaignStatus, 0, len(m.order))
	for _, id := range m.order {
		c := m.campaigns[id]
		out = append(out, CampaignStatus{
			ID:      c.spec.ID,
			Subject: c.spec.Subject,
			Mode:    c.spec.Mode,
			State:   c.state,
			Clock:   c.clock,
			Horizon: c.horizon,
			Edges:   c.edges,
			Execs:   c.execs,
			Slices:  c.slices,
			Reward:  c.reward,
			Workers: c.workers,
			Error:   c.err,
		})
	}
	return out
}

// Results returns the final result.json of a completed campaign.
func (m *Manager) Results(id string) ([]byte, error) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	state := ""
	if ok {
		state = c.state
	}
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown campaign %q", id)
	}
	if state != StateDone {
		return nil, fmt.Errorf("fleet: campaign %q is %s, not done", id, state)
	}
	return os.ReadFile(filepath.Join(m.dir(id), "artifacts", "result.json"))
}

// rewardDecay is the EMA coefficient for the per-slice coverage-rate
// reward: reward = decay*old + (1-decay)*new. 0.5 tracks a saturating
// campaign within a couple of slices without thrashing on one noisy
// slice.
const rewardDecay = 0.5

// pick chooses the next campaign to slice: untried campaigns first, in
// submission order, then the discounted-UCB maximizer — EMA reward +
// sqrt(2 ln N / n) * scale, with scale the best current EMA so the
// exploration bonus is commensurable with the rewards (edge counts per
// exec vary by orders of magnitude across protocols). Deterministic:
// ties break toward earlier submission.
//
// With award set, the decision is recorded in the winner's flight
// recorder; Run's idle-wait probe passes false so probing never files
// phantom awards.
func (m *Manager) pick(award bool) *campaignRec {
	var cands []*campaignRec
	total := 0
	for _, id := range m.order {
		c := m.campaigns[id]
		if c.runnable() {
			cands = append(cands, c)
			total += c.slices
		}
	}
	if len(cands) == 0 {
		return nil
	}
	scale := 0.0
	for _, c := range cands {
		if c.slices == 0 {
			if award {
				// No UCB score exists yet — json can't carry +Inf, so the
				// record says so explicitly.
				c.flight.add("award", map[string]any{"untried": true, "total": total})
			}
			return c
		}
		if c.reward > scale {
			scale = c.reward
		}
	}
	if scale == 0 {
		scale = 1
	}
	best := cands[0]
	bestScore := math.Inf(-1)
	for _, c := range cands {
		score := c.reward + math.Sqrt(2*math.Log(float64(total))/float64(c.slices))*scale
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	if award {
		best.flight.add("award", map[string]any{
			"reward": best.reward,
			"bonus":  bestScore - best.reward,
			"slices": best.slices,
			"total":  total,
		})
	}
	return best
}

// observer builds c's dist.Observer: lease summaries and worker deaths
// flow into the flight recorder, lease latency into the histogram, and
// a death additionally dumps triage.json and hits the event stream.
// Lease fires from dispatcher goroutines; everything it touches locks.
func (m *Manager) observer(c *campaignRec) dist.Observer {
	return dist.Observer{
		Lease: func(instance, records, reqBytes, repBytes int, seconds float64, syncDue bool) {
			c.flight.add("lease", map[string]any{
				"instance":  instance,
				"records":   records,
				"req_bytes": reqBytes,
				"rep_bytes": repBytes,
				"seconds":   seconds,
				"sync_due":  syncDue,
			})
			m.leaseLatency.Observe(seconds)
		},
		Death: func(worker string) {
			c.flight.add("worker_death", map[string]any{"worker": worker})
			m.dumpFlight(c, "worker_death")
			m.events.publish(StreamEvent{Type: "worker_death", Campaign: c.spec.ID, Worker: worker})
		},
	}
}

// ensureStarted brings c's coordinator up: restore from the persisted
// checkpoint when one exists, otherwise start fresh.
func (m *Manager) ensureStarted(ctx context.Context, c *campaignRec) error {
	if c.coord != nil {
		return nil
	}
	sub, err := m.subjectFor(c.spec)
	if err != nil {
		return err
	}
	opts, err := m.options(c.spec)
	if err != nil {
		return err
	}
	// A fresh plain recorder per campaign lifetime — not a run-stamped
	// one — so a restored campaign's event log continues the
	// checkpointed stream byte-for-byte.
	opts.Telemetry = telemetry.New()
	coord := dist.NewCoordinatorOn(m.pool, sub, opts)
	coord.SetObserver(m.observer(c))
	if c.part != nil {
		coord.SetPartition(c.part)
	}
	ckPath := filepath.Join(m.dir(c.spec.ID), "checkpoint.bin")
	if blob, rerr := os.ReadFile(ckPath); rerr == nil {
		err = coord.Restore(ctx, blob)
	} else {
		err = coord.Start(ctx)
	}
	if err != nil {
		coord.Close()
		return err
	}
	// Tap after Start/Restore: Restore installs its own recorder, and the
	// tap must land on whichever one survives. The tap mirrors campaign
	// telemetry (crashes, config switches) into the flight recorder
	// without touching the recorder's own event log.
	coord.Recorder().SetTap(func(ev telemetry.Event) { c.flight.add("telemetry", ev) })
	clock, edges, execs := coord.Progress()
	m.mu.Lock()
	c.coord = coord
	c.state = StateRunning
	c.clock, c.edges, c.execs = clock, edges, execs
	c.horizon = coord.Horizon()
	c.lastEdges, c.lastExecs = edges, execs
	m.mu.Unlock()
	return nil
}

// runSlice advances c by one scheduling quantum, then either completes
// the campaign (artifacts written, checkpoint removed) or persists a
// fresh checkpoint. Called with m.mu NOT held.
func (m *Manager) runSlice(ctx context.Context, c *campaignRec) error {
	if err := m.ensureStarted(ctx, c); err != nil {
		return err
	}
	coord := c.coord
	m.mu.Lock()
	m.events.publish(StreamEvent{
		Type: "slice_start", Campaign: c.spec.ID, State: c.state,
		Clock: c.clock, Edges: c.edges, Execs: c.execs,
	})
	m.mu.Unlock()
	target := coord.MinClock() + m.cfg.Slice
	if h := coord.Horizon(); target > h {
		target = h
	}
	if err := coord.Advance(ctx, target); err != nil {
		return err
	}
	if coord.MinClock() >= coord.Horizon() {
		res, err := coord.Finish(ctx)
		if err != nil {
			return err
		}
		dir := filepath.Join(m.dir(c.spec.ID), "artifacts")
		if err := campaign.WriteTelemetry(dir, coord.Recorder()); err != nil {
			return err
		}
		// result.json lands last: its presence marks the campaign done,
		// so every other artifact must already be in place when a
		// recovery scan sees it.
		if err := campaign.WriteArtifacts(dir, res); err != nil {
			return err
		}
		coord.Close()
		os.Remove(filepath.Join(m.dir(c.spec.ID), "checkpoint.bin"))

		m.mu.Lock()
		c.coord = nil
		c.state = StateDone
		c.clock = coord.Horizon()
		edgesDelta, execsDelta := res.FinalBranches-c.edges, res.TotalExecs-c.execs
		c.edges = res.FinalBranches
		c.execs = res.TotalExecs
		c.slices++
		m.events.publish(StreamEvent{
			Type: "slice_end", Campaign: c.spec.ID, State: StateDone,
			Clock: c.clock, Edges: c.edges, Execs: c.execs,
			EdgesDelta: edgesDelta, ExecsDelta: execsDelta, Reward: c.reward,
		})
		m.events.publish(StreamEvent{
			Type: "done", Campaign: c.spec.ID, State: StateDone,
			Clock: c.clock, Edges: c.edges, Execs: c.execs,
		})
		m.mu.Unlock()
		return nil
	}

	blob, err := coord.Checkpoint()
	if err != nil {
		return err
	}
	if err := campaign.WriteFileAtomic(filepath.Join(m.dir(c.spec.ID), "checkpoint.bin"), blob, 0o644); err != nil {
		return err
	}

	clock, edges, execs := coord.Progress()
	m.mu.Lock()
	r := float64(edges-c.lastEdges) / float64(execs-c.lastExecs+1)
	if c.slices == 0 {
		c.reward = r
	} else {
		c.reward = rewardDecay*c.reward + (1-rewardDecay)*r
	}
	c.slices++
	edgesDelta, execsDelta := edges-c.lastEdges, execs-c.lastExecs
	c.lastEdges, c.lastExecs = edges, execs
	c.clock, c.edges, c.execs = clock, edges, execs
	m.events.publish(StreamEvent{
		Type: "checkpoint", Campaign: c.spec.ID, State: StateRunning, Clock: clock,
	})
	m.events.publish(StreamEvent{
		Type: "slice_end", Campaign: c.spec.ID, State: StateRunning,
		Clock: clock, Edges: edges, Execs: execs,
		EdgesDelta: edgesDelta, ExecsDelta: execsDelta, Reward: c.reward,
	})
	m.mu.Unlock()
	return nil
}

// Step runs one scheduling round. It reports false when no campaign is
// runnable. A context cancellation checkpoints every interrupted
// campaign before returning, so no replay progress past the last
// persisted checkpoint is lost silently. With Concurrency 1 a round is
// the legacy serial quantum: one bandit pick advancing over the whole
// pool; otherwise the pool is partitioned and every selected campaign
// advances one slice concurrently.
func (m *Manager) Step(ctx context.Context) (bool, error) {
	if m.cfg.Concurrency == 1 {
		return m.stepSerial(ctx)
	}
	return m.stepRound(ctx)
}

// stepSerial is the legacy scheduler: the single bandit-chosen
// campaign advances one slice with the whole pool as its worker set.
func (m *Manager) stepSerial(ctx context.Context) (bool, error) {
	m.mu.Lock()
	c := m.pick(true)
	m.mu.Unlock()
	if c == nil {
		return false, nil
	}
	err := m.runSlice(ctx, c)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		m.park(c)
		return false, err
	}
	m.failCampaign(c, err)
	return true, nil
}

// An allocation is one round's grant to one campaign: how many workers
// its partition gets.
type allocation struct {
	c       *campaignRec
	workers int
}

// allocate turns the bandit's scores into worker shares for one round.
// Called with m.mu held; deterministic throughout (ties break toward
// earlier submission, exactly like pick).
//
// Selection is pick's ranking extended to a top-k: untried campaigns
// first in submission order, then tried ones by discounted-UCB score.
// Shares are apportioned highest-averages style (D'Hondt): every
// selected campaign starts at one worker, and each remaining worker
// goes to the campaign maximizing score/(share+1) — so a campaign
// twice as promising converges on twice the workers — capped at the
// campaign's instance count, past which extra workers would idle.
func (m *Manager) allocate() []allocation {
	var cands []*campaignRec
	total := 0
	for _, id := range m.order {
		c := m.campaigns[id]
		if c.runnable() {
			cands = append(cands, c)
			total += c.slices
		}
	}
	if len(cands) == 0 {
		return nil
	}
	scale := 0.0
	for _, c := range cands {
		if c.reward > scale {
			scale = c.reward
		}
	}
	if scale == 0 {
		scale = 1
	}
	score := make(map[*campaignRec]float64, len(cands))
	for _, c := range cands {
		if c.slices == 0 {
			// Untried: rank ahead of every scored campaign, preserving
			// submission order among themselves.
			score[c] = math.Inf(1)
			continue
		}
		score[c] = c.reward + math.Sqrt(2*math.Log(float64(total))/float64(c.slices))*scale
	}
	ranked := make([]*campaignRec, len(cands))
	copy(ranked, cands)
	sort.SliceStable(ranked, func(i, j int) bool { return score[ranked[i]] > score[ranked[j]] })

	// Capacity this round: the free set plus every worker a runnable
	// campaign still holds warm (a mismatched partition is released
	// before re-acquisition, so held workers are redistributable).
	w := m.pool.FreeLive()
	for _, c := range cands {
		w += c.part.Live()
	}
	k := len(ranked)
	if m.cfg.Concurrency > 1 && k > m.cfg.Concurrency {
		k = m.cfg.Concurrency
	}
	if w > 0 && k > w {
		k = w
	}
	if k < 1 {
		// No live workers at all: grant the top campaign an impossible
		// partition so the failure surfaces on it instead of the round
		// silently reporting nothing runnable.
		k = 1
	}
	out := make([]allocation, k)
	for i := 0; i < k; i++ {
		out[i] = allocation{c: ranked[i], workers: 1}
	}
	for extra := w - k; extra > 0; extra-- {
		best := -1
		bestAvg := math.Inf(-1)
		for i := range out {
			if out[i].workers >= instanceCap(out[i].c.spec) {
				continue
			}
			avg := score[out[i].c] / float64(out[i].workers+1)
			if math.IsInf(avg, 1) {
				// Untried campaigns divide to +Inf at any share; fall back
				// to preferring the smaller share so they split evenly.
				avg = -float64(out[i].workers)
			}
			if avg > bestAvg {
				best, bestAvg = i, avg
			}
		}
		if best < 0 {
			break // every selected campaign is at its instance cap
		}
		out[best].workers++
	}
	for _, a := range out {
		a.c.flight.add("award", map[string]any{
			"workers": a.workers,
			"reward":  a.c.reward,
			"slices":  a.c.slices,
			"total":   total,
			"untried": a.c.slices == 0,
		})
	}
	return out
}

// instanceCap is the campaign's parallel instance count — the point
// past which extra workers would idle (parallel's default is 4).
func instanceCap(spec CampaignSpec) int {
	if spec.Instances > 0 {
		return spec.Instances
	}
	return 4
}

// stepRound runs one concurrent scheduling round: allocate shares,
// reconcile partitions (warm hand-off when a campaign's grant matches
// the partition it already holds; park-and-reacquire otherwise), then
// advance every selected campaign one slice in parallel, each
// coordinator driving only its own partition.
func (m *Manager) stepRound(ctx context.Context) (bool, error) {
	m.mu.Lock()
	allocs := m.allocate()
	selected := make(map[*campaignRec]bool, len(allocs))
	for _, a := range allocs {
		selected[a.c] = true
	}
	// Runnable campaigns squeezed out of this round (capacity or the
	// concurrency cap) give their workers back before the selected set
	// acquires.
	var evicted []*campaignRec
	for _, id := range m.order {
		if c := m.campaigns[id]; c.runnable() && !selected[c] && (c.coord != nil || c.part != nil) {
			evicted = append(evicted, c)
		}
	}
	m.mu.Unlock()
	if len(allocs) == 0 {
		return false, nil
	}
	for _, c := range evicted {
		m.park(c)
	}
	for _, a := range allocs {
		c := a.c
		if c.coord != nil && c.part != nil && c.part.Live() == a.workers {
			// Warm hand-off: same partition, live coordinator — the next
			// slice continues the existing lease loop; no finalize, no
			// re-assign, no re-boot.
			c.flight.add("handoff", map[string]any{"warm": true, "workers": a.workers})
			continue
		}
		m.park(c)
	}
	for _, a := range allocs {
		c := a.c
		if c.part == nil {
			c.part = m.pool.AcquirePreferring(a.workers, c.prevWorkers)
			c.flight.add("handoff", map[string]any{"warm": false, "workers": c.part.Live()})
		}
		m.mu.Lock()
		c.workers = c.part.Live()
		m.mu.Unlock()
	}

	errs := make([]error, len(allocs))
	var wg sync.WaitGroup
	for i, a := range allocs {
		if a.c.part == nil {
			errs[i] = errors.New("fleet: no live workers available")
			continue
		}
		wg.Add(1)
		go func(i int, c *campaignRec) {
			defer wg.Done()
			errs[i] = m.runSlice(ctx, c)
		}(i, a.c)
	}
	wg.Wait()

	interrupted := false
	for i, a := range allocs {
		c := a.c
		switch err := errs[i]; {
		case err == nil:
			m.mu.Lock()
			finished := c.state == StateDone || c.state == StateFailed
			m.mu.Unlock()
			if finished {
				m.releasePartition(c)
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			m.park(c)
			interrupted = true
		default:
			m.failCampaign(c, err)
		}
	}
	if interrupted {
		return false, ctx.Err()
	}
	return true, nil
}

// releasePartition returns c's workers to the free set and zeroes the
// status snapshot's worker count, remembering the member names so the
// next acquisition can prefer them.
func (m *Manager) releasePartition(c *campaignRec) {
	if c.part != nil {
		c.prevWorkers = c.part.Names()
		c.part.Release()
		c.part = nil
	}
	m.mu.Lock()
	c.workers = 0
	m.mu.Unlock()
}

// failCampaign handles a campaign-fatal slice error (dead fleet, lost
// subject, disk error): the campaign is marked failed, its flight
// recorder dumped, and its workers returned, while the scheduler keeps
// serving the others.
func (m *Manager) failCampaign(c *campaignRec, err error) {
	if c.coord != nil {
		c.coord.Close()
		c.coord = nil
	}
	m.releasePartition(c)
	c.flight.add("failed", map[string]any{"error": err.Error()})
	m.dumpFlight(c, "campaign_failed")
	m.mu.Lock()
	c.state = StateFailed
	c.err = err.Error()
	m.mu.Unlock()
	m.events.publish(StreamEvent{
		Type: "failed", Campaign: c.spec.ID, State: StateFailed, Error: err.Error(),
	})
}

// park checkpoints and closes c's coordinator and returns its workers
// to the free set, leaving the campaign queued so a later scheduler
// (this process or the next) can resume it.
func (m *Manager) park(c *campaignRec) {
	if c.coord == nil && c.part == nil {
		return
	}
	if c.coord != nil {
		if blob, err := c.coord.Checkpoint(); err == nil {
			campaign.WriteFileAtomic(filepath.Join(m.dir(c.spec.ID), "checkpoint.bin"), blob, 0o644)
		}
		c.coord.Close()
		c.coord = nil
	}
	m.releasePartition(c)
	m.mu.Lock()
	c.state = StateQueued
	m.mu.Unlock()
}

// Drain steps until every campaign is done or failed.
func (m *Manager) Drain(ctx context.Context) error {
	for {
		ok, err := m.Step(ctx)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// Run is the serve-mode main loop: slice runnable campaigns, sleep on
// the condition variable while the table is empty or complete, wake on
// Submit. On context cancellation every running campaign is parked
// (checkpointed and closed) before Run returns ctx.Err().
func (m *Manager) Run(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.stopped = true
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()
	for {
		ok, err := m.Step(ctx)
		if err != nil || ctx.Err() != nil {
			m.parkAll()
			return ctx.Err()
		}
		if ok {
			continue
		}
		m.mu.Lock()
		for !m.stopped && m.pick(false) == nil {
			m.cond.Wait()
		}
		stopped := m.stopped
		m.mu.Unlock()
		if stopped {
			m.parkAll()
			return ctx.Err()
		}
	}
}

// parkAll checkpoints and closes every running campaign.
func (m *Manager) parkAll() {
	m.mu.Lock()
	var running []*campaignRec
	for _, id := range m.order {
		if c := m.campaigns[id]; c.coord != nil || c.part != nil {
			running = append(running, c)
		}
	}
	m.mu.Unlock()
	for _, c := range running {
		m.park(c)
	}
}

// Close abandons every running campaign WITHOUT checkpointing — the
// on-disk state stays at the last slice boundary, exactly as if the
// process had been killed. Restart tests use it to simulate a crash;
// the serve path prefers Run's graceful parking.
func (m *Manager) Close() {
	m.mu.Lock()
	var running []*campaignRec
	for _, id := range m.order {
		if c := m.campaigns[id]; c.coord != nil || c.part != nil {
			running = append(running, c)
		}
	}
	m.stopped = true
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, c := range running {
		if c.coord != nil {
			c.coord.Close()
			c.coord = nil
		}
		m.releasePartition(c)
		m.mu.Lock()
		c.state = StateQueued
		m.mu.Unlock()
	}
}
