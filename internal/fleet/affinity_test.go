package fleet

import (
	"net"
	"reflect"
	"testing"

	"cmfuzz/internal/dist"
	"cmfuzz/internal/subject"
)

// affinityPool builds a pool of n pipe-backed workers with distinct
// names (w0, w1, ...), so tests can tell worker sets apart.
func affinityPool(t *testing.T, n int) *dist.Pool {
	t.Helper()
	pool := dist.NewPool(dist.Config{HeartbeatInterval: -1})
	for i := 0; i < n; i++ {
		cConn, wConn := net.Pipe()
		w := dist.NewWorker(dist.WorkerConfig{Name: "w" + string(rune('0'+i))})
		go w.Serve(wConn)
		if err := pool.AddConn(cConn); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cConn.Close(); wConn.Close() })
	}
	return pool
}

// TestReleaseRecordsAffinity pins the scheduler-side affinity glue:
// releasing a partition remembers its member names, and the re-grant
// path (AcquirePreferring with those names, exactly what stepRound
// issues) lands the campaign back on its previous worker set when
// those workers are free — even when the plain attach-order choice
// would have picked different ones.
func TestReleaseRecordsAffinity(t *testing.T) {
	pool := affinityPool(t, 4)
	defer pool.Close()
	m, err := NewManager(Config{StateDir: t.TempDir()}, pool,
		func(string) (subject.Subject, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(CampaignSpec{ID: "c1", Subject: "x", Hours: 1}); err != nil {
		t.Fatal(err)
	}
	c := m.campaigns["c1"]

	// With w0/w1 held elsewhere, c1's first grant is w2/w3 — a set the
	// plain attach-order acquisition would never choose once w0/w1
	// free up again.
	interloper := pool.Acquire(2)
	c.part = pool.Acquire(2)
	if got := c.part.Names(); !reflect.DeepEqual(got, []string{"w2", "w3"}) {
		t.Fatalf("initial grant = %v, want [w2 w3]", got)
	}

	m.releasePartition(c)
	if !reflect.DeepEqual(c.prevWorkers, []string{"w2", "w3"}) {
		t.Fatalf("prevWorkers after release = %v, want [w2 w3]", c.prevWorkers)
	}
	if c.part != nil || c.workers != 0 {
		t.Fatalf("release left part=%v workers=%d", c.part, c.workers)
	}

	// w0/w1 are free again and ahead in attach order, but the re-grant
	// prefers the remembered set.
	interloper.Release()
	c.part = pool.AcquirePreferring(2, c.prevWorkers)
	if got := c.part.Names(); !reflect.DeepEqual(got, []string{"w2", "w3"}) {
		t.Fatalf("re-grant = %v, want previous set [w2 w3]", got)
	}
	m.releasePartition(c)
}
