package fleet_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmfuzz/internal/fleet"
	"cmfuzz/internal/live"
	"cmfuzz/internal/protocols"
)

// TestRecoveryQuarantinesCorruptCheckpoint pins the recovery-scan
// hardening: a campaign directory holding a corrupt or truncated
// checkpoint.bin is quarantined (the blob renamed aside, the campaign
// marked failed with the decode error in /api/status) while the scan
// keeps going and recovers the healthy campaigns around it.
func TestRecoveryQuarantinesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	writeSpec := func(id string) {
		t.Helper()
		cdir := filepath.Join(dir, id)
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			t.Fatal(err)
		}
		raw, _ := json.Marshal(fleet.CampaignSpec{ID: id, Subject: "dns", Hours: 0.1, Seed: 1})
		if err := os.WriteFile(filepath.Join(cdir, "spec.json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeSpec("bad")
	writeSpec("good")
	ckPath := filepath.Join(dir, "bad", "checkpoint.bin")
	if err := os.WriteFile(ckPath, []byte("definitely not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	pool, stop := newPool(t, 1)
	defer stop()
	m, err := fleet.NewManager(fleet.Config{StateDir: dir}, pool, protocols.ByName)
	if err != nil {
		t.Fatalf("recovery scan aborted on corrupt checkpoint: %v", err)
	}

	bad := findStatus(t, m, "bad")
	if bad.State != fleet.StateFailed {
		t.Fatalf("bad campaign state = %s, want %s", bad.State, fleet.StateFailed)
	}
	if !strings.Contains(bad.Error, "quarantined") {
		t.Fatalf("bad campaign error = %q, want a quarantine notice", bad.Error)
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt checkpoint still at %s (stat err %v), want renamed aside", ckPath, err)
	}
	if _, err := os.Stat(ckPath + ".corrupt"); err != nil {
		t.Fatalf("quarantined blob missing: %v", err)
	}
	if good := findStatus(t, m, "good"); good.State != fleet.StateQueued {
		t.Fatalf("good campaign state = %s, want %s", good.State, fleet.StateQueued)
	}
}

// TestSubmitLiveSpec pins live-target submission: an inline live spec
// replaces the built-in subject lookup, and an invalid one is rejected
// at submit time instead of failing the campaign's first slice.
func TestSubmitLiveSpec(t *testing.T) {
	pool, stop := newPool(t, 1)
	defer stop()
	m, err := fleet.NewManager(fleet.Config{StateDir: t.TempDir()}, pool, protocols.ByName)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Submit(fleet.CampaignSpec{
		ID: "live-bad", Subject: "echo", Hours: 0.1,
		Live: &live.Spec{}, // neither Cmd nor Addr: invalid
	})
	if err == nil {
		t.Fatal("Submit accepted an invalid live spec")
	}
	err = m.Submit(fleet.CampaignSpec{
		ID: "live-ok", Subject: "echo", Hours: 0.1,
		Live: &live.Spec{Cmd: []string{"/bin/echo-server", "-port", "{port}"}},
	})
	if err != nil {
		t.Fatalf("Submit rejected a valid live spec: %v", err)
	}
	if st := findStatus(t, m, "live-ok"); st.State != fleet.StateQueued {
		t.Fatalf("live campaign state = %s, want %s", st.State, fleet.StateQueued)
	}
}
