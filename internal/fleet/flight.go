package fleet

import (
	"encoding/json"
	"path/filepath"
	"sync"
	"time"

	"cmfuzz/internal/campaign"
)

// flightCap bounds each campaign's flight recorder: enough recent
// history to reconstruct what a campaign was doing when something went
// wrong, small enough to hold for every campaign forever.
const flightCap = 256

// A FlightEntry is one flight-recorder event. Kind is the entry class
// ("telemetry", "lease", "award", "worker_death", "failed"); Detail is
// kind-specific and JSON-serializable.
type FlightEntry struct {
	Wall   time.Time `json:"wall"`
	Kind   string    `json:"kind"`
	Detail any       `json:"detail,omitempty"`
}

// flightRing is a bounded ring of the campaign's most recent flight
// entries. Writers come from the scheduler goroutine (telemetry tap,
// bandit awards) and from dist dispatcher goroutines (lease summaries,
// worker deaths), so every access locks.
type flightRing struct {
	mu    sync.Mutex
	buf   []FlightEntry
	next  int   // overwrite position once the ring is full
	total int64 // lifetime count, monotone past evictions
}

func newFlightRing() *flightRing { return &flightRing{} }

func (f *flightRing) add(kind string, detail any) {
	if f == nil {
		return
	}
	e := FlightEntry{Wall: time.Now().UTC(), Kind: kind, Detail: detail}
	f.mu.Lock()
	if len(f.buf) < flightCap {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
		f.next = (f.next + 1) % flightCap
	}
	f.total++
	f.mu.Unlock()
}

// snapshot returns the retained entries oldest-first plus the lifetime
// count.
func (f *flightRing) snapshot() ([]FlightEntry, int64) {
	if f == nil {
		return nil, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEntry, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out, f.total
}

func (f *flightRing) count() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// flightDoc is the triage.json / /api/flight document shape.
type flightDoc struct {
	ID     string        `json:"id"`
	Reason string        `json:"reason,omitempty"`
	Wall   time.Time     `json:"wall"`
	Total  int64         `json:"total"`
	Events []FlightEntry `json:"events"`
}

// Flight snapshots a campaign's flight recorder for the live API.
func (m *Manager) Flight(id string) (flightDoc, bool) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	m.mu.Unlock()
	if !ok {
		return flightDoc{}, false
	}
	events, total := c.flight.snapshot()
	return flightDoc{ID: id, Wall: time.Now().UTC(), Total: total, Events: events}, true
}

// dumpFlight writes the ring atomically as triage.json in the campaign
// state dir — next to spec.json, deliberately OUTSIDE artifacts/, so
// the byte-identity artifact diffs never see it. Called on worker
// death and campaign failure; best-effort (a failed dump must not take
// the scheduler down with it).
func (m *Manager) dumpFlight(c *campaignRec, reason string) {
	events, total := c.flight.snapshot()
	doc := flightDoc{ID: c.spec.ID, Reason: reason, Wall: time.Now().UTC(), Total: total, Events: events}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return
	}
	campaign.WriteFileAtomic(filepath.Join(m.dir(c.spec.ID), "triage.json"), raw, 0o644)
}
