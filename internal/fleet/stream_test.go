package fleet

import "testing"

// TestStreamDropVisibility pins the lossy broker's drop accounting: a
// subscriber whose buffer fills loses events silently (publish never
// blocks), but the next event that does get through carries the gap
// size in Dropped, and every loss lands in the broker-wide total that
// feeds cmfuzz_stream_dropped_total.
func TestStreamDropVisibility(t *testing.T) {
	b := newBroker()
	ch, cancel := b.subscribe()
	defer cancel()

	// Fill the 64-slot buffer, then overflow by 5.
	for i := 0; i < 69; i++ {
		b.publish(StreamEvent{Type: "checkpoint"})
	}
	if got := b.dropped(); got != 5 {
		t.Fatalf("dropped total after overflow = %d, want 5", got)
	}

	// Everything buffered before the overflow was delivered gap-free.
	for i := 0; i < 64; i++ {
		ev := <-ch
		if ev.Seq != int64(i+1) || ev.Dropped != 0 {
			t.Fatalf("buffered event %d: seq=%d dropped=%d, want seq=%d dropped=0",
				i, ev.Seq, ev.Dropped, i+1)
		}
	}

	// The next delivered event announces the 5-event gap, and the one
	// after that is clean again.
	b.publish(StreamEvent{Type: "slice_end"})
	if ev := <-ch; ev.Seq != 70 || ev.Dropped != 5 {
		t.Fatalf("post-gap event: seq=%d dropped=%d, want seq=70 dropped=5", ev.Seq, ev.Dropped)
	}
	b.publish(StreamEvent{Type: "done"})
	if ev := <-ch; ev.Seq != 71 || ev.Dropped != 0 {
		t.Fatalf("clean event after gap: seq=%d dropped=%d, want seq=71 dropped=0", ev.Seq, ev.Dropped)
	}
	if got := b.dropped(); got != 5 {
		t.Fatalf("dropped total after recovery = %d, want 5 still", got)
	}

	// A second, fast subscriber is unaffected by the slow one's losses.
	ch2, cancel2 := b.subscribe()
	defer cancel2()
	b.publish(StreamEvent{Type: "submit"})
	if ev := <-ch2; ev.Dropped != 0 {
		t.Fatalf("fresh subscriber saw dropped=%d, want 0", ev.Dropped)
	}
	<-ch
}
